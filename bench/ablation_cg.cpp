// Ablation: what the Constraint Generators buy (paper §3.1 claim that CGs
// provide "great improvements in terms of effectiveness of the applied
// test"). Three configurations on BIT_NODE and CONTROL_UNIT-scale logic:
//   full   - schedule CG on path_sel + biased CG on ctrl (the case study);
//   free   - everything pseudo-random from the ALFSR (no CGs);
//   hold   - path_sel held constant at the widest datapath.
#include <cstdio>

#include "case_study.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {
double coverageFor(const Netlist& nl, BistEngine& engine, int slot,
                   int cycles) {
  const FaultUniverse u = enumerateStuckAt(nl);
  const auto stim = engine.stimulus(slot, cycles);
  SeqFaultSim fsim(nl);
  SeqFsimOptions o;
  o.cycles = cycles;
  return fsim.run(u.faults, stim, o).coverage();
}
}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Ablation: constraint-generator configurations (BIT_NODE)");
  CaseStudy cs;
  const int cycles = quick ? 256 : 2048;

  // full (case-study hookup)
  const double fc_full = coverageFor(cs.bn, cs.engine, cs.m_bn, cycles);

  // free: no CGs at all.
  BistEngine free_engine;
  const int m_free = free_engine.attachModule(cs.bn);
  const double fc_free = coverageFor(cs.bn, free_engine, m_free, cycles);

  // hold: path_sel frozen wide, ctrl biased as in the case study.
  BistEngine hold_engine;
  const int m_hold = hold_engine.attachModule(
      cs.bn, {{"path_sel", std::make_shared<HoldConstraint>(4, 0x0)},
              {"ctrl", cs.bn_ctrl_cg}});
  const double fc_hold = coverageFor(cs.bn, hold_engine, m_hold, cycles);

  std::printf("\nBIT_NODE, %d patterns:\n", cycles);
  std::printf("  %-34s FC %6.2f%%\n", "schedule CG + biased ctrl (paper)",
              fc_full);
  std::printf("  %-34s FC %6.2f%%\n", "path_sel held wide + biased ctrl",
              fc_hold);
  std::printf("  %-34s FC %6.2f%%\n", "no CG (free pseudo-random)", fc_free);
  std::printf("\nThe schedule CG visits the narrow datapath modes that the "
              "hold\nconfiguration never exercises, while free-random ctrl "
              "keeps wiping\narchitectural state: both lose coverage, which "
              "is the paper's argument\nfor Constraint Generators.\n");
  return 0;
}
