// Shared case-study setup for the Table/Figure benches: the three LDPC
// decoder modules hooked to the paper's BIST engine (20-bit ALFSR, one
// schedule CG on the 4-bit path_sel port of BIT_NODE and CHECK_NODE,
// 16-bit MISRs, 12-bit pattern counter).
#ifndef COREBIST_BENCH_CASE_STUDY_HPP_
#define COREBIST_BENCH_CASE_STUDY_HPP_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bist/engine.hpp"
#include "ldpc/gatelevel.hpp"

namespace corebist::bench {

struct CaseStudy {
  Netlist bn = ldpc::buildBitNode();
  Netlist cn = ldpc::buildCheckNode();
  Netlist cu = ldpc::buildControlUnit();
  BistEngine engine;
  int m_bn = -1;
  int m_cn = -1;
  int m_cu = -1;
  std::shared_ptr<ScheduleConstraint> path_cg;
  std::shared_ptr<BiasedConstraint> bn_ctrl_cg;
  std::shared_ptr<BiasedConstraint> cn_ctrl_cg;

  CaseStudy() {
    // "holding selection values that maximize the used circuitry" while
    // still visiting the narrow datapath selections.
    path_cg = std::make_shared<ScheduleConstraint>(
        4, std::vector<ScheduleConstraint::Entry>{{0x0, 10},
                                                  {0x1, 2},
                                                  {0x2, 1},
                                                  {0x3, 1},
                                                  {0x4, 2},
                                                  {0x8, 1},
                                                  {0xC, 1}});
    // The ctrl ports are the other constrained inputs (paper §3.2: when the
    // reached coverage is insufficient, "redefine the Constraints
    // Generator"): start/flush/clr pulses must be rare or they keep wiping
    // the architectural state that the pseudo-random data is exercising.
    using B = BiasedConstraint::BitBias;
    // Reset-style pins (start/flush/clr) must be *pulses*, not coin flips:
    // a start every ~16 cycles never lets the accumulators reach their deep
    // bits.
    bn_ctrl_cg = std::make_shared<BiasedConstraint>(
        12,
        std::vector<B>{B::kRare6, B::kOften2, B::kFree, B::kFree, B::kRare4,
                       B::kFree, B::kFree, B::kFree, B::kFree, B::kFree,
                       B::kFree, B::kFree},
        24, 0xB17B1A5);
    cn_ctrl_cg = std::make_shared<BiasedConstraint>(
        12,
        std::vector<B>{B::kRare6, B::kOften2, B::kFree, B::kFree, B::kRare6,
                       B::kFree, B::kFree, B::kRare4, B::kFree, B::kFree,
                       B::kFree, B::kFree},
        24, 0xC47B1A5);
    m_bn = engine.attachModule(bn, {{"path_sel", path_cg},
                                    {"ctrl", bn_ctrl_cg}});
    m_cn = engine.attachModule(cn, {{"path_sel", path_cg},
                                    {"ctrl", cn_ctrl_cg}});
    // CONTROL_UNIT: its run/stop pins are constrained inputs too — random
    // starts/halts would reset the counters every other cycle.
    auto one = [](BiasedConstraint::BitBias bias, std::uint64_t seed) {
      return std::make_shared<BiasedConstraint>(
          1, std::vector<BiasedConstraint::BitBias>{bias}, 12, seed);
    };
    // Short configured phases, otherwise edge wraps / iteration bookkeeping
    // are reached a handful of times in 4096 cycles.
    // Mix of short phases (phase/iteration logic toggles often) and long
    // ones (the deep counter bits must move): maximize the used circuitry.
    auto edge_cg = std::make_shared<ScheduleConstraint>(
        10, std::vector<ScheduleConstraint::Entry>{{9, 200},
                                                   {999, 1200},
                                                   {5, 100},
                                                   {517, 800},
                                                   {17, 150},
                                                   {260, 400}});
    auto iter_cg = std::make_shared<ScheduleConstraint>(
        5, std::vector<ScheduleConstraint::Entry>{
               {1, 100}, {29, 400}, {2, 100}, {18, 312}});
    auto pulse = [](int lead, int tail) {
      return std::make_shared<ScheduleConstraint>(
          1, std::vector<ScheduleConstraint::Entry>{{0, lead}, {1, 1},
                                                    {0, tail}});
    };
    m_cu = engine.attachModule(
        cu, {{"start", pulse(1, 680)},
             {"halt", pulse(2913, 800)},
             {"clr_stats", pulse(2048, 1200)},
             {"step_en", one(BiasedConstraint::BitBias::kOften2, 0x57E)},
             {"mem_ready", one(BiasedConstraint::BitBias::kOften2, 0x33D)},
             {"edge_count", edge_cg},
             {"cfg_iters", iter_cg}});
  }

  [[nodiscard]] const Netlist& module(int m) const {
    return engine.module(m);
  }
};

class Stopwatch {
 public:
  Stopwatch() : t0_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

/// Median (middle of the sorted times) and min of `repeats` timed runs of
/// `fn`. Single-shot timings on shared runners are noise, not measurements;
/// every BENCH_*.json row goes through this.
struct Timing {
  double median = 0.0;
  double min = 0.0;
};

template <typename Fn>
Timing timeRepeats(int repeats, Fn&& fn) {
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    fn();
    secs.push_back(sw.seconds());
  }
  std::sort(secs.begin(), secs.end());
  return Timing{secs[secs.size() / 2], secs.front()};
}

/// True when "--quick" is on the command line (smoke-test scale).
inline bool quickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

inline void printHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace corebist::bench

#endif  // COREBIST_BENCH_CASE_STUDY_HPP_
