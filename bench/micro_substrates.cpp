// google-benchmark micro-benchmarks of the substrates: logic simulation,
// fault simulation, ALFSR/MISR stepping, and the protocol stack.
#include <benchmark/benchmark.h>

#include <memory>

#include "bist/engine.hpp"
#include "bist/lfsr.hpp"
#include "bist/misr.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "jtag/driver.hpp"
#include "ldpc/gatelevel.hpp"
#include "sim/seq_sim.hpp"

namespace {

using namespace corebist;

void BM_CombEvalBitNode(benchmark::State& state) {
  const Netlist nl = ldpc::buildBitNode();
  SeqSim sim(nl);
  sim.reset();
  std::uint64_t c = 0;
  for (auto _ : state) {
    for (const NetId pi : nl.primaryInputs()) {
      sim.comb().set(pi, c * 0x9E3779B97F4A7C15ull);
    }
    sim.step();
    ++c;
    benchmark::DoNotOptimize(sim.comb().values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.numGates()));
}
BENCHMARK(BM_CombEvalBitNode);

void BM_CombEvalCheckNode(benchmark::State& state) {
  const Netlist nl = ldpc::buildCheckNode();
  SeqSim sim(nl);
  sim.reset();
  std::uint64_t c = 0;
  for (auto _ : state) {
    for (const NetId pi : nl.primaryInputs()) {
      sim.comb().set(pi, c * 0x9E3779B97F4A7C15ull);
    }
    sim.step();
    ++c;
    benchmark::DoNotOptimize(sim.comb().values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nl.numGates()));
}
BENCHMARK(BM_CombEvalCheckNode);

void BM_SeqFaultSimControlUnit(benchmark::State& state) {
  const Netlist nl = ldpc::buildControlUnit();
  const FaultUniverse u = enumerateStuckAt(nl);
  BistEngine engine;
  const int m = engine.attachModule(nl);
  const auto stim = engine.stimulus(m, 512);
  SeqFaultSim fsim(nl);
  SeqFsimOptions o;
  o.cycles = 512;
  o.num_threads = 1;
  for (auto _ : state) {
    const auto r = fsim.run(u.faults, stim, o);
    benchmark::DoNotOptimize(r.detected);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(u.faults.size()));
}
BENCHMARK(BM_SeqFaultSimControlUnit);

void BM_AlfsrStep(benchmark::State& state) {
  Alfsr lfsr(20, 0xACE1);
  for (auto _ : state) benchmark::DoNotOptimize(lfsr.step());
}
BENCHMARK(BM_AlfsrStep);

void BM_MisrStepWide(benchmark::State& state) {
  Misr misr(16);
  std::uint64_t v = 0x123456789ABCDEFull;
  for (auto _ : state) {
    misr.stepWide(v, 55);
    v = v * 6364136223846793005ull + 1;
    benchmark::DoNotOptimize(misr.state());
  }
}
BENCHMARK(BM_MisrStepWide);

void BM_TapShiftDr(benchmark::State& state) {
  TapController tap(4);
  TapDriver driver(tap);
  driver.reset();
  driver.shiftIr(0xF, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.shiftDr(0xA5A5, 16));
  }
}
BENCHMARK(BM_TapShiftDr);

}  // namespace
// main() is provided by benchmark::benchmark_main.
