// Table 5: equivalent fault class maximum and mean size, per approach.
//
// Syndromes: BIST -> 64 MISR read-out windows; sequential -> the same 64
// windows over its functional sequence; full scan -> per-pattern pass/fail
// dictionary truncated to the first detections (stop-on-first-error
// dictionaries). Undetected faults are excluded from the matrix.
#include <cstdio>

#include "atpg/atpg.hpp"
#include "case_study.hpp"
#include "diag/diagnosis.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/scan.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

/// BIST syndrome: the MISR signature difference read through the Output
/// Selector at each of the 64 windows.
EquivalenceClasses bistSignatureAnalysis(const Netlist& nl,
                                         std::span<const Fault> faults,
                                         std::span<const std::uint64_t> stim,
                                         int cycles, int misr_width) {
  ParallelFaultSim fsim(SeqFaultSim{nl});
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());
  return analyzeSyndromes(
      misrWindowSyndromes(fsim, faults, patterns, cycles, 64,
                          makeMisrSpec(nl.primaryOutputs(), misr_width)));
}

/// Sequential syndrome: the set of failing ATE windows plus the first
/// failing cycle (what a tester log provides for functional patterns).
EquivalenceClasses windowsAnalysis(const Netlist& nl,
                                   std::span<const Fault> faults,
                                   std::span<const std::uint64_t> stim,
                                   int cycles) {
  ParallelFaultSim fsim(SeqFaultSim{nl});
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());
  return analyzeSyndromes(
      detectionWindowSyndromes(fsim, faults, patterns, cycles, 64));
}

EquivalenceClasses scanDictionary(const Netlist& scanned, const ScanView& view,
                                  std::span<const Fault> faults, int blocks,
                                  std::uint64_t seed) {
  constexpr int kMaxDetections = 8;  // stop-on-first-error depth
  ParallelFaultSim fsim(CombFaultSim{scanned, view.inputs, view.observed});
  const RandomPatternSource patterns(seed, view.inputs.size(), blocks * 64);
  return analyzeSyndromes(dictionarySyndromes(fsim, faults, patterns,
                                              blocks * 64, kMaxDetections));
}

void printRow(const char* name, const EquivalenceClasses& e, int paper_max,
              double paper_mean) {
  std::printf("  %-12s max %3zu  mean %5.2f  (classes %6zu over %6zu faults;"
              " paper: max %d mean %.1f)\n",
              name, e.max_size, e.mean_size, e.num_classes, e.analyzed,
              paper_max, paper_mean);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Table 5: equivalent fault class size (diagnostic matrix)");
  CaseStudy cs;

  struct Cfg {
    const char* name;
    int slot;
    std::vector<int> chains;
    int cycles;  // windowed-syndrome run length
    int paper[6];  // bist max, seq max, scan max (mean given separately)
    double paper_mean[3];
  };
  const std::vector<Cfg> mods = {
      {"BIT_NODE", cs.m_bn, {}, quick ? 256 : 4096, {3, 7, 3}, {1.2, 4.4, 1.6}},
      {"CHECK_NODE", cs.m_cn, {}, quick ? 256 : 1024, {4, 12, 7}, {1.9, 6.9, 2.7}},
      {"CONTROL_UNIT", cs.m_cu, {14, 28}, quick ? 256 : 4096, {2, 8, 2},
       {1.3, 5.1, 1.3}},
  };

  for (const Cfg& mc : mods) {
    const Netlist& nl = cs.module(mc.slot);
    std::printf("\n%s (windowed syndromes over %d cycles)\n", mc.name,
                mc.cycles);
    const FaultUniverse u = enumerateStuckAt(nl);

    Stopwatch sw;
    const auto bist_stim = cs.engine.stimulus(mc.slot, mc.cycles);
    const auto e_bist = bistSignatureAnalysis(nl, u.faults, bist_stim,
                                              mc.cycles, 16);
    printRow("BIST", e_bist, mc.paper[0], mc.paper_mean[0]);

    // Sequential: weighted-random functional sequence (as in Table 3).
    SeqAtpgOptions so;
    so.sequence_cycles = mc.cycles;
    so.candidates = 1;
    const auto seq = runSequentialAtpg(nl, u.faults, so);
    const auto e_seq = windowsAnalysis(nl, u.faults, seq.best_sequence,
                                       mc.cycles);
    printRow("Sequential", e_seq, mc.paper[1], mc.paper_mean[1]);

    const Netlist scanned = buildScannedModule(nl, mc.chains);
    const ScanView view = makeScanView(scanned, mc.chains);
    const FaultUniverse su = enumerateStuckAt(scanned);
    const auto e_scan = scanDictionary(scanned, view, su.faults,
                                       quick ? 2 : 8, 0xD1A6);
    printRow("Full scan", e_scan, mc.paper[2], mc.paper_mean[2]);
    std::printf("  (%.1fs)\n", sw.seconds());
  }

  std::printf("\nShape check: BIST windowed-MISR syndromes give the finest "
              "classes, the\nweak sequential patterns the coarsest — the "
              "paper's diagnosability ranking.\n");
  return 0;
}
