// Figures 1/2/5/7 are architecture diagrams; this bench audits the
// instantiated hierarchy instead: the SoC stack (ATE -> TAP -> TAM ->
// wrapper -> BIST engine -> core), the Fig. 2 engine composition (control
// unit / ALFSR + CGs / MISRs + output selector) and the Fig. 5 wrapper
// register set, all taken from the live objects.
#include <cstdio>

#include "bist/engine_hw.hpp"
#include "case_study.hpp"
#include "core/soc.hpp"
#include "p1500/wrapper_hw.hpp"

using namespace corebist;
using namespace corebist::bench;

int main() {
  printHeader("Fig. 1/2/5/7: structural audit of the assembled architecture");
  const CaseStudy cs;

  std::printf("SoC test stack (Fig. 1):\n");
  Soc soc;
  auto core = std::make_unique<WrappedCore>("serial_ldpc");
  core->addModule(cs.bn, {{"path_sel", cs.path_cg}});
  core->addModule(cs.cn, {{"path_sel", cs.path_cg}});
  core->addModule(cs.cu);
  const int idx = soc.attachCore(std::move(core));
  std::printf("  ATE (TapDriver) -> TAP controller (IR %d bits, IDCODE "
              "0x%08X)\n", soc.tap().irWidth(), soc.tap().idcode());
  std::printf("  -> TAM (%d core(s), instructions SELECT/WIR_SCAN/WDR_SCAN)\n",
              soc.tam().coreCount());
  std::printf("  -> P1500 wrapper (WIR %d, WBY 1, WCDR %d, WDR %d bits)\n",
              P1500Wrapper::kWirBits, P1500Wrapper::kWcdrBits,
              P1500Wrapper::kWdrBits);
  std::printf("  -> BIST engine -> logic core (%d modules)\n\n",
              soc.core(idx).moduleCount());

  std::printf("BIST engine composition (Fig. 2):\n");
  const auto& cfg = cs.engine.config();
  std::printf("  Control Unit : %d-bit pattern counter (up to %d patterns), "
              "2-bit result select\n", cfg.counter_bits,
              (1 << cfg.counter_bits));
  std::printf("  Pattern Gen  : %d-bit ALFSR", cfg.lfsr_width);
  std::printf(" + constraint generator %s\n", cs.path_cg->describe().c_str());
  for (int m = 0; m < cs.engine.moduleCount(); ++m) {
    const auto& nl = cs.engine.module(m);
    int alfsr_bits = 0;
    int cg_bits = 0;
    for (const auto& src : cs.engine.inputMap(m)) {
      if (src.kind == InputSourceKind::kAlfsr) {
        ++alfsr_bits;
      } else {
        ++cg_bits;
      }
    }
    std::printf("    %-13s w=%2d (ALFSR %2d + CG %d)  case '%c'  -> %d-bit "
                "MISR via XOR cascade over %d outputs\n",
                nl.name().c_str(), nl.portWidth(true), alfsr_bits, cg_bits,
                cs.engine.architecturalCase(m), cfg.misr_width,
                nl.portWidth(false));
  }

  std::printf("\nGate-level audit:\n");
  const Netlist engine_hw = buildBistEngineHw(cs.engine);
  std::printf("  engine hardware: %zu gates, %zu flops, ports:",
              engine_hw.numGates(), engine_hw.dffs().size());
  for (const auto& p : engine_hw.ports()) {
    std::printf(" %s[%zu]%s", p.name.c_str(), p.bits.size(),
                p.is_input ? "i" : "o");
  }
  const Netlist wrapper_hw = buildWrapperHw(24, 25);
  std::printf("\n  wrapper hardware: %zu gates, %zu flops (boundary cells: "
              "80)\n", wrapper_hw.numGates(), wrapper_hw.dffs().size());

  // Smoke-run the whole stack once so the audit is of a *working* assembly.
  SocTestSession session(soc);
  const CoreTestReport r = session.testCore(idx, 96);
  std::printf("\nEnd-to-end session: %s\n", r.summary().c_str());
  return r.pass ? 0 : 1;
}
