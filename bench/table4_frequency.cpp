// Table 4: performance (max frequency) impact of each DfT variant.
//
// Variants, as in the paper:
//   original     - the bare modules;
//   BIST engine  - BIST pattern muxes + MISR load merged into the module,
//                  plus the standard wrapper boundary;
//   Sequential   - standard P1500 wrapper boundary only;
//   Full scan    - muxed-D scan cells plus the wrapper boundary.
// The core frequency is limited by the slowest module.
#include <algorithm>
#include <cstdio>

#include "bist/engine_hw.hpp"
#include "case_study.hpp"
#include "p1500/wrapper_hw.hpp"
#include "scan/scan.hpp"
#include "synth/sta.hpp"

using namespace corebist;
using namespace corebist::bench;

int main() {
  printHeader("Table 4: Performance reduction for the investigated approaches");
  const CaseStudy cs;
  const TechLib lib = TechLib::generic130nm();

  struct ModuleSet {
    const char* name;
    const Netlist* nl;
    int engine_slot;
  };
  const ModuleSet mods[] = {
      {"BIT_NODE", &cs.bn, cs.m_bn},
      {"CHECK_NODE", &cs.cn, cs.m_cn},
      {"CONTROL_UNIT", &cs.cu, cs.m_cu},
  };

  double f_orig = 1e30;
  double f_bist = 1e30;
  double f_seq = 1e30;
  double f_scan = 1e30;
  std::printf("%-14s %12s %12s %12s %12s   [MHz]\n", "Module", "original",
              "BIST", "wrapper", "full scan");
  for (const ModuleSet& m : mods) {
    const double fo = analyzeTiming(*m.nl, lib).fmax_mhz;

    const Netlist bisted = buildBistedModule(cs.engine, m.engine_slot);
    const Netlist bisted_wrapped = buildBoundaryWrappedModule(bisted);
    const double fb = analyzeTiming(bisted_wrapped, lib).fmax_mhz;

    const Netlist wrapped = buildBoundaryWrappedModule(*m.nl);
    const double fw = analyzeTiming(wrapped, lib).fmax_mhz;

    const Netlist scanned = buildScannedModule(*m.nl);
    const Netlist scanned_wrapped = buildBoundaryWrappedModule(scanned);
    const double fs = analyzeTiming(scanned_wrapped, lib).fmax_mhz;

    std::printf("%-14s %12.2f %12.2f %12.2f %12.2f\n", m.name, fo, fb, fw,
                fs);
    f_orig = std::min(f_orig, fo);
    f_bist = std::min(f_bist, fb);
    f_seq = std::min(f_seq, fw);
    f_scan = std::min(f_scan, fs);
  }

  std::printf("\n%-22s %12s %12s %12s %12s\n", "", "Original", "BIST engine",
              "Sequential", "Full scan");
  std::printf("%-22s %12.2f %12.2f %12.2f %12.2f\n", "frequency [MHz]",
              f_orig, f_bist, f_seq, f_scan);
  std::printf("%-22s %12s %12.2f %12.2f %12.2f\n", "paper [MHz]", "438.60",
              431.03, 434.14, 426.62);
  std::printf("%-22s %12s %12.2f %12.2f %12.2f\n", "loss vs original [%]",
              "-", 100.0 * (f_orig - f_bist) / f_orig,
              100.0 * (f_orig - f_seq) / f_orig,
              100.0 * (f_orig - f_scan) / f_orig);
  std::printf("%-22s %12s %12.2f %12.2f %12.2f\n", "paper loss [%]", "-",
              100.0 * (438.60 - 431.03) / 438.60,
              100.0 * (438.60 - 434.14) / 438.60,
              100.0 * (438.60 - 426.62) / 438.60);

  const bool shape_ok = f_orig >= f_seq && f_seq >= f_bist && f_bist >= f_scan;
  std::printf("\nOrdering original >= wrapper >= BIST >= full-scan: %s\n",
              shape_ok ? "HOLDS (matches the paper)" : "differs");
  return 0;
}
