// Ablation: MISR width vs empirical aliasing. The paper folds 44..55-bit
// output ports into 16-bit MISRs through XOR cascades and relies on the
// 2^-w aliasing bound; here the bound is checked empirically by comparing
// output-level detection with MISR-signature detection.
#include <cstdio>

#include <cmath>

#include "bist/misr.hpp"
#include "case_study.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"

using namespace corebist;
using namespace corebist::bench;

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Ablation: MISR width vs empirical aliasing (CONTROL_UNIT)");
  CaseStudy cs;
  const int cycles = quick ? 256 : 1024;
  const FaultUniverse u = enumerateStuckAt(cs.cu);
  const auto stim = cs.engine.stimulus(cs.m_cu, cycles);

  std::printf("\n%d patterns, %zu faults; detected at outputs vs detected in "
              "signature\n", cycles, u.faults.size());
  std::printf("  %6s %12s %12s %10s %14s\n", "width", "out-detect",
              "misr-detect", "aliased", "2^-w bound");
  for (const int width : {4, 8, 12, 16, 20}) {
    SeqFaultSim fsim(cs.cu);
    SeqFsimOptions o;
    o.cycles = cycles;
    o.misr = makeMisrSpec(cs.cu.primaryOutputs(), width);
    const auto r = fsim.run(u.faults, stim, o);
    std::size_t out_det = 0;
    std::size_t misr_det = 0;
    std::size_t aliased = 0;
    for (std::size_t i = 0; i < u.faults.size(); ++i) {
      const bool od = r.first_detect[i] >= 0;
      const bool md = r.misr_detect[i] != 0;
      out_det += od ? 1 : 0;
      misr_det += md ? 1 : 0;
      aliased += (od && !md) ? 1 : 0;
    }
    std::printf("  %6d %12zu %12zu %10zu %13.5f%%%s\n", width, out_det,
                misr_det, aliased, 100.0 * std::pow(2.0, -width),
                width == 16 ? "   <- case study" : "");
  }
  std::printf("\nAliasing falls with width as predicted; 16 bits keeps "
              "losses negligible,\nwhich is why the paper sizes all three "
              "MISRs at 16 bits.\n");
  return 0;
}
