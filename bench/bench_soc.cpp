// SoC session-layer throughput: serial vs sharded test campaigns on the
// SocTestScheduler. Emits BENCH_soc.json (current directory) so the
// cores/sec trajectory is tracked from PR to PR alongside BENCH_fsim.json.
// Every row is the median (and min) of `repeats` runs: single-shot timings
// on shared/single-core runners produced nonsense speedup ratios.
//
// The workload is a many-core SoC of mid-sized wrapped cores (two modules
// each); every campaign runs the full bit-banged protocol — TAP reset, TAM
// select, WCDR programming, at-speed run, WDR signature upload — plus the
// golden-signature computation, which is what sharding actually overlaps.
// Before timing anything the bench proves the sharded fingerprints equal
// the serial reference, so the numbers are only reported for campaigns
// that are byte-identical.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "case_study.hpp"
#include "core/scheduler.hpp"
#include "core/session_report.hpp"
#include "fault/lane.hpp"
#include "core/soc.hpp"
#include "netlist/builder.hpp"
#include "service/service.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

Netlist makeBlock(int twist, int width) {
  Netlist nl("blk" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus q = b.state("q", width);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 5)));
  b.output("y", b.add(q, x));
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

std::unique_ptr<Soc> makeSoc(int cores) {
  auto soc = std::make_unique<Soc>("bench_soc");
  for (int c = 0; c < cores; ++c) {
    auto core = std::make_unique<WrappedCore>("core" + std::to_string(c));
    core->addModule(makeBlock(2 * c, 14 + (c % 3) * 4));
    core->addModule(makeBlock(2 * c + 1, 12 + (c % 4) * 4));
    soc->attachCore(std::move(core));
  }
  // One defective die keeps the mismatch path in the measured loop.
  soc->core(cores / 2).injectDefect(0, 7, GateType::kNor);
  return soc;
}

/// Multi-TAM variant: the same top-level workload spread round-robin over
/// `tams` TAMs, plus one nested (depth-1) core under each TAM's first
/// top-level core so hierarchical routing stays in the measured loop.
std::unique_ptr<Soc> makeMultiTamSoc(int cores, int tams) {
  auto soc = std::make_unique<Soc>("bench_soc_t" + std::to_string(tams));
  for (int t = 1; t < tams; ++t) (void)soc->addTam();
  std::vector<int> first_on_tam(static_cast<std::size_t>(tams), -1);
  for (int c = 0; c < cores; ++c) {
    auto core = std::make_unique<WrappedCore>("core" + std::to_string(c));
    core->addModule(makeBlock(2 * c, 14 + (c % 3) * 4));
    core->addModule(makeBlock(2 * c + 1, 12 + (c % 4) * 4));
    const int tam = c % tams;
    const int idx = soc->attachCore(std::move(core), tam);
    if (first_on_tam[static_cast<std::size_t>(tam)] < 0) {
      first_on_tam[static_cast<std::size_t>(tam)] = idx;
    }
  }
  for (int t = 0; t < tams; ++t) {
    auto nested =
        std::make_unique<WrappedCore>("nested" + std::to_string(t));
    nested->addModule(makeBlock(100 + t, 12));
    (void)soc->attachChildCore(std::move(nested),
                               first_on_tam[static_cast<std::size_t>(t)]);
  }
  soc->core(cores / 2).injectDefect(0, 7, GateType::kNor);
  return soc;
}

/// Placement-sweep topology: `cores` flat wrapped cores round-robin over
/// `tams` TAMs. Heterogeneity comes from the *plan* (ascending per-core
/// pattern budgets), which is adversarial for the plan-order greedy walk
/// and exactly what LPT placement exists to fix.
std::unique_ptr<Soc> makePlacementSoc(int cores, int tams) {
  auto soc = std::make_unique<Soc>("bench_soc_place");
  for (int t = 1; t < tams; ++t) (void)soc->addTam();
  for (int c = 0; c < cores; ++c) {
    auto core = std::make_unique<WrappedCore>("core" + std::to_string(c));
    core->addModule(makeBlock(2 * c, 14 + (c % 3) * 4));
    core->addModule(makeBlock(2 * c + 1, 12 + (c % 4) * 4));
    (void)soc->attachCore(std::move(core), c % tams);
  }
  soc->core(cores / 2).injectDefect(0, 7, GateType::kNor);
  return soc;
}

/// Max - min predicted channel load within each TAM, summed over TAMs: the
/// deterministic imbalance the placement pass minimizes (utilization is the
/// wall-clock echo of the same quantity, but noisy).
std::size_t predictedSpread(const PlanForecast& f) {
  std::size_t spread = 0;
  for (const TamForecast& tf : f.tams) {
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (const ChannelLoad& cl : tf.channel_loads) {
      lo = std::min(lo, cl.predicted_tcks);
      hi = std::max(hi, cl.predicted_tcks);
    }
    if (hi > lo) spread += hi - lo;
  }
  return spread;
}

struct PlacementRow {
  PlacementPolicy policy = PlacementPolicy::kPlanOrder;
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  PlanForecast forecast;
  SessionReport report;  // last run (actual makespan + utilization)
};

struct TamSweepRow {
  int tams = 1;
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  SessionReport report;  // last run (per-TAM utilization snapshot)
};

struct Measurement {
  int threads = 1;
  double seconds_median = 0.0;
  double seconds_min = 0.0;
  int cores = 0;
  std::size_t tap_clocks = 0;
  [[nodiscard]] double coresPerSec() const {
    return seconds_median > 0 ? static_cast<double>(cores) / seconds_median
                              : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("SoC session-layer throughput (BENCH_soc.json)");

  const int cores = quick ? 6 : 12;
  const int patterns = quick ? 256 : 1024;
  const int repeats = quick ? 3 : 5;
  auto soc = makeSoc(cores);
  SocTestScheduler scheduler(*soc);

  std::printf("%d cores x %d patterns, serial vs sharded campaigns\n\n",
              cores, patterns);

  std::string reference;
  std::vector<Measurement> rows;
  for (const int threads : {1, 2, 4, 8}) {
    const TestPlan plan =
        TestPlan{}.withPatterns(patterns).withThreads(threads);
    bool diverged = false;
    SessionReport report;
    const Timing t = timeRepeats(repeats, [&] {
      report = scheduler.run(plan);
      if (reference.empty()) {
        reference = report.fingerprint();
      } else if (report.fingerprint() != reference) {
        diverged = true;
      }
    });
    if (diverged) {
      std::fprintf(stderr,
                   "FATAL: %d-shard campaign diverged from the serial "
                   "reference\n", threads);
      return 1;
    }
    Measurement m{threads, t.median, t.min, cores,
                  report.total_tap_clocks};
    rows.push_back(m);
    std::printf("  %d shard(s)  %7.3fs med (%7.3fs min)  %7.2f cores/s  "
                "%10zu TCKs  %s\n",
                m.threads, m.seconds_median, m.seconds_min, m.coresPerSec(),
                m.tap_clocks,
                threads == 1 ? "(serial reference)" : "fingerprint OK");
  }

  double serial_s = 0.0;
  double par4_s = 0.0;
  for (const Measurement& m : rows) {
    if (m.threads == 1) serial_s = m.seconds_median;
    if (m.threads == 4) par4_s = m.seconds_median;
  }
  const double speedup4 = par4_s > 0 ? serial_s / par4_s : 0.0;

  // TAM sweep: the same workload over 1/2/4 TAMs (plus one nested core per
  // TAM), 4 worker threads, per-TAM utilization recorded. Fingerprints are
  // checked like the shard sweep: within each topology the threaded run
  // must equal that topology's serial reference byte for byte.
  std::printf("\nTAM sweep (%d cores + nested, 4 threads)\n", cores);
  std::vector<TamSweepRow> tam_rows;
  for (const int tams : {1, 2, 4}) {
    auto tam_soc = makeMultiTamSoc(cores, tams);
    SocTestScheduler tam_scheduler(*tam_soc);
    const std::string tam_reference =
        tam_scheduler.run(TestPlan{}.withPatterns(patterns).withThreads(1))
            .fingerprint();
    const TestPlan tam_plan =
        TestPlan{}.withPatterns(patterns).withThreads(4);
    TamSweepRow row;
    row.tams = tams;
    bool diverged = false;
    const Timing t = timeRepeats(repeats, [&] {
      row.report = tam_scheduler.run(tam_plan);
      if (row.report.fingerprint() != tam_reference) diverged = true;
    });
    if (diverged) {
      std::fprintf(stderr,
                   "FATAL: %d-TAM campaign diverged from its serial "
                   "reference\n", tams);
      return 1;
    }
    row.seconds_median = t.median;
    row.seconds_min = t.min;
    std::printf("  %d TAM(s)  %7.3fs med (%7.3fs min)  fingerprint OK\n",
                tams, row.seconds_median, row.seconds_min);
    for (const TamReport& tr : row.report.tams) {
      std::printf("    %-8s %2zu core(s)  %10zu TCKs  util %.2f on %d "
                  "channel(s)\n",
                  tr.name.c_str(), tr.core_order.size(), tr.tap_clocks,
                  tr.utilization, tr.channels);
    }
    tam_rows.push_back(std::move(row));
  }

  // Placement sweep: 16 flat cores over 4 TAMs, 2 channels per TAM, with
  // per-core pattern budgets ascending within each TAM — the adversarial
  // case for the plan-order greedy walk. kPlanOrder vs kMakespan are run
  // on the same SoC state sequence; outcomes must fingerprint identically
  // (placement moves work between channels, never changes results), and
  // kMakespan must strictly shrink the predicted makespan here while never
  // widening the predicted channel-load spread.
  const int place_cores = 16;
  const int place_tams = 4;
  const int place_base = quick ? 64 : 256;
  std::printf("\nplacement sweep (%d cores / %d TAMs, 2 channels each, "
              "%d..%d patterns)\n",
              place_cores, place_tams, place_base,
              place_base * (place_cores / place_tams));
  TestPlan place_plan = TestPlan{}.withThreads(8).withChannelsPerTam(2);
  for (int c = 0; c < place_cores; ++c) {
    place_plan.addCore(CorePlan{
        .core_index = c,
        .patterns = place_base * (1 + c / place_tams)});
  }
  std::vector<PlacementRow> place_rows;
  std::string place_reference;
  {
    auto ref_soc = makePlacementSoc(place_cores, place_tams);
    SocTestScheduler ref_scheduler(*ref_soc);
    TestPlan serial = place_plan;
    place_reference = ref_scheduler.run(serial.withThreads(1)).fingerprint();
  }
  for (const PlacementPolicy policy :
       {PlacementPolicy::kPlanOrder, PlacementPolicy::kMakespan}) {
    auto place_soc = makePlacementSoc(place_cores, place_tams);
    SocTestScheduler place_scheduler(*place_soc);
    TestPlan plan = place_plan;
    plan.withPlacement(policy);
    PlacementRow row;
    row.policy = policy;
    row.forecast = place_scheduler.predict(plan);
    bool diverged = false;
    const Timing t = timeRepeats(repeats, [&] {
      row.report = place_scheduler.run(plan);
      if (row.report.fingerprint() != place_reference) diverged = true;
    });
    if (diverged) {
      std::fprintf(stderr,
                   "FATAL: %s placement diverged from the serial reference\n",
                   std::string(placementPolicyName(policy)).c_str());
      return 1;
    }
    row.seconds_median = t.median;
    row.seconds_min = t.min;
    std::printf("  %-10s %7.3fs med  predicted makespan %8zu TCKs  "
                "actual %8zu TCKs  spread %6zu TCKs\n",
                std::string(placementPolicyName(policy)).c_str(),
                row.seconds_median, row.forecast.predicted_makespan_tcks,
                row.report.actual_makespan_tcks,
                predictedSpread(row.forecast));
    place_rows.push_back(std::move(row));
  }
  {
    const PlacementRow& po = place_rows[0];
    const PlacementRow& mk = place_rows[1];
    if (mk.forecast.predicted_makespan_tcks >=
        po.forecast.predicted_makespan_tcks) {
      std::fprintf(stderr,
                   "FATAL: makespan placement did not reduce the predicted "
                   "makespan (%zu vs %zu TCKs)\n",
                   mk.forecast.predicted_makespan_tcks,
                   po.forecast.predicted_makespan_tcks);
      return 1;
    }
    if (predictedSpread(mk.forecast) > predictedSpread(po.forecast)) {
      std::fprintf(stderr,
                   "FATAL: makespan placement widened the predicted "
                   "channel-load spread (%zu vs %zu TCKs)\n",
                   predictedSpread(mk.forecast), predictedSpread(po.forecast));
      return 1;
    }
    for (std::size_t t = 0; t < mk.forecast.tams.size(); ++t) {
      if (mk.forecast.tams[t].predicted_makespan_tcks >
          po.forecast.tams[t].predicted_makespan_tcks) {
        std::fprintf(stderr,
                     "FATAL: makespan placement predicts worse than plan "
                     "order on TAM %d\n", mk.forecast.tams[t].tam_index);
        return 1;
      }
    }
  }

  // Service sweep: the same campaign submitted M times, one-shot (a fresh
  // SocTestScheduler per campaign — every campaign rebuilds lint, fault
  // universes, golden signatures) vs resident (one CampaignService, two
  // workers, shared artifact store). Hard gates: every report fingerprints
  // equal to the serial reference, the resident store actually got cache
  // hits, and the resident batch beats the one-shot batch.
  const int service_campaigns = quick ? 4 : 8;
  std::printf("\nservice sweep (%d campaigns, one-shot vs resident, "
              "2 workers)\n", service_campaigns);
  const TestPlan service_plan =
      TestPlan{}.withPatterns(patterns).withThreads(2);
  bool service_diverged = false;
  const Timing oneshot_t = timeRepeats(repeats, [&] {
    for (int i = 0; i < service_campaigns; ++i) {
      SocTestScheduler oneshot(*soc);
      if (oneshot.run(service_plan).fingerprint() != reference) {
        service_diverged = true;
      }
    }
  });
  CampaignServiceConfig service_cfg;
  service_cfg.workers = 2;
  CampaignService service(*soc, service_cfg);
  const Timing resident_t = timeRepeats(repeats, [&] {
    std::vector<CampaignHandle> handles;
    handles.reserve(static_cast<std::size_t>(service_campaigns));
    for (int i = 0; i < service_campaigns; ++i) {
      handles.push_back(service.submit(service_plan));
    }
    for (const CampaignHandle h : handles) {
      if (service.await(h).fingerprint() != reference) {
        service_diverged = true;
      }
    }
  });
  if (service_diverged) {
    std::fprintf(stderr,
                 "FATAL: a service-sweep campaign diverged from the serial "
                 "reference\n");
    return 1;
  }
  const ArtifactStats service_stats = service.artifactStats();
  if (!(service_stats.hitRate() > 0.0)) {
    std::fprintf(stderr,
                 "FATAL: resident service recorded no artifact cache hits\n");
    return 1;
  }
  if (resident_t.median >= oneshot_t.median) {
    std::fprintf(stderr,
                 "FATAL: resident service (%0.3fs) did not beat one-shot "
                 "(%0.3fs) over %d campaigns\n",
                 resident_t.median, oneshot_t.median, service_campaigns);
    return 1;
  }
  const double oneshot_cps =
      oneshot_t.median > 0 ? service_campaigns / oneshot_t.median : 0.0;
  const double resident_cps =
      resident_t.median > 0 ? service_campaigns / resident_t.median : 0.0;
  std::printf("  one-shot  %7.3fs med (%7.3fs min)  %6.2f campaigns/s\n",
              oneshot_t.median, oneshot_t.min, oneshot_cps);
  std::printf("  resident  %7.3fs med (%7.3fs min)  %6.2f campaigns/s  "
              "hit rate %.2f\n",
              resident_t.median, resident_t.min, resident_cps,
              service_stats.hitRate());

  std::FILE* f = std::fopen("BENCH_soc.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_soc.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"%d-core SoC campaign, %d patterns\",\n",
               cores, patterns);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"lane_words_default\": %d,\n", kLaneWords);
  std::fprintf(f, "  \"lane_backend\": \"%s\",\n", kLaneBackend);
  std::fprintf(f, "  \"speedup_4t_vs_serial\": %.3f,\n",
               jsonFinite(speedup4));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds_median\": %.4f, "
                 "\"seconds_min\": %.4f, \"cores\": %d, "
                 "\"cores_per_sec\": %.2f, \"tap_clocks\": %zu}%s\n",
                 m.threads, jsonFinite(m.seconds_median),
                 jsonFinite(m.seconds_min), m.cores,
                 jsonFinite(m.coresPerSec()), m.tap_clocks,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"tam_sweep\": [\n");
  for (std::size_t i = 0; i < tam_rows.size(); ++i) {
    const TamSweepRow& row = tam_rows[i];
    std::fprintf(f,
                 "    {\"tams\": %d, \"threads\": 4, "
                 "\"seconds_median\": %.4f, \"seconds_min\": %.4f, "
                 "\"per_tam\": [",
                 row.tams, jsonFinite(row.seconds_median),
                 jsonFinite(row.seconds_min));
    for (std::size_t t = 0; t < row.report.tams.size(); ++t) {
      const TamReport& tr = row.report.tams[t];
      std::fprintf(f,
                   "%s{\"tam\": %d, \"name\": \"%s\", \"cores\": %zu, "
                   "\"tap_clocks\": %zu, \"channels\": %d, "
                   "\"utilization\": %.3f}",
                   t == 0 ? "" : ", ", tr.tam_index, tr.name.c_str(),
                   tr.core_order.size(), tr.tap_clocks, tr.channels,
                   jsonFinite(tr.utilization));
    }
    std::fprintf(f, "]}%s\n", i + 1 < tam_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"placement_sweep\": [\n");
  for (std::size_t i = 0; i < place_rows.size(); ++i) {
    const PlacementRow& row = place_rows[i];
    std::fprintf(f,
                 "    {\"placement\": \"%s\", \"threads\": 8, "
                 "\"seconds_median\": %.4f, \"seconds_min\": %.4f, "
                 "\"predicted_makespan\": %zu, \"actual_makespan\": %zu, "
                 "\"predicted_spread\": %zu, \"per_tam\": [",
                 std::string(placementPolicyName(row.policy)).c_str(),
                 jsonFinite(row.seconds_median), jsonFinite(row.seconds_min),
                 row.forecast.predicted_makespan_tcks,
                 row.report.actual_makespan_tcks,
                 predictedSpread(row.forecast));
    for (std::size_t t = 0; t < row.report.tams.size(); ++t) {
      const TamReport& tr = row.report.tams[t];
      std::fprintf(f,
                   "%s{\"tam\": %d, \"channels\": %d, "
                   "\"predicted_makespan\": %zu, \"actual_makespan\": %zu, "
                   "\"utilization\": %.3f}",
                   t == 0 ? "" : ", ", tr.tam_index, tr.channels,
                   tr.predicted_makespan_tcks, tr.actual_makespan_tcks,
                   jsonFinite(tr.utilization));
    }
    std::fprintf(f, "]}%s\n", i + 1 < place_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"service\": {\"campaigns\": %d, \"workers\": 2,\n"
               "    \"oneshot\": {\"seconds_median\": %.4f, "
               "\"seconds_min\": %.4f, \"campaigns_per_sec\": %.2f},\n"
               "    \"resident\": {\"seconds_median\": %.4f, "
               "\"seconds_min\": %.4f, \"campaigns_per_sec\": %.2f,\n"
               "      \"artifact_cache_hit_rate\": %.4f, "
               "\"artifact_hits\": %llu, \"artifact_misses\": %llu,\n"
               "      \"modules_built\": %llu, \"modules_shared\": %llu}}\n",
               service_campaigns, jsonFinite(oneshot_t.median),
               jsonFinite(oneshot_t.min), jsonFinite(oneshot_cps),
               jsonFinite(resident_t.median), jsonFinite(resident_t.min),
               jsonFinite(resident_cps), jsonFinite(service_stats.hitRate()),
               static_cast<unsigned long long>(service_stats.hits),
               static_cast<unsigned long long>(service_stats.misses),
               static_cast<unsigned long long>(service_stats.modules_built),
               static_cast<unsigned long long>(service_stats.modules_shared));
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\nspeedup at 4 shards vs serial: %.2fx "
              "(hardware_concurrency=%u)\n-> BENCH_soc.json\n",
              speedup4, std::thread::hardware_concurrency());
  return 0;
}
