// Ablation: ALFSR width / polynomial (paper §3.2: "modify the ALFSR or
// MISRs structure" is one of the coverage-recovery actions).
#include <cstdio>

#include "case_study.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"

using namespace corebist;
using namespace corebist::bench;

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Ablation: ALFSR width and polynomial (CONTROL_UNIT)");
  CaseStudy cs;
  const int cycles = quick ? 256 : 2048;
  const FaultUniverse u = enumerateStuckAt(cs.cu);

  std::printf("\n%d patterns, %zu faults\n", cycles, u.faults.size());
  std::printf("  %-28s %10s\n", "ALFSR", "FC");
  for (const int width : {8, 12, 16, 20, 24, 28}) {
    BistEngineConfig cfg;
    cfg.lfsr_width = width;
    BistEngine engine(cfg);
    const int m = engine.attachModule(cs.cu);
    SeqFaultSim fsim(cs.cu);
    SeqFsimOptions o;
    o.cycles = cycles;
    const auto r = fsim.run(u.faults, engine.stimulus(m, cycles), o);
    std::printf("  %2d-bit primitive poly %15.2f%%%s\n", width, r.coverage(),
                width == 20 ? "   <- case study" : "");
  }

  // Non-primitive (short-period) feedback as a cautionary row.
  {
    BistEngineConfig cfg;
    cfg.lfsr_width = 20;
    cfg.lfsr_taps = {19, 9};  // x^20 + x^10 + 1: factorable, short cycles
    BistEngine engine(cfg);
    const int m = engine.attachModule(cs.cu);
    SeqFaultSim fsim(cs.cu);
    SeqFsimOptions o;
    o.cycles = cycles;
    const auto r = fsim.run(u.faults, engine.stimulus(m, cycles), o);
    std::printf("  20-bit NON-primitive taps %11.2f%%   <- short period "
                "hurts\n", r.coverage());
  }
  return 0;
}
