// Table 2: area overhead of the DfT logic (BIST engine + P1500 wrapper)
// relative to the serial LDPC core, in the calibrated 0.13 um library.
#include <cstdio>

#include "bist/engine_hw.hpp"
#include "case_study.hpp"
#include "p1500/wrapper_hw.hpp"
#include "synth/area.hpp"

using namespace corebist;
using namespace corebist::bench;

int main() {
  printHeader("Table 2: Area overhead evaluation [um^2, 0.13um-class library]");
  const CaseStudy cs;
  const TechLib lib = TechLib::generic130nm();

  const double a_bn = reportArea(cs.bn, lib).total_um2;
  const double a_cn = reportArea(cs.cn, lib).total_um2;
  const double a_cu = reportArea(cs.cu, lib).total_um2;
  const double a_core = a_bn + a_cn + a_cu;

  const Netlist engine_hw = buildBistEngineHw(cs.engine);
  const double a_bist = reportArea(engine_hw, lib).total_um2;

  // The wrapper wraps the core's external interface (the decoder's
  // functional I/O, modelled as 24 in + 25 out) plus WIR/WBY/WCDR/WDR.
  const Netlist wrapper_hw = buildWrapperHw(24, 25);
  const double a_wrap = reportArea(wrapper_hw, lib).total_um2;

  struct Row {
    const char* name;
    double area;
    double overhead;  // percent of core
    double paper_area;
    double paper_ovh;
  };
  const Row rows[] = {
      {"Serial LDPC", a_core, 0.0, 165817.88, 0.0},
      {"BIST engine", a_bist, 100.0 * a_bist / a_core, 22481.63, 13.5},
      {"P1500 Wrapper", a_wrap, 100.0 * a_wrap / a_core, 4566.94, 2.8},
      {"TOTAL", a_core + a_bist + a_wrap,
       100.0 * (a_bist + a_wrap) / a_core, 192866.51, 16.4},
  };
  std::printf("%-14s %14s %10s %14s %10s\n", "Component", "Area [um^2]",
              "Ovh [%]", "paper area", "paper ovh");
  for (const Row& r : rows) {
    std::printf("%-14s %14.2f %10.2f %14.2f %10.1f\n", r.name, r.area,
                r.overhead, r.paper_area, r.paper_ovh);
  }

  std::printf("\nPer-module core area: BIT_NODE %.0f, CHECK_NODE %.0f, "
              "CONTROL_UNIT %.0f um^2\n", a_bn, a_cn, a_cu);
  std::printf("Engine hardware: %zu gates, %zu flops; wrapper: %zu gates, "
              "%zu flops\n", engine_hw.numGates(), engine_hw.dffs().size(),
              wrapper_hw.numGates(), wrapper_hw.dffs().size());
  std::printf("TAM share of DfT logic (paper: wrapper is a fixed 16%% of the "
              "core-level test logic): %.1f %%\n",
              100.0 * a_wrap / (a_bist + a_wrap));
  return 0;
}
