// Fig. 3: Step-1 loop — statement coverage and toggle activity vs pattern
// count, sampled while the exact BIST stimulus runs on the behavioural
// models ("RTL") and the gate-level netlists.
#include <cstdio>

#include "case_study.hpp"
#include "eval/flow.hpp"
#include "ldpc/arch/adapters.hpp"

using namespace corebist;
using namespace corebist::bench;

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Fig. 3: statement coverage / toggle activity evaluation loop");
  CaseStudy cs;

  struct Cfg {
    std::unique_ptr<ldpc::ModuleAdapter> adapter;
    int slot;
  };
  std::vector<Cfg> mods;
  mods.push_back({ldpc::makeBitNodeAdapter(), cs.m_bn});
  mods.push_back({ldpc::makeCheckNodeAdapter(), cs.m_cn});
  mods.push_back({ldpc::makeControlUnitAdapter(), cs.m_cu});

  const std::vector<int> checkpoints =
      quick ? std::vector<int>{8, 32, 128, 512}
            : std::vector<int>{8, 32, 128, 512, 1024, 2048, 4096};

  for (const Cfg& mc : mods) {
    const Netlist& nl = cs.module(mc.slot);
    const auto stim = cs.engine.stimulus(mc.slot, checkpoints.back());
    const Step1Result res =
        runStep1Loop(*mc.adapter, nl, stim, checkpoints);
    std::printf("\n%s (statements: %d)\n", mc.adapter->name().c_str(),
                mc.adapter->numStatements());
    std::printf("  %10s %22s %18s\n", "patterns", "statement coverage",
                "toggle activity");
    for (const Step1Point& p : res.points) {
      std::printf("  %10d %21.1f%% %17.1f%%\n", p.patterns,
                  100.0 * p.statement_coverage, 100.0 * p.toggle_activity);
    }
    if (res.patterns_at_full_statement >= 0) {
      std::printf("  -> 100%% statement coverage reached at %d patterns "
                  "(\"enough\": exit to step 2)\n",
                  res.patterns_at_full_statement);
    } else {
      std::printf("  -> statement coverage still below 100%%: the Fig. 3 "
                  "loop would add patterns\n");
    }
  }
  return 0;
}
