// Fault-simulation kernel throughput: serial engines vs ParallelFaultSim,
// and the wide-lane (W x 64 pattern) comb kernel sweep, on the Table 3
// BIST workload. Emits BENCH_fsim.json (current directory) so the
// patterns/sec trajectory is tracked from PR to PR.
//
// Metrics: patterns_per_sec counts applied stimulus patterns per second of
// wall time; mfault_patterns_per_sec counts fault x pattern grading work
// (faults * cycles / seconds / 1e6), the throughput that fault dropping,
// threading and lane widening actually scale. Every row is the median (and
// min) of `repeats` runs — single-shot timings on shared runners are noise,
// not measurements. Before any wide-lane row is reported its results are
// checked byte-identical to the 64-lane reference.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "case_study.hpp"
#include "core/session_report.hpp"  // jsonFinite
#include "fault/backend.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/lane.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/scan.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

struct Measurement {
  std::string engine;
  int threads = 1;
  int lane_words = 0;  // 0 => not a lane-parallel engine (fault-parallel)
  Timing t;
  std::size_t faults = 0;
  int cycles = 0;
  std::size_t detected = 0;

  [[nodiscard]] double patternsPerSec() const {
    return t.median > 0 ? static_cast<double>(cycles) / t.median : 0.0;
  }
  [[nodiscard]] double mfaultPatternsPerSec() const {
    return t.median > 0 ? static_cast<double>(faults) *
                              static_cast<double>(cycles) / t.median / 1e6
                        : 0.0;
  }
};

void printRow(const Measurement& m) {
  std::printf("  %-11s %d thr  %d lw  %7.3fs med (%7.3fs min)  "
              "%10.0f patterns/s  %8.2f Mfault-patterns/s  (%zu detected)\n",
              m.engine.c_str(), m.threads, m.lane_words, m.t.median, m.t.min,
              m.patternsPerSec(), m.mfaultPatternsPerSec(), m.detected);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Fault-simulation kernel throughput (BENCH_fsim.json)");
  CaseStudy cs;

  const int repeats = quick ? 3 : 5;
  const int cycles = quick ? 256 : 1024;
  const int comb_cycles = quick ? 1024 : 4096;
  // CHECK_NODE dominates wall time; quick mode keeps the two small modules.
  struct Slot {
    int slot;
    std::vector<int> chains;  // scan-chain partition for the comb view
  };
  std::vector<Slot> slots = {{cs.m_bn, {}}, {cs.m_cu, {14, 28}}};
  if (!quick) slots.push_back({cs.m_cn, {}});

  std::vector<Measurement> rows;
  bool wide_identical = true;
  for (const Slot& sl : slots) {
    const Netlist& nl = cs.module(sl.slot);
    const FaultUniverse u = enumerateStuckAt(nl);
    const auto stim = cs.engine.stimulus(sl.slot, cycles);
    const CyclePatternSource patterns(stim, nl.primaryInputs().size());
    FaultSimOptions o;
    o.cycles = cycles;

    std::printf("\n%s: %zu faults, %d cycles (sequential at-speed view)\n",
                nl.name().c_str(), u.faults.size(), cycles);
    {
      SeqFaultSim serial(nl);
      SeqFsimOptions so = o;
      so.num_threads = 1;
      std::size_t detected = 0;
      const Timing t = timeRepeats(repeats, [&] {
        detected = serial.run(u.faults, stim, so).detected;
      });
      rows.push_back(
          {"seq-serial", 1, 0, t, u.faults.size(), cycles, detected});
      printRow(rows.back());
    }
    for (const int threads : {1, 2, 4, 8}) {
      ParallelFsimOptions popts;
      popts.num_threads = threads;
      ParallelFaultSim psim(SeqFaultSim{nl}, popts);
      std::size_t detected = 0;
      const Timing t = timeRepeats(repeats, [&] {
        detected = psim.run(u.faults, patterns, o).detected;
      });
      rows.push_back(
          {"seq-parallel", threads, 0, t, u.faults.size(), cycles, detected});
      printRow(rows.back());
    }

    // Backend x lane-width cross on the full-scan comb view of the same
    // module: the same stuck-at grading the ATPG bootstrap and dictionary
    // flows run, on every execution backend (serial engine, thread-sharded
    // ParallelFaultSim, fork-sharded ProcessFaultSim) at every linked lane
    // width. Every cell is checked byte-identical to the serial 64-lane
    // reference before being reported — a diverging cell fails the bench.
    const Netlist scanned = buildScannedModule(nl, sl.chains);
    const ScanView view = makeScanView(scanned, sl.chains);
    const FaultUniverse su = enumerateStuckAt(scanned);
    const RandomPatternSource comb_patterns(0xB15D ^ sl.slot,
                                            view.inputs.size(), comb_cycles);
    FaultSimOptions co;
    co.cycles = comb_cycles;
    co.prepass_cycles = 0;
    // Full-length grading: mfault_patterns_per_sec divides faults * cycles
    // by wall time, which is only the real work when no fault drops early.
    // (Dropping campaigns are covered by the seq rows above; dictionary and
    // diagnosis flows run the comb kernel full-length exactly like this.)
    co.drop_detected = false;
    std::printf("%s: %zu faults, %d patterns (full-scan comb view, "
                "backend x lane sweep)\n",
                scanned.name().c_str(), su.faults.size(), comb_cycles);
    FaultSimResult ref;
    for (const FsimBackend backend :
         {FsimBackend::kSerial, FsimBackend::kThreaded,
          FsimBackend::kProcess}) {
      for (const int lane_words : {1, 2, 4, 8}) {
        FsimBackendOptions bopts;
        bopts.backend = backend;
        bopts.lane_words = lane_words;
        bopts.num_workers = 2;
        const auto fsim =
            makeCombFaultSim(scanned, view.inputs, view.observed, bopts);
        FaultSimResult r;
        const Timing t = timeRepeats(
            repeats, [&] { r = fsim->run(su.faults, comb_patterns, co); });
        const bool is_ref =
            backend == FsimBackend::kSerial && lane_words == 1;
        if (is_ref) {
          ref = r;
        } else if (r.first_detect != ref.first_detect ||
                   r.detected != ref.detected ||
                   r.patterns_applied != ref.patterns_applied) {
          std::fprintf(stderr,
                       "FATAL: %s backend at %d lanes diverged from the "
                       "serial 64-lane reference on %s\n",
                       fsimBackendName(backend), 64 * lane_words,
                       scanned.name().c_str());
          wide_identical = false;
        }
        const int workers = backend == FsimBackend::kSerial ? 1 : 2;
        rows.push_back({std::string("comb-") + fsimBackendName(backend),
                        workers, lane_words, t, su.faults.size(), comb_cycles,
                        r.detected});
        printRow(rows.back());
      }
    }
  }
  if (!wide_identical) return 1;

  // Unarmed resilient-supervisor overhead vs the plain process backend on
  // one representative module: same fleet size, same shards, no failpoint
  // armed — the ratio keeps the "zero-cost when unarmed" claim honest from
  // PR to PR. Both results are checked byte-identical to each other first.
  double resilient_overhead = 0.0;
  {
    const Netlist& nl = cs.module(cs.m_cu);
    const Netlist scanned = buildScannedModule(nl, {14, 28});
    const ScanView view = makeScanView(scanned, {14, 28});
    const FaultUniverse su = enumerateStuckAt(scanned);
    const RandomPatternSource comb_patterns(0xE51, view.inputs.size(),
                                            comb_cycles);
    FaultSimOptions co;
    co.cycles = comb_cycles;
    co.prepass_cycles = 0;
    co.drop_detected = false;
    std::printf("\n%s: resilient supervisor overhead (unarmed) vs process\n",
                scanned.name().c_str());
    FaultSimResult results[2];
    for (const FsimBackend backend :
         {FsimBackend::kProcess, FsimBackend::kResilient}) {
      FsimBackendOptions bopts;
      bopts.backend = backend;
      bopts.num_workers = 2;
      const auto fsim =
          makeCombFaultSim(scanned, view.inputs, view.observed, bopts);
      FaultSimResult& r = results[backend == FsimBackend::kResilient ? 1 : 0];
      const Timing t = timeRepeats(
          repeats, [&] { r = fsim->run(su.faults, comb_patterns, co); });
      rows.push_back({std::string("overhead-") + fsimBackendName(backend), 2,
                      0, t, su.faults.size(), comb_cycles, r.detected});
      printRow(rows.back());
      if (backend == FsimBackend::kProcess) {
        resilient_overhead = t.median;
      } else if (t.median > 0 && resilient_overhead > 0) {
        resilient_overhead = t.median / resilient_overhead;
      }
    }
    if (results[0].first_detect != results[1].first_detect ||
        results[0].detected != results[1].detected ||
        results[0].patterns_applied != results[1].patterns_applied) {
      std::fprintf(stderr, "FATAL: resilient backend diverged from process "
                           "on %s\n",
                   scanned.name().c_str());
      return 1;
    }
  }

  // Aggregate speedups over summed median wall time (same work per row).
  double seq_serial_s = 0.0;
  double seq_par4_s = 0.0;
  double comb_w1_s = 0.0;
  double comb_wide_s = 0.0;
  for (const auto& r : rows) {
    if (r.engine == "seq-serial") seq_serial_s += r.t.median;
    if (r.engine == "seq-parallel" && r.threads == 4) {
      seq_par4_s += r.t.median;
    }
    if (r.engine == "comb-serial" && r.lane_words == 1) {
      comb_w1_s += r.t.median;
    }
    if (r.engine == "comb-serial" && r.lane_words == kLaneWords) {
      comb_wide_s += r.t.median;
    }
  }
  const double speedup4 = seq_par4_s > 0 ? seq_serial_s / seq_par4_s : 0.0;
  const double wide_speedup = comb_wide_s > 0 ? comb_w1_s / comb_wide_s : 0.0;

  std::FILE* f = std::fopen("BENCH_fsim.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_fsim.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"table3 BIST stuck-at, %d cycles "
               "(seq) / %d patterns (comb)\",\n",
               cycles, comb_cycles);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"lane_words_default\": %d,\n", kLaneWords);
  std::fprintf(f, "  \"lane_backend\": \"%s\",\n", kLaneBackend);
  // Every double goes through jsonFinite: a zero-duration timing window
  // otherwise turns a ratio into inf/nan, which %f prints as non-JSON.
  std::fprintf(f, "  \"speedup_4t_vs_serial\": %.3f,\n", jsonFinite(speedup4));
  std::fprintf(f, "  \"wide_speedup_vs_64lane\": %.3f,\n",
               jsonFinite(wide_speedup));
  std::fprintf(f, "  \"resilient_overhead_vs_process\": %.3f,\n",
               jsonFinite(resilient_overhead));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"threads\": %d, "
                 "\"lane_words\": %d, \"faults\": %zu, \"cycles\": %d, "
                 "\"seconds_median\": %.4f, \"seconds_min\": %.4f, "
                 "\"patterns_per_sec\": %.1f, "
                 "\"mfault_patterns_per_sec\": %.3f, \"detected\": %zu}%s\n",
                 r.engine.c_str(), r.threads, r.lane_words, r.faults,
                 r.cycles, jsonFinite(r.t.median), jsonFinite(r.t.min),
                 jsonFinite(r.patternsPerSec()),
                 jsonFinite(r.mfaultPatternsPerSec()), r.detected,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\nspeedup at 4 threads vs serial (seq): %.2fx\n"
              "wide %d-lane kernel vs 64-lane (comb): %.2fx\n"
              "resilient overhead vs process (unarmed): %.2fx\n"
              "(hardware_concurrency=%u, repeats=%d)\n-> BENCH_fsim.json\n",
              speedup4, 64 * kLaneWords, wide_speedup, resilient_overhead,
              std::thread::hardware_concurrency(), repeats);
  return 0;
}
