// Fault-simulation kernel throughput: serial engines vs ParallelFaultSim
// on the Table 3 BIST workload. Emits BENCH_fsim.json (current directory)
// so the patterns/sec trajectory is tracked from PR to PR.
//
// Metrics: patterns_per_sec counts applied stimulus patterns per second of
// wall time; mfault_patterns_per_sec counts fault x pattern grading work
// (faults * cycles / seconds / 1e6), the throughput that fault dropping and
// threading actually scale.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "case_study.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

struct Measurement {
  std::string engine;
  int threads = 1;
  double seconds = 0.0;
  std::size_t faults = 0;
  int cycles = 0;
  std::size_t detected = 0;

  [[nodiscard]] double patternsPerSec() const {
    return seconds > 0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
  [[nodiscard]] double mfaultPatternsPerSec() const {
    return seconds > 0 ? static_cast<double>(faults) *
                             static_cast<double>(cycles) / seconds / 1e6
                       : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Fault-simulation kernel throughput (BENCH_fsim.json)");
  CaseStudy cs;

  const int cycles = quick ? 256 : 1024;
  // CHECK_NODE dominates wall time; quick mode keeps the two small modules.
  std::vector<int> slots = {cs.m_bn, cs.m_cu};
  if (!quick) slots.push_back(cs.m_cn);

  std::vector<Measurement> rows;
  for (const int slot : slots) {
    const Netlist& nl = cs.module(slot);
    const FaultUniverse u = enumerateStuckAt(nl);
    const auto stim = cs.engine.stimulus(slot, cycles);
    const CyclePatternSource patterns(stim, nl.primaryInputs().size());
    FaultSimOptions o;
    o.cycles = cycles;

    {
      SeqFaultSim serial(nl);
      SeqFsimOptions so = o;
      so.num_threads = 1;
      Stopwatch sw;
      const auto r = serial.run(u.faults, stim, so);
      rows.push_back({"serial", 1, sw.seconds(), u.faults.size(), cycles,
                      r.detected});
    }
    for (const int threads : {1, 2, 4, 8}) {
      ParallelFsimOptions popts;
      popts.num_threads = threads;
      ParallelFaultSim psim(SeqFaultSim{nl}, popts);
      Stopwatch sw;
      const auto r = psim.run(u.faults, patterns, o);
      rows.push_back({"parallel", threads, sw.seconds(), u.faults.size(),
                      cycles, r.detected});
    }

    std::printf("\n%s: %zu faults, %d cycles\n", nl.name().c_str(),
                u.faults.size(), cycles);
    for (auto it = rows.end() - 5; it != rows.end(); ++it) {
      std::printf("  %-8s %d thread(s)  %7.3fs  %10.0f patterns/s  "
                  "%8.2f Mfault-patterns/s  (%zu detected)\n",
                  it->engine.c_str(), it->threads, it->seconds,
                  it->patternsPerSec(), it->mfaultPatternsPerSec(),
                  it->detected);
    }
  }

  // Aggregate speedup at 4 threads over serial (summed wall time).
  double serial_s = 0.0;
  double par4_s = 0.0;
  for (const auto& r : rows) {
    if (r.engine == "serial") serial_s += r.seconds;
    if (r.engine == "parallel" && r.threads == 4) par4_s += r.seconds;
  }
  const double speedup4 = par4_s > 0 ? serial_s / par4_s : 0.0;

  std::FILE* f = std::fopen("BENCH_fsim.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_fsim.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"table3 BIST stuck-at, %d cycles\",\n",
               cycles);
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"speedup_4t_vs_serial\": %.3f,\n", speedup4);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"threads\": %d, \"faults\": %zu, "
                 "\"cycles\": %d, \"seconds\": %.4f, "
                 "\"patterns_per_sec\": %.1f, "
                 "\"mfault_patterns_per_sec\": %.3f, \"detected\": %zu}%s\n",
                 r.engine.c_str(), r.threads, r.faults, r.cycles, r.seconds,
                 r.patternsPerSec(), r.mfaultPatternsPerSec(), r.detected,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\nspeedup at 4 threads vs serial: %.2fx "
              "(hardware_concurrency=%u)\n-> BENCH_fsim.json\n",
              speedup4, std::thread::hardware_concurrency());
  return 0;
}
