// Table 3: fault coverage of BIST vs sequential-ATPG vs full-scan patterns,
// stuck-at + transition-delay, with applied clock cycles and CPU time.
#include <algorithm>
#include <cstdio>

#include "analyze/scoap.hpp"
#include "atpg/atpg.hpp"
#include "case_study.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/scan.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

struct PaperRow {
  int faults;
  double saf_fc;
  double tdf_fc;
  long cycles_saf;
  long cycles_tdf;
};

struct ModuleCfg {
  const char* name;
  int slot;
  std::vector<int> chains;
  PaperRow bist;
  PaperRow seq;
  PaperRow scan;
};

void printRow(const char* approach, const char* fault_type, std::size_t nf,
              double fc, std::size_t cycles, double cpu, int paper_faults,
              double paper_fc, long paper_cycles) {
  std::printf("  %-10s %-4s  faults %7zu  FC %6.2f%%  cycles %8zu  cpu %7.1fs"
              "   (paper: %6d / %5.1f%% / %ld)\n",
              approach, fault_type, nf, fc, cycles, cpu, paper_faults,
              paper_fc, paper_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader(quick ? "Table 3: fault coverage (QUICK smoke scale)"
                    : "Table 3: fault coverage (paper scale)");
  CaseStudy cs;

  const int bist_cycles = quick ? 512 : 4096;
  const int seq_cycles = quick ? 512 : 4096;

  const std::vector<ModuleCfg> mods = {
      {"BIT_NODE", cs.m_bn, {},
       {7532, 97.8, 95.6, 4096, 4096},
       {7532, 93.8, 84.3, 11340, 16580},
       {7836, 98.5, 91.2, 21248, 39168}},
      {"CHECK_NODE", cs.m_cn, {},
       {86104, 91.6, 90.7, 4096, 4096},
       {86104, 82.9, 76.4, 8374, 7844},
       {89412, 93.1, 87.1, 380064, 866272}},
      {"CONTROL_UNIT", cs.m_cu, {14, 28},
       {3038, 97.5, 95.3, 4096, 4096},
       {3038, 89.8, 84.0, 3060, 4860},
       {3216, 98.6, 91.3, 16965, 27405}},
  };

  for (const ModuleCfg& mc : mods) {
    const Netlist& nl = cs.module(mc.slot);
    std::printf("\n%s\n", mc.name);
    const FaultUniverse u = enumerateStuckAt(nl);
    const auto tdf = toTransitionFaults(u.faults);
    const auto stim = cs.engine.stimulus(mc.slot, bist_cycles);

    // ---- SCOAP static testability profile (analyze/scoap.hpp) ----
    // Observation model of the functional machine: primary outputs plus
    // flip-flop D nets (state capture). The profile explains the coverage
    // rows below before any pattern is applied: high median CC/CO predicts
    // the random-resistant faults PODEM has to chase.
    {
      std::vector<NetId> observed = nl.primaryOutputs();
      for (const Dff& ff : nl.dffs()) observed.push_back(ff.d);
      const ScoapScores sc = computeScoap(nl, observed);
      std::vector<std::uint32_t> cc;
      std::vector<std::uint32_t> co;
      std::size_t unobservable = 0;
      for (NetId n = 0; n < nl.numNets(); ++n) {
        if (sc.cc0[n] < kScoapInf) cc.push_back(sc.cc0[n]);
        if (sc.cc1[n] < kScoapInf) cc.push_back(sc.cc1[n]);
        if (sc.co[n] < kScoapInf) {
          co.push_back(sc.co[n]);
        } else {
          ++unobservable;
        }
      }
      std::sort(cc.begin(), cc.end());
      std::sort(co.begin(), co.end());
      const auto median = [](const std::vector<std::uint32_t>& v) {
        return v.empty() ? 0u : v[v.size() / 2];
      };
      std::printf("  %-10s       CC med %u max %u | CO med %u max %u | "
                  "%zu unobservable nets (%zu total)\n",
                  "SCOAP", median(cc), cc.empty() ? 0u : cc.back(),
                  median(co), co.empty() ? 0u : co.back(), unobservable,
                  nl.numNets());
    }

    // ---- BIST (threaded fault-simulation kernel) ----
    {
      ParallelFaultSim fsim(SeqFaultSim{nl});
      const CyclePatternSource patterns(stim, nl.primaryInputs().size());
      FaultSimOptions o;
      o.cycles = bist_cycles;
      Stopwatch sw;
      const auto saf = fsim.run(u.faults, patterns, o);
      const double t_saf = sw.seconds();
      Stopwatch sw2;
      const auto tdfr = fsim.run(tdf, patterns, o);
      const double t_tdf = sw2.seconds();
      printRow("BIST", "SAF", saf.total, saf.coverage(),
               static_cast<std::size_t>(bist_cycles), t_saf, mc.bist.faults,
               mc.bist.saf_fc, mc.bist.cycles_saf);
      printRow("BIST", "TDF", tdfr.total, tdfr.coverage(),
               static_cast<std::size_t>(bist_cycles), t_tdf, mc.bist.faults,
               mc.bist.tdf_fc, mc.bist.cycles_tdf);
    }

    // ---- BIST signature-qualified (MISR incl. aliasing) ----
    // The rows above count output-observed detections; the shipped BIST
    // only sees the MISR signature, so aliasing can hide a detected fault.
    // signatureCoverage re-grades the universe with the module's MISR
    // compaction model attached (full-length simulation, no dropping).
    if (!quick || mc.slot != cs.m_cn) {
      Stopwatch sw;
      const auto sig =
          cs.engine.signatureCoverage(mc.slot, u.faults, bist_cycles);
      const double fc_sig = sig.misrCoverage();
      std::printf("  %-10s %-4s  faults %7zu  FC %6.2f%%  cycles %8d  "
                  "cpu %7.1fs   (aliasing loss %.2f pts off %.2f%% "
                  "output-observed)\n",
                  "BIST+MISR", "SAF", sig.total, fc_sig, bist_cycles,
                  sw.seconds(), sig.coverage() - fc_sig, sig.coverage());
    } else {
      std::printf("  %-10s %-4s  skipped in --quick (full-length sim of "
                  "%zu faults)\n", "BIST+MISR", "SAF", u.faults.size());
    }

    // ---- Sequential (simulation-based ATPG, functional inputs only) ----
    {
      SeqAtpgOptions o;
      o.sequence_cycles = seq_cycles;
      o.candidates = quick ? 1 : (mc.slot == cs.m_cn ? 1 : 2);
      Stopwatch sw;
      const auto saf = runSequentialAtpg(nl, u.faults, o);
      const double t_saf = sw.seconds();
      printRow("Sequential", "SAF", saf.total_faults, saf.coverage(),
               saf.effective_cycles, t_saf, mc.seq.faults, mc.seq.saf_fc,
               mc.seq.cycles_saf);
      // TDF: grade the chosen sequence against the transition list.
      ParallelFaultSim fsim(SeqFaultSim{nl});
      const CyclePatternSource seq_patterns(saf.best_sequence,
                                            nl.primaryInputs().size());
      FaultSimOptions fo;
      fo.cycles = seq_cycles;
      Stopwatch sw2;
      const auto tdfr = fsim.run(tdf, seq_patterns, fo);
      printRow("Sequential", "TDF", tdfr.total, tdfr.coverage(),
               saf.effective_cycles, sw2.seconds(), mc.seq.faults,
               mc.seq.tdf_fc, mc.seq.cycles_tdf);
    }

    // ---- Full scan ----
    {
      const Netlist scanned = buildScannedModule(nl, mc.chains);
      const ScanView view = makeScanView(scanned, mc.chains);
      const FaultUniverse su = enumerateStuckAt(scanned);
      const auto stdf = toTransitionFaults(su.faults);
      FullScanAtpgOptions o;
      o.podem_budget_seconds = quick ? 2.0 : (mc.slot == cs.m_cn ? 60.0 : 20.0);
      o.max_random_blocks = quick ? 8 : 48;
      // PODEM/LOS candidates are graded in batches through FaultSim::run;
      // shard the big CHECK_NODE fault list across grading workers (results
      // are byte-identical at any thread count).
      o.num_threads = mc.slot == cs.m_cn ? 4 : 1;
      const auto saf = runFullScanAtpg(scanned, view, su.faults, o);
      printRow("Full scan", "SAF", saf.total_faults, saf.coverage(),
               saf.test_cycles, saf.cpu_seconds, mc.scan.faults,
               mc.scan.saf_fc, mc.scan.cycles_saf);
      std::printf("  %-10s       %zu PODEM calls, %zu aborted, %zu batch "
                  "campaigns over %zu patterns\n",
                  "", saf.podem_calls, saf.aborted, saf.batches,
                  saf.patterns);
      const auto tdfr = runFullScanTransition(scanned, view, stdf, o);
      printRow("Full scan", "TDF", tdfr.total_faults, tdfr.coverage(),
               tdfr.test_cycles, tdfr.cpu_seconds, mc.scan.faults,
               mc.scan.tdf_fc, mc.scan.cycles_tdf);
    }
  }

  std::printf(
      "\nShape checks (paper's qualitative claims):\n"
      "  * BIST SAF coverage above sequential-ATPG, near full-scan\n"
      "  * BIST TDF coverage above full-scan TDF (at-speed advantage)\n"
      "  * BIST applies 1 pattern/clock: cycle counts orders below scan\n"
      "  * MISR-qualified FC trails output-observed FC only by a small\n"
      "    aliasing loss (the 16-bit MISR rarely masks a detection)\n");
  return 0;
}
