// Fig. 4: Step-2 loop — fault coverage vs applied patterns on the
// synthesized modules, the "add patterns until enough or budget exceeded"
// iteration. One ParallelFaultSim campaign (hardware-concurrency workers
// over the shared FaultSim kernel) yields the full curve.
#include <cstdio>

#include "case_study.hpp"
#include "eval/flow.hpp"
#include "fault/fault.hpp"

using namespace corebist;
using namespace corebist::bench;

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Fig. 4: fault-coverage evaluation loop (add-patterns action)");
  CaseStudy cs;

  struct Cfg {
    const char* name;
    int slot;
    double target;
  };
  // CHECK_NODE is the expensive one; full curve on the two small modules,
  // a shorter budget for CHECK_NODE unless quick mode trims everything.
  const std::vector<Cfg> mods = {
      {"BIT_NODE", cs.m_bn, 97.0},
      {"CONTROL_UNIT", cs.m_cu, 97.0},
      {"CHECK_NODE", cs.m_cn, 85.0},
  };
  const std::vector<int> checkpoints =
      quick ? std::vector<int>{64, 256, 512}
            : std::vector<int>{64, 256, 512, 1024, 2048, 4096};

  for (const Cfg& mc : mods) {
    const Netlist& nl = cs.module(mc.slot);
    const int budget =
        quick ? 512 : (mc.slot == cs.m_cn ? 2048 : checkpoints.back());
    std::vector<int> cps;
    for (const int c : checkpoints) {
      if (c <= budget) cps.push_back(c);
    }
    const FaultUniverse u = enumerateStuckAt(nl);
    const auto stim = cs.engine.stimulus(mc.slot, budget);
    const Step2Result res =
        runStep2Loop(nl, u.faults, stim, cps, mc.target);
    std::printf("\n%s (%zu faults, target %.1f%%)\n", mc.name,
                u.faults.size(), mc.target);
    std::printf("  %10s %16s\n", "patterns", "fault coverage");
    for (const Step2Point& p : res.points) {
      std::printf("  %10d %15.2f%%\n", p.patterns, p.fault_coverage);
    }
    if (res.patterns_at_target > 0) {
      std::printf("  -> target reached at %d patterns: loop exits to "
                  "step 3\n", res.patterns_at_target);
    } else {
      std::printf("  -> target NOT reached within %d patterns: the Fig. 4 "
                  "loop would modify the ALFSR/MISR or redefine the CG\n",
                  budget);
    }
  }
  return 0;
}
