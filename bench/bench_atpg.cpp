// Batched ATPG throughput: the Table 3 full-scan drivers (random bootstrap
// + PODEM top-up batches for stuck-at, LOS pair batches for transition),
// all candidate grading through FaultSim::run. Emits BENCH_atpg.json
// (current directory) so patterns/sec and the PODEM-call economy are
// tracked from PR to PR.
//
// Metrics: patterns_per_sec counts emitted test patterns per second of
// median wall time (generation + batch grading); podem_calls counts PODEM
// invocations — the term that dominates once random coverage plateaus, and
// the one batch grading shrinks by dropping collateral detections across
// the whole batch before the next target is chosen. The thread sweep
// re-runs batch grading sharded across a ParallelFaultSim and (in --quick
// CI mode, where the CPU budget never binds) exits nonzero if any outcome
// field diverges from the serial run.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "atpg/atpg.hpp"
#include "case_study.hpp"
#include "core/session_report.hpp"  // jsonFinite
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "scan/scan.hpp"

using namespace corebist;
using namespace corebist::bench;

namespace {

struct Row {
  std::string module;
  std::string fault_type;  // "SAF" | "TDF"
  int threads = 1;
  std::string mode = "base";  // "base" | "scoap" | "collapse"
  Timing t;
  FullScanAtpgResult res;

  [[nodiscard]] double patternsPerSec() const {
    return t.median > 0 ? static_cast<double>(res.patterns) / t.median : 0.0;
  }
};

void printRow(const Row& r) {
  std::printf("  %-13s %-4s %-8s %d thr  %7.3fs med (%7.3fs min)  "
              "FC %6.2f%%  %6zu patterns  %8.0f patterns/s  "
              "%6zu podem calls  %7zu backtracks  %4zu batches  "
              "%5zu aborted  %5zu collapsed\n",
              r.module.c_str(), r.fault_type.c_str(), r.mode.c_str(),
              r.threads, r.t.median, r.t.min, r.res.coverage(),
              r.res.patterns, r.patternsPerSec(), r.res.podem_calls,
              r.res.backtracks, r.res.batches, r.res.aborted,
              r.res.collapsed_faults);
}

bool sameOutcome(const FullScanAtpgResult& a, const FullScanAtpgResult& b) {
  return a.detected == b.detected && a.aborted == b.aborted &&
         a.patterns == b.patterns && a.podem_calls == b.podem_calls &&
         a.batches == b.batches && a.test_cycles == b.test_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quickMode(argc, argv);
  printHeader("Batched full-scan ATPG throughput (BENCH_atpg.json)");
  CaseStudy cs;

  const int repeats = quick ? 3 : 5;
  struct Cfg {
    int slot;
    std::vector<int> chains;
  };
  std::vector<Cfg> cfgs = {{cs.m_bn, {}}, {cs.m_cu, {14, 28}}};
  if (!quick) cfgs.push_back({cs.m_cn, {}});

  FullScanAtpgOptions base;
  base.max_random_blocks = quick ? 8 : 48;
  base.random_stall_blocks = quick ? 3 : 6;
  // The quick (CI) budget must never bind, no matter how loaded the
  // runner: outcomes stay a pure function of the seed, which is what lets
  // the thread sweep hard-gate equality. Full mode keeps a real budget and
  // reports divergence as a warning only.
  base.podem_budget_seconds = quick ? 1e9 : 60.0;

  std::vector<Row> rows;
  bool thread_sweep_identical = true;
  bool heuristics_ok = true;
  for (const Cfg& cfg : cfgs) {
    const Netlist& nl = cs.module(cfg.slot);
    const Netlist scanned = buildScannedModule(nl, cfg.chains);
    const ScanView view = makeScanView(scanned, cfg.chains);
    const FaultUniverse u = enumerateStuckAt(scanned);
    const auto tdf = toTransitionFaults(u.faults);
    std::printf("\n%s: %zu stuck-at / %zu transition faults "
                "(full-scan view, batch %d)\n",
                scanned.name().c_str(), u.faults.size(), tdf.size(),
                base.batch_patterns);

    FullScanAtpgResult saf_serial;
    FullScanAtpgResult tdf_serial;
    for (const int threads : {1, 2}) {
      FullScanAtpgOptions o = base;
      o.num_threads = threads;
      Row saf{scanned.name(), "SAF", threads, "base", {}, {}};
      saf.t = timeRepeats(repeats, [&] {
        saf.res = runFullScanAtpg(scanned, view, u.faults, o);
      });
      rows.push_back(saf);
      printRow(rows.back());
      Row tr{scanned.name(), "TDF", threads, "base", {}, {}};
      tr.t = timeRepeats(repeats, [&] {
        tr.res = runFullScanTransition(scanned, view, tdf, o);
      });
      rows.push_back(tr);
      printRow(rows.back());
      if (threads == 1) {
        saf_serial = saf.res;
        tdf_serial = tr.res;
      } else if (!sameOutcome(saf_serial, saf.res) ||
                 !sameOutcome(tdf_serial, tr.res)) {
        std::fprintf(stderr,
                     "%s: %d-thread batch grading diverged from the serial "
                     "outcome on %s\n",
                     quick ? "FATAL" : "warning", threads,
                     scanned.name().c_str());
        thread_sweep_identical = false;
      }
    }

    // PODEM economy sweep (CONTROL_UNIT only): same serial run with the
    // SCOAP objective-ordering heuristic and with equivalence-collapsed
    // targeting. Every undetected CONTROL_UNIT fault aborts (rather than
    // being proven redundant), so the backtrack budget binds on the hard
    // tail at any feasible limit and guided ordering can convert aborts
    // into detections; the hard gate is therefore coverage strictly
    // no-worse AND backtracks strictly reduced. Exact coverage *identity*
    // under guidance is gated where saturation is achievable — the
    // analyze_test PODEM suite, which proves the testable set identical
    // fault-by-fault at saturating limits.
    if (cfg.slot == cs.m_cu) {
      FullScanAtpgOptions ho = base;
      ho.num_threads = 1;
      ho.backtrack_limit = 4096;
      Row hb{scanned.name(), "SAF", 1, "base", {}, {}};
      hb.t = timeRepeats(repeats, [&] {
        hb.res = runFullScanAtpg(scanned, view, u.faults, ho);
      });
      rows.push_back(hb);
      printRow(rows.back());
      FullScanAtpgOptions so = ho;
      so.use_scoap = true;
      Row hs{scanned.name(), "SAF", 1, "scoap", {}, {}};
      hs.t = timeRepeats(repeats, [&] {
        hs.res = runFullScanAtpg(scanned, view, u.faults, so);
      });
      rows.push_back(hs);
      printRow(rows.back());
      FullScanAtpgOptions co = ho;
      co.collapse_faults = true;
      Row hc{scanned.name(), "SAF", 1, "collapse", {}, {}};
      hc.t = timeRepeats(repeats, [&] {
        hc.res = runFullScanAtpg(scanned, view, u.faults, co);
      });
      rows.push_back(hc);
      printRow(rows.back());
      if (hs.res.detected < hb.res.detected ||
          hs.res.backtracks >= hb.res.backtracks) {
        std::fprintf(stderr,
                     "%s: SCOAP-guided PODEM must not lose coverage "
                     "(%zu vs %zu detected) and must reduce the unguided "
                     "backtracks (%zu vs %zu) on %s\n",
                     quick ? "FATAL" : "warning", hs.res.detected,
                     hb.res.detected, hs.res.backtracks, hb.res.backtracks,
                     scanned.name().c_str());
        heuristics_ok = false;
      }
      if (hc.res.detected != hb.res.detected ||
          hc.res.collapsed_faults == 0 ||
          hc.res.podem_calls >= hb.res.podem_calls) {
        std::fprintf(stderr,
                     "%s: collapsed targeting must keep the detected set "
                     "(%zu vs %zu) while skipping targets (%zu skipped, "
                     "%zu vs %zu podem calls) on %s\n",
                     quick ? "FATAL" : "warning", hc.res.detected,
                     hb.res.detected, hc.res.collapsed_faults,
                     hc.res.podem_calls, hb.res.podem_calls,
                     scanned.name().c_str());
        heuristics_ok = false;
      }
    }
  }
  if (quick && (!thread_sweep_identical || !heuristics_ok)) return 1;

  std::FILE* f = std::fopen("BENCH_atpg.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_atpg.json for writing\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"table3 full-scan ATPG, batched "
               "FaultSim::run grading\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"lane_words_default\": %d,\n", kLaneWords);
  std::fprintf(f, "  \"lane_backend\": \"%s\",\n", kLaneBackend);
  std::fprintf(f, "  \"batch_patterns\": %d,\n", base.batch_patterns);
  std::fprintf(f, "  \"thread_sweep_identical\": %s,\n",
               thread_sweep_identical ? "true" : "false");
  std::fprintf(f, "  \"heuristics_ok\": %s,\n",
               heuristics_ok ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"module\": \"%s\", \"fault_type\": \"%s\", \"threads\": %d, "
        "\"mode\": \"%s\", "
        "\"faults\": %zu, \"detected\": %zu, \"coverage\": %.3f, "
        "\"aborted\": %zu, \"patterns\": %zu, \"test_cycles\": %zu, "
        "\"podem_calls\": %zu, \"scoap_backtracks\": %zu, "
        "\"collapsed_faults\": %zu, \"batches\": %zu, "
        "\"seconds_median\": %.4f, \"seconds_min\": %.4f, "
        "\"patterns_per_sec\": %.1f}%s\n",
        r.module.c_str(), r.fault_type.c_str(), r.threads, r.mode.c_str(),
        r.res.total_faults, r.res.detected, jsonFinite(r.res.coverage()),
        r.res.aborted, r.res.patterns, r.res.test_cycles, r.res.podem_calls,
        r.res.backtracks, r.res.collapsed_faults, r.res.batches,
        jsonFinite(r.t.median), jsonFinite(r.t.min),
        jsonFinite(r.patternsPerSec()), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("\n(hardware_concurrency=%u, repeats=%d, batch=%d)\n"
              "-> BENCH_atpg.json\n",
              std::thread::hardware_concurrency(), repeats,
              base.batch_patterns);
  return 0;
}
