// Table 1: input/output port size of the case-study modules, plus the
// structural inventory (gates, flops, fault universe) behind them.
#include <cstdio>

#include "case_study.hpp"
#include "fault/fault.hpp"

using namespace corebist;
using namespace corebist::bench;

int main() {
  printHeader("Table 1: Input and output port size in bits (paper vs built)");
  const CaseStudy cs;

  struct Row {
    const char* name;
    const Netlist* nl;
    int paper_in;
    int paper_out;
  };
  const Row rows[] = {
      {"BIT_NODE", &cs.bn, 54, 55},
      {"CHECK_NODE", &cs.cn, 53, 53},
      {"CONTROL_UNIT", &cs.cu, 45, 44},
  };

  std::printf("%-14s %10s %10s %12s %12s\n", "Component", "in [bits]",
              "out [bits]", "paper in", "paper out");
  bool all_match = true;
  for (const Row& r : rows) {
    const int in = r.nl->portWidth(true);
    const int out = r.nl->portWidth(false);
    std::printf("%-14s %10d %10d %12d %12d%s\n", r.name, in, out, r.paper_in,
                r.paper_out,
                (in == r.paper_in && out == r.paper_out) ? "" : "  <-- MISMATCH");
    all_match = all_match && in == r.paper_in && out == r.paper_out;
  }

  std::printf("\nStructural inventory (not in the paper's table, for reference):\n");
  std::printf("%-14s %8s %6s %16s %16s\n", "Component", "gates", "flops",
              "SAF (collapsed)", "SAF (universe)");
  for (const Row& r : rows) {
    const FaultUniverse u = enumerateStuckAt(*r.nl);
    std::printf("%-14s %8zu %6zu %16zu %16zu\n", r.name, r.nl->numGates(),
                r.nl->dffs().size(), u.faults.size(), u.uncollapsed);
  }
  std::printf("\nPort geometry %s the paper's Table 1.\n",
              all_match ? "MATCHES" : "does NOT match");
  return all_match ? 0 : 1;
}
