// The case-study core doing its day job: LDPC decoding.
//
// Builds a reconfigurable code, encodes random payloads, pushes them through
// a noisy channel and decodes with (a) the floating-point min-sum reference
// and (b) the SerialDecoder assembled from the same behavioural BIT_NODE /
// CHECK_NODE modules that the BIST architecture tests.
#include <cstdio>
#include <random>

#include "ldpc/arch/decoder.hpp"
#include "ldpc/code.hpp"
#include "ldpc/msgpass.hpp"

using namespace corebist::ldpc;

int main() {
  std::printf("Reconfigurable serial LDPC decoder demo\n");
  std::printf("=======================================\n\n");

  CodeParams p;
  p.bit_nodes = 256;
  p.check_nodes = 128;
  p.dv = 3;
  p.seed = 42;
  const LdpcCode code(p);
  std::printf("code: n=%d, k=%d, m=%d, %d edges, max row degree %d\n\n",
              code.n(), code.k(), code.m(), code.edgeCount(),
              code.maxRowDegree());

  std::mt19937_64 rng(2026);
  std::normal_distribution<double> noise(0.0, 1.0);

  SerialDecoder serial(code, 25);
  for (const double snr_db : {2.0, 3.0, 4.0, 5.0}) {
    const double sigma = std::pow(10.0, -snr_db / 20.0);
    const int frames = 30;
    int float_ok = 0;
    int serial_ok = 0;
    std::size_t cycles = 0;
    for (int f = 0; f < frames; ++f) {
      std::vector<std::uint8_t> info(static_cast<std::size_t>(code.k()));
      for (auto& bit : info) bit = static_cast<std::uint8_t>(rng() & 1u);
      const auto word = code.encode(info);
      // BPSK over AWGN: LLR = 2r/sigma^2.
      std::vector<double> llr(word.size());
      std::vector<int> llr8(word.size());
      for (std::size_t i = 0; i < word.size(); ++i) {
        const double tx = word[i] != 0 ? -1.0 : 1.0;
        const double rx = tx + sigma * noise(rng);
        llr[i] = 2.0 * rx / (sigma * sigma);
        llr8[i] = quantizeLlr(llr[i] / 4.0);
      }
      const auto fres = decodeMinSum(code, llr);
      if (fres.converged && fres.word == word) ++float_ok;
      const auto sres = serial.decode(llr8);
      if (sres.converged && sres.word == word) ++serial_ok;
      cycles += serial.cyclesSimulated();
    }
    std::printf("SNR %.1f dB: float min-sum %2d/%2d frames, serial "
                "architecture %2d/%2d, avg %zu cycles/frame\n",
                snr_db, float_ok, frames, serial_ok, frames,
                cycles / static_cast<std::size_t>(frames));
  }

  std::printf("\nThe serial architecture model decodes with the same "
              "fixed-point arithmetic\nthe gate-level modules implement — "
              "the core that gets BIST-tested is the\ncore that decodes.\n");
  return 0;
}
