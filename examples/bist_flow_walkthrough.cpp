// The paper's three-step evaluation flow (§3.2) on one module, narrated:
//   step 1 - statement coverage + toggle activity on the "RTL" (Fig. 3);
//   step 2 - fault coverage on the synthesized module (Fig. 4);
//   step 3 - diagnosability via the equivalent-fault-class matrix.
#include <cstdio>

#include "bist/engine.hpp"
#include "diag/diagnosis.hpp"
#include "eval/flow.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "ldpc/arch/adapters.hpp"
#include "ldpc/gatelevel.hpp"

using namespace corebist;

int main() {
  std::printf("BIST evaluation flow walk-through: CONTROL_UNIT\n");
  std::printf("===============================================\n");

  const Netlist cu = ldpc::buildControlUnit();
  BistEngine engine;
  const int m = engine.attachModule(cu);
  const int budget = 2048;
  const auto stim = engine.stimulus(m, budget);

  // ---- Step 1 (Fig. 3) ----
  std::printf("\n[step 1] pseudo-random patterns on the RTL model:\n");
  auto adapter = ldpc::makeControlUnitAdapter();
  const int cps[] = {16, 64, 256, 1024, 2048};
  const Step1Result s1 = runStep1Loop(*adapter, cu, stim, cps);
  for (const auto& pt : s1.points) {
    std::printf("  %5d patterns: statements %5.1f%%, toggles %5.1f%%\n",
                pt.patterns, 100.0 * pt.statement_coverage,
                100.0 * pt.toggle_activity);
  }

  // ---- Step 2 (Fig. 4) ----
  std::printf("\n[step 2] fault simulation of the synthesized module:\n");
  const FaultUniverse u = enumerateStuckAt(cu);
  const Step2Result s2 = runStep2Loop(cu, u.faults, stim, cps, 95.0);
  for (const auto& pt : s2.points) {
    std::printf("  %5d patterns: FC %6.2f%%\n", pt.patterns,
                pt.fault_coverage);
  }
  if (s2.patterns_at_target > 0) {
    std::printf("  target 95%% reached at %d patterns\n",
                s2.patterns_at_target);
  }

  // ---- Step 3 ----
  std::printf("\n[step 3] diagnostic matrix (64 MISR read-out windows):\n");
  // Any FaultSim works here; the threaded orchestrator shards the fault
  // list across worker clones of the sequential engine.
  ParallelFaultSim fsim(SeqFaultSim{cu});
  const CyclePatternSource patterns(stim, cu.primaryInputs().size());
  FaultSimOptions o;
  o.cycles = budget;
  o.windows = 64;
  const auto r = fsim.run(u.faults, patterns, o);
  const auto classes = analyzeSyndromes(syndromesFromWindows(r.window_mask));
  std::printf("  %zu detected faults fall into %zu classes: max size %zu, "
              "mean %.2f\n", classes.analyzed, classes.num_classes,
              classes.max_size, classes.mean_size);
  // The same syndromes feed candidate scoring: replay one fault's syndrome
  // as the tester observation and the distance-0 class points at it.
  const auto dict = syndromesFromWindows(r.window_mask);
  std::size_t culprit = 0;
  while (culprit < dict.size() && dict[culprit].empty()) ++culprit;
  if (culprit < dict.size()) {
    const auto scores = scoreCandidates(dict, dict[culprit], 3);
    std::printf("  candidate scoring for fault #%zu: best distance %d "
                "(%zu candidates returned)\n",
                culprit, scores.front().distance, scores.size());
  }
  std::printf("  histogram:");
  for (std::size_t k = 0; k < classes.histogram.size() && k < 6; ++k) {
    std::printf(" size-%zu x%zu", k + 1, classes.histogram[k]);
  }
  std::printf("\n\nflow verdict: %s\n",
              s2.final_coverage > 90.0 ? "core is BIST-ready"
                                       : "needs CG/ALFSR refinement");
  return 0;
}
