// SoC-level test campaign (paper Fig. 1): the full case study on the
// plan-driven session layer.
//
// One SoC carries the Reconfigurable Serial LDPC decoder core (BIT_NODE +
// CHECK_NODE + CONTROL_UNIT behind one BIST engine and one P1500 wrapper)
// next to a small UDL core on a second TAM, with a nested accelerator
// core wrapped inside the LDPC core (a wrapped core containing a wrapped
// core, reached through the parent's WIR child chain). A TestPlan
// describes the campaign — pattern budgets, poll budgets, retry policy —
// and the SocTestScheduler places the core trees onto TAM channels,
// streaming progress through a SessionObserver; the external ATE protocol
// underneath is still pure TCK/TMS/TDI bit-banging. The injected
// manufacturing defect is located down to the module from the structured
// SessionReport.
#include <cstdio>
#include <memory>

#include "bist/constraint_gen.hpp"
#include "core/scheduler.hpp"
#include "core/soc.hpp"
#include "ldpc/gatelevel.hpp"
#include "netlist/builder.hpp"

using namespace corebist;

namespace {
Netlist makeUdlCore() {
  Netlist nl("udl");
  Builder b(nl);
  const Bus x = b.input("x", 16);
  const Bus q = b.state("q", 16);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 3)));
  b.output("y", b.add(q, x));
  nl.validate();
  return nl;
}
}  // namespace

int main() {
  std::printf("SoC test campaign: LDPC core + UDL behind one TAP\n");
  std::printf("=================================================\n\n");

  Soc soc;

  // The case-study core with the paper's constraint generator on path_sel.
  auto ldpc_core = std::make_unique<WrappedCore>("serial_ldpc");
  const auto path_cg = std::make_shared<ScheduleConstraint>(
      4, std::vector<ScheduleConstraint::Entry>{{0x0, 10}, {0x1, 2}, {0x2, 1},
                                                {0x3, 1}, {0x4, 2}, {0x8, 1},
                                                {0xC, 1}});
  const Netlist bn = ldpc::buildBitNode();
  const Netlist cn = ldpc::buildCheckNode();
  const Netlist cu = ldpc::buildControlUnit();
  ldpc_core->addModule(bn, {{"path_sel", path_cg}});
  ldpc_core->addModule(cn, {{"path_sel", path_cg}});
  ldpc_core->addModule(cu);
  const int ldpc_idx = soc.attachCore(std::move(ldpc_core));

  // The UDL rides a TAM of its own; a nested accelerator hides inside the
  // LDPC core's wrapper (depth 1).
  const int udl_tam = soc.addTam("udl_tam");
  auto udl_core = std::make_unique<WrappedCore>("udl");
  udl_core->addModule(makeUdlCore());
  const int udl_idx = soc.attachCore(std::move(udl_core), udl_tam);

  auto accel_core = std::make_unique<WrappedCore>("nested_accel");
  accel_core->addModule(makeUdlCore());
  const int accel_idx = soc.attachChildCore(std::move(accel_core), ldpc_idx);

  std::printf("cores attached: %d over %d TAM(s), nested depth %d "
              "(TAP IR %d bits)\n",
              soc.coreCount(), soc.tamCount(),
              soc.topology(accel_idx).depth(), soc.tap().irWidth());
  for (int m = 0; m < soc.core(ldpc_idx).moduleCount(); ++m) {
    const auto& eng = soc.core(ldpc_idx).engine();
    std::printf("  ldpc module %d: %-13s case '%c', %2d in / %2d out\n", m,
                eng.module(m).name().c_str(), eng.architecturalCase(m),
                eng.module(m).portWidth(true),
                eng.module(m).portWidth(false));
  }

  // The campaign: every core, 768 patterns, on two shards — the two cores'
  // golden signatures and at-speed runs are computed concurrently.
  TestPlan plan = TestPlan{}.withPatterns(768).withThreads(2);
  StreamObserver observer;
  SocTestScheduler scheduler(soc, &observer);

  std::printf("\n--- wafer 1: all dies healthy ---\n");
  const SessionReport wafer1 = scheduler.run(plan);

  std::printf("\n--- wafer 2: defect injected into CHECK_NODE ---\n");
  // Pick a 2-input AND deep in the module and break it into an OR.
  GateId victim = 0;
  for (GateId g = 500; g < cn.numGates(); ++g) {
    if (cn.gates()[g].type == GateType::kAnd) {
      victim = g;
      break;
    }
  }
  soc.core(ldpc_idx).injectDefect(1, victim, GateType::kOr);
  const SessionReport wafer2 = scheduler.run(plan);

  const CoreReport* r_ldpc = wafer2.core(ldpc_idx);
  const CoreReport* r_udl = wafer2.core(udl_idx);
  const CoreReport* r_accel = wafer2.core(accel_idx);

  std::printf("\nper-TAM accounting:\n");
  for (const TamReport& tr : wafer2.tams) {
    std::printf("  %-8s %zu core(s), %zu TCKs, utilization %.2f\n",
                tr.name.c_str(), tr.core_order.size(), tr.tap_clocks,
                tr.utilization);
  }

  std::printf("\ndiagnosis from the Output Selector read-out: ");
  for (std::size_t m = 0; m < r_ldpc->modules.size(); ++m) {
    if (!r_ldpc->modules[m].pass()) {
      std::printf("module %zu signature 0x%04X != golden 0x%04X -> the "
                  "defect is in %s\n", m, r_ldpc->modules[m].signature,
                  r_ldpc->modules[m].golden,
                  soc.core(ldpc_idx).engine().module(static_cast<int>(m))
                      .name().c_str());
    }
  }

  // An impatient plan: poll before the run can finish, few polls, one
  // retry. The report distinguishes this timeout from a bad signature.
  std::printf("\n--- wafer 2 again, impatient ATE (forced timeout) ---\n");
  TestPlan impatient;
  impatient.cores.push_back(CorePlan{.core_index = udl_idx,
                                     .patterns = 768,
                                     .warmup_idle = 32,
                                     .poll_budget = 2,
                                     .poll_idle = 16,
                                     .max_retries = 1});
  const SessionReport rushed = SocTestScheduler(soc, &observer).run(impatient);

  std::printf("\nwafer 2 campaign report (JSON):\n%s",
              wafer2.toJson().c_str());

  const bool ok = wafer1.pass() && !wafer2.pass() &&
                  r_ldpc->verdict == CoreVerdict::kSignatureMismatch &&
                  r_udl->verdict == CoreVerdict::kPass &&
                  r_accel->verdict == CoreVerdict::kPass &&
                  r_accel->depth == 1 && r_udl->tam == udl_tam &&
                  wafer2.tams.size() == 2 &&
                  !r_ldpc->modules[1].pass() && r_ldpc->modules[0].pass() &&
                  r_ldpc->modules[2].pass() &&
                  rushed.cores[0].verdict == CoreVerdict::kTimeout &&
                  rushed.cores[0].attempts == 2;
  std::printf("\nexpected localization (CHECK_NODE only) + nested/multi-TAM "
              "verdicts + timeout telemetry: %s\n",
              ok ? "CONFIRMED" : "NOT confirmed");
  return ok ? 0 : 1;
}
