// Quickstart: wrap a small core with the P1500 BIST architecture and test
// it through the 1149.1 TAP, end to end, in ~40 lines of user code.
//
//   1. describe your core as a gate-level netlist (Builder),
//   2. put it in a WrappedCore (BIST engine + P1500 wrapper),
//   3. attach it to a Soc (TAP + TAM) and run a SocTestSession.
#include <cstdio>

#include "core/soc.hpp"
#include "netlist/builder.hpp"

using namespace corebist;

namespace {
/// An 8-bit multiply-accumulate core: y += a * b (shift-add), typical small
/// logic core a SoC integrator might buy as IP.
Netlist makeMacCore() {
  Netlist nl("mac8");
  Builder b(nl);
  const Bus a = b.input("a", 8);
  const Bus bb = b.input("b", 8);
  const Bus clr = b.input("clr", 1);
  const Bus acc = b.state("acc", 16);
  // Shift-add partial products.
  Bus sum = b.constant(16, 0);
  for (int i = 0; i < 8; ++i) {
    Bus pp;
    for (int k = 0; k < i; ++k) pp.push_back(b.lo());
    for (int k = 0; k + i < 16; ++k) {
      pp.push_back(k < 8 ? b.and2(a[static_cast<std::size_t>(k)],
                                  bb[static_cast<std::size_t>(i)])
                         : b.lo());
    }
    sum = b.add(sum, pp);
  }
  b.connectEnClr(acc, b.add(acc, sum), b.hi(), clr[0]);
  b.output("y", acc);
  b.output("zero", Bus{b.eqConst(acc, 0)});
  nl.validate();
  return nl;
}
}  // namespace

int main() {
  std::printf("CoreBIST quickstart\n===================\n\n");

  // 1. The core.
  const Netlist core_nl = makeMacCore();
  std::printf("core: %s, %zu gates, %zu flops, %d in / %d out bits\n",
              core_nl.name().c_str(), core_nl.numGates(),
              core_nl.dffs().size(), core_nl.portWidth(true),
              core_nl.portWidth(false));

  // 2. BIST + P1500 wrapper. No constraints needed: every input is free.
  auto wrapped = std::make_unique<WrappedCore>("mac8");
  wrapped->addModule(core_nl);

  // 3. SoC + session: program 1024 patterns, run at speed, read signatures.
  Soc soc;
  const int idx = soc.attachCore(std::move(wrapped));
  SocTestSession session(soc);
  const CoreTestReport healthy = session.testCore(idx, 1024);
  std::printf("\nhealthy run : %s\n", healthy.summary().c_str());

  // A manufacturing defect flips one gate; the signature catches it.
  soc.core(idx).injectDefect(0, /*gate=*/42, GateType::kNor);
  const CoreTestReport defective = session.testCore(idx, 1024);
  std::printf("defective   : %s\n", defective.summary().c_str());

  std::printf("\nverdicts: healthy=%s defective=%s\n",
              healthy.pass ? "PASS" : "FAIL",
              defective.pass ? "PASS" : "FAIL");
  return healthy.pass && !defective.pass ? 0 : 1;
}
