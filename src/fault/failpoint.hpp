// Deterministic fault injection for the campaign-execution layers.
//
// A *failpoint* is a named site compiled into an infrastructure hot path —
// the ProcessFaultSim dispatch loop, the worker request/reply protocol, the
// SessionChannel attempt machinery — where a test (or a chaos CI job) can
// arm a failure action: kill the executing worker, stall a reply past the
// watchdog, truncate or bit-flip a frame, force partial pipe writes, or
// delay with deterministic jitter. Sites are *always* compiled in; when
// nothing is armed the per-site cost is one relaxed atomic load
// (`failpointsArmed()`), so production campaigns pay nothing measurable
// (BENCH_fsim.json records `resilient_overhead_vs_process` to keep that
// claim honest).
//
// Arming is programmatic (`FailpointRegistry::instance().arm(...)`) or
// environmental: the `COREBIST_FAILPOINTS` variable is parsed once at
// process start, which is how the CI chaos matrix drives whole test
// binaries through injected failure schedules without recompiling.
//
// Spec grammar (entries separated by ';'):
//
//   spec   := entry (';' entry)*
//   entry  := site '=' action (':' param)*
//   action := crash | hang | error | truncate | bitflip | shortwrite | delay
//   param  := key '=' integer
//   key    := worker | index | core      (match FailpointContext::index)
//           | shard | seq | attempt | poll  (match FailpointContext::seq)
//           | skip   (matches to skip before the first fire)
//           | count  (fires before the entry is spent; -1 = unlimited)
//           | ms | jitter                (delay milliseconds, + jitter cap)
//           | arg    (action argument: bit index / byte count)
//
// Example: `process.worker.shard=crash:worker=1:shard=3;` kills worker 1
// the first time it is handed stage-shard 3, once.
//
// Deterministic by construction: hit counting and `count` consumption
// happen in the arming process (the campaign parent), so a retried shard
// whose failure was already consumed re-runs clean — which is exactly what
// the resilience tests need to prove retry convergence. Sites document
// which context field means what (for `process.*` sites index = worker,
// seq = shard id; for `channel.*` sites index = core, seq = attempt/poll).
#ifndef COREBIST_FAULT_FAILPOINT_HPP_
#define COREBIST_FAULT_FAILPOINT_HPP_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace corebist {

/// What an armed failpoint does when it fires. The *site* interprets the
/// kind: a crash at a worker site is `_exit(42)`, a bitflip at a frame site
/// corrupts the serialized bytes, an error at a channel site throws
/// SessionChannelError. Sites ignore kinds that make no sense for them.
struct FailpointAction {
  enum class Kind : std::uint8_t {
    kOff = 0,
    kCrash,       // kill the executing process (_exit) at the site
    kHang,        // block forever (until the supervisor's SIGKILL)
    kError,       // throw the site's structured error type
    kTruncate,    // emit only the first `arg` bytes of the frame
    kBitflip,     // flip bit (arg mod frame bits) of the frame
    kShortWrite,  // split the frame write into dribbled partial writes
    kDelay,       // sleep delay_ms + deterministic jitter in [0, jitter_ms]
  };
  Kind kind = Kind::kOff;
  int delay_ms = 0;
  int jitter_ms = 0;
  std::uint64_t arg = 0;
};

[[nodiscard]] const char* failpointActionName(FailpointAction::Kind k) noexcept;

/// Site-specific coordinates a firing is matched against. Conventions:
/// process.* sites pass {worker index, shard id}; channel.* sites pass
/// {core index, attempt / poll number}.
struct FailpointContext {
  std::int64_t index = -1;
  std::int64_t seq = -1;
};

namespace detail {
/// Number of armed entries across the process; the zero-cost fast path.
extern std::atomic<int> g_failpoints_armed;
}  // namespace detail

/// True when at least one failpoint entry is armed anywhere; one relaxed
/// load, suitable for per-frame hot paths.
[[nodiscard]] inline bool failpointsArmed() noexcept {
  return detail::g_failpoints_armed.load(std::memory_order_relaxed) != 0;
}

class FailpointRegistry {
 public:
  /// Process-wide singleton. Constructed eagerly at static-init time so the
  /// COREBIST_FAILPOINTS environment spec is armed before main() runs (a
  /// malformed env spec warns on stderr instead of throwing — static init
  /// must not terminate the binary).
  static FailpointRegistry& instance();

  /// Arm `site` with `action`. `match_index` / `match_seq` restrict firing
  /// to matching FailpointContext coordinates (-1 = any); `skip` matching
  /// hits pass through before the first fire; `count` fires are served
  /// before the entry is spent (-1 = unlimited). Entries for one site stack
  /// (first armed, first matched).
  void arm(std::string_view site, FailpointAction action,
           std::int64_t match_index = -1, std::int64_t match_seq = -1,
           int skip = 0, int count = 1);

  /// Parse and arm a spec string (grammar in the header comment). Throws
  /// std::invalid_argument naming the offending entry on malformed input;
  /// on a throw, entries parsed before the bad one stay armed.
  void armFromSpec(std::string_view spec);

  /// Arm from the COREBIST_FAILPOINTS environment variable. Returns the
  /// number of entries armed (0 when unset/empty); malformed specs warn on
  /// stderr and arm nothing further.
  int armFromEnv();

  /// Remove every entry for `site` (spent or not).
  void disarm(std::string_view site);
  /// Remove every entry and reset fire counters.
  void disarmAll();

  /// Fires served by `site` entries since they were armed (spent entries
  /// keep their tally until disarmed).
  [[nodiscard]] std::size_t firedCount(std::string_view site) const;
  /// Armed (non-spent) entries for `site`.
  [[nodiscard]] std::size_t armedCount(std::string_view site) const;

  /// Hot-path evaluation: the first armed entry matching (site, ctx) fires
  /// — its skip/count bookkeeping is consumed — and its action is returned;
  /// std::nullopt otherwise. Callers gate on failpointsArmed() first.
  [[nodiscard]] std::optional<FailpointAction> fire(std::string_view site,
                                                    const FailpointContext& ctx);

 private:
  FailpointRegistry() = default;

  struct Entry {
    std::string site;
    FailpointAction action;
    std::int64_t match_index = -1;
    std::int64_t match_seq = -1;
    int skip = 0;
    int remaining = 1;  // < 0 = unlimited
    std::size_t fired = 0;
  };

  void publishArmedCount();  // callers hold mu_

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Site-side convenience: one relaxed load when nothing is armed, full
/// registry evaluation otherwise.
[[nodiscard]] inline std::optional<FailpointAction> failpointFire(
    std::string_view site, std::int64_t index = -1, std::int64_t seq = -1) {
  if (!failpointsArmed()) return std::nullopt;
  return FailpointRegistry::instance().fire(site,
                                            FailpointContext{index, seq});
}

/// Deterministic jitter for kDelay actions: a fixed multiplicative hash of
/// the firing ordinal, so "delay with jitter" schedules replay identically.
[[nodiscard]] int failpointJitterMs(const FailpointAction& a,
                                    std::uint64_t ordinal) noexcept;

/// Sleep helper for kDelay (EINTR-safe nanosleep loop).
void failpointSleepMs(int ms) noexcept;

}  // namespace corebist

#endif  // COREBIST_FAULT_FAILPOINT_HPP_
