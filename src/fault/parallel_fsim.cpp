#include "fault/parallel_fsim.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

namespace corebist {

ParallelFaultSim::ParallelFaultSim(const FaultSim& prototype,
                                   ParallelFsimOptions popts)
    : proto_(prototype.clone()), popts_(popts) {
  if (popts_.shard_faults < 1) popts_.shard_faults = 63;
}

const Netlist& ParallelFaultSim::netlist() const noexcept {
  return proto_->netlist();
}

std::unique_ptr<FaultSim> ParallelFaultSim::clone() const {
  return std::make_unique<ParallelFaultSim>(*proto_, popts_);
}

FaultSimResult ParallelFaultSim::run(std::span<const Fault> faults,
                                     const PatternSource& patterns,
                                     const FaultSimOptions& opts) {
  const int total_cycles =
      opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  int nthreads = popts_.num_threads > 0
                     ? popts_.num_threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nthreads < 1) nthreads = 1;

  FaultSimResult result;
  result.total = faults.size();
  result.first_detect.assign(faults.size(), -1);
  result.patterns_applied = static_cast<std::size_t>(total_cycles);
  const bool want_windows = opts.windows > 0;
  const bool want_misr = opts.misr.has_value();
  const bool want_record = opts.record_detections > 0;
  if (want_windows) result.window_mask.assign(faults.size(), 0);
  if (want_misr) result.misr_detect.assign(faults.size(), 0);
  if (want_windows && want_misr) {
    result.sig_words_per_fault = (opts.windows * opts.misr->width + 63) / 64;
    result.window_sig.assign(
        faults.size() * static_cast<std::size_t>(result.sig_words_per_fault),
        0);
  }
  if (want_record) result.detect_patterns.assign(faults.size(), {});

  // Windowed / MISR / dictionary records need every fault run full-length;
  // otherwise fault dropping allows the staged ladder, whose short early
  // stages retire the easy majority before anyone pays full price.
  const bool full_length = want_windows || want_misr || want_record;
  std::vector<int> stages;
  if (!full_length && opts.drop_detected && opts.prepass_cycles > 0 &&
      opts.prepass_cycles < total_cycles) {
    for (int c = opts.prepass_cycles; c < total_cycles; c *= 4) {
      stages.push_back(c);
    }
  }
  stages.push_back(total_cycles);

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);

  const std::size_t shard = static_cast<std::size_t>(popts_.shard_faults);
  const int sig_words = result.sig_words_per_fault;

  // One engine clone per worker, kept across stages AND across run() calls
  // (engines_ member); every engine run() resets per-campaign state.
  if (engines_.size() < static_cast<std::size_t>(nthreads)) {
    engines_.resize(static_cast<std::size_t>(nthreads));
  }

  for (const int stage_cycles : stages) {
    if (live.empty()) break;
    const std::size_t nshards = (live.size() + shard - 1) / shard;
    std::atomic<std::size_t> next{0};

    auto worker = [&](int tid) {
      auto& engine = engines_[static_cast<std::size_t>(tid)];
      if (engine == nullptr) engine = proto_->clone();
      FaultSimOptions wopts = opts;
      wopts.cycles = stage_cycles;
      wopts.prepass_cycles = 0;  // the stage ladder lives up here
      wopts.num_threads = 1;     // no nested engine threading
      wopts.stall_blocks = 0;    // shard-local stalls would change results
      std::vector<Fault> shard_faults;
      for (;;) {
        const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= nshards) break;
        const std::size_t lo = s * shard;
        const std::size_t hi = std::min(lo + shard, live.size());
        shard_faults.clear();
        for (std::size_t k = lo; k < hi; ++k) {
          shard_faults.push_back(faults[live[k]]);
        }
        const FaultSimResult sub =
            engine->run(shard_faults, patterns, wopts);
        // Shards partition the fault list, so writes land on disjoint rows;
        // the join below publishes them.
        for (std::size_t k = lo; k < hi; ++k) {
          const std::uint32_t gi = live[k];
          const std::size_t sk = k - lo;
          result.first_detect[gi] = sub.first_detect[sk];
          if (want_windows) result.window_mask[gi] = sub.window_mask[sk];
          if (want_misr) result.misr_detect[gi] = sub.misr_detect[sk];
          if (sig_words > 0) {
            std::copy_n(sub.window_sig.begin() +
                            static_cast<std::ptrdiff_t>(sk * sig_words),
                        sig_words,
                        result.window_sig.begin() +
                            static_cast<std::ptrdiff_t>(gi) * sig_words);
          }
          if (want_record) {
            result.detect_patterns[gi] = sub.detect_patterns[sk];
          }
        }
      }
    };

    std::vector<std::future<void>> futs;
    futs.reserve(static_cast<std::size_t>(nthreads - 1));
    for (int t = 1; t < nthreads; ++t) {
      futs.push_back(std::async(std::launch::async, worker, t));
    }
    worker(0);
    for (auto& f : futs) f.get();

    if (stage_cycles == total_cycles) break;
    std::vector<std::uint32_t> survivors;
    for (const std::uint32_t i : live) {
      if (result.first_detect[i] < 0) survivors.push_back(i);
    }
    live = std::move(survivors);
  }

  for (const auto fd : result.first_detect) {
    if (fd >= 0) ++result.detected;
  }
  return result;
}

}  // namespace corebist
