// Common fault-simulation kernel interface.
//
// Every fault-simulation campaign in the repo — BIST coverage curves,
// signature qualification, diagnosis dictionaries, ATPG random phases and
// the paper-table benches — is the same shape: a fault universe graded
// against a stream of test patterns, with per-fault detection records and
// optional fault dropping. `FaultSim` is the seam where the engines
// (pattern-parallel combinational, fault-parallel sequential) and the
// orchestration layers (ParallelFaultSim sharding, future SoC sessions)
// meet, so consumers write one loop instead of three.
//
//   * `PatternSource` abstracts the stimulus: a recorded per-cycle word
//     stream (ALFSR output), a synthesized random stream, or anything else
//     that can serve 64-pattern blocks by index. Sources must be
//     thread-safe; parallel workers pull blocks concurrently.
//   * `FaultSim::run` grades a fault list against a source and returns
//     per-fault first-detection indices plus the optional window / MISR /
//     dictionary records the diagnosis flows need.
//   * `FaultSim::clone` hands each worker thread a private engine with its
//     own scratch state over the same shared (read-only) netlist.
#ifndef COREBIST_FAULT_FAULT_SIM_HPP_
#define COREBIST_FAULT_FAULT_SIM_HPP_

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analyze/hazards.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// A block of patterns in PPSFP layout, `words_per_input` 64-bit words per
/// input position (input-major: `inputs[i * words_per_input + k]` is lane
/// word k of input i; bit b of lane word k is lane 64 * k + b of that
/// input). Combinational engines treat lanes as independent test patterns;
/// sequential stimulus views them as consecutive clock cycles. The narrow
/// legacy layout is words_per_input == 1 (the default), which every
/// hand-built block in the ATPG inner loops still uses — wide kernels
/// accept narrow blocks and mask off the missing lanes.
struct PatternBlock {
  std::vector<std::uint64_t> inputs;
  int words_per_input = 1;  // lane words per input, in [1, 8]
  int count = 64;  // number of meaningful lanes, in [1, 64 * words_per_input]

  [[nodiscard]] int clampedWords() const noexcept {
    assert(words_per_input >= 1 && words_per_input <= 8 &&
           "PatternBlock: words_per_input out of [1,8]");
    return words_per_input < 1 ? 1 : (words_per_input > 8 ? 8
                                                          : words_per_input);
  }

  /// `count` clamped into the valid [1, 64 * words_per_input] lane range.
  /// An out-of-range count is a caller bug: asserted in debug builds,
  /// clamped in release so a bad count can never silently yield an empty
  /// lane mask (which used to drop every detection of the block).
  [[nodiscard]] int clampedCount() const noexcept {
    const int max = 64 * clampedWords();
    assert(count >= 1 && count <= max && "PatternBlock: count out of range");
    return count < 1 ? 1 : (count > max ? max : count);
  }

  /// Mask of meaningful lanes inside lane word `k`.
  [[nodiscard]] std::uint64_t laneMaskWord(int k) const noexcept {
    const int c = clampedCount() - 64 * k;
    if (c <= 0) return 0;
    return c >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << c) - 1);
  }

  /// Lane mask of the first (or only) lane word — the whole mask for
  /// narrow blocks.
  [[nodiscard]] std::uint64_t laneMask() const noexcept {
    return laneMaskWord(0);
  }

  /// Lane word `k` of input `i`.
  [[nodiscard]] std::uint64_t word(std::size_t i, int k) const noexcept {
    return inputs[i * static_cast<std::size_t>(clampedWords()) +
                  static_cast<std::size_t>(k)];
  }
};

/// Bit-sliced MISR model: `feeds[j]` lists the output nets XOR-folded into
/// tap j (the paper folds wide module outputs into 16-bit MISRs through XOR
/// cascades). `poly` holds the feedback taps (bit j set => tap j receives
/// the MSB feedback), i.e. the characteristic polynomial minus x^width.
struct MisrSpec {
  int width = 16;
  std::uint64_t poly = 0;
  std::vector<std::vector<NetId>> feeds;
};

class PatternSource;

struct FaultSimOptions {
  /// Pattern budget of the campaign; <= 0 means "whole pattern source".
  /// Sequential engines apply one pattern per clock, so this is also the
  /// cycle count.
  int cycles = 4096;
  int prepass_cycles = 256;  // 0 disables the two-pass schedule
  bool drop_detected = true;
  int num_threads = 2;  // engine-internal workers (orchestrators pin to 1)
  /// >0: record a per-window detection mask per fault (diagnosis syndromes);
  /// implies full-length simulation of every fault.
  int windows = 0;
  /// Optional MISR compaction model (empirical aliasing measurement;
  /// sequential engines only).
  std::optional<MisrSpec> misr;
  /// Observation points; empty => primary outputs of the netlist.
  std::vector<NetId> observe;
  /// >0: record the first K detecting pattern indices per fault
  /// (stop-on-first-error diagnosis dictionaries). Combinational engines
  /// record up to K; sequential engines record the first detection only.
  int record_detections = 0;
  /// >0: stop the campaign after this many consecutive 64-pattern blocks
  /// with no new detection (random-pattern stall exit; combinational
  /// engines only — orchestrators strip it so shard-local stalls can never
  /// change the detected set).
  int stall_blocks = 0;
  /// Launch (v1) stimulus for transition-delay campaigns: when set,
  /// `patterns` serves the capture (v2) vectors, every block pair is applied
  /// through the pair-block path (detection evaluated on v2) and the fault
  /// list must be transition faults. Combinational engines only; must match
  /// `patterns` in width and pattern count. Not owned; the caller keeps the
  /// source alive for the duration of run().
  const PatternSource* launch = nullptr;
};

struct FaultSimResult {
  std::vector<std::int32_t> first_detect;  // -1 => undetected at outputs
  std::vector<std::uint64_t> window_mask;  // per fault, when windows > 0
  std::vector<char> misr_detect;           // per fault, when misr set
  /// Per fault, when windows > 0 AND misr set: the XOR difference between
  /// the faulty and good MISR signatures at every window boundary, packed
  /// window-major (windows * misr.width bits -> sig_words per fault). This
  /// is exactly what reading the MISR through the Output Selector after
  /// every window yields, and is the BIST diagnosis syndrome of Table 5.
  std::vector<std::uint64_t> window_sig;
  int sig_words_per_fault = 0;
  /// Per fault, when record_detections > 0: detecting pattern indices in
  /// ascending order (at most `record_detections` entries).
  std::vector<std::vector<std::uint32_t>> detect_patterns;
  /// Patterns actually applied (== the budget unless a stall exit fired).
  std::size_t patterns_applied = 0;
  std::size_t detected = 0;
  std::size_t total = 0;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(detected) /
                            static_cast<double>(total);
  }

  /// Signature-qualified coverage (%): faults whose final MISR signature
  /// differs from the good machine, i.e. coverage() minus aliasing losses.
  /// Meaningful only for runs with `FaultSimOptions::misr` set.
  [[nodiscard]] double misrCoverage() const {
    std::size_t caught = 0;
    for (const char d : misr_detect) {
      if (d != 0) ++caught;
    }
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(caught) /
                            static_cast<double>(total);
  }
};

/// Campaign stimulus: test patterns served as 64-lane blocks by index.
/// Implementations must be thread-safe — parallel workers fill blocks
/// concurrently and may revisit the same block in later passes.
class PatternSource {
 public:
  virtual ~PatternSource() = default;
  /// Total patterns the source can supply.
  [[nodiscard]] virtual int patternCount() const = 0;
  /// Input positions per pattern.
  [[nodiscard]] virtual std::size_t width() const = 0;
  /// Fill `out` (narrow PPSFP layout, words_per_input == 1) with up to 64
  /// patterns starting at `start`; `out.count` receives the number of valid
  /// lanes.
  virtual void fill(int start, PatternBlock& out) const = 0;
  /// Fill `out` (wide layout, words_per_input == lane_words) with up to
  /// 64 * lane_words patterns starting at `start`. The default assembles the
  /// wide block from per-64-lane `fill` calls, so every source's wide fills
  /// agree bit-for-bit with its narrow fills by construction — the anchor of
  /// the "results are identical at any lane width" guarantee. Sources may
  /// override for speed but must preserve that equivalence.
  virtual void fillWide(int start, int lane_words, PatternBlock& out) const;
  /// Fast path for narrow stimuli: one word per pattern (bit j drives input
  /// j), the natural layout of sequential per-cycle streams. An empty span
  /// means "not available, use fill()".
  [[nodiscard]] virtual std::span<const std::uint64_t> packedWords() const {
    return {};
  }
};

/// Recorded per-cycle stimulus (e.g. the ALFSR word stream of a BIST
/// session): word c bit j drives input j at pattern/cycle c.
///
/// Block-aligned fills are served from a thread-safe transposition cache:
/// each 64-cycle block is transposed once (word-level 64x64 transpose, not
/// the old bit-at-a-time loop) and memoized by block index, so the N comb
/// workers of a sharded campaign that all revisit the same ALFSR blocks pay
/// the transpose exactly once per block instead of once per worker pass.
class CyclePatternSource final : public PatternSource {
 public:
  /// `width` must fit one packed cycle word (one bit per input). The limit
  /// is the shared analyzer hazard rule — kMaxPackedStimulusInputs — and
  /// exceeding it throws std::invalid_argument.
  CyclePatternSource(std::span<const std::uint64_t> words, std::size_t width)
      : words_(words), width_(width) {
    requirePackedWidth(width, "CyclePatternSource");
  }

  [[nodiscard]] int patternCount() const override {
    return static_cast<int>(words_.size());
  }
  [[nodiscard]] std::size_t width() const override { return width_; }
  void fill(int start, PatternBlock& out) const override;
  [[nodiscard]] std::span<const std::uint64_t> packedWords() const override {
    return words_;
  }

 private:
  /// Transposed lanes of the 64-cycle block `block`, built on first use.
  /// The returned reference stays valid for the source's lifetime
  /// (unordered_map never invalidates value references on insert, and
  /// entries are never erased).
  [[nodiscard]] const std::vector<std::uint64_t>& transposedBlock(
      int block) const;

  std::span<const std::uint64_t> words_;
  std::size_t width_;
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<int, std::vector<std::uint64_t>> cache_;
};

/// Hand-assembled patterns as a first-class campaign stimulus: an
/// append-only accumulator that serves standard 64-lane blocks, so
/// deterministic tests (PODEM candidates, LOS pair batches, debug vectors)
/// grade through the same `FaultSim::run` campaigns — fault dropping, wide
/// lanes, ParallelFaultSim sharding — as recorded or random stimulus,
/// instead of hand-rolled per-fault detect() loops.
///
/// Patterns are stored column-major (one 64-lane word column per input per
/// block), i.e. already in PPSFP layout: fill() is a copy, not a transpose.
/// Thread-safe for concurrent fills once building stops; append/clear must
/// not race with a running campaign (the ATPG batch loops alternate
/// build -> grade -> clear).
class VectorPatternSource final : public PatternSource {
 public:
  explicit VectorPatternSource(std::size_t width) : width_(width) {}

  /// Append one pattern; `bits[j]` (0/1) drives input j. bits.size() must
  /// equal width().
  void append(std::span<const std::uint8_t> bits);
  /// Append a whole narrow block (words_per_input == 1, block.count
  /// patterns). The source must be 64-aligned (patternCount() % 64 == 0):
  /// the ATPG pair loops only ever append full hand-built blocks.
  void appendBlock(const PatternBlock& block);
  /// Drop all patterns (the accumulator is reused batch after batch).
  void clear() {
    blocks_.clear();
    count_ = 0;
  }

  [[nodiscard]] int patternCount() const override { return count_; }
  [[nodiscard]] std::size_t width() const override { return width_; }
  void fill(int start, PatternBlock& out) const override;

 private:
  std::size_t width_;
  int count_ = 0;
  /// One column-major 64-lane block per entry: blocks_[b][j] holds lanes
  /// [64b, 64b+64) of input j.
  std::vector<std::vector<std::uint64_t>> blocks_;
};

/// Uniform-random patterns of arbitrary width (full-scan random phases,
/// dictionary construction). Each 64-pattern block derives its own RNG
/// stream from (seed, block index), so any worker can materialize any block
/// independently and the campaign is reproducible under any schedule.
class RandomPatternSource final : public PatternSource {
 public:
  RandomPatternSource(std::uint64_t seed, std::size_t width, int count)
      : seed_(seed), width_(width), count_(count) {}

  [[nodiscard]] int patternCount() const override { return count_; }
  [[nodiscard]] std::size_t width() const override { return width_; }
  void fill(int start, PatternBlock& out) const override;

 private:
  std::uint64_t seed_;
  std::size_t width_;
  int count_;
};

/// Abstract fault-simulation engine: grade faults against patterns.
class FaultSim {
 public:
  virtual ~FaultSim() = default;

  [[nodiscard]] virtual const Netlist& netlist() const noexcept = 0;

  /// Simulate `faults` against `patterns` and return per-fault results.
  /// Engines may reorder internal work freely but results are functions of
  /// (fault, pattern stream) only, so any schedule yields identical output.
  [[nodiscard]] virtual FaultSimResult run(std::span<const Fault> faults,
                                           const PatternSource& patterns,
                                           const FaultSimOptions& opts) = 0;

  /// Fresh engine with private scratch state over the same shared netlist,
  /// for worker threads.
  [[nodiscard]] virtual std::unique_ptr<FaultSim> clone() const = 0;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_FAULT_SIM_HPP_
