#include "fault/comb_fsim.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace corebist {

template <int W>
CombFaultSimT<W>::CombFaultSimT(const Netlist& nl,
                                std::span<const NetId> inputs,
                                std::span<const NetId> observed)
    : nl_(nl),
      lev_(levelize(nl)),
      readers_(&nl.readerCsr()),
      inputs_(inputs.begin(), inputs.end()),
      observed_(observed.begin(), observed.end()),
      observed_flag_(nl.numNets(), 0),
      good_(nl.numNets(), Word::zero()),
      goodv1_(nl.numNets(), Word::zero()),
      fval_(nl.numNets(), Word::zero()),
      stamp_(nl.numNets(), 0),
      in_queue_(nl.numGates(), 0),
      level_buckets_(static_cast<std::size_t>(lev_.depth) + 1) {
  for (const NetId n : observed_) observed_flag_[n] = 1;
}

template <int W>
FaultSimResult CombFaultSimT<W>::run(std::span<const Fault> faults,
                                     const PatternSource& patterns,
                                     const FaultSimOptions& opts) {
  if (opts.misr.has_value()) {
    throw std::invalid_argument(
        "CombFaultSim: MISR compaction is a sequential-engine feature");
  }
  if (!opts.observe.empty()) {
    throw std::invalid_argument(
        "CombFaultSim: observation points are fixed at construction");
  }
  // Pair campaigns: opts.launch serves the v1 (launch) vectors, `patterns`
  // the v2 (capture) vectors, and every block pair goes through
  // loadPairBlock — the FaultSim::run spelling of the LOS pair path the
  // transition ATPG used to drive by hand.
  const PatternSource* launch = opts.launch;
  // Per-fault validation and forced-word polarity, hoisted out of the
  // per-block live loop: detect() re-derives them per call for the ad-hoc
  // ATPG entry points, but a campaign pays once per fault per run.
  // (Transition forced words depend on each block's good values, so pair
  // campaigns go through detect() instead.)
  std::vector<std::uint8_t> sa1(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (launch == nullptr && !isStuckAt(faults[i].kind)) {
      throw std::invalid_argument(
          "CombFaultSim::run: transition faults need launch/capture pairs "
          "(set FaultSimOptions::launch)");
    }
    if (launch != nullptr && isStuckAt(faults[i].kind)) {
      throw std::invalid_argument(
          "CombFaultSim::run: pair campaigns grade transition faults; "
          "stuck-at faults take the single-vector path");
    }
    sa1[i] = faults[i].kind == FaultKind::kSa1 ? 1 : 0;
  }
  const int total = opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  if (total > patterns.patternCount()) {
    throw std::invalid_argument(
        "CombFaultSim: pattern source shorter than requested budget");
  }
  if (launch != nullptr && (launch->patternCount() < total ||
                            launch->width() != patterns.width())) {
    throw std::invalid_argument(
        "CombFaultSim: launch source must match the capture source in "
        "width and cover the pattern budget");
  }

  FaultSimResult res;
  res.total = faults.size();
  res.first_detect.assign(faults.size(), -1);
  if (opts.windows > 0) res.window_mask.assign(faults.size(), 0);
  const int record = opts.record_detections;
  if (record > 0) res.detect_patterns.assign(faults.size(), {});
  // Window masks and dictionary lists must see every pattern, so detection
  // alone cannot retire a fault (mirrors the sequential engine, which runs
  // every machine full-length in windowed/MISR modes).
  const bool dropping = opts.drop_detected && opts.windows == 0;

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);

  PatternBlock block;
  PatternBlock launch_block;
  std::vector<Word> det_buf;
  // Pair mode re-derives the per-block forced word inside detect(); the
  // stuck-at path keeps the hoisted polarity.
  auto detectOne = [&](std::size_t idx) {
    return launch != nullptr ? detect(faults[idx])
                             : detectStuckAt(faults[idx], sa1[idx] != 0);
  };
  // The stall exit stays in 64-pattern units at every lane width: the
  // narrow kernel's "consecutive no-yield 64-pattern blocks" counter is
  // replayed over the 64-lane sub-blocks of each wide pass, so the exit
  // fires at the same global pattern boundary and the detected set cannot
  // change with W.
  int stall = 0;

  for (int start = 0; start < total && !live.empty(); start += kLanes) {
    patterns.fillWide(start, W, block);
    block.count = std::min(block.clampedCount(), total - start);
    if (launch != nullptr) {
      launch->fillWide(start, W, launch_block);
      launch_block.count = block.count;
      loadPairBlock(launch_block, block);
    } else {
      loadBlock(block);
    }
    const int lanes = block.count;
    const int nsub = (lanes + 63) / 64;

    // With a stall exit armed the pass is two-phase: compute every live
    // fault's detection mask first, then walk the sub-blocks to find where
    // the narrow kernel would have stopped, and only record lanes before
    // that cut.
    const bool stalling = opts.stall_blocks > 0;
    int cut_sub = nsub;
    bool stall_exit = false;
    if (stalling) {
      det_buf.resize(live.size());
      std::array<char, static_cast<std::size_t>(W)> newly{};
      for (std::size_t k = 0; k < live.size(); ++k) {
        const std::uint32_t idx = live[k];
        const Word det = detectOne(idx);
        det_buf[k] = det;
        if (res.first_detect[idx] < 0 && det.any()) {
          newly[static_cast<std::size_t>(det.firstLane() / 64)] = 1;
        }
      }
      for (int s = 0; s < nsub; ++s) {
        stall = newly[static_cast<std::size_t>(s)] ? 0 : stall + 1;
        if (stall >= opts.stall_blocks) {
          cut_sub = s + 1;
          stall_exit = true;
          break;
        }
      }
    }
    const int cut_lanes = std::min(lanes, 64 * cut_sub);
    const Word cut_mask = Word::lowLanes(cut_lanes);

    // Record detections (within the cut) and retire dropped faults. The
    // narrow kernel stops mid-pass once the live list empties, so the
    // sub-block of the last retirement bounds patterns_applied below.
    int last_retire_sub = -1;
    std::size_t out = 0;
    for (std::size_t k = 0; k < live.size(); ++k) {
      const std::uint32_t idx = live[k];
      const Word det = (stalling ? det_buf[k] : detectOne(idx)) & cut_mask;
      bool retire = false;
      int retire_lane = 0;
      if (det.any()) {
        if (res.first_detect[idx] < 0) {
          res.first_detect[idx] = start + det.firstLane();
        }
        if (opts.windows > 0) {
          for (int wi = 0; wi < W; ++wi) {
            std::uint64_t d = det.word(wi);
            while (d != 0) {
              const int lane = 64 * wi + std::countr_zero(d);
              d &= d - 1;
              const int w = static_cast<int>(
                  (static_cast<std::int64_t>(start + lane) * opts.windows) /
                  total);
              res.window_mask[idx] |= std::uint64_t{1} << w;
            }
          }
        }
        if (record > 0) {
          auto& list = res.detect_patterns[idx];
          for (int wi = 0;
               wi < W && list.size() < static_cast<std::size_t>(record);
               ++wi) {
            std::uint64_t d = det.word(wi);
            while (d != 0 &&
                   list.size() < static_cast<std::size_t>(record)) {
              const int lane = 64 * wi + std::countr_zero(d);
              d &= d - 1;
              list.push_back(static_cast<std::uint32_t>(start + lane));
              retire_lane = lane;
            }
          }
          retire = list.size() >= static_cast<std::size_t>(record);
        } else {
          retire = true;
          retire_lane = det.firstLane();
        }
      }
      if (dropping && retire) {
        if (retire_lane / 64 > last_retire_sub) {
          last_retire_sub = retire_lane / 64;
        }
      } else {
        live[out++] = idx;
      }
    }
    live.resize(out);

    // patterns_applied replays the narrow kernel's early stops: blocks end
    // at the stall cut, or at the sub-block whose retirement emptied the
    // live list, whichever the narrow loop reached first.
    int applied_sub = cut_sub;
    if (live.empty() && last_retire_sub + 1 < applied_sub) {
      applied_sub = last_retire_sub + 1;
    }
    res.patterns_applied +=
        static_cast<std::size_t>(std::min(lanes, 64 * applied_sub));
    if (stall_exit) break;
  }

  for (const auto fd : res.first_detect) {
    if (fd >= 0) ++res.detected;
  }
  return res;
}

template <int W>
std::unique_ptr<FaultSim> CombFaultSimT<W>::clone() const {
  return std::make_unique<CombFaultSimT<W>>(nl_, inputs_, observed_);
}

template <int W>
void CombFaultSimT<W>::simulateGood(const PatternBlock& block,
                                    std::vector<Word>& dst) {
  const int wpi = block.clampedWords();
  if (wpi > W ||
      block.inputs.size() != inputs_.size() * static_cast<std::size_t>(wpi)) {
    throw std::invalid_argument("CombFaultSim: pattern width mismatch");
  }
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    Word v = Word::zero();
    for (int k = 0; k < wpi; ++k) {
      v.w[k] = block.inputs[i * static_cast<std::size_t>(wpi) +
                            static_cast<std::size_t>(k)];
    }
    dst[inputs_[i]] = v;
  }
  const Word zero = Word::zero();
  const auto& gates = nl_.gates();
  for (const GateId g : lev_.order) {
    const Gate& gate = gates[g];
    const Word& a = gate.nin > 0 ? dst[gate.in[0]] : zero;
    const Word& b = gate.nin > 1 ? dst[gate.in[1]] : zero;
    const Word& s = gate.nin > 2 ? dst[gate.in[2]] : zero;
    dst[gate.out] = evalGateWide<W>(gate.type, a, b, s);
  }
}

template <int W>
void CombFaultSimT<W>::loadBlock(const PatternBlock& block) {
  simulateGood(block, good_);
  lane_mask_ = Word::lowLanes(block.clampedCount());
  pair_mode_ = false;
}

template <int W>
void CombFaultSimT<W>::loadPairBlock(const PatternBlock& v1,
                                     const PatternBlock& v2) {
  simulateGood(v1, goodv1_);
  simulateGood(v2, good_);
  lane_mask_ = Word::lowLanes(std::min(v1.clampedCount(), v2.clampedCount()));
  pair_mode_ = true;
}

template <int W>
typename CombFaultSimT<W>::Word CombFaultSimT<W>::detect(const Fault& f) {
  // Faulty word presented at the site.
  Word forced = Word::zero();
  switch (f.kind) {
    case FaultKind::kSa0:
      break;
    case FaultKind::kSa1:
      forced = Word::ones();
      break;
    case FaultKind::kSlowRise:
      if (!pair_mode_) {
        throw std::logic_error("transition fault requires loadPairBlock");
      }
      // The rising edge arrives after capture: the site still shows the old
      // value whenever v1=0, v2=1; all other lanes are fault-free.
      forced = good_[f.net] & goodv1_[f.net];
      break;
    case FaultKind::kSlowFall:
      if (!pair_mode_) {
        throw std::logic_error("transition fault requires loadPairBlock");
      }
      forced = good_[f.net] | goodv1_[f.net];
      break;
  }
  return propagate(f.net, forced, f.isStem() ? Fault::kNoGate : f.gate,
                   f.pin) &
         lane_mask_;
}

template <int W>
typename CombFaultSimT<W>::Word CombFaultSimT<W>::detectStuckAt(
    const Fault& f, bool sa1) {
  return propagate(f.net, sa1 ? Word::ones() : Word::zero(),
                   f.isStem() ? Fault::kNoGate : f.gate, f.pin) &
         lane_mask_;
}

template <int W>
typename CombFaultSimT<W>::Word CombFaultSimT<W>::propagate(
    NetId site_net, const Word& faulty_word, GateId branch_gate,
    std::uint8_t branch_pin) {
  const auto& gates = nl_.gates();
  const ReaderCsr& readers = *readers_;
  ++epoch_;
  Word detected = Word::zero();

  int min_level = lev_.depth + 1;
  auto enqueue = [this, &min_level](GateId g) {
    if (in_queue_[g] == epoch_) return;
    in_queue_[g] = epoch_;
    const int lvl = lev_.level[g];
    level_buckets_[static_cast<std::size_t>(lvl)].push_back(g);
    if (lvl < min_level) min_level = lvl;
  };
  auto enqueueReaders = [&readers, &enqueue](NetId n) {
    for (const NetReader& r : readers.of(n)) enqueue(r.gate);
  };

  if (branch_gate == Fault::kNoGate) {
    // Stem fault: all readers see the forced value.
    const Word diff = faulty_word ^ good_[site_net];
    if (diff.none()) return Word::zero();
    fval_[site_net] = faulty_word;
    stamp_[site_net] = epoch_;
    if (observed_flag_[site_net]) detected |= diff;
    enqueueReaders(site_net);
  } else {
    // Branch fault: only (gate, pin) sees the forced value. Upstream values
    // are fault-free, so this gate is re-evaluated exactly once.
    const Gate& gate = gates[branch_gate];
    Word in[3] = {Word::zero(), Word::zero(), Word::zero()};
    for (int p = 0; p < gate.nin; ++p) {
      in[p] = good_[gate.in[static_cast<std::size_t>(p)]];
    }
    in[branch_pin] = faulty_word;
    const Word out = evalGateWide<W>(gate.type, in[0], in[1], in[2]);
    const Word diff = out ^ good_[gate.out];
    if (diff.none()) return Word::zero();
    fval_[gate.out] = out;
    stamp_[gate.out] = epoch_;
    if (observed_flag_[gate.out]) detected |= diff;
    enqueueReaders(gate.out);
  }

  const Word zero = Word::zero();
  for (int lvl = min_level; lvl <= lev_.depth; ++lvl) {
    auto& bucket = level_buckets_[static_cast<std::size_t>(lvl)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      const Gate& gate = gates[g];
      const Word& a = gate.nin > 0 ? readFaulty(gate.in[0]) : zero;
      const Word& b = gate.nin > 1 ? readFaulty(gate.in[1]) : zero;
      const Word& s = gate.nin > 2 ? readFaulty(gate.in[2]) : zero;
      const Word out = evalGateWide<W>(gate.type, a, b, s);
      if (out == good_[gate.out] && stamp_[gate.out] != epoch_) continue;
      const Word diff = out ^ good_[gate.out];
      fval_[gate.out] = out;
      stamp_[gate.out] = epoch_;
      if (diff.any()) {
        if (observed_flag_[gate.out]) detected |= diff;
        enqueueReaders(gate.out);
      }
    }
    bucket.clear();
  }
  return detected;
}

template class CombFaultSimT<1>;
template class CombFaultSimT<2>;
template class CombFaultSimT<4>;
template class CombFaultSimT<8>;
#if COREBIST_LANE_WORDS != 1 && COREBIST_LANE_WORDS != 2 && \
    COREBIST_LANE_WORDS != 4 && COREBIST_LANE_WORDS != 8
template class CombFaultSimT<kLaneWords>;
#endif

}  // namespace corebist
