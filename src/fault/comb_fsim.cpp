#include "fault/comb_fsim.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace corebist {

CombFaultSim::CombFaultSim(const Netlist& nl, std::span<const NetId> inputs,
                           std::span<const NetId> observed)
    : nl_(nl),
      lev_(levelize(nl)),
      order_index_(nl.numGates(), -1),
      inputs_(inputs.begin(), inputs.end()),
      observed_(observed.begin(), observed.end()),
      observed_flag_(nl.numNets(), 0),
      good_(nl.numNets(), 0),
      goodv1_(nl.numNets(), 0),
      fval_(nl.numNets(), 0),
      stamp_(nl.numNets(), 0),
      in_queue_(nl.numGates(), 0),
      level_buckets_(static_cast<std::size_t>(lev_.depth) + 1) {
  for (std::size_t i = 0; i < lev_.order.size(); ++i) {
    order_index_[lev_.order[i]] = static_cast<int>(i);
  }
  for (const NetId n : observed_) observed_flag_[n] = 1;
}

FaultSimResult CombFaultSim::run(std::span<const Fault> faults,
                                 const PatternSource& patterns,
                                 const FaultSimOptions& opts) {
  if (opts.misr.has_value()) {
    throw std::invalid_argument(
        "CombFaultSim: MISR compaction is a sequential-engine feature");
  }
  if (!opts.observe.empty()) {
    throw std::invalid_argument(
        "CombFaultSim: observation points are fixed at construction");
  }
  for (const Fault& f : faults) {
    if (!isStuckAt(f.kind)) {
      throw std::invalid_argument(
          "CombFaultSim::run: transition faults need launch/capture pairs "
          "(loadPairBlock)");
    }
  }
  const int total = opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  if (total > patterns.patternCount()) {
    throw std::invalid_argument(
        "CombFaultSim: pattern source shorter than requested budget");
  }

  FaultSimResult res;
  res.total = faults.size();
  res.first_detect.assign(faults.size(), -1);
  if (opts.windows > 0) res.window_mask.assign(faults.size(), 0);
  const int record = opts.record_detections;
  if (record > 0) res.detect_patterns.assign(faults.size(), {});
  // Window masks and dictionary lists must see every pattern, so detection
  // alone cannot retire a fault (mirrors the sequential engine, which runs
  // every machine full-length in windowed/MISR modes).
  const bool dropping = opts.drop_detected && opts.windows == 0;

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);

  PatternBlock block;
  int stall = 0;
  for (int start = 0; start < total && !live.empty(); start += 64) {
    patterns.fill(start, block);
    block.count = std::min(block.clampedCount(), total - start);
    loadBlock(block);
    res.patterns_applied += static_cast<std::size_t>(block.count);

    bool newly = false;
    std::size_t out = 0;
    for (const std::uint32_t idx : live) {
      const std::uint64_t det = detect(faults[idx]);
      bool retire = false;
      if (det != 0) {
        if (res.first_detect[idx] < 0) {
          res.first_detect[idx] =
              start + std::countr_zero(det);
          newly = true;
        }
        if (opts.windows > 0) {
          std::uint64_t d = det;
          while (d != 0) {
            const int lane = std::countr_zero(d);
            d &= d - 1;
            const int w = static_cast<int>(
                (static_cast<std::int64_t>(start + lane) * opts.windows) /
                total);
            res.window_mask[idx] |= std::uint64_t{1} << w;
          }
        }
        if (record > 0) {
          auto& list = res.detect_patterns[idx];
          std::uint64_t d = det;
          while (d != 0 && list.size() < static_cast<std::size_t>(record)) {
            const int lane = std::countr_zero(d);
            d &= d - 1;
            list.push_back(static_cast<std::uint32_t>(start + lane));
          }
          retire = list.size() >= static_cast<std::size_t>(record);
        } else {
          retire = true;
        }
      }
      if (!(dropping && retire)) live[out++] = idx;
    }
    live.resize(out);

    if (opts.stall_blocks > 0) {
      stall = newly ? 0 : stall + 1;
      if (stall >= opts.stall_blocks) break;
    }
  }

  for (const auto fd : res.first_detect) {
    if (fd >= 0) ++res.detected;
  }
  return res;
}

std::unique_ptr<FaultSim> CombFaultSim::clone() const {
  return std::make_unique<CombFaultSim>(nl_, inputs_, observed_);
}

void CombFaultSim::simulateGood(const PatternBlock& block,
                                std::vector<std::uint64_t>& dst) {
  if (block.inputs.size() != inputs_.size()) {
    throw std::invalid_argument("CombFaultSim: pattern width mismatch");
  }
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    dst[inputs_[i]] = block.inputs[i];
  }
  const auto& gates = nl_.gates();
  for (const GateId g : lev_.order) {
    const Gate& gate = gates[g];
    const std::uint64_t a = gate.nin > 0 ? dst[gate.in[0]] : 0;
    const std::uint64_t b = gate.nin > 1 ? dst[gate.in[1]] : 0;
    const std::uint64_t s = gate.nin > 2 ? dst[gate.in[2]] : 0;
    dst[gate.out] = evalGateWord(gate.type, a, b, s);
  }
}

void CombFaultSim::loadBlock(const PatternBlock& block) {
  simulateGood(block, good_);
  lane_mask_ = block.laneMask();
  pair_mode_ = false;
}

void CombFaultSim::loadPairBlock(const PatternBlock& v1,
                                 const PatternBlock& v2) {
  simulateGood(v1, goodv1_);
  simulateGood(v2, good_);
  lane_mask_ = v2.laneMask() & v1.laneMask();
  pair_mode_ = true;
}

std::uint64_t CombFaultSim::detect(const Fault& f) {
  // Faulty word presented at the site.
  std::uint64_t forced = 0;
  switch (f.kind) {
    case FaultKind::kSa0:
      forced = 0;
      break;
    case FaultKind::kSa1:
      forced = ~std::uint64_t{0};
      break;
    case FaultKind::kSlowRise:
      if (!pair_mode_) {
        throw std::logic_error("transition fault requires loadPairBlock");
      }
      // The rising edge arrives after capture: the site still shows the old
      // value whenever v1=0, v2=1; all other lanes are fault-free.
      forced = good_[f.net] & goodv1_[f.net];
      break;
    case FaultKind::kSlowFall:
      if (!pair_mode_) {
        throw std::logic_error("transition fault requires loadPairBlock");
      }
      forced = good_[f.net] | goodv1_[f.net];
      break;
  }
  return propagate(f.net, forced, f.isStem() ? Fault::kNoGate : f.gate,
                   f.pin) &
         lane_mask_;
}

std::uint64_t CombFaultSim::propagate(NetId site_net, std::uint64_t faulty_word,
                                      GateId branch_gate,
                                      std::uint8_t branch_pin) {
  const auto& gates = nl_.gates();
  const auto& readers = nl_.readers();
  ++epoch_;
  std::uint64_t detected = 0;

  int min_level = lev_.depth + 1;
  auto enqueue = [this, &min_level](GateId g) {
    if (in_queue_[g] == epoch_) return;
    in_queue_[g] = epoch_;
    const int lvl = lev_.level[g];
    level_buckets_[static_cast<std::size_t>(lvl)].push_back(g);
    if (lvl < min_level) min_level = lvl;
  };

  if (branch_gate == Fault::kNoGate) {
    // Stem fault: all readers see the forced value.
    const std::uint64_t diff = faulty_word ^ good_[site_net];
    if (diff == 0) return 0;
    fval_[site_net] = faulty_word;
    stamp_[site_net] = epoch_;
    if (observed_flag_[site_net]) detected |= diff;
    for (const NetReader& r : readers[site_net]) enqueue(r.gate);
  } else {
    // Branch fault: only (gate, pin) sees the forced value. Upstream values
    // are fault-free, so this gate is re-evaluated exactly once.
    const Gate& gate = gates[branch_gate];
    std::uint64_t in[3] = {0, 0, 0};
    for (int p = 0; p < gate.nin; ++p) in[p] = good_[gate.in[static_cast<std::size_t>(p)]];
    in[branch_pin] = faulty_word;
    const std::uint64_t out = evalGateWord(gate.type, in[0], in[1], in[2]);
    const std::uint64_t diff = out ^ good_[gate.out];
    if (diff == 0) return 0;
    fval_[gate.out] = out;
    stamp_[gate.out] = epoch_;
    if (observed_flag_[gate.out]) detected |= diff;
    for (const NetReader& r : readers[gate.out]) enqueue(r.gate);
  }

  for (int lvl = min_level; lvl <= lev_.depth; ++lvl) {
    auto& bucket = level_buckets_[static_cast<std::size_t>(lvl)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const GateId g = bucket[i];
      const Gate& gate = gates[g];
      const std::uint64_t a = gate.nin > 0 ? readFaulty(gate.in[0]) : 0;
      const std::uint64_t b = gate.nin > 1 ? readFaulty(gate.in[1]) : 0;
      const std::uint64_t s = gate.nin > 2 ? readFaulty(gate.in[2]) : 0;
      const std::uint64_t out = evalGateWord(gate.type, a, b, s);
      if (out == good_[gate.out] && stamp_[gate.out] != epoch_) continue;
      const std::uint64_t diff = out ^ good_[gate.out];
      fval_[gate.out] = out;
      stamp_[gate.out] = epoch_;
      if (diff != 0) {
        if (observed_flag_[gate.out]) detected |= diff;
        for (const NetReader& r : readers[gate.out]) enqueue(r.gate);
      }
    }
    bucket.clear();
  }
  return detected;
}

}  // namespace corebist
