// Multi-process fault-sharding orchestration over the FaultSim seam.
//
// ProcessFaultSim is the process-isolation rung of the backend ladder
// (serial -> wide lanes -> worker threads -> worker processes): the fault
// list is sharded exactly like ParallelFaultSim, but each shard is graded
// in a forked worker process that owns a private clone of the prototype
// engine. The parent serializes each fault shard plus the scalar slice of
// `FaultSimOptions` (stage cycles, dropping, window/record/MISR/launch
// flags) over a request pipe and streams the per-fault `FaultSimResult`
// slices (first_detect, window_mask, misr_detect, window signatures,
// recorded detections) back over a response pipe, merging them with the
// same stage-ladder cross-shard dropping the threaded orchestrator uses.
// Results are byte-identical to the serial engine at any worker count
// (tests/process_fsim_test.cpp enforces this).
//
// Non-POD campaign state — the pattern sources (including the
// `FaultSimOptions::launch` pair stream), MISR feed lists, observe sets and
// the netlist itself — rides the fork-time copy-on-write snapshot instead
// of the wire: workers are forked inside run() after argument validation,
// so every immutable input is already in their address space. The pipe
// protocol carries exactly the per-shard varying part, which is the seam a
// future remote/multi-machine transport substitutes real serializers into.
//
// Why processes when threads exist: a worker process owns its allocator
// arena and page tables, so big-module campaigns sidestep the shared-heap
// and page-cache contention that caps ParallelFaultSim in one address
// space — and a crashed or wedged worker cannot take the campaign down.
// The parent watches response pipes against per-shard monotonic deadlines
// and turns worker death, hangs or corrupted frames (FNV-1a payload
// checksums on every message) into a structured ProcessFsimError (partial
// accounting, every child killed and reaped — no hangs, no zombies).
//
// Failure injection for tests and chaos CI lives in fault/failpoint.hpp:
// the sites `process.worker.shard`, `process.worker.reply` and
// `process.request.frame` are compiled into the dispatch path (evaluated
// in the parent, shipped to workers inside the request frame) and cost one
// relaxed atomic load when unarmed. ResilientFaultSim supervises this
// orchestrator with retry/backoff and a degradation ladder
// (fault/resilient_fsim.hpp).
#ifndef COREBIST_FAULT_PROCESS_FSIM_HPP_
#define COREBIST_FAULT_PROCESS_FSIM_HPP_

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "fault/fault_sim.hpp"

namespace corebist {

struct ProcessFsimOptions {
  /// Worker processes; 0 => std::thread::hardware_concurrency().
  int num_workers = 0;
  /// Faults per work unit (same default as ParallelFsimOptions: one
  /// fault-parallel machine group of the sequential kernel).
  int shard_faults = 63;
  /// Milliseconds a dispatched shard has to come back as a *complete*
  /// response, measured against a monotonic deadline armed at dispatch —
  /// partial reads and poll() wakeups do not reset it, so a slow-dribbling
  /// worker cannot evade the watchdog (kTimeout). <= 0 waits forever —
  /// only sensible under a debugger.
  int timeout_ms = 120'000;
};

/// Structured failure of a multi-process campaign: a worker died (signal,
/// unexpected exit, pipe corruption) or stopped responding within
/// `timeout_ms`. By the time this is thrown every worker has been killed
/// and waitpid()ed — the parent never hangs and never leaks a zombie.
/// Carries partial accounting of the failing stage for forensics.
class ProcessFsimError : public std::runtime_error {
 public:
  enum class Reason {
    kWorkerDied,  // EOF / short read on a response pipe, or bad exit status
    kTimeout,     // no worker response within ProcessFsimOptions::timeout_ms
    kProtocol,    // malformed message framing
  };

  ProcessFsimError(Reason reason, int worker, std::size_t shards_completed,
                   std::size_t shards_total, std::size_t detected_so_far,
                   const std::string& detail)
      : std::runtime_error("ProcessFaultSim: " + detail),
        reason_(reason),
        worker_(worker),
        shards_completed_(shards_completed),
        shards_total_(shards_total),
        detected_so_far_(detected_so_far) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  /// Index of the failing worker, or -1 when unattributable.
  [[nodiscard]] int worker() const noexcept { return worker_; }
  /// Shards of the failing stage whose results were merged before the
  /// failure (partial accounting; the merged rows are complete per fault).
  [[nodiscard]] std::size_t shardsCompleted() const noexcept {
    return shards_completed_;
  }
  [[nodiscard]] std::size_t shardsTotal() const noexcept {
    return shards_total_;
  }
  /// Faults with a merged detection at failure time (across all stages).
  [[nodiscard]] std::size_t detectedSoFar() const noexcept {
    return detected_so_far_;
  }

 private:
  Reason reason_;
  int worker_;
  std::size_t shards_completed_;
  std::size_t shards_total_;
  std::size_t detected_so_far_;
};

class ProcessFaultSim final : public FaultSim {
 public:
  /// Clones `prototype` once up front; workers fork inside run() and clone
  /// their private engines from the inherited copy, so the prototype object
  /// may die before this orchestrator.
  explicit ProcessFaultSim(const FaultSim& prototype,
                           ProcessFsimOptions popts = {});

  [[nodiscard]] const Netlist& netlist() const noexcept override;
  /// Grade `faults`; throws ProcessFsimError on worker death or hang. Forks
  /// per call and reaps every child before returning (success or failure),
  /// so a failed campaign can simply be retried on the same object.
  /// Fork-safety: call from a thread that holds no locks other threads
  /// contend on; glibc keeps malloc consistent across fork, and workers
  /// only compute and write to their pipe before _exit().
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;
  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

 private:
  std::unique_ptr<FaultSim> proto_;
  ProcessFsimOptions popts_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_PROCESS_FSIM_HPP_
