// Backend selection for fault-simulation campaigns.
//
// One enum + factory pair behind which every fault-sim consumer (ATPG batch
// grading, the SoC scheduler's coverage probes, the benches) picks its
// execution backend per campaign instead of hard-coding an engine class:
//
//   kSerial    - the prototype engine itself (one process, one thread)
//   kThreaded  - ParallelFaultSim fault sharding across worker threads
//   kProcess   - ProcessFaultSim fault sharding across forked processes
//   kResilient - ResilientFaultSim: the process protocol under a
//                supervisor with shard retry/backoff and a degradation
//                ladder (process -> threaded -> serial)
//
// Orthogonally, makeCombFaultSim() picks the lane width of the PPSFP kernel
// (64/128/256/512 pattern lanes per pass) at runtime from the same options
// struct. All backends are byte-identical on results by construction; the
// choice is purely a throughput/isolation trade (see src/fault/README.md,
// "Backend ladder").
#ifndef COREBIST_FAULT_BACKEND_HPP_
#define COREBIST_FAULT_BACKEND_HPP_

#include <memory>
#include <span>
#include <string_view>

#include "fault/fault_sim.hpp"

namespace corebist {

enum class FsimBackend {
  kSerial,
  kThreaded,
  kProcess,
  kResilient,
};

/// Stable lowercase name ("serial" / "threaded" / "process" /
/// "resilient"); used in bench JSON rows and CLI flags.
[[nodiscard]] const char* fsimBackendName(FsimBackend b) noexcept;

/// Inverse of fsimBackendName; throws std::invalid_argument on unknown
/// names (bench/CLI input validation).
[[nodiscard]] FsimBackend parseFsimBackend(std::string_view name);

struct FsimBackendOptions {
  FsimBackend backend = FsimBackend::kSerial;
  /// PPSFP kernel width in 64-lane words (1, 2, 4 or 8); 0 => the build
  /// default kLaneWords. Only meaningful for makeCombFaultSim.
  int lane_words = 0;
  /// Worker threads/processes for the orchestrated backends; 0 => one per
  /// hardware thread. Ignored by kSerial.
  int num_workers = 0;
  /// Faults per work unit for the orchestrated backends.
  int shard_faults = 63;
  /// Worker-hang watchdog for kProcess / kResilient (per-shard monotonic
  /// deadline; see ProcessFsimOptions::timeout_ms).
  int timeout_ms = 120'000;
  /// kResilient only: re-dispatches one shard gets before the supervisor
  /// leaves the process rung (ResilientFsimOptions::max_shard_retries).
  int max_shard_retries = 3;
  /// kResilient only: exponential-backoff base before a worker respawn.
  int backoff_base_ms = 1;
  /// kResilient only: overall retry deadline budget in ms (0 = unbounded).
  int deadline_ms = 0;
  /// kResilient only: after the retry budget, step down the ladder
  /// (process -> threaded -> serial) instead of throwing.
  bool degrade_on_failure = true;
};

/// Combinational (full-scan) engine of the requested lane width, wrapped in
/// the requested orchestrator. lane_words outside {0, 1, 2, 4, 8} throws
/// std::invalid_argument.
[[nodiscard]] std::unique_ptr<FaultSim> makeCombFaultSim(
    const Netlist& nl, std::span<const NetId> inputs,
    std::span<const NetId> observed, const FsimBackendOptions& opts = {});

/// Wrap an existing prototype engine (combinational or sequential) in the
/// requested orchestrator. kSerial returns a plain clone, so callers can
/// treat all three uniformly; the prototype may die before the result.
[[nodiscard]] std::unique_ptr<FaultSim> makeOrchestrator(
    const FaultSim& prototype, const FsimBackendOptions& opts);

}  // namespace corebist

#endif  // COREBIST_FAULT_BACKEND_HPP_
