// Internal wire protocol + worker plumbing shared by the multi-process
// fault-sim orchestrators (ProcessFaultSim and ResilientFaultSim).
//
// Not a public API: this header exists so the plain fork-shard orchestrator
// and the self-healing one speak the exact same protocol — same frames,
// same worker loop, same spawn/reap discipline — and so the worker-side
// failure injections both need are carried *in the frames themselves*.
//
// Frame format. Every message is a 16-byte header
//
//   {u32 magic, u32 kind_or_status, u32 payload_bytes, u32 fnv1a(payload)}
//
// followed by the payload. Both ends are forks of the same binary, so POD
// fields are memcpy'd without cross-ABI concern; the framing and the FNV-1a
// payload checksum exist so transport corruption (a failpoint bit-flip
// today, a flaky remote link tomorrow) is *detected* — a corrupted frame
// surfaces as a structured protocol error, never as silently wrong grading
// results.
//
// Failpoint transport. Worker-side injections ("kill worker N at shard K",
// "stall the reply past the watchdog", "truncate/bit-flip the response")
// are evaluated by the PARENT at dispatch time — consuming the armed
// entry's hit budget in the parent's registry — and shipped to the worker
// inside the shard request. A retried dispatch of the same shard therefore
// re-runs clean once the entry is spent, which is what makes injected
// failure schedules deterministic and retry convergence provable.
//
// Robustness contract (the pipe-I/O satellite of the resilience PR):
//   * writeAll / readAll resume on EINTR and handle short transfers, so a
//     dribbled or page-split frame reassembles transparently;
//   * parent-side reads go through readAllDeadline() on a non-blocking fd
//     against a monotonic deadline, so a worker dribbling bytes slower than
//     the watchdog cannot evade it by resetting per-wakeup timers;
//   * ScopedSigpipeIgnore keeps a worker dying mid-request-write an EPIPE
//     (=> structured kWorkerDied), not a fatal SIGPIPE in the campaign
//     parent; workers install SIG_IGN too, so a dead parent surfaces as a
//     write error and a clean _exit.
#ifndef COREBIST_FAULT_PROCESS_WIRE_HPP_
#define COREBIST_FAULT_PROCESS_WIRE_HPP_

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <numeric>
#include <type_traits>
#include <vector>

#include "fault/failpoint.hpp"
#include "fault/fault_sim.hpp"

namespace corebist::fsimwire {

constexpr std::uint32_t kReqMagic = 0xC0B15701u;
constexpr std::uint32_t kRespMagic = 0xC0B15702u;
constexpr std::uint32_t kMsgShard = 1;
constexpr std::uint32_t kMsgShutdown = 2;
constexpr std::uint32_t kStatusOk = 0;
constexpr std::uint32_t kStatusEngineError = 1;
constexpr std::size_t kHeaderWords = 4;  // magic, kind, payload_bytes, fnv1a

// Failpoint site names compiled into the orchestrators. process.* sites
// pass FailpointContext{worker index, shard id}.
inline constexpr const char* kFpWorkerShard = "process.worker.shard";
inline constexpr const char* kFpWorkerReply = "process.worker.reply";
inline constexpr const char* kFpRequestFrame = "process.request.frame";

[[nodiscard]] inline std::uint32_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x01000193u;
  }
  return h;
}

// ---- raw I/O -------------------------------------------------------------

inline bool writeAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

inline bool readAll(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;  // EOF: peer died
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

/// Monotonic deadline: the watchdog budget is measured from when it was
/// armed, across any number of poll() wakeups, EINTRs and partial reads —
/// a slow-dribbling peer cannot reset it.
struct Deadline {
  std::chrono::steady_clock::time_point at{};
  bool unbounded = true;

  [[nodiscard]] static Deadline after(int ms) {
    Deadline d;
    if (ms > 0) {
      d.unbounded = false;
      d.at = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  /// Milliseconds left, clamped to >= 0; -1 when unbounded.
  [[nodiscard]] int remainingMs() const {
    if (unbounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          at - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return 0;
    return left > 0x7FFFFFFF ? 0x7FFFFFFF : static_cast<int>(left);
  }

  [[nodiscard]] bool expired() const {
    return !unbounded && remainingMs() == 0;
  }
};

enum class IoStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

inline bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Read exactly `n` bytes from a non-blocking fd, polling against `dl`.
/// Distinguishes peer death (kEof), watchdog expiry (kTimeout) and hard I/O
/// errors (kError) so callers can map each to the right structured failure.
inline IoStatus readAllDeadline(int fd, void* buf, std::size_t n,
                                const Deadline& dl) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k > 0) {
      p += k;
      n -= static_cast<std::size_t>(k);
      continue;
    }
    if (k == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return IoStatus::kError;
    const int rem = dl.remainingMs();
    if (rem == 0) return IoStatus::kTimeout;
    pollfd pf{fd, POLLIN, 0};
    const int rc = ::poll(&pf, 1, rem);
    if (rc < 0 && errno != EINTR) return IoStatus::kError;
    if (rc == 0) return IoStatus::kTimeout;
  }
  return IoStatus::kOk;
}

/// SIGPIPE => SIG_IGN for the lifetime of one orchestrated run(), previous
/// disposition restored on exit: a worker dying mid-request-write must
/// surface as EPIPE on the write, not kill the campaign parent (and its
/// caller) with an unhandled signal.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction sa = {};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, &prev_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &prev_, nullptr); }
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  struct sigaction prev_ = {};
};

// ---- serialization -------------------------------------------------------

template <typename T>
void putPod(std::vector<std::uint8_t>& b, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof(T));
}

inline void putBytes(std::vector<std::uint8_t>& b, const void* p,
                     std::size_t n) {
  const auto* q = static_cast<const std::uint8_t*>(p);
  b.insert(b.end(), q, q + n);
}

/// Bounds-checked payload reader; `ok` latches false on any overrun so a
/// truncated payload parses to garbage-free defaults instead of OOB reads.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (!ok || static_cast<std::size_t>(end - p) < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }

  bool getBytes(void* dst, std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    return true;
  }
};

/// Backpatch payload size + checksum into a frame assembled as
/// [16-byte header][payload].
inline void sealFrame(std::vector<std::uint8_t>& frame) {
  const std::size_t hdr = kHeaderWords * sizeof(std::uint32_t);
  const std::uint32_t payload = static_cast<std::uint32_t>(frame.size() - hdr);
  const std::uint32_t sum = fnv1a(frame.data() + hdr, payload);
  std::memcpy(frame.data() + 8, &payload, sizeof(payload));
  std::memcpy(frame.data() + 12, &sum, sizeof(sum));
}

/// Worker-side injected action carried inside a shard request (see the
/// failpoint-transport note in the header comment).
struct WireInject {
  std::uint8_t kind = 0;  // FailpointAction::Kind
  std::int32_t delay_ms = 0;
  std::int32_t jitter_ms = 0;
  std::uint64_t arg = 0;

  [[nodiscard]] static WireInject from(const FailpointAction& a) {
    return WireInject{static_cast<std::uint8_t>(a.kind), a.delay_ms,
                      a.jitter_ms, a.arg};
  }
  [[nodiscard]] FailpointAction action() const {
    FailpointAction a;
    a.kind = static_cast<FailpointAction::Kind>(kind);
    a.delay_ms = delay_ms;
    a.jitter_ms = jitter_ms;
    a.arg = arg;
    return a;
  }
};

/// The per-shard varying slice of FaultSimOptions that crosses the wire,
/// plus the parent-evaluated failure injections for this dispatch.
struct WireOptions {
  std::int32_t cycles = 0;
  std::int32_t windows = 0;
  std::int32_t record_detections = 0;
  std::uint8_t drop_detected = 0;
  std::uint8_t has_misr = 0;
  std::uint8_t has_launch = 0;
  WireInject inject_shard;  // applied on shard receipt (crash/hang/delay)
  WireInject inject_reply;  // applied around the response frame
};

inline void putInject(std::vector<std::uint8_t>& out, const WireInject& w) {
  putPod(out, w.kind);
  putPod(out, w.delay_ms);
  putPod(out, w.jitter_ms);
  putPod(out, w.arg);
}

inline WireInject getInject(Cursor& c) {
  WireInject w;
  w.kind = c.get<std::uint8_t>();
  w.delay_ms = c.get<std::int32_t>();
  w.jitter_ms = c.get<std::int32_t>();
  w.arg = c.get<std::uint64_t>();
  return w;
}

inline void serializeShardRequest(std::vector<std::uint8_t>& out,
                                  std::uint32_t shard_id,
                                  const WireOptions& wopts,
                                  std::span<const Fault> shard_faults) {
  out.clear();
  putPod(out, kReqMagic);
  putPod(out, kMsgShard);
  putPod(out, std::uint32_t{0});  // payload size backpatched by sealFrame
  putPod(out, std::uint32_t{0});  // checksum backpatched by sealFrame
  putPod(out, shard_id);
  putPod(out, wopts.cycles);
  putPod(out, wopts.windows);
  putPod(out, wopts.record_detections);
  putPod(out, wopts.drop_detected);
  putPod(out, wopts.has_misr);
  putPod(out, wopts.has_launch);
  putInject(out, wopts.inject_shard);
  putInject(out, wopts.inject_reply);
  putPod(out, static_cast<std::uint32_t>(shard_faults.size()));
  for (const Fault& f : shard_faults) {
    putPod(out, static_cast<std::uint32_t>(f.net));
    putPod(out, static_cast<std::uint32_t>(f.gate));
    putPod(out, f.pin);
    putPod(out, static_cast<std::uint8_t>(f.kind));
  }
  sealFrame(out);
}

inline void serializeShutdown(std::vector<std::uint8_t>& out) {
  out.clear();
  putPod(out, kReqMagic);
  putPod(out, kMsgShutdown);
  putPod(out, std::uint32_t{0});
  putPod(out, std::uint32_t{0});
  sealFrame(out);
}

inline void serializeResult(std::vector<std::uint8_t>& out,
                            std::uint32_t shard_id, const FaultSimResult& sub,
                            const FaultSimOptions& wopts) {
  out.clear();
  putPod(out, kRespMagic);
  putPod(out, kStatusOk);
  putPod(out, std::uint32_t{0});
  putPod(out, std::uint32_t{0});
  putPod(out, shard_id);
  const std::uint32_t n = static_cast<std::uint32_t>(sub.first_detect.size());
  putPod(out, n);
  putPod(out, static_cast<std::uint64_t>(sub.patterns_applied));
  putBytes(out, sub.first_detect.data(),
           sub.first_detect.size() * sizeof(std::int32_t));
  const std::uint8_t has_window = wopts.windows > 0 ? 1 : 0;
  const std::uint8_t has_misr = wopts.misr.has_value() ? 1 : 0;
  const std::uint8_t has_record = wopts.record_detections > 0 ? 1 : 0;
  putPod(out, has_window);
  if (has_window != 0) {
    putBytes(out, sub.window_mask.data(),
             sub.window_mask.size() * sizeof(std::uint64_t));
  }
  putPod(out, has_misr);
  if (has_misr != 0) {
    putBytes(out, sub.misr_detect.data(), sub.misr_detect.size());
  }
  putPod(out, static_cast<std::uint32_t>(sub.sig_words_per_fault));
  if (sub.sig_words_per_fault > 0) {
    putBytes(out, sub.window_sig.data(),
             sub.window_sig.size() * sizeof(std::uint64_t));
  }
  putPod(out, has_record);
  if (has_record != 0) {
    for (const auto& list : sub.detect_patterns) {
      putPod(out, static_cast<std::uint32_t>(list.size()));
      putBytes(out, list.data(), list.size() * sizeof(std::uint32_t));
    }
  }
  sealFrame(out);
}

inline void serializeEngineError(std::vector<std::uint8_t>& out,
                                 const char* what) {
  out.clear();
  putPod(out, kRespMagic);
  putPod(out, kStatusEngineError);
  putPod(out, std::uint32_t{0});
  putPod(out, std::uint32_t{0});
  putBytes(out, what, std::strlen(what));
  sealFrame(out);
}

// ---- failpoint-aware frame writing ---------------------------------------

/// Write `frame`, applying an optional injected data-plane action first:
/// truncate (emit only `arg` bytes), bitflip (corrupt one bit — the FNV
/// checksum turns this into a detected protocol error on the far side),
/// shortwrite (dribble the frame in tiny partial writes — which the
/// receiving readAll/readAllDeadline loops must reassemble transparently)
/// or delay. Returns false on a hard write error (e.g. EPIPE: peer dead).
inline bool writeFrameInjected(int fd, const std::vector<std::uint8_t>& frame,
                               const FailpointAction* inject,
                               std::uint64_t ordinal) {
  using Kind = FailpointAction::Kind;
  if (inject == nullptr || inject->kind == Kind::kOff) {
    return writeAll(fd, frame.data(), frame.size());
  }
  switch (inject->kind) {
    case Kind::kDelay:
      failpointSleepMs(inject->delay_ms + failpointJitterMs(*inject, ordinal));
      return writeAll(fd, frame.data(), frame.size());
    case Kind::kTruncate: {
      const std::size_t n =
          std::min<std::size_t>(frame.size(), inject->arg);
      return writeAll(fd, frame.data(), n);  // rest intentionally withheld
    }
    case Kind::kBitflip: {
      std::vector<std::uint8_t> bad(frame);
      const std::uint64_t bit = inject->arg % (bad.size() * 8);
      bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      return writeAll(fd, bad.data(), bad.size());
    }
    case Kind::kShortWrite: {
      // Dribble: 1 byte, then 7, then the rest, with small sleeps between —
      // the far side's reassembly loops must make this invisible.
      std::size_t off = 0;
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                      frame.size()}) {
        const std::size_t n = std::min(frame.size() - off, chunk);
        if (n == 0) break;
        if (!writeAll(fd, frame.data() + off, n)) return false;
        off += n;
        if (off < frame.size()) failpointSleepMs(1);
      }
      return true;
    }
    default:
      return writeAll(fd, frame.data(), frame.size());
  }
}

// ---- worker side ---------------------------------------------------------

/// Request/grade/respond loop of one forked worker. Immutable campaign
/// state (netlist, pattern sources, MISR spec, observe set) is already in
/// this process via the fork snapshot; only shards, scalar options and the
/// parent-evaluated failure injections arrive over the pipe. Never returns:
/// _exit(0) on shutdown, _exit(1) on any protocol violation (the parent
/// turns the EOF into a structured error), _exit(42) on an injected crash.
/// _exit skips atexit/sanitizer teardown, which is exactly right for a fork
/// without exec.
[[noreturn]] inline void workerMain(int req_fd, int resp_fd,
                                    const FaultSim& proto,
                                    const PatternSource& patterns,
                                    const FaultSimOptions& base) {
  using Kind = FailpointAction::Kind;
  // A dead parent must surface as EPIPE on the reply write (=> _exit(1)),
  // not SIGPIPE; no restore — this process only ever _exit()s.
  std::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<FaultSim> engine;  // cloned on first shard (private scratch)
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> out;
  std::vector<Fault> shard_faults;
  for (;;) {
    std::uint32_t hdr[kHeaderWords];
    if (!readAll(req_fd, hdr, sizeof hdr)) _exit(1);
    if (hdr[0] != kReqMagic) _exit(1);
    if (hdr[1] == kMsgShutdown) _exit(0);
    if (hdr[1] != kMsgShard) _exit(1);
    buf.resize(hdr[2]);
    if (!readAll(req_fd, buf.data(), buf.size())) _exit(1);
    // A corrupted request frame (injected bit-flip today, link noise in a
    // remote transport tomorrow) must never grade garbage: die loudly and
    // let the supervisor retry the shard on a fresh worker.
    if (fnv1a(buf.data(), buf.size()) != hdr[3]) _exit(1);

    Cursor c{buf.data(), buf.data() + buf.size()};
    const auto shard_id = c.get<std::uint32_t>();
    WireOptions w;
    w.cycles = c.get<std::int32_t>();
    w.windows = c.get<std::int32_t>();
    w.record_detections = c.get<std::int32_t>();
    w.drop_detected = c.get<std::uint8_t>();
    w.has_misr = c.get<std::uint8_t>();
    w.has_launch = c.get<std::uint8_t>();
    w.inject_shard = getInject(c);
    w.inject_reply = getInject(c);
    const auto n_faults = c.get<std::uint32_t>();
    shard_faults.clear();
    shard_faults.reserve(n_faults);
    for (std::uint32_t i = 0; i < n_faults; ++i) {
      Fault f;
      f.net = c.get<std::uint32_t>();
      f.gate = c.get<std::uint32_t>();
      f.pin = c.get<std::uint8_t>();
      f.kind = static_cast<FaultKind>(c.get<std::uint8_t>());
      shard_faults.push_back(f);
    }
    // Wire flags must agree with the fork-time snapshot the non-POD
    // payloads ride on; a mismatch means frames desynchronized.
    if (!c.ok || (w.has_misr != 0) != base.misr.has_value() ||
        (w.has_launch != 0) != (base.launch != nullptr)) {
      _exit(1);
    }

    // Injected receipt action ("kill worker N before shard K" / stall).
    const FailpointAction on_shard = w.inject_shard.action();
    switch (on_shard.kind) {
      case Kind::kCrash:
        _exit(42);
      case Kind::kHang:
        for (;;) pause();
      case Kind::kDelay:
        failpointSleepMs(on_shard.delay_ms +
                         failpointJitterMs(on_shard, shard_id));
        break;
      default:
        break;
    }

    FaultSimOptions wopts = base;
    wopts.cycles = w.cycles;
    wopts.prepass_cycles = 0;  // the stage ladder lives in the parent
    wopts.num_threads = 1;     // no nested threading inside a worker
    wopts.stall_blocks = 0;    // shard-local stalls would change results
    wopts.drop_detected = w.drop_detected != 0;
    wopts.windows = w.windows;
    wopts.record_detections = w.record_detections;

    if (engine == nullptr) engine = proto.clone();
    try {
      const FaultSimResult sub = engine->run(shard_faults, patterns, wopts);
      serializeResult(out, shard_id, sub, wopts);
    } catch (const std::exception& e) {
      serializeEngineError(out, e.what());
    }

    // Injected reply action: stall, corrupt or die around the response.
    const FailpointAction on_reply = w.inject_reply.action();
    switch (on_reply.kind) {
      case Kind::kHang:  // reply never comes; the watchdog must fire
        for (;;) pause();
      case Kind::kDelay:
        failpointSleepMs(on_reply.delay_ms +
                         failpointJitterMs(on_reply, shard_id));
        break;
      case Kind::kTruncate: {  // partial frame, then die: truncated payload
        const std::size_t n = std::min<std::size_t>(out.size(), on_reply.arg);
        (void)writeAll(resp_fd, out.data(), n);
        _exit(1);
      }
      case Kind::kBitflip: {  // checksum/magic catches it on the far side
        const std::uint64_t bit = on_reply.arg % (out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        break;
      }
      default:
        break;
    }
    if (!writeFrameInjected(resp_fd, out,
                            on_reply.kind == Kind::kShortWrite ? &on_reply
                                                               : nullptr,
                            shard_id)) {
      _exit(1);
    }
    if (on_reply.kind == Kind::kCrash) _exit(42);  // "after shard K"
  }
}

// ---- parent side ---------------------------------------------------------

struct Worker {
  pid_t pid = -1;
  int req_fd = -1;
  int resp_fd = -1;
  std::int64_t shard = -1;  // shard in flight, -1 when idle
  Deadline deadline;        // watchdog for the in-flight shard
};

inline void closeWorkerFds(Worker& w) {
  if (w.req_fd >= 0) ::close(w.req_fd);
  if (w.resp_fd >= 0) ::close(w.resp_fd);
  w.req_fd = w.resp_fd = -1;
}

/// Reap one child without risking a parent hang: poll with WNOHANG until
/// `grace_ms` expires, then SIGKILL and reap for certain. Returns the raw
/// wait status (or -1 if the child had to be killed here).
inline int reapWithGrace(pid_t pid, int grace_ms) {
  const int step_ms = 2;
  int waited = 0;
  for (;;) {
    int st = 0;
    const pid_t r = ::waitpid(pid, &st, WNOHANG);
    if (r == pid) return st;
    if (r < 0 && errno != EINTR) return -1;  // already reaped / gone
    if (grace_ms > 0 && waited >= grace_ms) {
      ::kill(pid, SIGKILL);
      while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
      }
      return -1;
    }
    struct timespec ts {0, step_ms * 1'000'000};
    ::nanosleep(&ts, nullptr);
    waited += step_ms;
  }
}

/// SIGKILL + reap one worker and close its pipes (no-op when empty).
inline void killWorker(Worker& w) {
  if (w.pid > 0) {
    ::kill(w.pid, SIGKILL);
    reapWithGrace(w.pid, 0);
    w.pid = -1;
  }
  closeWorkerFds(w);
  w.shard = -1;
}

/// Fork worker `i` of the fleet: fresh pipes, sibling fds closed in the
/// child (inherited sibling pipes would hold them open past a sibling's
/// death and mask the EOF), parent's response end set non-blocking for
/// deadline reads. Returns false on pipe()/fork() failure with nothing
/// allocated; the caller owns fleet-level cleanup.
inline bool spawnWorker(std::vector<Worker>& workers, std::size_t i,
                        const FaultSim& proto, const PatternSource& patterns,
                        const FaultSimOptions& base) {
  int req[2] = {-1, -1};
  int resp[2] = {-1, -1};
  if (::pipe(req) != 0) return false;
  if (::pipe(resp) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    return false;
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(req[1]);
    ::close(resp[0]);
    for (std::size_t j = 0; j < workers.size(); ++j) {
      if (j != i) closeWorkerFds(workers[j]);
    }
    workerMain(req[0], resp[1], proto, patterns, base);
  }
  ::close(req[0]);
  ::close(resp[1]);
  if (pid < 0) {
    ::close(req[1]);
    ::close(resp[0]);
    return false;
  }
  (void)setNonBlocking(resp[0]);
  workers[i] = Worker{pid, req[1], resp[0], -1, Deadline{}};
  return true;
}

// ---- shared campaign shape ----------------------------------------------

/// Result-skeleton + stage-ladder setup shared by every fork-shard
/// orchestrator (and mirrored by ParallelFaultSim): short stages retire the
/// easy majority across all shards before anyone pays the full budget.
struct CampaignShape {
  int total_cycles = 0;
  bool want_windows = false;
  bool want_misr = false;
  bool want_record = false;
  std::vector<int> stages;
};

inline CampaignShape initCampaign(FaultSimResult& result,
                                  std::span<const Fault> faults,
                                  const PatternSource& patterns,
                                  const FaultSimOptions& opts) {
  CampaignShape shape;
  shape.total_cycles = opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  shape.want_windows = opts.windows > 0;
  shape.want_misr = opts.misr.has_value();
  shape.want_record = opts.record_detections > 0;

  result.total = faults.size();
  result.first_detect.assign(faults.size(), -1);
  result.patterns_applied = static_cast<std::size_t>(shape.total_cycles);
  if (shape.want_windows) result.window_mask.assign(faults.size(), 0);
  if (shape.want_misr) result.misr_detect.assign(faults.size(), 0);
  if (shape.want_windows && shape.want_misr) {
    result.sig_words_per_fault = (opts.windows * opts.misr->width + 63) / 64;
    result.window_sig.assign(
        faults.size() * static_cast<std::size_t>(result.sig_words_per_fault),
        0);
  }
  if (shape.want_record) result.detect_patterns.assign(faults.size(), {});

  const bool full_length =
      shape.want_windows || shape.want_misr || shape.want_record;
  if (!full_length && opts.drop_detected && opts.prepass_cycles > 0 &&
      opts.prepass_cycles < shape.total_cycles) {
    for (int c = opts.prepass_cycles; c < shape.total_cycles; c *= 4) {
      shape.stages.push_back(c);
    }
  }
  shape.stages.push_back(shape.total_cycles);
  return shape;
}

/// Decode and merge one OK response payload's slice into `result`. The
/// caller has consumed shard_id and the row count `n` (validated against
/// the shard bounds); rows land on disjoint indices because shards
/// partition `live`. Returns false on any malformed/truncated content.
inline bool mergeWirePayload(Cursor& c, FaultSimResult& result,
                             const std::vector<std::uint32_t>& live,
                             std::size_t lo, std::size_t n,
                             const CampaignShape& shape, int sig_words) {
  c.get<std::uint64_t>();  // worker patterns_applied (stage-local)
  bool ok = true;
  for (std::size_t j = 0; j < n && ok; ++j) {
    result.first_detect[live[lo + j]] = c.get<std::int32_t>();
  }
  const auto has_window = c.get<std::uint8_t>();
  if ((has_window != 0) != shape.want_windows) ok = false;
  if (ok && shape.want_windows) {
    for (std::size_t j = 0; j < n && ok; ++j) {
      result.window_mask[live[lo + j]] = c.get<std::uint64_t>();
    }
  }
  const auto has_misr = c.get<std::uint8_t>();
  if ((has_misr != 0) != shape.want_misr) ok = false;
  if (ok && shape.want_misr) {
    for (std::size_t j = 0; j < n && ok; ++j) {
      result.misr_detect[live[lo + j]] =
          static_cast<char>(c.get<std::uint8_t>());
    }
  }
  const auto sub_sig_words = c.get<std::uint32_t>();
  if (static_cast<int>(sub_sig_words) != sig_words) ok = false;
  if (ok && sig_words > 0) {
    for (std::size_t j = 0; j < n && ok; ++j) {
      ok = c.getBytes(
          result.window_sig.data() +
              static_cast<std::size_t>(live[lo + j]) *
                  static_cast<std::size_t>(sig_words),
          static_cast<std::size_t>(sig_words) * sizeof(std::uint64_t));
    }
  }
  const auto has_record = c.get<std::uint8_t>();
  if ((has_record != 0) != shape.want_record) ok = false;
  if (ok && shape.want_record) {
    for (std::size_t j = 0; j < n && ok; ++j) {
      const auto cnt = c.get<std::uint32_t>();
      auto& list = result.detect_patterns[live[lo + j]];
      list.resize(cnt);
      ok = c.getBytes(list.data(), cnt * sizeof(std::uint32_t));
    }
  }
  return ok && c.ok;
}

/// Merge an in-process sub-result (a degraded-rung shard graded on an
/// engine clone) — the same disjoint-row merge ParallelFaultSim does.
inline void mergeSubResult(FaultSimResult& result,
                           const std::vector<std::uint32_t>& live,
                           std::size_t lo, std::size_t hi,
                           const FaultSimResult& sub,
                           const CampaignShape& shape, int sig_words) {
  for (std::size_t k = lo; k < hi; ++k) {
    const std::uint32_t gi = live[k];
    const std::size_t sk = k - lo;
    result.first_detect[gi] = sub.first_detect[sk];
    if (shape.want_windows) result.window_mask[gi] = sub.window_mask[sk];
    if (shape.want_misr) result.misr_detect[gi] = sub.misr_detect[sk];
    if (sig_words > 0) {
      std::copy_n(sub.window_sig.begin() +
                      static_cast<std::ptrdiff_t>(sk) * sig_words,
                  sig_words,
                  result.window_sig.begin() +
                      static_cast<std::ptrdiff_t>(gi) * sig_words);
    }
    if (shape.want_record) {
      result.detect_patterns[gi] = sub.detect_patterns[sk];
    }
  }
}

}  // namespace corebist::fsimwire

#endif  // COREBIST_FAULT_PROCESS_WIRE_HPP_
