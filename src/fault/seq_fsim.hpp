// Fault-parallel sequential fault simulation.
//
// The BIST engine applies one pseudo-random pattern per clock at speed and
// observes module outputs (through MISRs) every cycle; fault effects persist
// in flip-flop state. This simulator packs the good machine into bit 0 of
// every 64-bit net word and up to 63 faulty machines into bits 1..63; all
// machines share the broadcast stimulus. Fault injection is performed by
// patching machine bits at the fault site after the site's driver has been
// evaluated (stems) or re-evaluating the single consuming gate (branches).
//
// Transition-delay faults use the gross-delay model: the slow edge arrives
// after the next clock, so the site presents
//   slow-to-rise:  cur AND prev     slow-to-fall:  cur OR prev
// of the machine's own raw site value across consecutive cycles.
//
// Two-pass scheduling: a short prepass drops the easy majority of faults,
// survivors are regrouped densely and re-run for the full pattern budget.
#ifndef COREBIST_FAULT_SEQ_FSIM_HPP_
#define COREBIST_FAULT_SEQ_FSIM_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// The option/result records live with the common interface; these aliases
/// keep the sequential engine's historical names working.
using SeqFsimOptions = FaultSimOptions;
using SeqFsimResult = FaultSimResult;

class SeqFaultSim final : public FaultSim {
 public:
  explicit SeqFaultSim(const Netlist& nl);

  /// Run `faults` against `stimulus` (stimulus[c] bit j drives the j-th
  /// primary input at cycle c; requires <= 64 primary inputs).
  [[nodiscard]] SeqFsimResult run(std::span<const Fault> faults,
                                  std::span<const std::uint64_t> stimulus,
                                  const SeqFsimOptions& opts) const;

  /// Campaign entry point (FaultSim): uses the source's packed per-cycle
  /// words directly when available, otherwise transposes blocks into the
  /// per-cycle stream (requires width <= 64).
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;

  [[nodiscard]] const Netlist& netlist() const noexcept override {
    return nl_;
  }
  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

  /// Good-machine MISR signature for a stimulus (no faults), for golden
  /// signature generation.
  [[nodiscard]] std::vector<std::uint64_t> goodSignature(
      std::span<const std::uint64_t> stimulus, int cycles,
      const MisrSpec& misr) const;

 private:
  const Netlist& nl_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_SEQ_FSIM_HPP_
