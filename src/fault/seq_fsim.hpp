// Fault-parallel sequential fault simulation.
//
// The BIST engine applies one pseudo-random pattern per clock at speed and
// observes module outputs (through MISRs) every cycle; fault effects persist
// in flip-flop state. This simulator packs the good machine into bit 0 of
// every 64-bit net word and up to 63 faulty machines into bits 1..63; all
// machines share the broadcast stimulus. Fault injection is performed by
// patching machine bits at the fault site after the site's driver has been
// evaluated (stems) or re-evaluating the single consuming gate (branches).
//
// Transition-delay faults use the gross-delay model: the slow edge arrives
// after the next clock, so the site presents
//   slow-to-rise:  cur AND prev     slow-to-fall:  cur OR prev
// of the machine's own raw site value across consecutive cycles.
//
// Two-pass scheduling: a short prepass drops the easy majority of faults,
// survivors are regrouped densely and re-run for the full pattern budget.
#ifndef COREBIST_FAULT_SEQ_FSIM_HPP_
#define COREBIST_FAULT_SEQ_FSIM_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// Bit-sliced MISR model: `feeds[j]` lists the output nets XOR-folded into
/// tap j (the paper folds wide module outputs into 16-bit MISRs through XOR
/// cascades). `poly` holds the feedback taps (bit j set => tap j receives
/// the MSB feedback), i.e. the characteristic polynomial minus x^width.
struct MisrSpec {
  int width = 16;
  std::uint64_t poly = 0;
  std::vector<std::vector<NetId>> feeds;
};

struct SeqFsimOptions {
  int cycles = 4096;
  int prepass_cycles = 256;  // 0 disables the two-pass schedule
  bool drop_detected = true;
  int num_threads = 2;
  /// >0: record a per-window detection mask per fault (diagnosis syndromes);
  /// implies full-length simulation of every group.
  int windows = 0;
  /// Optional MISR compaction model (empirical aliasing measurement).
  std::optional<MisrSpec> misr;
  /// Observation points; empty => primary outputs of the netlist.
  std::vector<NetId> observe;
};

struct SeqFsimResult {
  std::vector<std::int32_t> first_detect;  // -1 => undetected at outputs
  std::vector<std::uint64_t> window_mask;  // per fault, when windows > 0
  std::vector<char> misr_detect;           // per fault, when misr set
  /// Per fault, when windows > 0 AND misr set: the XOR difference between
  /// the faulty and good MISR signatures at every window boundary, packed
  /// window-major (windows * misr.width bits -> sig_words per fault). This
  /// is exactly what reading the MISR through the Output Selector after
  /// every window yields, and is the BIST diagnosis syndrome of Table 5.
  std::vector<std::uint64_t> window_sig;
  int sig_words_per_fault = 0;
  std::size_t detected = 0;
  std::size_t total = 0;

  [[nodiscard]] double coverage() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};

class SeqFaultSim {
 public:
  explicit SeqFaultSim(const Netlist& nl);

  /// Run `faults` against `stimulus` (stimulus[c] bit j drives the j-th
  /// primary input at cycle c; requires <= 64 primary inputs).
  [[nodiscard]] SeqFsimResult run(std::span<const Fault> faults,
                                  std::span<const std::uint64_t> stimulus,
                                  const SeqFsimOptions& opts) const;

  /// Good-machine MISR signature for a stimulus (no faults), for golden
  /// signature generation.
  [[nodiscard]] std::vector<std::uint64_t> goodSignature(
      std::span<const std::uint64_t> stimulus, int cycles,
      const MisrSpec& misr) const;

 private:
  const Netlist& nl_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_SEQ_FSIM_HPP_
