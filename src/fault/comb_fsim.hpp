// Pattern-parallel (PPSFP) combinational fault simulation, wide-lane.
//
// Used for the full-scan view of a module: scan cells turn flip-flops into
// pseudo-PIs/pseudo-POs, so each test pattern is one combinational vector.
// W * 64 patterns are packed per block (LaneWord<W> per net); faults are
// simulated one at a time with event-driven forward propagation from the
// fault site (only the affected cone is re-evaluated), which is the classic
// single-fault-propagation scheme TetraMax-class tools use — widened so one
// propagation pass grades W * 64 patterns and the per-gate bookkeeping
// (level buckets, stamps, CSR fanout walks) is amortized across all lanes.
//
// Results are byte-identical at every W: lane indices map to global pattern
// indices, wide stimulus fills decompose into the same per-64-lane sub-block
// fills narrow kernels issue, and the stall exit replays the narrow kernel's
// per-64-pattern-block accounting inside each wide pass (see run()).
// tests/wide_fsim_test.cpp enforces this against the W=1 reference.
#ifndef COREBIST_FAULT_COMB_FSIM_HPP_
#define COREBIST_FAULT_COMB_FSIM_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "fault/lane.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

template <int W>
class CombFaultSimT final : public FaultSim {
 public:
  /// Detection masks and net values cover kLanes = W * 64 patterns.
  using Word = LaneWord<W>;
  static constexpr int kWords = W;
  static constexpr int kLanes = 64 * W;

  /// `inputs` are the controllable nets (PIs + pseudo-PIs), `observed` the
  /// observable nets (POs + pseudo-POs).
  CombFaultSimT(const Netlist& nl, std::span<const NetId> inputs,
                std::span<const NetId> observed);

  /// Campaign entry point (FaultSim): grade `faults` against the pattern
  /// stream, with fault dropping, stall exit, per-window masks and first-K
  /// dictionary records. Stuck-at campaigns use `patterns` alone; transition
  /// campaigns additionally set `opts.launch` (the v1 stream) and every
  /// block pair is applied through loadPairBlock with detection evaluated
  /// on v2. MISR compaction is a sequential-engine feature and is rejected.
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;

  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

  /// Good-simulate one block of patterns. Blocks narrower than W lane words
  /// are accepted (missing lanes are masked off); wider blocks throw.
  void loadBlock(const PatternBlock& block);

  /// Good-simulate an aligned pattern-pair block (v1 launch, v2 capture) for
  /// transition faults. Detection is evaluated on v2.
  void loadPairBlock(const PatternBlock& v1, const PatternBlock& v2);

  /// Lanes (patterns of the loaded block) that detect `f`.
  [[nodiscard]] Word detect(const Fault& f);

  /// Good value of a net in the loaded (v2) block.
  [[nodiscard]] Word goodValue(NetId n) const { return good_[n]; }

  [[nodiscard]] const Netlist& netlist() const noexcept override {
    return nl_;
  }
  [[nodiscard]] std::span<const NetId> inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] std::span<const NetId> observed() const noexcept {
    return observed_;
  }

 private:
  void simulateGood(const PatternBlock& block, std::vector<Word>& dst);
  /// detect() with the per-fault switch hoisted: the campaign loop validates
  /// kinds once per run and passes the precomputed forced-word polarity.
  [[nodiscard]] Word detectStuckAt(const Fault& f, bool sa1);
  Word propagate(NetId site_net, const Word& faulty_word, GateId branch_gate,
                 std::uint8_t branch_pin);
  [[nodiscard]] const Word& readFaulty(NetId n) const {
    return stamp_[n] == epoch_ ? fval_[n] : good_[n];
  }

  const Netlist& nl_;
  Levelization lev_;
  const ReaderCsr* readers_;  // materialized at construction (thread safety)
  std::vector<NetId> inputs_;
  std::vector<NetId> observed_;
  std::vector<char> observed_flag_;

  std::vector<Word> good_;    // v2 (capture) good values
  std::vector<Word> goodv1_;  // v1 (launch) good values; pair mode
  bool pair_mode_ = false;
  Word lane_mask_ = Word::ones();

  // Event-driven propagation scratch (epoch-stamped copy-on-write).
  std::vector<Word> fval_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> in_queue_;
  std::uint32_t epoch_ = 0;
  std::vector<std::vector<GateId>> level_buckets_;
};

// The kernel widths linked into the library: the 64-lane reference, the
// 128-lane middle point (bench sweep), the 256-lane default and the
// 512-lane AVX-512 width (one 512-bit op per LaneWord when compiled in;
// portable multi-word loop otherwise). Additional widths need an explicit
// instantiation in comb_fsim.cpp.
extern template class CombFaultSimT<1>;
extern template class CombFaultSimT<2>;
extern template class CombFaultSimT<4>;
extern template class CombFaultSimT<8>;
#if COREBIST_LANE_WORDS != 1 && COREBIST_LANE_WORDS != 2 && \
    COREBIST_LANE_WORDS != 4 && COREBIST_LANE_WORDS != 8
extern template class CombFaultSimT<kLaneWords>;
#endif

/// The production kernel: kLaneWords * 64 pattern lanes per pass.
using CombFaultSim = CombFaultSimT<kLaneWords>;

}  // namespace corebist

#endif  // COREBIST_FAULT_COMB_FSIM_HPP_
