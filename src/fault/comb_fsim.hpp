// Pattern-parallel (PPSFP) combinational fault simulation.
//
// Used for the full-scan view of a module: scan cells turn flip-flops into
// pseudo-PIs/pseudo-POs, so each test pattern is one combinational vector.
// 64 patterns are packed per block; faults are simulated one at a time with
// event-driven forward propagation from the fault site (only the affected
// cone is re-evaluated), which is the classic single-fault-propagation
// scheme TetraMax-class tools use.
#ifndef COREBIST_FAULT_COMB_FSIM_HPP_
#define COREBIST_FAULT_COMB_FSIM_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

class CombFaultSim final : public FaultSim {
 public:
  /// `inputs` are the controllable nets (PIs + pseudo-PIs), `observed` the
  /// observable nets (POs + pseudo-POs).
  CombFaultSim(const Netlist& nl, std::span<const NetId> inputs,
               std::span<const NetId> observed);

  /// Campaign entry point (FaultSim): grade stuck-at `faults` against the
  /// pattern stream, with fault dropping, stall exit, per-window masks and
  /// first-K dictionary records. Transition faults need launch/capture
  /// pairs (loadPairBlock) and are rejected here; MISR compaction is a
  /// sequential-engine feature and is rejected too.
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;

  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

  /// Good-simulate one block of patterns.
  void loadBlock(const PatternBlock& block);

  /// Good-simulate an aligned pattern-pair block (v1 launch, v2 capture) for
  /// transition faults. Detection is evaluated on v2.
  void loadPairBlock(const PatternBlock& v1, const PatternBlock& v2);

  /// Lanes (patterns of the loaded block) that detect `f`.
  [[nodiscard]] std::uint64_t detect(const Fault& f);

  /// Good value of a net in the loaded (v2) block.
  [[nodiscard]] std::uint64_t goodValue(NetId n) const { return good_[n]; }

  [[nodiscard]] const Netlist& netlist() const noexcept override {
    return nl_;
  }
  [[nodiscard]] std::span<const NetId> inputs() const noexcept {
    return inputs_;
  }
  [[nodiscard]] std::span<const NetId> observed() const noexcept {
    return observed_;
  }

 private:
  void simulateGood(const PatternBlock& block, std::vector<std::uint64_t>& dst);
  std::uint64_t propagate(NetId site_net, std::uint64_t faulty_word,
                          GateId branch_gate, std::uint8_t branch_pin);
  [[nodiscard]] std::uint64_t readFaulty(NetId n) const {
    return stamp_[n] == epoch_ ? fval_[n] : good_[n];
  }

  const Netlist& nl_;
  Levelization lev_;
  std::vector<int> order_index_;  // gate id -> position in topological order
  std::vector<NetId> inputs_;
  std::vector<NetId> observed_;
  std::vector<char> observed_flag_;

  std::vector<std::uint64_t> good_;    // v2 (capture) good values
  std::vector<std::uint64_t> goodv1_;  // v1 (launch) good values; pair mode
  bool pair_mode_ = false;
  std::uint64_t lane_mask_ = ~std::uint64_t{0};

  // Event-driven propagation scratch (epoch-stamped copy-on-write).
  std::vector<std::uint64_t> fval_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> in_queue_;
  std::uint32_t epoch_ = 0;
  std::vector<std::vector<GateId>> level_buckets_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_COMB_FSIM_HPP_
