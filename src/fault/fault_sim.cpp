#include "fault/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <random>

#include "fault/lane.hpp"

namespace corebist {

void PatternSource::fillWide(int start, int lane_words,
                             PatternBlock& out) const {
  assert(lane_words >= 1 && lane_words <= 8 &&
         "fillWide: lane_words out of [1,8]");
  const std::size_t wdt = width();
  const std::size_t wpi = static_cast<std::size_t>(lane_words);
  out.words_per_input = lane_words;
  out.inputs.assign(wdt * wpi, 0);
  const int n = std::min(patternCount() - start, lane_words * 64);
  assert(n >= 1 && "fillWide: past end of pattern source");
  out.count = std::max(n, 1);
  // Sub-blocks are materialized through the narrow fill() so wide and
  // narrow campaigns consume bit-identical stimulus (block-indexed random
  // sources derive their RNG stream per 64-lane sub-block).
  PatternBlock sub;
  for (int k = 0; 64 * k < out.count; ++k) {
    fill(start + 64 * k, sub);
    const std::uint64_t tail = sub.laneMask();
    for (std::size_t j = 0; j < wdt; ++j) {
      out.inputs[j * wpi + static_cast<std::size_t>(k)] =
          sub.inputs[j] & tail;
    }
  }
}

const std::vector<std::uint64_t>& CyclePatternSource::transposedBlock(
    int block) const {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(block);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock — concurrent first touches may both transpose,
  // but try_emplace keeps exactly one copy and both produce identical bits.
  std::uint64_t m[64] = {};
  const int start = 64 * block;
  const int n = std::min<int>(64, patternCount() - start);
  for (int k = 0; k < n; ++k) {
    m[k] = words_[static_cast<std::size_t>(start + k)];
  }
  transpose64(m);
  std::vector<std::uint64_t> lanes(m, m + width_);
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.try_emplace(block, std::move(lanes)).first->second;
}

void CyclePatternSource::fill(int start, PatternBlock& out) const {
  const int n = std::min<int>(64, patternCount() - start);
  assert(n >= 1 && "CyclePatternSource: fill past end of pattern source");
  out.words_per_input = 1;
  out.count = std::max(n, 1);
  if (start % 64 == 0) {
    const auto& lanes = transposedBlock(start / 64);
    out.inputs.assign(lanes.begin(), lanes.end());
    return;
  }
  // Unaligned starts fall back to the bit loop (no kernel issues these; the
  // path exists for ad-hoc callers).
  out.inputs.assign(width_, 0);
  for (int k = 0; k < n; ++k) {
    const std::uint64_t w = words_[static_cast<std::size_t>(start + k)];
    for (std::size_t j = 0; j < width_; ++j) {
      if ((w >> j) & 1u) out.inputs[j] |= std::uint64_t{1} << k;
    }
  }
}

void VectorPatternSource::append(std::span<const std::uint8_t> bits) {
  requirePatternWidth(width_, bits.size(), "VectorPatternSource::append");
  const int lane = count_ % 64;
  if (lane == 0) blocks_.emplace_back(width_, 0);
  auto& col = blocks_.back();
  for (std::size_t j = 0; j < width_; ++j) {
    if (bits[j] != 0) col[j] |= std::uint64_t{1} << lane;
  }
  ++count_;
}

void VectorPatternSource::appendBlock(const PatternBlock& block) {
  assert(count_ % 64 == 0 &&
         "VectorPatternSource: appendBlock on an unaligned source");
  assert(block.clampedWords() == 1 && block.inputs.size() == width_ &&
         "VectorPatternSource: appendBlock expects a narrow width-matched "
         "block");
  const int n = block.clampedCount();
  auto& col = blocks_.emplace_back(block.inputs.begin(), block.inputs.end());
  // Mask lanes past the block's count so a partial hand-built block can
  // never leak stale bits into the campaign.
  const std::uint64_t mask = block.laneMask();
  for (auto& w : col) w &= mask;
  count_ += n;
}

void VectorPatternSource::fill(int start, PatternBlock& out) const {
  assert(start % 64 == 0 && "VectorPatternSource: unaligned fill");
  const int n = std::min<int>(64, count_ - start);
  assert(n >= 1 && "VectorPatternSource: fill past end of pattern source");
  out.words_per_input = 1;
  out.count = std::max(n, 1);
  const auto& col = blocks_[static_cast<std::size_t>(start / 64)];
  out.inputs.assign(col.begin(), col.end());
  if (n < 64 && n >= 1) {
    const std::uint64_t mask = out.laneMask();
    for (auto& w : out.inputs) w &= mask;
  }
}

void RandomPatternSource::fill(int start, PatternBlock& out) const {
  const int n = std::min<int>(64, patternCount() - start);
  assert(n >= 1 && "RandomPatternSource: fill past end of pattern source");
  // Block-indexed stream: the same block always gets the same patterns, no
  // matter which worker asks first.
  const std::uint64_t block = static_cast<std::uint64_t>(start / 64);
  std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull * (block + 1)));
  out.words_per_input = 1;
  out.inputs.resize(width_);
  out.count = std::max(n, 1);
  for (auto& w : out.inputs) w = rng();
  if (n < 64) {
    // Lanes past the end carry unspecified values; mask them off so partial
    // blocks compare equal regardless of how the tail was generated.
    const std::uint64_t mask = out.laneMask();
    for (auto& w : out.inputs) w &= mask;
  }
}

}  // namespace corebist
