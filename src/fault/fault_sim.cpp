#include "fault/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <random>

namespace corebist {

void CyclePatternSource::fill(int start, PatternBlock& out) const {
  const int n = std::min<int>(64, patternCount() - start);
  assert(n >= 1 && "CyclePatternSource: fill past end of pattern source");
  out.inputs.assign(width_, 0);
  out.count = std::max(n, 1);
  for (int k = 0; k < n; ++k) {
    const std::uint64_t w = words_[static_cast<std::size_t>(start + k)];
    for (std::size_t j = 0; j < width_; ++j) {
      if ((w >> j) & 1u) out.inputs[j] |= std::uint64_t{1} << k;
    }
  }
}

void RandomPatternSource::fill(int start, PatternBlock& out) const {
  const int n = std::min<int>(64, patternCount() - start);
  assert(n >= 1 && "RandomPatternSource: fill past end of pattern source");
  // Block-indexed stream: the same block always gets the same patterns, no
  // matter which worker asks first.
  const std::uint64_t block = static_cast<std::uint64_t>(start / 64);
  std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull * (block + 1)));
  out.inputs.resize(width_);
  out.count = std::max(n, 1);
  for (auto& w : out.inputs) w = rng();
  if (n < 64) {
    // Lanes past the end carry unspecified values; mask them off so partial
    // blocks compare equal regardless of how the tail was generated.
    const std::uint64_t mask = out.laneMask();
    for (auto& w : out.inputs) w &= mask;
  }
}

}  // namespace corebist
