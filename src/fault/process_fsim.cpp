#include "fault/process_fsim.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "fault/failpoint.hpp"
#include "fault/process_wire.hpp"

namespace corebist {

namespace w = fsimwire;

namespace {
// A frame claiming a payload beyond this is corruption, not a real shard.
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
}  // namespace

ProcessFaultSim::ProcessFaultSim(const FaultSim& prototype,
                                 ProcessFsimOptions popts)
    : proto_(prototype.clone()), popts_(popts) {
  if (popts_.shard_faults < 1) popts_.shard_faults = 63;
}

const Netlist& ProcessFaultSim::netlist() const noexcept {
  return proto_->netlist();
}

std::unique_ptr<FaultSim> ProcessFaultSim::clone() const {
  return std::make_unique<ProcessFaultSim>(*proto_, popts_);
}

FaultSimResult ProcessFaultSim::run(std::span<const Fault> faults,
                                    const PatternSource& patterns,
                                    const FaultSimOptions& opts) {
  int nworkers = popts_.num_workers > 0
                     ? popts_.num_workers
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nworkers < 1) nworkers = 1;

  FaultSimResult result;
  const w::CampaignShape shape =
      w::initCampaign(result, faults, patterns, opts);
  if (faults.empty()) return result;

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);
  const std::size_t shard = static_cast<std::size_t>(popts_.shard_faults);
  const int sig_words = result.sig_words_per_fault;

  const w::ScopedSigpipeIgnore sigpipe_guard;

  const std::size_t first_shards = (live.size() + shard - 1) / shard;
  if (static_cast<std::size_t>(nworkers) > first_shards) {
    nworkers = static_cast<int>(first_shards);
  }

  std::vector<w::Worker> workers(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    if (!w::spawnWorker(workers, static_cast<std::size_t>(i), *proto_,
                        patterns, opts)) {
      for (w::Worker& ww : workers) w::killWorker(ww);
      throw std::runtime_error("ProcessFaultSim: pipe()/fork() failed");
    }
  }

  std::size_t stage_done = 0;
  std::size_t stage_shards = 0;
  auto fail = [&](ProcessFsimError::Reason reason, int widx,
                  const std::string& detail) {
    for (w::Worker& ww : workers) {
      if (ww.pid > 0) ::kill(ww.pid, SIGKILL);
    }
    for (w::Worker& ww : workers) w::killWorker(ww);
    std::size_t det = 0;
    for (const auto fd : result.first_detect) {
      if (fd >= 0) ++det;
    }
    throw ProcessFsimError(reason, widx, stage_done, stage_shards, det,
                           detail);
  };

  std::vector<std::uint8_t> msg;
  std::vector<std::uint8_t> payload;
  for (const int stage_cycles : shape.stages) {
    if (live.empty()) break;
    const std::size_t nshards = (live.size() + shard - 1) / shard;
    stage_shards = nshards;
    stage_done = 0;
    std::size_t next = 0;

    w::WireOptions wopts;
    wopts.cycles = stage_cycles;
    wopts.windows = opts.windows;
    wopts.record_detections = opts.record_detections;
    wopts.drop_detected = opts.drop_detected ? 1 : 0;
    wopts.has_misr = shape.want_misr ? 1 : 0;
    wopts.has_launch = opts.launch != nullptr ? 1 : 0;

    std::vector<Fault> shard_faults;
    auto sendNextShard = [&](int widx) {
      w::Worker& wk = workers[static_cast<std::size_t>(widx)];
      if (next >= nshards) {
        wk.shard = -1;
        return;
      }
      const std::size_t s = next++;
      const std::size_t lo = s * shard;
      const std::size_t hi = std::min(lo + shard, live.size());
      shard_faults.clear();
      for (std::size_t k = lo; k < hi; ++k) {
        shard_faults.push_back(faults[live[k]]);
      }
      // Parent-evaluated failure injections: worker-side actions are
      // consumed HERE (in the arming process) and shipped inside the
      // frame, so a retried dispatch of the same shard re-runs clean once
      // the armed entry is spent. seq = stage-local shard index.
      w::WireOptions wsend = wopts;
      std::optional<FailpointAction> req_inject;
      if (failpointsArmed()) {
        if (const auto a = failpointFire(w::kFpWorkerShard, widx,
                                         static_cast<std::int64_t>(s))) {
          wsend.inject_shard = w::WireInject::from(*a);
        }
        if (const auto a = failpointFire(w::kFpWorkerReply, widx,
                                         static_cast<std::int64_t>(s))) {
          wsend.inject_reply = w::WireInject::from(*a);
        }
        req_inject = failpointFire(w::kFpRequestFrame, widx,
                                   static_cast<std::int64_t>(s));
      }
      w::serializeShardRequest(msg, static_cast<std::uint32_t>(s), wsend,
                               shard_faults);
      if (!w::writeFrameInjected(wk.req_fd, msg,
                                 req_inject ? &*req_inject : nullptr, s)) {
        fail(ProcessFsimError::Reason::kWorkerDied, widx,
             "shard request write failed (worker " + std::to_string(widx) +
                 " dead, EPIPE)");
      }
      wk.shard = static_cast<std::int64_t>(s);
      wk.deadline = w::Deadline::after(popts_.timeout_ms);
    };

    for (int i = 0; i < nworkers; ++i) sendNextShard(i);

    std::vector<pollfd> pfds;
    std::vector<int> pidx;
    while (stage_done < nshards) {
      pfds.clear();
      pidx.clear();
      int wait_ms = -1;
      for (int i = 0; i < nworkers; ++i) {
        const w::Worker& wk = workers[static_cast<std::size_t>(i)];
        if (wk.shard >= 0) {
          pfds.push_back(pollfd{wk.resp_fd, POLLIN, 0});
          pidx.push_back(i);
          const int rem = wk.deadline.remainingMs();
          if (rem >= 0) wait_ms = wait_ms < 0 ? rem : std::min(wait_ms, rem);
        }
      }
      if (pfds.empty()) {
        fail(ProcessFsimError::Reason::kProtocol, -1,
             "no shard in flight but stage incomplete");
      }
      const int rc = ::poll(pfds.data(), pfds.size(), wait_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        fail(ProcessFsimError::Reason::kProtocol, -1, "poll() failed");
      }
      if (rc == 0) {
        // Watchdog: a busy worker's monotonic per-shard deadline expired
        // (the deadline was armed at dispatch, so wakeups between partial
        // progress cannot reset it).
        for (const int i : pidx) {
          if (workers[static_cast<std::size_t>(i)].deadline.expired()) {
            fail(ProcessFsimError::Reason::kTimeout, i,
                 "worker " + std::to_string(i) +
                     " produced no complete response within " +
                     std::to_string(popts_.timeout_ms) +
                     " ms of dispatch: campaign wedged");
          }
        }
        continue;  // spurious early wakeup; re-poll with fresh remaining
      }
      for (std::size_t k = 0; k < pfds.size(); ++k) {
        if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int widx = pidx[k];
        w::Worker& wk = workers[static_cast<std::size_t>(widx)];
        // The response fd is non-blocking: these reads poll against the
        // worker's monotonic deadline, so a dribbled frame either
        // completes in budget or fails as kTimeout.
        std::uint32_t hdr[w::kHeaderWords];
        auto mapIo = [&](w::IoStatus st, const char* what) {
          if (st == w::IoStatus::kOk) return;
          if (st == w::IoStatus::kTimeout) {
            fail(ProcessFsimError::Reason::kTimeout, widx,
                 "worker " + std::to_string(widx) + " dribbled a " + what +
                     " past the " + std::to_string(popts_.timeout_ms) +
                     " ms deadline");
          }
          fail(ProcessFsimError::Reason::kWorkerDied, widx,
               "worker " + std::to_string(widx) +
                   " closed its response pipe mid-" + what +
                   " (crashed or killed)");
        };
        mapIo(w::readAllDeadline(wk.resp_fd, hdr, sizeof hdr, wk.deadline),
              "header");
        if (hdr[0] != w::kRespMagic || hdr[2] > kMaxFrameBytes) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "bad response framing from worker " + std::to_string(widx));
        }
        payload.resize(hdr[2]);
        mapIo(w::readAllDeadline(wk.resp_fd, payload.data(), payload.size(),
                                 wk.deadline),
              "payload");
        if (w::fnv1a(payload.data(), payload.size()) != hdr[3]) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "response payload checksum mismatch from worker " +
                   std::to_string(widx) + " (corrupted frame)");
        }
        if (hdr[1] == w::kStatusEngineError) {
          // The engine itself rejected the campaign (e.g. MISR on a comb
          // kernel): surface the serial engine's own error type, not a
          // process-layer failure.
          const std::string what(payload.begin(), payload.end());
          for (w::Worker& ww : workers) {
            if (ww.pid > 0) ::kill(ww.pid, SIGKILL);
          }
          for (w::Worker& ww : workers) w::killWorker(ww);
          throw std::invalid_argument(what);
        }
        if (hdr[1] != w::kStatusOk) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "unknown response status from worker " +
                   std::to_string(widx));
        }

        w::Cursor c{payload.data(), payload.data() + payload.size()};
        const auto shard_id = c.get<std::uint32_t>();
        const auto n = c.get<std::uint32_t>();
        const std::size_t lo = static_cast<std::size_t>(shard_id) * shard;
        const std::size_t hi = std::min(lo + shard, live.size());
        if (shard_id != static_cast<std::uint32_t>(wk.shard) ||
            n != hi - lo) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "response shard mismatch from worker " +
                   std::to_string(widx));
        }
        if (!w::mergeWirePayload(c, result, live, lo, n, shape, sig_words)) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "malformed result payload from worker " +
                   std::to_string(widx));
        }
        ++stage_done;
        sendNextShard(widx);
      }
    }

    if (stage_cycles == shape.total_cycles) break;
    std::vector<std::uint32_t> survivors;
    for (const std::uint32_t i : live) {
      if (result.first_detect[i] < 0) survivors.push_back(i);
    }
    live = std::move(survivors);
  }

  // Orderly shutdown: every worker gets the shutdown message and is reaped
  // (with a kill fallback bounded by timeout_ms, so even a pathologically
  // wedged worker cannot hang the parent here).
  std::vector<std::uint8_t> bye;
  w::serializeShutdown(bye);
  int bad_worker = -1;
  int bad_status = 0;
  for (int i = 0; i < nworkers; ++i) {
    w::Worker& wk = workers[static_cast<std::size_t>(i)];
    (void)w::writeAll(wk.req_fd, bye.data(), bye.size());  // EPIPE => dead
    const int grace = popts_.timeout_ms > 0 ? popts_.timeout_ms : 10'000;
    const int st = w::reapWithGrace(wk.pid, grace);
    wk.pid = -1;
    w::closeWorkerFds(wk);
    if (bad_worker < 0 && (st < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0)) {
      bad_worker = i;
      bad_status = st;
    }
  }
  if (bad_worker >= 0) {
    std::size_t det = 0;
    for (const auto fd : result.first_detect) {
      if (fd >= 0) ++det;
    }
    throw ProcessFsimError(
        ProcessFsimError::Reason::kWorkerDied, bad_worker, stage_done,
        stage_shards, det,
        "worker " + std::to_string(bad_worker) +
            " did not exit cleanly at shutdown (wait status " +
            std::to_string(bad_status) + ")");
  }

  for (const auto fd : result.first_detect) {
    if (fd >= 0) ++result.detected;
  }
  return result;
}

}  // namespace corebist
