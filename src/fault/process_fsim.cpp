#include "fault/process_fsim.hpp"

#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace corebist {
namespace {

// ---- wire protocol -------------------------------------------------------
//
// Every message is {u32 magic, u32 kind_or_status, u32 payload_bytes}
// followed by the payload. Both ends are forks of the same binary, so POD
// fields are memcpy'd without cross-ABI concern; the framing exists so a
// remote transport can substitute real encoders behind the same shapes.

constexpr std::uint32_t kReqMagic = 0xC0B15701u;
constexpr std::uint32_t kRespMagic = 0xC0B15702u;
constexpr std::uint32_t kMsgShard = 1;
constexpr std::uint32_t kMsgShutdown = 2;
constexpr std::uint32_t kStatusOk = 0;
constexpr std::uint32_t kStatusEngineError = 1;

bool writeAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool readAll(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;  // EOF: peer died
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

template <typename T>
void putPod(std::vector<std::uint8_t>& b, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  b.insert(b.end(), p, p + sizeof(T));
}

void putBytes(std::vector<std::uint8_t>& b, const void* p, std::size_t n) {
  const auto* q = static_cast<const std::uint8_t*>(p);
  b.insert(b.end(), q, q + n);
}

/// Bounds-checked payload reader; `ok` latches false on any overrun so a
/// truncated payload parses to garbage-free defaults instead of OOB reads.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    if (!ok || static_cast<std::size_t>(end - p) < sizeof(T)) {
      ok = false;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }

  bool getBytes(void* dst, std::size_t n) {
    if (!ok || static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    return true;
  }
};

/// The per-shard varying slice of FaultSimOptions that crosses the wire.
struct WireOptions {
  std::int32_t cycles = 0;
  std::int32_t windows = 0;
  std::int32_t record_detections = 0;
  std::uint8_t drop_detected = 0;
  std::uint8_t has_misr = 0;
  std::uint8_t has_launch = 0;
};

void serializeShardRequest(std::vector<std::uint8_t>& out,
                           std::uint32_t shard_id, const WireOptions& wopts,
                           std::span<const Fault> shard_faults) {
  out.clear();
  putPod(out, kReqMagic);
  putPod(out, kMsgShard);
  putPod(out, std::uint32_t{0});  // payload size backpatched below
  putPod(out, shard_id);
  putPod(out, wopts.cycles);
  putPod(out, wopts.windows);
  putPod(out, wopts.record_detections);
  putPod(out, wopts.drop_detected);
  putPod(out, wopts.has_misr);
  putPod(out, wopts.has_launch);
  putPod(out, static_cast<std::uint32_t>(shard_faults.size()));
  for (const Fault& f : shard_faults) {
    putPod(out, static_cast<std::uint32_t>(f.net));
    putPod(out, static_cast<std::uint32_t>(f.gate));
    putPod(out, f.pin);
    putPod(out, static_cast<std::uint8_t>(f.kind));
  }
  const std::uint32_t payload = static_cast<std::uint32_t>(out.size() - 12);
  std::memcpy(out.data() + 8, &payload, sizeof(payload));
}

void serializeResult(std::vector<std::uint8_t>& out, std::uint32_t shard_id,
                     const FaultSimResult& sub, const FaultSimOptions& wopts) {
  out.clear();
  putPod(out, kRespMagic);
  putPod(out, kStatusOk);
  putPod(out, std::uint32_t{0});  // payload size backpatched below
  putPod(out, shard_id);
  const std::uint32_t n = static_cast<std::uint32_t>(sub.first_detect.size());
  putPod(out, n);
  putPod(out, static_cast<std::uint64_t>(sub.patterns_applied));
  putBytes(out, sub.first_detect.data(),
           sub.first_detect.size() * sizeof(std::int32_t));
  const std::uint8_t has_window = wopts.windows > 0 ? 1 : 0;
  const std::uint8_t has_misr = wopts.misr.has_value() ? 1 : 0;
  const std::uint8_t has_record = wopts.record_detections > 0 ? 1 : 0;
  putPod(out, has_window);
  if (has_window != 0) {
    putBytes(out, sub.window_mask.data(),
             sub.window_mask.size() * sizeof(std::uint64_t));
  }
  putPod(out, has_misr);
  if (has_misr != 0) putBytes(out, sub.misr_detect.data(), sub.misr_detect.size());
  putPod(out, static_cast<std::uint32_t>(sub.sig_words_per_fault));
  if (sub.sig_words_per_fault > 0) {
    putBytes(out, sub.window_sig.data(),
             sub.window_sig.size() * sizeof(std::uint64_t));
  }
  putPod(out, has_record);
  if (has_record != 0) {
    for (const auto& list : sub.detect_patterns) {
      putPod(out, static_cast<std::uint32_t>(list.size()));
      putBytes(out, list.data(), list.size() * sizeof(std::uint32_t));
    }
  }
  const std::uint32_t payload = static_cast<std::uint32_t>(out.size() - 12);
  std::memcpy(out.data() + 8, &payload, sizeof(payload));
}

void serializeEngineError(std::vector<std::uint8_t>& out, const char* what) {
  out.clear();
  putPod(out, kRespMagic);
  putPod(out, kStatusEngineError);
  const std::size_t len = std::strlen(what);
  putPod(out, static_cast<std::uint32_t>(len));
  putBytes(out, what, len);
}

// ---- worker side ---------------------------------------------------------

/// Request/grade/respond loop of one forked worker. Immutable campaign
/// state (netlist, pattern sources, MISR spec, observe set) is already in
/// this process via the fork snapshot; only shards and scalar options
/// arrive over the pipe. Never returns: _exit(0) on shutdown, _exit(1) on
/// any protocol violation (the parent turns the EOF into a structured
/// error). _exit skips atexit/sanitizer teardown, which is exactly right
/// for a fork without exec.
[[noreturn]] void workerMain(int req_fd, int resp_fd, const FaultSim& proto,
                             const PatternSource& patterns,
                             const FaultSimOptions& base, int index,
                             const ProcessFsimOptions& popts) {
  std::unique_ptr<FaultSim> engine;  // cloned on first shard (private scratch)
  std::vector<std::uint8_t> buf;
  std::vector<std::uint8_t> out;
  std::vector<Fault> shard_faults;
  bool first_shard = true;
  for (;;) {
    std::uint32_t hdr[3];
    if (!readAll(req_fd, hdr, sizeof hdr)) _exit(1);
    if (hdr[0] != kReqMagic) _exit(1);
    if (hdr[1] == kMsgShutdown) _exit(0);
    if (hdr[1] != kMsgShard) _exit(1);
    buf.resize(hdr[2]);
    if (!readAll(req_fd, buf.data(), buf.size())) _exit(1);
    if (first_shard) {
      first_shard = false;
      if (index == popts.inject_crash_worker) _exit(42);
      if (index == popts.inject_hang_worker) {
        for (;;) pause();
      }
    }

    Cursor c{buf.data(), buf.data() + buf.size()};
    const auto shard_id = c.get<std::uint32_t>();
    WireOptions w;
    w.cycles = c.get<std::int32_t>();
    w.windows = c.get<std::int32_t>();
    w.record_detections = c.get<std::int32_t>();
    w.drop_detected = c.get<std::uint8_t>();
    w.has_misr = c.get<std::uint8_t>();
    w.has_launch = c.get<std::uint8_t>();
    const auto n_faults = c.get<std::uint32_t>();
    shard_faults.clear();
    shard_faults.reserve(n_faults);
    for (std::uint32_t i = 0; i < n_faults; ++i) {
      Fault f;
      f.net = c.get<std::uint32_t>();
      f.gate = c.get<std::uint32_t>();
      f.pin = c.get<std::uint8_t>();
      f.kind = static_cast<FaultKind>(c.get<std::uint8_t>());
      shard_faults.push_back(f);
    }
    // Wire flags must agree with the fork-time snapshot the non-POD
    // payloads ride on; a mismatch means frames desynchronized.
    if (!c.ok || (w.has_misr != 0) != base.misr.has_value() ||
        (w.has_launch != 0) != (base.launch != nullptr)) {
      _exit(1);
    }

    FaultSimOptions wopts = base;
    wopts.cycles = w.cycles;
    wopts.prepass_cycles = 0;  // the stage ladder lives in the parent
    wopts.num_threads = 1;     // no nested threading inside a worker
    wopts.stall_blocks = 0;    // shard-local stalls would change results
    wopts.drop_detected = w.drop_detected != 0;
    wopts.windows = w.windows;
    wopts.record_detections = w.record_detections;

    if (engine == nullptr) engine = proto.clone();
    try {
      const FaultSimResult sub = engine->run(shard_faults, patterns, wopts);
      serializeResult(out, shard_id, sub, wopts);
    } catch (const std::exception& e) {
      serializeEngineError(out, e.what());
    }
    if (!writeAll(resp_fd, out.data(), out.size())) _exit(1);
  }
}

// ---- parent side ---------------------------------------------------------

struct Worker {
  pid_t pid = -1;
  int req_fd = -1;
  int resp_fd = -1;
  std::int64_t shard = -1;  // shard in flight, -1 when idle
};

void closeWorkerFds(Worker& w) {
  if (w.req_fd >= 0) ::close(w.req_fd);
  if (w.resp_fd >= 0) ::close(w.resp_fd);
  w.req_fd = w.resp_fd = -1;
}

/// Reap one child without risking a parent hang: poll with WNOHANG until
/// `grace_ms` expires, then SIGKILL and reap for certain. Returns the raw
/// wait status (or -1 if the child had to be killed here).
int reapWithGrace(pid_t pid, int grace_ms) {
  const int step_ms = 2;
  int waited = 0;
  for (;;) {
    int st = 0;
    const pid_t r = ::waitpid(pid, &st, WNOHANG);
    if (r == pid) return st;
    if (r < 0 && errno != EINTR) return -1;  // already reaped / gone
    if (grace_ms > 0 && waited >= grace_ms) {
      ::kill(pid, SIGKILL);
      while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
      }
      return -1;
    }
    struct timespec ts {0, step_ms * 1'000'000};
    ::nanosleep(&ts, nullptr);
    waited += step_ms;
  }
}

}  // namespace

ProcessFaultSim::ProcessFaultSim(const FaultSim& prototype,
                                 ProcessFsimOptions popts)
    : proto_(prototype.clone()), popts_(popts) {
  if (popts_.shard_faults < 1) popts_.shard_faults = 63;
}

const Netlist& ProcessFaultSim::netlist() const noexcept {
  return proto_->netlist();
}

std::unique_ptr<FaultSim> ProcessFaultSim::clone() const {
  return std::make_unique<ProcessFaultSim>(*proto_, popts_);
}

FaultSimResult ProcessFaultSim::run(std::span<const Fault> faults,
                                    const PatternSource& patterns,
                                    const FaultSimOptions& opts) {
  const int total_cycles =
      opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  int nworkers = popts_.num_workers > 0
                     ? popts_.num_workers
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nworkers < 1) nworkers = 1;

  FaultSimResult result;
  result.total = faults.size();
  result.first_detect.assign(faults.size(), -1);
  result.patterns_applied = static_cast<std::size_t>(total_cycles);
  const bool want_windows = opts.windows > 0;
  const bool want_misr = opts.misr.has_value();
  const bool want_record = opts.record_detections > 0;
  if (want_windows) result.window_mask.assign(faults.size(), 0);
  if (want_misr) result.misr_detect.assign(faults.size(), 0);
  if (want_windows && want_misr) {
    result.sig_words_per_fault = (opts.windows * opts.misr->width + 63) / 64;
    result.window_sig.assign(
        faults.size() * static_cast<std::size_t>(result.sig_words_per_fault),
        0);
  }
  if (want_record) result.detect_patterns.assign(faults.size(), {});
  if (faults.empty()) return result;

  // Same stage ladder as ParallelFaultSim: short stages retire the easy
  // majority across all shards before anyone pays the full budget.
  const bool full_length = want_windows || want_misr || want_record;
  std::vector<int> stages;
  if (!full_length && opts.drop_detected && opts.prepass_cycles > 0 &&
      opts.prepass_cycles < total_cycles) {
    for (int c = opts.prepass_cycles; c < total_cycles; c *= 4) {
      stages.push_back(c);
    }
  }
  stages.push_back(total_cycles);

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);
  const std::size_t shard = static_cast<std::size_t>(popts_.shard_faults);
  const int sig_words = result.sig_words_per_fault;

  // A worker dying mid-request-write must surface as EPIPE on the write,
  // not as SIGPIPE killing the campaign (and the caller with it).
  static std::once_flag sigpipe_once;
  std::call_once(sigpipe_once, [] { std::signal(SIGPIPE, SIG_IGN); });

  const std::size_t first_shards = (live.size() + shard - 1) / shard;
  if (static_cast<std::size_t>(nworkers) > first_shards) {
    nworkers = static_cast<int>(first_shards);
  }

  std::vector<Worker> workers(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    int req[2] = {-1, -1};
    int resp[2] = {-1, -1};
    if (::pipe(req) != 0 || ::pipe(resp) != 0) {
      if (req[0] >= 0) ::close(req[0]);
      if (req[1] >= 0) ::close(req[1]);
      for (Worker& w : workers) {
        if (w.pid > 0) {
          ::kill(w.pid, SIGKILL);
          reapWithGrace(w.pid, 0);
        }
        closeWorkerFds(w);
      }
      throw std::runtime_error("ProcessFaultSim: pipe() failed");
    }
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Worker: keep only this worker's ends; inherited sibling fds would
      // hold their pipes open past a sibling's death and mask the EOF.
      ::close(req[1]);
      ::close(resp[0]);
      for (int j = 0; j < i; ++j) {
        closeWorkerFds(workers[static_cast<std::size_t>(j)]);
      }
      workerMain(req[0], resp[1], *proto_, patterns, opts, i, popts_);
    }
    ::close(req[0]);
    ::close(resp[1]);
    if (pid < 0) {
      ::close(req[1]);
      ::close(resp[0]);
      for (Worker& w : workers) {
        if (w.pid > 0) {
          ::kill(w.pid, SIGKILL);
          reapWithGrace(w.pid, 0);
        }
        closeWorkerFds(w);
      }
      throw std::runtime_error("ProcessFaultSim: fork() failed");
    }
    workers[static_cast<std::size_t>(i)] =
        Worker{pid, req[1], resp[0], -1};
  }

  std::size_t stage_done = 0;
  std::size_t stage_shards = 0;
  auto fail = [&](ProcessFsimError::Reason reason, int widx,
                  const std::string& detail) {
    for (Worker& w : workers) {
      if (w.pid > 0) ::kill(w.pid, SIGKILL);
    }
    for (Worker& w : workers) {
      if (w.pid > 0) {
        reapWithGrace(w.pid, 0);
        w.pid = -1;
      }
      closeWorkerFds(w);
    }
    std::size_t det = 0;
    for (const auto fd : result.first_detect) {
      if (fd >= 0) ++det;
    }
    throw ProcessFsimError(reason, widx, stage_done, stage_shards, det,
                           detail);
  };

  std::vector<std::uint8_t> msg;
  std::vector<std::uint8_t> payload;
  for (const int stage_cycles : stages) {
    if (live.empty()) break;
    const std::size_t nshards = (live.size() + shard - 1) / shard;
    stage_shards = nshards;
    stage_done = 0;
    std::size_t next = 0;

    WireOptions wopts;
    wopts.cycles = stage_cycles;
    wopts.windows = opts.windows;
    wopts.record_detections = opts.record_detections;
    wopts.drop_detected = opts.drop_detected ? 1 : 0;
    wopts.has_misr = want_misr ? 1 : 0;
    wopts.has_launch = opts.launch != nullptr ? 1 : 0;

    std::vector<Fault> shard_faults;
    auto sendNextShard = [&](int widx) {
      Worker& w = workers[static_cast<std::size_t>(widx)];
      if (next >= nshards) {
        w.shard = -1;
        return;
      }
      const std::size_t s = next++;
      const std::size_t lo = s * shard;
      const std::size_t hi = std::min(lo + shard, live.size());
      shard_faults.clear();
      for (std::size_t k = lo; k < hi; ++k) {
        shard_faults.push_back(faults[live[k]]);
      }
      serializeShardRequest(msg, static_cast<std::uint32_t>(s), wopts,
                            shard_faults);
      if (!writeAll(w.req_fd, msg.data(), msg.size())) {
        fail(ProcessFsimError::Reason::kWorkerDied, widx,
             "shard request write failed (worker " + std::to_string(widx) +
                 " dead, EPIPE)");
      }
      w.shard = static_cast<std::int64_t>(s);
    };

    for (int i = 0; i < nworkers; ++i) sendNextShard(i);

    std::vector<pollfd> pfds;
    std::vector<int> pidx;
    while (stage_done < nshards) {
      pfds.clear();
      pidx.clear();
      for (int i = 0; i < nworkers; ++i) {
        const Worker& w = workers[static_cast<std::size_t>(i)];
        if (w.shard >= 0) {
          pfds.push_back(pollfd{w.resp_fd, POLLIN, 0});
          pidx.push_back(i);
        }
      }
      if (pfds.empty()) {
        fail(ProcessFsimError::Reason::kProtocol, -1,
             "no shard in flight but stage incomplete");
      }
      const int rc = ::poll(pfds.data(), pfds.size(),
                            popts_.timeout_ms > 0 ? popts_.timeout_ms : -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        fail(ProcessFsimError::Reason::kProtocol, -1, "poll() failed");
      }
      if (rc == 0) {
        fail(ProcessFsimError::Reason::kTimeout, pidx.front(),
             "no worker response within " +
                 std::to_string(popts_.timeout_ms) +
                 " ms (worker " + std::to_string(pidx.front()) +
                 " and " + std::to_string(pidx.size() - 1) +
                 " other(s) busy): campaign wedged");
      }
      for (std::size_t k = 0; k < pfds.size(); ++k) {
        if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int widx = pidx[k];
        Worker& w = workers[static_cast<std::size_t>(widx)];
        std::uint32_t hdr[3];
        if (!readAll(w.resp_fd, hdr, sizeof hdr)) {
          fail(ProcessFsimError::Reason::kWorkerDied, widx,
               "worker " + std::to_string(widx) +
                   " closed its response pipe mid-shard (crashed or "
                   "killed)");
        }
        if (hdr[0] != kRespMagic) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "bad response magic from worker " + std::to_string(widx));
        }
        payload.resize(hdr[2]);
        if (!readAll(w.resp_fd, payload.data(), payload.size())) {
          fail(ProcessFsimError::Reason::kWorkerDied, widx,
               "worker " + std::to_string(widx) +
                   " died mid-response (truncated payload)");
        }
        if (hdr[1] == kStatusEngineError) {
          // The engine itself rejected the campaign (e.g. MISR on a comb
          // kernel): surface the serial engine's own error type, not a
          // process-layer failure.
          const std::string what(payload.begin(), payload.end());
          for (Worker& ww : workers) {
            if (ww.pid > 0) ::kill(ww.pid, SIGKILL);
          }
          for (Worker& ww : workers) {
            if (ww.pid > 0) {
              reapWithGrace(ww.pid, 0);
              ww.pid = -1;
            }
            closeWorkerFds(ww);
          }
          throw std::invalid_argument(what);
        }
        if (hdr[1] != kStatusOk) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "unknown response status from worker " +
                   std::to_string(widx));
        }

        Cursor c{payload.data(), payload.data() + payload.size()};
        const auto shard_id = c.get<std::uint32_t>();
        const auto n = c.get<std::uint32_t>();
        c.get<std::uint64_t>();  // worker patterns_applied (stage-local)
        const std::size_t lo = static_cast<std::size_t>(shard_id) * shard;
        const std::size_t hi = std::min(lo + shard, live.size());
        if (shard_id != static_cast<std::uint32_t>(w.shard) ||
            n != hi - lo) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "response shard mismatch from worker " +
                   std::to_string(widx));
        }
        // Merge the slice; shards partition `live`, so rows are disjoint.
        bool ok = true;
        for (std::size_t j = 0; j < n && ok; ++j) {
          result.first_detect[live[lo + j]] = c.get<std::int32_t>();
        }
        const auto has_window = c.get<std::uint8_t>();
        if ((has_window != 0) != want_windows) ok = false;
        if (ok && want_windows) {
          for (std::size_t j = 0; j < n && ok; ++j) {
            result.window_mask[live[lo + j]] = c.get<std::uint64_t>();
          }
        }
        const auto has_misr = c.get<std::uint8_t>();
        if ((has_misr != 0) != want_misr) ok = false;
        if (ok && want_misr) {
          for (std::size_t j = 0; j < n && ok; ++j) {
            result.misr_detect[live[lo + j]] =
                static_cast<char>(c.get<std::uint8_t>());
          }
        }
        const auto sub_sig_words = c.get<std::uint32_t>();
        if (static_cast<int>(sub_sig_words) != sig_words) ok = false;
        if (ok && sig_words > 0) {
          for (std::size_t j = 0; j < n && ok; ++j) {
            ok = c.getBytes(
                result.window_sig.data() +
                    static_cast<std::size_t>(live[lo + j]) *
                        static_cast<std::size_t>(sig_words),
                static_cast<std::size_t>(sig_words) * sizeof(std::uint64_t));
          }
        }
        const auto has_record = c.get<std::uint8_t>();
        if ((has_record != 0) != want_record) ok = false;
        if (ok && want_record) {
          for (std::size_t j = 0; j < n && ok; ++j) {
            const auto cnt = c.get<std::uint32_t>();
            auto& list = result.detect_patterns[live[lo + j]];
            list.resize(cnt);
            ok = c.getBytes(list.data(), cnt * sizeof(std::uint32_t));
          }
        }
        if (!ok || !c.ok) {
          fail(ProcessFsimError::Reason::kProtocol, widx,
               "malformed result payload from worker " +
                   std::to_string(widx));
        }
        ++stage_done;
        sendNextShard(widx);
      }
    }

    if (stage_cycles == total_cycles) break;
    std::vector<std::uint32_t> survivors;
    for (const std::uint32_t i : live) {
      if (result.first_detect[i] < 0) survivors.push_back(i);
    }
    live = std::move(survivors);
  }

  // Orderly shutdown: every worker gets the shutdown message and is reaped
  // (with a kill fallback bounded by timeout_ms, so even a pathologically
  // wedged worker cannot hang the parent here).
  std::vector<std::uint8_t> bye;
  putPod(bye, kReqMagic);
  putPod(bye, kMsgShutdown);
  putPod(bye, std::uint32_t{0});
  int bad_worker = -1;
  int bad_status = 0;
  for (int i = 0; i < nworkers; ++i) {
    Worker& w = workers[static_cast<std::size_t>(i)];
    (void)writeAll(w.req_fd, bye.data(), bye.size());  // EPIPE => dead already
    const int grace = popts_.timeout_ms > 0 ? popts_.timeout_ms : 10'000;
    const int st = reapWithGrace(w.pid, grace);
    w.pid = -1;
    closeWorkerFds(w);
    if (bad_worker < 0 && (st < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0)) {
      bad_worker = i;
      bad_status = st;
    }
  }
  if (bad_worker >= 0) {
    std::size_t det = 0;
    for (const auto fd : result.first_detect) {
      if (fd >= 0) ++det;
    }
    throw ProcessFsimError(
        ProcessFsimError::Reason::kWorkerDied, bad_worker, stage_done,
        stage_shards, det,
        "worker " + std::to_string(bad_worker) +
            " did not exit cleanly at shutdown (wait status " +
            std::to_string(bad_status) + ")");
  }

  for (const auto fd : result.first_detect) {
    if (fd >= 0) ++result.detected;
  }
  return result;
}

}  // namespace corebist
