#include "fault/backend.hpp"

#include <stdexcept>
#include <string>

#include "fault/comb_fsim.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/process_fsim.hpp"
#include "fault/resilient_fsim.hpp"

namespace corebist {

const char* fsimBackendName(FsimBackend b) noexcept {
  switch (b) {
    case FsimBackend::kSerial:
      return "serial";
    case FsimBackend::kThreaded:
      return "threaded";
    case FsimBackend::kProcess:
      return "process";
    case FsimBackend::kResilient:
      return "resilient";
  }
  return "serial";
}

FsimBackend parseFsimBackend(std::string_view name) {
  if (name == "serial") return FsimBackend::kSerial;
  if (name == "threaded") return FsimBackend::kThreaded;
  if (name == "process") return FsimBackend::kProcess;
  if (name == "resilient") return FsimBackend::kResilient;
  throw std::invalid_argument("unknown fsim backend: " + std::string(name));
}

std::unique_ptr<FaultSim> makeOrchestrator(const FaultSim& prototype,
                                           const FsimBackendOptions& opts) {
  switch (opts.backend) {
    case FsimBackend::kSerial:
      return prototype.clone();
    case FsimBackend::kThreaded: {
      ParallelFsimOptions p;
      p.num_threads = opts.num_workers;
      p.shard_faults = opts.shard_faults;
      return std::make_unique<ParallelFaultSim>(prototype, p);
    }
    case FsimBackend::kProcess: {
      ProcessFsimOptions p;
      p.num_workers = opts.num_workers;
      p.shard_faults = opts.shard_faults;
      p.timeout_ms = opts.timeout_ms;
      return std::make_unique<ProcessFaultSim>(prototype, p);
    }
    case FsimBackend::kResilient: {
      ResilientFsimOptions r;
      r.num_workers = opts.num_workers;
      r.shard_faults = opts.shard_faults;
      r.timeout_ms = opts.timeout_ms;
      r.max_shard_retries = opts.max_shard_retries;
      r.backoff_base_ms = opts.backoff_base_ms;
      r.deadline_ms = opts.deadline_ms;
      r.degrade_on_failure = opts.degrade_on_failure;
      return std::make_unique<ResilientFaultSim>(prototype, r);
    }
  }
  return prototype.clone();
}

std::unique_ptr<FaultSim> makeCombFaultSim(const Netlist& nl,
                                           std::span<const NetId> inputs,
                                           std::span<const NetId> observed,
                                           const FsimBackendOptions& opts) {
  std::unique_ptr<FaultSim> engine;
  switch (opts.lane_words == 0 ? kLaneWords : opts.lane_words) {
    case 1:
      engine = std::make_unique<CombFaultSimT<1>>(nl, inputs, observed);
      break;
    case 2:
      engine = std::make_unique<CombFaultSimT<2>>(nl, inputs, observed);
      break;
    case 4:
      engine = std::make_unique<CombFaultSimT<4>>(nl, inputs, observed);
      break;
    case 8:
      engine = std::make_unique<CombFaultSimT<8>>(nl, inputs, observed);
      break;
    default:
      throw std::invalid_argument(
          "makeCombFaultSim: lane_words must be 0, 1, 2, 4 or 8");
  }
  if (opts.backend == FsimBackend::kSerial) return engine;
  return makeOrchestrator(*engine, opts);
}

}  // namespace corebist
