#include "fault/resilient_fsim.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "fault/failpoint.hpp"
#include "fault/process_fsim.hpp"
#include "fault/process_wire.hpp"

namespace corebist {

namespace w = fsimwire;

namespace {

constexpr std::uint32_t kMaxFrameBytes = 1u << 30;
constexpr int kRungProcess = 0;
constexpr int kRungThreaded = 1;
constexpr int kRungSerial = 2;

// Failpoint site for ladder tests: arming `resilient.rung=error:index=1`
// makes the threaded rung refuse, pushing degradation down to serial.
constexpr const char* kFpResilientRung = "resilient.rung";

void jsonEscapeTo(std::string& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

const char* resilienceEventName(ResilienceEvent::Kind k) noexcept {
  switch (k) {
    case ResilienceEvent::Kind::kRetry:
      return "retry";
    case ResilienceEvent::Kind::kRespawn:
      return "respawn";
    case ResilienceEvent::Kind::kDegrade:
      return "degrade";
    case ResilienceEvent::Kind::kStrayShutdown:
      return "stray_shutdown";
  }
  return "?";
}

const char* resilienceRungName(int rung) noexcept {
  switch (rung) {
    case kRungProcess:
      return "process";
    case kRungThreaded:
      return "threaded";
    case kRungSerial:
      return "serial";
    default:
      return "?";
  }
}

// Float-audit note: every field below is integral or an enum name, so this
// emitter needs no finite guard. If a floating-point field (e.g. a retry
// latency) is ever added, format it through corebist::jsonFinite
// (core/session_report.hpp) — %f renders inf/NaN as non-JSON.
std::string ResilienceLog::toJson() const {
  std::string out = "{";
  out += "\"retries\":" + std::to_string(retries);
  out += ",\"respawns\":" + std::to_string(respawns);
  out += ",\"degradations\":" + std::to_string(degradations);
  out += ",\"final_rung\":\"";
  out += resilienceRungName(final_rung);
  out += "\",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ResilienceEvent& e = events[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    out += resilienceEventName(e.kind);
    out += "\",\"rung\":\"";
    out += resilienceRungName(e.rung);
    out += "\",\"worker\":" + std::to_string(e.worker);
    out += ",\"shard\":" + std::to_string(e.shard);
    out += ",\"stage_cycles\":" + std::to_string(e.stage_cycles);
    out += ",\"attempt\":" + std::to_string(e.attempt);
    out += ",\"backoff_ms\":" + std::to_string(e.backoff_ms);
    out += ",\"detail\":\"";
    jsonEscapeTo(out, e.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

ResilientFaultSim::ResilientFaultSim(const FaultSim& prototype,
                                     ResilientFsimOptions ropts)
    : proto_(prototype.clone()), ropts_(ropts) {
  if (ropts_.shard_faults < 1) ropts_.shard_faults = 63;
  if (ropts_.max_shard_retries < 0) ropts_.max_shard_retries = 0;
  if (ropts_.backoff_max_ms < ropts_.backoff_base_ms) {
    ropts_.backoff_max_ms = ropts_.backoff_base_ms;
  }
}

const Netlist& ResilientFaultSim::netlist() const noexcept {
  return proto_->netlist();
}

std::unique_ptr<FaultSim> ResilientFaultSim::clone() const {
  return std::make_unique<ResilientFaultSim>(*proto_, ropts_);
}

FaultSimResult ResilientFaultSim::run(std::span<const Fault> faults,
                                      const PatternSource& patterns,
                                      const FaultSimOptions& opts) {
  log_ = ResilienceLog{};

  int nworkers = ropts_.num_workers > 0
                     ? ropts_.num_workers
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nworkers < 1) nworkers = 1;

  FaultSimResult result;
  const w::CampaignShape shape =
      w::initCampaign(result, faults, patterns, opts);
  if (faults.empty()) return result;

  std::vector<std::uint32_t> live(faults.size());
  std::iota(live.begin(), live.end(), 0u);
  const std::size_t shard = static_cast<std::size_t>(ropts_.shard_faults);
  const int sig_words = result.sig_words_per_fault;

  const w::ScopedSigpipeIgnore sigpipe_guard;
  const w::Deadline campaign_dl = w::Deadline::after(ropts_.deadline_ms);

  const std::size_t first_shards = (live.size() + shard - 1) / shard;
  if (static_cast<std::size_t>(nworkers) > first_shards) {
    nworkers = static_cast<int>(first_shards);
  }

  // Fleet slots are spawned lazily at dispatch and respawned after a
  // failure; `slot_failed` distinguishes a first spawn from a respawn.
  std::vector<w::Worker> workers(static_cast<std::size_t>(nworkers));
  std::vector<char> slot_failed(static_cast<std::size_t>(nworkers), 0);
  int rung = kRungProcess;
  std::unique_ptr<FaultSim> serial_engine;  // lazily cloned serial floor

  auto detectedSoFar = [&result] {
    std::size_t det = 0;
    for (const auto fd : result.first_detect) {
      if (fd >= 0) ++det;
    }
    return det;
  };
  auto killFleet = [&workers] {
    for (w::Worker& wk : workers) {
      if (wk.pid > 0) ::kill(wk.pid, SIGKILL);
    }
    for (w::Worker& wk : workers) w::killWorker(wk);
  };
  auto stepDown = [&](int to_rung, const std::string& detail) {
    log_.events.push_back(ResilienceEvent{ResilienceEvent::Kind::kDegrade,
                                          to_rung, -1, -1, 0, 0, 0, detail});
    ++log_.degradations;
    rung = to_rung;
    log_.final_rung = std::max(log_.final_rung, to_rung);
  };

  std::vector<std::uint8_t> msg;
  std::vector<std::uint8_t> payload;
  std::vector<Fault> shard_faults;

  for (const int stage_cycles : shape.stages) {
    if (live.empty()) break;
    const std::size_t nshards = (live.size() + shard - 1) / shard;
    std::vector<char> done(nshards, 0);
    std::size_t ndone = 0;

    auto shardBounds = [&](std::size_t s) {
      const std::size_t lo = s * shard;
      return std::pair<std::size_t, std::size_t>{
          lo, std::min(lo + shard, live.size())};
    };
    auto collectShard = [&](std::size_t s) {
      const auto [lo, hi] = shardBounds(s);
      shard_faults.clear();
      for (std::size_t k = lo; k < hi; ++k) {
        shard_faults.push_back(faults[live[k]]);
      }
      return std::pair<std::size_t, std::size_t>{lo, hi};
    };

    if (rung == kRungProcess) {
      std::deque<std::size_t> pending;
      for (std::size_t s = 0; s < nshards; ++s) pending.push_back(s);
      std::vector<int> attempts(nshards, 0);
      bool degrade = false;
      ProcessFsimError::Reason last_reason =
          ProcessFsimError::Reason::kWorkerDied;
      std::string last_detail;
      int last_worker = -1;

      w::WireOptions wopts;
      wopts.cycles = stage_cycles;
      wopts.windows = opts.windows;
      wopts.record_detections = opts.record_detections;
      wopts.drop_detected = opts.drop_detected ? 1 : 0;
      wopts.has_misr = shape.want_misr ? 1 : 0;
      wopts.has_launch = opts.launch != nullptr ? 1 : 0;

      // Record the failure, requeue the shard and pay the backoff.
      // Returns false when this shard's retry budget (or the campaign
      // deadline) is exhausted and the stage must leave the process rung.
      auto handleFailure = [&](int widx, std::size_t s,
                               ProcessFsimError::Reason reason,
                               const std::string& detail) {
        w::killWorker(workers[static_cast<std::size_t>(widx)]);
        slot_failed[static_cast<std::size_t>(widx)] = 1;
        pending.push_front(s);
        const int attempt = ++attempts[s];
        last_reason = reason;
        last_detail = detail;
        last_worker = widx;
        const bool budget_ok =
            attempt <= ropts_.max_shard_retries && !campaign_dl.expired();
        int backoff = 0;
        if (budget_ok && ropts_.backoff_base_ms > 0) {
          const int shift = std::min(attempt - 1, 20);
          const std::int64_t raw =
              static_cast<std::int64_t>(ropts_.backoff_base_ms) << shift;
          backoff = static_cast<int>(std::min<std::int64_t>(
              raw, static_cast<std::int64_t>(ropts_.backoff_max_ms)));
        }
        log_.events.push_back(ResilienceEvent{
            ResilienceEvent::Kind::kRetry, kRungProcess, widx,
            static_cast<std::int64_t>(s), stage_cycles, attempt, backoff,
            detail});
        ++log_.retries;
        if (!budget_ok) return false;
        if (backoff > 0) failpointSleepMs(backoff);
        return true;
      };

      // Fill idle slots from the shard queue, (re)spawning workers as
      // needed. Returns false when a failure exhausted the retry budget.
      auto dispatch = [&] {
        for (int i = 0; i < nworkers && !pending.empty(); ++i) {
          w::Worker& wk = workers[static_cast<std::size_t>(i)];
          if (wk.shard >= 0) continue;  // busy
          const std::size_t s = pending.front();
          pending.pop_front();
          if (wk.pid <= 0) {
            if (!w::spawnWorker(workers, static_cast<std::size_t>(i),
                                *proto_, patterns, opts)) {
              if (!handleFailure(i, s, ProcessFsimError::Reason::kWorkerDied,
                                 "pipe()/fork() failed spawning worker " +
                                     std::to_string(i))) {
                return false;
              }
              continue;
            }
            if (slot_failed[static_cast<std::size_t>(i)] != 0) {
              log_.events.push_back(ResilienceEvent{
                  ResilienceEvent::Kind::kRespawn, kRungProcess, i,
                  static_cast<std::int64_t>(s), stage_cycles, attempts[s], 0,
                  "fresh worker forked into slot " + std::to_string(i)});
              ++log_.respawns;
            }
          }
          collectShard(s);
          // Worker-side injections are consumed here, in the supervising
          // process, and shipped inside the frame — so a re-dispatch of
          // this shard runs clean once the armed entry is spent.
          w::WireOptions wsend = wopts;
          std::optional<FailpointAction> req_inject;
          if (failpointsArmed()) {
            if (const auto a = failpointFire(
                    w::kFpWorkerShard, i, static_cast<std::int64_t>(s))) {
              wsend.inject_shard = w::WireInject::from(*a);
            }
            if (const auto a = failpointFire(
                    w::kFpWorkerReply, i, static_cast<std::int64_t>(s))) {
              wsend.inject_reply = w::WireInject::from(*a);
            }
            req_inject = failpointFire(w::kFpRequestFrame, i,
                                       static_cast<std::int64_t>(s));
          }
          w::serializeShardRequest(msg, static_cast<std::uint32_t>(s), wsend,
                                   shard_faults);
          if (!w::writeFrameInjected(wk.req_fd, msg,
                                     req_inject ? &*req_inject : nullptr,
                                     s)) {
            if (!handleFailure(i, s, ProcessFsimError::Reason::kWorkerDied,
                               "shard request write failed (worker " +
                                   std::to_string(i) + " dead, EPIPE)")) {
              return false;
            }
            continue;
          }
          wk.shard = static_cast<std::int64_t>(s);
          wk.deadline = w::Deadline::after(ropts_.timeout_ms);
        }
        return true;
      };

      std::vector<pollfd> pfds;
      std::vector<int> pidx;
      while (ndone < nshards && !degrade) {
        if (!dispatch()) {
          degrade = true;
          break;
        }
        pfds.clear();
        pidx.clear();
        int wait_ms = -1;
        for (int i = 0; i < nworkers; ++i) {
          const w::Worker& wk = workers[static_cast<std::size_t>(i)];
          if (wk.shard >= 0) {
            pfds.push_back(pollfd{wk.resp_fd, POLLIN, 0});
            pidx.push_back(i);
            const int rem = wk.deadline.remainingMs();
            if (rem >= 0) {
              wait_ms = wait_ms < 0 ? rem : std::min(wait_ms, rem);
            }
          }
        }
        if (pfds.empty()) continue;  // everything requeued; re-dispatch
        const int rc = ::poll(pfds.data(), pfds.size(), wait_ms);
        if (rc < 0) {
          if (errno == EINTR) continue;
          // poll() itself failing is a parent-side resource problem, not a
          // worker fault: degrade rather than spin.
          last_reason = ProcessFsimError::Reason::kProtocol;
          last_detail = "poll() failed in supervisor";
          degrade = true;
          break;
        }
        if (rc == 0) {
          bool failed_budget = false;
          for (const int i : pidx) {
            w::Worker& wk = workers[static_cast<std::size_t>(i)];
            if (wk.shard >= 0 && wk.deadline.expired()) {
              const auto s = static_cast<std::size_t>(wk.shard);
              if (!handleFailure(
                      i, s, ProcessFsimError::Reason::kTimeout,
                      "worker " + std::to_string(i) +
                          " produced no complete response within " +
                          std::to_string(ropts_.timeout_ms) +
                          " ms of dispatch")) {
                failed_budget = true;
                break;
              }
            }
          }
          if (failed_budget) degrade = true;
          continue;
        }
        for (std::size_t k = 0; k < pfds.size() && !degrade; ++k) {
          if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
            continue;
          }
          const int widx = pidx[k];
          w::Worker& wk = workers[static_cast<std::size_t>(widx)];
          if (wk.shard < 0) continue;
          const auto s = static_cast<std::size_t>(wk.shard);
          // One retryable failure per wakeup keeps the bookkeeping simple;
          // other ready responses are picked up on the next poll.
          auto failShard = [&](ProcessFsimError::Reason reason,
                               const std::string& detail) {
            if (!handleFailure(widx, s, reason, detail)) degrade = true;
          };
          std::uint32_t hdr[w::kHeaderWords];
          const w::IoStatus hst =
              w::readAllDeadline(wk.resp_fd, hdr, sizeof hdr, wk.deadline);
          if (hst != w::IoStatus::kOk) {
            failShard(hst == w::IoStatus::kTimeout
                          ? ProcessFsimError::Reason::kTimeout
                          : ProcessFsimError::Reason::kWorkerDied,
                      "worker " + std::to_string(widx) +
                          (hst == w::IoStatus::kTimeout
                               ? " dribbled a header past the deadline"
                               : " closed its response pipe mid-shard"));
            break;
          }
          if (hdr[0] != w::kRespMagic || hdr[2] > kMaxFrameBytes) {
            failShard(ProcessFsimError::Reason::kProtocol,
                      "bad response framing from worker " +
                          std::to_string(widx));
            break;
          }
          payload.resize(hdr[2]);
          const w::IoStatus pst = w::readAllDeadline(
              wk.resp_fd, payload.data(), payload.size(), wk.deadline);
          if (pst != w::IoStatus::kOk) {
            failShard(pst == w::IoStatus::kTimeout
                          ? ProcessFsimError::Reason::kTimeout
                          : ProcessFsimError::Reason::kWorkerDied,
                      "worker " + std::to_string(widx) +
                          " died or stalled mid-payload");
            break;
          }
          if (w::fnv1a(payload.data(), payload.size()) != hdr[3]) {
            failShard(ProcessFsimError::Reason::kProtocol,
                      "response payload checksum mismatch from worker " +
                          std::to_string(widx) + " (corrupted frame)");
            break;
          }
          if (hdr[1] == w::kStatusEngineError) {
            // Deterministic engine rejection: never retried, surfaced as
            // the engine's own error type like every other backend.
            const std::string what(payload.begin(), payload.end());
            killFleet();
            throw std::invalid_argument(what);
          }
          if (hdr[1] != w::kStatusOk) {
            failShard(ProcessFsimError::Reason::kProtocol,
                      "unknown response status from worker " +
                          std::to_string(widx));
            break;
          }
          w::Cursor c{payload.data(), payload.data() + payload.size()};
          const auto shard_id = c.get<std::uint32_t>();
          const auto n = c.get<std::uint32_t>();
          const auto [lo, hi] = shardBounds(s);
          if (shard_id != static_cast<std::uint32_t>(s) || n != hi - lo) {
            failShard(ProcessFsimError::Reason::kProtocol,
                      "response shard mismatch from worker " +
                          std::to_string(widx));
            break;
          }
          if (!w::mergeWirePayload(c, result, live, lo, n, shape,
                                   sig_words)) {
            // A retry fully overwrites the slice rows, so the partial
            // merge of a malformed payload cannot leak into the result.
            failShard(ProcessFsimError::Reason::kProtocol,
                      "malformed result payload from worker " +
                          std::to_string(widx));
            break;
          }
          done[s] = 1;
          ++ndone;
          wk.shard = -1;
        }
      }

      if (degrade) {
        if (!ropts_.degrade_on_failure) {
          killFleet();
          throw ProcessFsimError(last_reason, last_worker, ndone, nshards,
                                 detectedSoFar(),
                                 last_detail + " (retry budget exhausted)");
        }
        killFleet();
        stepDown(kRungThreaded,
                 "process rung abandoned after retry budget: " + last_detail);
      }
    }

    if (rung >= kRungThreaded && ndone < nshards) {
      std::vector<std::size_t> remaining;
      for (std::size_t s = 0; s < nshards; ++s) {
        if (done[s] == 0) remaining.push_back(s);
      }
      FaultSimOptions wopts = opts;
      wopts.cycles = stage_cycles;
      wopts.prepass_cycles = 0;  // stage ladder stays up here
      wopts.num_threads = 1;
      wopts.stall_blocks = 0;
      auto gradeShard = [&](FaultSim& eng, std::size_t s) {
        const auto [lo, hi] = collectShard(s);
        const FaultSimResult sub = eng.run(shard_faults, patterns, wopts);
        w::mergeSubResult(result, live, lo, hi, sub, shape, sig_words);
      };

      if (rung == kRungThreaded) {
        bool rung_failed = false;
        std::string rung_detail;
        if (const auto a = failpointFire(kFpResilientRung, kRungThreaded)) {
          if (a->kind == FailpointAction::Kind::kError) {
            rung_failed = true;
            rung_detail = "injected threaded-rung failure";
          }
        }
        if (!rung_failed) {
          int nthreads = std::min<int>(
              nworkers, static_cast<int>(remaining.size()));
          if (nthreads < 1) nthreads = 1;
          std::atomic<std::size_t> next{0};
          std::mutex err_mu;
          std::exception_ptr first_err;
          auto body = [&] {
            // Shards land on disjoint result rows, so merges need no lock.
            std::vector<Fault> local_faults;
            const std::unique_ptr<FaultSim> eng = proto_->clone();
            for (;;) {
              const std::size_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= remaining.size()) break;
              const std::size_t s = remaining[i];
              try {
                const auto [lo, hi] = shardBounds(s);
                local_faults.clear();
                for (std::size_t k = lo; k < hi; ++k) {
                  local_faults.push_back(faults[live[k]]);
                }
                const FaultSimResult sub =
                    eng->run(local_faults, patterns, wopts);
                w::mergeSubResult(result, live, lo, hi, sub, shape,
                                  sig_words);
              } catch (...) {
                const std::lock_guard<std::mutex> lock(err_mu);
                if (!first_err) first_err = std::current_exception();
                break;
              }
            }
          };
          std::vector<std::thread> pool;
          pool.reserve(static_cast<std::size_t>(nthreads));
          for (int t = 0; t < nthreads; ++t) pool.emplace_back(body);
          for (std::thread& t : pool) t.join();
          if (first_err) {
            try {
              std::rethrow_exception(first_err);
            } catch (const std::invalid_argument&) {
              throw;  // deterministic engine error: no ladder can fix it
            } catch (const std::exception& e) {
              rung_failed = true;
              rung_detail = e.what();
            }
          }
        }
        if (rung_failed) {
          stepDown(kRungSerial, "threaded rung failed: " + rung_detail);
        }
      }

      if (rung == kRungSerial) {
        if (serial_engine == nullptr) serial_engine = proto_->clone();
        // Regrade every remaining shard: overwrite-merges are idempotent,
        // so shards the threaded rung already finished stay byte-identical.
        for (const std::size_t s : remaining) {
          gradeShard(*serial_engine, s);
        }
      }
      ndone = nshards;
    }

    if (stage_cycles == shape.total_cycles) break;
    std::vector<std::uint32_t> survivors;
    for (const std::uint32_t i : live) {
      if (result.first_detect[i] < 0) survivors.push_back(i);
    }
    live = std::move(survivors);
  }

  // Shutdown. Unlike ProcessFaultSim, a worker that fails to exit cleanly
  // AFTER delivering all its results cannot affect correctness — it is
  // killed and logged, never thrown.
  if (rung == kRungProcess) {
    std::vector<std::uint8_t> bye;
    w::serializeShutdown(bye);
    for (int i = 0; i < nworkers; ++i) {
      w::Worker& wk = workers[static_cast<std::size_t>(i)];
      if (wk.pid <= 0) {
        w::closeWorkerFds(wk);
        continue;
      }
      (void)w::writeAll(wk.req_fd, bye.data(), bye.size());
      const int grace = ropts_.timeout_ms > 0 ? ropts_.timeout_ms : 10'000;
      const int st = w::reapWithGrace(wk.pid, grace);
      wk.pid = -1;
      w::closeWorkerFds(wk);
      if (st < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0) {
        log_.events.push_back(ResilienceEvent{
            ResilienceEvent::Kind::kStrayShutdown, kRungProcess, i, -1, 0, 0,
            0,
            "worker " + std::to_string(i) +
                " did not exit cleanly at shutdown (wait status " +
                std::to_string(st) + ")"});
      }
    }
  } else {
    killFleet();  // no-op when the degrade path already emptied the fleet
  }

  for (const auto fd : result.first_detect) {
    if (fd >= 0) ++result.detected;
  }
  return result;
}

}  // namespace corebist
