// Structural fault model: single stuck-at and transition-delay faults.
//
// Fault sites follow the standard stem/branch convention:
//  * a STEM fault sits on a net and is seen by every reader of that net;
//  * a BRANCH fault sits on one (gate, pin) and is seen only by that pin.
// Branch sites are enumerated only where the net has fanout > 1 (with
// fanout 1 the branch is indistinguishable from the stem).
//
// Transition-delay faults (slow-to-rise / slow-to-fall) reuse the same site
// list, mirroring the paper's Table 3 where SAF and TDF universes have the
// same cardinality per module.
#ifndef COREBIST_FAULT_FAULT_HPP_
#define COREBIST_FAULT_FAULT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace corebist {

enum class FaultKind : std::uint8_t {
  kSa0,       // stuck-at-0
  kSa1,       // stuck-at-1
  kSlowRise,  // transition-delay: rising edge arrives one cycle late
  kSlowFall,  // transition-delay: falling edge arrives one cycle late
};

[[nodiscard]] constexpr bool isStuckAt(FaultKind k) noexcept {
  return k == FaultKind::kSa0 || k == FaultKind::kSa1;
}

struct Fault {
  NetId net = kNullNet;   // site net (the stem, or the net read by the pin)
  GateId gate = kNoGate;  // kNoGate => stem fault
  std::uint8_t pin = 0;   // valid when gate != kNoGate
  FaultKind kind = FaultKind::kSa0;

  static constexpr GateId kNoGate = 0xFFFF'FFFFu;
  [[nodiscard]] bool isStem() const noexcept { return gate == kNoGate; }
  [[nodiscard]] bool operator==(const Fault&) const = default;
};

/// Pretty "net@gate.pin s-a-v" string for reports.
[[nodiscard]] std::string describeFault(const Netlist& nl, const Fault& f);

struct FaultUniverse {
  std::vector<Fault> faults;       // collapsed representatives
  std::size_t uncollapsed = 0;     // full structural universe size
  std::size_t collapsed_away = 0;  // faults merged by equivalence
};

/// Enumerate the stuck-at universe of `nl` and (optionally) collapse it with
/// classic intra-gate equivalences (AND in-sa0 == out-sa0, NOT polarity
/// swap, BUF identity, and their NAND/OR/NOR duals). Nets driven by constant
/// generators are excluded.
[[nodiscard]] FaultUniverse enumerateStuckAt(const Netlist& nl,
                                             bool collapse = true);

/// Map a stuck-at list onto transition-delay faults at the same sites
/// (sa0 -> slow-to-rise, sa1 -> slow-to-fall).
[[nodiscard]] std::vector<Fault> toTransitionFaults(
    const std::vector<Fault>& stuck);

}  // namespace corebist

#endif  // COREBIST_FAULT_FAULT_HPP_
