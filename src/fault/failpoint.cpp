#include "fault/failpoint.hpp"

#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace corebist {

namespace detail {
std::atomic<int> g_failpoints_armed{0};
}  // namespace detail

const char* failpointActionName(FailpointAction::Kind k) noexcept {
  switch (k) {
    case FailpointAction::Kind::kOff:
      return "off";
    case FailpointAction::Kind::kCrash:
      return "crash";
    case FailpointAction::Kind::kHang:
      return "hang";
    case FailpointAction::Kind::kError:
      return "error";
    case FailpointAction::Kind::kTruncate:
      return "truncate";
    case FailpointAction::Kind::kBitflip:
      return "bitflip";
    case FailpointAction::Kind::kShortWrite:
      return "shortwrite";
    case FailpointAction::Kind::kDelay:
      return "delay";
  }
  return "?";
}

namespace {

FailpointAction::Kind parseActionKind(std::string_view name) {
  using Kind = FailpointAction::Kind;
  if (name == "crash") return Kind::kCrash;
  if (name == "hang") return Kind::kHang;
  if (name == "error") return Kind::kError;
  if (name == "truncate") return Kind::kTruncate;
  if (name == "bitflip") return Kind::kBitflip;
  if (name == "shortwrite") return Kind::kShortWrite;
  if (name == "delay") return Kind::kDelay;
  throw std::invalid_argument("failpoint spec: unknown action '" +
                              std::string(name) + "'");
}

std::int64_t parseInt(std::string_view s, std::string_view what) {
  if (s.empty()) {
    throw std::invalid_argument("failpoint spec: empty value for '" +
                                std::string(what) + "'");
  }
  errno = 0;
  char* end = nullptr;
  const std::string buf(s);
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    throw std::invalid_argument("failpoint spec: bad integer '" + buf +
                                "' for '" + std::string(what) + "'");
  }
  return v;
}

}  // namespace

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry* reg = [] {
    auto* r = new FailpointRegistry();  // leaked: lives for the process
    r->armFromEnv();
    return r;
  }();
  return *reg;
}

void FailpointRegistry::publishArmedCount() {
  detail::g_failpoints_armed.store(static_cast<int>(entries_.size()),
                                   std::memory_order_relaxed);
}

void FailpointRegistry::arm(std::string_view site, FailpointAction action,
                            std::int64_t match_index, std::int64_t match_seq,
                            int skip, int count) {
  if (site.empty()) {
    throw std::invalid_argument("failpoint: empty site name");
  }
  if (action.kind == FailpointAction::Kind::kOff) {
    throw std::invalid_argument("failpoint: cannot arm the 'off' action");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{std::string(site), action, match_index, match_seq,
                           skip, count, 0});
  publishArmedCount();
}

void FailpointRegistry::armFromSpec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec: entry '" +
                                  std::string(entry) +
                                  "' is not site=action");
    }
    const std::string_view site = entry.substr(0, eq);
    std::string_view rest = entry.substr(eq + 1);

    std::size_t colon = rest.find(':');
    FailpointAction action;
    action.kind = parseActionKind(
        colon == std::string_view::npos ? rest : rest.substr(0, colon));
    std::int64_t match_index = -1;
    std::int64_t match_seq = -1;
    int skip = 0;
    int count = 1;
    while (colon != std::string_view::npos) {
      rest = rest.substr(colon + 1);
      colon = rest.find(':');
      const std::string_view param =
          colon == std::string_view::npos ? rest : rest.substr(0, colon);
      const std::size_t peq = param.find('=');
      if (peq == std::string_view::npos || peq == 0) {
        throw std::invalid_argument("failpoint spec: bad param '" +
                                    std::string(param) + "' in entry '" +
                                    std::string(entry) + "'");
      }
      const std::string_view key = param.substr(0, peq);
      const std::string_view val = param.substr(peq + 1);
      if (key == "worker" || key == "index" || key == "core") {
        match_index = parseInt(val, key);
      } else if (key == "shard" || key == "seq" || key == "attempt" ||
                 key == "poll") {
        match_seq = parseInt(val, key);
      } else if (key == "skip") {
        skip = static_cast<int>(parseInt(val, key));
      } else if (key == "count") {
        count = static_cast<int>(parseInt(val, key));
      } else if (key == "ms") {
        action.delay_ms = static_cast<int>(parseInt(val, key));
      } else if (key == "jitter") {
        action.jitter_ms = static_cast<int>(parseInt(val, key));
      } else if (key == "arg") {
        action.arg = static_cast<std::uint64_t>(parseInt(val, key));
      } else {
        throw std::invalid_argument("failpoint spec: unknown key '" +
                                    std::string(key) + "' in entry '" +
                                    std::string(entry) + "'");
      }
    }
    arm(site, action, match_index, match_seq, skip, count);
  }
}

int FailpointRegistry::armFromEnv() {
  const char* spec = std::getenv("COREBIST_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return 0;
  std::size_t before = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    before = entries_.size();
  }
  try {
    armFromSpec(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "COREBIST_FAILPOINTS ignored after error: %s\n",
                 e.what());
  }
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size() - before);
}

void FailpointRegistry::disarm(std::string_view site) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [&](const Entry& e) { return e.site == site; });
  publishArmedCount();
}

void FailpointRegistry::disarmAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  publishArmedCount();
}

std::size_t FailpointRegistry::firedCount(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.site == site) n += e.fired;
  }
  return n;
}

std::size_t FailpointRegistry::armedCount(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.site == site && e.remaining != 0) ++n;
  }
  return n;
}

std::optional<FailpointAction> FailpointRegistry::fire(
    std::string_view site, const FailpointContext& ctx) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.site != site) continue;
    if (e.match_index >= 0 && e.match_index != ctx.index) continue;
    if (e.match_seq >= 0 && e.match_seq != ctx.seq) continue;
    if (e.remaining == 0) continue;
    if (e.skip > 0) {
      --e.skip;
      continue;
    }
    if (e.remaining > 0) --e.remaining;
    ++e.fired;
    return e.action;
  }
  return std::nullopt;
}

int failpointJitterMs(const FailpointAction& a,
                      std::uint64_t ordinal) noexcept {
  if (a.jitter_ms <= 0) return 0;
  const std::uint64_t h = (ordinal + 1) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>(h % static_cast<std::uint64_t>(a.jitter_ms + 1));
}

void failpointSleepMs(int ms) noexcept {
  if (ms <= 0) return;
  struct timespec ts {ms / 1000, (ms % 1000) * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

}  // namespace corebist
