// Multi-threaded fault-simulation orchestration over the FaultSim seam.
//
// The fault list is sharded into work units (one fault-parallel machine
// group each by default); N worker threads pull shards from a shared queue,
// each grading its shard on a thread-local clone of the prototype engine.
// Campaigns with fault dropping run as a geometric pattern-budget ladder:
// after every stage the workers' detections are folded into the shared
// result and only the surviving faults are re-sharded for the longer next
// stage — cross-shard dropping, so faults detected anywhere stop being
// simulated everywhere.
//
// Results are byte-identical to the serial engines under any thread count
// and shard size: every per-fault record is a function of (fault, pattern
// stream) alone, shards partition the fault list, and detection is monotone
// in the pattern budget (tests/parallel_fsim_test.cpp enforces this).
#ifndef COREBIST_FAULT_PARALLEL_FSIM_HPP_
#define COREBIST_FAULT_PARALLEL_FSIM_HPP_

#include <memory>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"

namespace corebist {

struct ParallelFsimOptions {
  /// Worker threads; 0 => std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Faults per work unit. 63 fills exactly one fault-parallel machine
  /// group of the sequential kernel (bit 0 is the good machine).
  int shard_faults = 63;
};

class ParallelFaultSim final : public FaultSim {
 public:
  /// Clones `prototype` once per worker thread at run time; the prototype
  /// itself is cloned (not referenced), so it may die before this object.
  explicit ParallelFaultSim(const FaultSim& prototype,
                            ParallelFsimOptions popts = {});

  [[nodiscard]] const Netlist& netlist() const noexcept override;
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;
  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

 private:
  std::unique_ptr<FaultSim> proto_;
  ParallelFsimOptions popts_;
  /// Worker engine clones, reused across run() calls: batched consumers
  /// (the ATPG drivers) call run once per batch, and a fresh clone pays a
  /// full netlist levelization plus per-net scratch allocation. Engines
  /// reset all per-campaign state at the top of their own run(). One
  /// consequence: run() is not re-entrant on the same object — use clone()
  /// per thread, as every orchestrator already does.
  std::vector<std::unique_ptr<FaultSim>> engines_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_PARALLEL_FSIM_HPP_
