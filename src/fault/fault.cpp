#include "fault/fault.hpp"

#include <numeric>
#include <unordered_map>

namespace corebist {

namespace {

/// Disjoint-set forest over fault indices for equivalence collapsing.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Key for locating the index of an enumerated fault.
struct SiteKey {
  NetId net;
  GateId gate;
  std::uint8_t pin;
  FaultKind kind;
  bool operator==(const SiteKey&) const = default;
};

struct SiteKeyHash {
  std::size_t operator()(const SiteKey& k) const noexcept {
    std::size_t h = k.net;
    h = h * 1000003u ^ k.gate;
    h = h * 1000003u ^ k.pin;
    h = h * 1000003u ^ static_cast<std::size_t>(k.kind);
    return h;
  }
};

}  // namespace

std::string describeFault(const Netlist& nl, const Fault& f) {
  std::string s = nl.netName(f.net);
  if (!f.isStem()) {
    s += "@g" + std::to_string(f.gate) + "." + std::to_string(f.pin);
  }
  switch (f.kind) {
    case FaultKind::kSa0:
      s += " s-a-0";
      break;
    case FaultKind::kSa1:
      s += " s-a-1";
      break;
    case FaultKind::kSlowRise:
      s += " slow-rise";
      break;
    case FaultKind::kSlowFall:
      s += " slow-fall";
      break;
  }
  return s;
}

FaultUniverse enumerateStuckAt(const Netlist& nl, bool collapse) {
  FaultUniverse u;
  const ReaderCsr& readers = nl.readerCsr();

  // Nets fed by constant tie cells carry no testable stuck-at faults.
  std::vector<char> is_const_net(nl.numNets(), 0);
  for (const Gate& g : nl.gates()) {
    if (g.type == GateType::kConst0 || g.type == GateType::kConst1) {
      is_const_net[g.out] = 1;
    }
  }

  std::vector<Fault> all;
  std::unordered_map<SiteKey, std::size_t, SiteKeyHash> index;
  auto push = [&all, &index](NetId n, GateId g, std::uint8_t pin,
                             FaultKind k) {
    const SiteKey key{n, g, pin, k};
    const auto [it, inserted] = index.emplace(key, all.size());
    if (inserted) all.push_back(Fault{n, g, pin, k});
    return it->second;
  };

  // Stems on every non-constant net.
  for (NetId n = 0; n < nl.numNets(); ++n) {
    if (is_const_net[n]) continue;
    push(n, Fault::kNoGate, 0, FaultKind::kSa0);
    push(n, Fault::kNoGate, 0, FaultKind::kSa1);
  }
  // Branches on fanout > 1 pins.
  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gate = nl.gates()[g];
    for (std::uint8_t p = 0; p < gate.nin; ++p) {
      const NetId in = gate.in[p];
      if (is_const_net[in]) continue;
      if (readers.countOf(in) > 1) {
        push(in, g, p, FaultKind::kSa0);
        push(in, g, p, FaultKind::kSa1);
      }
    }
  }

  u.uncollapsed = all.size();
  if (!collapse) {
    u.faults = std::move(all);
    return u;
  }

  UnionFind uf(all.size());
  auto inputSite = [&readers, &push](const Gate& gate, GateId g,
                                     std::uint8_t pin, FaultKind k) {
    const NetId in = gate.in[pin];
    // The collapsible input fault is the branch when fanout > 1, else the
    // stem of the input net.
    if (readers.countOf(in) > 1) return push(in, g, pin, k);
    return push(in, Fault::kNoGate, 0, k);
  };

  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gate = nl.gates()[g];
    if (gate.nin == 0) continue;
    if (is_const_net[gate.in[0]]) continue;
    const auto outSa0 = push(gate.out, Fault::kNoGate, 0, FaultKind::kSa0);
    const auto outSa1 = push(gate.out, Fault::kNoGate, 0, FaultKind::kSa1);
    switch (gate.type) {
      case GateType::kBuf:
        uf.unite(outSa0, inputSite(gate, g, 0, FaultKind::kSa0));
        uf.unite(outSa1, inputSite(gate, g, 0, FaultKind::kSa1));
        break;
      case GateType::kNot:
        uf.unite(outSa0, inputSite(gate, g, 0, FaultKind::kSa1));
        uf.unite(outSa1, inputSite(gate, g, 0, FaultKind::kSa0));
        break;
      case GateType::kAnd:
        for (std::uint8_t p = 0; p < 2; ++p) {
          if (is_const_net[gate.in[p]]) continue;
          uf.unite(outSa0, inputSite(gate, g, p, FaultKind::kSa0));
        }
        break;
      case GateType::kNand:
        for (std::uint8_t p = 0; p < 2; ++p) {
          if (is_const_net[gate.in[p]]) continue;
          uf.unite(outSa1, inputSite(gate, g, p, FaultKind::kSa0));
        }
        break;
      case GateType::kOr:
        for (std::uint8_t p = 0; p < 2; ++p) {
          if (is_const_net[gate.in[p]]) continue;
          uf.unite(outSa1, inputSite(gate, g, p, FaultKind::kSa1));
        }
        break;
      case GateType::kNor:
        for (std::uint8_t p = 0; p < 2; ++p) {
          if (is_const_net[gate.in[p]]) continue;
          uf.unite(outSa0, inputSite(gate, g, p, FaultKind::kSa1));
        }
        break;
      default:
        break;  // XOR/XNOR/MUX2 have no intra-gate equivalences
    }
  }

  std::vector<char> keep(all.size(), 0);
  for (std::size_t i = 0; i < all.size(); ++i) keep[uf.find(i)] = 1;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (keep[i]) u.faults.push_back(all[i]);
  }
  u.collapsed_away = all.size() - u.faults.size();
  return u;
}

std::vector<Fault> toTransitionFaults(const std::vector<Fault>& stuck) {
  std::vector<Fault> out;
  out.reserve(stuck.size());
  for (const Fault& f : stuck) {
    Fault t = f;
    t.kind = (f.kind == FaultKind::kSa0) ? FaultKind::kSlowRise
                                         : FaultKind::kSlowFall;
    out.push_back(t);
  }
  return out;
}

}  // namespace corebist
