#include "fault/seq_fsim.hpp"

#include <algorithm>
#include <bit>
#include <future>
#include <stdexcept>

#include "netlist/levelize.hpp"
#include "sim/comb_sim.hpp"

namespace corebist {

namespace {

/// One injected fault inside a simulation group.
struct InjectSite {
  std::uint64_t mask = 0;  // the machine bit this fault owns
  NetId net = kNullNet;
  int order_pos = -1;  // position of the site event in the topological order
  GateId branch_gate = Fault::kNoGate;
  std::uint8_t branch_pin = 0;
  FaultKind kind = FaultKind::kSa0;
  std::uint64_t prev = 0;  // TDF: previous raw site value (in `mask` bit)
  std::uint32_t fault_index = 0;
};

struct GroupScratch {
  std::vector<std::uint64_t> val;     // per-net machine words
  std::vector<std::uint64_t> dcapt;   // DFF capture temp
  std::vector<std::uint64_t> misr;    // sliced MISR state
};

/// Replicates lane 0 of `w` across all 64 lanes.
inline std::uint64_t goodLane(std::uint64_t w) {
  return static_cast<std::uint64_t>(-static_cast<std::int64_t>(w & 1u));
}

}  // namespace

SeqFaultSim::SeqFaultSim(const Netlist& nl) : nl_(nl) {
  if (nl.primaryInputs().size() > 64) {
    throw std::invalid_argument(
        "SeqFaultSim: more than 64 primary inputs; pack the stimulus "
        "differently");
  }
}

namespace {

/// Everything constant across groups, precomputed once per run.
struct RunContext {
  const Netlist* nl;
  Levelization lev;
  std::vector<int> driver_order_pos;  // net -> topo position of driver, -1 source
  std::vector<NetId> observe;
  std::span<const std::uint64_t> stimulus;
  const SeqFsimOptions* opts;
};

void simulateGroup(const RunContext& ctx, std::span<const Fault> faults,
                   std::span<const std::uint32_t> members,
                   GroupScratch& scratch, SeqFsimResult& result) {
  const Netlist& nl = *ctx.nl;
  const SeqFsimOptions& opts = *ctx.opts;
  const int cycles = opts.cycles;
  const bool want_windows = opts.windows > 0;
  const bool want_misr = opts.misr.has_value();

  // Build injection tables for this group.
  std::vector<InjectSite> source_sites;  // PI/state-net stems
  std::vector<InjectSite> gate_sites;    // gate-output stems + branches
  std::uint64_t group_mask = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Fault& f = faults[members[i]];
    InjectSite s;
    s.mask = std::uint64_t{1} << (i + 1);  // bit 0 is the good machine
    group_mask |= s.mask;
    s.net = f.net;
    s.kind = f.kind;
    s.fault_index = members[i];
    if (f.isStem()) {
      s.order_pos = ctx.driver_order_pos[f.net];
      if (s.order_pos < 0) {
        source_sites.push_back(s);
      } else {
        gate_sites.push_back(s);
      }
    } else {
      s.branch_gate = f.gate;
      s.branch_pin = f.pin;
      s.order_pos = ctx.driver_order_pos[nl.gates()[f.gate].out];
      gate_sites.push_back(s);
    }
  }
  std::sort(gate_sites.begin(), gate_sites.end(),
            [](const InjectSite& a, const InjectSite& b) {
              return a.order_pos < b.order_pos;
            });

  auto& val = scratch.val;
  std::fill(val.begin(), val.end(), 0);
  const auto& gates = nl.gates();
  const auto& dffs = nl.dffs();
  const auto& pis = nl.primaryInputs();

  // MISR state.
  const int misr_w = want_misr ? opts.misr->width : 0;
  scratch.misr.assign(static_cast<std::size_t>(misr_w), 0);

  std::uint64_t detected_word = 0;  // machines that diffed at an output
  std::vector<std::uint64_t> window_masks(want_windows ? members.size() : 0,
                                          0);
  const bool want_sigs = want_windows && want_misr;
  const int sig_words =
      want_sigs ? (opts.windows * misr_w + 63) / 64 : 0;
  std::vector<std::uint64_t> window_sigs(
      want_sigs ? members.size() * static_cast<std::size_t>(sig_words) : 0,
      0);

  auto applySite = [](InjectSite& s, std::uint64_t& w, std::uint64_t cur) {
    // cur = raw site value restricted to s.mask.
    std::uint64_t presented = 0;
    switch (s.kind) {
      case FaultKind::kSa0:
        presented = 0;
        break;
      case FaultKind::kSa1:
        presented = s.mask;
        break;
      case FaultKind::kSlowRise:
        presented = cur & s.prev;
        break;
      case FaultKind::kSlowFall:
        presented = cur | s.prev;
        break;
    }
    s.prev = cur;
    w = (w & ~s.mask) | presented;
  };

  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Drive stimulus (broadcast to all machines).
    const std::uint64_t in = ctx.stimulus[static_cast<std::size_t>(cycle)];
    for (std::size_t j = 0; j < pis.size(); ++j) {
      val[pis[j]] = broadcast(((in >> j) & 1u) != 0);
    }
    // Source-net injections (PI and flip-flop output stems).
    for (InjectSite& s : source_sites) {
      applySite(s, val[s.net], val[s.net] & s.mask);
    }

    // Evaluate combinational logic with in-line injection events.
    std::size_t ev = 0;
    const std::size_t nev = gate_sites.size();
    for (std::size_t pos = 0; pos < ctx.lev.order.size(); ++pos) {
      const Gate& gate = gates[ctx.lev.order[pos]];
      const std::uint64_t a = gate.nin > 0 ? val[gate.in[0]] : 0;
      const std::uint64_t b = gate.nin > 1 ? val[gate.in[1]] : 0;
      const std::uint64_t sv = gate.nin > 2 ? val[gate.in[2]] : 0;
      val[gate.out] = evalGateWord(gate.type, a, b, sv);
      while (ev < nev &&
             gate_sites[ev].order_pos == static_cast<int>(pos)) {
        InjectSite& s = gate_sites[ev];
        if (s.branch_gate == Fault::kNoGate) {
          applySite(s, val[gate.out], val[gate.out] & s.mask);
        } else {
          // Branch fault: recompute this gate's output for one machine with
          // the pin view patched.
          const Gate& bg = gates[s.branch_gate];
          std::uint64_t iv[3] = {0, 0, 0};
          for (int p = 0; p < bg.nin; ++p) iv[p] = val[bg.in[static_cast<std::size_t>(p)]];
          const std::uint64_t cur = iv[s.branch_pin] & s.mask;
          std::uint64_t presented = 0;
          switch (s.kind) {
            case FaultKind::kSa0:
              presented = 0;
              break;
            case FaultKind::kSa1:
              presented = s.mask;
              break;
            case FaultKind::kSlowRise:
              presented = cur & s.prev;
              break;
            case FaultKind::kSlowFall:
              presented = cur | s.prev;
              break;
          }
          s.prev = cur;
          iv[s.branch_pin] = (iv[s.branch_pin] & ~s.mask) | presented;
          const std::uint64_t out =
              evalGateWord(bg.type, iv[0], iv[1], iv[2]);
          val[bg.out] = (val[bg.out] & ~s.mask) | (out & s.mask);
        }
        ++ev;
      }
    }

    // Observe outputs.
    std::uint64_t cycle_diff = 0;
    for (const NetId po : ctx.observe) {
      const std::uint64_t w = val[po];
      cycle_diff |= w ^ goodLane(w);
    }
    cycle_diff &= group_mask;
    std::uint64_t newly = cycle_diff & ~detected_word;
    detected_word |= cycle_diff;
    while (newly != 0) {
      const int bit = std::countr_zero(newly);
      newly &= newly - 1;
      result.first_detect[members[static_cast<std::size_t>(bit - 1)]] = cycle;
    }
    if (want_windows && cycle_diff != 0) {
      const int w =
          static_cast<int>((static_cast<std::int64_t>(cycle) * opts.windows) /
                           cycles);
      std::uint64_t d = cycle_diff;
      while (d != 0) {
        const int bit = std::countr_zero(d);
        d &= d - 1;
        window_masks[static_cast<std::size_t>(bit - 1)] |=
            std::uint64_t{1} << w;
      }
    }

    // MISR compaction (bit-sliced across machines).
    if (want_misr) {
      const MisrSpec& m = *opts.misr;
      auto& s = scratch.misr;
      const std::uint64_t msb = s[static_cast<std::size_t>(misr_w - 1)];
      for (int j = misr_w - 1; j >= 0; --j) {
        std::uint64_t feed = 0;
        for (const NetId n : m.feeds[static_cast<std::size_t>(j)]) {
          feed ^= val[n];
        }
        const std::uint64_t shifted =
            j > 0 ? s[static_cast<std::size_t>(j - 1)] : 0;
        const std::uint64_t fb = ((m.poly >> j) & 1u) != 0 ? msb : 0;
        s[static_cast<std::size_t>(j)] = shifted ^ fb ^ feed;
      }
    }

    // Window-boundary MISR read-out (signature syndrome capture).
    if (want_sigs) {
      const int w_now = static_cast<int>(
          (static_cast<std::int64_t>(cycle) * opts.windows) / cycles);
      const int w_next = static_cast<int>(
          (static_cast<std::int64_t>(cycle + 1) * opts.windows) / cycles);
      if (w_next > w_now || cycle + 1 == cycles) {
        for (int j = 0; j < misr_w; ++j) {
          const std::uint64_t taps = scratch.misr[static_cast<std::size_t>(j)];
          const std::uint64_t diff = taps ^ goodLane(taps);
          if (diff == 0) continue;
          const int bitpos = w_now * misr_w + j;
          for (std::size_t i = 0; i < members.size(); ++i) {
            if ((diff >> (i + 1)) & 1u) {
              window_sigs[i * static_cast<std::size_t>(sig_words) +
                          static_cast<std::size_t>(bitpos / 64)] |=
                  std::uint64_t{1} << (bitpos % 64);
            }
          }
        }
      }
    }

    // Early exit: everything in the group already detected and no one needs
    // the full-length run.
    if (opts.drop_detected && !want_windows && !want_misr &&
        detected_word == group_mask) {
      break;
    }

    // Clock edge.
    auto& dcapt = scratch.dcapt;
    for (std::size_t i = 0; i < dffs.size(); ++i) dcapt[i] = val[dffs[i].d];
    for (std::size_t i = 0; i < dffs.size(); ++i) val[dffs[i].q] = dcapt[i];
  }

  // Fold group results back (first_detect was written at detection time).
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (want_windows) result.window_mask[members[i]] = window_masks[i];
    if (want_sigs) {
      for (int w = 0; w < sig_words; ++w) {
        result.window_sig[members[i] * static_cast<std::size_t>(sig_words) +
                          static_cast<std::size_t>(w)] =
            window_sigs[i * static_cast<std::size_t>(sig_words) +
                        static_cast<std::size_t>(w)];
      }
    }
    if (want_misr) {
      bool diff = false;
      for (int j = 0; j < misr_w; ++j) {
        const std::uint64_t w = scratch.misr[static_cast<std::size_t>(j)];
        if (((w >> (i + 1)) & 1u) != (w & 1u)) {
          diff = true;
          break;
        }
      }
      result.misr_detect[members[i]] = diff ? 1 : 0;
    }
  }
}

}  // namespace

SeqFsimResult SeqFaultSim::run(std::span<const Fault> faults,
                               std::span<const std::uint64_t> stimulus,
                               const SeqFsimOptions& opts) const {
  if (static_cast<int>(stimulus.size()) < opts.cycles) {
    throw std::invalid_argument("SeqFaultSim: stimulus shorter than cycles");
  }
  RunContext ctx;
  ctx.nl = &nl_;
  ctx.lev = levelize(nl_);
  ctx.stimulus = stimulus;
  ctx.opts = &opts;
  ctx.observe =
      opts.observe.empty() ? nl_.primaryOutputs() : opts.observe;
  ctx.driver_order_pos.assign(nl_.numNets(), -1);
  for (std::size_t pos = 0; pos < ctx.lev.order.size(); ++pos) {
    ctx.driver_order_pos[nl_.gates()[ctx.lev.order[pos]].out] =
        static_cast<int>(pos);
  }

  SeqFsimResult result;
  result.total = faults.size();
  result.first_detect.assign(faults.size(), -1);
  if (opts.windows > 0) result.window_mask.assign(faults.size(), 0);
  if (opts.misr) result.misr_detect.assign(faults.size(), 0);
  if (opts.windows > 0 && opts.misr) {
    result.sig_words_per_fault = (opts.windows * opts.misr->width + 63) / 64;
    result.window_sig.assign(
        faults.size() * static_cast<std::size_t>(result.sig_words_per_fault),
        0);
  }

  const bool full_length = opts.windows > 0 || opts.misr.has_value();

  auto runPass = [&](std::span<const std::uint32_t> indices, int cycles) {
    SeqFsimOptions pass_opts = opts;
    pass_opts.cycles = cycles;
    const int nthreads = std::max(1, opts.num_threads);
    // Chunk into groups of 63 machines.
    std::vector<std::span<const std::uint32_t>> groups;
    for (std::size_t at = 0; at < indices.size(); at += 63) {
      groups.push_back(indices.subspan(at, std::min<std::size_t>(
                                               63, indices.size() - at)));
    }
    auto worker = [&](int tid) {
      GroupScratch scratch;
      scratch.val.assign(nl_.numNets(), 0);
      scratch.dcapt.assign(nl_.dffs().size(), 0);
      RunContext local = ctx;  // cheap: spans/pointers + shared vectors copy
      local.opts = &pass_opts;
      for (std::size_t g = static_cast<std::size_t>(tid); g < groups.size();
           g += static_cast<std::size_t>(nthreads)) {
        simulateGroup(local, faults, groups[g], scratch, result);
      }
    };
    std::vector<std::future<void>> futs;
    for (int t = 1; t < nthreads; ++t) {
      futs.push_back(std::async(std::launch::async, worker, t));
    }
    worker(0);
    for (auto& f : futs) f.get();
  };

  std::vector<std::uint32_t> all(faults.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<std::uint32_t>(i);

  if (!full_length && opts.prepass_cycles > 0 &&
      opts.prepass_cycles < opts.cycles && opts.drop_detected) {
    // Geometric prepass ladder: each stage re-groups the survivors densely,
    // so the expensive full-length pass only sees the hard tail.
    std::vector<int> stages;
    for (int c = opts.prepass_cycles; c < opts.cycles; c *= 4) {
      stages.push_back(c);
    }
    stages.push_back(opts.cycles);
    std::vector<std::uint32_t> live = std::move(all);
    for (const int cycles : stages) {
      runPass(live, cycles);
      std::vector<std::uint32_t> survivors;
      for (const std::uint32_t i : live) {
        if (result.first_detect[i] < 0) survivors.push_back(i);
      }
      live = std::move(survivors);
      if (live.empty()) break;
    }
  } else {
    runPass(all, opts.cycles);
  }

  result.detected = 0;
  for (const auto fd : result.first_detect) {
    if (fd >= 0) ++result.detected;
  }
  result.patterns_applied = static_cast<std::size_t>(opts.cycles);
  // Sequential machines latch only the first divergence; dictionary
  // consumers get a one-entry list per detected fault.
  if (opts.record_detections > 0) {
    result.detect_patterns.assign(faults.size(), {});
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (result.first_detect[i] >= 0) {
        result.detect_patterns[i].push_back(
            static_cast<std::uint32_t>(result.first_detect[i]));
      }
    }
  }
  return result;
}

FaultSimResult SeqFaultSim::run(std::span<const Fault> faults,
                                const PatternSource& patterns,
                                const FaultSimOptions& opts) {
  if (opts.launch != nullptr) {
    throw std::invalid_argument(
        "SeqFaultSim: launch/capture pair campaigns are a combinational "
        "(full-scan) notion; sequential stimulus launches transitions "
        "between consecutive cycles");
  }
  FaultSimOptions o = opts;
  o.cycles = opts.cycles > 0 ? opts.cycles : patterns.patternCount();
  o.stall_blocks = 0;  // stall exits are a combinational-campaign notion

  const auto packed = patterns.packedWords();
  if (!packed.empty()) {
    return run(faults, packed, o);
  }
  if (patterns.width() > 64) {
    throw std::invalid_argument(
        "SeqFaultSim: pattern source wider than 64 inputs; pack the "
        "stimulus differently");
  }
  if (o.cycles > patterns.patternCount()) {
    throw std::invalid_argument("SeqFaultSim: stimulus shorter than cycles");
  }
  // Transpose PPSFP blocks into the per-cycle word stream the fault-parallel
  // kernel broadcasts.
  std::vector<std::uint64_t> words(static_cast<std::size_t>(o.cycles), 0);
  PatternBlock block;
  for (int start = 0; start < o.cycles; start += 64) {
    patterns.fill(start, block);
    const int n = std::min(block.clampedCount(), o.cycles - start);
    for (int k = 0; k < n; ++k) {
      std::uint64_t w = 0;
      for (std::size_t j = 0; j < block.inputs.size(); ++j) {
        w |= ((block.inputs[j] >> k) & 1u) << j;
      }
      words[static_cast<std::size_t>(start + k)] = w;
    }
  }
  return run(faults, words, o);
}

std::unique_ptr<FaultSim> SeqFaultSim::clone() const {
  return std::make_unique<SeqFaultSim>(nl_);
}

std::vector<std::uint64_t> SeqFaultSim::goodSignature(
    std::span<const std::uint64_t> stimulus, int cycles,
    const MisrSpec& misr) const {
  std::vector<std::uint64_t> val(nl_.numNets(), 0);
  const Levelization lev = levelize(nl_);
  const auto& gates = nl_.gates();
  const auto& dffs = nl_.dffs();
  const auto& pis = nl_.primaryInputs();
  std::vector<std::uint64_t> state(static_cast<std::size_t>(misr.width), 0);
  std::vector<std::uint64_t> dcapt(dffs.size(), 0);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const std::uint64_t in = stimulus[static_cast<std::size_t>(cycle)];
    for (std::size_t j = 0; j < pis.size(); ++j) {
      val[pis[j]] = broadcast(((in >> j) & 1u) != 0);
    }
    for (const GateId g : lev.order) {
      const Gate& gate = gates[g];
      const std::uint64_t a = gate.nin > 0 ? val[gate.in[0]] : 0;
      const std::uint64_t b = gate.nin > 1 ? val[gate.in[1]] : 0;
      const std::uint64_t s = gate.nin > 2 ? val[gate.in[2]] : 0;
      val[gate.out] = evalGateWord(gate.type, a, b, s);
    }
    const std::uint64_t msb = state[static_cast<std::size_t>(misr.width - 1)];
    for (int j = misr.width - 1; j >= 0; --j) {
      std::uint64_t feed = 0;
      for (const NetId n : misr.feeds[static_cast<std::size_t>(j)]) {
        feed ^= val[n];
      }
      const std::uint64_t shifted =
          j > 0 ? state[static_cast<std::size_t>(j - 1)] : 0;
      const std::uint64_t fb = ((misr.poly >> j) & 1u) != 0 ? msb : 0;
      state[static_cast<std::size_t>(j)] = shifted ^ fb ^ feed;
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) dcapt[i] = val[dffs[i].d];
    for (std::size_t i = 0; i < dffs.size(); ++i) val[dffs[i].q] = dcapt[i];
  }
  // Collapse lane 0 into a bit-per-tap signature word vector.
  std::vector<std::uint64_t> sig(1, 0);
  for (int j = 0; j < misr.width; ++j) {
    sig[0] |= (state[static_cast<std::size_t>(j)] & 1u) << j;
  }
  return sig;
}

}  // namespace corebist
