// Wide-lane value type for the pattern-parallel fault-simulation kernel.
//
// A LaneWord<W> packs W * 64 independent simulation lanes (test patterns)
// into W machine words, generalizing the classic one-word PPSFP scheme: the
// same gate evaluation and event-driven propagation run unchanged, but every
// pass over the fault cone grades W * 64 patterns instead of 64, amortizing
// the per-gate bookkeeping (queue pushes, level buckets, stamp checks,
// fanout walks) that dominates the narrow kernel.
//
// The default width is kLaneWords (4 -> 256 lanes, overridable with
// -DCOREBIST_LANE_WORDS=n). Bitwise operations have an AVX-512 path (W == 8,
// one 512-bit op per LaneWord) and an AVX2 path (W == 4) when the
// translation unit is compiled with those ISAs enabled, and a portable
// multi-word fallback otherwise; -DCOREBIST_PORTABLE_LANES forces the
// fallback regardless of what the compiler flags enable (the CMake option of
// the same name). LaneWord itself stores plain uint64_t words (no vector
// members), so objects cross TU boundaries safely regardless of which path
// each side compiled.
//
// Lane -> pattern index math: lane L of the block starting at global pattern
// index S is pattern S + L, with L = 64 * word + bit. All per-lane records
// (first_detect, window masks, dictionary entries) are derived from these
// global indices, which is why results are byte-identical at any W.
#ifndef COREBIST_FAULT_LANE_HPP_
#define COREBIST_FAULT_LANE_HPP_

#include <bit>
#include <cstdint>

#include "netlist/gate.hpp"

// ISA selection: COREBIST_PORTABLE_LANES (the CMake escape hatch) wins over
// whatever the compiler flags enable, so a portable build stays portable
// even under -march=native toolchain defaults.
#if !defined(COREBIST_PORTABLE_LANES) && defined(__AVX512F__)
#define COREBIST_LANE_AVX512 1
#endif
#if !defined(COREBIST_PORTABLE_LANES) && defined(__AVX2__)
#define COREBIST_LANE_AVX2 1
#endif
#if defined(COREBIST_LANE_AVX512) || defined(COREBIST_LANE_AVX2)
#include <immintrin.h>
#endif

namespace corebist {

/// Compile-time ISA of the lane kernel in this build. Recorded in the bench
/// JSONs (all three) so perf trajectories across heterogeneous runners are
/// interpretable: "avx512" / "avx2" / "portable".
inline constexpr const char* kLaneBackend =
#if defined(COREBIST_LANE_AVX512)
    "avx512";
#elif defined(COREBIST_LANE_AVX2)
    "avx2";
#else
    "portable";
#endif

#ifndef COREBIST_LANE_WORDS
#define COREBIST_LANE_WORDS 4
#endif

/// 64-bit words per simulation block in the default wide kernel
/// (kLaneWords * 64 lanes per block).
inline constexpr int kLaneWords = COREBIST_LANE_WORDS;

static_assert(kLaneWords >= 1 && kLaneWords <= 8,
              "COREBIST_LANE_WORDS must be in [1, 8]");

/// W * 64 pattern lanes as a flat value type. Bit k of word j is lane
/// 64 * j + k. All operations are lane-wise.
template <int W>
struct LaneWord {
  static_assert(W >= 1 && W <= 8, "LaneWord: width out of range");
  static constexpr int kWords = W;
  static constexpr int kLanes = 64 * W;

  std::uint64_t w[W];

  [[nodiscard]] static constexpr LaneWord zero() noexcept {
    return LaneWord{};  // value-initialized words are 0
  }

  [[nodiscard]] static constexpr LaneWord ones() noexcept {
    LaneWord r{};
    for (int i = 0; i < W; ++i) r.w[i] = ~std::uint64_t{0};
    return r;
  }

  /// Mask with the lowest `n` lanes set, n in [0, kLanes].
  [[nodiscard]] static constexpr LaneWord lowLanes(int n) noexcept {
    LaneWord r{};
    for (int i = 0; i < W; ++i) {
      const int lo = 64 * i;
      if (n >= lo + 64) {
        r.w[i] = ~std::uint64_t{0};
      } else if (n > lo) {
        r.w[i] = (std::uint64_t{1} << (n - lo)) - 1;
      }
    }
    return r;
  }

  [[nodiscard]] constexpr std::uint64_t word(int k) const noexcept {
    return w[k];
  }

  [[nodiscard]] bool any() const noexcept {
#if defined(COREBIST_LANE_AVX512)
    if constexpr (W == 8) {
      const __m512i v = _mm512_loadu_si512(w);
      return _mm512_test_epi64_mask(v, v) != 0;
    }
#endif
#if defined(COREBIST_LANE_AVX2)
    if constexpr (W == 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
      return _mm256_testz_si256(v, v) == 0;
    }
    if constexpr (W == 8) {
      const __m256i lo =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
      const __m256i hi =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
      const __m256i v = _mm256_or_si256(lo, hi);
      return _mm256_testz_si256(v, v) == 0;
    }
#endif
    std::uint64_t acc = 0;
    for (int i = 0; i < W; ++i) acc |= w[i];
    return acc != 0;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Index of the lowest set lane, or kLanes if empty.
  [[nodiscard]] int firstLane() const noexcept {
    for (int i = 0; i < W; ++i) {
      if (w[i] != 0) return 64 * i + std::countr_zero(w[i]);
    }
    return kLanes;
  }

  [[nodiscard]] int popcount() const noexcept {
    int n = 0;
    for (int i = 0; i < W; ++i) n += std::popcount(w[i]);
    return n;
  }

  friend bool operator==(const LaneWord&, const LaneWord&) = default;

  [[nodiscard]] friend LaneWord operator&(const LaneWord& a,
                                          const LaneWord& b) noexcept {
    LaneWord r;
#if defined(COREBIST_LANE_AVX512)
    if constexpr (W == 8) {
      _mm512_storeu_si512(r.w, _mm512_and_si512(_mm512_loadu_si512(a.w),
                                                _mm512_loadu_si512(b.w)));
      return r;
    }
#endif
#if defined(COREBIST_LANE_AVX2)
    if constexpr (W == 4) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(r.w),
          _mm256_and_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w)),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.w))));
      return r;
    }
#endif
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }

  [[nodiscard]] friend LaneWord operator|(const LaneWord& a,
                                          const LaneWord& b) noexcept {
    LaneWord r;
#if defined(COREBIST_LANE_AVX512)
    if constexpr (W == 8) {
      _mm512_storeu_si512(r.w, _mm512_or_si512(_mm512_loadu_si512(a.w),
                                               _mm512_loadu_si512(b.w)));
      return r;
    }
#endif
#if defined(COREBIST_LANE_AVX2)
    if constexpr (W == 4) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(r.w),
          _mm256_or_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w)),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.w))));
      return r;
    }
#endif
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }

  [[nodiscard]] friend LaneWord operator^(const LaneWord& a,
                                          const LaneWord& b) noexcept {
    LaneWord r;
#if defined(COREBIST_LANE_AVX512)
    if constexpr (W == 8) {
      _mm512_storeu_si512(r.w, _mm512_xor_si512(_mm512_loadu_si512(a.w),
                                                _mm512_loadu_si512(b.w)));
      return r;
    }
#endif
#if defined(COREBIST_LANE_AVX2)
    if constexpr (W == 4) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(r.w),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w)),
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.w))));
      return r;
    }
#endif
    for (int i = 0; i < W; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }

  [[nodiscard]] friend LaneWord operator~(const LaneWord& a) noexcept {
    LaneWord r;
#if defined(COREBIST_LANE_AVX512)
    if constexpr (W == 8) {
      _mm512_storeu_si512(
          r.w, _mm512_xor_si512(_mm512_loadu_si512(a.w),
                                _mm512_set1_epi64(-1)));
      return r;
    }
#endif
#if defined(COREBIST_LANE_AVX2)
    if constexpr (W == 4) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(r.w),
          _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.w)),
              _mm256_set1_epi64x(-1)));
      return r;
    }
#endif
    for (int i = 0; i < W; ++i) r.w[i] = ~a.w[i];
    return r;
  }

  LaneWord& operator&=(const LaneWord& o) noexcept { return *this = *this & o; }
  LaneWord& operator|=(const LaneWord& o) noexcept { return *this = *this | o; }
  LaneWord& operator^=(const LaneWord& o) noexcept { return *this = *this ^ o; }
};

/// Evaluate one gate over W * 64 lanes. The switch runs once per gate; the
/// word loops inside the LaneWord operators are the vectorizable part.
template <int W>
[[nodiscard]] inline LaneWord<W> evalGateWide(GateType t, const LaneWord<W>& a,
                                              const LaneWord<W>& b,
                                              const LaneWord<W>& s) noexcept {
  switch (t) {
    case GateType::kConst0:
      return LaneWord<W>::zero();
    case GateType::kConst1:
      return LaneWord<W>::ones();
    case GateType::kBuf:
      return a;
    case GateType::kNot:
      return ~a;
    case GateType::kAnd:
      return a & b;
    case GateType::kNand:
      return ~(a & b);
    case GateType::kOr:
      return a | b;
    case GateType::kNor:
      return ~(a | b);
    case GateType::kXor:
      return a ^ b;
    case GateType::kXnor:
      return ~(a ^ b);
    case GateType::kMux2:
      return (a & ~s) | (b & s);
  }
  return LaneWord<W>::zero();
}

/// In-place 64x64 bit-matrix transpose, LSB-first on both axes: after the
/// call, bit k of a[j] is the old bit j of a[k]. Used to turn 64 per-cycle
/// stimulus words into the PPSFP per-input lane layout with 6 * 32 word
/// operations instead of a 64 * width bit loop.
inline void transpose64(std::uint64_t a[64]) noexcept {
  std::uint64_t m = 0x0000'0000'FFFF'FFFFull;
  for (int j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

}  // namespace corebist

#endif  // COREBIST_FAULT_LANE_HPP_
