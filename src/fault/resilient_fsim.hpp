// Self-healing multi-process fault-sharding: ProcessFaultSim's protocol
// under a supervisor that retries, respawns and degrades instead of dying.
//
// ResilientFaultSim is the recovery rung of the backend ladder. It speaks
// the exact wire protocol of ProcessFaultSim (src/fault/process_wire.hpp)
// but treats every structured transport failure — worker death, a wedged
// reply past the monotonic watchdog, a corrupted frame — as a *recoverable*
// event:
//
//   1. the dead/wedged worker is SIGKILLed and reaped,
//   2. its exact in-flight fault slice goes back on the shard queue,
//   3. after a bounded exponential backoff (backoff_base_ms doubling up to
//      backoff_max_ms) a fresh worker is forked into the empty slot and the
//      shard is re-dispatched.
//
// A shard that keeps failing past max_shard_retries (or a campaign that
// exhausts deadline_ms while retrying) triggers *graceful degradation*:
// the fleet is killed and the remaining work steps down the ladder —
// process -> threaded (in-process worker threads over the same shard
// queue) -> serial (one thread, same shards) — instead of throwing. With
// `degrade_on_failure = false` the supervisor rethrows the underlying
// ProcessFsimError after the retry budget, for callers that prefer failing
// fast over silently losing process isolation.
//
// Byte-identity argument: a shard is graded with identical semantics on
// every rung — same fault slice, same stage cycle budget, prepass=0,
// num_threads=1, stall_blocks=0 — and merged into disjoint result rows, so
// *which* rung graded it (first try, Nth retry on a respawned worker, or a
// degraded in-process run) cannot change a single byte of the merged
// FaultSimResult. tests/resilience_test.cpp pins this against the serial
// reference under randomized injected failure schedules. Engine errors
// (the serial engine rejecting the campaign, e.g. MISR on a comb kernel)
// are deterministic and are NEVER retried: they surface immediately as the
// engine's own std::invalid_argument, identical to every other backend.
//
// Every recovery decision is recorded in a structured ResilienceLog
// (readable via lastLog() after run() returns or throws) so campaign
// services can alert on degradation instead of discovering it in latency
// graphs.
#ifndef COREBIST_FAULT_RESILIENT_FSIM_HPP_
#define COREBIST_FAULT_RESILIENT_FSIM_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_sim.hpp"

namespace corebist {

struct ResilientFsimOptions {
  /// Worker processes; 0 => std::thread::hardware_concurrency().
  int num_workers = 0;
  /// Faults per work unit (same default as the other orchestrators).
  int shard_faults = 63;
  /// Per-shard monotonic watchdog, as in ProcessFsimOptions::timeout_ms.
  int timeout_ms = 120'000;
  /// Re-dispatches a single shard gets before the supervisor gives up on
  /// the process rung (0 = any failure degrades immediately).
  int max_shard_retries = 3;
  /// Exponential backoff before a respawn: attempt k sleeps
  /// min(backoff_base_ms << (k-1), backoff_max_ms). <= 0 disables sleeping.
  int backoff_base_ms = 1;
  int backoff_max_ms = 250;
  /// Overall campaign budget in milliseconds; once exceeded the supervisor
  /// stops retrying and degrades (or rethrows). 0 = unbounded.
  int deadline_ms = 0;
  /// After the retry budget: true = step down the ladder
  /// (process -> threaded -> serial), false = rethrow the underlying
  /// ProcessFsimError.
  bool degrade_on_failure = true;
};

/// One recovery decision made by the supervisor.
struct ResilienceEvent {
  enum class Kind : std::uint8_t {
    kRetry,          // shard requeued after a worker failure
    kRespawn,        // fresh worker forked into a dead slot
    kDegrade,        // stepped down one ladder rung
    kStrayShutdown,  // post-campaign cleanup found a non-clean worker exit
  };
  Kind kind = Kind::kRetry;
  /// Ladder rung the event happened on: 0 process, 1 threaded, 2 serial.
  int rung = 0;
  int worker = -1;
  std::int64_t shard = -1;
  int stage_cycles = 0;
  /// Retry ordinal for kRetry (1 = first re-dispatch).
  int attempt = 0;
  int backoff_ms = 0;
  std::string detail;
};

[[nodiscard]] const char* resilienceEventName(ResilienceEvent::Kind k) noexcept;
[[nodiscard]] const char* resilienceRungName(int rung) noexcept;

/// Structured record of one run()'s recovery activity. `final_rung` is the
/// deepest ladder rung any shard was graded on (0 = the campaign stayed
/// fully process-isolated).
struct ResilienceLog {
  std::vector<ResilienceEvent> events;
  int retries = 0;
  int respawns = 0;
  int degradations = 0;
  int final_rung = 0;

  [[nodiscard]] bool clean() const noexcept { return events.empty(); }
  /// Compact JSON (stable key order) for campaign telemetry.
  [[nodiscard]] std::string toJson() const;
};

class ResilientFaultSim final : public FaultSim {
 public:
  explicit ResilientFaultSim(const FaultSim& prototype,
                             ResilientFsimOptions ropts = {});

  [[nodiscard]] const Netlist& netlist() const noexcept override;
  /// Grade `faults` with recovery. Throws only for deterministic engine
  /// errors (std::invalid_argument), for transport failures after the
  /// retry budget when degrade_on_failure is false (ProcessFsimError), or
  /// on resource exhaustion spawning the very first fleet. Every child is
  /// reaped before returning, success or failure.
  [[nodiscard]] FaultSimResult run(std::span<const Fault> faults,
                                   const PatternSource& patterns,
                                   const FaultSimOptions& opts) override;
  [[nodiscard]] std::unique_ptr<FaultSim> clone() const override;

  /// Recovery record of the most recent run() on THIS object (clones start
  /// clean). Valid after run() returns or throws.
  [[nodiscard]] const ResilienceLog& lastLog() const noexcept { return log_; }

 private:
  std::unique_ptr<FaultSim> proto_;
  ResilientFsimOptions ropts_;
  ResilienceLog log_;
};

}  // namespace corebist

#endif  // COREBIST_FAULT_RESILIENT_FSIM_HPP_
