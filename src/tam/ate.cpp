#include "tam/ate.hpp"

#include <algorithm>

namespace corebist {

void P1500Ate::selectCore(int core_slot) {
  driver_.shiftIr(ir_base_, tap_.irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(core_slot), Tam::kSelectBits);
  path_.clear();
}

void P1500Ate::scanWirAt(int depth, WirInstruction instr) {
  if (depth == 0) {
    driver_.shiftIr(ir_base_ + 1, tap_.irWidth());
    driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
    return;
  }
  // Route ancestors 0..depth-2 as WS_CHILD_DR and depth-1 as WS_CHILD_WIR,
  // so a select_wir=0 TAM scan lands in the target's WIR; then restore
  // depth-1 to WS_CHILD_DR so the next scan can pass *through* the target.
  scanWirAt(depth - 1, WirInstruction::kWsChildWir);
  wdrScanIr();
  driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
  scanWirAt(depth - 1, WirInstruction::kWsChildDr);
}

void P1500Ate::selectPath(const std::vector<int>& child_path) {
  path_.clear();
  for (std::size_t level = 0; level < child_path.size(); ++level) {
    scanWirAt(static_cast<int>(level), WirInstruction::kWsChildSel);
    wdrScanIr();
    driver_.shiftDr(static_cast<std::uint64_t>(child_path[level]),
                    P1500Wrapper::kChildSelBits);
    path_.push_back(child_path[level]);
  }
}

void P1500Ate::loadWir(WirInstruction instr) {
  scanWirAt(static_cast<int>(path_.size()), instr);
}

void P1500Ate::sendCommand(BistCommand cmd, std::uint16_t data) {
  loadWir(WirInstruction::kWsCdr);
  wdrScanIr();
  const std::uint64_t word =
      (static_cast<std::uint64_t>(data) << 3) | static_cast<std::uint64_t>(cmd);
  driver_.shiftDr(word, P1500Wrapper::kWcdrBits);
}

std::uint16_t P1500Ate::readWdr() {
  loadWir(WirInstruction::kWsDr);
  wdrScanIr();
  return static_cast<std::uint16_t>(driver_.shiftDr(0, P1500Wrapper::kWdrBits));
}

// ---- cost model ----------------------------------------------------------
// Mirrors the bit-banging code above operation for operation; every term is
// named after the method whose cost it predicts.

std::size_t P1500Ate::wirScanTcks(int ir_width, int depth) noexcept {
  // scanWirAt(d) = scanWirAt(d-1, WIR) + [IR + WIR-bits DR] + scanWirAt(d-1,
  // DR): one base scan at depth 0, (2^(d+1) - 1) of them at depth d.
  const std::size_t base =
      shiftIrTcks(ir_width) + shiftDrTcks(P1500Wrapper::kWirBits);
  return ((std::size_t{1} << (static_cast<unsigned>(depth) + 1)) - 1) * base;
}

std::size_t P1500Ate::selectPathTcks(int ir_width, int depth) noexcept {
  // selectPath routes one WS_CHILD_SEL scan per level: scanWirAt(level) to
  // set the instruction, then an IR scan plus a child-select DR scan.
  std::size_t tcks = 0;
  for (int level = 0; level < depth; ++level) {
    tcks += wirScanTcks(ir_width, level) + shiftIrTcks(ir_width) +
            shiftDrTcks(P1500Wrapper::kChildSelBits);
  }
  return tcks;
}

std::size_t P1500Ate::sendCommandTcks(int ir_width, int depth) noexcept {
  return wirScanTcks(ir_width, depth) + shiftIrTcks(ir_width) +
         shiftDrTcks(P1500Wrapper::kWcdrBits);
}

std::size_t P1500Ate::readWdrTcks(int ir_width, int depth) noexcept {
  return wirScanTcks(ir_width, depth) + shiftIrTcks(ir_width) +
         shiftDrTcks(P1500Wrapper::kWdrBits);
}

P1500Ate::SessionCost P1500Ate::predictSessionCost(
    int ir_width, int depth, int module_count, int patterns, int warmup_idle,
    int poll_budget, int poll_idle) noexcept {
  SessionCost cost;
  // The control unit raises end_test once the at-speed dwell has covered
  // the pattern count (the legacy "whole run" dwell is patterns + 4); a
  // shorter warmup pays extra poll rounds of poll_idle each.
  const long long need = static_cast<long long>(patterns) + 4;
  int polls = 1;
  if (warmup_idle < need && poll_idle > 0) {
    const long long missing = need - warmup_idle;
    polls += static_cast<int>((missing + poll_idle - 1) / poll_idle);
  }
  polls = std::max(1, std::min(polls, std::max(1, poll_budget)));
  cost.polls = polls;

  cost.tap_clocks = 6;  // TapDriver::reset: five TMS=1 clocks + idle settle
  cost.tap_clocks +=    // selectCore: TAM_SELECT IR scan + slot DR scan
      shiftIrTcks(ir_width) + shiftDrTcks(Tam::kSelectBits);
  cost.tap_clocks += selectPathTcks(ir_width, depth);
  // BIST preamble (kReset, kLoadCount, kStart) + the status view select.
  cost.tap_clocks += 4 * sendCommandTcks(ir_width, depth);
  cost.bist_cycles = static_cast<std::size_t>(std::max(0, warmup_idle));
  cost.bist_cycles += static_cast<std::size_t>(polls - 1) *
                      static_cast<std::size_t>(std::max(0, poll_idle));
  cost.tap_clocks += cost.bist_cycles;  // runIdle clocks TCK one-for-one
  cost.tap_clocks += static_cast<std::size_t>(polls) *
                     readWdrTcks(ir_width, depth);
  // Per-module result-select + signature upload.
  cost.tap_clocks += static_cast<std::size_t>(std::max(0, module_count)) *
                     (sendCommandTcks(ir_width, depth) +
                      readWdrTcks(ir_width, depth));
  return cost;
}

}  // namespace corebist
