#include "tam/ate.hpp"

#include "tam/tam.hpp"

namespace corebist {

void P1500Ate::selectCore(int core_index) {
  driver_.shiftIr(Tam::kIrSelect, tap_.irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(core_index), Tam::kSelectBits);
}

void P1500Ate::loadWir(WirInstruction instr) {
  driver_.shiftIr(Tam::kIrWirScan, tap_.irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
}

void P1500Ate::sendCommand(BistCommand cmd, std::uint16_t data) {
  loadWir(WirInstruction::kWsCdr);
  driver_.shiftIr(Tam::kIrWdrScan, tap_.irWidth());
  const std::uint64_t word =
      (static_cast<std::uint64_t>(data) << 3) | static_cast<std::uint64_t>(cmd);
  driver_.shiftDr(word, P1500Wrapper::kWcdrBits);
}

std::uint16_t P1500Ate::readWdr() {
  loadWir(WirInstruction::kWsDr);
  driver_.shiftIr(Tam::kIrWdrScan, tap_.irWidth());
  return static_cast<std::uint16_t>(driver_.shiftDr(0, P1500Wrapper::kWdrBits));
}

}  // namespace corebist
