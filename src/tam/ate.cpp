#include "tam/ate.hpp"

namespace corebist {

void P1500Ate::selectCore(int core_slot) {
  driver_.shiftIr(ir_base_, tap_.irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(core_slot), Tam::kSelectBits);
  path_.clear();
}

void P1500Ate::scanWirAt(int depth, WirInstruction instr) {
  if (depth == 0) {
    driver_.shiftIr(ir_base_ + 1, tap_.irWidth());
    driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
    return;
  }
  // Route ancestors 0..depth-2 as WS_CHILD_DR and depth-1 as WS_CHILD_WIR,
  // so a select_wir=0 TAM scan lands in the target's WIR; then restore
  // depth-1 to WS_CHILD_DR so the next scan can pass *through* the target.
  scanWirAt(depth - 1, WirInstruction::kWsChildWir);
  wdrScanIr();
  driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
  scanWirAt(depth - 1, WirInstruction::kWsChildDr);
}

void P1500Ate::selectPath(const std::vector<int>& child_path) {
  path_.clear();
  for (std::size_t level = 0; level < child_path.size(); ++level) {
    scanWirAt(static_cast<int>(level), WirInstruction::kWsChildSel);
    wdrScanIr();
    driver_.shiftDr(static_cast<std::uint64_t>(child_path[level]),
                    P1500Wrapper::kChildSelBits);
    path_.push_back(child_path[level]);
  }
}

void P1500Ate::loadWir(WirInstruction instr) {
  scanWirAt(static_cast<int>(path_.size()), instr);
}

void P1500Ate::sendCommand(BistCommand cmd, std::uint16_t data) {
  loadWir(WirInstruction::kWsCdr);
  wdrScanIr();
  const std::uint64_t word =
      (static_cast<std::uint64_t>(data) << 3) | static_cast<std::uint64_t>(cmd);
  driver_.shiftDr(word, P1500Wrapper::kWcdrBits);
}

std::uint16_t P1500Ate::readWdr() {
  loadWir(WirInstruction::kWsDr);
  wdrScanIr();
  return static_cast<std::uint16_t>(driver_.shiftDr(0, P1500Wrapper::kWdrBits));
}

}  // namespace corebist
