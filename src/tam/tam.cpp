#include "tam/tam.hpp"

namespace corebist {

Tam::Tam(TapController& tap, std::uint32_t ir_base, std::string name)
    : select_shift_(kSelectBits, false),
      ir_base_(ir_base),
      name_(std::move(name)) {
  registerPorts(tap);
}

P1500Wrapper* Tam::selectedWrapper() {
  if (selected_ < 0 || static_cast<std::size_t>(selected_) >= cores_.size()) {
    return nullptr;
  }
  return cores_[static_cast<std::size_t>(selected_)].wrapper;
}

int Tam::attach(P1500Wrapper* wrapper, std::function<void()> system_tick) {
  cores_.push_back(CoreSlot{wrapper, std::move(system_tick)});
  return static_cast<int>(cores_.size()) - 1;
}

void Tam::registerPorts(TapController& tap) {
  auto idleTick = [this] {
    if (selected_ < 0 || static_cast<std::size_t>(selected_) >= cores_.size()) {
      return;
    }
    const auto& slot = cores_[static_cast<std::size_t>(selected_)];
    if (slot.system_tick) slot.system_tick();
  };

  TapController::DrPort select_port;
  select_port.capture = [this] {
    for (std::size_t i = 0; i < select_shift_.size(); ++i) {
      select_shift_[i] = ((static_cast<unsigned>(selected_) >> i) & 1u) != 0;
    }
  };
  select_port.shift = [this](bool tdi) {
    const bool out = select_shift_.front();
    for (std::size_t i = 0; i + 1 < select_shift_.size(); ++i) {
      select_shift_[i] = select_shift_[i + 1];
    }
    select_shift_.back() = tdi;
    return out;
  };
  select_port.update = [this] {
    unsigned v = 0;
    for (std::size_t i = 0; i < select_shift_.size(); ++i) {
      if (select_shift_[i]) v |= 1u << i;
    }
    if (!cores_.empty() && v < cores_.size()) {
      selected_ = static_cast<int>(v);
    }
  };
  // Deliberately no run_idle: the TAP passes through Run-Test/Idle on the
  // way into the select DR scan, i.e. while the *previous* selection is
  // still latched. Forwarding that clock would tick a core this channel
  // does not own (a cross-shard data race under the sharded scheduler);
  // system clocks flow only under the wrapper instructions below.
  tap.registerInstruction(irSelect(), std::move(select_port));

  auto makeWrapperPort = [this, idleTick](bool select_wir) {
    TapController::DrPort port;
    port.capture = [this, select_wir] {
      if (P1500Wrapper* w = selectedWrapper()) {
        w->cycle(WscSignals{select_wir, true, false, false}, false);
      }
    };
    port.shift = [this, select_wir](bool tdi) {
      if (P1500Wrapper* w = selectedWrapper()) {
        return w->cycle(WscSignals{select_wir, false, true, false}, tdi);
      }
      return false;
    };
    port.update = [this, select_wir] {
      if (P1500Wrapper* w = selectedWrapper()) {
        w->cycle(WscSignals{select_wir, false, false, true}, false);
      }
    };
    port.run_idle = idleTick;
    return port;
  };
  tap.registerInstruction(irWirScan(), makeWrapperPort(true));
  tap.registerInstruction(irWdrScan(), makeWrapperPort(false));
}

}  // namespace corebist
