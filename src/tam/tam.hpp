// Test Access Mechanism: the custom glue between the chip TAP controller
// and the P1500 wrappers (paper Fig. 1 / §2).
//
// Three chip-level instructions are allocated on the TAP per TAM:
//   TAM_SELECT   - DR is an 8-bit core-select register;
//   TAM_WIR_SCAN - DR is the selected wrapper's WIR (SelectWIR = 1);
//   TAM_WDR_SCAN - DR is whichever wrapper register the WIR selected
//                  (WBY / WBR / WCDR / WDR, or a child chain for
//                  hierarchical cores).
// CaptureDR / ShiftDR / UpdateDR map 1:1 onto the WSC capture/shift/update
// pulses, and Run-Test/Idle clocks are forwarded to the cores as system
// clocks so the BIST engines run while the ATE idles the TAP.
//
// A chip may carry several TAMs, each serving its own subset of wrapped
// cores: every TAM claims a contiguous block of kIrStride IR codes
// starting at its `ir_base` (the default base keeps the classic
// single-TAM layout), and the TAP rejects overlapping blocks.
#ifndef COREBIST_TAM_TAM_HPP_
#define COREBIST_TAM_TAM_HPP_

#include <functional>
#include <string>
#include <vector>

#include "jtag/tap.hpp"
#include "p1500/wrapper.hpp"

namespace corebist {

class Tam {
 public:
  static constexpr std::uint32_t kIrSelect = 0x2;
  static constexpr std::uint32_t kIrWirScan = 0x3;
  static constexpr std::uint32_t kIrWdrScan = 0x4;
  /// IR codes one TAM occupies (select / WIR scan / WDR scan).
  static constexpr std::uint32_t kIrStride = 3;
  /// Width of the TAM_SELECT core-select data register.
  static constexpr int kSelectBits = 8;

  /// Classic single-TAM layout: IR block at kIrSelect.
  explicit Tam(TapController& tap) : Tam(tap, kIrSelect) {}
  /// Additional TAMs claim their own IR block of kIrStride codes.
  Tam(TapController& tap, std::uint32_t ir_base, std::string name = "tam");

  [[nodiscard]] std::uint32_t irSelect() const noexcept { return ir_base_; }
  [[nodiscard]] std::uint32_t irWirScan() const noexcept {
    return ir_base_ + 1;
  }
  [[nodiscard]] std::uint32_t irWdrScan() const noexcept {
    return ir_base_ + 2;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Attach a wrapper; returns its core index. `system_tick` (optional) is
  /// pulsed once per Run-Test/Idle TCK while this core is selected.
  int attach(P1500Wrapper* wrapper, std::function<void()> system_tick = {});

  /// Currently selected core; -1 until the first TAM_SELECT update. No
  /// wrapper is cycled and no system clock is forwarded while nothing is
  /// selected, so replica channels (core/scheduler.cpp) can never touch a
  /// core they have not explicitly selected.
  [[nodiscard]] int selectedCore() const noexcept { return selected_; }
  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(cores_.size());
  }

 private:
  struct CoreSlot {
    P1500Wrapper* wrapper = nullptr;
    std::function<void()> system_tick;
  };
  [[nodiscard]] P1500Wrapper* selectedWrapper();
  void registerPorts(TapController& tap);

  std::vector<CoreSlot> cores_;
  int selected_ = -1;
  std::vector<bool> select_shift_;
  std::uint32_t ir_base_;
  std::string name_;
};

}  // namespace corebist

#endif  // COREBIST_TAM_TAM_HPP_
