// ATE-side P1500 access protocol over one TAP channel.
//
// The bit-banging sequences every session needs — select a core through the
// TAM, load a wrapper WIR instruction, deliver a WCDR command, read the WDR
// back — extracted from the old SocTestSession so the serial compatibility
// shim and every scheduler channel drive the exact same protocol. One
// P1500Ate owns one TapDriver over one TapController and speaks to one
// TAM's IR block; it is not thread-safe, but channels never share an ATE.
//
// Hierarchical cores: selectPath() programs the WS_CHILD_SEL chain below
// the TAM-selected top-level core, after which loadWir / sendCommand /
// readWdr address the nested core at that path. Routing an ancestor's WIR
// is itself a hierarchical scan, so the cost of reaching a core grows with
// its depth — exactly the access-time trade hierarchical P1500 makes in
// hardware — and every scan is fixed-length, so the protocol stays
// deterministic.
#ifndef COREBIST_TAM_ATE_HPP_
#define COREBIST_TAM_ATE_HPP_

#include <cstdint>
#include <vector>

#include "jtag/driver.hpp"
#include "jtag/tap.hpp"
#include "p1500/wrapper.hpp"
#include "tam/tam.hpp"

namespace corebist {

class P1500Ate {
 public:
  /// Result-select value that exposes the control-unit status word through
  /// the WDR (the Output Selector's non-signature view).
  static constexpr std::uint16_t kStatusView = 3;
  /// end_test flag in the status word (bit 1).
  static constexpr std::uint16_t kStatusEndTest = 0x2;

  /// Speak to the classic single-TAM IR block.
  explicit P1500Ate(TapController& tap)
      : P1500Ate(tap, Tam::kIrSelect) {}
  /// Speak to the TAM whose IR block starts at `ir_base` (see
  /// Tam::irSelect) — one ATE per TAM channel.
  P1500Ate(TapController& tap, std::uint32_t ir_base)
      : tap_(tap), driver_(tap), ir_base_(ir_base) {}

  /// Test-Logic-Reset then settle in Run-Test/Idle. Forgets the routed
  /// child path (wrapper WIRs are reprogrammed on the next scan anyway).
  void reset() {
    driver_.reset();
    path_.clear();
  }

  /// Route the TAM to top-level slot `core_slot` (TAM_SELECT scan) and
  /// drop any routed child path.
  void selectCore(int core_slot);

  /// Program the WS_CHILD_SEL chain below the selected top-level core so
  /// subsequent loadWir / sendCommand / readWdr address the nested core
  /// reached through `child_path` (one child slot per hierarchy level;
  /// empty = the top-level core itself).
  void selectPath(const std::vector<int>& child_path);

  /// Load a WIR instruction into the routed core's wrapper.
  void loadWir(WirInstruction instr);

  /// Deliver a BIST command through the routed core's WCDR.
  void sendCommand(BistCommand cmd, std::uint16_t data);

  /// Read the routed core's WDR (status word or selected MISR).
  [[nodiscard]] std::uint16_t readWdr();

  /// Dwell in Run-Test/Idle: one system clock per TCK for the selected
  /// top-level core's clock domain (the at-speed BIST run; a parent
  /// forwards the clock to its children).
  void runIdle(std::size_t cycles) { driver_.runIdle(cycles); }

  [[nodiscard]] std::size_t tckCount() const noexcept {
    return tap_.tckCount();
  }
  /// Child path currently routed below the selected top-level core.
  [[nodiscard]] const std::vector<int>& path() const noexcept {
    return path_;
  }

  // ---- ATE cost model (static queries; no TAP required) -----------------
  //
  // Every scan in this protocol is fixed-length, so the TCK cost of any
  // command sequence is a pure function of the protocol shape — the same
  // invariant the scheduler's fingerprint equality rests on. These queries
  // let the scheduler predict a core session's TCK load *before* running
  // anything (makespan-aware placement, the what-if API) and are kept next
  // to the protocol implementation so the model can never drift from the
  // bit-banging code silently: tests/placement_test.cpp asserts the
  // prediction equals the measured tckCount() delta exactly.

  /// Predicted cost of one full core session (the canonical protocol in
  /// SessionChannel::testCore), assuming the attempt succeeds.
  struct SessionCost {
    std::size_t tap_clocks = 0;   // total TCKs, at-speed dwell included
    std::size_t bist_cycles = 0;  // commanded Run-Test/Idle (at-speed) TCKs
    int polls = 1;                // status polls the model expects
  };

  /// One IR scan from Run-Test/Idle: 4 state clocks in, `ir_width` shift
  /// clocks, 2 state clocks out.
  [[nodiscard]] static constexpr std::size_t shiftIrTcks(int ir_width) noexcept {
    return static_cast<std::size_t>(ir_width) + 6;
  }
  /// One DR scan from Run-Test/Idle: 3 state clocks in, `dr_bits` shift
  /// clocks, 2 state clocks out.
  [[nodiscard]] static constexpr std::size_t shiftDrTcks(int dr_bits) noexcept {
    return static_cast<std::size_t>(dr_bits) + 5;
  }
  /// Cost of scanning a WIR at nesting depth `depth` (scanWirAt): routing
  /// an ancestor's WIR is itself a hierarchical scan, so the cost doubles
  /// per level — (2^(depth+1) - 1) base scans.
  [[nodiscard]] static std::size_t wirScanTcks(int ir_width, int depth) noexcept;
  /// Cost of selectPath() for a core at nesting depth `depth`.
  [[nodiscard]] static std::size_t selectPathTcks(int ir_width,
                                                  int depth) noexcept;
  /// Cost of sendCommand() / readWdr() addressed at nesting depth `depth`.
  [[nodiscard]] static std::size_t sendCommandTcks(int ir_width,
                                                   int depth) noexcept;
  [[nodiscard]] static std::size_t readWdrTcks(int ir_width, int depth) noexcept;

  /// Predict the full single-attempt session for a core at `depth` with
  /// `module_count` MISR uploads: reset, TAM select, path routing, the
  /// three-command BIST preamble, `warmup_idle` at-speed TCKs, status
  /// polling (`poll_budget`/`poll_idle` bound the modeled poll loop; a
  /// dwell that covers the whole run needs exactly one poll), and the
  /// per-module signature uploads. Exact when end_test is reached within
  /// the modeled polls; a lower bound otherwise (retries are not modeled).
  [[nodiscard]] static SessionCost predictSessionCost(
      int ir_width, int depth, int module_count, int patterns, int warmup_idle,
      int poll_budget, int poll_idle) noexcept;

 private:
  /// Scan `instr` into the WIR of the ancestor at `depth` along the routed
  /// path (depth 0 = the top-level core). Leaves every shallower ancestor
  /// holding WS_CHILD_DR, so a follow-up data scan reaches that depth.
  void scanWirAt(int depth, WirInstruction instr);
  void wdrScanIr() { driver_.shiftIr(ir_base_ + 2, tap_.irWidth()); }

  TapController& tap_;
  TapDriver driver_;
  std::uint32_t ir_base_;
  std::vector<int> path_;
};

}  // namespace corebist

#endif  // COREBIST_TAM_ATE_HPP_
