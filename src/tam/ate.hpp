// ATE-side P1500 access protocol over one TAP channel.
//
// The bit-banging sequences every session needs — select a core through the
// TAM, load a wrapper WIR instruction, deliver a WCDR command, read the WDR
// back — extracted from the old SocTestSession so the serial compatibility
// shim and every scheduler shard drive the exact same protocol. One
// P1500Ate owns one TapDriver over one TapController; it is not
// thread-safe, but shards never share a channel.
#ifndef COREBIST_TAM_ATE_HPP_
#define COREBIST_TAM_ATE_HPP_

#include <cstdint>

#include "jtag/driver.hpp"
#include "jtag/tap.hpp"
#include "p1500/wrapper.hpp"

namespace corebist {

class P1500Ate {
 public:
  /// Result-select value that exposes the control-unit status word through
  /// the WDR (the Output Selector's non-signature view).
  static constexpr std::uint16_t kStatusView = 3;
  /// end_test flag in the status word (bit 1).
  static constexpr std::uint16_t kStatusEndTest = 0x2;

  explicit P1500Ate(TapController& tap) : tap_(tap), driver_(tap) {}

  /// Test-Logic-Reset then settle in Run-Test/Idle.
  void reset() { driver_.reset(); }

  /// Route the TAM to `core_index` (TAM_SELECT scan).
  void selectCore(int core_index);

  /// Load a WIR instruction into the selected core's wrapper.
  void loadWir(WirInstruction instr);

  /// Deliver a BIST command through the selected core's WCDR.
  void sendCommand(BistCommand cmd, std::uint16_t data);

  /// Read the selected core's WDR (status word or selected MISR).
  [[nodiscard]] std::uint16_t readWdr();

  /// Dwell in Run-Test/Idle: one system clock per TCK for the selected
  /// core (the at-speed BIST run).
  void runIdle(std::size_t cycles) { driver_.runIdle(cycles); }

  [[nodiscard]] std::size_t tckCount() const noexcept {
    return tap_.tckCount();
  }

 private:
  TapController& tap_;
  TapDriver driver_;
};

}  // namespace corebist

#endif  // COREBIST_TAM_ATE_HPP_
