// ATE-side P1500 access protocol over one TAP channel.
//
// The bit-banging sequences every session needs — select a core through the
// TAM, load a wrapper WIR instruction, deliver a WCDR command, read the WDR
// back — extracted from the old SocTestSession so the serial compatibility
// shim and every scheduler channel drive the exact same protocol. One
// P1500Ate owns one TapDriver over one TapController and speaks to one
// TAM's IR block; it is not thread-safe, but channels never share an ATE.
//
// Hierarchical cores: selectPath() programs the WS_CHILD_SEL chain below
// the TAM-selected top-level core, after which loadWir / sendCommand /
// readWdr address the nested core at that path. Routing an ancestor's WIR
// is itself a hierarchical scan, so the cost of reaching a core grows with
// its depth — exactly the access-time trade hierarchical P1500 makes in
// hardware — and every scan is fixed-length, so the protocol stays
// deterministic.
#ifndef COREBIST_TAM_ATE_HPP_
#define COREBIST_TAM_ATE_HPP_

#include <cstdint>
#include <vector>

#include "jtag/driver.hpp"
#include "jtag/tap.hpp"
#include "p1500/wrapper.hpp"
#include "tam/tam.hpp"

namespace corebist {

class P1500Ate {
 public:
  /// Result-select value that exposes the control-unit status word through
  /// the WDR (the Output Selector's non-signature view).
  static constexpr std::uint16_t kStatusView = 3;
  /// end_test flag in the status word (bit 1).
  static constexpr std::uint16_t kStatusEndTest = 0x2;

  /// Speak to the classic single-TAM IR block.
  explicit P1500Ate(TapController& tap)
      : P1500Ate(tap, Tam::kIrSelect) {}
  /// Speak to the TAM whose IR block starts at `ir_base` (see
  /// Tam::irSelect) — one ATE per TAM channel.
  P1500Ate(TapController& tap, std::uint32_t ir_base)
      : tap_(tap), driver_(tap), ir_base_(ir_base) {}

  /// Test-Logic-Reset then settle in Run-Test/Idle. Forgets the routed
  /// child path (wrapper WIRs are reprogrammed on the next scan anyway).
  void reset() {
    driver_.reset();
    path_.clear();
  }

  /// Route the TAM to top-level slot `core_slot` (TAM_SELECT scan) and
  /// drop any routed child path.
  void selectCore(int core_slot);

  /// Program the WS_CHILD_SEL chain below the selected top-level core so
  /// subsequent loadWir / sendCommand / readWdr address the nested core
  /// reached through `child_path` (one child slot per hierarchy level;
  /// empty = the top-level core itself).
  void selectPath(const std::vector<int>& child_path);

  /// Load a WIR instruction into the routed core's wrapper.
  void loadWir(WirInstruction instr);

  /// Deliver a BIST command through the routed core's WCDR.
  void sendCommand(BistCommand cmd, std::uint16_t data);

  /// Read the routed core's WDR (status word or selected MISR).
  [[nodiscard]] std::uint16_t readWdr();

  /// Dwell in Run-Test/Idle: one system clock per TCK for the selected
  /// top-level core's clock domain (the at-speed BIST run; a parent
  /// forwards the clock to its children).
  void runIdle(std::size_t cycles) { driver_.runIdle(cycles); }

  [[nodiscard]] std::size_t tckCount() const noexcept {
    return tap_.tckCount();
  }
  /// Child path currently routed below the selected top-level core.
  [[nodiscard]] const std::vector<int>& path() const noexcept {
    return path_;
  }

 private:
  /// Scan `instr` into the WIR of the ancestor at `depth` along the routed
  /// path (depth 0 = the top-level core). Leaves every shallower ancestor
  /// holding WS_CHILD_DR, so a follow-up data scan reaches that depth.
  void scanWirAt(int depth, WirInstruction instr);
  void wdrScanIr() { driver_.shiftIr(ir_base_ + 2, tap_.irWidth()); }

  TapController& tap_;
  TapDriver driver_;
  std::uint32_t ir_base_;
  std::vector<int> path_;
};

}  // namespace corebist

#endif  // COREBIST_TAM_ATE_HPP_
