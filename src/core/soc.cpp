#include "core/soc.hpp"

#include <sstream>
#include <stdexcept>

#include "core/scheduler.hpp"

namespace corebist {

Soc::Soc(std::string name) : name_(std::move(name)), tap_(4) {
  tams_.push_back(std::make_unique<Tam>(tap_, Tam::kIrSelect, "tam0"));
}

int Soc::addTam(std::string name) {
  const auto t = static_cast<std::uint32_t>(tams_.size());
  const std::uint32_t ir_base = Tam::kIrSelect + Tam::kIrStride * t;
  const std::uint32_t all_ones = (1u << tap_.irWidth()) - 1u;
  // The block must stay clear of the all-ones BYPASS code (blocks grow
  // upward from kIrSelect, so IDCODE below is never reachable).
  if (ir_base + Tam::kIrStride - 1 >= all_ones ||
      tap_.freeIrSlots() < static_cast<int>(Tam::kIrStride)) {
    throw std::invalid_argument(
        "Soc: TAP IR space exhausted, cannot allocate TAM " +
        std::to_string(t) + " (widen the chip TAP's IR)");
  }
  if (name.empty()) name = "tam" + std::to_string(t);
  tams_.push_back(std::make_unique<Tam>(tap_, ir_base, std::move(name)));
  return static_cast<int>(t);
}

int Soc::attachCore(std::unique_ptr<WrappedCore> core, int tam_index) {
  if (tam_index < 0 || tam_index >= tamCount()) {
    throw std::invalid_argument("Soc: no TAM with index " +
                                std::to_string(tam_index));
  }
  core->finalize();
  WrappedCore* raw = core.get();
  cores_.push_back(std::move(core));
  CoreTopology topo;
  topo.tam = tam_index;
  topo.root = static_cast<int>(cores_.size()) - 1;
  topo.top_slot =
      tam(tam_index).attach(&raw->wrapper(), [raw] { raw->systemClockTick(); });
  topo_.push_back(std::move(topo));
  return static_cast<int>(cores_.size()) - 1;
}

int Soc::attachChildCore(std::unique_ptr<WrappedCore> core, int parent_index) {
  if (parent_index < 0 || parent_index >= coreCount()) {
    throw std::invalid_argument("Soc: no parent core with index " +
                                std::to_string(parent_index));
  }
  const CoreTopology& parent = topology(parent_index);
  if (parent.depth() + 1 > kMaxHierarchyDepth) {
    throw std::invalid_argument(
        "Soc: nesting under core " + std::to_string(parent_index) +
        " exceeds the maximum hierarchy depth of " +
        std::to_string(kMaxHierarchyDepth));
  }
  core->finalize();
  WrappedCore* raw = core.get();
  // The wrapper chain rejects duplicate/cyclic attachments; the child is
  // ticked by its parent (one clock domain per top-level core), not by a
  // TAM slot of its own.
  const int slot = this->core(parent_index).addChild(raw);
  cores_.push_back(std::move(core));
  CoreTopology topo;
  topo.tam = parent.tam;
  topo.parent = parent_index;
  topo.root = parent.root;
  topo.top_slot = parent.top_slot;
  topo.child_path = parent.child_path;
  topo.child_path.push_back(slot);
  topo_.push_back(std::move(topo));
  return static_cast<int>(cores_.size()) - 1;
}

std::string CoreTestReport::summary() const {
  std::ostringstream os;
  os << "core " << core_index << ": " << (pass ? "PASS" : "FAIL") << " (";
  for (std::size_t m = 0; m < modules.size(); ++m) {
    if (m != 0) os << ", ";
    os << "M" << m << (modules[m].pass() ? " ok" : " MISMATCH");
  }
  os << "), " << bist_cycles << " at-speed cycles, " << tap_clocks
     << " TCKs";
  return os.str();
}

namespace {
CoreTestReport toLegacy(const CoreReport& r) {
  CoreTestReport legacy;
  legacy.core_index = r.core_index;
  legacy.pass = r.pass();
  legacy.end_test_seen = r.end_test_seen;
  legacy.modules = r.modules;
  legacy.tap_clocks = r.tap_clocks;
  legacy.bist_cycles = r.bist_cycles;
  return legacy;
}
}  // namespace

CoreTestReport SocTestSession::testCore(int core_index, int patterns) {
  SocTestScheduler scheduler(soc_);
  return toLegacy(scheduler.testCore(
      CorePlan{.core_index = core_index, .patterns = patterns}));
}

std::vector<CoreTestReport> SocTestSession::testAll(int patterns) {
  TestPlan plan;
  plan.patterns = patterns;
  plan.num_threads = 1;  // empty core list => every core, in index order
  SocTestScheduler scheduler(soc_);
  const SessionReport report = scheduler.run(plan);
  std::vector<CoreTestReport> legacy;
  legacy.reserve(report.cores.size());
  for (const CoreReport& r : report.cores) legacy.push_back(toLegacy(r));
  return legacy;
}

}  // namespace corebist
