#include "core/soc.hpp"

#include <sstream>

namespace corebist {

Soc::Soc(std::string name) : name_(std::move(name)), tap_(4), tam_(tap_) {}

int Soc::attachCore(std::unique_ptr<WrappedCore> core) {
  core->finalize();
  WrappedCore* raw = core.get();
  cores_.push_back(std::move(core));
  return tam_.attach(&raw->wrapper(), [raw] { raw->systemClockTick(); });
}

std::string CoreTestReport::summary() const {
  std::ostringstream os;
  os << "core " << core_index << ": " << (pass ? "PASS" : "FAIL") << " (";
  for (std::size_t m = 0; m < modules.size(); ++m) {
    if (m != 0) os << ", ";
    os << "M" << m << (modules[m].pass() ? " ok" : " MISMATCH");
  }
  os << "), " << bist_cycles << " at-speed cycles, " << tap_clocks
     << " TCKs";
  return os.str();
}

void SocTestSession::selectCore(int core_index) {
  driver_.shiftIr(Tam::kIrSelect, soc_.tap().irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(core_index), 8);
}

void SocTestSession::loadWir(WirInstruction instr) {
  driver_.shiftIr(Tam::kIrWirScan, soc_.tap().irWidth());
  driver_.shiftDr(static_cast<std::uint64_t>(instr), P1500Wrapper::kWirBits);
}

void SocTestSession::sendCommand(BistCommand cmd, std::uint16_t data) {
  loadWir(WirInstruction::kWsCdr);
  driver_.shiftIr(Tam::kIrWdrScan, soc_.tap().irWidth());
  const std::uint64_t word =
      (static_cast<std::uint64_t>(data) << 3) |
      static_cast<std::uint64_t>(cmd);
  driver_.shiftDr(word, P1500Wrapper::kWcdrBits);
}

std::uint16_t SocTestSession::readWdr() {
  loadWir(WirInstruction::kWsDr);
  driver_.shiftIr(Tam::kIrWdrScan, soc_.tap().irWidth());
  return static_cast<std::uint16_t>(
      driver_.shiftDr(0, P1500Wrapper::kWdrBits));
}

CoreTestReport SocTestSession::testCore(int core_index, int patterns) {
  CoreTestReport report;
  report.core_index = core_index;
  const std::size_t tck0 = soc_.tap().tckCount();

  driver_.reset();
  selectCore(core_index);
  WrappedCore& core = soc_.core(core_index);

  // Program and launch the BIST.
  sendCommand(BistCommand::kReset, 0);
  sendCommand(BistCommand::kLoadCount,
              static_cast<std::uint16_t>(patterns));
  sendCommand(BistCommand::kStart, 0);

  // At-speed run while the ATE idles the TAP.
  report.bist_cycles = static_cast<std::size_t>(patterns);
  driver_.runIdle(static_cast<std::size_t>(patterns) + 4);

  // Poll status until end_test (bit 1 of the status word).
  sendCommand(BistCommand::kSelectResult, 3);  // 3 = status view
  for (int poll = 0; poll < 4 && !report.end_test_seen; ++poll) {
    const std::uint16_t status = readWdr();
    report.end_test_seen = (status & 0x2u) != 0;
    if (!report.end_test_seen) driver_.runIdle(16);
  }

  // Upload each MISR signature through the Output Selector.
  report.pass = report.end_test_seen;
  for (int m = 0; m < core.moduleCount(); ++m) {
    sendCommand(BistCommand::kSelectResult,
                static_cast<std::uint16_t>(m));
    ModuleVerdict verdict;
    verdict.signature = readWdr();
    verdict.golden = core.goldenSignature(m, patterns);
    report.pass = report.pass && verdict.pass();
    report.modules.push_back(verdict);
  }
  report.tap_clocks = soc_.tap().tckCount() - tck0;
  return report;
}

std::vector<CoreTestReport> SocTestSession::testAll(int patterns) {
  std::vector<CoreTestReport> reports;
  for (int c = 0; c < soc_.coreCount(); ++c) {
    reports.push_back(testCore(c, patterns));
  }
  return reports;
}

}  // namespace corebist
