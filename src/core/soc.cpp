#include "core/soc.hpp"

#include <sstream>

#include "core/scheduler.hpp"

namespace corebist {

Soc::Soc(std::string name) : name_(std::move(name)), tap_(4), tam_(tap_) {}

int Soc::attachCore(std::unique_ptr<WrappedCore> core) {
  core->finalize();
  WrappedCore* raw = core.get();
  cores_.push_back(std::move(core));
  return tam_.attach(&raw->wrapper(), [raw] { raw->systemClockTick(); });
}

std::string CoreTestReport::summary() const {
  std::ostringstream os;
  os << "core " << core_index << ": " << (pass ? "PASS" : "FAIL") << " (";
  for (std::size_t m = 0; m < modules.size(); ++m) {
    if (m != 0) os << ", ";
    os << "M" << m << (modules[m].pass() ? " ok" : " MISMATCH");
  }
  os << "), " << bist_cycles << " at-speed cycles, " << tap_clocks
     << " TCKs";
  return os.str();
}

namespace {
CoreTestReport toLegacy(const CoreReport& r) {
  CoreTestReport legacy;
  legacy.core_index = r.core_index;
  legacy.pass = r.pass();
  legacy.end_test_seen = r.end_test_seen;
  legacy.modules = r.modules;
  legacy.tap_clocks = r.tap_clocks;
  legacy.bist_cycles = r.bist_cycles;
  return legacy;
}
}  // namespace

CoreTestReport SocTestSession::testCore(int core_index, int patterns) {
  SocTestScheduler scheduler(soc_);
  return toLegacy(scheduler.testCore(
      CorePlan{.core_index = core_index, .patterns = patterns}));
}

std::vector<CoreTestReport> SocTestSession::testAll(int patterns) {
  TestPlan plan;
  plan.patterns = patterns;
  plan.num_threads = 1;  // empty core list => every core, in index order
  SocTestScheduler scheduler(soc_);
  const SessionReport report = scheduler.run(plan);
  std::vector<CoreTestReport> legacy;
  legacy.reserve(report.cores.size());
  for (const CoreReport& r : report.cores) legacy.push_back(toLegacy(r));
  return legacy;
}

}  // namespace corebist
