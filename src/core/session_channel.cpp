#include "core/session_channel.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "fault/failpoint.hpp"
#include "fault/fault.hpp"
#include "service/artifacts.hpp"

namespace corebist {

namespace {

// Failpoint sites compiled into the session hot path (chaos testing and
// the scheduler-quarantine suites). Context: index = core, seq = attempt
// or poll ordinal. kError throws SessionChannelError — the structured
// infrastructure failure the scheduler knows how to retry — and kDelay
// stalls the protocol; other kinds make no sense here and are ignored.
constexpr const char* kFpChannelAttempt = "channel.attempt";
constexpr const char* kFpChannelPoll = "channel.poll";

void fireChannelSite(const char* site, int core_index, std::int64_t seq,
                     int attempt) {
  if (!failpointsArmed()) return;
  const auto a = failpointFire(site, core_index, seq);
  if (!a) return;
  if (a->kind == FailpointAction::Kind::kError) {
    throw SessionChannelError(core_index, attempt,
                              std::string("injected channel failure at ") +
                                  site + " (seq " + std::to_string(seq) +
                                  ")");
  }
  if (a->kind == FailpointAction::Kind::kDelay) {
    failpointSleepMs(a->delay_ms +
                     failpointJitterMs(*a, static_cast<std::uint64_t>(seq)));
  }
}

}  // namespace

SessionChannel::SessionChannel(Soc& soc, int tam_index,
                               ArtifactStore* artifacts)
    : soc_(soc),
      tam_index_(tam_index),
      artifacts_(artifacts),
      tap_(soc.tap().irWidth(), soc.tap().idcode()),
      tam_(tap_, soc.tam(tam_index).irSelect(), soc.tam(tam_index).name()),
      ate_(tap_, tam_.irSelect()) {
  // Attach this TAM's top-level wrappers in global core-index order — the
  // same order Soc::attachCore used — so replica slots equal chip slots.
  for (int c = 0; c < soc.coreCount(); ++c) {
    const Soc::CoreTopology& topo = soc.topology(c);
    if (topo.tam != tam_index || topo.depth() != 0) continue;
    WrappedCore* core = &soc.core(c);
    tam_.attach(&core->wrapper(), [core] { core->systemClockTick(); });
  }
}

CoreReport SessionChannel::testCore(const CorePlan& p,
                                    SessionObserver* observer,
                                    std::mutex& observer_mu) {
  const Soc::CoreTopology& topo = soc_.topology(p.core_index);
  if (topo.tam != tam_index_) {
    throw std::logic_error("SessionChannel: core " +
                           std::to_string(p.core_index) +
                           " is not served by TAM " +
                           std::to_string(tam_index_));
  }
  CoreReport report;
  report.core_index = p.core_index;
  report.patterns = p.patterns;
  report.tam = topo.tam;
  report.depth = topo.depth();
  WrappedCore& core = soc_.core(p.core_index);
  report.core_name = core.name();

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t tck0 = tap_.tckCount();

  for (int attempt = 1; attempt <= 1 + p.max_retries; ++attempt) {
    fireChannelSite(kFpChannelAttempt, p.core_index, attempt, attempt);
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreStart(p.core_index, attempt);
    });
    ++report.attempts;

    ate_.reset();
    ate_.selectCore(topo.top_slot);
    ate_.selectPath(topo.child_path);
    ate_.sendCommand(BistCommand::kReset, 0);
    ate_.sendCommand(BistCommand::kLoadCount,
                     static_cast<std::uint16_t>(p.patterns));
    ate_.sendCommand(BistCommand::kStart, 0);

    // At-speed run while the ATE idles the TAP.
    ate_.runIdle(static_cast<std::size_t>(p.warmup_idle));
    report.bist_cycles += static_cast<std::size_t>(p.warmup_idle);

    // Poll status until end_test or the budget runs out.
    ate_.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
    bool end_test = false;
    for (int poll = 0; poll < p.poll_budget && !end_test; ++poll) {
      fireChannelSite(kFpChannelPoll, p.core_index, poll, attempt);
      const std::uint16_t status = ate_.readWdr();
      ++report.polls;
      end_test = (status & P1500Ate::kStatusEndTest) != 0;
      if (!end_test) {
        ate_.runIdle(static_cast<std::size_t>(p.poll_idle));
        report.bist_cycles += static_cast<std::size_t>(p.poll_idle);
      }
    }
    if (end_test) {
      report.end_test_seen = true;
      break;
    }
    ++report.timeouts;
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreTimeout(p.core_index, attempt, attempt <= p.max_retries);
    });
  }

  if (report.end_test_seen) {
    // Upload each MISR signature through the Output Selector.
    report.verdict = CoreVerdict::kPass;
    for (int m = 0; m < core.moduleCount(); ++m) {
      ate_.sendCommand(BistCommand::kSelectResult,
                       static_cast<std::uint16_t>(m));
      ModuleVerdict verdict;
      verdict.signature = ate_.readWdr();
      // The golden signature is the good-machine simulation every uncached
      // campaign pays per core; the shared artifact store memoizes it per
      // (module content, patterns).
      verdict.golden = artifacts_ != nullptr
                           ? artifacts_->goldenSignature(core, m, p.patterns)
                           : core.goldenSignature(m, p.patterns);
      if (!verdict.pass()) report.verdict = CoreVerdict::kSignatureMismatch;
      report.modules.push_back(verdict);
    }
    if (p.coverage_target > 0.0) measureCoverage(core, p, report);
  } else {
    report.verdict = CoreVerdict::kTimeout;
  }

  report.tap_clocks = tap_.tckCount() - tck0;
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  notify(observer_mu, observer,
         [&](SessionObserver& o) { o.onCoreFinish(report); });
  return report;
}

void SessionChannel::measureCoverage(const WrappedCore& core,
                                     const CorePlan& p, CoreReport& report) {
  report.coverage_target = p.coverage_target;
  for (int m = 0; m < core.moduleCount(); ++m) {
    // Backend and worker count come from the resolved plan entry; the plan
    // default is one serial worker — the channel itself is the unit of
    // parallelism — but big-module plans can opt into the threaded,
    // multi-process or resilient orchestrators per core. The plan's
    // resilience knobs ride along so kResilient probes inherit the same
    // retry budget the scheduler applies to channels.
    FsimBackendOptions bopts;
    bopts.backend = p.coverage_backend.value_or(FsimBackend::kSerial);
    bopts.num_workers = p.coverage_workers;
    bopts.max_shard_retries = p.max_shard_retries >= 0 ? p.max_shard_retries : 2;
    bopts.backoff_base_ms = p.backoff_base_ms >= 0 ? p.backoff_base_ms : 1;
    bopts.degrade_on_failure = p.degrade_on_failure.value_or(true);
    double coverage;
    if (artifacts_ != nullptr) {
      // Memoized per (module content, patterns): coverage is
      // backend-invariant, so bopts only steers how a miss is computed.
      coverage = artifacts_->signatureCoverage(core, m, p.patterns, bopts);
    } else {
      const FaultUniverse u = enumerateStuckAt(core.engine().module(m));
      coverage =
          core.engine().signatureCoverage(m, u.faults, p.patterns, bopts)
              .misrCoverage();
    }
    report.modules[static_cast<std::size_t>(m)].coverage = coverage;
    if (coverage < p.coverage_target) report.coverage_met = false;
  }
}

}  // namespace corebist
