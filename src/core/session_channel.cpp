#include "core/session_channel.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"

namespace corebist {

SessionChannel::SessionChannel(Soc& soc, int tam_index)
    : soc_(soc),
      tam_index_(tam_index),
      tap_(soc.tap().irWidth(), soc.tap().idcode()),
      tam_(tap_, soc.tam(tam_index).irSelect(), soc.tam(tam_index).name()),
      ate_(tap_, tam_.irSelect()) {
  // Attach this TAM's top-level wrappers in global core-index order — the
  // same order Soc::attachCore used — so replica slots equal chip slots.
  for (int c = 0; c < soc.coreCount(); ++c) {
    const Soc::CoreTopology& topo = soc.topology(c);
    if (topo.tam != tam_index || topo.depth() != 0) continue;
    WrappedCore* core = &soc.core(c);
    tam_.attach(&core->wrapper(), [core] { core->systemClockTick(); });
  }
}

CoreReport SessionChannel::testCore(const CorePlan& p,
                                    SessionObserver* observer,
                                    std::mutex& observer_mu) {
  const Soc::CoreTopology& topo = soc_.topology(p.core_index);
  if (topo.tam != tam_index_) {
    throw std::logic_error("SessionChannel: core " +
                           std::to_string(p.core_index) +
                           " is not served by TAM " +
                           std::to_string(tam_index_));
  }
  CoreReport report;
  report.core_index = p.core_index;
  report.patterns = p.patterns;
  report.tam = topo.tam;
  report.depth = topo.depth();
  WrappedCore& core = soc_.core(p.core_index);
  report.core_name = core.name();

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t tck0 = tap_.tckCount();

  for (int attempt = 1; attempt <= 1 + p.max_retries; ++attempt) {
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreStart(p.core_index, attempt);
    });
    ++report.attempts;

    ate_.reset();
    ate_.selectCore(topo.top_slot);
    ate_.selectPath(topo.child_path);
    ate_.sendCommand(BistCommand::kReset, 0);
    ate_.sendCommand(BistCommand::kLoadCount,
                     static_cast<std::uint16_t>(p.patterns));
    ate_.sendCommand(BistCommand::kStart, 0);

    // At-speed run while the ATE idles the TAP.
    ate_.runIdle(static_cast<std::size_t>(p.warmup_idle));
    report.bist_cycles += static_cast<std::size_t>(p.warmup_idle);

    // Poll status until end_test or the budget runs out.
    ate_.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
    bool end_test = false;
    for (int poll = 0; poll < p.poll_budget && !end_test; ++poll) {
      const std::uint16_t status = ate_.readWdr();
      ++report.polls;
      end_test = (status & P1500Ate::kStatusEndTest) != 0;
      if (!end_test) {
        ate_.runIdle(static_cast<std::size_t>(p.poll_idle));
        report.bist_cycles += static_cast<std::size_t>(p.poll_idle);
      }
    }
    if (end_test) {
      report.end_test_seen = true;
      break;
    }
    ++report.timeouts;
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreTimeout(p.core_index, attempt, attempt <= p.max_retries);
    });
  }

  if (report.end_test_seen) {
    // Upload each MISR signature through the Output Selector.
    report.verdict = CoreVerdict::kPass;
    for (int m = 0; m < core.moduleCount(); ++m) {
      ate_.sendCommand(BistCommand::kSelectResult,
                       static_cast<std::uint16_t>(m));
      ModuleVerdict verdict;
      verdict.signature = ate_.readWdr();
      verdict.golden = core.goldenSignature(m, p.patterns);
      if (!verdict.pass()) report.verdict = CoreVerdict::kSignatureMismatch;
      report.modules.push_back(verdict);
    }
    if (p.coverage_target > 0.0) measureCoverage(core, p, report);
  } else {
    report.verdict = CoreVerdict::kTimeout;
  }

  report.tap_clocks = tap_.tckCount() - tck0;
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  notify(observer_mu, observer,
         [&](SessionObserver& o) { o.onCoreFinish(report); });
  return report;
}

void SessionChannel::measureCoverage(const WrappedCore& core,
                                     const CorePlan& p, CoreReport& report) {
  report.coverage_target = p.coverage_target;
  for (int m = 0; m < core.moduleCount(); ++m) {
    const FaultUniverse u = enumerateStuckAt(core.engine().module(m));
    // Backend and worker count come from the resolved plan entry; the plan
    // default is one serial worker — the channel itself is the unit of
    // parallelism — but big-module plans can opt into the threaded or
    // multi-process orchestrators per core.
    const FaultSimResult r = core.engine().signatureCoverage(
        m, u.faults, p.patterns, p.coverage_workers,
        p.coverage_backend.value_or(FsimBackend::kSerial));
    const double coverage = r.misrCoverage();
    report.modules[static_cast<std::size_t>(m)].coverage = coverage;
    if (coverage < p.coverage_target) report.coverage_met = false;
  }
}

}  // namespace corebist
