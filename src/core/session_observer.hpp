// Progress streaming for SoC test campaigns.
//
// The SocTestScheduler reports campaign progress through this callback
// interface instead of printing: embedders plug in dashboards, loggers or
// test probes. The scheduler serializes all observer calls under one mutex,
// so implementations need no locking of their own; callbacks fire from
// worker threads, in completion order (which is only deterministic for
// single-shard campaigns).
#ifndef COREBIST_CORE_SESSION_OBSERVER_HPP_
#define COREBIST_CORE_SESSION_OBSERVER_HPP_

#include <cstddef>
#include <cstdio>
#include <vector>

#include "core/session_report.hpp"

namespace corebist {

class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void onCampaignStart(int /*cores*/, int /*threads*/) {}
  /// Placement decision stream: one call per TAM channel, after
  /// onCampaignStart and before any core runs, in ascending (TAM, channel)
  /// order — deterministic, unlike completion order. `cores` lists the
  /// core indices the channel will run serially, in execution order;
  /// `predicted_tcks` is the P1500Ate cost-model load the scheduler
  /// balanced (see TestPlan::placement).
  virtual void onChannelPlaced(int /*tam*/, int /*channel*/,
                               const std::vector<int>& /*cores*/,
                               std::size_t /*predicted_tcks*/) {}
  /// `attempt` is 1-based; > 1 means a retry after a timeout.
  virtual void onCoreStart(int /*core_index*/, int /*attempt*/) {}
  virtual void onCoreTimeout(int /*core_index*/, int /*attempt*/,
                             bool /*will_retry*/) {}
  /// The core's session channel failed (`failures` so far, 1-based). When
  /// `will_retry` the scheduler reopens a fresh channel and re-runs the
  /// core; otherwise the core is about to be quarantined (or the error
  /// rethrown, when the plan disables degradation).
  virtual void onChannelFailure(int /*core_index*/, int /*failures*/,
                                bool /*will_retry*/) {}
  /// The core exhausted its channel retry budget and was excluded from the
  /// campaign with CoreVerdict::kQuarantined.
  virtual void onCoreQuarantined(int /*core_index*/, int /*failures*/) {}
  virtual void onCoreFinish(const CoreReport& /*report*/) {}
  virtual void onCampaignFinish(const SessionReport& /*report*/) {}
};

/// Prints one line per event to a stdio stream (default stdout).
class StreamObserver final : public SessionObserver {
 public:
  explicit StreamObserver(std::FILE* out = stdout) : out_(out) {}

  void onCampaignStart(int cores, int threads) override {
    std::fprintf(out_, "[campaign] %d core(s) on %d shard(s)\n", cores,
                 threads);
  }
  void onChannelPlaced(int tam, int channel, const std::vector<int>& cores,
                       std::size_t predicted_tcks) override {
    std::fprintf(out_, "[tam %d ch %d]", tam, channel);
    for (const int c : cores) std::fprintf(out_, " core %d", c);
    std::fprintf(out_, " (%zu predicted TCKs)\n", predicted_tcks);
  }
  void onCoreStart(int core_index, int attempt) override {
    if (attempt > 1) {
      std::fprintf(out_, "[core %d] retry (attempt %d)\n", core_index,
                   attempt);
    }
  }
  void onCoreTimeout(int core_index, int attempt, bool will_retry) override {
    std::fprintf(out_, "[core %d] attempt %d timed out%s\n", core_index,
                 attempt, will_retry ? ", retrying" : "");
  }
  void onChannelFailure(int core_index, int failures,
                        bool will_retry) override {
    std::fprintf(out_, "[core %d] channel failure %d%s\n", core_index,
                 failures, will_retry ? ", reopening channel" : "");
  }
  void onCoreQuarantined(int core_index, int failures) override {
    std::fprintf(out_, "[core %d] QUARANTINED after %d channel failure(s)\n",
                 core_index, failures);
  }
  void onCoreFinish(const CoreReport& report) override {
    std::fprintf(out_, "[core %d] %s\n", report.core_index,
                 report.summary().c_str());
  }
  void onCampaignFinish(const SessionReport& report) override {
    std::fprintf(out_, "[campaign] %s\n", report.summary().c_str());
  }

 private:
  std::FILE* out_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SESSION_OBSERVER_HPP_
