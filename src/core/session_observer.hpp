// Progress streaming for SoC test campaigns.
//
// The SocTestScheduler reports campaign progress through this callback
// interface instead of printing: embedders plug in dashboards, loggers or
// test probes. The scheduler serializes all observer calls under one mutex,
// so implementations need no locking of their own; callbacks fire from
// worker threads, in completion order (which is only deterministic for
// single-shard campaigns).
#ifndef COREBIST_CORE_SESSION_OBSERVER_HPP_
#define COREBIST_CORE_SESSION_OBSERVER_HPP_

#include <cstddef>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/session_report.hpp"

namespace corebist {

class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void onCampaignStart(int /*cores*/, int /*threads*/) {}
  /// Placement decision stream: one call per TAM channel, after
  /// onCampaignStart and before any core runs, in ascending (TAM, channel)
  /// order — deterministic, unlike completion order. `cores` lists the
  /// core indices the channel will run serially, in execution order;
  /// `predicted_tcks` is the P1500Ate cost-model load the scheduler
  /// balanced (see TestPlan::placement).
  virtual void onChannelPlaced(int /*tam*/, int /*channel*/,
                               const std::vector<int>& /*cores*/,
                               std::size_t /*predicted_tcks*/) {}
  /// `attempt` is 1-based; > 1 means a retry after a timeout.
  virtual void onCoreStart(int /*core_index*/, int /*attempt*/) {}
  virtual void onCoreTimeout(int /*core_index*/, int /*attempt*/,
                             bool /*will_retry*/) {}
  /// The core's session channel failed (`failures` so far, 1-based). When
  /// `will_retry` the scheduler reopens a fresh channel and re-runs the
  /// core; otherwise the core is about to be quarantined (or the error
  /// rethrown, when the plan disables degradation).
  virtual void onChannelFailure(int /*core_index*/, int /*failures*/,
                                bool /*will_retry*/) {}
  /// The core exhausted its channel retry budget and was excluded from the
  /// campaign with CoreVerdict::kQuarantined.
  virtual void onCoreQuarantined(int /*core_index*/, int /*failures*/) {}
  virtual void onCoreFinish(const CoreReport& /*report*/) {}
  virtual void onCampaignFinish(const SessionReport& /*report*/) {}
};

/// Prints one line per event to a stdio stream (default stdout).
///
/// Each event is formatted into one buffer and emitted with a single
/// fputs under a member mutex, so lines from concurrent campaigns sharing
/// one StreamObserver (the resident service's multi-tenant console case)
/// never interleave mid-line. `label` (optional, e.g. a campaign id)
/// prefixes every line so interleaved campaigns stay attributable.
class StreamObserver final : public SessionObserver {
 public:
  explicit StreamObserver(std::FILE* out = stdout, std::string label = {})
      : out_(out), label_(std::move(label)) {}

  void onCampaignStart(int cores, int threads) override {
    std::ostringstream os;
    os << "[campaign] " << cores << " core(s) on " << threads << " shard(s)";
    emit(os.str());
  }
  void onChannelPlaced(int tam, int channel, const std::vector<int>& cores,
                       std::size_t predicted_tcks) override {
    std::ostringstream os;
    os << "[tam " << tam << " ch " << channel << "]";
    for (const int c : cores) os << " core " << c;
    os << " (" << predicted_tcks << " predicted TCKs)";
    emit(os.str());
  }
  void onCoreStart(int core_index, int attempt) override {
    if (attempt > 1) {
      std::ostringstream os;
      os << "[core " << core_index << "] retry (attempt " << attempt << ")";
      emit(os.str());
    }
  }
  void onCoreTimeout(int core_index, int attempt, bool will_retry) override {
    std::ostringstream os;
    os << "[core " << core_index << "] attempt " << attempt << " timed out"
       << (will_retry ? ", retrying" : "");
    emit(os.str());
  }
  void onChannelFailure(int core_index, int failures,
                        bool will_retry) override {
    std::ostringstream os;
    os << "[core " << core_index << "] channel failure " << failures
       << (will_retry ? ", reopening channel" : "");
    emit(os.str());
  }
  void onCoreQuarantined(int core_index, int failures) override {
    std::ostringstream os;
    os << "[core " << core_index << "] QUARANTINED after " << failures
       << " channel failure(s)";
    emit(os.str());
  }
  void onCoreFinish(const CoreReport& report) override {
    std::ostringstream os;
    os << "[core " << report.core_index << "] " << report.summary();
    emit(os.str());
  }
  void onCampaignFinish(const SessionReport& report) override {
    emit("[campaign] " + report.summary());
  }

 private:
  void emit(const std::string& line) {
    std::string full;
    full.reserve(label_.size() + line.size() + 4);
    if (!label_.empty()) full += "[" + label_ + "] ";
    full += line;
    full += '\n';
    const std::lock_guard<std::mutex> lock(mu_);
    std::fputs(full.c_str(), out_);
  }

  std::FILE* out_;
  std::string label_;
  std::mutex mu_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SESSION_OBSERVER_HPP_
