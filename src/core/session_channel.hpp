// SessionChannel: one independent test-access channel onto an SoC.
//
// A channel is the unit the SocTestScheduler parallelizes over: a private
// TAP-controller replica configured like the chip TAP, a replica of ONE of
// the chip's TAMs (same IR block, same top-level wrappers under the same
// slots), and the P1500Ate bit-banging protocol over them. A channel only
// ever cycles the wrapper tree of the core its TAM has selected, so
// channels for different core trees may run concurrently; cores sharing a
// top-level ancestor share one wrapper chain and one clock domain, so the
// scheduler keeps a whole tree on a single channel.
//
// Extracted from SocTestScheduler (PR 2 built this bundle inline per
// shard) so alternative access mechanisms — wider TAMs, streaming
// interfaces — can replace the internals behind a stable seam.
#ifndef COREBIST_CORE_SESSION_CHANNEL_HPP_
#define COREBIST_CORE_SESSION_CHANNEL_HPP_

#include <mutex>
#include <stdexcept>
#include <string>

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"
#include "jtag/tap.hpp"
#include "tam/ate.hpp"
#include "tam/tam.hpp"

namespace corebist {

class ArtifactStore;

/// Structured failure of the test-access infrastructure under one core's
/// session — the channel (replica TAP/TAM/ATE plumbing), not the core under
/// test, is what failed. The scheduler treats it as recoverable: reopen a
/// fresh channel, retry the core, and quarantine after the plan's retry
/// budget (TestPlan::max_shard_retries) instead of failing the campaign.
/// Raised today by the `channel.attempt` / `channel.poll` failpoint sites
/// (chaos testing); a real flaky-fixture transport would throw it from the
/// same places.
class SessionChannelError : public std::runtime_error {
 public:
  SessionChannelError(int core_index, int attempt, const std::string& detail)
      : std::runtime_error("SessionChannel: core " +
                           std::to_string(core_index) + ": " + detail),
        core_index_(core_index),
        attempt_(attempt) {}

  [[nodiscard]] int coreIndex() const noexcept { return core_index_; }
  /// Protocol attempt (1-based) the channel failed on.
  [[nodiscard]] int attempt() const noexcept { return attempt_; }

 private:
  int core_index_;
  int attempt_;
};

class SessionChannel {
 public:
  /// Open a channel onto `soc` through TAM `tam_index`. The replica TAM
  /// attaches the same top-level wrappers under the same slot numbers as
  /// the chip TAM, so CoreTopology select paths are valid verbatim.
  /// `artifacts` (optional, not owned, must outlive the channel) serves
  /// golden signatures and coverage values from the shared content-keyed
  /// cache instead of recomputing them per campaign; a hit is
  /// fingerprint-invisible — the cache key covers every input the value
  /// depends on (see service/artifacts.hpp).
  explicit SessionChannel(Soc& soc, int tam_index = 0,
                          ArtifactStore* artifacts = nullptr);

  /// Run one resolved plan entry's full protocol (all attempts) and
  /// report. `entry.core_index` must name a core served by this channel's
  /// TAM — the scheduler guarantees it; a mismatch throws. `observer`
  /// (optional) receives callbacks serialized under `observer_mu`.
  CoreReport testCore(const CorePlan& entry, SessionObserver* observer,
                      std::mutex& observer_mu);

  [[nodiscard]] int tamIndex() const noexcept { return tam_index_; }

 private:
  void notify(std::mutex& mu, SessionObserver* obs, auto&& call) {
    if (obs == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu);
    call(*obs);
  }
  void measureCoverage(const WrappedCore& core, const CorePlan& p,
                       CoreReport& report);

  Soc& soc_;
  int tam_index_;
  ArtifactStore* artifacts_;
  TapController tap_;
  Tam tam_;
  P1500Ate ate_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SESSION_CHANNEL_HPP_
