// SoC assembly and complete ATE-style test sessions (paper Fig. 1).
//
// A Soc owns the chip TAP controller, the TAM and a set of wrapped cores;
// SocTestSession is the "external ATE": it drives everything exclusively
// through TCK/TMS/TDI bit-banging — select the core, program the pattern
// count through the WCDR, start the BIST, idle the TAP while the engine
// runs at speed, then upload every MISR signature through the WDR and
// compare with the golden references.
#ifndef COREBIST_CORE_SOC_HPP_
#define COREBIST_CORE_SOC_HPP_

#include <memory>
#include <string>
#include <vector>

#include "core/wrapped_core.hpp"
#include "jtag/driver.hpp"
#include "jtag/tap.hpp"
#include "tam/tam.hpp"

namespace corebist {

class Soc {
 public:
  explicit Soc(std::string name = "soc");

  /// Add a finalized-on-attach wrapped core; returns the core index.
  int attachCore(std::unique_ptr<WrappedCore> core);

  [[nodiscard]] WrappedCore& core(int i) {
    return *cores_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(cores_.size());
  }
  [[nodiscard]] TapController& tap() noexcept { return tap_; }
  [[nodiscard]] Tam& tam() noexcept { return tam_; }

 private:
  std::string name_;
  TapController tap_;
  Tam tam_;
  std::vector<std::unique_ptr<WrappedCore>> cores_;
};

struct ModuleVerdict {
  std::uint16_t signature = 0;
  std::uint16_t golden = 0;
  [[nodiscard]] bool pass() const noexcept { return signature == golden; }
};

struct CoreTestReport {
  int core_index = -1;
  bool pass = false;
  bool end_test_seen = false;
  std::vector<ModuleVerdict> modules;
  std::size_t tap_clocks = 0;   // total TCKs spent in the session
  std::size_t bist_cycles = 0;  // at-speed pattern clocks
  [[nodiscard]] std::string summary() const;
};

class SocTestSession {
 public:
  explicit SocTestSession(Soc& soc) : soc_(soc), driver_(soc.tap()) {}

  /// Run the full P1500 BIST session on one core.
  [[nodiscard]] CoreTestReport testCore(int core_index, int patterns);

  /// Test every core in sequence.
  [[nodiscard]] std::vector<CoreTestReport> testAll(int patterns);

 private:
  void selectCore(int core_index);
  void loadWir(WirInstruction instr);
  void sendCommand(BistCommand cmd, std::uint16_t data);
  [[nodiscard]] std::uint16_t readWdr();

  Soc& soc_;
  TapDriver driver_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SOC_HPP_
