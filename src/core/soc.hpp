// SoC assembly and the session-layer entry points (paper Fig. 1,
// generalized to multi-TAM, hierarchical chips).
//
// A Soc owns the chip TAP controller, one or more named TAMs — each
// serving its own subset of top-level wrapped cores — and the cores
// themselves, which may nest: a wrapped core can contain child wrapped
// cores reached through its parent's WIR child chain. Every core, nested
// or not, has a global index and a CoreTopology describing how the ATE
// reaches it (serving TAM, top-level slot, child-slot path). Test
// campaigns are described by a TestPlan (core/test_plan.hpp) and executed
// by the SocTestScheduler (core/scheduler.hpp) over per-TAM
// SessionChannels (core/session_channel.hpp); SocTestSession remains as a
// thin compatibility shim over a single-shard plan for callers that just
// want the classic blocking testCore / testAll calls.
#ifndef COREBIST_CORE_SOC_HPP_
#define COREBIST_CORE_SOC_HPP_

#include <memory>
#include <string>
#include <vector>

#include "core/session_report.hpp"
#include "core/wrapped_core.hpp"
#include "jtag/tap.hpp"
#include "tam/tam.hpp"

namespace corebist {

class Soc {
 public:
  /// Hierarchical access cost doubles per level (routing an ancestor's WIR
  /// is itself a hierarchical scan), so nesting is capped.
  static constexpr int kMaxHierarchyDepth = 4;

  explicit Soc(std::string name = "soc");

  /// How the ATE reaches a core.
  struct CoreTopology {
    int tam = 0;        // serving TAM index
    int parent = -1;    // parent core's global index; -1 = top-level
    int root = -1;      // top-level ancestor (own index when top-level)
    int top_slot = -1;  // the root's slot on its TAM
    /// Child-slot chain from the root down to this core (empty when
    /// top-level). size() is the nesting depth.
    std::vector<int> child_path;
    [[nodiscard]] int depth() const noexcept {
      return static_cast<int>(child_path.size());
    }
  };

  /// Add a named TAM; returns its index. TAM 0 ("tam0", classic IR block)
  /// always exists. Throws when the chip TAP's IR space cannot hold
  /// another block.
  int addTam(std::string name = "");

  /// Add a finalized-on-attach top-level core served by TAM `tam_index`;
  /// returns the core's global index.
  int attachCore(std::unique_ptr<WrappedCore> core, int tam_index = 0);

  /// Add a finalized-on-attach core nested inside `parent_index`'s wrapper
  /// child chain; returns the core's global index. The child is reached
  /// through its ancestor chain on the parent's TAM and shares the
  /// parent's clock domain.
  int attachChildCore(std::unique_ptr<WrappedCore> core, int parent_index);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] WrappedCore& core(int i) {
    return *cores_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(cores_.size());
  }
  [[nodiscard]] const CoreTopology& topology(int i) const {
    return topo_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] TapController& tap() noexcept { return tap_; }
  /// TAM `t` (default: the classic TAM 0).
  [[nodiscard]] Tam& tam(int t = 0) {
    return *tams_.at(static_cast<std::size_t>(t));
  }
  [[nodiscard]] int tamCount() const noexcept {
    return static_cast<int>(tams_.size());
  }
  [[nodiscard]] const std::string& tamName(int t) const {
    return tams_.at(static_cast<std::size_t>(t))->name();
  }

 private:
  std::string name_;
  TapController tap_;
  // Heap-allocated: a Tam registers TAP lambdas capturing its address.
  std::vector<std::unique_ptr<Tam>> tams_;
  std::vector<std::unique_ptr<WrappedCore>> cores_;
  std::vector<CoreTopology> topo_;
};

/// Legacy per-core report kept for source compatibility; new code should
/// use CoreReport / SessionReport (core/session_report.hpp), which
/// distinguish timeouts from signature mismatches and carry retry and
/// coverage accounting.
struct CoreTestReport {
  int core_index = -1;
  bool pass = false;
  bool end_test_seen = false;
  std::vector<ModuleVerdict> modules;
  std::size_t tap_clocks = 0;   // total TCKs spent in the session
  std::size_t bist_cycles = 0;  // at-speed pattern clocks
  [[nodiscard]] std::string summary() const;
};

/// Compatibility shim: the blocking, serial session API, now a thin
/// wrapper over a single-shard SocTestScheduler plan.
class SocTestSession {
 public:
  explicit SocTestSession(Soc& soc) : soc_(soc) {}

  /// Run the full P1500 BIST session on one core.
  [[nodiscard]] CoreTestReport testCore(int core_index, int patterns);

  /// Test every core in sequence.
  [[nodiscard]] std::vector<CoreTestReport> testAll(int patterns);

 private:
  Soc& soc_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SOC_HPP_
