// SoC assembly and the session-layer entry points (paper Fig. 1).
//
// A Soc owns the chip TAP controller, the TAM and a set of wrapped cores.
// Test campaigns are described by a TestPlan (core/test_plan.hpp) and
// executed by the SocTestScheduler (core/scheduler.hpp), which shards
// independent cores across session channels; SocTestSession remains as a
// thin compatibility shim over a single-shard plan for callers that just
// want the classic blocking testCore / testAll calls.
#ifndef COREBIST_CORE_SOC_HPP_
#define COREBIST_CORE_SOC_HPP_

#include <memory>
#include <string>
#include <vector>

#include "core/session_report.hpp"
#include "core/wrapped_core.hpp"
#include "jtag/tap.hpp"
#include "tam/tam.hpp"

namespace corebist {

class Soc {
 public:
  explicit Soc(std::string name = "soc");

  /// Add a finalized-on-attach wrapped core; returns the core index.
  int attachCore(std::unique_ptr<WrappedCore> core);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] WrappedCore& core(int i) {
    return *cores_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int coreCount() const noexcept {
    return static_cast<int>(cores_.size());
  }
  [[nodiscard]] TapController& tap() noexcept { return tap_; }
  [[nodiscard]] Tam& tam() noexcept { return tam_; }

 private:
  std::string name_;
  TapController tap_;
  Tam tam_;
  std::vector<std::unique_ptr<WrappedCore>> cores_;
};

/// Legacy per-core report kept for source compatibility; new code should
/// use CoreReport / SessionReport (core/session_report.hpp), which
/// distinguish timeouts from signature mismatches and carry retry and
/// coverage accounting.
struct CoreTestReport {
  int core_index = -1;
  bool pass = false;
  bool end_test_seen = false;
  std::vector<ModuleVerdict> modules;
  std::size_t tap_clocks = 0;   // total TCKs spent in the session
  std::size_t bist_cycles = 0;  // at-speed pattern clocks
  [[nodiscard]] std::string summary() const;
};

/// Compatibility shim: the blocking, serial session API, now a thin
/// wrapper over a single-shard SocTestScheduler plan.
class SocTestSession {
 public:
  explicit SocTestSession(Soc& soc) : soc_(soc) {}

  /// Run the full P1500 BIST session on one core.
  [[nodiscard]] CoreTestReport testCore(int core_index, int patterns);

  /// Test every core in sequence.
  [[nodiscard]] std::vector<CoreTestReport> testAll(int patterns);

 private:
  Soc& soc_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SOC_HPP_
