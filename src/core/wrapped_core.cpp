#include "core/wrapped_core.hpp"

#include <stdexcept>

namespace corebist {

WrappedCore::WrappedCore(std::string name, BistEngineConfig cfg)
    : name_(std::move(name)), engine_(std::move(cfg)) {}

int WrappedCore::addModule(const Netlist& reference,
                           std::vector<ConstrainedPort> constraints) {
  if (wrapper_ != nullptr) {
    throw std::logic_error("addModule after finalize");
  }
  const int m = engine_.attachModule(reference, std::move(constraints));
  physical_.push_back(reference);  // pin-compatible manufactured instance
  return m;
}

void WrappedCore::injectDefect(int module, GateId gate, GateType new_type) {
  physical_.at(static_cast<std::size_t>(module)).mutateGateType(gate, new_type);
  run_complete_ = false;
  signatures_.clear();
}

void WrappedCore::healModule(int module) {
  physical_.at(static_cast<std::size_t>(module)) = engine_.module(module);
  run_complete_ = false;
  signatures_.clear();
}

void WrappedCore::finalize() {
  if (wrapper_ != nullptr) return;
  int wbr_bits = 0;
  for (int m = 0; m < engine_.moduleCount(); ++m) {
    wbr_bits += engine_.module(m).portWidth(true) +
                engine_.module(m).portWidth(false);
  }
  P1500Wrapper::Hooks hooks;
  hooks.command = [this](BistCommand cmd, std::uint16_t data) {
    onCommand(cmd, data);
  };
  hooks.read_data = [this] { return readData(); };
  wrapper_ = std::make_unique<P1500Wrapper>(wbr_bits, std::move(hooks));
}

int WrappedCore::addChild(WrappedCore* child) {
  if (child == nullptr) {
    throw std::invalid_argument("WrappedCore: null child core");
  }
  if (wrapper_ == nullptr || child->wrapper_ == nullptr) {
    throw std::logic_error(
        "WrappedCore: both cores must be finalized before addChild");
  }
  const int slot = wrapper_->attachChild(&child->wrapper());
  children_.push_back(child);
  return slot;
}

void WrappedCore::onCommand(BistCommand cmd, std::uint16_t data) {
  cu_.command(cmd, data);
  if (cmd == BistCommand::kReset || cmd == BistCommand::kStart) {
    run_complete_ = false;
    signatures_.clear();
  }
}

void WrappedCore::systemClockTick() {
  const bool was_running = cu_.testEnable();
  cu_.tick();
  if (was_running && cu_.endTest() && !run_complete_) completeRun();
  for (WrappedCore* c : children_) c->systemClockTick();
}

void WrappedCore::completeRun() {
  // The at-speed BIST run finished: collect the MISR signatures of every
  // physical module (paper: patterns applied one per clock, results read
  // at the end of the execution).
  signatures_.clear();
  const int patterns = static_cast<int>(cu_.patternLimit());
  for (int m = 0; m < engine_.moduleCount(); ++m) {
    signatures_.push_back(static_cast<std::uint16_t>(
        engine_.runAndSign(m, physical_[static_cast<std::size_t>(m)],
                           patterns)));
  }
  run_complete_ = true;
}

std::uint16_t WrappedCore::goldenSignature(int m, int patterns) const {
  return static_cast<std::uint16_t>(engine_.goldenSignature(m, patterns));
}

std::uint32_t WrappedCore::readData() const {
  const unsigned sel = cu_.resultSelect();
  if (run_complete_ && sel < signatures_.size()) {
    return signatures_[sel];
  }
  return cu_.statusWord() & 0xFFFFu;
}

}  // namespace corebist
