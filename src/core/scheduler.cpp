#include "core/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analyze/lint.hpp"
#include "core/session_channel.hpp"
#include "fault/failpoint.hpp"

namespace corebist {
namespace {

/// Admission lint: every module netlist of a referenced core must be free
/// of error-severity structural findings before any channel drives it. The
/// BIST engine's attach path never levelizes, so without this gate a
/// combinational loop (or a floating/doubly-driven net) only surfaces as a
/// mid-campaign levelize throw or a garbage signature; here it is rejected
/// at plan-resolve time with the violated rule's name.
void lintCoreModules(Soc& soc, int core_index) {
  const BistEngine& engine = soc.core(core_index).engine();
  for (int m = 0; m < engine.moduleCount(); ++m) {
    const LintReport report = lintNetlist(engine.module(m));
    if (const Diagnostic* err = report.firstError()) {
      throw std::invalid_argument(
          "TestPlan: core " + std::to_string(core_index) + " module " +
          std::to_string(m) + " ('" + engine.module(m).name() +
          "') fails structural lint rule '" + err->rule +
          "': " + err->message);
    }
  }
}

/// Concretize a plan entry against the plan-wide defaults and validate it
/// against the SoC (existence, TAM assignment, counter capacity).
CorePlan resolveEntry(const TestPlan& plan, const CorePlan& entry, Soc& soc) {
  CorePlan r = entry;
  if (r.core_index < 0 || r.core_index >= soc.coreCount()) {
    throw std::invalid_argument("TestPlan: no core with index " +
                                std::to_string(r.core_index));
  }
  lintCoreModules(soc, r.core_index);
  const Soc::CoreTopology& topo = soc.topology(r.core_index);
  if (r.tam >= 0 && r.tam != topo.tam) {
    throw std::invalid_argument(
        "TestPlan: core " + std::to_string(r.core_index) +
        " is served by TAM " + std::to_string(topo.tam) + ", not TAM " +
        std::to_string(r.tam));
  }
  r.tam = topo.tam;
  if (r.patterns <= 0) r.patterns = plan.patterns;
  if (r.poll_budget <= 0) r.poll_budget = plan.poll_budget;
  if (r.poll_idle <= 0) r.poll_idle = plan.poll_idle;
  if (r.max_retries < 0) r.max_retries = plan.max_retries;
  if (r.coverage_target < 0.0) r.coverage_target = plan.coverage_target;
  if (!r.coverage_backend.has_value()) r.coverage_backend = plan.coverage_backend;
  if (r.coverage_workers <= 0) r.coverage_workers = plan.coverage_workers;
  if (r.max_shard_retries < 0) r.max_shard_retries = plan.max_shard_retries;
  if (r.backoff_base_ms < 0) r.backoff_base_ms = plan.backoff_base_ms;
  if (!r.degrade_on_failure.has_value()) {
    r.degrade_on_failure = plan.degrade_on_failure;
  }
  if (r.warmup_idle < 0) r.warmup_idle = r.patterns + 4;
  const int max_patterns =
      soc.core(r.core_index).controlUnit().maxPatterns();
  if (r.patterns < 1 || r.patterns > max_patterns) {
    throw std::invalid_argument(
        "TestPlan: core " + std::to_string(r.core_index) + " pattern budget " +
        std::to_string(r.patterns) + " outside [1, " +
        std::to_string(max_patterns) + "] (the WCDR count would truncate)");
  }
  return r;
}

std::vector<CorePlan> resolvePlan(const TestPlan& plan, Soc& soc) {
  std::vector<CorePlan> entries;
  if (plan.cores.empty()) {
    entries.reserve(static_cast<std::size_t>(soc.coreCount()));
    for (int c = 0; c < soc.coreCount(); ++c) {
      entries.push_back(resolveEntry(plan, CorePlan{.core_index = c}, soc));
    }
  } else {
    entries.reserve(plan.cores.size());
    std::vector<char> seen(static_cast<std::size_t>(soc.coreCount()), 0);
    for (const CorePlan& e : plan.cores) {
      entries.push_back(resolveEntry(plan, e, soc));
      // One entry per core: channels must never drive one wrapper twice
      // concurrently, and serially a second entry would retest, not extend.
      char& flag = seen[static_cast<std::size_t>(entries.back().core_index)];
      if (flag != 0) {
        throw std::invalid_argument(
            "TestPlan: core " + std::to_string(entries.back().core_index) +
            " listed more than once");
      }
      flag = 1;
    }
  }
  return entries;
}

/// Per-TAM concurrent-channel caps: plan-wide default overridden per TAM.
/// 0 = uncapped (bounded by the thread budget and the available work).
std::vector<int> resolveChannelLimits(const TestPlan& plan, Soc& soc) {
  if (plan.channels_per_tam < 0 ||
      plan.channels_per_tam > TestPlan::kMaxChannelsPerTam) {
    throw std::invalid_argument(
        "TestPlan: channels_per_tam " + std::to_string(plan.channels_per_tam) +
        " outside [0, " + std::to_string(TestPlan::kMaxChannelsPerTam) + "]");
  }
  std::vector<int> limits(static_cast<std::size_t>(soc.tamCount()),
                          plan.channels_per_tam);
  std::vector<char> overridden(limits.size(), 0);
  for (const TamChannelLimit& l : plan.tam_channels) {
    if (l.tam < 0 || l.tam >= soc.tamCount()) {
      throw std::invalid_argument("TestPlan: no TAM with index " +
                                  std::to_string(l.tam));
    }
    if (l.channels < 1 || l.channels > TestPlan::kMaxChannelsPerTam) {
      throw std::invalid_argument(
          "TestPlan: TAM " + std::to_string(l.tam) + " channel limit " +
          std::to_string(l.channels) + " outside [1, " +
          std::to_string(TestPlan::kMaxChannelsPerTam) + "]");
    }
    char& flag = overridden[static_cast<std::size_t>(l.tam)];
    if (flag != 0) {
      throw std::invalid_argument("TestPlan: TAM " + std::to_string(l.tam) +
                                  " channel limit listed more than once");
    }
    flag = 1;
    limits[static_cast<std::size_t>(l.tam)] = l.channels;
  }
  return limits;
}

/// The unit of placement: one core tree's entries, in plan order. Cores
/// sharing a top-level ancestor share a wrapper chain and clock domain, so
/// they must never be driven by two channels at once.
struct TreeGroup {
  int tam = 0;
  std::vector<std::size_t> entry_idx;
};

std::vector<TreeGroup> groupByTree(const std::vector<CorePlan>& entries,
                                   Soc& soc) {
  std::vector<TreeGroup> groups;
  std::vector<int> group_of_root(static_cast<std::size_t>(soc.coreCount()),
                                 -1);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Soc::CoreTopology& topo = soc.topology(entries[i].core_index);
    int& g = group_of_root[static_cast<std::size_t>(topo.root)];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.push_back(TreeGroup{topo.tam, {}});
    }
    groups[static_cast<std::size_t>(g)].entry_idx.push_back(i);
  }
  return groups;
}

/// Run one core with channel-level self-healing. A SessionChannelError
/// means the test-access plumbing (not the core) failed, so the suspect
/// channel is dropped, a fresh replica is opened, and the core is re-run
/// from the top — CoreReport attempts/polls reset with the channel, which
/// is what keeps a recovered core's fingerprint identical to a never-failed
/// run. After `entry.max_shard_retries` reopens the core is quarantined
/// (verdict kQuarantined, identity fields only, zero TCK/at-speed
/// accounting so campaign totals stay deterministic) — or, when the plan
/// sets degrade_on_failure=false, the error propagates and fails the
/// campaign. All other exception types propagate untouched.
CoreReport testCoreResilient(Soc& soc, std::unique_ptr<SessionChannel>& ch,
                             const CorePlan& entry, SessionObserver* observer,
                             std::mutex& observer_mu) {
  int failures = 0;
  for (;;) {
    if (ch == nullptr) ch = std::make_unique<SessionChannel>(soc, entry.tam);
    try {
      CoreReport r = ch->testCore(entry, observer, observer_mu);
      r.channel_failures = failures;
      return r;
    } catch (const SessionChannelError&) {
      ++failures;
      // The replica TAP/TAM state behind a failed channel is suspect;
      // reopening rebuilds it from the SoC, like respawning a dead worker.
      ch.reset();
      const bool will_retry = failures <= entry.max_shard_retries;
      if (observer != nullptr) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        observer->onChannelFailure(entry.core_index, failures, will_retry);
      }
      if (will_retry) {
        if (entry.backoff_base_ms > 0) {
          const int shift = std::min(failures - 1, 20);
          failpointSleepMs(std::min<std::int64_t>(
              static_cast<std::int64_t>(entry.backoff_base_ms) << shift, 250));
        }
        continue;
      }
      if (!entry.degrade_on_failure.value_or(true)) throw;
      CoreReport q;
      q.core_index = entry.core_index;
      q.core_name = soc.core(entry.core_index).name();
      q.tam = entry.tam;
      q.depth = soc.topology(entry.core_index).depth();
      q.patterns = entry.patterns;
      q.verdict = CoreVerdict::kQuarantined;
      q.channel_failures = failures;
      if (observer != nullptr) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        observer->onCoreQuarantined(entry.core_index, failures);
      }
      return q;
    }
  }
}

}  // namespace

SessionReport SocTestScheduler::run(const TestPlan& plan) {
  const std::vector<CorePlan> entries = resolvePlan(plan, soc_);
  const std::vector<int> limits = resolveChannelLimits(plan, soc_);
  const std::vector<TreeGroup> groups = groupByTree(entries, soc_);

  int threads = plan.num_threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : plan.num_threads;
  if (threads < 1) threads = 1;
  if (threads > static_cast<int>(groups.size()) && !groups.empty()) {
    threads = static_cast<int>(groups.size());
  }

  SessionReport report;
  report.soc_name = soc_.name();
  report.threads = threads;
  report.cores.resize(entries.size());

  std::mutex observer_mu;
  if (observer_ != nullptr) {
    observer_->onCampaignStart(static_cast<int>(entries.size()), threads);
  }
  const auto t0 = std::chrono::steady_clock::now();

  if (threads <= 1) {
    // Serial reference path: plan order, one lazily-opened channel per TAM.
    std::vector<std::unique_ptr<SessionChannel>> channels(
        static_cast<std::size_t>(soc_.tamCount()));
    for (std::size_t i = 0; i < entries.size(); ++i) {
      auto& ch = channels[static_cast<std::size_t>(entries[i].tam)];
      if (ch == nullptr) {
        ch = std::make_unique<SessionChannel>(soc_, entries[i].tam);
      }
      report.cores[i] =
          testCoreResilient(soc_, ch, entries[i], observer_, observer_mu);
    }
  } else {
    // Tree groups feed a worker pool; a worker claims the first unclaimed
    // group whose TAM still has a free channel slot. Each (worker, TAM)
    // pair opens its own channel, so concurrent channels on one TAM never
    // exceed min(limit, workers).
    std::mutex mu;
    std::condition_variable cv;
    std::vector<char> taken(groups.size(), 0);
    std::vector<int> active(static_cast<std::size_t>(soc_.tamCount()), 0);
    std::size_t untaken = groups.size();
    std::exception_ptr first_error;

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        std::vector<std::unique_ptr<SessionChannel>> channels(
            static_cast<std::size_t>(soc_.tamCount()));
        std::unique_lock<std::mutex> lock(mu);
        while (untaken > 0) {
          int pick = -1;
          for (std::size_t g = 0; g < groups.size(); ++g) {
            if (taken[g] != 0) continue;
            const auto tam = static_cast<std::size_t>(groups[g].tam);
            const int limit = limits[tam];
            if (limit > 0 && active[tam] >= limit) continue;
            pick = static_cast<int>(g);
            break;
          }
          if (pick < 0) {
            cv.wait(lock);
            continue;
          }
          const TreeGroup& group = groups[static_cast<std::size_t>(pick)];
          taken[static_cast<std::size_t>(pick)] = 1;
          --untaken;
          ++active[static_cast<std::size_t>(group.tam)];
          lock.unlock();
          try {
            auto& ch = channels[static_cast<std::size_t>(group.tam)];
            if (ch == nullptr) {
              ch = std::make_unique<SessionChannel>(soc_, group.tam);
            }
            for (const std::size_t i : group.entry_idx) {
              report.cores[i] = testCoreResilient(soc_, ch, entries[i],
                                                  observer_, observer_mu);
            }
            lock.lock();
          } catch (...) {
            lock.lock();
            if (!first_error) first_error = std::current_exception();
            // Drain the queue so every worker exits promptly.
            std::fill(taken.begin(), taken.end(), char{1});
            untaken = 0;
          }
          --active[static_cast<std::size_t>(group.tam)];
          cv.notify_all();
        }
      });
    }
    for (std::thread& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const CoreReport& c : report.cores) {
    report.total_tap_clocks += c.tap_clocks;
    report.total_bist_cycles += c.bist_cycles;
  }

  // Per-TAM slices, ascending TAM index, plan order within each.
  for (int t = 0; t < soc_.tamCount(); ++t) {
    TamReport tr;
    tr.tam_index = t;
    tr.name = soc_.tamName(t);
    int tam_groups = 0;
    for (const TreeGroup& g : groups) {
      if (g.tam == t) ++tam_groups;
    }
    if (tam_groups == 0) continue;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].tam != t) continue;
      tr.core_order.push_back(entries[i].core_index);
      tr.tap_clocks += report.cores[i].tap_clocks;
      tr.bist_cycles += report.cores[i].bist_cycles;
      tr.busy_seconds += report.cores[i].seconds;
    }
    const int limit = limits[static_cast<std::size_t>(t)];
    tr.channels = std::min(limit > 0 ? limit : threads,
                           std::min(tam_groups, threads));
    if (report.wall_seconds > 0.0 && tr.channels > 0) {
      tr.utilization =
          tr.busy_seconds / (report.wall_seconds * tr.channels);
    }
    report.tams.push_back(std::move(tr));
  }

  // Chip-level TCK accounting stays continuous with the serial session.
  soc_.tap().creditTcks(report.total_tap_clocks);

  if (observer_ != nullptr) observer_->onCampaignFinish(report);
  return report;
}

CoreReport SocTestScheduler::testCore(CorePlan entry) {
  TestPlan plan;
  plan.num_threads = 1;
  plan.cores.push_back(entry);
  return run(plan).cores.front();
}

}  // namespace corebist
