#include "core/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "tam/ate.hpp"
#include "tam/tam.hpp"

namespace corebist {
namespace {

/// Concretize a plan entry against the plan-wide defaults and validate it
/// against the SoC.
CorePlan resolveEntry(const TestPlan& plan, const CorePlan& entry, Soc& soc) {
  CorePlan r = entry;
  if (r.core_index < 0 || r.core_index >= soc.coreCount()) {
    throw std::invalid_argument("TestPlan: no core with index " +
                                std::to_string(r.core_index));
  }
  if (r.patterns <= 0) r.patterns = plan.patterns;
  if (r.poll_budget <= 0) r.poll_budget = plan.poll_budget;
  if (r.poll_idle <= 0) r.poll_idle = plan.poll_idle;
  if (r.max_retries < 0) r.max_retries = plan.max_retries;
  if (r.coverage_target < 0.0) r.coverage_target = plan.coverage_target;
  if (r.warmup_idle < 0) r.warmup_idle = r.patterns + 4;
  const int max_patterns =
      soc.core(r.core_index).controlUnit().maxPatterns();
  if (r.patterns < 1 || r.patterns > max_patterns) {
    throw std::invalid_argument(
        "TestPlan: core " + std::to_string(r.core_index) + " pattern budget " +
        std::to_string(r.patterns) + " outside [1, " +
        std::to_string(max_patterns) + "] (the WCDR count would truncate)");
  }
  return r;
}

std::vector<CorePlan> resolvePlan(const TestPlan& plan, Soc& soc) {
  std::vector<CorePlan> entries;
  if (plan.cores.empty()) {
    entries.reserve(static_cast<std::size_t>(soc.coreCount()));
    for (int c = 0; c < soc.coreCount(); ++c) {
      entries.push_back(resolveEntry(plan, CorePlan{.core_index = c}, soc));
    }
  } else {
    entries.reserve(plan.cores.size());
    std::vector<char> seen(static_cast<std::size_t>(soc.coreCount()), 0);
    for (const CorePlan& e : plan.cores) {
      entries.push_back(resolveEntry(plan, e, soc));
      // One entry per core: shards must never drive one wrapper twice
      // concurrently, and serially a second entry would retest, not extend.
      char& flag = seen[static_cast<std::size_t>(entries.back().core_index)];
      if (flag != 0) {
        throw std::invalid_argument(
            "TestPlan: core " + std::to_string(entries.back().core_index) +
            " listed more than once");
      }
      flag = 1;
    }
  }
  return entries;
}

/// One shard's private test-access stack: a TAP replica configured like the
/// chip TAP, a TAM routing the same wrappers under the same core indices,
/// and the ATE protocol over them. Channels touch only the wrapper of the
/// core they have selected, so different channels may run concurrently as
/// long as no two test the same core at once.
class SessionChannel {
 public:
  explicit SessionChannel(Soc& soc)
      : soc_(soc),
        tap_(soc.tap().irWidth(), soc.tap().idcode()),
        tam_(tap_),
        ate_(tap_) {
    for (int c = 0; c < soc.coreCount(); ++c) {
      WrappedCore* core = &soc.core(c);
      tam_.attach(&core->wrapper(), [core] { core->systemClockTick(); });
    }
  }

  CoreReport testCore(const CorePlan& p, SessionObserver* observer,
                      std::mutex& observer_mu);

 private:
  void notify(std::mutex& mu, SessionObserver* obs, auto&& call) {
    if (obs == nullptr) return;
    const std::lock_guard<std::mutex> lock(mu);
    call(*obs);
  }
  void measureCoverage(const WrappedCore& core, const CorePlan& p,
                       CoreReport& report);

  Soc& soc_;
  TapController tap_;
  Tam tam_;
  P1500Ate ate_;
};

CoreReport SessionChannel::testCore(const CorePlan& p,
                                    SessionObserver* observer,
                                    std::mutex& observer_mu) {
  CoreReport report;
  report.core_index = p.core_index;
  report.patterns = p.patterns;
  WrappedCore& core = soc_.core(p.core_index);
  report.core_name = core.name();

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t tck0 = tap_.tckCount();

  for (int attempt = 1; attempt <= 1 + p.max_retries; ++attempt) {
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreStart(p.core_index, attempt);
    });
    ++report.attempts;

    ate_.reset();
    ate_.selectCore(p.core_index);
    ate_.sendCommand(BistCommand::kReset, 0);
    ate_.sendCommand(BistCommand::kLoadCount,
                     static_cast<std::uint16_t>(p.patterns));
    ate_.sendCommand(BistCommand::kStart, 0);

    // At-speed run while the ATE idles the TAP.
    ate_.runIdle(static_cast<std::size_t>(p.warmup_idle));
    report.bist_cycles += static_cast<std::size_t>(p.warmup_idle);

    // Poll status until end_test or the budget runs out.
    ate_.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
    bool end_test = false;
    for (int poll = 0; poll < p.poll_budget && !end_test; ++poll) {
      const std::uint16_t status = ate_.readWdr();
      ++report.polls;
      end_test = (status & P1500Ate::kStatusEndTest) != 0;
      if (!end_test) {
        ate_.runIdle(static_cast<std::size_t>(p.poll_idle));
        report.bist_cycles += static_cast<std::size_t>(p.poll_idle);
      }
    }
    if (end_test) {
      report.end_test_seen = true;
      break;
    }
    ++report.timeouts;
    notify(observer_mu, observer, [&](SessionObserver& o) {
      o.onCoreTimeout(p.core_index, attempt, attempt <= p.max_retries);
    });
  }

  if (report.end_test_seen) {
    // Upload each MISR signature through the Output Selector.
    report.verdict = CoreVerdict::kPass;
    for (int m = 0; m < core.moduleCount(); ++m) {
      ate_.sendCommand(BistCommand::kSelectResult,
                       static_cast<std::uint16_t>(m));
      ModuleVerdict verdict;
      verdict.signature = ate_.readWdr();
      verdict.golden = core.goldenSignature(m, p.patterns);
      if (!verdict.pass()) report.verdict = CoreVerdict::kSignatureMismatch;
      report.modules.push_back(verdict);
    }
    if (p.coverage_target > 0.0) measureCoverage(core, p, report);
  } else {
    report.verdict = CoreVerdict::kTimeout;
  }

  report.tap_clocks = tap_.tckCount() - tck0;
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  notify(observer_mu, observer,
         [&](SessionObserver& o) { o.onCoreFinish(report); });
  return report;
}

void SessionChannel::measureCoverage(const WrappedCore& core,
                                     const CorePlan& p, CoreReport& report) {
  report.coverage_target = p.coverage_target;
  for (int m = 0; m < core.moduleCount(); ++m) {
    const FaultUniverse u = enumerateStuckAt(core.engine().module(m));
    // One fsim worker: the shard itself is the unit of parallelism.
    const FaultSimResult r =
        core.engine().signatureCoverage(m, u.faults, p.patterns, 1);
    const double coverage = r.misrCoverage();
    report.modules[static_cast<std::size_t>(m)].coverage = coverage;
    if (coverage < p.coverage_target) report.coverage_met = false;
  }
}

}  // namespace

SessionReport SocTestScheduler::run(const TestPlan& plan) {
  const std::vector<CorePlan> entries = resolvePlan(plan, soc_);
  int threads = plan.num_threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : plan.num_threads;
  if (threads < 1) threads = 1;
  if (threads > static_cast<int>(entries.size()) && !entries.empty()) {
    threads = static_cast<int>(entries.size());
  }

  SessionReport report;
  report.soc_name = soc_.name();
  report.threads = threads;
  report.cores.resize(entries.size());

  std::mutex observer_mu;
  if (observer_ != nullptr) {
    observer_->onCampaignStart(static_cast<int>(entries.size()), threads);
  }
  const auto t0 = std::chrono::steady_clock::now();

  if (threads <= 1) {
    SessionChannel channel(soc_);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      report.cores[i] = channel.testCore(entries[i], observer_, observer_mu);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        try {
          SessionChannel channel(soc_);
          for (std::size_t i = next.fetch_add(1); i < entries.size();
               i = next.fetch_add(1)) {
            report.cores[i] =
                channel.testCore(entries[i], observer_, observer_mu);
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
          next.store(entries.size());  // drain the queue
        }
      });
    }
    for (std::thread& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const CoreReport& c : report.cores) {
    report.total_tap_clocks += c.tap_clocks;
    report.total_bist_cycles += c.bist_cycles;
  }
  // Chip-level TCK accounting stays continuous with the serial session.
  soc_.tap().creditTcks(report.total_tap_clocks);

  if (observer_ != nullptr) observer_->onCampaignFinish(report);
  return report;
}

CoreReport SocTestScheduler::testCore(CorePlan entry) {
  TestPlan plan;
  plan.num_threads = 1;
  plan.cores.push_back(entry);
  return run(plan).cores.front();
}

}  // namespace corebist
