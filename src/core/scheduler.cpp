#include "core/scheduler.hpp"

#include "service/artifacts.hpp"
#include "service/service.hpp"

namespace corebist {

SocTestScheduler::SocTestScheduler(Soc& soc, SessionObserver* observer)
    : soc_(soc),
      observer_(observer),
      artifacts_(std::make_shared<ArtifactStore>()) {}

SessionReport SocTestScheduler::run(const TestPlan& plan) {
  // A per-call service sized to the plan's thread budget, sharing the
  // scheduler-lifetime artifact store. No quotas: the one-shot path admits
  // exactly one campaign, so admission can only fail on plan validation
  // (std::invalid_argument out of submit, same as always).
  CampaignServiceConfig cfg;
  cfg.workers = resolvePlanWorkers(plan);
  cfg.artifacts = artifacts_;
  CampaignService service(soc_, cfg);
  SubmitOptions opts;
  opts.observer = observer_;
  return service.await(service.submit(plan, opts));
}

PlanForecast SocTestScheduler::predict(const TestPlan& plan) {
  const CampaignLayout layout =
      layoutCampaign(plan, soc_, resolvePlanWorkers(plan), artifacts_.get());
  return forecastFromLayout(layout, soc_, plan.placement);
}

CoreReport SocTestScheduler::testCore(CorePlan entry) {
  TestPlan plan;
  plan.num_threads = 1;
  plan.cores.push_back(entry);
  return run(plan).cores.front();
}

}  // namespace corebist
