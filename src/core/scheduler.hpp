// Plan-driven concurrent SoC test campaigns (the sharded Fig. 1 ATE).
//
// SocTestScheduler consumes a TestPlan and shards its core entries across
// worker threads. Each shard owns a private session channel — a TAP
// controller replica, a TAM routing the same wrappers, and the P1500 ATE
// protocol over them — so golden-signature computation and at-speed BIST
// emulation for different cores run concurrently. Cores are independent
// after Soc::attachCore (all mutable per-core state lives in the wrapper /
// control unit / engine of that core, and a channel only ever cycles the
// wrapper of its selected core), so the only cross-shard aggregation is
// TCK accounting: per-core counts are summed into the SessionReport and
// credited back to the chip TAP.
//
// Determinism: every CoreReport is a function of (core state, plan entry)
// alone — each attempt starts from TAP reset and a BIST kReset — so
// sharded campaigns are byte-identical to the serial path under any thread
// count (SessionReport::fingerprint(); enforced by
// tests/soc_scheduler_test.cpp).
#ifndef COREBIST_CORE_SCHEDULER_HPP_
#define COREBIST_CORE_SCHEDULER_HPP_

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"

namespace corebist {

class SocTestScheduler {
 public:
  /// `observer` (optional) receives serialized progress callbacks; it must
  /// outlive the scheduler's run() calls.
  explicit SocTestScheduler(Soc& soc, SessionObserver* observer = nullptr)
      : soc_(soc), observer_(observer) {}

  /// Run the campaign. Throws std::invalid_argument for plans that name
  /// unknown cores or pattern budgets beyond a core's counter capacity.
  [[nodiscard]] SessionReport run(const TestPlan& plan);

  /// Single-core convenience: one entry, one shard, plan defaults for any
  /// sentinel field.
  [[nodiscard]] CoreReport testCore(CorePlan entry);

 private:
  Soc& soc_;
  SessionObserver* observer_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SCHEDULER_HPP_
