// Plan-driven concurrent SoC test campaigns (the sharded Fig. 1 ATE).
//
// SocTestScheduler consumes a TestPlan and places its core entries onto
// TAM channels (core/session_channel.hpp): entries are grouped by core
// *tree* (cores sharing a top-level ancestor share one wrapper chain and
// one clock domain, so a tree is the unit of placement and runs in plan
// order on one channel), groups on the same TAM run on up to that TAM's
// channel limit concurrently, and groups on different TAMs are fully
// independent. Worker threads — bounded by TestPlan::num_threads — drive
// the channels; golden-signature computation and at-speed BIST emulation
// for different trees overlap. The only cross-channel aggregation is TCK
// accounting: per-core counts are summed into the SessionReport (overall
// and per TAM) and credited back to the chip TAP.
//
// Determinism: every CoreReport is a function of (core-tree state, plan
// entry) alone — each attempt starts from TAP reset and a BIST kReset, and
// a tree's entries execute in plan order on one channel — so campaigns are
// byte-identical to the serial path under any thread count and any TAM /
// channel-limit configuration (SessionReport::fingerprint(); enforced by
// tests/soc_scheduler_test.cpp and tests/hier_tam_test.cpp).
#ifndef COREBIST_CORE_SCHEDULER_HPP_
#define COREBIST_CORE_SCHEDULER_HPP_

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"

namespace corebist {

class SocTestScheduler {
 public:
  /// `observer` (optional) receives serialized progress callbacks; it must
  /// outlive the scheduler's run() calls.
  explicit SocTestScheduler(Soc& soc, SessionObserver* observer = nullptr)
      : soc_(soc), observer_(observer) {}

  /// Run the campaign. Throws std::invalid_argument for plans that name
  /// unknown cores, assign a core to a TAM that does not serve it, carry
  /// invalid per-TAM channel limits, or request pattern budgets beyond a
  /// core's counter capacity.
  [[nodiscard]] SessionReport run(const TestPlan& plan);

  /// Single-core convenience: one entry, one shard, plan defaults for any
  /// sentinel field.
  [[nodiscard]] CoreReport testCore(CorePlan entry);

 private:
  Soc& soc_;
  SessionObserver* observer_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SCHEDULER_HPP_
