// Plan-driven concurrent SoC test campaigns (the sharded Fig. 1 ATE).
//
// SocTestScheduler consumes a TestPlan and places its core entries onto
// TAM channels (core/session_channel.hpp): entries are grouped by core
// *tree* (cores sharing a top-level ancestor share one wrapper chain and
// one clock domain, so a tree is the unit of placement and runs in plan
// order on one channel), groups on the same TAM run on up to that TAM's
// channel limit concurrently, and groups on different TAMs are fully
// independent. Worker threads — bounded by TestPlan::num_threads — drive
// the channels; golden-signature computation and at-speed BIST emulation
// for different trees overlap. The only cross-channel aggregation is TCK
// accounting: per-core counts are summed into the SessionReport (overall
// and per TAM) and credited back to the chip TAP.
//
// Determinism: every CoreReport is a function of (core-tree state, plan
// entry) alone — each attempt starts from TAP reset and a BIST kReset, and
// a tree's entries execute in plan order on one channel — so campaigns are
// byte-identical to the serial path under any thread count and any TAM /
// channel-limit configuration (SessionReport::fingerprint(); enforced by
// tests/soc_scheduler_test.cpp and tests/hier_tam_test.cpp).
#ifndef COREBIST_CORE_SCHEDULER_HPP_
#define COREBIST_CORE_SCHEDULER_HPP_

#include <string>
#include <vector>

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"

namespace corebist {

/// Predicted cost of one plan entry (what-if output; plan order).
struct CoreForecast {
  int core_index = -1;
  int tam = 0;
  int depth = 0;
  std::size_t predicted_tap_clocks = 0;  // P1500Ate cost-model session cost
  std::size_t predicted_bist_cycles = 0;
};

/// Predicted placement for one TAM: the channel loads the scheduler would
/// apply (ChannelLoad::actual_tcks stays 0 — nothing ran).
struct TamForecast {
  int tam_index = 0;
  std::string name;
  int channels = 1;  // concurrent channels the placement uses
  std::vector<ChannelLoad> channel_loads;  // ascending channel ordinal
  std::size_t predicted_tap_clocks = 0;    // summed over the TAM's cores
  std::size_t predicted_makespan_tcks = 0;  // max channel load
};

/// What-if result of SocTestScheduler::predict: the placement a plan would
/// get and its predicted makespan, computed purely from the P1500Ate cost
/// model — no channel is opened, no core is clocked. The makespan assumes
/// one worker per channel; TestPlan::num_threads bounds real concurrency.
struct PlanForecast {
  PlacementPolicy placement = PlacementPolicy::kPlanOrder;
  std::vector<CoreForecast> cores;  // plan order
  std::vector<TamForecast> tams;    // ascending TAM index; only TAMs with work
  std::size_t predicted_total_tcks = 0;
  std::size_t predicted_makespan_tcks = 0;  // max over every channel
};

class SocTestScheduler {
 public:
  /// `observer` (optional) receives serialized progress callbacks; it must
  /// outlive the scheduler's run() calls.
  explicit SocTestScheduler(Soc& soc, SessionObserver* observer = nullptr)
      : soc_(soc), observer_(observer) {}

  /// Run the campaign. Throws std::invalid_argument for plans that name
  /// unknown cores, assign a core to a TAM that does not serve it, carry
  /// invalid per-TAM channel limits, or request pattern budgets beyond a
  /// core's counter capacity.
  [[nodiscard]] SessionReport run(const TestPlan& plan);

  /// Validate `plan` and predict its placement and makespan without running
  /// anything (the what-if API): same resolution, lint gating and placement
  /// pass as run(), same rejections, zero TCKs spent. Forecast TCK numbers
  /// are exact for cores whose dwell covers the whole run (the default
  /// warmup) and lower bounds otherwise.
  [[nodiscard]] PlanForecast predict(const TestPlan& plan);

  /// Single-core convenience: one entry, one shard, plan defaults for any
  /// sentinel field.
  [[nodiscard]] CoreReport testCore(CorePlan entry);

 private:
  Soc& soc_;
  SessionObserver* observer_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SCHEDULER_HPP_
