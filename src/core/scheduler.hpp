// Plan-driven SoC test campaigns (the sharded Fig. 1 ATE) — one-shot
// facade over the resident CampaignService.
//
// SocTestScheduler keeps the original blocking API: run(plan) executes one
// campaign and returns its SessionReport. Since the service refactor it is
// a thin facade — resolution, placement, channel execution and aggregation
// all live in src/service/ (layout.hpp + service.hpp); run() spins up a
// per-call CampaignService whose worker budget equals the plan's
// num_threads, submits the plan as the only campaign, and awaits it. What
// the facade adds over calling the service directly is persistence of the
// *artifact* layer: the scheduler owns an ArtifactStore shared across its
// run() calls, so repeated campaigns on one scheduler skip re-deriving
// lint, fault universes, golden signatures and coverage (all
// fingerprint-invisible — see service/artifacts.hpp).
//
// Determinism: every CoreReport is a function of (core-tree state, plan
// entry) alone — each attempt starts from TAP reset and a BIST kReset, and
// a tree's entries execute in plan order on one channel — so campaigns are
// byte-identical to the serial path under any thread count, any TAM /
// channel-limit configuration and any service pool size
// (SessionReport::fingerprint(); enforced by tests/soc_scheduler_test.cpp,
// tests/hier_tam_test.cpp and tests/service_test.cpp).
#ifndef COREBIST_CORE_SCHEDULER_HPP_
#define COREBIST_CORE_SCHEDULER_HPP_

#include <memory>

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"
#include "service/layout.hpp"

namespace corebist {

class ArtifactStore;

class SocTestScheduler {
 public:
  /// `observer` (optional) receives serialized progress callbacks; it must
  /// outlive the scheduler's run() calls.
  explicit SocTestScheduler(Soc& soc, SessionObserver* observer = nullptr);

  /// Run the campaign. Throws std::invalid_argument for plans that name
  /// unknown cores, assign a core to a TAM that does not serve it, carry
  /// invalid per-TAM channel limits, or request pattern budgets beyond a
  /// core's counter capacity.
  [[nodiscard]] SessionReport run(const TestPlan& plan);

  /// Validate `plan` and predict its placement and makespan without running
  /// anything (the what-if API): same resolution, lint gating and placement
  /// pass as run(), same rejections, zero TCKs spent. Forecast TCK numbers
  /// are exact for cores whose dwell covers the whole run (the default
  /// warmup) and lower bounds otherwise.
  [[nodiscard]] PlanForecast predict(const TestPlan& plan);

  /// Single-core convenience: one entry, one shard, plan defaults for any
  /// sentinel field.
  [[nodiscard]] CoreReport testCore(CorePlan entry);

  /// The artifact store shared across this scheduler's campaigns.
  [[nodiscard]] const std::shared_ptr<ArtifactStore>& artifacts() const noexcept {
    return artifacts_;
  }

 private:
  Soc& soc_;
  SessionObserver* observer_;
  std::shared_ptr<ArtifactStore> artifacts_;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SCHEDULER_HPP_
