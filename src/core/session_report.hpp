// Structured campaign results for the SoC session layer.
//
// Replaces the ad-hoc CoreTestReport: per-core verdicts distinguish a
// signature mismatch from a status-poll timeout, retry/poll/TCK/at-speed
// accounting is explicit, and whole-campaign reports serialize to JSON
// (bench_soc -> BENCH_soc.json, CI artifact). Everything in a report except
// wall-clock timing is a deterministic function of (SoC state, TestPlan);
// fingerprint() serializes exactly that subset, which is how the scheduler
// tests prove sharded and serial campaigns byte-identical.
#ifndef COREBIST_CORE_SESSION_REPORT_HPP_
#define COREBIST_CORE_SESSION_REPORT_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace corebist {

/// Signature comparison for one module of a core (one MISR upload).
struct ModuleVerdict {
  std::uint16_t signature = 0;
  std::uint16_t golden = 0;
  /// Signature-qualified stuck-at coverage (%) including aliasing losses;
  /// < 0 when the plan did not request coverage measurement.
  double coverage = -1.0;
  [[nodiscard]] bool pass() const noexcept { return signature == golden; }
};

/// How a core's test concluded. kTimeout means end_test was never observed
/// within the plan's poll budget (on any attempt) — the signatures were
/// never uploaded and the modules list is empty. kQuarantined means the
/// core's session *channel* kept failing past the plan's retry budget
/// (TestPlan::max_shard_retries) and the scheduler excluded the core to
/// protect the campaign — the core itself was never conclusively tested,
/// so its record carries identity and `channel_failures` only.
enum class CoreVerdict : std::uint8_t {
  kPass,
  kSignatureMismatch,
  kTimeout,
  kQuarantined,
};

[[nodiscard]] std::string_view coreVerdictName(CoreVerdict v);

/// JSON string-literal escaping, applied to every string field the report
/// exporters emit: `"` and `\` get a backslash, control characters become
/// \n/\t/\r/\uXXXX. Without it a core or TAM named `say "hi"\now` would
/// serialize to invalid JSON (and could smuggle keys into the report).
[[nodiscard]] std::string jsonEscaped(std::string_view s);

/// Finite-guard companion to jsonEscaped, applied to every double the JSON
/// emitters format with printf: `%f` serializes inf/NaN as `inf`/`nan`,
/// which is not JSON. A zero-wall-time campaign (coarse clock, trivial
/// plan) or a zero-duration bench ratio otherwise poisons the whole
/// artifact; non-finite values clamp to 0.0. (LintReport and ResilienceLog
/// emit no floating-point fields — audited; route any future ones through
/// this guard too.)
[[nodiscard]] double jsonFinite(double v) noexcept;

/// Complete record of one core's campaign entry (all attempts).
struct CoreReport {
  int core_index = -1;
  std::string core_name;
  int tam = 0;    // TAM channel the core was tested through
  int depth = 0;  // nesting depth (0 = top-level, >0 = hierarchical core)
  CoreVerdict verdict = CoreVerdict::kTimeout;
  bool end_test_seen = false;
  int patterns = 0;        // per-attempt pattern budget from the plan
  int attempts = 0;        // protocol runs (1 + retries actually used)
  int timeouts = 0;        // attempts that ended without end_test
  int polls = 0;           // status-register reads across all attempts
  std::vector<ModuleVerdict> modules;
  std::size_t tap_clocks = 0;   // TCKs this core's session cost
  std::size_t bist_cycles = 0;  // commanded Run-Test/Idle (at-speed) clocks
  double seconds = 0.0;         // wall time (excluded from fingerprints)
  double coverage_target = 0.0;  // 0 = no target requested
  bool coverage_met = true;      // false only when a target was missed
  /// Session-channel failures this core survived (transient) or succumbed
  /// to (kQuarantined). How often infrastructure fails is an execution
  /// artifact like utilization, so fingerprints exclude it; a core that
  /// recovered from transient channel failures fingerprints identically to
  /// a never-failed run.
  int channel_failures = 0;
  [[nodiscard]] bool pass() const noexcept {
    return verdict == CoreVerdict::kPass && coverage_met;
  }
  [[nodiscard]] std::string summary() const;
};

/// JSON export of one core record — the same object shape SessionReport's
/// "cores" array carries, emitted standalone so the service layer can
/// stream per-core results incrementally while a campaign runs.
/// `include_timing=false` yields the fingerprint subset.
[[nodiscard]] std::string coreReportJson(const CoreReport& report,
                                         bool include_timing = true);

/// One TAM channel's share of a campaign under the scheduler's placement:
/// which cores it ran serially (execution order) and its predicted vs
/// actual TCK load. Placement is a scheduling artifact like utilization,
/// so fingerprints exclude the whole structure.
struct ChannelLoad {
  int channel = 0;              // channel ordinal within the TAM
  std::vector<int> cores;       // core indices, in execution order
  std::size_t predicted_tcks = 0;  // P1500Ate cost-model prediction
  std::size_t actual_tcks = 0;     // measured tap_clocks, summed
};

/// Per-TAM slice of a campaign: which cores ran over this TAM (in plan
/// order — deterministic, unlike completion order), the TCK/at-speed
/// totals they cost, and how busy the TAM's channels were. The channel
/// cap, utilization and the predicted/actual placement accounting depend
/// on scheduling, so fingerprints exclude them (like `threads` and wall
/// times).
struct TamReport {
  int tam_index = 0;
  std::string name;
  int channels = 1;            // concurrent-channel cap applied
  std::vector<int> core_order;  // core indices in plan order
  std::size_t tap_clocks = 0;
  std::size_t bist_cycles = 0;
  double busy_seconds = 0.0;  // summed per-core wall time on this TAM
  /// busy_seconds / (campaign wall * channels): 1.0 = the TAM's channels
  /// never starved.
  double utilization = 0.0;
  // ---- placement accounting (timing-gated, like utilization) ----
  std::vector<ChannelLoad> channel_loads;  // ascending channel ordinal
  std::size_t predicted_tap_clocks = 0;    // summed over the TAM's cores
  /// Max predicted / actual channel load: the TAM's serialization floor
  /// under the applied placement (one worker per channel assumed).
  std::size_t predicted_makespan_tcks = 0;
  std::size_t actual_makespan_tcks = 0;
};

/// Whole-campaign report: per-core records in plan order plus aggregated
/// TCK / at-speed accounting and per-TAM slices.
struct SessionReport {
  std::string soc_name;
  int threads = 1;  // worker threads the campaign actually ran on
  std::vector<CoreReport> cores;
  std::vector<TamReport> tams;  // ascending TAM index; only TAMs that ran
  std::size_t total_tap_clocks = 0;
  std::size_t total_bist_cycles = 0;
  double wall_seconds = 0.0;
  // ---- placement accounting (timing-gated, excluded from fingerprint) ----
  /// placementPolicyName() of the applied policy; empty for reports not
  /// built by the scheduler.
  std::string placement;
  /// Max predicted / actual channel load across every TAM channel: the
  /// campaign's serialization floor assuming one worker per channel.
  std::size_t predicted_makespan_tcks = 0;
  std::size_t actual_makespan_tcks = 0;

  [[nodiscard]] bool pass() const noexcept;
  [[nodiscard]] int passCount() const noexcept;
  /// First record for `core_index`, or nullptr when the plan skipped it.
  [[nodiscard]] const CoreReport* core(int core_index) const noexcept;
  [[nodiscard]] std::string summary() const;
  /// JSON export (timing included). Stable key order.
  [[nodiscard]] std::string toJson() const;
  /// Canonical serialization of the deterministic fields only (no wall
  /// times, no thread count): equal fingerprints <=> identical campaign
  /// outcomes, regardless of sharding.
  [[nodiscard]] std::string fingerprint() const;
};

}  // namespace corebist

#endif  // COREBIST_CORE_SESSION_REPORT_HPP_
