#include "core/session_report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace corebist {

double jsonFinite(double v) noexcept { return std::isfinite(v) ? v : 0.0; }

std::string jsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04X",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view coreVerdictName(CoreVerdict v) {
  switch (v) {
    case CoreVerdict::kPass:
      return "pass";
    case CoreVerdict::kSignatureMismatch:
      return "signature_mismatch";
    case CoreVerdict::kTimeout:
      return "timeout";
    case CoreVerdict::kQuarantined:
      return "quarantined";
  }
  return "?";
}

std::string CoreReport::summary() const {
  std::ostringstream os;
  os << "core " << core_index;
  if (!core_name.empty()) os << " (" << core_name << ")";
  os << ": ";
  if (pass()) {
    os << "PASS";
  } else if (verdict == CoreVerdict::kQuarantined) {
    os << "QUARANTINED after " << channel_failures << " channel failure(s)";
    return os.str();
  } else if (verdict == CoreVerdict::kTimeout) {
    os << "TIMEOUT after " << attempts << " attempt(s)";
  } else if (verdict == CoreVerdict::kSignatureMismatch) {
    os << "FAIL";
  } else {
    os << "FAIL (coverage below target)";
  }
  if (!modules.empty()) {
    os << " (";
    for (std::size_t m = 0; m < modules.size(); ++m) {
      if (m != 0) os << ", ";
      os << "M" << m << (modules[m].pass() ? " ok" : " MISMATCH");
    }
    os << ")";
  }
  os << ", " << bist_cycles << " at-speed cycles, " << tap_clocks << " TCKs";
  if (attempts > 1) os << ", " << attempts << " attempts";
  return os.str();
}

bool SessionReport::pass() const noexcept {
  for (const CoreReport& c : cores) {
    if (!c.pass()) return false;
  }
  return true;
}

int SessionReport::passCount() const noexcept {
  int n = 0;
  for (const CoreReport& c : cores) {
    if (c.pass()) ++n;
  }
  return n;
}

const CoreReport* SessionReport::core(int core_index) const noexcept {
  for (const CoreReport& c : cores) {
    if (c.core_index == core_index) return &c;
  }
  return nullptr;
}

std::string SessionReport::summary() const {
  std::ostringstream os;
  os << "campaign";
  if (!soc_name.empty()) os << " " << soc_name;
  os << ": " << passCount() << "/" << cores.size() << " cores PASS, "
     << total_tap_clocks << " TCKs, " << total_bist_cycles
     << " at-speed cycles";
  char buf[64];
  std::snprintf(buf, sizeof buf, ", %.3fs on %d shard(s)", wall_seconds,
                threads);
  os << buf;
  return os.str();
}

namespace {

void writeCore(std::ostringstream& os, const CoreReport& c,
               bool include_timing) {
  char buf[64];
  os << "{\"core\": " << c.core_index << ", \"name\": \""
     << jsonEscaped(c.core_name) << "\", \"tam\": " << c.tam
     << ", \"depth\": " << c.depth << ", \"verdict\": \""
     << jsonEscaped(coreVerdictName(c.verdict))
     << "\", \"pass\": " << (c.pass() ? "true" : "false");
  if (c.verdict == CoreVerdict::kQuarantined) {
    // The core was never conclusively tested: identity + verdict only.
    // channel_failures depends on where the infrastructure broke, so it is
    // timing-gated (out of the fingerprint), like utilization.
    if (include_timing) {
      os << ", \"channel_failures\": " << c.channel_failures;
      std::snprintf(buf, sizeof buf, ", \"seconds\": %.4f",
                    jsonFinite(c.seconds));
      os << buf;
    }
    os << ", \"modules\": []}";
    return;
  }
  if (include_timing && c.channel_failures > 0) {
    os << ", \"channel_failures\": " << c.channel_failures;
  }
  os << ", \"end_test_seen\": " << (c.end_test_seen ? "true" : "false")
     << ", \"patterns\": " << c.patterns << ", \"attempts\": " << c.attempts
     << ", \"timeouts\": " << c.timeouts << ", \"polls\": " << c.polls
     << ", \"tap_clocks\": " << c.tap_clocks
     << ", \"bist_cycles\": " << c.bist_cycles;
  if (include_timing) {
    std::snprintf(buf, sizeof buf, ", \"seconds\": %.4f",
                  jsonFinite(c.seconds));
    os << buf;
  }
  if (c.coverage_target > 0.0) {
    std::snprintf(buf, sizeof buf, ", \"coverage_target\": %.2f",
                  jsonFinite(c.coverage_target));
    os << buf << ", \"coverage_met\": " << (c.coverage_met ? "true" : "false");
  }
  os << ", \"modules\": [";
  for (std::size_t m = 0; m < c.modules.size(); ++m) {
    const ModuleVerdict& v = c.modules[m];
    if (m != 0) os << ", ";
    std::snprintf(buf, sizeof buf,
                  "{\"signature\": \"0x%04X\", \"golden\": \"0x%04X\"",
                  v.signature, v.golden);
    os << buf << ", \"pass\": " << (v.pass() ? "true" : "false");
    if (v.coverage >= 0.0) {
      std::snprintf(buf, sizeof buf, ", \"coverage\": %.3f",
                    jsonFinite(v.coverage));
      os << buf;
    }
    os << "}";
  }
  os << "]}";
}

std::string writeReport(const SessionReport& r, bool include_timing) {
  std::ostringstream os;
  os << "{\n  \"soc\": \"" << jsonEscaped(r.soc_name) << "\",\n";
  os << "  \"pass\": " << (r.pass() ? "true" : "false") << ",\n";
  if (include_timing) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", jsonFinite(r.wall_seconds));
    os << "  \"threads\": " << r.threads << ",\n  \"wall_seconds\": " << buf
       << ",\n";
    if (!r.placement.empty()) {
      os << "  \"placement\": \"" << jsonEscaped(r.placement) << "\",\n"
         << "  \"predicted_makespan_tcks\": " << r.predicted_makespan_tcks
         << ",\n  \"actual_makespan_tcks\": " << r.actual_makespan_tcks
         << ",\n";
    }
  }
  os << "  \"total_tap_clocks\": " << r.total_tap_clocks << ",\n";
  os << "  \"total_bist_cycles\": " << r.total_bist_cycles << ",\n";
  os << "  \"tams\": [\n";
  for (std::size_t t = 0; t < r.tams.size(); ++t) {
    const TamReport& tr = r.tams[t];
    os << "    {\"tam\": " << tr.tam_index << ", \"name\": \""
       << jsonEscaped(tr.name) << "\", \"cores\": [";
    for (std::size_t c = 0; c < tr.core_order.size(); ++c) {
      if (c != 0) os << ", ";
      os << tr.core_order[c];
    }
    os << "], \"tap_clocks\": " << tr.tap_clocks
       << ", \"bist_cycles\": " << tr.bist_cycles;
    if (include_timing) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    ", \"channels\": %d, \"busy_seconds\": %.4f, "
                    "\"utilization\": %.3f",
                    tr.channels, jsonFinite(tr.busy_seconds),
                    jsonFinite(tr.utilization));
      os << buf;
      if (!tr.channel_loads.empty()) {
        os << ", \"predicted_tap_clocks\": " << tr.predicted_tap_clocks
           << ", \"predicted_makespan_tcks\": " << tr.predicted_makespan_tcks
           << ", \"actual_makespan_tcks\": " << tr.actual_makespan_tcks
           << ", \"channel_loads\": [";
        for (std::size_t ch = 0; ch < tr.channel_loads.size(); ++ch) {
          const ChannelLoad& cl = tr.channel_loads[ch];
          if (ch != 0) os << ", ";
          os << "{\"channel\": " << cl.channel << ", \"cores\": [";
          for (std::size_t c = 0; c < cl.cores.size(); ++c) {
            if (c != 0) os << ", ";
            os << cl.cores[c];
          }
          os << "], \"predicted_tcks\": " << cl.predicted_tcks
             << ", \"actual_tcks\": " << cl.actual_tcks << "}";
        }
        os << "]";
      }
    }
    os << "}" << (t + 1 < r.tams.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"cores\": [\n";
  for (std::size_t i = 0; i < r.cores.size(); ++i) {
    os << "    ";
    writeCore(os, r.cores[i], include_timing);
    os << (i + 1 < r.cores.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

std::string coreReportJson(const CoreReport& report, bool include_timing) {
  std::ostringstream os;
  writeCore(os, report, include_timing);
  return os.str();
}

std::string SessionReport::toJson() const { return writeReport(*this, true); }

std::string SessionReport::fingerprint() const {
  return writeReport(*this, false);
}

}  // namespace corebist
