// Declarative SoC test campaigns.
//
// A TestPlan says *what* to test — which cores, with what pattern budgets,
// status-poll allowances, retry-on-timeout policy and optional coverage
// targets — and with how much access-level parallelism (worker threads,
// per-TAM channel limits); the SocTestScheduler decides *how*. This is the
// scheduling layer the SOC-test literature treats as first class above the
// access mechanism: the access protocol (TAP -> TAM -> P1500, flat or
// hierarchical) is fixed, the campaign around it is data.
//
// Per-core entries leave fields at their sentinel value (<= 0 / negative)
// to inherit the plan-wide defaults, so a plan that tests every core the
// same way is just `TestPlan{}.withPatterns(1024)`.
#ifndef COREBIST_CORE_TEST_PLAN_HPP_
#define COREBIST_CORE_TEST_PLAN_HPP_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "fault/backend.hpp"

namespace corebist {

/// How the scheduler places core trees onto a TAM's concurrent channels.
/// Placement never changes campaign *outcomes* — every CoreReport is a
/// function of (core-tree state, plan entry) alone, so fingerprints are
/// byte-identical under either policy — only wall-clock shape and the
/// predicted/actual load split across channels.
enum class PlacementPolicy : std::uint8_t {
  /// Walk trees in plan order, each onto the least-loaded channel at the
  /// time of placement (deterministic index-order tie-break). The default:
  /// mirrors the legacy scheduler and keeps BENCH trajectories comparable.
  kPlanOrder,
  /// Longest-processing-time placement on the P1500Ate-predicted TCK load
  /// plus a local-exchange refinement; minimizes the predicted campaign
  /// makespan. Never predicts worse than kPlanOrder: the scheduler keeps
  /// whichever of the two (refined) placements predicts the smaller
  /// makespan per TAM.
  kMakespan,
};

[[nodiscard]] constexpr std::string_view placementPolicyName(
    PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kPlanOrder:
      return "plan_order";
    case PlacementPolicy::kMakespan:
      return "makespan";
  }
  return "?";
}

/// One core's campaign entry. Sentinel values inherit the TestPlan default.
struct CorePlan {
  int core_index = -1;
  /// At-speed patterns per attempt (1 .. the core's counter capacity).
  int patterns = 0;  // <= 0 => plan default
  /// Run-Test/Idle TCKs before the first status poll; < 0 => patterns + 4
  /// (enough for the whole run, the legacy session behavior). Smaller
  /// budgets make the poll loop — and the timeout machinery — do real work.
  int warmup_idle = -1;
  /// Status polls before an attempt is declared timed out.
  int poll_budget = 0;  // <= 0 => plan default
  /// Run-Test/Idle TCKs between unsuccessful polls.
  int poll_idle = 0;  // <= 0 => plan default
  /// Full protocol re-runs after a timeout.
  int max_retries = -1;  // < 0 => plan default
  /// Minimum per-module signature-qualified stuck-at coverage (%). > 0
  /// fault-simulates each module under the BIST stimulus with its MISR
  /// model attached (expensive) and fails the core below the target.
  double coverage_target = -1.0;  // < 0 => plan default
  /// TAM expected to serve this core. -1 (default) resolves from the SoC
  /// topology; a non-negative value is *checked* against it, and a plan
  /// assigning a core to a TAM that does not serve it is rejected at
  /// resolve time.
  int tam = -1;
  /// Fault-sim backend for this core's coverage measurement (only used when
  /// the resolved coverage_target > 0). Unset inherits the plan default.
  std::optional<FsimBackend> coverage_backend;
  /// Orchestrator workers for coverage measurement; <= 0 => plan default.
  int coverage_workers = 0;
  /// Channel-failure retries before this core is quarantined, and the
  /// resilient coverage backend's shard retry budget; < 0 => plan default.
  int max_shard_retries = -1;
  /// Exponential-backoff base between channel retries; < 0 => plan default.
  int backoff_base_ms = -1;
  /// Unset inherits TestPlan::degrade_on_failure.
  std::optional<bool> degrade_on_failure;
};

/// Cap on concurrent session channels for one TAM.
struct TamChannelLimit {
  int tam = 0;
  int channels = 1;
};

struct TestPlan {
  /// Upper bound a per-TAM channel limit may take (an emulation guard, not
  /// a hardware property; plans beyond it are rejected at resolve time).
  static constexpr int kMaxChannelsPerTam = 64;

  // ---- plan-wide defaults, inherited by sentinel CorePlan fields ----
  int patterns = 1024;
  int poll_budget = 4;
  int poll_idle = 16;
  int max_retries = 0;
  double coverage_target = 0.0;  // 0 = no coverage measurement

  /// Worker threads across all TAM channels; 0 =>
  /// std::thread::hardware_concurrency(). Each busy worker drives its own
  /// session channel, so independent core trees run concurrently.
  int num_threads = 1;

  /// Default cap on concurrent channels per TAM; 0 = no cap (bounded by
  /// num_threads and the available work).
  int channels_per_tam = 0;

  /// How core trees are placed onto TAM channels (see PlacementPolicy).
  PlacementPolicy placement = PlacementPolicy::kPlanOrder;

  /// Fault-sim backend for coverage measurement. kSerial by default: the
  /// session channel is the unit of parallelism in this layer, and coverage
  /// probes run on scheduler worker threads, where forking a process fleet
  /// per module (kProcess) or nesting a thread pool (kThreaded) only pays
  /// off for big modules — opt in per plan or per core when it does.
  FsimBackend coverage_backend = FsimBackend::kSerial;
  /// Orchestrator workers for coverage measurement (kThreaded / kProcess);
  /// 0 => one per hardware thread.
  int coverage_workers = 1;

  // ---- resilience (see src/core/README.md, "Quarantine") ----
  /// Times a core's session channel may fail (SessionChannelError) and be
  /// reopened before the scheduler stops retrying that core. Also the
  /// per-shard retry budget of kResilient coverage probes.
  int max_shard_retries = 2;
  /// Exponential-backoff base between channel reopen attempts: retry k
  /// sleeps min(backoff_base_ms << (k-1), 250) ms. <= 0 disables sleeping.
  int backoff_base_ms = 1;
  /// After the retry budget: true = record the core as `quarantined` and
  /// continue the campaign (the default — one sick core tree degrades that
  /// core, not the campaign); false = rethrow the channel error.
  bool degrade_on_failure = true;

  /// Per-TAM overrides of channels_per_tam.
  std::vector<TamChannelLimit> tam_channels;

  /// Campaign entries in execution-priority order. Empty => every core of
  /// the SoC, in index order, with plan defaults.
  std::vector<CorePlan> cores;

  TestPlan& withPatterns(int p) {
    patterns = p;
    return *this;
  }
  TestPlan& withPollBudget(int polls, int idle_tcks) {
    poll_budget = polls;
    poll_idle = idle_tcks;
    return *this;
  }
  TestPlan& withRetries(int retries) {
    max_retries = retries;
    return *this;
  }
  TestPlan& withCoverageTarget(double percent) {
    coverage_target = percent;
    return *this;
  }
  TestPlan& withCoverageBackend(FsimBackend backend, int workers = 1) {
    coverage_backend = backend;
    coverage_workers = workers;
    return *this;
  }
  TestPlan& withThreads(int threads) {
    num_threads = threads;
    return *this;
  }
  TestPlan& withResilience(int shard_retries, int backoff_ms = 1,
                           bool degrade = true) {
    max_shard_retries = shard_retries;
    backoff_base_ms = backoff_ms;
    degrade_on_failure = degrade;
    return *this;
  }
  TestPlan& withChannelsPerTam(int channels) {
    channels_per_tam = channels;
    return *this;
  }
  TestPlan& withPlacement(PlacementPolicy policy) {
    placement = policy;
    return *this;
  }
  TestPlan& withTamChannels(int tam, int channels) {
    tam_channels.push_back(TamChannelLimit{tam, channels});
    return *this;
  }
  TestPlan& addCore(CorePlan core) {
    cores.push_back(core);
    return *this;
  }
  TestPlan& addCore(int core_index) {
    cores.push_back(CorePlan{.core_index = core_index});
    return *this;
  }
};

}  // namespace corebist

#endif  // COREBIST_CORE_TEST_PLAN_HPP_
