// WrappedCore: a logic core equipped with the paper's complete test
// architecture — BIST engine (ALFSR + CGs + MISRs + control unit) behind a
// P1500 wrapper (Fig. 1/2/5 assembled).
//
// The core's modules are given as gate-level netlists; a pin-compatible
// "physical" copy per module represents the manufactured instance, into
// which defects can be injected. WCDR commands drive the BIST control unit;
// Run-Test/Idle system clocks advance the pattern counter; when the
// programmed count is reached the MISR signatures of the physical modules
// are available through the WDR via the Output Selector.
#ifndef COREBIST_CORE_WRAPPED_CORE_HPP_
#define COREBIST_CORE_WRAPPED_CORE_HPP_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bist/control_unit.hpp"
#include "bist/engine.hpp"
#include "p1500/wrapper.hpp"

namespace corebist {

class WrappedCore {
 public:
  WrappedCore(std::string name, BistEngineConfig cfg = {});

  /// Register a module (reference netlist + constrained ports). The
  /// reference is copied as the initial physical instance.
  int addModule(const Netlist& reference,
                std::vector<ConstrainedPort> constraints = {});

  /// Model a manufacturing defect in the physical instance of a module.
  void injectDefect(int module, GateId gate, GateType new_type);
  /// Restore the physical instance to the fault-free reference.
  void healModule(int module);

  /// Must be called after all modules are added.
  void finalize();

  /// Attach an already-finalized child core reached through this core's
  /// wrapper child chain (a wrapped core inside a wrapped core). Returns
  /// the child's slot in the chain. The child shares this core's clock
  /// domain: systemClockTick() fans out to the whole subtree, so a nested
  /// core's at-speed run is driven through its top-level ancestor's TAM
  /// selection. Both cores must be finalized; cycles and duplicates are
  /// rejected by the wrapper chain.
  int addChild(WrappedCore* child);
  [[nodiscard]] int childCount() const noexcept {
    return static_cast<int>(children_.size());
  }
  [[nodiscard]] WrappedCore& child(int slot) {
    return *children_.at(static_cast<std::size_t>(slot));
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] P1500Wrapper& wrapper() { return *wrapper_; }
  [[nodiscard]] const BistEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] BistControlUnit& controlUnit() noexcept { return cu_; }
  [[nodiscard]] int moduleCount() const noexcept {
    return engine_.moduleCount();
  }

  /// One system clock (forwarded from Run-Test/Idle by the TAM). Fans out
  /// to every child core: the subtree is one clock domain, like the
  /// hardware it models.
  void systemClockTick();

  /// Fault-free signature of module `m` for `patterns` patterns.
  [[nodiscard]] std::uint16_t goldenSignature(int m, int patterns) const;

  /// Signatures computed by the last completed BIST run (empty if none).
  [[nodiscard]] const std::vector<std::uint16_t>& lastSignatures() const {
    return signatures_;
  }

 private:
  void onCommand(BistCommand cmd, std::uint16_t data);
  [[nodiscard]] std::uint32_t readData() const;
  void completeRun();

  std::string name_;
  BistEngine engine_;
  BistControlUnit cu_;
  std::unique_ptr<P1500Wrapper> wrapper_;
  std::vector<Netlist> physical_;
  std::vector<std::uint16_t> signatures_;
  std::vector<WrappedCore*> children_;
  bool run_complete_ = false;
};

}  // namespace corebist

#endif  // COREBIST_CORE_WRAPPED_CORE_HPP_
