#include "jtag/tap.hpp"

#include <stdexcept>
#include <string>

namespace corebist {

std::string_view tapStateName(TapState s) {
  switch (s) {
    case TapState::kTestLogicReset:
      return "Test-Logic-Reset";
    case TapState::kRunTestIdle:
      return "Run-Test/Idle";
    case TapState::kSelectDrScan:
      return "Select-DR-Scan";
    case TapState::kCaptureDr:
      return "Capture-DR";
    case TapState::kShiftDr:
      return "Shift-DR";
    case TapState::kExit1Dr:
      return "Exit1-DR";
    case TapState::kPauseDr:
      return "Pause-DR";
    case TapState::kExit2Dr:
      return "Exit2-DR";
    case TapState::kUpdateDr:
      return "Update-DR";
    case TapState::kSelectIrScan:
      return "Select-IR-Scan";
    case TapState::kCaptureIr:
      return "Capture-IR";
    case TapState::kShiftIr:
      return "Shift-IR";
    case TapState::kExit1Ir:
      return "Exit1-IR";
    case TapState::kPauseIr:
      return "Pause-IR";
    case TapState::kExit2Ir:
      return "Exit2-IR";
    case TapState::kUpdateIr:
      return "Update-IR";
  }
  return "?";
}

TapState tapNextState(TapState s, bool tms) {
  switch (s) {
    case TapState::kTestLogicReset:
      return tms ? TapState::kTestLogicReset : TapState::kRunTestIdle;
    case TapState::kRunTestIdle:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
    case TapState::kSelectDrScan:
      return tms ? TapState::kSelectIrScan : TapState::kCaptureDr;
    case TapState::kCaptureDr:
      return tms ? TapState::kExit1Dr : TapState::kShiftDr;
    case TapState::kShiftDr:
      return tms ? TapState::kExit1Dr : TapState::kShiftDr;
    case TapState::kExit1Dr:
      return tms ? TapState::kUpdateDr : TapState::kPauseDr;
    case TapState::kPauseDr:
      return tms ? TapState::kExit2Dr : TapState::kPauseDr;
    case TapState::kExit2Dr:
      return tms ? TapState::kUpdateDr : TapState::kShiftDr;
    case TapState::kUpdateDr:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
    case TapState::kSelectIrScan:
      return tms ? TapState::kTestLogicReset : TapState::kCaptureIr;
    case TapState::kCaptureIr:
      return tms ? TapState::kExit1Ir : TapState::kShiftIr;
    case TapState::kShiftIr:
      return tms ? TapState::kExit1Ir : TapState::kShiftIr;
    case TapState::kExit1Ir:
      return tms ? TapState::kUpdateIr : TapState::kPauseIr;
    case TapState::kPauseIr:
      return tms ? TapState::kExit2Ir : TapState::kPauseIr;
    case TapState::kExit2Ir:
      return tms ? TapState::kUpdateIr : TapState::kShiftIr;
    case TapState::kUpdateIr:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
  }
  return TapState::kTestLogicReset;
}

TapController::TapController(int ir_width, std::uint32_t idcode)
    : ir_width_(ir_width),
      idcode_(idcode),
      ir_shift_(static_cast<std::size_t>(ir_width), false) {}

void TapController::registerInstruction(std::uint32_t ir_value, DrPort port) {
  const std::uint32_t all_ones =
      ir_width_ >= 32 ? 0xFFFFFFFFu : ((1u << ir_width_) - 1u);
  if (ir_value > all_ones) {
    throw std::invalid_argument("TapController: IR value " +
                                std::to_string(ir_value) + " does not fit " +
                                std::to_string(ir_width_) + " bits");
  }
  if (ir_value == kIdcode || ir_value == all_ones) {
    throw std::invalid_argument(
        "TapController: IR value " + std::to_string(ir_value) +
        " is reserved (IDCODE / BYPASS)");
  }
  if (ports_.count(ir_value) != 0) {
    throw std::invalid_argument("TapController: IR value " +
                                std::to_string(ir_value) +
                                " already bound to a data register");
  }
  ports_[ir_value] = std::move(port);
}

int TapController::freeIrSlots() const noexcept {
  // All codes minus IDCODE, the all-ones BYPASS, and the bound ports.
  const std::uint64_t total = ir_width_ >= 32 ? (std::uint64_t{1} << 32)
                                              : (std::uint64_t{1} << ir_width_);
  return static_cast<int>(total - 2 - ports_.size());
}

TapController::DrPort* TapController::currentPort() {
  const auto it = ports_.find(ir_);
  return it == ports_.end() ? nullptr : &it->second;
}

bool TapController::clock(bool tms, bool tdi) {
  ++tcks_;
  bool tdo = false;
  const std::uint32_t ir_mask =
      ir_width_ >= 32 ? 0xFFFFFFFFu : ((1u << ir_width_) - 1u);

  // Actions are taken in the CURRENT state; then TMS advances the FSM.
  switch (state_) {
    case TapState::kTestLogicReset:
      ir_ = kIdcode;  // 1149.1: IDCODE (or BYPASS) selected at reset
      break;
    case TapState::kRunTestIdle: {
      DrPort* port = currentPort();
      if (port != nullptr && port->run_idle) port->run_idle();
      break;
    }
    case TapState::kCaptureIr:
      // Standard: capture 0b...01 into the IR shifter.
      for (std::size_t i = 0; i < ir_shift_.size(); ++i) ir_shift_[i] = i == 0;
      break;
    case TapState::kShiftIr:
      tdo = ir_shift_.front();
      for (std::size_t i = 0; i + 1 < ir_shift_.size(); ++i) {
        ir_shift_[i] = ir_shift_[i + 1];
      }
      ir_shift_.back() = tdi;
      break;
    case TapState::kUpdateIr: {
      std::uint32_t v = 0;
      for (std::size_t i = 0; i < ir_shift_.size(); ++i) {
        if (ir_shift_[i]) v |= 1u << i;
      }
      ir_ = v & ir_mask;
      break;
    }
    case TapState::kCaptureDr: {
      if (ir_ == kIdcode) {
        idcode_shift_ = idcode_;
      } else if (DrPort* port = currentPort(); port != nullptr &&
                                               port->capture) {
        port->capture();
      }
      break;
    }
    case TapState::kShiftDr: {
      if (ir_ == kIdcode) {
        tdo = (idcode_shift_ & 1u) != 0;
        idcode_shift_ = (idcode_shift_ >> 1) | (tdi ? 0x80000000u : 0u);
      } else if (DrPort* port = currentPort(); port != nullptr &&
                                               port->shift) {
        tdo = port->shift(tdi);
      } else {
        tdo = bypass_bit_;  // BYPASS and unknown instructions: 1-bit reg
        bypass_bit_ = tdi;
      }
      break;
    }
    case TapState::kUpdateDr: {
      if (DrPort* port = currentPort(); port != nullptr && port->update) {
        port->update();
      }
      break;
    }
    default:
      break;
  }

  state_ = tapNextState(state_, tms);
  if (state_ == TapState::kTestLogicReset) ir_ = kIdcode;
  return tdo;
}

}  // namespace corebist
