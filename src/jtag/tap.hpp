// IEEE 1149.1 TAP controller (paper Fig. 1: the SoC's external test access).
//
// Full 16-state FSM plus a pluggable data-register port per IR instruction;
// BYPASS and IDCODE are built in. The TAM registers its own DR ports to
// route CaptureDR/ShiftDR/UpdateDR into P1500 WSC sequences.
#ifndef COREBIST_JTAG_TAP_HPP_
#define COREBIST_JTAG_TAP_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>
#include <vector>

namespace corebist {

enum class TapState : std::uint8_t {
  kTestLogicReset,
  kRunTestIdle,
  kSelectDrScan,
  kCaptureDr,
  kShiftDr,
  kExit1Dr,
  kPauseDr,
  kExit2Dr,
  kUpdateDr,
  kSelectIrScan,
  kCaptureIr,
  kShiftIr,
  kExit1Ir,
  kPauseIr,
  kExit2Ir,
  kUpdateIr,
};

[[nodiscard]] std::string_view tapStateName(TapState s);
[[nodiscard]] TapState tapNextState(TapState s, bool tms);

class TapController {
 public:
  /// A data-register backend bound to one IR instruction value.
  struct DrPort {
    std::function<void()> capture;
    std::function<bool(bool tdi)> shift;  // returns tdo
    std::function<void()> update;
    /// Called once per TCK spent in Run-Test/Idle (system clocks for BIST).
    std::function<void()> run_idle;
  };

  explicit TapController(int ir_width = 4, std::uint32_t idcode = 0xC0DEB157u);

  /// Bind a DR port to an IR value. Throws std::invalid_argument when the
  /// value does not fit the IR, collides with IDCODE or the all-ones
  /// BYPASS code, or is already bound — multiple TAMs allocate disjoint IR
  /// blocks on one chip TAP, and a silent overwrite would route one TAM's
  /// scans into another's wrappers.
  void registerInstruction(std::uint32_t ir_value, DrPort port);

  /// Number of IR codes still available for registerInstruction.
  [[nodiscard]] int freeIrSlots() const noexcept;

  /// One TCK with the given TMS/TDI; returns TDO.
  bool clock(bool tms, bool tdi);

  [[nodiscard]] TapState state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t instruction() const noexcept { return ir_; }
  [[nodiscard]] int irWidth() const noexcept { return ir_width_; }
  [[nodiscard]] std::uint32_t idcode() const noexcept { return idcode_; }
  [[nodiscard]] std::size_t tckCount() const noexcept { return tcks_; }

  /// Account TCKs spent on this controller's behalf by another channel.
  /// Sharded SoC campaigns clock per-shard TAP replicas, then credit the
  /// chip TAP with the aggregate so tckCount() stays the chip-level total
  /// regardless of how a campaign was scheduled.
  void creditTcks(std::size_t n) noexcept { tcks_ += n; }

  static constexpr std::uint32_t kBypass = 0xFFFFFFFFu;  // all-ones IR
  static constexpr std::uint32_t kIdcode = 0x1u;

 private:
  [[nodiscard]] DrPort* currentPort();

  int ir_width_;
  std::uint32_t idcode_;
  TapState state_ = TapState::kTestLogicReset;
  std::uint32_t ir_ = kBypass;
  std::vector<bool> ir_shift_;
  std::map<std::uint32_t, DrPort> ports_;
  bool bypass_bit_ = false;
  std::uint32_t idcode_shift_ = 0;
  std::size_t tcks_ = 0;
};

}  // namespace corebist

#endif  // COREBIST_JTAG_TAP_HPP_
