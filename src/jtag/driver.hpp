// High-level TAP driver: the software ATE.
//
// Produces the TMS/TDI bit streams for IR/DR scans and Run-Test/Idle dwell,
// collecting TDO. Every session channel (core/session_channel.hpp, via the
// tam/ate.hpp protocol) and the integration tests drive the stack
// exclusively through this bit-banging interface, so the full 1149.1 ->
// TAM -> P1500 -> BIST path is exercised.
#ifndef COREBIST_JTAG_DRIVER_HPP_
#define COREBIST_JTAG_DRIVER_HPP_

#include <cstdint>
#include <vector>

#include "jtag/tap.hpp"

namespace corebist {

class TapDriver {
 public:
  explicit TapDriver(TapController& tap) : tap_(tap) {}

  /// Five TMS=1 clocks: guaranteed Test-Logic-Reset from any state.
  void reset();

  /// Move to Run-Test/Idle and stay for `cycles` clocks.
  void runIdle(std::size_t cycles);

  /// Shift `bits` (LSB-first) through the instruction register.
  std::uint64_t shiftIr(std::uint64_t bits, int count);

  /// Shift `bits` (LSB-first) through the selected data register; returns
  /// the bits that came out of TDO (LSB-first).
  std::uint64_t shiftDr(std::uint64_t bits, int count);

  /// Wide DR shift for registers longer than 64 bits.
  std::vector<bool> shiftDrWide(const std::vector<bool>& bits);

  [[nodiscard]] std::size_t tckCount() const noexcept {
    return tap_.tckCount();
  }

 private:
  void clockTms(bool tms) { tap_.clock(tms, false); }
  void settleToIdle();
  void toShiftDr();
  void toShiftIr();

  TapController& tap_;
};

}  // namespace corebist

#endif  // COREBIST_JTAG_DRIVER_HPP_
