#include "jtag/driver.hpp"

namespace corebist {

void TapDriver::reset() {
  for (int i = 0; i < 5; ++i) clockTms(true);
  clockTms(false);  // settle in Run-Test/Idle
}

void TapDriver::settleToIdle() {
  // A few TMS=0 clocks reach Run-Test/Idle from every update/reset exit;
  // if the FSM is parked in a shift/pause loop, escape via full reset.
  for (int i = 0; i < 4 && tap_.state() != TapState::kRunTestIdle; ++i) {
    clockTms(false);
  }
  if (tap_.state() != TapState::kRunTestIdle) reset();
}

void TapDriver::runIdle(std::size_t cycles) {
  settleToIdle();
  for (std::size_t i = 0; i < cycles; ++i) clockTms(false);
}

void TapDriver::toShiftDr() {
  settleToIdle();
  clockTms(true);   // Select-DR
  clockTms(false);  // Capture-DR
  clockTms(false);  // Shift-DR
}

void TapDriver::toShiftIr() {
  settleToIdle();
  clockTms(true);   // Select-DR
  clockTms(true);   // Select-IR
  clockTms(false);  // Capture-IR
  clockTms(false);  // Shift-IR
}

std::uint64_t TapDriver::shiftIr(std::uint64_t bits, int count) {
  toShiftIr();
  std::uint64_t out = 0;
  for (int i = 0; i < count; ++i) {
    const bool last = i + 1 == count;
    const bool tdo = tap_.clock(last, ((bits >> i) & 1u) != 0);
    if (tdo) out |= std::uint64_t{1} << i;
  }
  clockTms(true);   // Update-IR
  clockTms(false);  // Run-Test/Idle
  return out;
}

std::uint64_t TapDriver::shiftDr(std::uint64_t bits, int count) {
  toShiftDr();
  std::uint64_t out = 0;
  for (int i = 0; i < count; ++i) {
    const bool last = i + 1 == count;
    const bool tdo = tap_.clock(last, ((bits >> i) & 1u) != 0);
    if (tdo) out |= std::uint64_t{1} << i;
  }
  clockTms(true);   // Update-DR
  clockTms(false);  // Run-Test/Idle
  return out;
}

std::vector<bool> TapDriver::shiftDrWide(const std::vector<bool>& bits) {
  toShiftDr();
  std::vector<bool> out(bits.size(), false);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    out[i] = tap_.clock(last, bits[i]);
  }
  clockTms(true);
  clockTms(false);
  return out;
}

}  // namespace corebist
