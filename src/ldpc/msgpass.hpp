// Golden message-passing decoders (Gallager [13], MacKay [14]).
//
// Reference implementations used to validate the serial hardware
// architecture model: a floating-point min-sum decoder (with optional
// normalization) and the same algorithm in the decoder's 8-bit fixed-point
// arithmetic. Channel LLRs are positive for "bit = 0".
#ifndef COREBIST_LDPC_MSGPASS_HPP_
#define COREBIST_LDPC_MSGPASS_HPP_

#include <cstdint>
#include <vector>

#include "ldpc/code.hpp"

namespace corebist::ldpc {

struct DecodeResult {
  std::vector<std::uint8_t> word;
  bool converged = false;
  int iterations = 0;
};

struct MinSumParams {
  int max_iters = 20;
  double normalization = 0.75;  // scaling of check-to-bit magnitudes
};

/// Floating-point normalized min-sum over the Tanner graph.
[[nodiscard]] DecodeResult decodeMinSum(const LdpcCode& code,
                                        const std::vector<double>& llr,
                                        const MinSumParams& p = {});

/// Saturating two's-complement helpers shared with the hardware models.
[[nodiscard]] int satAdd(int a, int b, int bits);
[[nodiscard]] int satClamp(int v, int bits);

/// Fixed-point (8-bit message) min-sum as implemented by the serial
/// architecture: magnitudes normalized by 0.75 (x - x>>2).
[[nodiscard]] DecodeResult decodeMinSumFixed(const LdpcCode& code,
                                             const std::vector<int>& llr8,
                                             int max_iters = 20);

/// Map a BPSK/AWGN observation to an 8-bit LLR (for examples/benches).
[[nodiscard]] int quantizeLlr(double llr, int bits = 8);

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_MSGPASS_HPP_
