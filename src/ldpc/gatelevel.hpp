// Gate-level structural generators for the three LDPC decoder modules
// (paper Table 1 port geometry: 54/55, 53/53, 45/44).
//
// Each generator emits a synchronous netlist that is bit-exact with the
// corresponding behavioural model in ldpc/arch/ — the same architectural
// state, the same combinational semantics, clocked by SeqSim::step().
// tests/ldpc_equiv_test.cpp sweeps randomized stimulus over both and
// requires identical outputs every cycle; every DfT experiment of the paper
// (fault coverage, area, timing, diagnosis) runs on these netlists.
#ifndef COREBIST_LDPC_GATELEVEL_HPP_
#define COREBIST_LDPC_GATELEVEL_HPP_

#include "netlist/netlist.hpp"

namespace corebist::ldpc {

/// BIT_NODE: 54 inputs / 55 outputs, ~80 flip-flops.
[[nodiscard]] Netlist buildBitNode();

/// CHECK_NODE: 53 inputs / 53 outputs, 64-entry buffers + window networks
/// (the big module: hundreds of flip-flops, tens of thousands of gates).
[[nodiscard]] Netlist buildCheckNode();

/// CONTROL_UNIT: 45 inputs / 44 outputs, ~40 flip-flops.
[[nodiscard]] Netlist buildControlUnit();

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_GATELEVEL_HPP_
