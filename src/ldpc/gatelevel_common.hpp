// Shared structural idioms for the LDPC gate-level generators.
#ifndef COREBIST_LDPC_GATELEVEL_COMMON_HPP_
#define COREBIST_LDPC_GATELEVEL_COMMON_HPP_

#include "netlist/builder.hpp"

namespace corebist::ldpc::gl {

using corebist::Builder;
using corebist::Bus;
using corebist::GateType;
using corebist::NetId;

/// Sign-extend a bus to `width` (replicates the sign net; no gates).
[[nodiscard]] inline Bus sext(const Bus& v, int width) {
  Bus out = v;
  while (static_cast<int>(out.size()) < width) out.push_back(v.back());
  return out;
}

/// Arithmetic shift right by a constant (sign fill; no gates).
[[nodiscard]] inline Bus asr(const Bus& v, int k) {
  Bus out;
  const int w = static_cast<int>(v.size());
  for (int i = 0; i < w; ++i) {
    const int src = i + k;
    out.push_back(src < w ? v[static_cast<std::size_t>(src)] : v.back());
  }
  return out;
}

/// Logical shift right by a constant (zero fill).
[[nodiscard]] inline Bus lsr(Builder& b, const Bus& v, int k) {
  Bus out;
  const int w = static_cast<int>(v.size());
  for (int i = 0; i < w; ++i) {
    const int src = i + k;
    out.push_back(src < w ? v[static_cast<std::size_t>(src)] : b.lo());
  }
  return out;
}

/// Saturate a signed value to the k-bit signed range, keeping full width.
/// in_range iff bits [k-1 .. w-1] are all equal.
[[nodiscard]] inline Bus satToBitsSigned(Builder& b, const Bus& v, int k) {
  const int w = static_cast<int>(v.size());
  const NetId sign = v.back();
  Bus eqs;
  for (int j = k - 1; j < w - 1; ++j) {
    eqs.push_back(b.g2(GateType::kXnor, v[static_cast<std::size_t>(j)], sign));
  }
  const NetId in_range = b.reduceAnd(eqs);
  // Saturation pattern: bits [0..k-2] = ~sign, bit k-1..w-1 = sign.
  Bus satv;
  for (int j = 0; j < k - 1; ++j) satv.push_back(b.not1(sign));
  for (int j = k - 1; j < w; ++j) satv.push_back(sign);
  return b.mux(satv, v, in_range);
}

/// Signed saturating add with overflow flag (width preserved).
struct SatAdd {
  Bus sum;
  NetId ovf;
};
[[nodiscard]] inline SatAdd satAddOvf(Builder& b, const Bus& a, const Bus& c) {
  const Bus raw = b.add(a, c);
  const std::size_t w = a.size();
  const NetId sa = a[w - 1];
  const NetId sb = c[w - 1];
  const NetId sr = raw[w - 1];
  const NetId same = b.g2(GateType::kXnor, sa, sb);
  const NetId ovf = b.and2(same, b.xor2(sa, sr));
  Bus satv;
  for (std::size_t i = 0; i + 1 < w; ++i) satv.push_back(b.not1(sa));
  satv.push_back(sa);
  return SatAdd{b.mux(raw, satv, ovf), ovf};
}

/// Two's-complement negate with saturation (-(-2^(w-1)) -> 2^(w-1)-1).
[[nodiscard]] inline Bus negSat(Builder& b, const Bus& v) {
  const int w = static_cast<int>(v.size());
  const Bus wide = sext(v, w + 1);
  const Bus negw = b.neg(wide);
  return Builder::slice(satToBitsSigned(b, negw, w), 0, w);
}

/// min(a, b) unsigned with index propagation; ties keep the left operand.
struct MinIdx {
  Bus val;
  Bus idx;
};
[[nodiscard]] inline MinIdx minIdx2(Builder& b, const MinIdx& l,
                                    const MinIdx& r) {
  const NetId take_r = b.ltU(r.val, l.val);
  return MinIdx{b.mux(l.val, r.val, take_r), b.mux(l.idx, r.idx, take_r)};
}

/// Tournament minimum over `elems` (leftmost minimal wins ties).
[[nodiscard]] inline MinIdx minTree(Builder& b, std::vector<MinIdx> elems) {
  while (elems.size() > 1) {
    std::vector<MinIdx> next;
    for (std::size_t i = 0; i + 1 < elems.size(); i += 2) {
      next.push_back(minIdx2(b, elems[i], elems[i + 1]));
    }
    if (elems.size() % 2 != 0) next.push_back(elems.back());
    elems = std::move(next);
  }
  return elems.front();
}

/// Value-only tournament minimum (for the masked second-minimum tree).
[[nodiscard]] inline Bus minValTree(Builder& b, std::vector<Bus> elems) {
  while (elems.size() > 1) {
    std::vector<Bus> next;
    for (std::size_t i = 0; i + 1 < elems.size(); i += 2) {
      const NetId take_r = b.ltU(elems[i + 1], elems[i]);
      next.push_back(b.mux(elems[i], elems[i + 1], take_r));
    }
    if (elems.size() % 2 != 0) next.push_back(elems.back());
    elems = std::move(next);
  }
  return elems.front();
}

}  // namespace corebist::ldpc::gl

#endif  // COREBIST_LDPC_GATELEVEL_COMMON_HPP_
