// LDPC code construction (paper §4, Fig. 6).
//
// Low-Density Parity-Check codes are represented by a sparse bipartite
// (Tanner) graph between Bit Nodes (codeword symbols) and Check Nodes
// (parity constraints). The reconfigurable serial decoder of the case study
// supports codes "of different sizes and rates, up to a maximum of 512
// check nodes and 1,024 bit nodes"; those are the hard limits here too.
//
// For systematic encoding the parity-check matrix is built in the form
// H = [A | T] with T lower triangular (unit diagonal), so parity bits are
// computed by forward substitution. Bit-node degrees are kept small
// (2..dv_max) and check rows are filled pseudo-randomly from a seed, giving
// reproducible Gallager-style codes.
#ifndef COREBIST_LDPC_CODE_HPP_
#define COREBIST_LDPC_CODE_HPP_

#include <cstdint>
#include <vector>

namespace corebist::ldpc {

inline constexpr int kMaxCheckNodes = 512;
inline constexpr int kMaxBitNodes = 1024;

struct CodeParams {
  int bit_nodes = 96;    // n, codeword length
  int check_nodes = 48;  // m, parity constraints
  int dv = 3;            // target bit-node degree (information part)
  std::uint64_t seed = 1;
};

class LdpcCode {
 public:
  /// Construct a reproducible pseudo-random code with a lower-triangular
  /// parity part. Throws on out-of-range parameters.
  explicit LdpcCode(const CodeParams& p);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int k() const noexcept { return n_ - m_; }
  [[nodiscard]] int edgeCount() const noexcept { return edges_; }

  /// Bit positions checked by row r (sorted).
  [[nodiscard]] const std::vector<int>& row(int r) const {
    return rows_[static_cast<std::size_t>(r)];
  }
  /// Check rows containing bit b (sorted).
  [[nodiscard]] const std::vector<int>& col(int b) const {
    return cols_[static_cast<std::size_t>(b)];
  }

  [[nodiscard]] int maxRowDegree() const;
  [[nodiscard]] int maxColDegree() const;

  /// Systematic encode: `info` has k() bits; returns n() bits (info first,
  /// parity last) satisfying every check.
  [[nodiscard]] std::vector<std::uint8_t> encode(
      const std::vector<std::uint8_t>& info) const;

  /// True iff `word` satisfies all m() parity checks.
  [[nodiscard]] bool checkWord(const std::vector<std::uint8_t>& word) const;

  /// Number of unsatisfied checks (syndrome weight).
  [[nodiscard]] int syndromeWeight(
      const std::vector<std::uint8_t>& word) const;

 private:
  int n_;
  int m_;
  int edges_ = 0;
  std::vector<std::vector<int>> rows_;
  std::vector<std::vector<int>> cols_;
};

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_CODE_HPP_
