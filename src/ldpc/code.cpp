#include "ldpc/code.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace corebist::ldpc {

LdpcCode::LdpcCode(const CodeParams& p) : n_(p.bit_nodes), m_(p.check_nodes) {
  if (n_ < 4 || n_ > kMaxBitNodes) {
    throw std::invalid_argument("LdpcCode: bit nodes out of range");
  }
  if (m_ < 2 || m_ >= n_ || m_ > kMaxCheckNodes) {
    throw std::invalid_argument("LdpcCode: check nodes out of range");
  }
  if (p.dv < 2 || p.dv > m_) {
    throw std::invalid_argument("LdpcCode: dv out of range");
  }
  rows_.resize(static_cast<std::size_t>(m_));
  cols_.resize(static_cast<std::size_t>(n_));

  std::mt19937_64 rng(p.seed);
  const int k = n_ - m_;

  auto addEdge = [this](int r, int b) {
    auto& row = rows_[static_cast<std::size_t>(r)];
    if (std::find(row.begin(), row.end(), b) != row.end()) return false;
    row.push_back(b);
    cols_[static_cast<std::size_t>(b)].push_back(r);
    ++edges_;
    return true;
  };

  // Information columns: dv distinct random rows per bit, balancing row
  // degrees by always drawing from the least-loaded half.
  for (int b = 0; b < k; ++b) {
    int placed = 0;
    int guard = 0;
    while (placed < p.dv && guard < 1000) {
      ++guard;
      // Pick two candidate rows, keep the lighter one (power of two choices).
      const int r1 = static_cast<int>(rng() % static_cast<std::uint64_t>(m_));
      const int r2 = static_cast<int>(rng() % static_cast<std::uint64_t>(m_));
      const int r = rows_[static_cast<std::size_t>(r1)].size() <=
                            rows_[static_cast<std::size_t>(r2)].size()
                        ? r1
                        : r2;
      if (addEdge(r, b)) ++placed;
    }
  }

  // Parity columns form the lower-triangular T: bit k+r participates in
  // row r (diagonal) and row r+1 (bidiagonal), giving every parity bit a
  // cheap forward-substitution solve and every row a guaranteed pivot.
  for (int r = 0; r < m_; ++r) {
    addEdge(r, k + r);
    if (r + 1 < m_) addEdge(r + 1, k + r);
  }

  for (auto& row : rows_) std::sort(row.begin(), row.end());
  for (auto& col : cols_) std::sort(col.begin(), col.end());

  for (int r = 0; r < m_; ++r) {
    if (rows_[static_cast<std::size_t>(r)].size() < 2) {
      // Degenerate row (can happen for tiny codes): tie it to two info bits.
      addEdge(r, 0);
      addEdge(r, 1 % n_);
      std::sort(rows_[static_cast<std::size_t>(r)].begin(),
                rows_[static_cast<std::size_t>(r)].end());
    }
  }
}

int LdpcCode::maxRowDegree() const {
  std::size_t d = 0;
  for (const auto& r : rows_) d = std::max(d, r.size());
  return static_cast<int>(d);
}

int LdpcCode::maxColDegree() const {
  std::size_t d = 0;
  for (const auto& c : cols_) d = std::max(d, c.size());
  return static_cast<int>(d);
}

std::vector<std::uint8_t> LdpcCode::encode(
    const std::vector<std::uint8_t>& info) const {
  const int k = n_ - m_;
  if (static_cast<int>(info.size()) != k) {
    throw std::invalid_argument("encode: info length must be k");
  }
  std::vector<std::uint8_t> word(static_cast<std::size_t>(n_), 0);
  for (int i = 0; i < k; ++i) word[static_cast<std::size_t>(i)] = info[static_cast<std::size_t>(i)] & 1u;
  // Forward substitution over the lower-triangular parity part: row r
  // determines parity bit k+r from already-known bits.
  for (int r = 0; r < m_; ++r) {
    int acc = 0;
    for (const int b : rows_[static_cast<std::size_t>(r)]) {
      if (b != k + r) acc ^= word[static_cast<std::size_t>(b)];
    }
    word[static_cast<std::size_t>(k + r)] = static_cast<std::uint8_t>(acc);
  }
  return word;
}

bool LdpcCode::checkWord(const std::vector<std::uint8_t>& word) const {
  return syndromeWeight(word) == 0;
}

int LdpcCode::syndromeWeight(const std::vector<std::uint8_t>& word) const {
  if (static_cast<int>(word.size()) != n_) {
    throw std::invalid_argument("syndromeWeight: wrong word length");
  }
  int weight = 0;
  for (const auto& row : rows_) {
    int acc = 0;
    for (const int b : row) acc ^= word[static_cast<std::size_t>(b)] & 1u;
    weight += acc;
  }
  return weight;
}

}  // namespace corebist::ldpc
