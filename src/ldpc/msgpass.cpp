#include "ldpc/msgpass.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace corebist::ldpc {

int satClamp(int v, int bits) {
  const int hi = (1 << (bits - 1)) - 1;
  const int lo = -(1 << (bits - 1));
  return std::clamp(v, lo, hi);
}

int satAdd(int a, int b, int bits) { return satClamp(a + b, bits); }

DecodeResult decodeMinSum(const LdpcCode& code, const std::vector<double>& llr,
                          const MinSumParams& p) {
  if (static_cast<int>(llr.size()) != code.n()) {
    throw std::invalid_argument("decodeMinSum: wrong LLR length");
  }
  const int n = code.n();
  const int m = code.m();
  // Messages keyed by (row, position-in-row).
  std::vector<std::vector<double>> c2b(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    c2b[static_cast<std::size_t>(r)].assign(code.row(r).size(), 0.0);
  }

  DecodeResult res;
  res.word.assign(static_cast<std::size_t>(n), 0);
  std::vector<double> total(llr);

  for (int iter = 1; iter <= p.max_iters; ++iter) {
    // Check-node update from current bit totals (extrinsic).
    for (int r = 0; r < m; ++r) {
      const auto& row = code.row(r);
      auto& out = c2b[static_cast<std::size_t>(r)];
      // Bit-to-check = total - previous check-to-bit.
      double min1 = 1e300;
      double min2 = 1e300;
      int argmin = -1;
      int sign_prod = 1;
      std::vector<double> b2c(row.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        const double v = total[static_cast<std::size_t>(row[i])] - out[i];
        b2c[i] = v;
        const double mag = std::abs(v);
        if (v < 0) sign_prod = -sign_prod;
        if (mag < min1) {
          min2 = min1;
          min1 = mag;
          argmin = static_cast<int>(i);
        } else if (mag < min2) {
          min2 = mag;
        }
      }
      for (std::size_t i = 0; i < row.size(); ++i) {
        const double mag =
            p.normalization * (static_cast<int>(i) == argmin ? min2 : min1);
        int sign = sign_prod;
        if (b2c[i] < 0) sign = -sign;
        const double nv = sign < 0 ? -mag : mag;
        // Update totals incrementally: replace old message with new.
        total[static_cast<std::size_t>(row[i])] += nv - out[i];
        out[i] = nv;
      }
    }
    for (int bit = 0; bit < n; ++bit) {
      res.word[static_cast<std::size_t>(bit)] =
          total[static_cast<std::size_t>(bit)] < 0 ? 1 : 0;
    }
    res.iterations = iter;
    if (code.checkWord(res.word)) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

DecodeResult decodeMinSumFixed(const LdpcCode& code,
                               const std::vector<int>& llr8, int max_iters) {
  if (static_cast<int>(llr8.size()) != code.n()) {
    throw std::invalid_argument("decodeMinSumFixed: wrong LLR length");
  }
  constexpr int kBits = 8;
  const int n = code.n();
  const int m = code.m();
  std::vector<std::vector<int>> c2b(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    c2b[static_cast<std::size_t>(r)].assign(code.row(r).size(), 0);
  }
  DecodeResult res;
  res.word.assign(static_cast<std::size_t>(n), 0);
  std::vector<int> total(llr8);
  for (auto& t : total) t = satClamp(t, kBits + 2);

  for (int iter = 1; iter <= max_iters; ++iter) {
    for (int r = 0; r < m; ++r) {
      const auto& row = code.row(r);
      auto& out = c2b[static_cast<std::size_t>(r)];
      int min1 = 0x7FFFFFFF;
      int min2 = 0x7FFFFFFF;
      int argmin = -1;
      int sign_prod = 1;
      std::vector<int> b2c(row.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        const int v = satClamp(total[static_cast<std::size_t>(row[i])] - out[i], kBits);
        b2c[i] = v;
        const int mag = v < 0 ? -v : v;
        if (v < 0) sign_prod = -sign_prod;
        if (mag < min1) {
          min2 = min1;
          min1 = mag;
          argmin = static_cast<int>(i);
        } else if (mag < min2) {
          min2 = mag;
        }
      }
      for (std::size_t i = 0; i < row.size(); ++i) {
        int mag = static_cast<int>(i) == argmin ? min2 : min1;
        mag = mag - (mag >> 2);  // x0.75 normalization, hardware style
        mag = satClamp(mag, kBits);
        int sign = sign_prod;
        if (b2c[i] < 0) sign = -sign;
        const int nv = sign < 0 ? -mag : mag;
        total[static_cast<std::size_t>(row[i])] =
            satClamp(total[static_cast<std::size_t>(row[i])] + nv - out[i],
                     kBits + 2);
        out[i] = nv;
      }
    }
    for (int bit = 0; bit < n; ++bit) {
      res.word[static_cast<std::size_t>(bit)] =
          total[static_cast<std::size_t>(bit)] < 0 ? 1 : 0;
    }
    res.iterations = iter;
    if (code.checkWord(res.word)) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

int quantizeLlr(double llr, int bits) {
  const int scaled = static_cast<int>(std::lround(llr * 8.0));
  return satClamp(scaled, bits);
}

}  // namespace corebist::ldpc
