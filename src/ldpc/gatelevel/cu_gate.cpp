// Gate-level CONTROL_UNIT (bit-exact with ldpc/arch/control_unit.cpp).
#include "ldpc/arch/control_unit.hpp"
#include "ldpc/gatelevel.hpp"
#include "ldpc/gatelevel_common.hpp"

namespace corebist::ldpc {

using namespace gl;

namespace {
/// Rotate-right on an arbitrary-width bus by a constant (no gates).
Bus rotr(const Bus& v, int k) {
  const int w = static_cast<int>(v.size());
  Bus out;
  for (int i = 0; i < w; ++i) {
    out.push_back(v[static_cast<std::size_t>((i + k) % w)]);
  }
  return out;
}
}  // namespace

Netlist buildControlUnit() {
  Netlist nl("CONTROL_UNIT");
  Builder b(nl);

  // -- Ports (order matches packControlUnitIn / packControlUnitOut) ----------
  const Bus cfg_nbits = b.input("cfg_nbits", 10);
  const Bus cfg_mrows = b.input("cfg_mrows", 9);
  const Bus cfg_iters = b.input("cfg_iters", 5);
  const Bus mode = b.input("mode", 3);
  const NetId start = b.input("start", 1)[0];
  const NetId halt = b.input("halt", 1)[0];
  const NetId ext_pf = b.input("ext_parity_fail", 1)[0];
  const NetId mem_ready = b.input("mem_ready", 1)[0];
  const Bus edge_count = b.input("edge_count", 10);
  const NetId step_en = b.input("step_en", 1)[0];
  const NetId clr_stats = b.input("clr_stats", 1)[0];
  const Bus dbg_sel = b.input("dbg_sel", 2);

  // -- State ------------------------------------------------------------------
  const Bus edge_cnt = b.state("edge_cnt", 10);
  const Bus node_cnt = b.state("node_cnt", 7);
  const Bus iter_cnt = b.state("iter_cnt", 5);
  const Bus phase = b.state("phase", 2);
  const Bus addr_b = b.state("addr_b", 10);
  const Bus busy = b.state("busy", 1);
  const Bus done = b.state("done", 1);
  const Bus stats = b.state("stats", 6);

  const NetId free_run = mode[2];
  const NetId halting = b.and2(halt, busy[0]);
  const NetId can_step = b.and2(b.and2(busy[0], step_en),
                                b.or2(mem_ready, free_run));
  const NetId mem_wait = b.and2(b.and2(busy[0], step_en),
                                b.and2(b.not1(mem_ready), b.not1(free_run)));
  // Priority: start > halting > (can_step / stall).
  const NetId n_start = b.not1(start);
  const NetId halt_eff = b.and2(halting, n_start);
  const NetId step_eff = b.and2(b.and2(can_step, n_start), b.not1(halt_eff));
  const NetId stall_eff =
      b.and2(b.and2(b.not1(can_step), n_start), b.not1(halt_eff));

  // -- Stride accumulator (interleaved address) ---------------------------------
  const Bus stride = [&] {
    std::vector<Bus> strides = {b.constant(10, 1), b.constant(10, 3),
                                b.constant(10, 7), b.constant(10, 11)};
    return b.muxN(strides, Builder::slice(mode, 0, 2));
  }();
  Bus nb = cfg_nbits;
  nb = b.mux(nb, b.constant(10, 1), b.eqConst(cfg_nbits, 0));
  // 11-bit intermediate sum: {0, addr_b} + {0, stride}.
  const Bus a_sum = [&] {
    Bus aw = addr_b;
    aw.push_back(b.lo());
    Bus sw = stride;
    sw.push_back(b.lo());
    return b.add(aw, sw);
  }();
  Bus nb11 = nb;
  nb11.push_back(b.lo());
  const NetId a_ge_nb = b.not1(b.ltU(a_sum, nb11));
  const Bus a_mod = Builder::slice(
      b.mux(a_sum, b.sub(a_sum, nb11), a_ge_nb), 0, 10);

  // -- Edge wrap ------------------------------------------------------------------
  const Bus ec_m1 = b.sub(edge_count, b.constant(10, 1));
  const Bus ec_max = b.mux(ec_m1, b.constant(10, 0),
                           b.eqConst(edge_count, 0));
  const NetId edge_wrap = b.not1(b.ltU(edge_cnt, ec_max));

  // -- Phase / iteration logic -------------------------------------------------
  const NetId ph_is1 = b.eqConst(phase, 1);
  const NetId ph_is2 = b.eqConst(phase, 2);
  const Bus iter_inc = b.inc(iter_cnt);
  const NetId iter_done = b.not1(b.ltU(iter_inc, cfg_iters));
  const NetId early_stop = b.and2(b.not1(ext_pf), stats[0]);
  const NetId finish = b.and2(edge_wrap,
                              b.and2(b.not1(ph_is1), b.not1(ph_is2)));
  const NetId stop_all = b.and2(finish, b.or2(iter_done, early_stop));

  Bus phase_wrapped = b.constant(2, 1);  // default: back to CN pass
  phase_wrapped = b.mux(phase_wrapped, b.constant(2, 0), stop_all);
  phase_wrapped = b.mux(phase_wrapped, b.constant(2, 3), ph_is2);
  phase_wrapped = b.mux(phase_wrapped, b.constant(2, 2), ph_is1);

  // -- Next-state assembly --------------------------------------------------------
  auto pick = [&](const Bus& hold, const Bus& stepped, const Bus& started) {
    Bus v = b.mux(hold, stepped, step_eff);
    return b.mux(v, started, start);
  };

  const Bus edge_inc = b.inc(edge_cnt);
  const Bus edge_stepped = b.mux(edge_inc, b.constant(10, 0), edge_wrap);
  b.connect(edge_cnt, pick(edge_cnt, edge_stepped, b.constant(10, 0)));

  const NetId node_tick =
      b.and2(b.not1(edge_wrap), b.eqConst(Builder::slice(edge_inc, 0, 3), 0));
  Bus node_stepped = b.mux(node_cnt, b.inc(node_cnt), node_tick);
  node_stepped = b.mux(node_stepped, b.constant(7, 0), edge_wrap);
  b.connect(node_cnt, pick(node_cnt, node_stepped, b.constant(7, 0)));

  const Bus iter_stepped = b.mux(iter_cnt, iter_inc, finish);
  b.connect(iter_cnt, pick(iter_cnt, iter_stepped, b.constant(5, 0)));

  const Bus phase_stepped = b.mux(phase, phase_wrapped, edge_wrap);
  b.connect(phase, pick(phase, phase_stepped, b.constant(2, 1)));

  const Bus addrb_stepped = b.mux(a_mod, b.constant(10, 0), edge_wrap);
  b.connect(addr_b, pick(addr_b, addrb_stepped, b.constant(10, 0)));

  Bus busy_next = b.mux(busy, Bus{b.and2(busy[0], b.not1(stop_all))},
                        step_eff);
  busy_next = b.mux(busy_next, b.constant(1, 0), halt_eff);
  busy_next = b.mux(busy_next, b.constant(1, 1), start);
  b.connect(busy, busy_next);

  Bus done_next = b.mux(done, Bus{b.or2(done[0], stop_all)}, step_eff);
  done_next = b.mux(done_next, b.constant(1, 0), start);
  b.connect(done, done_next);

  // -- Sticky stats ------------------------------------------------------------
  const Bus stats_base = b.mux(stats, b.constant(6, 0), clr_stats);
  const NetId node_ovf = b.and2(
      b.not1(b.ltU(node_cnt, Builder::slice(cfg_mrows, 0, 7))), ph_is1);
  Bus stats_next = stats_base;
  stats_next[1] = b.or2(stats_next[1], halt_eff);
  stats_next[4] = b.or2(stats_next[4], b.and2(stall_eff, mem_wait));
  const Bus stats_stepped = [&] {
    Bus v = stats_next;
    v[0] = b.or2(v[0], ext_pf);
    v[2] = b.or2(v[2], a_ge_nb);
    v[3] = b.or2(v[3], node_ovf);
    return v;
  }();
  Bus stats_final = b.mux(stats_next, stats_stepped, step_eff);
  b.connect(stats, stats_final);

  // -- Outputs (order matches packControlUnitOut) --------------------------------
  const NetId gate = b.and2(b.and2(b.or2(mem_ready, free_run), busy[0]),
                            step_en);
  b.output("mem_addr_a", edge_cnt);
  b.output("mem_addr_b", addr_b);
  b.output("we_a", Bus{b.and2(gate, ph_is1)});
  b.output("we_b", Bus{b.and2(gate, ph_is2)});
  b.output("node_sel", node_cnt);
  b.output("phase", phase);
  b.output("iter_cnt", iter_cnt);
  b.output("busy", busy);
  b.output("done", done);
  // stat_flag: rotate-right by dbg_sel, low 5 bits, busy mirrored on bit 5.
  Bus rot = stats;
  rot = b.mux(rot, rotr(rot, 1), dbg_sel[0]);
  rot = b.mux(rot, rotr(rot, 2), dbg_sel[1]);
  Bus stat_flag = Builder::slice(rot, 0, 5);
  stat_flag.push_back(busy[0]);
  b.output("stat_flag", stat_flag);

  nl.validate();
  return nl;
}

}  // namespace corebist::ldpc
