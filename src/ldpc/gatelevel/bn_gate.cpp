// Gate-level BIT_NODE (bit-exact with ldpc/arch/bit_node.cpp).
#include "ldpc/arch/bit_node.hpp"
#include "ldpc/gatelevel.hpp"
#include "ldpc/gatelevel_common.hpp"

namespace corebist::ldpc {

using namespace gl;

Netlist buildBitNode() {
  Netlist nl("BIT_NODE");
  Builder b(nl);

  // -- Ports (order must match packBitNodeIn / packBitNodeOut) -------------
  const Bus cn_msg = b.input("cn_msg", 8);
  const Bus ch_llr = b.input("ch_llr", 8);
  const Bus edge_idx = b.input("edge_idx", 6);
  const Bus degree = b.input("degree", 6);
  const Bus path_sel = b.input("path_sel", 4);
  const Bus vnode_id = b.input("vnode_id", 10);
  const Bus ctrl = b.input("ctrl", 12);

  const NetId start = ctrl[0];
  const NetId acc_en = ctrl[1];
  const NetId out_en = ctrl[2];
  const NetId load_llr = ctrl[3];
  const NetId flush = ctrl[4];
  const NetId sgn_force = ctrl[7];
  const NetId valid_in = ctrl[10];
  const NetId n_start = b.not1(start);

  // -- State ---------------------------------------------------------------
  const Bus acc = b.state("acc", 12);
  const Bus llr_reg = b.state("llr_reg", 8);
  std::vector<Bus> msg_buf;
  for (int e = 0; e < 4; ++e) {
    msg_buf.push_back(b.state("msg_buf" + std::to_string(e), 8));
  }
  const Bus out_msg = b.state("out_msg", 8);
  const Bus out_valid = b.state("out_valid", 1);
  const Bus edge_echo = b.state("edge_echo", 6);
  const Bus vnode_echo = b.state("vnode_echo", 10);
  const Bus flags = b.state("flags", 5);
  const Bus parity = b.state("parity", 1);

  // -- Input conditioning: width mode then scaling --------------------------
  // applyWidthMode: saturate to {8,6,4,3} bits by path_sel[1:0].
  std::vector<Bus> widths;
  widths.push_back(cn_msg);
  widths.push_back(satToBitsSigned(b, cn_msg, 6));
  widths.push_back(satToBitsSigned(b, cn_msg, 4));
  widths.push_back(satToBitsSigned(b, cn_msg, 3));
  const Bus masked = b.muxN(widths, Builder::slice(path_sel, 0, 2));
  // applyScale: {x1, x0.75, x0.5, 0} by path_sel[3:2].
  std::vector<Bus> scales;
  scales.push_back(masked);
  scales.push_back(b.sub(masked, asr(masked, 2)));
  scales.push_back(asr(masked, 1));
  scales.push_back(b.constant(8, 0));
  const Bus scaled = b.muxN(scales, Builder::slice(path_sel, 2, 2));

  // -- Accumulator ----------------------------------------------------------
  const SatAdd accadd = satAddOvf(b, acc, sext(scaled, 12));
  const NetId sat_event = b.and2(b.and2(acc_en, n_start), accadd.ovf);
  Bus acc_next = b.mux(acc, accadd.sum, acc_en);
  acc_next = b.mux(acc_next, sext(ch_llr, 12), start);
  b.connect(acc, acc_next);

  // -- LLR register ----------------------------------------------------------
  b.connectEn(llr_reg, ch_llr, load_llr);

  // -- Message buffer (4 x 8), flush clears, accumulate phase writes --------
  const Bus sel2 = Builder::slice(edge_idx, 0, 2);
  const Bus sel_onehot = b.decode(sel2);
  const Bus buf_wdata = b.mux(scaled, b.constant(8, 0), flush);
  for (int e = 0; e < 4; ++e) {
    const NetId we = b.or2(
        flush, b.and2(b.and2(acc_en, n_start), sel_onehot[static_cast<std::size_t>(e)]));
    b.connectEn(msg_buf[static_cast<std::size_t>(e)], buf_wdata, we);
  }

  // -- Parallel extrinsic lanes with full output conditioning -----------------
  const Bus total8 = Builder::slice(satToBitsSigned(b, acc, 8), 0, 8);
  std::vector<Bus> lanes;
  Bus lane_signs;
  for (int e = 0; e < 4; ++e) {
    const Bus diff9 =
        b.sub(sext(total8, 9), sext(msg_buf[static_cast<std::size_t>(e)], 9));
    const Bus ext = Builder::slice(satToBitsSigned(b, diff9, 8), 0, 8);
    // Per-lane width mode + scaling (mirrors the input conditioning).
    std::vector<Bus> lw;
    lw.push_back(ext);
    lw.push_back(satToBitsSigned(b, ext, 6));
    lw.push_back(satToBitsSigned(b, ext, 4));
    lw.push_back(satToBitsSigned(b, ext, 3));
    const Bus lmask = b.muxN(lw, Builder::slice(path_sel, 0, 2));
    std::vector<Bus> ls;
    ls.push_back(lmask);
    ls.push_back(b.sub(lmask, asr(lmask, 2)));
    ls.push_back(asr(lmask, 1));
    ls.push_back(b.constant(8, 0));
    const Bus cond = b.muxN(ls, Builder::slice(path_sel, 2, 2));
    lanes.push_back(cond);
    lane_signs.push_back(cond.back());
  }
  const NetId lane_par = b.reduceXor(lane_signs);
  const Bus selected = b.muxN(lanes, sel2);

  // -- Output register --------------------------------------------------------
  const Bus out_val = b.mux(selected, negSat(b, selected), sgn_force);
  b.connectEn(out_msg, out_val, out_en);
  b.connect(out_valid, Bus{b.and2(out_en, valid_in)});

  // -- Parity accumulator ------------------------------------------------------
  const NetId hard_old = acc.back();
  const NetId par_upd = b.and2(out_en, valid_in);
  Bus par_next = Bus{b.mux(parity[0], b.xor2(parity[0], hard_old), par_upd)};
  par_next = b.mux(par_next, b.constant(1, 0), start);
  b.connect(parity, par_next);

  // -- Echo registers ------------------------------------------------------------
  const NetId echo_en = b.or2(acc_en, out_en);
  b.connectEn(edge_echo, edge_idx, echo_en);
  b.connectEn(vnode_echo, vnode_id, echo_en);

  // -- Sticky flags: {sat, msg_zero, last_edge, acc_sign, lane_par} -----------
  const NetId msg_zero = b.and2(b.and2(acc_en, n_start),
                                b.eqConst(scaled, 0));
  const Bus deg_m1 = b.sub(degree, b.constant(6, 1));
  const NetId last_edge =
      b.and2(b.and2(echo_en, b.not1(b.eqConst(degree, 0))),
             b.eq(edge_idx, deg_m1));
  Bus flags_next;
  flags_next.push_back(b.or2(flags[0], sat_event));
  flags_next.push_back(b.or2(flags[1], msg_zero));
  flags_next.push_back(b.or2(flags[2], b.and2(last_edge, n_start)));
  flags_next.push_back(hard_old);
  flags_next.push_back(lane_par);
  flags_next = b.mux(b.constant(5, 0), flags_next, n_start);
  b.connect(flags, flags_next);

  // -- Outputs (order must match packBitNodeOut) -------------------------------
  b.output("bn_msg", out_msg);
  b.output("hard_bit", Bus{acc.back()});
  b.output("soft_out", acc);
  b.output("out_edge", edge_echo);
  b.output("out_vnode", vnode_echo);
  Bus state_dbg = Builder::slice(llr_reg, 0, 6);
  {
    const Bus hi = Builder::slice(msg_buf[0], 4, 4);
    state_dbg.insert(state_dbg.end(), hi.begin(), hi.end());
  }
  b.output("state_dbg", state_dbg);
  b.output("flags", flags);
  b.output("valid_out", out_valid);
  b.output("ready", Bus{b.not1(b.or2(acc_en, out_en))});
  b.output("parity_out", parity);

  nl.validate();
  return nl;
}

}  // namespace corebist::ldpc
