// Gate-level CHECK_NODE (bit-exact with ldpc/arch/check_node.cpp).
#include "ldpc/arch/check_node.hpp"
#include "ldpc/gatelevel.hpp"
#include "ldpc/gatelevel_common.hpp"

namespace corebist::ldpc {

using namespace gl;

Netlist buildCheckNode() {
  Netlist nl("CHECK_NODE");
  Builder b(nl);

  // -- Ports (order matches packCheckNodeIn / packCheckNodeOut) -------------
  const Bus bn_msg = b.input("bn_msg", 8);
  const Bus edge_idx = b.input("edge_idx", 6);
  const Bus row_deg = b.input("row_deg", 6);
  const Bus path_sel = b.input("path_sel", 4);
  const Bus cnode_id = b.input("cnode_id", 9);
  const Bus offset = b.input("offset", 8);
  const Bus ctrl = b.input("ctrl", 12);

  const NetId start = ctrl[0];
  const NetId load = ctrl[1];
  const NetId compute = ctrl[2];
  const NetId out_en = ctrl[3];
  const NetId flush = ctrl[4];
  const NetId use_offset = ctrl[5];
  const NetId use_norm = ctrl[6];
  const NetId clr_parity = ctrl[7];
  const NetId valid_in = ctrl[8];
  const NetId win_hi = ctrl[10];
  const NetId n_start = b.not1(start);

  // -- State -----------------------------------------------------------------
  std::vector<Bus> mag_buf;
  Bus sign_buf;
  for (int e = 0; e < kCnBufSize; ++e) {
    mag_buf.push_back(b.state("mag" + std::to_string(e), 8));
    sign_buf.push_back(b.state("sgn" + std::to_string(e), 1)[0]);
  }
  // Free-running window pipeline registers (values + base per lane).
  std::vector<std::vector<Bus>> win_val(kCnLanes);
  std::vector<Bus> win_base;
  for (int l = 0; l < kCnLanes; ++l) {
    for (int i = 0; i < kCnWindow; ++i) {
      win_val[static_cast<std::size_t>(l)].push_back(
          b.state("win" + std::to_string(l) + "_" + std::to_string(i), 8));
    }
    win_base.push_back(b.state("winbase" + std::to_string(l), 6));
  }
  const Bus min1 = b.state("min1", 8);
  const Bus min2 = b.state("min2", 8);
  const Bus argmin = b.state("argmin", 6);
  const Bus sign_prod = b.state("sign_prod", 1);
  const Bus offset_reg = b.state("offset_reg", 7);
  const Bus out_msg = b.state("out_msg", 8);
  const Bus out_valid = b.state("out_valid", 1);
  const Bus edge_echo = b.state("edge_echo", 6);
  const Bus cnode_echo = b.state("cnode_echo", 9);
  const Bus flags = b.state("flags", 4);

  // -- Magnitude/sign split ---------------------------------------------------
  const NetId sign_in = bn_msg.back();
  // |v| with -128 clamped to 127: |v| in 9 bits, then unsigned clamp at 127.
  const Bus abs9 = b.absSigned(sext(bn_msg, 9));
  const NetId over127 = abs9[7];  // 128 is the only value with bit7 set
  Bus mag_sat;
  for (int i = 0; i < 7; ++i) {
    mag_sat.push_back(b.or2(abs9[static_cast<std::size_t>(i)], over127));
  }
  mag_sat.push_back(b.lo());  // bit 7 always 0 after the clamp
  // widthClampMag: limits {127,31,7,3} by path_sel[1:0] (min(mag, lim)).
  std::vector<Bus> clamps;
  for (const unsigned lim : {127u, 31u, 7u, 3u}) {
    const Bus limb = b.constant(8, lim);
    const NetId gt = b.ltU(limb, mag_sat);
    clamps.push_back(b.mux(mag_sat, limb, gt));
  }
  const Bus mag_w = b.muxN(clamps, Builder::slice(path_sel, 0, 2));
  const NetId sat_mag_now = b.not1(b.eq(mag_w, mag_sat));

  // -- Buffer writes ------------------------------------------------------------
  const NetId load_eff = b.and2(b.and2(load, n_start), b.not1(flush));
  const Bus onehot = b.decode(edge_idx);
  const Bus mag_wdata = b.mux(mag_w, b.constant(8, 127), flush);
  const NetId sign_wdata = b.and2(sign_in, b.not1(flush));
  for (int e = 0; e < kCnBufSize; ++e) {
    const NetId we =
        b.or2(flush, b.and2(load_eff, onehot[static_cast<std::size_t>(e)]));
    b.connectEn(mag_buf[static_cast<std::size_t>(e)], mag_wdata, we);
    nl.connectDff(sign_buf[static_cast<std::size_t>(e)],
                  b.mux(sign_buf[static_cast<std::size_t>(e)], sign_wdata, we));
  }

  // -- Sign product ---------------------------------------------------------------
  {
    const NetId cleared = b.or2(start, clr_parity);
    const NetId held = b.and2(sign_prod[0], b.not1(cleared));
    const NetId loaded = b.xor2(sign_prod[0], sign_in);
    nl.connectDff(sign_prod[0], b.mux(held, loaded, load_eff));
  }

  // -- Offset register ----------------------------------------------------------
  b.connectEn(offset_reg, Builder::slice(offset, 0, 7), start);

  // -- Window pipeline capture (every cycle) -----------------------------------
  for (int l = 0; l < kCnLanes; ++l) {
    Bus base = edge_idx;
    if (l == 1) {
      base = b.add(edge_idx, b.mux(b.constant(6, 16), b.constant(6, 48),
                                   win_hi));
    }
    b.connect(win_base[static_cast<std::size_t>(l)], base);
    for (int i = 0; i < kCnWindow; ++i) {
      const Bus bi = b.add(base, b.constant(6, static_cast<unsigned>(i)));
      b.connect(win_val[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
                b.muxN(mag_buf, bi));
    }
  }

  // -- Tournament networks over the registered windows -------------------------
  struct Triple {
    Bus m1;
    Bus m2;
    Bus idx;
  };
  auto mergeTriple = [&](const Triple& x, const Triple& y) {
    const NetId take = b.ltU(y.m1, x.m1);
    Triple r;
    r.m1 = b.mux(x.m1, y.m1, take);
    r.idx = b.mux(x.idx, y.idx, take);
    const Bus m2_keep = b.minU(x.m2, y.m1).first;
    const Bus m2_take = b.minU(x.m1, y.m2).first;
    r.m2 = b.mux(m2_keep, m2_take, take);
    return r;
  };
  // Pairing order replicates cnTournament exactly.
  auto tournament = [&](std::vector<Triple> layer) {
    while (layer.size() > 1) {
      std::vector<Triple> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(mergeTriple(layer[i], layer[i + 1]));
      }
      if (layer.size() % 2 != 0) next.push_back(layer.back());
      layer = std::move(next);
    }
    return layer.front();
  };
  std::vector<Triple> lane_result;
  for (int l = 0; l < kCnLanes; ++l) {
    std::vector<Triple> leaves;
    for (int i = 0; i < kCnWindow; ++i) {
      leaves.push_back(Triple{
          win_val[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
          b.constant(8, 0xFF),
          b.add(win_base[static_cast<std::size_t>(l)],
                b.constant(6, static_cast<unsigned>(i)))});
    }
    lane_result.push_back(tournament(std::move(leaves)));
  }
  Triple merged{min1, min2, argmin};
  for (int l = 0; l < kCnLanes; ++l) {
    merged = mergeTriple(merged, lane_result[static_cast<std::size_t>(l)]);
  }
  const Bus merged_m1 = merged.m1;
  const Bus merged_m2 = merged.m2;
  const Bus merged_idx = merged.idx;
  const NetId tie_now = b.eq(lane_result[0].m1, lane_result[1].m1);
  const NetId compute_eff = b.and2(compute, n_start);

  auto minReg = [&](const Bus& q, const Bus& merged, const Bus& start_val) {
    Bus next = b.mux(q, merged, compute_eff);
    next = b.mux(next, start_val, start);
    b.connect(q, next);
  };
  minReg(min1, merged_m1, b.constant(8, 0xFF));
  minReg(min2, merged_m2, b.constant(8, 0xFF));
  minReg(argmin, merged_idx, b.constant(6, 0));

  // -- Output phase -----------------------------------------------------------------
  const NetId is_argmin = b.eq(edge_idx, argmin);
  Bus mag = b.mux(min1, min2, is_argmin);
  // Offset correction (saturating unsigned subtract).
  const Bus off8 = [&] {
    Bus v = offset_reg;
    v.push_back(b.lo());
    return v;
  }();
  const NetId uflow = b.ltU(mag, off8);
  const NetId offset_uflow = b.and2(b.and2(out_en, use_offset), uflow);
  const Bus off_sub = b.sub(mag, off8);
  mag = b.mux(mag, b.mux(off_sub, b.constant(8, 0), uflow), use_offset);
  // Normalization x0.75.
  mag = b.mux(mag, b.sub(mag, lsr(b, mag, 2)), use_norm);
  // path_sel scaling.
  std::vector<Bus> scales;
  scales.push_back(mag);
  scales.push_back(b.sub(mag, lsr(b, mag, 2)));
  scales.push_back(lsr(b, mag, 1));
  scales.push_back(b.constant(8, 0));
  mag = b.muxN(scales, Builder::slice(path_sel, 2, 2));
  // Clamp to 127 (bit 7 set means > 127 for these unsigned values).
  mag = b.mux(mag, b.constant(8, 127), mag.back());
  // Re-sign.
  const NetId sgn = b.xor2(sign_prod[0], b.muxN(
      [&] {
        std::vector<Bus> s;
        for (int e = 0; e < kCnBufSize; ++e) {
          s.push_back(Bus{sign_buf[static_cast<std::size_t>(e)]});
        }
        return s;
      }(),
      edge_idx)[0]);
  const Bus signed_out = b.mux(mag, b.neg(mag), sgn);
  b.connectEn(out_msg, signed_out, out_en);
  b.connect(out_valid, Bus{b.and2(out_en, valid_in)});

  // -- Echo registers -------------------------------------------------------------
  const NetId echo_en = b.or2(b.or2(load, compute), out_en);
  b.connectEn(edge_echo, edge_idx, echo_en);
  b.connectEn(cnode_echo, cnode_id, echo_en);

  // -- Sticky flags {tie, last_edge, offset_uflow, sat_mag} -------------------------
  const Bus deg_m1 = b.sub(row_deg, b.constant(6, 1));
  const NetId last_edge =
      b.and2(b.and2(b.or2(load, out_en), b.not1(b.eqConst(row_deg, 0))),
             b.eq(edge_idx, deg_m1));
  Bus flags_next;
  flags_next.push_back(b.or2(flags[0], b.and2(compute_eff, tie_now)));
  flags_next.push_back(b.or2(flags[1], last_edge));
  flags_next.push_back(b.or2(flags[2], offset_uflow));
  flags_next.push_back(b.or2(flags[3], b.and2(load_eff, sat_mag_now)));
  flags_next = b.mux(b.constant(4, 0), flags_next, n_start);
  b.connect(flags, flags_next);

  // Observation mode: XOR folds of the window pipelines on the debug bytes.
  const NetId dbg = ctrl[11];
  Bus fold0 = win_val[0][0];
  Bus fold1 = win_val[1][0];
  for (int i = 1; i < kCnWindow; ++i) {
    fold0 = b.bw(GateType::kXor, fold0, win_val[0][static_cast<std::size_t>(i)]);
    fold1 = b.bw(GateType::kXor, fold1, win_val[1][static_cast<std::size_t>(i)]);
  }

  // -- Outputs (order matches packCheckNodeOut) --------------------------------------
  b.output("cn_msg", out_msg);
  b.output("out_edge", edge_echo);
  b.output("out_cnode", cnode_echo);
  b.output("parity_ok", Bus{b.not1(sign_prod[0])});
  b.output("min1_dbg", b.mux(min1, fold0, dbg));
  b.output("min2_dbg", b.mux(min2, fold1, dbg));
  b.output("sign_dbg", sign_prod);
  b.output("argmin_dbg", argmin);
  b.output("flags", flags);
  b.output("valid_out", out_valid);
  b.output("ready", Bus{b.not1(b.or2(b.or2(load, compute), out_en))});

  nl.validate();
  return nl;
}

}  // namespace corebist::ldpc
