#include "ldpc/arch/check_node.hpp"

namespace corebist::ldpc {

namespace {
int sext(unsigned v, int bits) {
  const unsigned m = 1u << (bits - 1);
  return static_cast<int>(v ^ m) - static_cast<int>(m);
}
unsigned toBits(int v, int bits) {
  return static_cast<unsigned>(v) & ((1u << bits) - 1u);
}
}  // namespace

CnMinTriple cnMerge2(const CnMinTriple& x, const CnMinTriple& y) {
  CnMinTriple r;
  if (y.m1 < x.m1) {
    r.m1 = y.m1;
    r.idx = y.idx;
    r.m2 = x.m1 < y.m2 ? x.m1 : y.m2;
  } else {
    r.m1 = x.m1;
    r.idx = x.idx;
    r.m2 = y.m1 < x.m2 ? y.m1 : x.m2;
  }
  return r;
}

CnMinTriple cnTournament(const CnMinTriple* leaves, int count) {
  std::array<CnMinTriple, kCnWindow> layer{};
  for (int i = 0; i < count; ++i) layer[static_cast<std::size_t>(i)] = leaves[i];
  int n = count;
  while (n > 1) {
    int o = 0;
    for (int i = 0; i + 1 < n; i += 2) {
      layer[static_cast<std::size_t>(o++)] =
          cnMerge2(layer[static_cast<std::size_t>(i)],
                   layer[static_cast<std::size_t>(i + 1)]);
    }
    if (n % 2 != 0) layer[static_cast<std::size_t>(o++)] = layer[static_cast<std::size_t>(n - 1)];
    n = o;
  }
  return layer[0];
}

unsigned CheckNodeModel::widthClampMag(unsigned mag, unsigned sel) {
  static constexpr unsigned kLimit[4] = {127u, 31u, 7u, 3u};
  const unsigned lim = kLimit[sel & 3u];
  return mag > lim ? lim : mag;
}

unsigned CheckNodeModel::scaleMag(unsigned mag, unsigned sel) {
  switch (sel & 3u) {
    case 0:
      return mag;
    case 1:
      return mag - (mag >> 2);
    case 2:
      return mag >> 1;
    default:
      return 0;
  }
}

void CheckNodeModel::reset() { st_ = State{}; }

CheckNodeOut CheckNodeModel::eval(const CheckNodeIn& in) const {
  CheckNodeOut out;
  out.cn_msg = st_.out_msg;
  out.out_edge = st_.edge_echo;
  out.out_cnode = st_.cnode_echo;
  out.parity_ok = st_.sign_prod == 0 ? 1u : 0u;
  // Observation mode (dbg high): the debug bytes expose an XOR fold of each
  // lane's window pipeline instead of the min registers. This is the DfT
  // hook that makes the magnitude buffer observable under pseudo-random
  // patterns (the min tournaments alone only ever expose minima).
  if ((in.ctrl & CnCtrl::kDbg) != 0) {
    unsigned fold0 = 0;
    unsigned fold1 = 0;
    for (int i = 0; i < kCnWindow; ++i) {
      fold0 ^= st_.win_val[0][static_cast<std::size_t>(i)];
      fold1 ^= st_.win_val[1][static_cast<std::size_t>(i)];
    }
    out.min1_dbg = fold0 & 0xFFu;
    out.min2_dbg = fold1 & 0xFFu;
  } else {
    out.min1_dbg = st_.min1;
    out.min2_dbg = st_.min2;
  }
  out.sign_dbg = st_.sign_prod;
  out.argmin_dbg = st_.argmin;
  out.flags = st_.flags;
  out.valid_out = st_.out_valid;
  out.ready =
      (in.ctrl & (CnCtrl::kLoad | CnCtrl::kCompute | CnCtrl::kOutEn)) == 0
          ? 1u
          : 0u;
  return out;
}

void CheckNodeModel::tick(const CheckNodeIn& in) {
  const bool start = (in.ctrl & CnCtrl::kStart) != 0;
  const bool load = (in.ctrl & CnCtrl::kLoad) != 0;
  const bool compute = (in.ctrl & CnCtrl::kCompute) != 0;
  const bool out_en = (in.ctrl & CnCtrl::kOutEn) != 0;
  const bool flush = (in.ctrl & CnCtrl::kFlush) != 0;
  const bool use_offset = (in.ctrl & CnCtrl::kUseOffset) != 0;
  const bool use_norm = (in.ctrl & CnCtrl::kUseNorm) != 0;
  const bool clr_parity = (in.ctrl & CnCtrl::kClrParity) != 0;
  const bool valid_in = (in.ctrl & CnCtrl::kValidIn) != 0;
  const bool win_hi = (in.ctrl & CnCtrl::kWinHi) != 0;

  State next = st_;

  // Magnitude/sign split of the incoming message (|-128| clamps to 127).
  const unsigned sign_in = in.bn_msg < 0 ? 1u : 0u;
  const unsigned mag_raw =
      static_cast<unsigned>(in.bn_msg < 0 ? -in.bn_msg : in.bn_msg);
  const unsigned mag_sat = mag_raw > 127u ? 127u : mag_raw;
  const unsigned mag_w = widthClampMag(mag_sat, in.path_sel & 3u);
  probe(0);

  if (start) {
    probe(1);
    next.min1 = 0xFF;
    next.min2 = 0xFF;
    next.argmin = 0;
    next.sign_prod = 0;
    next.offset_reg = in.offset & 0x7Fu;
    next.flags = 0;
  }
  if (clr_parity) {
    probe(2);
    next.sign_prod = 0;
  }

  if (flush) {
    probe(3);
    // Invalidate to maximum magnitude so stale entries never win the min
    // tournaments (the decoder protocol flushes before loading each row).
    next.mag_buf.fill(127);
    next.sign_buf.fill(0);
  } else if (load && !start) {
    probe(4);
    next.mag_buf[in.edge_idx & 63u] = mag_w;
    next.sign_buf[in.edge_idx & 63u] = sign_in;
    next.sign_prod = st_.sign_prod ^ sign_in;
    if (mag_w != mag_sat) {
      probe(5);
      next.flags |= 8u;  // sat_mag
    }
  }

  // Free-running window pipeline: every cycle the crossbars capture the
  // window pointed to by the current edge index (lane 1 is offset by 16 or
  // 48 under win_hi). The tournament below therefore sees the window of the
  // PREVIOUS cycle, exactly like the registered hardware.
  for (int l = 0; l < kCnLanes; ++l) {
    unsigned base = in.edge_idx & 63u;
    if (l == 1) base = (base + (win_hi ? 48u : 16u)) & 63u;
    next.win_base[static_cast<std::size_t>(l)] = base;
    for (int i = 0; i < kCnWindow; ++i) {
      next.win_val[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)] =
          st_.mag_buf[(base + static_cast<unsigned>(i)) & 63u];
    }
  }

  unsigned tie = 0;
  if (compute && !start) {
    probe(6);
    std::array<CnMinTriple, kCnLanes> lane{};
    for (int l = 0; l < kCnLanes; ++l) {
      std::array<CnMinTriple, kCnWindow> leaves{};
      for (int i = 0; i < kCnWindow; ++i) {
        leaves[static_cast<std::size_t>(i)] = CnMinTriple{
            st_.win_val[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)],
            0xFFu,
            (st_.win_base[static_cast<std::size_t>(l)] +
             static_cast<unsigned>(i)) &
                63u};
      }
      lane[static_cast<std::size_t>(l)] =
          cnTournament(leaves.data(), kCnWindow);
    }
    if (lane[0].m1 == lane[1].m1) {
      probe(7);
      tie = 1;
    }
    CnMinTriple merged{st_.min1, st_.min2, st_.argmin};
    merged = cnMerge2(merged, lane[0]);
    merged = cnMerge2(merged, lane[1]);
    next.min1 = merged.m1;
    next.min2 = merged.m2;
    next.argmin = merged.idx;
  }

  unsigned offset_uflow = 0;
  if (out_en) {
    probe(8);
    const unsigned e = in.edge_idx & 63u;
    unsigned mag = (e == st_.argmin) ? st_.min2 : st_.min1;
    if (e == st_.argmin) probe(9);
    if (use_offset) {
      probe(10);
      if (mag < st_.offset_reg) {
        probe(11);
        offset_uflow = 1;
        mag = 0;
      } else {
        mag -= st_.offset_reg;
      }
    }
    if (use_norm) {
      probe(12);
      mag = mag - (mag >> 2);
    }
    mag = scaleMag(mag, (in.path_sel >> 2) & 3u);
    if (mag > 127u) mag = 127u;
    const unsigned sign = st_.sign_prod ^ st_.sign_buf[e];
    next.out_msg = sign != 0 ? -static_cast<int>(mag)
                             : static_cast<int>(mag);
    next.out_valid = valid_in ? 1u : 0u;
    if (sign != 0) probe(13);
  } else {
    probe(14);
    next.out_valid = 0;
  }

  if (load || compute || out_en) {
    probe(15);
    next.edge_echo = in.edge_idx & 63u;
    next.cnode_echo = in.cnode_id & 0x1FFu;
  }

  if (!start) {
    unsigned f = next.flags;
    if (tie != 0) f |= 1u;
    if ((load || out_en) && in.row_deg != 0 &&
        (in.edge_idx & 63u) == ((in.row_deg - 1u) & 63u)) {
      probe(16);
      f |= 2u;
    }
    if (offset_uflow != 0) {
      probe(17);
      f |= 4u;
    }
    next.flags = f & 0xFu;
  }
  probe(18);

  st_ = next;
}

std::uint64_t packCheckNodeIn(const CheckNodeIn& in) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(static_cast<std::uint64_t>(toBits(in.bn_msg, 8)), 8);
  put(in.edge_idx, 6);
  put(in.row_deg, 6);
  put(in.path_sel, 4);
  put(in.cnode_id, 9);
  put(in.offset, 8);
  put(in.ctrl, 12);
  return w;
}

CheckNodeIn unpackCheckNodeIn(std::uint64_t bits) {
  CheckNodeIn in;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  in.bn_msg = sext(take(8), 8);
  in.edge_idx = take(6);
  in.row_deg = take(6);
  in.path_sel = take(4);
  in.cnode_id = take(9);
  in.offset = take(8);
  in.ctrl = take(12);
  return in;
}

std::uint64_t packCheckNodeOut(const CheckNodeOut& out) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(static_cast<std::uint64_t>(toBits(out.cn_msg, 8)), 8);
  put(out.out_edge, 6);
  put(out.out_cnode, 9);
  put(out.parity_ok, 1);
  put(out.min1_dbg, 8);
  put(out.min2_dbg, 8);
  put(out.sign_dbg, 1);
  put(out.argmin_dbg, 6);
  put(out.flags, 4);
  put(out.valid_out, 1);
  put(out.ready, 1);
  return w;
}

CheckNodeOut unpackCheckNodeOut(std::uint64_t bits) {
  CheckNodeOut out;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  out.cn_msg = sext(take(8), 8);
  out.out_edge = take(6);
  out.out_cnode = take(9);
  out.parity_ok = take(1);
  out.min1_dbg = take(8);
  out.min2_dbg = take(8);
  out.sign_dbg = take(1);
  out.argmin_dbg = take(6);
  out.flags = take(4);
  out.valid_out = take(1);
  out.ready = take(1);
  return out;
}

}  // namespace corebist::ldpc
