#include "ldpc/arch/decoder.hpp"

#include <stdexcept>

namespace corebist::ldpc {

SerialDecoder::SerialDecoder(const LdpcCode& code, int max_iters,
                             StatementCoverage* bn_cov,
                             StatementCoverage* cn_cov)
    : code_(code), max_iters_(max_iters), bn_(bn_cov), cn_(cn_cov) {
  if (code.maxColDegree() > 4) {
    throw std::invalid_argument(
        "SerialDecoder: bit-node degree exceeds the 4-entry message buffer");
  }
  if (code.maxRowDegree() > kCnBufSize) {
    throw std::invalid_argument(
        "SerialDecoder: check-row degree exceeds the magnitude buffer");
  }
  edge_base_row_.reserve(static_cast<std::size_t>(code.m()));
  int at = 0;
  for (int r = 0; r < code.m(); ++r) {
    edge_base_row_.push_back(at);
    at += static_cast<int>(code.row(r).size());
  }
  mem_b2c_.assign(static_cast<std::size_t>(at), 0);
  mem_c2b_.assign(static_cast<std::size_t>(at), 0);
}

DecodeResult SerialDecoder::decode(const std::vector<int>& llr8) {
  if (static_cast<int>(llr8.size()) != code_.n()) {
    throw std::invalid_argument("SerialDecoder: wrong LLR length");
  }
  DecodeResult res;
  res.word.assign(static_cast<std::size_t>(code_.n()), 0);
  cycles_ = 0;
  std::fill(mem_b2c_.begin(), mem_b2c_.end(), 0);
  std::fill(mem_c2b_.begin(), mem_c2b_.end(), 0);
  bn_.reset();
  cn_.reset();

  // Edge slot of (row, bit): position of `bit` within row r.
  auto slotOf = [this](int r, int bit) {
    const auto& row = code_.row(r);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] == bit) {
        return edge_base_row_[static_cast<std::size_t>(r)] +
               static_cast<int>(i);
      }
    }
    throw std::logic_error("SerialDecoder: edge not found");
  };

  for (int iter = 1; iter <= max_iters_; ++iter) {
    // ---- Check-node pass: one virtual CN per row ----
    for (int r = 0; r < code_.m(); ++r) {
      const auto& row = code_.row(r);
      const int d = static_cast<int>(row.size());
      const int base = edge_base_row_[static_cast<std::size_t>(r)];
      CheckNodeIn in;
      in.cnode_id = static_cast<unsigned>(r);
      in.ctrl = CnCtrl::kFlush;
      cn_.tick(in);
      ++cycles_;
      in.ctrl = CnCtrl::kStart;
      cn_.tick(in);
      ++cycles_;
      // Load one bit-to-check message per clock (memory A reads).
      for (int e = 0; e < d; ++e) {
        in = CheckNodeIn{};
        in.cnode_id = static_cast<unsigned>(r);
        in.ctrl = CnCtrl::kLoad;
        in.edge_idx = static_cast<unsigned>(e);
        in.row_deg = static_cast<unsigned>(d);
        in.bn_msg = mem_b2c_[static_cast<std::size_t>(base + e)];
        cn_.tick(in);
        ++cycles_;
      }
      // Fold windows: pointer cycle then compute cycle per 10-entry window.
      for (int w = 0; w < d; w += kCnWindow) {
        in = CheckNodeIn{};
        in.cnode_id = static_cast<unsigned>(r);
        in.edge_idx = static_cast<unsigned>(w);
        cn_.tick(in);  // pointer cycle loads the window pipeline
        ++cycles_;
        in.ctrl = CnCtrl::kCompute;
        cn_.tick(in);
        ++cycles_;
      }
      // Emit one check-to-bit message per clock (memory B writes), with the
      // x0.75 normalization of the fixed-point reference decoder.
      for (int e = 0; e < d; ++e) {
        in = CheckNodeIn{};
        in.cnode_id = static_cast<unsigned>(r);
        in.ctrl = CnCtrl::kOutEn | CnCtrl::kUseNorm | CnCtrl::kValidIn;
        in.edge_idx = static_cast<unsigned>(e);
        in.row_deg = static_cast<unsigned>(d);
        cn_.tick(in);
        ++cycles_;
        mem_c2b_[static_cast<std::size_t>(base + e)] = cn_.eval(in).cn_msg;
      }
    }

    // ---- Bit-node pass: one virtual BN per column ----
    for (int bit = 0; bit < code_.n(); ++bit) {
      const auto& col = code_.col(bit);
      const int d = static_cast<int>(col.size());
      BitNodeIn in;
      in.vnode_id = static_cast<unsigned>(bit);
      in.ch_llr = satClamp(llr8[static_cast<std::size_t>(bit)], 8);
      in.ctrl = BnCtrl::kStart | BnCtrl::kLoadLlr | BnCtrl::kFlush;
      bn_.tick(in);
      ++cycles_;
      // Accumulate one check-to-bit message per clock (memory B reads).
      for (int e = 0; e < d; ++e) {
        in = BitNodeIn{};
        in.vnode_id = static_cast<unsigned>(bit);
        in.ctrl = BnCtrl::kAccEn;
        in.edge_idx = static_cast<unsigned>(e);
        in.degree = static_cast<unsigned>(d);
        in.cn_msg =
            mem_c2b_[static_cast<std::size_t>(slotOf(col[static_cast<std::size_t>(e)], bit))];
        bn_.tick(in);
        ++cycles_;
      }
      // Emit extrinsic messages (memory A writes) and the hard decision.
      for (int e = 0; e < d; ++e) {
        in = BitNodeIn{};
        in.vnode_id = static_cast<unsigned>(bit);
        in.ctrl = BnCtrl::kOutEn | BnCtrl::kValidIn;
        in.edge_idx = static_cast<unsigned>(e);
        in.degree = static_cast<unsigned>(d);
        bn_.tick(in);
        ++cycles_;
        const BitNodeOut out = bn_.eval(in);
        mem_b2c_[static_cast<std::size_t>(slotOf(col[static_cast<std::size_t>(e)], bit))] =
            out.bn_msg;
        res.word[static_cast<std::size_t>(bit)] = out.hard_bit;
      }
      if (d == 0) {
        res.word[static_cast<std::size_t>(bit)] =
            llr8[static_cast<std::size_t>(bit)] < 0 ? 1 : 0;
      }
    }

    res.iterations = iter;
    if (code_.checkWord(res.word)) {
      res.converged = true;
      return res;
    }
  }
  return res;
}

}  // namespace corebist::ldpc
