#include "ldpc/arch/adapters.hpp"

#include "ldpc/arch/bit_node.hpp"
#include "ldpc/arch/check_node.hpp"
#include "ldpc/arch/control_unit.hpp"

namespace corebist::ldpc {

namespace {

class BitNodeAdapter final : public ModuleAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "BIT_NODE"; }
  [[nodiscard]] int numStatements() const override {
    return BitNodeModel::kNumStatements;
  }
  void reset(StatementCoverage* cov) override {
    model_ = BitNodeModel(cov);
    model_.reset();
  }
  void step(std::uint64_t in_bits) override {
    model_.tick(unpackBitNodeIn(in_bits));
  }

 private:
  BitNodeModel model_{nullptr};
};

class CheckNodeAdapter final : public ModuleAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "CHECK_NODE"; }
  [[nodiscard]] int numStatements() const override {
    return CheckNodeModel::kNumStatements;
  }
  void reset(StatementCoverage* cov) override {
    model_ = CheckNodeModel(cov);
    model_.reset();
  }
  void step(std::uint64_t in_bits) override {
    model_.tick(unpackCheckNodeIn(in_bits));
  }

 private:
  CheckNodeModel model_{nullptr};
};

class ControlUnitAdapter final : public ModuleAdapter {
 public:
  [[nodiscard]] std::string name() const override { return "CONTROL_UNIT"; }
  [[nodiscard]] int numStatements() const override {
    return ControlUnitModel::kNumStatements;
  }
  void reset(StatementCoverage* cov) override {
    model_ = ControlUnitModel(cov);
    model_.reset();
  }
  void step(std::uint64_t in_bits) override {
    model_.tick(unpackControlUnitIn(in_bits));
  }

 private:
  ControlUnitModel model_{nullptr};
};

}  // namespace

std::unique_ptr<ModuleAdapter> makeBitNodeAdapter() {
  return std::make_unique<BitNodeAdapter>();
}
std::unique_ptr<ModuleAdapter> makeCheckNodeAdapter() {
  return std::make_unique<CheckNodeAdapter>();
}
std::unique_ptr<ModuleAdapter> makeControlUnitAdapter() {
  return std::make_unique<ControlUnitAdapter>();
}

}  // namespace corebist::ldpc
