// Reconfigurable Serial LDPC decoder (paper §4, Fig. 7 / [15]).
//
// One physical BIT_NODE and one physical CHECK_NODE emulate every virtual
// node of the code; the two interleaving memories carry the bit-to-check
// and check-to-bit messages between the passes. This model drives the
// *behavioural port-level models* of the two processing elements cycle by
// cycle (start/flush/load/compute/out command sequences) — i.e. the decoder
// is assembled from exactly the modules the BIST architecture tests — and
// uses the CONTROL_UNIT-style schedule for address generation.
//
// Constraints inherited from the hardware: bit-node degree <= 4 (message
// buffer depth) and check-row degree <= 64 (magnitude buffer depth).
#ifndef COREBIST_LDPC_ARCH_DECODER_HPP_
#define COREBIST_LDPC_ARCH_DECODER_HPP_

#include <cstdint>
#include <vector>

#include "ldpc/arch/bit_node.hpp"
#include "ldpc/arch/check_node.hpp"
#include "ldpc/code.hpp"
#include "ldpc/msgpass.hpp"

namespace corebist::ldpc {

class SerialDecoder {
 public:
  SerialDecoder(const LdpcCode& code, int max_iters = 20,
                StatementCoverage* bn_cov = nullptr,
                StatementCoverage* cn_cov = nullptr);

  /// Decode 8-bit channel LLRs (positive = bit 0 more likely).
  [[nodiscard]] DecodeResult decode(const std::vector<int>& llr8);

  /// Clock cycles consumed by the last decode (serial schedule).
  [[nodiscard]] std::size_t cyclesSimulated() const noexcept {
    return cycles_;
  }

 private:
  const LdpcCode& code_;
  int max_iters_;
  BitNodeModel bn_;
  CheckNodeModel cn_;
  // Interleaving memories: one message slot per graph edge.
  std::vector<int> mem_b2c_;  // bit -> check (memory A)
  std::vector<int> mem_c2b_;  // check -> bit (memory B)
  std::vector<int> edge_base_row_;  // first edge slot of each row
  std::size_t cycles_ = 0;
};

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_ARCH_DECODER_HPP_
