#include "ldpc/arch/bit_node.hpp"

#include "ldpc/msgpass.hpp"

namespace corebist::ldpc {

namespace {
constexpr int kAccBits = 12;
constexpr int kMsgBits = 8;

int sext(unsigned v, int bits) {
  const unsigned m = 1u << (bits - 1);
  return static_cast<int>((v ^ m)) - static_cast<int>(m);
}
unsigned toBits(int v, int bits) {
  return static_cast<unsigned>(v) & ((1u << bits) - 1u);
}
}  // namespace

int BitNodeModel::applyWidthMode(int v, unsigned sel) {
  switch (sel & 3u) {
    case 0:
      return satClamp(v, 8);
    case 1:
      return satClamp(v, 6);
    case 2:
      return satClamp(v, 4);
    default:
      return satClamp(v, 3);
  }
}

int BitNodeModel::applyScale(int v, unsigned sel) {
  switch (sel & 3u) {
    case 0:
      return v;
    case 1:
      return v - (v >> 2);  // x0.75 (arithmetic shift, rounds toward -inf)
    case 2:
      return v >> 1;  // x0.5
    default:
      return 0;
  }
}

void BitNodeModel::reset() { st_ = State{}; }

BitNodeOut BitNodeModel::eval(const BitNodeIn& in) const {
  BitNodeOut out;
  out.bn_msg = st_.out_msg;
  out.hard_bit = st_.acc < 0 ? 1u : 0u;
  out.soft_out = st_.acc;
  out.out_edge = st_.edge_echo;
  out.out_vnode = st_.vnode_echo;
  // state_dbg = {msg_buf[0][7:4], llr_reg[5:0]}
  out.state_dbg = (toBits(st_.msg_buf[0], 8) >> 4 << 6) |
                  (toBits(st_.llr_reg, 8) & 0x3Fu);
  out.flags = st_.flags;
  out.valid_out = st_.out_valid;
  out.ready = (in.ctrl & (BnCtrl::kAccEn | BnCtrl::kOutEn)) == 0 ? 1u : 0u;
  out.parity_out = st_.parity;
  return out;
}

void BitNodeModel::tick(const BitNodeIn& in) {
  const bool start = (in.ctrl & BnCtrl::kStart) != 0;
  const bool acc_en = (in.ctrl & BnCtrl::kAccEn) != 0;
  const bool out_en = (in.ctrl & BnCtrl::kOutEn) != 0;
  const bool load_llr = (in.ctrl & BnCtrl::kLoadLlr) != 0;
  const bool flush = (in.ctrl & BnCtrl::kFlush) != 0;
  const bool sgn_force = (in.ctrl & BnCtrl::kSgnForce) != 0;
  const bool valid_in = (in.ctrl & BnCtrl::kValidIn) != 0;

  // Input conditioning: width mode then scaling (path_sel constrained port).
  const int masked = applyWidthMode(satClamp(in.cn_msg, kMsgBits),
                                    in.path_sel & 3u);
  probe(0);
  const int scaled = applyScale(masked, (in.path_sel >> 2) & 3u);
  if (scaled == 0) probe(1);

  State next = st_;

  // Channel LLR register.
  if (load_llr) {
    probe(2);
    next.llr_reg = satClamp(in.ch_llr, kMsgBits);
  }

  // Accumulator: seeded with the LLR on start, saturating adds during the
  // accumulate phase.
  bool sat_event = false;
  if (start) {
    probe(3);
    next.acc = satClamp(in.ch_llr, kAccBits);
    next.parity = 0;
    next.flags = 0;
  } else if (acc_en) {
    probe(4);
    const int sum = st_.acc + scaled;
    next.acc = satClamp(sum, kAccBits);
    if (next.acc != sum) {
      probe(5);
      sat_event = true;
    }
  }

  // Message buffer write (accumulate phase) / flush.
  if (flush) {
    probe(6);
    next.msg_buf = {0, 0, 0, 0};
  } else if (acc_en && !start) {
    probe(7);
    next.msg_buf[in.edge_idx & 3u] = scaled;
  }

  // Output phase: all four extrinsic lanes compute in parallel (the building
  // block of the fully-parallel configuration); each lane carries the full
  // width-mode + scaling conditioning of an outgoing message and the active
  // edge's lane is selected. Lane parity (XOR of conditioned lane signs) is
  // a debug flag observing the replicated lanes.
  unsigned lane_par = 0;
  int selected = 0;
  {
    const int total8 = satClamp(st_.acc, kMsgBits);
    for (int lane = 0; lane < 4; ++lane) {
      const int diff = total8 - st_.msg_buf[static_cast<std::size_t>(lane)];
      const int ext = satClamp(diff, kMsgBits);
      const int cond = applyScale(applyWidthMode(ext, in.path_sel & 3u),
                                  (in.path_sel >> 2) & 3u);
      lane_par ^= cond < 0 ? 1u : 0u;
      if (lane == static_cast<int>(in.edge_idx & 3u)) {
        probe(8 + lane);
        selected = cond;
      }
    }
  }
  if (out_en) {
    probe(12);
    int v = selected;
    if (sgn_force) {
      probe(13);
      v = satClamp(-v, kMsgBits);
    }
    next.out_msg = v;
    next.out_valid = valid_in ? 1u : 0u;
    if (valid_in && !start) {  // start has priority on the parity register
      probe(14);
      next.parity = st_.parity ^ (st_.acc < 0 ? 1u : 0u);
    }
  } else {
    probe(15);
    next.out_valid = 0;
  }

  // Echo registers follow the pipeline while either phase is active.
  if (acc_en || out_en) {
    probe(16);
    next.edge_echo = in.edge_idx & 0x3Fu;
    next.vnode_echo = in.vnode_id & 0x3FFu;
  }

  // Sticky flags: {sat, msg_zero, last_edge, acc_sign, lane_par}.
  if (!start) {
    unsigned f = st_.flags;
    if (sat_event) f |= 1u;
    if (acc_en && scaled == 0) {
      probe(17);
      f |= 2u;
    }
    if ((acc_en || out_en) && in.degree != 0 &&
        (in.edge_idx & 0x3Fu) == ((in.degree - 1u) & 0x3Fu)) {
      probe(18);
      f |= 4u;
    }
    f = (f & ~8u) | (st_.acc < 0 ? 8u : 0u);
    f = (f & ~16u) | (lane_par != 0 ? 16u : 0u);
    next.flags = f & 0x1Fu;
  }
  probe(19);

  st_ = next;
}

std::uint64_t packBitNodeIn(const BitNodeIn& in) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(static_cast<std::uint64_t>(toBits(in.cn_msg, 8)), 8);
  put(static_cast<std::uint64_t>(toBits(in.ch_llr, 8)), 8);
  put(in.edge_idx, 6);
  put(in.degree, 6);
  put(in.path_sel, 4);
  put(in.vnode_id, 10);
  put(in.ctrl, 12);
  return w;
}

BitNodeIn unpackBitNodeIn(std::uint64_t bits) {
  BitNodeIn in;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  in.cn_msg = sext(take(8), 8);
  in.ch_llr = sext(take(8), 8);
  in.edge_idx = take(6);
  in.degree = take(6);
  in.path_sel = take(4);
  in.vnode_id = take(10);
  in.ctrl = take(12);
  return in;
}

std::uint64_t packBitNodeOut(const BitNodeOut& out) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(static_cast<std::uint64_t>(toBits(out.bn_msg, 8)), 8);
  put(out.hard_bit, 1);
  put(static_cast<std::uint64_t>(toBits(out.soft_out, 12)), 12);
  put(out.out_edge, 6);
  put(out.out_vnode, 10);
  put(out.state_dbg, 10);
  put(out.flags, 5);
  put(out.valid_out, 1);
  put(out.ready, 1);
  put(out.parity_out, 1);
  return w;
}

BitNodeOut unpackBitNodeOut(std::uint64_t bits) {
  BitNodeOut out;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  out.bn_msg = sext(take(8), 8);
  out.hard_bit = take(1);
  out.soft_out = sext(take(12), 12);
  out.out_edge = take(6);
  out.out_vnode = take(10);
  out.state_dbg = take(10);
  out.flags = take(5);
  out.valid_out = take(1);
  out.ready = take(1);
  out.parity_out = take(1);
  return out;
}

}  // namespace corebist::ldpc
