// Uniform stimulus adapters: drive a behavioural module model from the same
// packed per-cycle input words the BIST engine feeds the gate-level module.
// Used by the Fig. 3 evaluation flow (statement coverage on the "RTL" while
// the exact BIST stimulus runs).
#ifndef COREBIST_LDPC_ARCH_ADAPTERS_HPP_
#define COREBIST_LDPC_ARCH_ADAPTERS_HPP_

#include <cstdint>
#include <memory>
#include <string>

#include "eval/coverage.hpp"

namespace corebist::ldpc {

class ModuleAdapter {
 public:
  virtual ~ModuleAdapter() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int numStatements() const = 0;
  virtual void reset(StatementCoverage* cov) = 0;
  /// Apply one packed input word (same layout as the gate-level PIs) and
  /// clock the model.
  virtual void step(std::uint64_t in_bits) = 0;
};

[[nodiscard]] std::unique_ptr<ModuleAdapter> makeBitNodeAdapter();
[[nodiscard]] std::unique_ptr<ModuleAdapter> makeCheckNodeAdapter();
[[nodiscard]] std::unique_ptr<ModuleAdapter> makeControlUnitAdapter();

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_ARCH_ADAPTERS_HPP_
