// CONTROL_UNIT of the Reconfigurable Serial LDPC decoder (paper §4,
// Table 1: 45 input bits, 44 output bits).
//
// Manages the two interleaving memories and the reconfiguration information:
// an edge counter walks the graph edges, sequential addresses feed memory A
// while a stride accumulator (modulo the configured code length) generates
// the interleaved addresses for memory B; a two-bit phase FSM alternates
// check-node and bit-node passes; an iteration counter terminates decoding.
// Bit-exact spec for ldpc/gatelevel/cu_gate.cpp.
#ifndef COREBIST_LDPC_ARCH_CONTROL_UNIT_HPP_
#define COREBIST_LDPC_ARCH_CONTROL_UNIT_HPP_

#include <cstdint>

#include "eval/coverage.hpp"

namespace corebist::ldpc {

inline constexpr int kControlUnitInputBits = 45;
inline constexpr int kControlUnitOutputBits = 44;

struct ControlUnitIn {
  unsigned cfg_nbits = 0;       // 10 bits: code length (up to 1024 bit nodes)
  unsigned cfg_mrows = 0;       // 9 bits: check rows (up to 512)
  unsigned cfg_iters = 0;       // 5 bits: decoding iterations
  unsigned mode = 0;            // 3 bits: [1:0] stride select, [2] free-run
  unsigned start = 0;           // 1
  unsigned halt = 0;            // 1
  unsigned ext_parity_fail = 0;  // 1 (early-stop input from the check nodes)
  unsigned mem_ready = 0;       // 1
  unsigned edge_count = 0;      // 10 bits: edges per phase
  unsigned step_en = 0;         // 1
  unsigned clr_stats = 0;       // 1
  unsigned dbg_sel = 0;         // 2 bits
};

struct ControlUnitOut {
  unsigned mem_addr_a = 0;  // 10 (sequential)
  unsigned mem_addr_b = 0;  // 10 (interleaved)
  unsigned we_a = 0;        // 1
  unsigned we_b = 0;        // 1
  unsigned node_sel = 0;    // 7 (virtual node being processed)
  unsigned phase = 0;       // 2 (0 idle, 1 CN pass, 2 BN pass, 3 iter check)
  unsigned iter_cnt = 0;    // 5
  unsigned busy = 0;        // 1
  unsigned done = 0;        // 1
  unsigned stat_flag = 0;   // 6
};

class ControlUnitModel {
 public:
  static constexpr int kNumStatements = 19;

  explicit ControlUnitModel(StatementCoverage* cov = nullptr) : cov_(cov) {}

  void reset();
  [[nodiscard]] ControlUnitOut eval(const ControlUnitIn& in) const;
  void tick(const ControlUnitIn& in);

  /// Interleaver stride for a mode selection (must match the gate level).
  [[nodiscard]] static unsigned strideFor(unsigned mode2) {
    static constexpr unsigned kStride[4] = {1u, 3u, 7u, 11u};
    return kStride[mode2 & 3u];
  }

  struct State {
    unsigned edge_cnt = 0;   // 10
    unsigned node_cnt = 0;   // 7
    unsigned iter_cnt = 0;   // 5
    unsigned phase = 0;      // 2
    unsigned addr_b = 0;     // 10 (stride accumulator)
    unsigned busy = 0;       // 1
    unsigned done = 0;       // 1
    unsigned stats = 0;      // 6, sticky
  };
  [[nodiscard]] const State& state() const noexcept { return st_; }

 private:
  void probe(int id) const {
    if (cov_ != nullptr) cov_->hit(id);
  }
  State st_;
  StatementCoverage* cov_;
};

[[nodiscard]] std::uint64_t packControlUnitIn(const ControlUnitIn& in);
[[nodiscard]] ControlUnitIn unpackControlUnitIn(std::uint64_t bits);
[[nodiscard]] std::uint64_t packControlUnitOut(const ControlUnitOut& out);
[[nodiscard]] ControlUnitOut unpackControlUnitOut(std::uint64_t bits);

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_ARCH_CONTROL_UNIT_HPP_
