#include "ldpc/arch/control_unit.hpp"

namespace corebist::ldpc {

void ControlUnitModel::reset() { st_ = State{}; }

ControlUnitOut ControlUnitModel::eval(const ControlUnitIn& in) const {
  ControlUnitOut out;
  out.mem_addr_a = st_.edge_cnt & 0x3FFu;
  out.mem_addr_b = st_.addr_b & 0x3FFu;
  // Memory A is written during the CN pass (phase 1), memory B during the
  // BN pass (phase 2); writes require mem_ready unless free-running.
  const unsigned free_run = (in.mode >> 2) & 1u;
  const unsigned gate = (in.mem_ready | free_run) & st_.busy & in.step_en;
  out.we_a = gate & (st_.phase == 1u ? 1u : 0u);
  out.we_b = gate & (st_.phase == 2u ? 1u : 0u);
  out.node_sel = st_.node_cnt & 0x7Fu;
  out.phase = st_.phase & 3u;
  out.iter_cnt = st_.iter_cnt & 0x1Fu;
  out.busy = st_.busy;
  out.done = st_.done;
  // stat_flag: dbg_sel rotates which sticky nibble is visible in the low
  // bits; bit 5 always mirrors busy for liveness observation.
  unsigned stats = st_.stats & 0x3Fu;
  stats = ((stats >> (in.dbg_sel & 3u)) | (stats << (6u - (in.dbg_sel & 3u)))) &
          0x3Fu;
  out.stat_flag = (stats & 0x1Fu) | ((st_.busy & 1u) << 5);
  return out;
}

void ControlUnitModel::tick(const ControlUnitIn& in) {
  State next = st_;
  probe(0);

  if (in.clr_stats != 0) {
    probe(1);
    next.stats = 0;
  }

  if (in.start != 0) {
    probe(2);
    next.edge_cnt = 0;
    next.node_cnt = 0;
    next.iter_cnt = 0;
    next.addr_b = 0;
    next.phase = 1;  // begin with the CN pass
    next.busy = 1;
    next.done = 0;
    st_ = next;
    return;
  }

  if (in.halt != 0 && st_.busy != 0) {
    probe(3);
    next.busy = 0;
    next.stats |= 2u;  // halted flag
    st_ = next;
    return;
  }

  const unsigned free_run = (in.mode >> 2) & 1u;
  const bool can_step = st_.busy != 0 && in.step_en != 0 &&
                        (in.mem_ready != 0 || free_run != 0);
  if (!can_step) {
    probe(4);
    if (st_.busy != 0 && in.step_en != 0 && in.mem_ready == 0 &&
        free_run == 0) {
      probe(5);
      next.stats |= 16u;  // mem_wait
    }
    st_ = next;
    return;
  }

  probe(6);
  // Early stop on external parity failure signal during the BN pass.
  if (in.ext_parity_fail != 0) {
    probe(7);
    next.stats |= 1u;
  }

  const unsigned ec_max =
      in.edge_count == 0 ? 0u : ((in.edge_count - 1u) & 0x3FFu);
  const bool edge_wrap = (st_.edge_cnt & 0x3FFu) >= ec_max;

  // Stride accumulator for the interleaved address (modulo cfg_nbits).
  {
    const unsigned stride = strideFor(in.mode & 3u);
    unsigned nb = in.cfg_nbits & 0x3FFu;
    if (nb == 0) nb = 1;
    unsigned a = (st_.addr_b + stride) & 0x7FFu;  // 11-bit intermediate
    if (a >= nb) {
      probe(8);
      a -= nb;
      next.stats |= 4u;  // addr_b wrapped
    }
    next.addr_b = edge_wrap ? 0u : (a & 0x3FFu);
  }

  if (edge_wrap) {
    probe(9);
    next.edge_cnt = 0;
    next.node_cnt = 0;
    // Phase sequence: 1 (CN) -> 2 (BN) -> 3 (iteration bookkeeping) -> 1 ...
    if (st_.phase == 1u) {
      probe(10);
      next.phase = 2;
    } else if (st_.phase == 2u) {
      probe(11);
      next.phase = 3;
    } else {
      probe(12);
      const unsigned it = (st_.iter_cnt + 1u) & 0x1Fu;
      next.iter_cnt = it;
      const unsigned lim = in.cfg_iters & 0x1Fu;
      if (it >= lim || (in.ext_parity_fail == 0 && (st_.stats & 1u) != 0)) {
        probe(13);
        next.busy = 0;
        next.done = 1;
        next.phase = 0;
      } else {
        probe(14);
        next.phase = 1;
      }
    }
  } else {
    probe(15);
    next.edge_cnt = (st_.edge_cnt + 1u) & 0x3FFu;
    // node_sel advances every 8 edges (virtual-node granularity).
    if ((next.edge_cnt & 7u) == 0u) {
      probe(16);
      next.node_cnt = (st_.node_cnt + 1u) & 0x7Fu;
    }
  }

  // Row-degree sanity: processing beyond the configured row space sets a
  // sticky overflow flag.
  if ((st_.node_cnt & 0x7Fu) >= (in.cfg_mrows & 0x7Fu) && st_.phase == 1u) {
    probe(17);
    next.stats |= 8u;
  }
  probe(18);

  st_ = next;
}

std::uint64_t packControlUnitIn(const ControlUnitIn& in) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(in.cfg_nbits, 10);
  put(in.cfg_mrows, 9);
  put(in.cfg_iters, 5);
  put(in.mode, 3);
  put(in.start, 1);
  put(in.halt, 1);
  put(in.ext_parity_fail, 1);
  put(in.mem_ready, 1);
  put(in.edge_count, 10);
  put(in.step_en, 1);
  put(in.clr_stats, 1);
  put(in.dbg_sel, 2);
  return w;
}

ControlUnitIn unpackControlUnitIn(std::uint64_t bits) {
  ControlUnitIn in;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  in.cfg_nbits = take(10);
  in.cfg_mrows = take(9);
  in.cfg_iters = take(5);
  in.mode = take(3);
  in.start = take(1);
  in.halt = take(1);
  in.ext_parity_fail = take(1);
  in.mem_ready = take(1);
  in.edge_count = take(10);
  in.step_en = take(1);
  in.clr_stats = take(1);
  in.dbg_sel = take(2);
  return in;
}

std::uint64_t packControlUnitOut(const ControlUnitOut& out) {
  std::uint64_t w = 0;
  int at = 0;
  auto put = [&w, &at](std::uint64_t v, int bits) {
    w |= (v & ((std::uint64_t{1} << bits) - 1u)) << at;
    at += bits;
  };
  put(out.mem_addr_a, 10);
  put(out.mem_addr_b, 10);
  put(out.we_a, 1);
  put(out.we_b, 1);
  put(out.node_sel, 7);
  put(out.phase, 2);
  put(out.iter_cnt, 5);
  put(out.busy, 1);
  put(out.done, 1);
  put(out.stat_flag, 6);
  return w;
}

ControlUnitOut unpackControlUnitOut(std::uint64_t bits) {
  ControlUnitOut out;
  int at = 0;
  auto take = [&bits, &at](int n) {
    const std::uint64_t v = (bits >> at) & ((std::uint64_t{1} << n) - 1u);
    at += n;
    return static_cast<unsigned>(v);
  };
  out.mem_addr_a = take(10);
  out.mem_addr_b = take(10);
  out.we_a = take(1);
  out.we_b = take(1);
  out.node_sel = take(7);
  out.phase = take(2);
  out.iter_cnt = take(5);
  out.busy = take(1);
  out.done = take(1);
  out.stat_flag = take(6);
  return out;
}

}  // namespace corebist::ldpc
