// BIT_NODE of the Reconfigurable Serial LDPC decoder (paper §4, Table 1:
// 54 input bits, 55 output bits).
//
// Serial variable-node processor: during the accumulate phase one
// check-to-bit message arrives per clock and is added (saturating) to the
// node total seeded with the channel LLR; during the output phase the
// extrinsic message total - msg[e] is emitted per edge. A 4-entry message
// buffer holds the incoming messages of the virtual node being processed;
// all four extrinsic subtractions run in parallel lanes (the building block
// of the fully-parallel configuration of [15]) and the active edge's lane is
// selected on output. The 4-bit path_sel port is the constrained input of
// the case study: bits [1:0] select the active message width (8/6/4/3) and
// bits [3:2] the magnitude scaling (x1, x0.75, x0.5, 0).
//
// This behavioural model is the bit-exact specification mirrored by the
// gate-level generator in ldpc/gatelevel/bn_gate.cpp; the equivalence is
// enforced by randomized sweeps in tests/ldpc_equiv_test.cpp.
#ifndef COREBIST_LDPC_ARCH_BIT_NODE_HPP_
#define COREBIST_LDPC_ARCH_BIT_NODE_HPP_

#include <array>
#include <cstdint>

#include "eval/coverage.hpp"

namespace corebist::ldpc {

/// Port geometry (paper Table 1).
inline constexpr int kBitNodeInputBits = 54;
inline constexpr int kBitNodeOutputBits = 55;

/// ctrl bit positions.
struct BnCtrl {
  static constexpr unsigned kStart = 1u << 0;
  static constexpr unsigned kAccEn = 1u << 1;
  static constexpr unsigned kOutEn = 1u << 2;
  static constexpr unsigned kLoadLlr = 1u << 3;
  static constexpr unsigned kFlush = 1u << 4;
  static constexpr unsigned kMode0 = 1u << 5;
  static constexpr unsigned kMode1 = 1u << 6;
  static constexpr unsigned kSgnForce = 1u << 7;
  static constexpr unsigned kIterFirst = 1u << 8;
  static constexpr unsigned kIterLast = 1u << 9;
  static constexpr unsigned kValidIn = 1u << 10;
  static constexpr unsigned kSoftEn = 1u << 11;
};

struct BitNodeIn {
  int cn_msg = 0;             // signed 8-bit check-to-bit message
  int ch_llr = 0;             // signed 8-bit channel LLR
  unsigned edge_idx = 0;      // 6 bits
  unsigned degree = 0;        // 6 bits
  unsigned path_sel = 0;      // 4 bits (constrained port)
  unsigned vnode_id = 0;      // 10 bits
  unsigned ctrl = 0;          // 12 bits (BnCtrl flags)
};

struct BitNodeOut {
  int bn_msg = 0;         // signed 8-bit extrinsic message
  unsigned hard_bit = 0;  // 1 bit
  int soft_out = 0;       // signed 12-bit total
  unsigned out_edge = 0;  // 6 bits
  unsigned out_vnode = 0;  // 10 bits
  unsigned state_dbg = 0;  // 10 bits
  unsigned flags = 0;      // 5 bits: {sat,msg_zero,last_edge,acc_sign,lane_par}
  unsigned valid_out = 0;  // 1 bit
  unsigned ready = 0;      // 1 bit
  unsigned parity_out = 0;  // 1 bit
};

class BitNodeModel {
 public:
  /// Number of statement probes (for StatementCoverage sizing).
  static constexpr int kNumStatements = 20;

  explicit BitNodeModel(StatementCoverage* cov = nullptr) : cov_(cov) {}

  void reset();

  /// Combinational outputs for the current state and inputs.
  [[nodiscard]] BitNodeOut eval(const BitNodeIn& in) const;

  /// Clock edge: advance the architectural state.
  void tick(const BitNodeIn& in);

  // -- Shared datapath semantics (also used by the gate-level generator's
  //    reference vectors and the functional decoder) --------------------
  /// Width-mode clamp of a signed 8-bit value per path_sel[1:0].
  [[nodiscard]] static int applyWidthMode(int v, unsigned sel);
  /// Magnitude scaling of a signed 8-bit value per path_sel[3:2].
  [[nodiscard]] static int applyScale(int v, unsigned sel);

  // Architectural state (public for the equivalence harness).
  struct State {
    int acc = 0;                       // 12-bit signed accumulator
    int llr_reg = 0;                   // 8-bit
    std::array<int, 4> msg_buf{};      // 4 x 8-bit stored messages
    int out_msg = 0;                   // 8-bit output register
    unsigned out_valid = 0;
    unsigned edge_echo = 0;   // 6 bits
    unsigned vnode_echo = 0;  // 10 bits
    unsigned flags = 0;       // 5 bits, sticky until start
    unsigned parity = 0;      // 1 bit
  };
  [[nodiscard]] const State& state() const noexcept { return st_; }

 private:
  void probe(int id) const {
    if (cov_ != nullptr) cov_->hit(id);
  }
  State st_;
  StatementCoverage* cov_;
};

/// Pack/unpack between the structured view and the flat 54/55-bit ports
/// (bit order matches the gate-level module's port registration order:
/// cn_msg, ch_llr, edge_idx, degree, path_sel, vnode_id, ctrl — LSB first).
[[nodiscard]] std::uint64_t packBitNodeIn(const BitNodeIn& in);
[[nodiscard]] BitNodeIn unpackBitNodeIn(std::uint64_t bits);
[[nodiscard]] std::uint64_t packBitNodeOut(const BitNodeOut& out);
[[nodiscard]] BitNodeOut unpackBitNodeOut(std::uint64_t bits);

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_ARCH_BIT_NODE_HPP_
