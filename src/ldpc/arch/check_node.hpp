// CHECK_NODE of the Reconfigurable Serial LDPC decoder (paper §4, Table 1:
// 53 input bits, 53 output bits).
//
// Serial min-sum check-node processor with a 64-entry magnitude/sign buffer
// (one physical node emulates many virtual check nodes, so a full row of
// messages is buffered). Three phases:
//   load    - one bit-to-check message per clock is split into magnitude and
//             sign and written to the buffer; the sign product accumulates;
//   compute - two window lanes read the buffer through rotation crossbars
//             into a free-running window pipeline register; (min1, min2,
//             argmin) tournament-merge networks fold the REGISTERED window
//             (i.e. the window pointed to one cycle earlier) into the
//             running minimum registers;
//   out     - per edge, the extrinsic magnitude (min2 if the edge is the
//             argmin, else min1) is offset/normalization corrected, scaled
//             by the constrained path_sel port, re-signed and emitted.
//
// The window crossbars + tournament networks are the dominant logic mass,
// which is why CHECK_NODE carries an order of magnitude more faults than
// the other two modules (paper Table 3: 86k vs 7.5k/3k); the window
// pipeline register brings the flop count to the paper's ~800 and keeps the
// clock frequency in the hundreds of MHz. Bit-exact spec for
// ldpc/gatelevel/cn_gate.cpp.
#ifndef COREBIST_LDPC_ARCH_CHECK_NODE_HPP_
#define COREBIST_LDPC_ARCH_CHECK_NODE_HPP_

#include <array>
#include <cstdint>

#include "eval/coverage.hpp"

namespace corebist::ldpc {

inline constexpr int kCheckNodeInputBits = 53;
inline constexpr int kCheckNodeOutputBits = 53;
inline constexpr int kCnBufSize = 64;
inline constexpr int kCnWindow = 10;
inline constexpr int kCnLanes = 2;

/// One (min1, min2, argmin) triple flowing through the tournament networks.
struct CnMinTriple {
  unsigned m1 = 0xFF;
  unsigned m2 = 0xFF;
  unsigned idx = 0;
};

/// Tournament merge of two triples; ties keep the left operand (this exact
/// pairing order is replicated by the structural network).
[[nodiscard]] CnMinTriple cnMerge2(const CnMinTriple& x, const CnMinTriple& y);

/// Fold a whole window (leaf order) through the pairwise tournament.
[[nodiscard]] CnMinTriple cnTournament(const CnMinTriple* leaves, int count);

struct CnCtrl {
  static constexpr unsigned kStart = 1u << 0;
  static constexpr unsigned kLoad = 1u << 1;
  static constexpr unsigned kCompute = 1u << 2;
  static constexpr unsigned kOutEn = 1u << 3;
  static constexpr unsigned kFlush = 1u << 4;
  static constexpr unsigned kUseOffset = 1u << 5;
  static constexpr unsigned kUseNorm = 1u << 6;
  static constexpr unsigned kClrParity = 1u << 7;
  static constexpr unsigned kValidIn = 1u << 8;
  static constexpr unsigned kLast = 1u << 9;
  static constexpr unsigned kWinHi = 1u << 10;
  static constexpr unsigned kDbg = 1u << 11;
};

struct CheckNodeIn {
  int bn_msg = 0;          // signed 8-bit bit-to-check message
  unsigned edge_idx = 0;   // 6 bits (buffer address / window base)
  unsigned row_deg = 0;    // 6 bits
  unsigned path_sel = 0;   // 4 bits (constrained port)
  unsigned cnode_id = 0;   // 9 bits (up to 512 virtual check nodes)
  unsigned offset = 0;     // 8 bits (offset-min-sum correction, loaded at start)
  unsigned ctrl = 0;       // 12 bits
};

struct CheckNodeOut {
  int cn_msg = 0;           // signed 8-bit check-to-bit message
  unsigned out_edge = 0;    // 6
  unsigned out_cnode = 0;   // 9
  unsigned parity_ok = 0;   // 1
  unsigned min1_dbg = 0;    // 8
  unsigned min2_dbg = 0;    // 8
  unsigned sign_dbg = 0;    // 1
  unsigned argmin_dbg = 0;  // 6
  unsigned flags = 0;       // 4: {tie, last_edge, offset_uflow, sat_mag}
  unsigned valid_out = 0;   // 1
  unsigned ready = 0;       // 1
};

class CheckNodeModel {
 public:
  static constexpr int kNumStatements = 19;

  explicit CheckNodeModel(StatementCoverage* cov = nullptr) : cov_(cov) {}

  void reset();
  [[nodiscard]] CheckNodeOut eval(const CheckNodeIn& in) const;
  void tick(const CheckNodeIn& in);

  /// Unsigned magnitude clamp per path_sel[1:0] (127/31/7/3 ranges).
  [[nodiscard]] static unsigned widthClampMag(unsigned mag, unsigned sel);
  /// Unsigned magnitude scaling per path_sel[3:2] (x1, x0.75, x0.5, 0).
  [[nodiscard]] static unsigned scaleMag(unsigned mag, unsigned sel);

  struct State {
    std::array<unsigned, kCnBufSize> mag_buf{};   // 8-bit magnitudes
    std::array<unsigned, kCnBufSize> sign_buf{};  // 1-bit signs
    // Free-running window pipeline: values + base pointer per lane.
    std::array<std::array<unsigned, kCnWindow>, kCnLanes> win_val{};
    std::array<unsigned, kCnLanes> win_base{};
    // All registers reset to zero (matching the DFF reset state); the 0xFF
    // min sentinels are loaded by the start command, not by reset.
    unsigned min1 = 0;
    unsigned min2 = 0;
    unsigned argmin = 0;   // 6 bits
    unsigned sign_prod = 0;
    unsigned offset_reg = 0;  // 7 bits used
    int out_msg = 0;
    unsigned out_valid = 0;
    unsigned edge_echo = 0;   // 6
    unsigned cnode_echo = 0;  // 9
    unsigned flags = 0;       // 4, sticky until start
  };
  [[nodiscard]] const State& state() const noexcept { return st_; }

 private:
  void probe(int id) const {
    if (cov_ != nullptr) cov_->hit(id);
  }
  State st_;
  StatementCoverage* cov_;
};

[[nodiscard]] std::uint64_t packCheckNodeIn(const CheckNodeIn& in);
[[nodiscard]] CheckNodeIn unpackCheckNodeIn(std::uint64_t bits);
[[nodiscard]] std::uint64_t packCheckNodeOut(const CheckNodeOut& out);
[[nodiscard]] CheckNodeOut unpackCheckNodeOut(std::uint64_t bits);

}  // namespace corebist::ldpc

#endif  // COREBIST_LDPC_ARCH_CHECK_NODE_HPP_
