// Statement-coverage recorder (paper §3.2 step 1, Fig. 3).
//
// The paper measures "the percent number of VHDL lines executed" while
// pseudo-random patterns run on the RTL description. Our behavioural module
// models are instrumented with numbered statement probes; the recorder
// counts which probes fired, which is the same metric at the same
// granularity (one probe per executable statement/branch arm).
#ifndef COREBIST_EVAL_COVERAGE_HPP_
#define COREBIST_EVAL_COVERAGE_HPP_

#include <cstddef>
#include <vector>

namespace corebist {

class StatementCoverage {
 public:
  explicit StatementCoverage(int num_statements)
      : hits_(static_cast<std::size_t>(num_statements), 0) {}

  void hit(int id) {
    if (id >= 0 && static_cast<std::size_t>(id) < hits_.size()) {
      ++hits_[static_cast<std::size_t>(id)];
    }
  }

  [[nodiscard]] int total() const noexcept {
    return static_cast<int>(hits_.size());
  }
  [[nodiscard]] int covered() const noexcept {
    int c = 0;
    for (const auto h : hits_) {
      if (h > 0) ++c;
    }
    return c;
  }
  /// Fraction of statements executed at least once, in [0,1].
  [[nodiscard]] double coverage() const noexcept {
    return hits_.empty()
               ? 0.0
               : static_cast<double>(covered()) /
                     static_cast<double>(hits_.size());
  }
  [[nodiscard]] std::size_t hitCount(int id) const {
    return hits_.at(static_cast<std::size_t>(id));
  }
  void clear() {
    for (auto& h : hits_) h = 0;
  }

 private:
  std::vector<std::size_t> hits_;
};

}  // namespace corebist

#endif  // COREBIST_EVAL_COVERAGE_HPP_
