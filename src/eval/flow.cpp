#include "eval/flow.hpp"

#include <algorithm>

#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "sim/seq_sim.hpp"
#include "sim/toggle.hpp"

namespace corebist {

Step1Result runStep1Loop(ldpc::ModuleAdapter& model, const Netlist& gate_level,
                         std::span<const std::uint64_t> stimulus,
                         std::span<const int> checkpoints) {
  Step1Result res;
  StatementCoverage cov(model.numStatements());
  model.reset(&cov);

  SeqSim sim(gate_level);
  sim.reset();
  ToggleMonitor toggles(gate_level);
  const auto& pis = gate_level.primaryInputs();

  int applied = 0;
  for (const int target : checkpoints) {
    for (; applied < target &&
           applied < static_cast<int>(stimulus.size());
         ++applied) {
      const std::uint64_t w = stimulus[static_cast<std::size_t>(applied)];
      model.step(w);
      for (std::size_t j = 0; j < pis.size(); ++j) {
        sim.comb().set(pis[j], broadcast(((w >> j) & 1u) != 0));
      }
      sim.evalComb();
      toggles.observe(sim.comb());
      sim.clockEdge();
    }
    Step1Point p;
    p.patterns = applied;
    p.statement_coverage = cov.coverage();
    p.toggle_activity = toggles.toggleActivity();
    res.points.push_back(p);
    if (res.patterns_at_full_statement < 0 &&
        cov.covered() == cov.total()) {
      res.patterns_at_full_statement = applied;
    }
  }
  return res;
}

Step2Result runStep2Loop(const Netlist& module, std::span<const Fault> faults,
                         std::span<const std::uint64_t> stimulus,
                         std::span<const int> checkpoints, double target_fc,
                         int num_threads) {
  Step2Result res;
  ParallelFsimOptions popts;
  popts.num_threads = num_threads;
  ParallelFaultSim fsim(SeqFaultSim(module), popts);
  const CyclePatternSource patterns(stimulus,
                                    module.primaryInputs().size());
  FaultSimOptions opts;
  opts.cycles = static_cast<int>(stimulus.size());
  const FaultSimResult r = fsim.run(faults, patterns, opts);

  // first_detect gives the cumulative curve directly.
  std::vector<std::int32_t> detect_cycles;
  for (const auto fd : r.first_detect) {
    if (fd >= 0) detect_cycles.push_back(fd);
  }
  std::sort(detect_cycles.begin(), detect_cycles.end());

  for (const int cp : checkpoints) {
    const auto it = std::upper_bound(detect_cycles.begin(),
                                     detect_cycles.end(), cp - 1);
    const double fc = faults.empty()
                          ? 0.0
                          : 100.0 *
                                static_cast<double>(it - detect_cycles.begin()) /
                                static_cast<double>(faults.size());
    res.points.push_back(Step2Point{cp, fc});
    if (res.patterns_at_target < 0 && fc >= target_fc) {
      res.patterns_at_target = cp;
    }
  }
  res.final_coverage = r.coverage();
  return res;
}

}  // namespace corebist
