// The paper's evaluation flows (§3.2, Fig. 3 and Fig. 4).
//
// Step 1 (Fig. 3): pseudo-random patterns run on the RTL; statement
// coverage and toggle activity accumulate until "enough" — the loop adds
// patterns while the metrics still improve.
//
// Step 2 (Fig. 4): the synthesized module (with the pattern generator and
// MISRs merged) is fault-simulated; while fault coverage is below target
// and the pattern budget allows, more patterns are added. One sequential
// fault-simulation run yields the whole FC-vs-patterns curve, since the
// first-detection cycle of every fault is recorded.
#ifndef COREBIST_EVAL_FLOW_HPP_
#define COREBIST_EVAL_FLOW_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "ldpc/arch/adapters.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

struct Step1Point {
  int patterns = 0;
  double statement_coverage = 0.0;  // [0,1]
  double toggle_activity = 0.0;     // [0,1]
};

struct Step1Result {
  std::vector<Step1Point> points;
  int patterns_at_full_statement = -1;  // first checkpoint reaching 100 %
};

/// Run the Fig. 3 loop: the same stimulus drives the behavioural model
/// (statement coverage) and the gate-level netlist (toggle activity);
/// metrics are sampled at each checkpoint.
[[nodiscard]] Step1Result runStep1Loop(ldpc::ModuleAdapter& model,
                                       const Netlist& gate_level,
                                       std::span<const std::uint64_t> stimulus,
                                       std::span<const int> checkpoints);

struct Step2Point {
  int patterns = 0;
  double fault_coverage = 0.0;  // percent
};

struct Step2Result {
  std::vector<Step2Point> points;
  int patterns_at_target = -1;
  double final_coverage = 0.0;
};

/// Run the Fig. 4 loop on a module with the given stimulus; checkpoints are
/// pattern counts, target_fc in percent. The whole curve comes from one
/// ParallelFaultSim campaign (`num_threads` workers; 0 => hardware
/// concurrency), since every fault's first-detection cycle is recorded.
[[nodiscard]] Step2Result runStep2Loop(const Netlist& module,
                                       std::span<const Fault> faults,
                                       std::span<const std::uint64_t> stimulus,
                                       std::span<const int> checkpoints,
                                       double target_fc, int num_threads = 0);

}  // namespace corebist

#endif  // COREBIST_EVAL_FLOW_HPP_
