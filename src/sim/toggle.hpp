// Toggle-activity measurement (paper §3.2 step 1).
//
// The paper's first evaluation step measures, next to statement coverage,
// the "percent number of variables toggled by the patterns". Here the
// equivalent structural metric is the fraction of nets that change value at
// least once (and, more strictly, see both a rising and a falling edge)
// while a pattern sequence runs.
#ifndef COREBIST_SIM_TOGGLE_HPP_
#define COREBIST_SIM_TOGGLE_HPP_

#include <cstdint>
#include <vector>

#include "sim/comb_sim.hpp"

namespace corebist {

class ToggleMonitor {
 public:
  explicit ToggleMonitor(const Netlist& nl)
      : prev_(nl.numNets(), 0),
        rose_(nl.numNets(), 0),
        fell_(nl.numNets(), 0),
        primed_(false) {}

  /// Record one evaluated time step (call after CombSim::eval()).
  void observe(const CombSim& sim);

  /// Fraction of nets that saw both a 0->1 and a 1->0 edge, in [0,1].
  [[nodiscard]] double toggleActivity() const;
  /// Fraction of nets whose value changed at least once.
  [[nodiscard]] double anyChangeActivity() const;

  void clear();

 private:
  std::vector<std::uint64_t> prev_;
  std::vector<std::uint64_t> rose_;
  std::vector<std::uint64_t> fell_;
  bool primed_;
};

}  // namespace corebist

#endif  // COREBIST_SIM_TOGGLE_HPP_
