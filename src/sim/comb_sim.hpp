// 64-way bit-parallel combinational simulation.
//
// Each net carries a 64-bit word: bit k is the value of the net in
// simulation context k. Contexts are either 64 independent test patterns
// (PPSFP-style pattern-parallel simulation) or 1 good machine + 63 faulty
// machines (fault-parallel sequential simulation).
#ifndef COREBIST_SIM_COMB_SIM_HPP_
#define COREBIST_SIM_COMB_SIM_HPP_

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// All-ones / all-zeros word for broadcasting a scalar value to 64 contexts.
[[nodiscard]] constexpr std::uint64_t broadcast(bool v) noexcept {
  return v ? ~std::uint64_t{0} : std::uint64_t{0};
}

class CombSim {
 public:
  explicit CombSim(const Netlist& nl);

  [[nodiscard]] const Netlist& netlist() const noexcept { return nl_; }
  [[nodiscard]] const Levelization& levels() const noexcept { return lev_; }

  void set(NetId n, std::uint64_t w) { val_[n] = w; }
  [[nodiscard]] std::uint64_t get(NetId n) const { return val_[n]; }

  /// Broadcast an integer across all 64 contexts of a bus (bit i of `value`
  /// drives every context of bus bit i).
  void setBusBroadcast(const Bus& b, std::uint64_t value);
  /// Read back lane `lane` of a bus as an integer.
  [[nodiscard]] std::uint64_t getBusLane(const Bus& b, int lane) const;

  /// Evaluate all gates in topological order.
  void eval();

  /// Direct access to the value array (index by NetId).
  [[nodiscard]] std::vector<std::uint64_t>& values() noexcept { return val_; }
  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept {
    return val_;
  }

 private:
  const Netlist& nl_;
  Levelization lev_;
  std::vector<std::uint64_t> val_;
};

}  // namespace corebist

#endif  // COREBIST_SIM_COMB_SIM_HPP_
