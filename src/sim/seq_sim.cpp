#include "sim/seq_sim.hpp"

namespace corebist {

void SeqSim::reset() {
  for (const Dff& ff : netlist().dffs()) sim_.set(ff.q, 0);
  cycles_ = 0;
}

void SeqSim::clockEdge() {
  auto& val = sim_.values();
  const auto& dffs = netlist().dffs();
  // Two-phase capture: a D net may itself be another flip-flop's Q net
  // (direct FF-to-FF shift paths), so snapshot all D values before writing.
  dtmp_.resize(dffs.size());
  for (std::size_t i = 0; i < dffs.size(); ++i) dtmp_[i] = val[dffs[i].d];
  for (std::size_t i = 0; i < dffs.size(); ++i) val[dffs[i].q] = dtmp_[i];
  ++cycles_;
}

}  // namespace corebist
