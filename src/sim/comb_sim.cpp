#include "sim/comb_sim.hpp"

namespace corebist {

CombSim::CombSim(const Netlist& nl)
    : nl_(nl), lev_(levelize(nl)), val_(nl.numNets(), 0) {}

void CombSim::setBusBroadcast(const Bus& b, std::uint64_t value) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    val_[b[i]] = broadcast(((value >> i) & 1u) != 0);
  }
}

std::uint64_t CombSim::getBusLane(const Bus& b, int lane) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    v |= ((val_[b[i]] >> lane) & 1u) << i;
  }
  return v;
}

void CombSim::eval() {
  const auto& gates = nl_.gates();
  for (const GateId g : lev_.order) {
    const Gate& gate = gates[g];
    const std::uint64_t a = gate.nin > 0 ? val_[gate.in[0]] : 0;
    const std::uint64_t b = gate.nin > 1 ? val_[gate.in[1]] : 0;
    const std::uint64_t s = gate.nin > 2 ? val_[gate.in[2]] : 0;
    val_[gate.out] = evalGateWord(gate.type, a, b, s);
  }
}

}  // namespace corebist
