#include "sim/toggle.hpp"

#include <algorithm>

namespace corebist {

void ToggleMonitor::observe(const CombSim& sim) {
  const auto& val = sim.values();
  if (!primed_) {
    std::copy(val.begin(), val.end(), prev_.begin());
    primed_ = true;
    return;
  }
  for (std::size_t n = 0; n < val.size(); ++n) {
    const std::uint64_t cur = val[n];
    const std::uint64_t was = prev_[n];
    rose_[n] |= cur & ~was;
    fell_[n] |= ~cur & was;
    prev_[n] = cur;
  }
}

double ToggleMonitor::toggleActivity() const {
  if (prev_.empty()) return 0.0;
  std::size_t toggled = 0;
  for (std::size_t n = 0; n < prev_.size(); ++n) {
    if (rose_[n] != 0 && fell_[n] != 0) ++toggled;
  }
  return static_cast<double>(toggled) / static_cast<double>(prev_.size());
}

double ToggleMonitor::anyChangeActivity() const {
  if (prev_.empty()) return 0.0;
  std::size_t changed = 0;
  for (std::size_t n = 0; n < prev_.size(); ++n) {
    if ((rose_[n] | fell_[n]) != 0) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(prev_.size());
}

void ToggleMonitor::clear() {
  std::fill(rose_.begin(), rose_.end(), 0);
  std::fill(fell_.begin(), fell_.end(), 0);
  primed_ = false;
}

}  // namespace corebist
