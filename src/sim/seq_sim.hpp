// Cycle-based sequential simulation on top of CombSim.
//
// Flip-flops reset to 0. Each step() evaluates the combinational cloud and
// then captures every DFF D input into its Q net. The 64 contexts of the
// underlying words are 64 independent sequential machines (they share the
// netlist but may carry different stimuli/state), which is how the parallel
// fault simulator runs 63 faulty machines against one good machine.
#ifndef COREBIST_SIM_SEQ_SIM_HPP_
#define COREBIST_SIM_SEQ_SIM_HPP_

#include "sim/comb_sim.hpp"

namespace corebist {

class SeqSim {
 public:
  explicit SeqSim(const Netlist& nl) : sim_(nl) {}

  [[nodiscard]] CombSim& comb() noexcept { return sim_; }
  [[nodiscard]] const CombSim& comb() const noexcept { return sim_; }
  [[nodiscard]] const Netlist& netlist() const noexcept {
    return sim_.netlist();
  }

  /// Force every flip-flop Q to 0 in all contexts.
  void reset();

  /// Evaluate combinational logic for the current inputs/state.
  void evalComb() { sim_.eval(); }

  /// Capture D -> Q on every flip-flop (call after evalComb()).
  void clockEdge();

  /// Convenience: evalComb() then clockEdge().
  void step() {
    evalComb();
    clockEdge();
  }

  [[nodiscard]] std::size_t cycleCount() const noexcept { return cycles_; }

 private:
  CombSim sim_;
  std::vector<std::uint64_t> dtmp_;
  std::size_t cycles_ = 0;
};

}  // namespace corebist

#endif  // COREBIST_SIM_SEQ_SIM_HPP_
