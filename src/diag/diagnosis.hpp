// Diagnostic matrix and equivalent-fault-class analysis (paper §3.2 step 3,
// Table 5).
//
// "The collected information, by means of the obtained syndromes, can be
//  used to build the so-called diagnostic matrix, allowing to identify the
//  faults belonging to the same equivalent fault class."
//
// A syndrome is whatever detection signature a test scheme produces per
// fault:
//  * BIST: the set of MISR read-out windows in which the fault corrupts an
//    output (windowed signature readout through the Output Selector);
//  * sequential / full-scan patterns: the set of detecting pattern indices
//    (truncated to the first K detections, the standard stop-on-first-error
//    dictionary).
// Faults with identical syndromes are indistinguishable: they form one
// equivalent fault class; Table 5 reports the maximum and the mean class
// size (undetected faults form their own all-zero class and are excluded,
// matching the diagnostic-matrix convention).
#ifndef COREBIST_DIAG_DIAGNOSIS_HPP_
#define COREBIST_DIAG_DIAGNOSIS_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_sim.hpp"

namespace corebist {

/// One row of the diagnostic matrix: a per-fault syndrome.
struct Syndrome {
  std::vector<std::uint64_t> words;
  [[nodiscard]] bool operator==(const Syndrome&) const = default;
  [[nodiscard]] bool empty() const {
    for (const auto w : words) {
      if (w != 0) return false;
    }
    return true;
  }
};

struct EquivalenceClasses {
  std::size_t analyzed = 0;    // detected faults that entered the matrix
  std::size_t undetected = 0;  // excluded (empty syndromes)
  std::size_t num_classes = 0;
  std::size_t max_size = 0;
  double mean_size = 0.0;
  std::vector<std::size_t> histogram;  // histogram[k] = classes of size k+1
};

/// Partition faults by syndrome equality.
[[nodiscard]] EquivalenceClasses analyzeSyndromes(
    const std::vector<Syndrome>& syndromes);

/// Build syndromes from per-fault detection-window masks (BIST style).
[[nodiscard]] std::vector<Syndrome> syndromesFromWindows(
    const std::vector<std::uint64_t>& window_masks);

/// Build syndromes from per-fault first-K detecting pattern lists.
[[nodiscard]] std::vector<Syndrome> syndromesFromPatternLists(
    const std::vector<std::vector<std::uint32_t>>& detections);

// ---- Syndrome extraction over the FaultSim kernel ------------------------
//
// These run one fault-simulation campaign through any engine (serial or
// ParallelFaultSim) and shape the per-fault records into diagnostic-matrix
// rows; the benches and SoC sessions share them instead of hand-rolling
// fault loops.

/// BIST syndromes: the MISR signature difference read through the Output
/// Selector at each of `windows` read-out boundaries.
[[nodiscard]] std::vector<Syndrome> misrWindowSyndromes(
    FaultSim& fsim, std::span<const Fault> faults,
    const PatternSource& patterns, int cycles, int windows,
    const MisrSpec& misr);

/// Tester-log syndromes for uncompacted observation: the set of failing ATE
/// windows plus the first failing cycle.
[[nodiscard]] std::vector<Syndrome> detectionWindowSyndromes(
    FaultSim& fsim, std::span<const Fault> faults,
    const PatternSource& patterns, int cycles, int windows);

/// Stop-on-first-error dictionary syndromes: the first `max_detections`
/// failing pattern indices per fault.
[[nodiscard]] std::vector<Syndrome> dictionarySyndromes(
    FaultSim& fsim, std::span<const Fault> faults,
    const PatternSource& patterns, int patterns_budget, int max_detections);

/// One scored diagnosis candidate: dictionary row index + Hamming distance
/// between its syndrome and the observed one.
struct CandidateScore {
  std::uint32_t fault = 0;
  int distance = 0;
};

/// Rank dictionary faults against an observed syndrome (ascending Hamming
/// distance, ties by fault index), truncated to `top_k`. Distance-0 entries
/// are the equivalent fault class the tester cannot split further.
[[nodiscard]] std::vector<CandidateScore> scoreCandidates(
    std::span<const Syndrome> dictionary, const Syndrome& observed,
    std::size_t top_k);

}  // namespace corebist

#endif  // COREBIST_DIAG_DIAGNOSIS_HPP_
