#include "diag/diagnosis.hpp"

#include <algorithm>
#include <unordered_map>

namespace corebist {

namespace {
struct SyndromeHash {
  std::size_t operator()(const Syndrome& s) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const auto w : s.words) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }
};
}  // namespace

EquivalenceClasses analyzeSyndromes(const std::vector<Syndrome>& syndromes) {
  EquivalenceClasses out;
  std::unordered_map<Syndrome, std::size_t, SyndromeHash> classes;
  for (const Syndrome& s : syndromes) {
    if (s.empty()) {
      ++out.undetected;
      continue;
    }
    ++out.analyzed;
    ++classes[s];
  }
  out.num_classes = classes.size();
  double sum = 0.0;
  for (const auto& [syn, count] : classes) {
    out.max_size = std::max(out.max_size, count);
    sum += static_cast<double>(count);
    if (out.histogram.size() < count) out.histogram.resize(count, 0);
    ++out.histogram[count - 1];
  }
  out.mean_size = classes.empty() ? 0.0 : sum / static_cast<double>(classes.size());
  return out;
}

std::vector<Syndrome> syndromesFromWindows(
    const std::vector<std::uint64_t>& window_masks) {
  std::vector<Syndrome> out;
  out.reserve(window_masks.size());
  for (const auto mask : window_masks) {
    out.push_back(Syndrome{{mask}});
  }
  return out;
}

std::vector<Syndrome> syndromesFromPatternLists(
    const std::vector<std::vector<std::uint32_t>>& detections) {
  std::vector<Syndrome> out;
  out.reserve(detections.size());
  for (const auto& list : detections) {
    Syndrome s;
    for (const auto p : list) {
      const std::size_t word = p / 64;
      if (s.words.size() <= word) s.words.resize(word + 1, 0);
      s.words[word] |= std::uint64_t{1} << (p % 64);
    }
    // Normalize length so equal sets compare equal.
    while (!s.words.empty() && s.words.back() == 0) s.words.pop_back();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace corebist
