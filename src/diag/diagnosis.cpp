#include "diag/diagnosis.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace corebist {

namespace {
struct SyndromeHash {
  std::size_t operator()(const Syndrome& s) const noexcept {
    std::size_t h = 1469598103934665603ull;
    for (const auto w : s.words) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return h;
  }
};
}  // namespace

EquivalenceClasses analyzeSyndromes(const std::vector<Syndrome>& syndromes) {
  EquivalenceClasses out;
  std::unordered_map<Syndrome, std::size_t, SyndromeHash> classes;
  for (const Syndrome& s : syndromes) {
    if (s.empty()) {
      ++out.undetected;
      continue;
    }
    ++out.analyzed;
    ++classes[s];
  }
  out.num_classes = classes.size();
  double sum = 0.0;
  for (const auto& [syn, count] : classes) {
    out.max_size = std::max(out.max_size, count);
    sum += static_cast<double>(count);
    if (out.histogram.size() < count) out.histogram.resize(count, 0);
    ++out.histogram[count - 1];
  }
  out.mean_size = classes.empty() ? 0.0 : sum / static_cast<double>(classes.size());
  return out;
}

std::vector<Syndrome> syndromesFromWindows(
    const std::vector<std::uint64_t>& window_masks) {
  std::vector<Syndrome> out;
  out.reserve(window_masks.size());
  for (const auto mask : window_masks) {
    out.push_back(Syndrome{{mask}});
  }
  return out;
}

std::vector<Syndrome> syndromesFromPatternLists(
    const std::vector<std::vector<std::uint32_t>>& detections) {
  std::vector<Syndrome> out;
  out.reserve(detections.size());
  for (const auto& list : detections) {
    Syndrome s;
    for (const auto p : list) {
      const std::size_t word = p / 64;
      if (s.words.size() <= word) s.words.resize(word + 1, 0);
      s.words[word] |= std::uint64_t{1} << (p % 64);
    }
    // Normalize length so equal sets compare equal.
    while (!s.words.empty() && s.words.back() == 0) s.words.pop_back();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Syndrome> misrWindowSyndromes(FaultSim& fsim,
                                          std::span<const Fault> faults,
                                          const PatternSource& patterns,
                                          int cycles, int windows,
                                          const MisrSpec& misr) {
  FaultSimOptions opts;
  opts.cycles = cycles;
  opts.windows = windows;
  opts.misr = misr;
  const FaultSimResult r = fsim.run(faults, patterns, opts);
  std::vector<Syndrome> syn(faults.size());
  const int sw = r.sig_words_per_fault;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    syn[i].words.assign(
        r.window_sig.begin() + static_cast<std::ptrdiff_t>(i) * sw,
        r.window_sig.begin() + static_cast<std::ptrdiff_t>(i + 1) * sw);
  }
  return syn;
}

std::vector<Syndrome> detectionWindowSyndromes(FaultSim& fsim,
                                               std::span<const Fault> faults,
                                               const PatternSource& patterns,
                                               int cycles, int windows) {
  FaultSimOptions opts;
  opts.cycles = cycles;
  opts.windows = windows;
  const FaultSimResult r = fsim.run(faults, patterns, opts);
  std::vector<Syndrome> syn(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (r.first_detect[i] < 0) continue;
    syn[i].words = {r.window_mask[i],
                    static_cast<std::uint64_t>(r.first_detect[i]) + 1};
  }
  return syn;
}

std::vector<Syndrome> dictionarySyndromes(FaultSim& fsim,
                                          std::span<const Fault> faults,
                                          const PatternSource& patterns,
                                          int patterns_budget,
                                          int max_detections) {
  FaultSimOptions opts;
  opts.cycles = patterns_budget;
  opts.prepass_cycles = 0;
  opts.record_detections = max_detections;
  const FaultSimResult r = fsim.run(faults, patterns, opts);
  return syndromesFromPatternLists(r.detect_patterns);
}

std::vector<CandidateScore> scoreCandidates(
    std::span<const Syndrome> dictionary, const Syndrome& observed,
    std::size_t top_k) {
  std::vector<CandidateScore> scores;
  scores.reserve(dictionary.size());
  for (std::size_t i = 0; i < dictionary.size(); ++i) {
    const auto& row = dictionary[i].words;
    const auto& obs = observed.words;
    int dist = 0;
    const std::size_t n = std::max(row.size(), obs.size());
    for (std::size_t w = 0; w < n; ++w) {
      const std::uint64_t a = w < row.size() ? row[w] : 0;
      const std::uint64_t b = w < obs.size() ? obs[w] : 0;
      dist += std::popcount(a ^ b);
    }
    scores.push_back(CandidateScore{static_cast<std::uint32_t>(i), dist});
  }
  std::sort(scores.begin(), scores.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.fault < b.fault;
            });
  if (scores.size() > top_k) scores.resize(top_k);
  return scores;
}

}  // namespace corebist
