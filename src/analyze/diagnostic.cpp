#include "analyze/diagnostic.hpp"

#include <cstdio>
#include <sstream>

namespace corebist {

namespace {

/// Minimal JSON string escape (quotes, backslash, control chars). Kept local
/// so the analyze layer stays free of session-layer includes.
std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void appendNetArray(std::ostringstream& os, const char* key,
                    const std::vector<NetId>& nets) {
  os << "\"" << key << "\": [";
  for (std::size_t i = 0; i < nets.size(); ++i) {
    os << nets[i] << (i + 1 < nets.size() ? ", " : "");
  }
  os << "]";
}

}  // namespace

std::string_view severityName(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

bool LintReport::hasErrors() const noexcept {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t LintReport::countOf(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::vector<const Diagnostic*> LintReport::ofRule(std::string_view rule) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

const Diagnostic* LintReport::firstError() const noexcept {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return &d;
  }
  return nullptr;
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << netlist << ": " << countOf(Severity::kError) << " errors, "
     << countOf(Severity::kWarning) << " warnings, "
     << countOf(Severity::kInfo) << " infos";
  return os.str();
}

// Float-audit note: severities, rules and net lists only — no
// floating-point fields, so no finite guard is needed here. Any future
// float (e.g. a confidence score) must go through corebist::jsonFinite
// (core/session_report.hpp) to keep inf/NaN out of the artifact.
std::string LintReport::toJson() const {
  std::ostringstream os;
  os << "{\n  \"netlist\": \"" << escaped(netlist) << "\",\n"
     << "  \"diagnostics\": [\n";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    os << "    {\"severity\": \"" << severityName(d.severity)
       << "\", \"rule\": \"" << escaped(d.rule) << "\", \"message\": \""
       << escaped(d.message) << "\", ";
    appendNetArray(os, "nets", d.nets);
    os << ", ";
    appendNetArray(os, "witness", d.witness);
    os << "}" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace corebist
