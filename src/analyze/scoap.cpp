#include "analyze/scoap.hpp"

#include <algorithm>

#include "netlist/levelize.hpp"

namespace corebist {

namespace {

/// Controllability transfer of one gate, given input scores.
void gateControllability(const Gate& g, const std::vector<std::uint32_t>& cc0,
                         const std::vector<std::uint32_t>& cc1,
                         std::uint32_t& out0, std::uint32_t& out1) {
  const auto c0 = [&](int p) { return cc0[g.in[static_cast<std::size_t>(p)]]; };
  const auto c1 = [&](int p) { return cc1[g.in[static_cast<std::size_t>(p)]]; };
  switch (g.type) {
    case GateType::kConst0:
      out0 = 1;
      out1 = kScoapInf;
      break;
    case GateType::kConst1:
      out0 = kScoapInf;
      out1 = 1;
      break;
    case GateType::kBuf:
      out0 = scoapAdd(c0(0), 1);
      out1 = scoapAdd(c1(0), 1);
      break;
    case GateType::kNot:
      out0 = scoapAdd(c1(0), 1);
      out1 = scoapAdd(c0(0), 1);
      break;
    case GateType::kAnd:
      out1 = scoapAdd(scoapAdd(c1(0), c1(1)), 1);
      out0 = scoapAdd(std::min(c0(0), c0(1)), 1);
      break;
    case GateType::kNand:
      out0 = scoapAdd(scoapAdd(c1(0), c1(1)), 1);
      out1 = scoapAdd(std::min(c0(0), c0(1)), 1);
      break;
    case GateType::kOr:
      out0 = scoapAdd(scoapAdd(c0(0), c0(1)), 1);
      out1 = scoapAdd(std::min(c1(0), c1(1)), 1);
      break;
    case GateType::kNor:
      out1 = scoapAdd(scoapAdd(c0(0), c0(1)), 1);
      out0 = scoapAdd(std::min(c1(0), c1(1)), 1);
      break;
    case GateType::kXor:
      out0 = scoapAdd(
          std::min(scoapAdd(c0(0), c0(1)), scoapAdd(c1(0), c1(1))), 1);
      out1 = scoapAdd(
          std::min(scoapAdd(c0(0), c1(1)), scoapAdd(c1(0), c0(1))), 1);
      break;
    case GateType::kXnor:
      out1 = scoapAdd(
          std::min(scoapAdd(c0(0), c0(1)), scoapAdd(c1(0), c1(1))), 1);
      out0 = scoapAdd(
          std::min(scoapAdd(c0(0), c1(1)), scoapAdd(c1(0), c0(1))), 1);
      break;
    case GateType::kMux2:
      // out = s ? b : a with in = (a, b, s)
      out0 = scoapAdd(std::min(scoapAdd(c0(0), c0(2)), scoapAdd(c0(1), c1(2))),
                      1);
      out1 = scoapAdd(std::min(scoapAdd(c1(0), c0(2)), scoapAdd(c1(1), c1(2))),
                      1);
      break;
  }
}

/// Observability of input pin `pin` of gate `g`, given CO of its output and
/// the controllability scores of the sibling inputs.
std::uint32_t pinObservability(const Gate& g, int pin, std::uint32_t co_out,
                               const std::vector<std::uint32_t>& cc0,
                               const std::vector<std::uint32_t>& cc1) {
  if (co_out >= kScoapInf) return kScoapInf;
  const auto c0 = [&](int p) { return cc0[g.in[static_cast<std::size_t>(p)]]; };
  const auto c1 = [&](int p) { return cc1[g.in[static_cast<std::size_t>(p)]]; };
  const int other = 1 - pin;  // sibling of a 2-input gate
  switch (g.type) {
    case GateType::kConst0:
    case GateType::kConst1:
      return kScoapInf;  // no inputs
    case GateType::kBuf:
    case GateType::kNot:
      return scoapAdd(co_out, 1);
    case GateType::kAnd:
    case GateType::kNand:
      return scoapAdd(scoapAdd(co_out, c1(other)), 1);
    case GateType::kOr:
    case GateType::kNor:
      return scoapAdd(scoapAdd(co_out, c0(other)), 1);
    case GateType::kXor:
    case GateType::kXnor:
      return scoapAdd(scoapAdd(co_out, std::min(c0(other), c1(other))), 1);
    case GateType::kMux2:
      switch (pin) {
        case 0:  // a: selected when s = 0
          return scoapAdd(scoapAdd(co_out, c0(2)), 1);
        case 1:  // b: selected when s = 1
          return scoapAdd(scoapAdd(co_out, c1(2)), 1);
        default:  // s: observable when a and b differ
          return scoapAdd(
              scoapAdd(co_out, std::min(scoapAdd(c0(0), c1(1)),
                                        scoapAdd(c1(0), c0(1)))),
              1);
      }
  }
  return kScoapInf;
}

}  // namespace

ScoapScores computeScoap(const Netlist& nl, std::span<const NetId> observed) {
  const Levelization lv = levelize(nl);
  const ReaderCsr& csr = nl.readerCsr();
  const auto& gates = nl.gates();

  ScoapScores s;
  s.cc0.assign(nl.numNets(), kScoapInf);
  s.cc1.assign(nl.numNets(), kScoapInf);
  s.co.assign(nl.numNets(), kScoapInf);

  // Forward pass: controllability, sources first.
  for (const NetId n : nl.primaryInputs()) s.cc0[n] = s.cc1[n] = 1;
  for (const Dff& ff : nl.dffs()) s.cc0[ff.q] = s.cc1[ff.q] = 1;
  for (const GateId id : lv.order) {
    gateControllability(gates[id], s.cc0, s.cc1, s.cc0[gates[id].out],
                        s.cc1[gates[id].out]);
  }

  // Reverse pass: observability. Visiting gates in reverse topological
  // order means every reader of a gate's output sits later in `order`, so
  // its own CO is already final when we fold the fanout min.
  std::vector<char> is_observed(nl.numNets(), 0);
  for (const NetId n : observed) {
    if (n < nl.numNets()) is_observed[n] = 1;
  }
  const auto netObservability = [&](NetId n) {
    std::uint32_t best = is_observed[n] != 0 ? 0u : kScoapInf;
    for (const NetReader& r : csr.of(n)) {
      best = std::min(best, pinObservability(gates[r.gate], r.pin,
                                             s.co[gates[r.gate].out], s.cc0,
                                             s.cc1));
    }
    return best;
  };
  for (auto it = lv.order.rbegin(); it != lv.order.rend(); ++it) {
    const NetId out = gates[*it].out;
    s.co[out] = netObservability(out);
  }
  // Sources (PIs, state nets) are read-only nets: fold their fanout last.
  for (const NetId n : nl.primaryInputs()) s.co[n] = netObservability(n);
  for (const Dff& ff : nl.dffs()) s.co[ff.q] = netObservability(ff.q);
  return s;
}

}  // namespace corebist
