// Structural netlist lint: admission-time detection of the defects that
// otherwise surface dynamically — a combinational loop as a levelize throw
// mid-campaign, a floating or doubly-driven net as a garbage signature, an
// unbound flip-flop as simulator UB.
//
// Rules (see analyze/README.md for the full catalog):
//   comb-loop (error)             cycle through combinational gates, with a
//                                 replayable net-cycle witness
//   undriven-net (error)          a net read by logic (or marked PO) with no
//                                 driver that is neither a PI nor a state net
//   multi-driven-net (error)      two or more drivers contend for one net
//   unclocked-flop (error)        a DFF whose D input was never bound
//   invalid-net-ref (error)       a gate/DFF references a nonexistent net
//   unreachable-gate (warning)    logic outside every observation cone
//   packed-stimulus-width (warn)  > 64 PIs: packed one-word-per-cycle
//                                 stimulus cannot drive the module
//                                 (analyze/hazards.hpp owns the limit)
//   fanout-free-region (info)     FFR decomposition, opt-in
//
// The linter never throws on malformed input — reporting malformed input is
// its job. SocTestScheduler runs it on every referenced core's modules at
// plan-resolve time and converts error-severity findings into
// std::invalid_argument rejections.
#ifndef COREBIST_ANALYZE_LINT_HPP_
#define COREBIST_ANALYZE_LINT_HPP_

#include "analyze/diagnostic.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

struct LintOptions {
  /// Emit one info diagnostic per fanout-free region with >= 2 member nets
  /// (nets = head, witness = members in head-to-leaf discovery order). Off
  /// by default: admission paths only need the error/warning rules.
  bool report_fanout_free_regions = false;
  /// Check the packed-stimulus width hazard (analyze/hazards.hpp).
  bool check_packed_stimulus = true;
};

/// Run every structural rule over `nl`. Deterministic: diagnostics appear
/// in fixed rule order, ascending net/gate ids within a rule.
[[nodiscard]] LintReport lintNetlist(const Netlist& nl,
                                     const LintOptions& opts = {});

}  // namespace corebist

#endif  // COREBIST_ANALYZE_LINT_HPP_
