// Structured findings of the static netlist/plan analyzer.
//
// Every analysis pass (structural lint, testability hazards, collapsing
// sanity checks) reports through the same vocabulary: a Diagnostic names the
// violated rule, its severity, the nets involved and — when the rule is
// about a *path*, like a combinational loop — a witness the caller can
// replay. LintReport aggregates a netlist's diagnostics with the query and
// JSON-export helpers the admission layers (SocTestScheduler plan resolve,
// CI tooling) consume.
#ifndef COREBIST_ANALYZE_DIAGNOSTIC_HPP_
#define COREBIST_ANALYZE_DIAGNOSTIC_HPP_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/gate.hpp"

namespace corebist {

/// Rule ids of the static analysis passes. Kebab-case, stable: they appear
/// in JSON exports, admission-rejection exception messages and CI logs.
namespace rules {
inline constexpr std::string_view kCombLoop = "comb-loop";
inline constexpr std::string_view kUndrivenNet = "undriven-net";
inline constexpr std::string_view kMultiDrivenNet = "multi-driven-net";
inline constexpr std::string_view kUnclockedFlop = "unclocked-flop";
inline constexpr std::string_view kUnreachableGate = "unreachable-gate";
inline constexpr std::string_view kInvalidNetRef = "invalid-net-ref";
inline constexpr std::string_view kPackedStimulusWidth =
    "packed-stimulus-width";
inline constexpr std::string_view kFanoutFreeRegion = "fanout-free-region";
}  // namespace rules

enum class Severity : std::uint8_t {
  kInfo,     // structural observation (e.g. a fanout-free region)
  kWarning,  // suspicious but simulatable (e.g. unreachable logic)
  kError,    // the netlist cannot be simulated/tested as-is
};

[[nodiscard]] std::string_view severityName(Severity s) noexcept;

/// One finding of a static analysis pass.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  /// Kebab-case rule id (see analyze/lint.hpp rules:: constants).
  std::string rule;
  /// Human-readable explanation, suitable for an exception message.
  std::string message;
  /// Nets the finding is about (the floating net, the multi-driven net...).
  std::vector<NetId> nets;
  /// Rule-specific evidence path. For `comb-loop` this is the net cycle:
  /// witness[i] feeds the gate driving witness[i+1], and the last net feeds
  /// the gate driving the first. For `unreachable-gate` it is the gate's
  /// output net; for region rules the member nets.
  std::vector<NetId> witness;
};

/// All diagnostics of one netlist, in rule-scan order.
struct LintReport {
  std::string netlist;
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool hasErrors() const noexcept;
  [[nodiscard]] std::size_t countOf(Severity s) const noexcept;
  /// Diagnostics for one rule id (empty if the rule did not fire).
  [[nodiscard]] std::vector<const Diagnostic*> ofRule(
      std::string_view rule) const;
  /// First error-severity diagnostic, or nullptr when clean.
  [[nodiscard]] const Diagnostic* firstError() const noexcept;

  /// One-line "name: E errors, W warnings, I infos" summary.
  [[nodiscard]] std::string summary() const;
  /// Machine-readable export: {"netlist": ..., "diagnostics": [...]}.
  [[nodiscard]] std::string toJson() const;
};

}  // namespace corebist

#endif  // COREBIST_ANALYZE_DIAGNOSTIC_HPP_
