// SCOAP testability measures (Goldstein 1979) over the netlist CSR.
//
// Three per-net scores, all "number of pin assignments, roughly":
//   CC0(n) / CC1(n)  combinational 0-/1-controllability: cost of forcing n
//                    to 0 / 1 from the controllable sources (PIs and — in
//                    the full-scan model this repo tests — flip-flop Q nets,
//                    both cost 1).
//   CO(n)            combinational observability: cost of propagating a
//                    value change on n to an observed net (cost 0 there).
//                    Stems take the min over their fanout branches.
//
// Gate transfer rules are the standard ones, e.g. for AND:
//   CC1(out) = sum CC1(in_i) + 1        (every input must be 1)
//   CC0(out) = min CC0(in_i) + 1        (any controlling input suffices)
//   CO(in_i) = CO(out) + sum_{j != i} CC1(in_j) + 1
// and for MUX2 (out = s ? b : a):
//   CC0(out) = min(CC0(a)+CC0(s), CC0(b)+CC1(s)) + 1
//   CO(s)    = CO(out) + min(CC0(a)+CC1(b), CC1(a)+CC0(b)) + 1
//
// Everything is computed in one forward levelized pass (controllability)
// plus one reverse pass over the same order (observability, reading fanout
// through Netlist::readerCsr()). Unreachable values saturate at kScoapInf
// instead of overflowing.
//
// PODEM consumes these as objective-ordering heuristics (see
// Podem::setScoap): scores never change *whether* a fault is detectable,
// only the order in which the search tries decisions.
#ifndef COREBIST_ANALYZE_SCOAP_HPP_
#define COREBIST_ANALYZE_SCOAP_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace corebist {

/// Saturation value for unreachable / uncontrollable / unobservable nets.
inline constexpr std::uint32_t kScoapInf = 0x3FFF'FFFFu;

/// Saturating add that never overflows past kScoapInf.
[[nodiscard]] constexpr std::uint32_t scoapAdd(std::uint32_t a,
                                               std::uint32_t b) noexcept {
  const std::uint64_t s = std::uint64_t{a} + std::uint64_t{b};
  return s >= kScoapInf ? kScoapInf : static_cast<std::uint32_t>(s);
}

struct ScoapScores {
  std::vector<std::uint32_t> cc0;  // per net
  std::vector<std::uint32_t> cc1;  // per net
  std::vector<std::uint32_t> co;   // per net (stem = min over branches)

  /// CC of net `n` for target value `v`.
  [[nodiscard]] std::uint32_t cc(NetId n, bool v) const noexcept {
    return v ? cc1[n] : cc0[n];
  }
  /// Testability of stuck-at-`stuck` on `n`: drive the opposite value and
  /// observe it. The classic detection-cost estimate CC(!stuck) + CO.
  [[nodiscard]] std::uint32_t saCost(NetId n, bool stuck) const noexcept {
    return scoapAdd(stuck ? cc0[n] : cc1[n], co[n]);
  }
};

/// Compute SCOAP scores for `nl`. PIs and flip-flop Q nets are the cost-1
/// controllable sources; `observed` nets are the CO = 0 sinks — pass the
/// same observation set the ATPG engine uses. Requires an acyclic netlist
/// (lint first): throws std::logic_error on a combinational loop.
[[nodiscard]] ScoapScores computeScoap(const Netlist& nl,
                                       std::span<const NetId> observed);

}  // namespace corebist

#endif  // COREBIST_ANALYZE_SCOAP_HPP_
