#include "analyze/lint.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "analyze/hazards.hpp"

namespace corebist {

namespace {

/// The linter never calls Netlist::readerCsr(): the CSR build indexes
/// offsets by raw net id, so a gate reading a nonexistent net — exactly the
/// malformed input lint exists to report — would crash it. All adjacency
/// here is built locally with bounds checks.
struct Graph {
  std::size_t num_nets = 0;
  std::vector<char> gate_ok;           // gate references only in-range nets
  std::vector<int> gate_drivers;       // per net: # gates writing it
  std::vector<int> gate_readers;       // per net: # (gate, pin) reads
  std::vector<char> is_pi, is_state, is_po, dff_read;
};

Graph buildGraph(const Netlist& nl) {
  Graph g;
  g.num_nets = nl.numNets();
  g.gate_ok.assign(nl.numGates(), 1);
  g.gate_drivers.assign(g.num_nets, 0);
  g.gate_readers.assign(g.num_nets, 0);
  g.is_pi.assign(g.num_nets, 0);
  g.is_state.assign(g.num_nets, 0);
  g.is_po.assign(g.num_nets, 0);
  g.dff_read.assign(g.num_nets, 0);
  for (const NetId n : nl.primaryInputs()) {
    if (n < g.num_nets) g.is_pi[n] = 1;
  }
  for (const NetId n : nl.primaryOutputs()) {
    if (n < g.num_nets) g.is_po[n] = 1;
  }
  for (const Dff& ff : nl.dffs()) {
    if (ff.q < g.num_nets) g.is_state[ff.q] = 1;
    if (ff.d != kNullNet && ff.d < g.num_nets) g.dff_read[ff.d] = 1;
  }
  const auto& gates = nl.gates();
  for (GateId id = 0; id < gates.size(); ++id) {
    const Gate& gate = gates[id];
    if (gate.out >= g.num_nets) g.gate_ok[id] = 0;
    for (int p = 0; p < gate.nin; ++p) {
      if (gate.in[static_cast<std::size_t>(p)] >= g.num_nets) {
        g.gate_ok[id] = 0;
      }
    }
    if (g.gate_ok[id] == 0) continue;
    ++g.gate_drivers[gate.out];
    for (int p = 0; p < gate.nin; ++p) {
      ++g.gate_readers[gate.in[static_cast<std::size_t>(p)]];
    }
  }
  return g;
}

void lintInvalidRefs(const Netlist& nl, const Graph& g, LintReport& report) {
  for (GateId id = 0; id < nl.numGates(); ++id) {
    if (g.gate_ok[id] != 0) continue;
    const Gate& gate = nl.gates()[id];
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = std::string(rules::kInvalidNetRef);
    d.message = "gate g" + std::to_string(id) + " (" +
                std::string(gateName(gate.type)) +
                ") references a net outside the netlist's " +
                std::to_string(g.num_nets) + " nets";
    if (gate.out < g.num_nets) {
      d.nets.push_back(gate.out);
      d.witness.push_back(gate.out);
    }
    report.diagnostics.push_back(std::move(d));
  }
}

void lintMultiDriven(const Netlist& nl, const Graph& g, LintReport& report) {
  for (NetId n = 0; n < g.num_nets; ++n) {
    const int total = g.gate_drivers[n] + (g.is_pi[n] != 0 ? 1 : 0) +
                      (g.is_state[n] != 0 ? 1 : 0);
    if (total <= 1) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = std::string(rules::kMultiDrivenNet);
    d.message = "net " + nl.netName(n) + " has " + std::to_string(total) +
                " drivers:";
    for (GateId id = 0; id < nl.numGates(); ++id) {
      if (g.gate_ok[id] != 0 && nl.gates()[id].out == n) {
        d.message += " gate g" + std::to_string(id) + " (" +
                     std::string(gateName(nl.gates()[id].type)) + ")";
        // The contended sources: each rogue driver's first input net.
        if (nl.gates()[id].nin > 0) d.witness.push_back(nl.gates()[id].in[0]);
      }
    }
    if (g.is_pi[n] != 0) d.message += " primary-input";
    if (g.is_state[n] != 0) d.message += " flip-flop-Q";
    d.nets.push_back(n);
    report.diagnostics.push_back(std::move(d));
  }
}

void lintUndriven(const Netlist& nl, const Graph& g, LintReport& report) {
  for (NetId n = 0; n < g.num_nets; ++n) {
    if (g.gate_drivers[n] > 0 || g.is_pi[n] != 0 || g.is_state[n] != 0) {
      continue;
    }
    const bool read =
        g.gate_readers[n] > 0 || g.dff_read[n] != 0 || g.is_po[n] != 0;
    if (!read) continue;  // dead net: never materialized, not a defect
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = std::string(rules::kUndrivenNet);
    d.message = "net " + nl.netName(n) + " is undriven but read by " +
                std::to_string(g.gate_readers[n]) + " gate pin(s)" +
                (g.dff_read[n] != 0 ? ", a flip-flop D input" : "") +
                (g.is_po[n] != 0 ? ", marked primary output" : "");
    d.nets.push_back(n);
    // Witness: where the float propagates first — the reading gates'
    // output nets, ascending.
    for (GateId id = 0; id < nl.numGates(); ++id) {
      if (g.gate_ok[id] == 0) continue;
      const Gate& gate = nl.gates()[id];
      for (int p = 0; p < gate.nin; ++p) {
        if (gate.in[static_cast<std::size_t>(p)] == n) {
          d.witness.push_back(gate.out);
          break;
        }
      }
    }
    report.diagnostics.push_back(std::move(d));
  }
}

void lintUnclockedFlops(const Netlist& nl, LintReport& report) {
  const auto& dffs = nl.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    if (dffs[i].d != kNullNet) continue;
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = std::string(rules::kUnclockedFlop);
    d.message = "flip-flop " + std::to_string(i) + " (Q = " +
                nl.netName(dffs[i].q) +
                ") has an unbound D input: it can never capture";
    d.nets.push_back(dffs[i].q);
    d.witness.push_back(dffs[i].q);
    report.diagnostics.push_back(std::move(d));
  }
}

/// Kahn peel over the combinational gate graph; returns the gates left
/// standing (gates on or downstream of a combinational cycle).
std::vector<char> peelAcyclic(const Netlist& nl, const Graph& g) {
  const auto& gates = nl.gates();
  std::vector<int> pending(gates.size(), 0);
  for (GateId id = 0; id < gates.size(); ++id) {
    if (g.gate_ok[id] == 0) continue;  // broken gates are not graph nodes
    for (int p = 0; p < gates[id].nin; ++p) {
      const NetId in = gates[id].in[static_cast<std::size_t>(p)];
      if (g.gate_drivers[in] > 0) ++pending[id];
    }
  }
  // A net with several drivers retires a dependency once per driver, so a
  // multi-driven net cannot wedge the peel into a spurious loop report.
  std::vector<GateId> ready;
  std::vector<char> remaining(gates.size(), 0);
  for (GateId id = 0; id < gates.size(); ++id) {
    if (g.gate_ok[id] == 0) continue;
    if (pending[id] == 0) {
      ready.push_back(id);
    } else {
      remaining[id] = 1;
    }
  }
  std::size_t head = 0;
  while (head < ready.size()) {
    const GateId id = ready[head++];
    const NetId out = gates[id].out;
    for (GateId r = 0; r < gates.size(); ++r) {
      if (g.gate_ok[r] == 0 || remaining[r] == 0) continue;
      for (int p = 0; p < gates[r].nin; ++p) {
        if (gates[r].in[static_cast<std::size_t>(p)] == out &&
            --pending[r] == 0) {
          remaining[r] = 0;
          ready.push_back(r);
        }
      }
    }
  }
  return remaining;
}

void lintCombLoops(const Netlist& nl, const Graph& g, LintReport& report) {
  const std::vector<char> remaining = peelAcyclic(nl, g);
  const auto& gates = nl.gates();
  // Map each net to one remaining driver gate so the backward walk is O(1).
  std::unordered_map<NetId, GateId> remaining_driver;
  for (GateId id = 0; id < gates.size(); ++id) {
    if (remaining[id] != 0) remaining_driver.emplace(gates[id].out, id);
  }
  std::vector<char> in_cycle(gates.size(), 0);
  for (GateId start = 0; start < gates.size(); ++start) {
    if (remaining[start] == 0 || in_cycle[start] != 0) continue;
    // Walk predecessors through remaining gates until a gate repeats (a
    // cycle) or the walk falls into an already-reported cycle.
    std::vector<GateId> path;
    std::vector<int> pos(gates.size(), -1);
    GateId cur = start;
    bool found = false;
    while (true) {
      if (pos[cur] >= 0) {
        path.erase(path.begin(), path.begin() + pos[cur]);
        found = true;
        break;
      }
      if (in_cycle[cur] != 0) break;  // merges into a reported cycle
      pos[cur] = static_cast<int>(path.size());
      path.push_back(cur);
      constexpr GateId kNoGate = static_cast<GateId>(-1);
      GateId next = kNoGate;
      for (int p = 0; p < gates[cur].nin; ++p) {
        const auto it = remaining_driver.find(
            gates[cur].in[static_cast<std::size_t>(p)]);
        if (it != remaining_driver.end()) {
          next = it->second;
          break;
        }
      }
      if (next == kNoGate) break;  // fed by a cycle but not on one
      cur = next;
    }
    if (!found) continue;
    // `path` holds the cycle in backward (consumer -> producer) order;
    // reverse it so the witness reads producer -> consumer.
    std::reverse(path.begin(), path.end());
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule = std::string(rules::kCombLoop);
    d.message =
        "combinational loop through " + std::to_string(path.size()) +
        " gate(s):";
    for (const GateId id : path) {
      in_cycle[id] = 1;
      d.witness.push_back(gates[id].out);
      d.message += " " + nl.netName(gates[id].out);
    }
    d.nets = d.witness;
    report.diagnostics.push_back(std::move(d));
  }
}

void lintUnreachable(const Netlist& nl, const Graph& g, LintReport& report) {
  const auto& gates = nl.gates();
  // Reverse reachability from the observation points: POs and DFF D nets.
  std::unordered_map<NetId, std::vector<GateId>> drivers;
  for (GateId id = 0; id < gates.size(); ++id) {
    if (g.gate_ok[id] != 0) drivers[gates[id].out].push_back(id);
  }
  std::vector<char> reached(gates.size(), 0);
  std::vector<GateId> work;
  auto seed = [&](NetId n) {
    const auto it = drivers.find(n);
    if (it == drivers.end()) return;
    for (const GateId id : it->second) {
      if (reached[id] == 0) {
        reached[id] = 1;
        work.push_back(id);
      }
    }
  };
  for (const NetId n : nl.primaryOutputs()) seed(n);
  for (const Dff& ff : nl.dffs()) {
    if (ff.d != kNullNet) seed(ff.d);
  }
  while (!work.empty()) {
    const GateId id = work.back();
    work.pop_back();
    for (int p = 0; p < gates[id].nin; ++p) {
      seed(gates[id].in[static_cast<std::size_t>(p)]);
    }
  }
  Diagnostic d;
  for (GateId id = 0; id < gates.size(); ++id) {
    if (g.gate_ok[id] == 0 || reached[id] != 0) continue;
    d.nets.push_back(gates[id].out);
  }
  if (d.nets.empty()) return;
  d.severity = Severity::kWarning;
  d.rule = std::string(rules::kUnreachableGate);
  d.message = std::to_string(d.nets.size()) +
              " gate(s) feed no primary output or flip-flop: faults there "
              "are untestable and their area is dead";
  d.witness = d.nets;
  report.diagnostics.push_back(std::move(d));
}

void lintFanoutFreeRegions(const Netlist& nl, const Graph& g,
                           LintReport& report) {
  const auto& gates = nl.gates();
  // single_sink[n]: the output net of the unique gate reading n, when n has
  // exactly one gate reader and no other observer — the FFR chaining edge.
  std::vector<NetId> single_sink(g.num_nets, kNullNet);
  for (NetId n = 0; n < g.num_nets; ++n) {
    if (g.gate_readers[n] != 1 || g.dff_read[n] != 0 || g.is_po[n] != 0) {
      continue;
    }
    for (GateId id = 0; id < gates.size(); ++id) {
      if (g.gate_ok[id] == 0) continue;
      bool reads = false;
      for (int p = 0; p < gates[id].nin; ++p) {
        if (gates[id].in[static_cast<std::size_t>(p)] == n) reads = true;
      }
      if (reads) {
        single_sink[n] = gates[id].out;
        break;
      }
    }
  }
  // head(n): chase the chain to its head, memoized.
  std::vector<NetId> head(g.num_nets, kNullNet);
  for (NetId n = 0; n < g.num_nets; ++n) {
    std::vector<NetId> chain;
    NetId cur = n;
    while (head[cur] == kNullNet && single_sink[cur] != kNullNet &&
           single_sink[cur] < g.num_nets) {
      chain.push_back(cur);
      cur = single_sink[cur];
    }
    const NetId h = head[cur] != kNullNet ? head[cur] : cur;
    head[n] = h;
    for (const NetId c : chain) head[c] = h;
  }
  std::unordered_map<NetId, std::vector<NetId>> regions;
  for (NetId n = 0; n < g.num_nets; ++n) {
    // Only nets that carry logic belong to a region.
    if (g.gate_drivers[n] == 0 && g.gate_readers[n] == 0) continue;
    regions[head[n]].push_back(n);
  }
  std::vector<NetId> heads;
  for (const auto& [h, members] : regions) {
    if (members.size() >= 2) heads.push_back(h);
  }
  std::sort(heads.begin(), heads.end());
  for (const NetId h : heads) {
    Diagnostic d;
    d.severity = Severity::kInfo;
    d.rule = std::string(rules::kFanoutFreeRegion);
    d.witness = regions[h];
    std::sort(d.witness.begin(), d.witness.end());
    d.message = "fanout-free region headed by " + nl.netName(h) + " (" +
                std::to_string(d.witness.size()) + " nets)";
    d.nets.push_back(h);
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

LintReport lintNetlist(const Netlist& nl, const LintOptions& opts) {
  LintReport report;
  report.netlist = nl.name();
  const Graph g = buildGraph(nl);
  lintInvalidRefs(nl, g, report);
  lintMultiDriven(nl, g, report);
  lintUndriven(nl, g, report);
  lintUnclockedFlops(nl, report);
  lintCombLoops(nl, g, report);
  lintUnreachable(nl, g, report);
  if (opts.check_packed_stimulus) {
    if (auto hazard = packedStimulusHazard(nl); hazard.has_value()) {
      report.diagnostics.push_back(std::move(*hazard));
    }
  }
  if (opts.report_fanout_free_regions) {
    lintFanoutFreeRegions(nl, g, report);
  }
  return report;
}

}  // namespace corebist
