#include "analyze/collapse.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace corebist {

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::size_t> parent_;
};

struct SiteKey {
  NetId net;
  GateId gate;
  std::uint8_t pin;
  FaultKind kind;
  bool operator==(const SiteKey&) const = default;
};

struct SiteKeyHash {
  std::size_t operator()(const SiteKey& k) const noexcept {
    std::size_t h = k.net;
    h = h * 1000003u ^ k.gate;
    h = h * 1000003u ^ k.pin;
    h = h * 1000003u ^ static_cast<std::size_t>(k.kind);
    return h;
  }
};

constexpr std::size_t kNoFault = static_cast<std::size_t>(-1);

}  // namespace

CollapseResult collapseStuckAt(const Netlist& nl,
                               std::span<const NetId> observed) {
  CollapseResult r;
  const FaultUniverse u = enumerateStuckAt(nl, /*collapse=*/false);
  r.universe = u.faults;

  std::unordered_map<SiteKey, std::size_t, SiteKeyHash> index;
  index.reserve(r.universe.size());
  for (std::size_t i = 0; i < r.universe.size(); ++i) {
    const Fault& f = r.universe[i];
    index.emplace(SiteKey{f.net, f.gate, f.pin, f.kind}, i);
  }
  const auto lookup = [&index](NetId n, GateId g, std::uint8_t pin,
                               FaultKind k) {
    const auto it = index.find(SiteKey{n, g, pin, k});
    return it == index.end() ? kNoFault : it->second;
  };

  // Nets with observation paths the reader CSR does not count: merging a
  // stem fault *across* such a net changes detection outcomes.
  std::vector<char> visible(nl.numNets(), 0);
  if (observed.empty()) {
    for (const NetId n : nl.primaryOutputs()) visible[n] = 1;
  } else {
    for (const NetId n : observed) {
      if (n < nl.numNets()) visible[n] = 1;
    }
  }
  for (const Dff& ff : nl.dffs()) {
    if (ff.d != kNullNet) visible[ff.d] = 1;
  }

  const ReaderCsr& readers = nl.readerCsr();
  UnionFind uf(r.universe.size());

  // The collapsible fault at gate input pin `p`: the branch when the net
  // has gate fanout > 1, the stem otherwise — but the stem only when the
  // net is not visible elsewhere.
  const auto inputSite = [&](const Gate& gate, GateId g, std::uint8_t p,
                             FaultKind k) {
    const NetId in = gate.in[p];
    if (readers.countOf(in) > 1) return lookup(in, g, p, k);
    if (visible[in] != 0) return kNoFault;
    return lookup(in, Fault::kNoGate, 0, k);
  };
  const auto unite = [&uf](std::size_t a, std::size_t b) {
    if (a != kNoFault && b != kNoFault) uf.unite(a, b);
  };

  for (GateId g = 0; g < nl.numGates(); ++g) {
    const Gate& gate = nl.gates()[g];
    if (gate.nin == 0) continue;
    const auto out_sa0 = lookup(gate.out, Fault::kNoGate, 0, FaultKind::kSa0);
    const auto out_sa1 = lookup(gate.out, Fault::kNoGate, 0, FaultKind::kSa1);
    if (out_sa0 == kNoFault || out_sa1 == kNoFault) continue;  // const net
    switch (gate.type) {
      case GateType::kBuf:
        unite(out_sa0, inputSite(gate, g, 0, FaultKind::kSa0));
        unite(out_sa1, inputSite(gate, g, 0, FaultKind::kSa1));
        break;
      case GateType::kNot:
        unite(out_sa0, inputSite(gate, g, 0, FaultKind::kSa1));
        unite(out_sa1, inputSite(gate, g, 0, FaultKind::kSa0));
        break;
      case GateType::kAnd:
        for (std::uint8_t p = 0; p < 2; ++p) {
          unite(out_sa0, inputSite(gate, g, p, FaultKind::kSa0));
          r.dominance.emplace_back(out_sa1, inputSite(gate, g, p,
                                                      FaultKind::kSa1));
        }
        break;
      case GateType::kNand:
        for (std::uint8_t p = 0; p < 2; ++p) {
          unite(out_sa1, inputSite(gate, g, p, FaultKind::kSa0));
          r.dominance.emplace_back(out_sa0, inputSite(gate, g, p,
                                                      FaultKind::kSa1));
        }
        break;
      case GateType::kOr:
        for (std::uint8_t p = 0; p < 2; ++p) {
          unite(out_sa1, inputSite(gate, g, p, FaultKind::kSa1));
          r.dominance.emplace_back(out_sa0, inputSite(gate, g, p,
                                                      FaultKind::kSa0));
        }
        break;
      case GateType::kNor:
        for (std::uint8_t p = 0; p < 2; ++p) {
          unite(out_sa0, inputSite(gate, g, p, FaultKind::kSa1));
          r.dominance.emplace_back(out_sa1, inputSite(gate, g, p,
                                                      FaultKind::kSa0));
        }
        break;
      default:
        break;  // XOR/XNOR/MUX2: no intra-gate equivalences
    }
  }
  // Drop dominance edges whose input site did not resolve (visible net or
  // const), and re-express the fault pairs as class pairs below.
  std::erase_if(r.dominance, [](const auto& e) {
    return e.first == kNoFault || e.second == kNoFault;
  });

  // Materialize classes: representative = lowest universe index (the unite
  // above always parents toward the minimum).
  std::vector<std::size_t> root_class(r.universe.size(), kNoFault);
  r.class_of.assign(r.universe.size(), 0);
  for (std::size_t i = 0; i < r.universe.size(); ++i) {
    const std::size_t root = uf.find(i);
    if (root_class[root] == kNoFault) {
      root_class[root] = r.classes.size();
      r.classes.emplace_back();
      r.representatives.push_back(r.universe[root]);
    }
    r.class_of[i] = root_class[root];
    r.classes[root_class[root]].push_back(i);
  }
  for (auto& [dominator, dominated] : r.dominance) {
    dominator = r.class_of[dominator];
    dominated = r.class_of[dominated];
  }
  std::sort(r.dominance.begin(), r.dominance.end());
  r.dominance.erase(std::unique(r.dominance.begin(), r.dominance.end()),
                    r.dominance.end());
  std::erase_if(r.dominance, [](const auto& e) { return e.first == e.second; });
  return r;
}

std::vector<std::int32_t> expandFirstDetect(
    const CollapseResult& c, std::span<const std::int32_t> rep_first_detect) {
  std::vector<std::int32_t> out(c.universe.size(), -1);
  for (std::size_t i = 0; i < c.universe.size(); ++i) {
    out[i] = rep_first_detect[c.class_of[i]];
  }
  return out;
}

std::vector<std::size_t> proveEquivalenceOnStimulus(
    FaultSim& sim, const CollapseResult& c, const PatternSource& patterns,
    const FaultSimOptions& opts) {
  const FaultSimResult full = sim.run(c.universe, patterns, opts);
  std::vector<std::size_t> offending;
  for (std::size_t cls = 0; cls < c.classes.size(); ++cls) {
    const std::int32_t want = full.first_detect[c.classes[cls].front()];
    for (const std::size_t member : c.classes[cls]) {
      if (full.first_detect[member] != want) {
        offending.push_back(cls);
        break;
      }
    }
  }
  return offending;
}

}  // namespace corebist
