// Shared structural-hazard rules: width limits that several layers used to
// re-derive independently.
//
// Two stimulus formats in the repo carry hard width limits:
//  * packed per-cycle words (SeqFaultSim sequences, CyclePatternSource) put
//    one bit per primary input into a 64-bit word, so a module with more
//    than kMaxPackedStimulusInputs PIs cannot be driven — the `1 << j`
//    shift would silently wrap and alias input j onto j - 64;
//  * PPSFP pattern accumulation (VectorPatternSource) requires every
//    appended pattern to match the source width bit-for-bit, or lane
//    columns silently misalign.
//
// The limits live here — the structural linter, runSequentialAtpg and the
// pattern sources all call the same predicates, so the numbers exist in
// exactly one place.
#ifndef COREBIST_ANALYZE_HAZARDS_HPP_
#define COREBIST_ANALYZE_HAZARDS_HPP_

#include <cstddef>
#include <optional>
#include <string_view>

#include "analyze/diagnostic.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// One packed stimulus word carries one bit per primary input.
inline constexpr std::size_t kMaxPackedStimulusInputs = 64;

/// True when `nl` can be driven by the packed one-word-per-cycle formats.
[[nodiscard]] inline bool fitsPackedStimulus(const Netlist& nl) noexcept {
  return nl.primaryInputs().size() <= kMaxPackedStimulusInputs;
}

/// The lint view of the limit: a warning-severity diagnostic when `nl`
/// exceeds the packed width (rule `packed-stimulus-width`), nullopt when it
/// fits. Warning, not error: the wide PPSFP sources drive any width — only
/// the packed sequence formats (sequential ATPG, BIST cycle streams) are
/// off the table.
[[nodiscard]] std::optional<Diagnostic> packedStimulusHazard(
    const Netlist& nl);

/// The guard view of the same limit: throws std::invalid_argument naming
/// `context` when `nl` exceeds the packed width.
void requirePackedStimulusWidth(const Netlist& nl, std::string_view context);

/// Width form of the same limit, for stimulus containers that only know
/// their input count (CyclePatternSource): throws std::invalid_argument
/// naming `context` when `width` exceeds the packed word capacity.
void requirePackedWidth(std::size_t width, std::string_view context);

/// Pattern-width agreement check shared by the hand-assembled pattern
/// sources: throws std::invalid_argument naming `context` when `got` input
/// bits were supplied to a width-`expected` source.
void requirePatternWidth(std::size_t expected, std::size_t got,
                         std::string_view context);

}  // namespace corebist

#endif  // COREBIST_ANALYZE_HAZARDS_HPP_
