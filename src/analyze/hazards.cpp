#include "analyze/hazards.hpp"

#include <stdexcept>
#include <string>

namespace corebist {

std::optional<Diagnostic> packedStimulusHazard(const Netlist& nl) {
  const std::size_t n = nl.primaryInputs().size();
  if (n <= kMaxPackedStimulusInputs) return std::nullopt;
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.rule = std::string(rules::kPackedStimulusWidth);
  d.message = "module '" + nl.name() + "' has " + std::to_string(n) +
              " primary inputs; packed one-word-per-cycle stimulus carries "
              "at most " +
              std::to_string(kMaxPackedStimulusInputs) +
              " (sequential ATPG and BIST cycle streams cannot drive it; "
              "scan the module or split its input space)";
  d.nets.assign(nl.primaryInputs().begin() +
                    static_cast<std::ptrdiff_t>(kMaxPackedStimulusInputs),
                nl.primaryInputs().end());
  return d;
}

void requirePackedStimulusWidth(const Netlist& nl, std::string_view context) {
  const auto hazard = packedStimulusHazard(nl);
  if (!hazard.has_value()) return;
  throw std::invalid_argument(std::string(context) + ": " + hazard->message);
}

void requirePackedWidth(std::size_t width, std::string_view context) {
  if (width <= kMaxPackedStimulusInputs) return;
  throw std::invalid_argument(
      std::string(context) + ": " + std::to_string(width) +
      " inputs exceed the " + std::to_string(kMaxPackedStimulusInputs) +
      "-bit packed cycle word");
}

void requirePatternWidth(std::size_t expected, std::size_t got,
                         std::string_view context) {
  if (expected == got) return;
  throw std::invalid_argument(
      std::string(context) + ": pattern carries " + std::to_string(got) +
      " input bits but the source width is " + std::to_string(expected) +
      " (lane columns would misalign)");
}

}  // namespace corebist
