// Static fault collapsing: equivalence classes over the structural
// stuck-at universe, computed before any simulation.
//
// Two faults are *equivalent* when every pattern produces the same faulty
// response at every observation point — grading one member grades the whole
// class. The classic intra-gate rules generate the classes (AND in-sa0 ==
// out-sa0 and duals, BUF identity, NOT polarity swap), chained transitively
// across BUF/NOT trees by union-find.
//
// Unlike the quick collapsing inside enumerateStuckAt, this pass is
// *observation-aware*: a gate-input stem fault is NOT merged with the gate
// output when the input net is itself visible (an observed net or a
// flip-flop D input) — the stem fault has an extra observation path there,
// so the two faults are distinguishable and merging would change detection
// outcomes. This stricter rule is what makes the expansion byte-identical:
//
//   grade(representatives) -> expandFirstDetect == grade(whole universe)
//
// for any pattern stream and any FaultSim engine (verified per-class by the
// proveEquivalenceOnStimulus check mode).
//
// Dominance ("every test for g also detects f") is recorded as edges for
// reporting but never used to shrink the graded list: dropping a dominator
// loses its private detections, which is a coverage approximation, not an
// identity.
#ifndef COREBIST_ANALYZE_COLLAPSE_HPP_
#define COREBIST_ANALYZE_COLLAPSE_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

struct CollapseResult {
  /// The uncollapsed structural universe, in enumerateStuckAt order —
  /// expansion results use this indexing.
  std::vector<Fault> universe;
  /// classes[c] lists the universe indices of class c, ascending; the first
  /// entry is the representative.
  std::vector<std::vector<std::size_t>> classes;
  /// Per universe fault: its class index.
  std::vector<std::size_t> class_of;
  /// One representative fault per class (== universe[classes[c][0]]).
  std::vector<Fault> representatives;
  /// Dominance edges (dominator class, dominated class): every test
  /// detecting the dominated class also detects the dominator. Reporting
  /// data only — see the header comment for why grading ignores these.
  std::vector<std::pair<std::size_t, std::size_t>> dominance;

  [[nodiscard]] std::size_t collapsedAway() const noexcept {
    return universe.size() - classes.size();
  }
};

/// Collapse the stuck-at universe of `nl`. `observed` is the campaign's
/// observation set (empty => primary outputs, the FaultSimOptions
/// convention); flip-flop D nets are always treated as visible, so the
/// classes stay valid for sequential engines too.
[[nodiscard]] CollapseResult collapseStuckAt(
    const Netlist& nl, std::span<const NetId> observed = {});

/// Expand per-representative first-detect results (indexed like
/// CollapseResult::representatives) to the full universe (indexed like
/// CollapseResult::universe).
[[nodiscard]] std::vector<std::int32_t> expandFirstDetect(
    const CollapseResult& c, std::span<const std::int32_t> rep_first_detect);

/// Proof-of-equivalence check mode: grade the FULL universe on `sim` /
/// `patterns` and verify every class detects uniformly (identical
/// first-detect index across members). Returns the offending class indices
/// (empty == equivalence proven on this stimulus).
[[nodiscard]] std::vector<std::size_t> proveEquivalenceOnStimulus(
    FaultSim& sim, const CollapseResult& c, const PatternSource& patterns,
    const FaultSimOptions& opts);

}  // namespace corebist

#endif  // COREBIST_ANALYZE_COLLAPSE_HPP_
