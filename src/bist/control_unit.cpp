#include "bist/control_unit.hpp"

#include <stdexcept>

namespace corebist {

BistControlUnit::BistControlUnit(int counter_bits)
    : counter_bits_(counter_bits) {
  if (counter_bits < 1 || counter_bits > 16) {
    throw std::invalid_argument("BistControlUnit: counter bits out of range");
  }
}

void BistControlUnit::command(BistCommand cmd, std::uint16_t data) {
  switch (cmd) {
    case BistCommand::kNop:
    case BistCommand::kReadStatus:
      break;
    case BistCommand::kReset:
      counter_ = 0;
      limit_ = 0;
      select_ = 0;
      running_ = false;
      done_ = false;
      break;
    case BistCommand::kLoadCount:
      limit_ = static_cast<std::uint16_t>(data & maxPatterns());
      break;
    case BistCommand::kStart:
      counter_ = 0;
      running_ = true;
      done_ = false;
      break;
    case BistCommand::kStop:
      running_ = false;
      break;
    case BistCommand::kSelectResult:
      select_ = static_cast<std::uint8_t>(data & 0x3u);
      break;
  }
}

void BistControlUnit::tick() {
  if (!running_) return;
  ++counter_;
  if (counter_ >= limit_) {
    running_ = false;
    done_ = true;
  }
}

std::uint32_t BistControlUnit::statusWord() const noexcept {
  std::uint32_t w = 0;
  w |= running_ ? 1u : 0u;
  w |= done_ ? 2u : 0u;
  w |= static_cast<std::uint32_t>(select_ & 0x3u) << 2;
  w |= static_cast<std::uint32_t>(counter_) << 4;
  return w;
}

}  // namespace corebist
