#include "bist/constraint_gen.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "bist/lfsr.hpp"

namespace corebist {

namespace {
/// Number of ALFSR taps combined for a bias mode.
int biasTapCount(BiasedConstraint::BitBias b) {
  switch (b) {
    case BiasedConstraint::BitBias::kFree:
      return 1;
    case BiasedConstraint::BitBias::kRare2:
    case BiasedConstraint::BitBias::kOften2:
      return 2;
    case BiasedConstraint::BitBias::kRare3:
      return 3;
    case BiasedConstraint::BitBias::kRare4:
      return 4;
    case BiasedConstraint::BitBias::kRare6:
      return 6;
    default:
      return 0;
  }
}
}  // namespace

BiasedConstraint::BiasedConstraint(int width, std::vector<BitBias> bias,
                                   int lfsr_width, std::uint64_t seed)
    : width_(width),
      bias_(std::move(bias)),
      lfsr_width_(lfsr_width),
      seed_(seed) {
  if (static_cast<int>(bias_.size()) != width) {
    throw std::invalid_argument("BiasedConstraint: bias per bit required");
  }
}

std::uint64_t BiasedConstraint::valueForState(std::uint64_t state) const {
  std::uint64_t out = 0;
  int tap = 0;
  for (int j = 0; j < width_; ++j) {
    const BitBias b = bias_[static_cast<std::size_t>(j)];
    const int n = biasTapCount(b);
    bool v = false;
    if (b == BitBias::kOne) {
      v = true;
    } else if (b == BitBias::kZero) {
      v = false;
    } else if (b == BitBias::kOften2) {
      v = false;
      for (int k = 0; k < n; ++k) {
        v = v || (((state >> ((tap + k) % lfsr_width_)) & 1u) != 0);
      }
    } else {
      v = true;
      for (int k = 0; k < n; ++k) {
        v = v && (((state >> ((tap + k) % lfsr_width_)) & 1u) != 0);
      }
    }
    tap += n;
    if (v) out |= std::uint64_t{1} << j;
  }
  return out;
}

std::uint64_t BiasedConstraint::valueAt(std::int64_t cycle) const {
  const std::lock_guard<std::mutex> lock(cache_mu_);
  // Resume from the closest cached walk at or before `cycle`.
  Walk* slot = nullptr;
  for (Walk& w : walks_) {
    if (w.cycle >= 0 && w.cycle <= cycle &&
        (slot == nullptr || w.cycle > slot->cycle)) {
      slot = &w;
    }
  }
  if (slot == nullptr) {
    // No usable resume point: restart from the seed in the stalest slot
    // (unused slots have cycle -1 and are evicted first).
    slot = &walks_[0];
    for (Walk& w : walks_) {
      if (w.cycle < slot->cycle) slot = &w;
    }
    Alfsr lfsr(lfsr_width_, seed_);
    slot->state = lfsr.state();
    slot->cycle = 0;
  }
  if (slot->cycle < cycle) {
    Alfsr lfsr(lfsr_width_, slot->state);
    while (slot->cycle < cycle) {
      slot->state = lfsr.step();
      ++slot->cycle;
    }
  }
  return valueForState(slot->state);
}

std::string BiasedConstraint::describe() const {
  std::ostringstream os;
  os << "biased(w" << width_ << ", lfsr" << lfsr_width_ << ")";
  return os.str();
}

Bus buildBiasedCgHw(Builder& b, const BiasedConstraint& cg, NetId en,
                    NetId load) {
  const AlfsrHw lfsr = buildAlfsrHw(b, cg.lfsrWidth(),
                                    primitiveTaps(cg.lfsrWidth()), cg.seed(),
                                    en, load);
  Bus out;
  int tap = 0;
  for (int j = 0; j < cg.width(); ++j) {
    const auto bias = cg.bias()[static_cast<std::size_t>(j)];
    const int n = biasTapCount(bias);
    NetId v = kNullNet;
    if (bias == BiasedConstraint::BitBias::kOne) {
      v = b.hi();
    } else if (bias == BiasedConstraint::BitBias::kZero) {
      v = b.lo();
    } else {
      v = lfsr.state[static_cast<std::size_t>(tap % cg.lfsrWidth())];
      for (int k = 1; k < n; ++k) {
        const NetId t =
            lfsr.state[static_cast<std::size_t>((tap + k) % cg.lfsrWidth())];
        v = bias == BiasedConstraint::BitBias::kOften2 ? b.or2(v, t)
                                                       : b.and2(v, t);
      }
    }
    tap += n;
    out.push_back(v);
  }
  return out;
}

std::string HoldConstraint::describe() const {
  std::ostringstream os;
  os << "hold(" << width_ << "'d" << value_ << ")";
  return os.str();
}

ScheduleConstraint::ScheduleConstraint(int width, std::vector<Entry> schedule)
    : width_(width), schedule_(std::move(schedule)) {
  if (schedule_.empty()) {
    throw std::invalid_argument("ScheduleConstraint: empty schedule");
  }
  int total = 0;
  for (const Entry& e : schedule_) {
    if (e.dwell <= 0) {
      throw std::invalid_argument("ScheduleConstraint: dwell must be > 0");
    }
    total += e.dwell;
    prefix_.push_back(total);
  }
  period_ = total;
}

std::uint64_t ScheduleConstraint::valueAt(std::int64_t cycle) const {
  const int r = static_cast<int>(cycle % period_);
  for (std::size_t i = 0; i < prefix_.size(); ++i) {
    if (r < prefix_[i]) return schedule_[i].value;
  }
  return schedule_.back().value;  // unreachable
}

std::string ScheduleConstraint::describe() const {
  std::ostringstream os;
  os << "schedule(w" << width_ << ",";
  for (const Entry& e : schedule_) os << " " << e.value << "x" << e.dwell;
  os << ")";
  return os.str();
}

Bus buildScheduleCgHw(Builder& b, const ScheduleConstraint& cg, NetId en,
                      NetId clear) {
  const int period = cg.period();
  int cw = 1;
  while ((1 << cw) < period) ++cw;
  // Counter counts 0..period-1 and wraps.
  const Bus cnt = b.state("cg_cnt", cw);
  const NetId at_top = b.eqConst(cnt, static_cast<std::uint64_t>(period - 1));
  const NetId wrap = b.or2(at_top, clear);
  b.connectEnClr(cnt, b.inc(cnt), en, wrap);
  // Select the dwell window by cascaded range compares: value_i is chosen
  // when cnt < prefix_i and no earlier window matched.
  Bus value = b.constant(cg.width(), cg.schedule().back().value);
  int prefix = 0;
  // Build from last window backwards so the first match wins.
  std::vector<int> prefixes;
  for (const auto& e : cg.schedule()) {
    prefix += e.dwell;
    prefixes.push_back(prefix);
  }
  for (int i = static_cast<int>(cg.schedule().size()) - 1; i >= 0; --i) {
    const NetId in_window =
        b.ltU(cnt, b.constant(cw, static_cast<std::uint64_t>(
                                      prefixes[static_cast<std::size_t>(i)])));
    value = b.mux(value,
                  b.constant(cg.width(), cg.schedule()[static_cast<std::size_t>(i)].value),
                  in_window);
  }
  return value;
}

}  // namespace corebist
