#include "bist/lfsr.hpp"

#include <stdexcept>

namespace corebist {

namespace {
// Exponents of one primitive polynomial per width (x^w + x^a + x^b ... + 1),
// from the classic maximal-length LFSR tap tables (XAPP052 and Bardell,
// McAnney & Savir). Exponent list excludes w and 0.
const std::vector<int>& polyExponents(int width) {
  static const std::vector<std::vector<int>> table = {
      /* 3*/ {2},          /* 4*/ {3},        /* 5*/ {3},
      /* 6*/ {5},          /* 7*/ {6},        /* 8*/ {6, 5, 4},
      /* 9*/ {5},          /*10*/ {7},        /*11*/ {9},
      /*12*/ {11, 10, 4},  /*13*/ {12, 11, 8}, /*14*/ {13, 12, 2},
      /*15*/ {14},         /*16*/ {15, 13, 4}, /*17*/ {14},
      /*18*/ {11},         /*19*/ {18, 17, 14}, /*20*/ {17},
      /*21*/ {19},         /*22*/ {21},       /*23*/ {18},
      /*24*/ {23, 22, 17}, /*25*/ {22},       /*26*/ {25, 24, 20},
      /*27*/ {26, 25, 22}, /*28*/ {25},       /*29*/ {27},
      /*30*/ {29, 28, 7},  /*31*/ {28},       /*32*/ {22, 2, 1},
  };
  if (width < 3 || width > 32) {
    throw std::invalid_argument("primitiveTaps: width must be in [3,32]");
  }
  return table[static_cast<std::size_t>(width - 3)];
}
}  // namespace

std::vector<int> primitiveTaps(int width) {
  std::vector<int> taps;
  taps.push_back(width - 1);
  for (const int e : polyExponents(width)) taps.push_back(e - 1);
  return taps;
}

Alfsr::Alfsr(int width, std::uint64_t seed)
    : Alfsr(width, primitiveTaps(width), seed) {}

Alfsr::Alfsr(int width, std::vector<int> taps, std::uint64_t seed)
    : width_(width),
      mask_(width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << width) - 1)),
      taps_(std::move(taps)),
      state_(seed & mask_) {
  if (width < 2 || width > 64) {
    throw std::invalid_argument("Alfsr: width out of range");
  }
  for (const int t : taps_) {
    if (t < 0 || t >= width) throw std::invalid_argument("Alfsr: bad tap");
  }
  if (state_ == 0) state_ = 1;  // the all-zero state is a lockup
}

void Alfsr::seed(std::uint64_t s) {
  state_ = s & mask_;
  if (state_ == 0) state_ = 1;
}

std::uint64_t Alfsr::step() {
  std::uint64_t fb = 0;
  for (const int t : taps_) fb ^= (state_ >> t) & 1u;
  state_ = ((state_ << 1) | fb) & mask_;
  return state_;
}

std::uint64_t Alfsr::measuredPeriod(std::uint64_t limit) {
  const std::uint64_t start = state_;
  for (std::uint64_t n = 1; n <= limit; ++n) {
    if (step() == start) return n;
  }
  return 0;  // not periodic within limit
}

AlfsrHw buildAlfsrHw(Builder& b, int width, const std::vector<int>& taps,
                     std::uint64_t seed, NetId en, NetId load) {
  const Bus q = b.state("alfsr", width);
  Bus fb_bits;
  for (const int t : taps) fb_bits.push_back(q[static_cast<std::size_t>(t)]);
  const NetId fb = b.reduceXor(fb_bits);
  // next = load ? seed : (en ? {q << 1, fb} : q)
  Bus shifted;
  shifted.push_back(fb);
  for (int i = 0; i + 1 < width; ++i) shifted.push_back(q[static_cast<std::size_t>(i)]);
  const Bus seed_bus = b.constant(width, seed == 0 ? 1 : seed);
  const Bus next = b.mux(b.mux(q, shifted, en), seed_bus, load);
  b.connect(q, next);
  return AlfsrHw{q};
}

}  // namespace corebist
