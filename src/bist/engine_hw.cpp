#include "bist/engine_hw.hpp"

#include <stdexcept>
#include <unordered_map>

#include "bist/constraint_gen.hpp"

namespace corebist {

namespace {

/// Emit hardware for a constraint generator. Schedule CGs become a counter
/// plus range-compare network; hold CGs become constants.
Bus buildCgHw(Builder& b, const ConstraintGenerator& cg, NetId en,
              NetId clear) {
  if (const auto* sched = dynamic_cast<const ScheduleConstraint*>(&cg)) {
    return buildScheduleCgHw(b, *sched, en, clear);
  }
  if (const auto* biased = dynamic_cast<const BiasedConstraint*>(&cg)) {
    return buildBiasedCgHw(b, *biased, en, clear);
  }
  if (const auto* hold = dynamic_cast<const HoldConstraint*>(&cg)) {
    return b.constant(hold->width(), hold->valueAt(0));
  }
  throw std::invalid_argument("buildCgHw: no hardware form for " +
                              cg.describe());
}

}  // namespace

Netlist buildBistEngineHw(const BistEngine& engine) {
  const BistEngineConfig& cfg = engine.config();
  Netlist nl("bist_engine");
  Builder b(nl);

  const Bus cmd = b.input("cmd", 3);
  const Bus data = b.input("data", 16);

  // Command decode.
  const NetId cmd_reset = b.eqConst(cmd, 1);
  const NetId cmd_load = b.eqConst(cmd, 2);
  const NetId cmd_start = b.eqConst(cmd, 3);
  const NetId cmd_stop = b.eqConst(cmd, 4);
  const NetId cmd_select = b.eqConst(cmd, 5);

  // Pattern limit register and counter (12 bits in the case study).
  const Bus limit = b.state("limit", cfg.counter_bits);
  b.connectEnClr(limit, Builder::slice(data, 0, cfg.counter_bits), cmd_load,
                 cmd_reset);

  // Run FSM: run + done flops.
  const Bus run = b.state("run", 1);
  const Bus done = b.state("done", 1);
  const Bus counter = b.state("pattern_counter", cfg.counter_bits);
  const NetId at_limit = b.eq(counter, limit);
  const NetId running = run[0];
  const NetId stop_now = b.or2(b.or2(cmd_stop, cmd_reset), at_limit);
  b.connect(run, Bus{b.or2(cmd_start, b.and2(running, b.not1(stop_now)))});
  b.connect(done,
            Bus{b.and2(b.or2(b.and2(running, at_limit), done[0]),
                       b.not1(b.or2(cmd_reset, cmd_start)))});
  b.connectEnClr(counter, b.inc(counter), running,
                 b.or2(cmd_reset, cmd_start));

  // Result select register (2 bits per the case study).
  const Bus select = b.state("result_select", 2);
  b.connectEnClr(select, Builder::slice(data, 0, 2), cmd_select, cmd_reset);

  // ALFSR + constraint generators.
  const auto taps = cfg.lfsr_taps.empty() ? primitiveTaps(cfg.lfsr_width)
                                          : cfg.lfsr_taps;
  const AlfsrHw lfsr =
      buildAlfsrHw(b, cfg.lfsr_width, taps, cfg.lfsr_seed, running, cmd_reset);

  // Per-module MISR over the DUT response inputs, plus the output selector.
  std::vector<Bus> signatures;
  for (int m = 0; m < engine.moduleCount(); ++m) {
    const int w = static_cast<int>(engine.module(m).primaryOutputs().size());
    const Bus dut = b.input("dut_out_" + std::to_string(m), w);
    const MisrHw misr = buildMisrHw(b, dut, cfg.misr_width, running, cmd_reset);
    signatures.push_back(misr.state);
  }
  // Constraint-generator hardware (schedule CGs carry real state machines)
  // plus the pattern-routing fabric: one test mux per DUT input pin, as the
  // engine drives every module input during INTEST.
  for (int m = 0; m < engine.moduleCount(); ++m) {
    std::vector<Bus> cg_values;
    for (int c = 0; c < engine.constraintCount(m); ++c) {
      cg_values.push_back(
          buildCgHw(b, engine.constraintGenerator(m, c), running, cmd_reset));
    }
    const Bus f_in = b.input("f_in_" + std::to_string(m),
                             engine.module(m).portWidth(true));
    Bus to_dut;
    const auto& map = engine.inputMap(m);
    for (std::size_t i = 0; i < map.size(); ++i) {
      const InputSource& src = map[i];
      const NetId bist_bit =
          src.kind == InputSourceKind::kAlfsr
              ? lfsr.state[static_cast<std::size_t>(src.index)]
              : cg_values[static_cast<std::size_t>(src.index)]
                         [static_cast<std::size_t>(src.bit)];
      to_dut.push_back(b.mux(f_in[i], bist_bit, running));
    }
    b.output("to_dut_" + std::to_string(m), to_dut);
  }

  // Output Selector: pad the signature list to a power of two.
  std::vector<Bus> padded = signatures;
  while (padded.size() < 4) padded.push_back(b.constant(cfg.misr_width, 0));
  const Bus result = b.muxN(padded, select);

  b.output("test_enable", Bus{running});
  b.output("end_test", done);
  b.output("result", result);
  nl.validate();
  return nl;
}

Netlist buildBistedModule(const BistEngine& engine, int m) {
  const BistEngineConfig& cfg = engine.config();
  const Netlist& module = engine.module(m);
  Netlist nl(module.name() + "_bisted");
  Builder b(nl);

  const NetId bist_reset = b.input("bist_reset", 1)[0];
  const NetId test_enable = b.input("test_enable", 1)[0];
  const NetId te_run = b.and2(test_enable, b.not1(bist_reset));

  // BIST pattern sources.
  const auto taps = cfg.lfsr_taps.empty() ? primitiveTaps(cfg.lfsr_width)
                                          : cfg.lfsr_taps;
  const AlfsrHw lfsr =
      buildAlfsrHw(b, cfg.lfsr_width, taps, cfg.lfsr_seed, te_run, bist_reset);

  // Constraint generator hardware, one per CG id used by this module's map.
  std::vector<Bus> cg_values;
  {
    int num_cgs = 0;
    for (const auto& src : engine.inputMap(m)) {
      if (src.kind == InputSourceKind::kConstraint &&
          src.index >= num_cgs) {
        num_cgs = src.index + 1;
      }
    }
    for (int c = 0; c < num_cgs; ++c) {
      cg_values.push_back(
          buildCgHw(b, engine.constraintGenerator(m, c), te_run, bist_reset));
    }
  }

  // Absorb the module and stitch its inputs through test muxes.
  std::unordered_map<NetId, std::size_t> pi_pos;
  for (std::size_t i = 0; i < module.primaryInputs().size(); ++i) {
    pi_pos.emplace(module.primaryInputs()[i], i);
  }
  nl.absorb(module, "u_");
  for (const PortBus& port : module.ports()) {
    if (!port.is_input) continue;
    // Copy the bits: registering the functional port below reallocates the
    // port table and would leave a PortBus pointer dangling.
    const Bus inner_bits = nl.findPort("u_" + port.name)->bits;
    const Bus functional = b.input("f_" + port.name,
                                   static_cast<int>(port.bits.size()));
    for (std::size_t i = 0; i < inner_bits.size(); ++i) {
      const InputSource& src =
          engine.inputMap(m)[pi_pos.at(port.bits[i])];
      NetId bist_bit = kNullNet;
      if (src.kind == InputSourceKind::kAlfsr) {
        bist_bit = lfsr.state[static_cast<std::size_t>(src.index)];
      } else {
        bist_bit = cg_values[static_cast<std::size_t>(src.index)]
                            [static_cast<std::size_t>(src.bit)];
      }
      nl.driveNet(inner_bits[i], b.mux(functional[i], bist_bit, test_enable));
    }
  }

  // Functional outputs pass through; the MISR taps them as extra fanout.
  std::vector<NetId> response;
  for (const PortBus& port : module.ports()) {
    if (port.is_input) continue;
    // Same dangling-pointer hazard as above: b.output registers a port.
    const Bus inner_bits = nl.findPort("u_" + port.name)->bits;
    b.output(port.name, inner_bits);
    response.insert(response.end(), inner_bits.begin(), inner_bits.end());
  }
  const MisrHw misr = buildMisrHw(b, response, cfg.misr_width, te_run,
                                  bist_reset);
  b.output("bist_signature", misr.state);
  nl.validate();
  return nl;
}

}  // namespace corebist
