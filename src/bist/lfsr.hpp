// Autonomous LFSR (ALFSR) pseudo-random pattern generator (paper §3.1).
//
// Fibonacci configuration: the register shifts left one bit per clock and
// the incoming bit is the XOR of the feedback taps given by a primitive
// characteristic polynomial, so a nonzero seed walks through all 2^w - 1
// nonzero states. Both a cycle-exact software model and a structural
// hardware generator (for area/timing accounting) are provided; they match
// bit for bit, which the tests verify.
#ifndef COREBIST_BIST_LFSR_HPP_
#define COREBIST_BIST_LFSR_HPP_

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"

namespace corebist {

/// Feedback tap positions (bit indices into the state register) of a known
/// primitive polynomial for widths 3..32. Throws for unsupported widths.
[[nodiscard]] std::vector<int> primitiveTaps(int width);

class Alfsr {
 public:
  /// Uses the built-in primitive polynomial for `width`.
  explicit Alfsr(int width, std::uint64_t seed = 1);
  /// Custom feedback taps (bit positions, each in [0, width)).
  Alfsr(int width, std::vector<int> taps, std::uint64_t seed);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }
  [[nodiscard]] const std::vector<int>& taps() const noexcept { return taps_; }

  void seed(std::uint64_t s);
  /// Advance one clock; returns the new state.
  std::uint64_t step();

  /// Pattern presented to the DUT this cycle (the parallel register output).
  [[nodiscard]] std::uint64_t output() const noexcept { return state_; }

  /// Sequence length before the state repeats (2^w - 1 for primitive taps).
  [[nodiscard]] std::uint64_t measuredPeriod(std::uint64_t limit);

 private:
  int width_;
  std::uint64_t mask_;
  std::vector<int> taps_;
  std::uint64_t state_;
};

/// Structural ALFSR: shift register + XOR feedback tree with seed-load mux.
/// Inputs: `en` (shift enable), `load` (synchronous load of `seed`).
/// Returns the state bus (Q side).
struct AlfsrHw {
  Bus state;
};
[[nodiscard]] AlfsrHw buildAlfsrHw(Builder& b, int width,
                                   const std::vector<int>& taps,
                                   std::uint64_t seed, NetId en, NetId load);

}  // namespace corebist

#endif  // COREBIST_BIST_LFSR_HPP_
