// Multiple-Input Signature Register with XOR-cascade input folding
// (paper §3.1, Result Collector).
//
// Each module under test gets one MISR; module output ports wider than the
// MISR are folded through an XOR cascade (output i feeds tap i mod width),
// exactly as the paper does for its 55/53/44-bit ports into 16-bit MISRs.
// The software model, the bit-sliced model inside the sequential fault
// simulator (fault/seq_fsim.hpp) and the structural hardware generator all
// implement the same recurrence:
//   S'[j] = S[j-1] ^ (poly[j] & S[w-1]) ^ in[j]     (S[-1] = 0)
#ifndef COREBIST_BIST_MISR_HPP_
#define COREBIST_BIST_MISR_HPP_

#include <cstdint>
#include <vector>

#include "fault/fault_sim.hpp"
#include "netlist/builder.hpp"

namespace corebist {

/// Coefficient mask (bits 0..w-1) of a primitive polynomial for a MISR of
/// width `w` (bit 0 is always set).
[[nodiscard]] std::uint64_t misrPolyMask(int width);

class Misr {
 public:
  explicit Misr(int width);
  Misr(int width, std::uint64_t poly_mask);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }
  void reset() noexcept { state_ = 0; }

  /// Clock one symbol (already folded to `width` bits) into the register.
  void step(std::uint64_t input);

  /// Fold an arbitrary-width response word through the XOR cascade and
  /// clock it in.
  void stepWide(std::uint64_t response, int response_width);

  /// Probability that a random error sequence aliases to the good signature
  /// (the classic 2^-w bound).
  [[nodiscard]] double aliasingBound() const;

 private:
  int width_;
  std::uint64_t mask_;
  std::uint64_t poly_;
  std::uint64_t state_ = 0;
};

/// XOR-cascade fold map: tap j receives nets {outputs[i] : i mod width == j}.
[[nodiscard]] std::vector<std::vector<NetId>> foldFeeds(
    const std::vector<NetId>& outputs, int width);

/// Build a MisrSpec (for the sequential fault simulator) observing `outputs`.
[[nodiscard]] MisrSpec makeMisrSpec(const std::vector<NetId>& outputs,
                                    int width);

/// Structural MISR: `inputs` are the (unfolded) response nets; `en` gates
/// accumulation, `clear` zeroes the register. Returns the signature bus.
struct MisrHw {
  Bus state;
};
[[nodiscard]] MisrHw buildMisrHw(Builder& b, const std::vector<NetId>& inputs,
                                 int width, NetId en, NetId clear);

}  // namespace corebist

#endif  // COREBIST_BIST_MISR_HPP_
