// Structural (gate-level) BIST hardware generators.
//
// Two artifacts:
//  1. buildBistEngineHw(): the standalone BIST engine of Fig. 2 — ALFSR,
//     Constraint Generators, pattern counter + compare, start/run/done FSM,
//     one MISR per module with XOR-cascade folding, and the Output Selector.
//     Its cell area is the "BIST engine" row of Table 2.
//  2. buildBistedModule(): a module under test with the BIST plumbing
//     physically merged (input-side test muxes, ALFSR/CG sources, MISR on
//     the outputs). This is the netlist the paper fault-simulates in step 2
//     ("the design ... should already include the Pattern Generator and the
//     MISRs") and the one whose fmax drop appears in Table 4. Running it
//     with test_enable=1 reproduces the software BIST signature bit-exactly.
#ifndef COREBIST_BIST_ENGINE_HW_HPP_
#define COREBIST_BIST_ENGINE_HW_HPP_

#include "bist/engine.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// Standalone engine hardware for area accounting.
/// Ports: in cmd[3], data[16], dut_out_<m>[w_m] per module;
///        out test_enable, end_test, result[misr_width].
[[nodiscard]] Netlist buildBistEngineHw(const BistEngine& engine);

/// Module + merged BIST plumbing. Ports:
///   in  f_<origport>[w]  (functional inputs), bist_reset, test_enable
///   out <origport>[w]    (functional outputs), bist_signature[misr_width]
/// With bist_reset pulsed once and test_enable held high, after N clocks
/// bist_signature equals BistEngine::goldenSignature(m, N).
[[nodiscard]] Netlist buildBistedModule(const BistEngine& engine, int m);

}  // namespace corebist

#endif  // COREBIST_BIST_ENGINE_HW_HPP_
