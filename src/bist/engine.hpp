// BIST engine assembly (paper §3.1, Fig. 2).
//
// One ALFSR drives every attached module ("for cores composed of many
// functional blocks, only one ALFSR circuitry can be employed"); each module
// gets a per-module MISR fed through an XOR cascade and an optional set of
// Constraint Generators on its constrained input ports. The engine
// classifies each hookup into the paper's four architectural cases:
//   a) no constrained inputs, ALFSR width >= input width
//   b) no constrained inputs, input width  > ALFSR width (replication)
//   c) constrained inputs,    ALFSR width >= remaining width
//   d) constrained inputs,    remaining width > ALFSR width (replication)
#ifndef COREBIST_BIST_ENGINE_HPP_
#define COREBIST_BIST_ENGINE_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bist/constraint_gen.hpp"
#include "fault/backend.hpp"
#include "bist/control_unit.hpp"
#include "bist/lfsr.hpp"
#include "bist/misr.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

struct BistEngineConfig {
  int lfsr_width = 20;
  std::uint64_t lfsr_seed = 0xACE1u;
  std::vector<int> lfsr_taps;  // empty => primitive polynomial default
  int misr_width = 16;
  int counter_bits = 12;  // pattern counter => up to 4096 patterns
};

/// Binds a constraint generator to a named input port of a module.
struct ConstrainedPort {
  std::string port_name;
  std::shared_ptr<ConstraintGenerator> cg;
};

/// Where each module input bit is sourced from.
enum class InputSourceKind : std::uint8_t { kAlfsr, kConstraint };
struct InputSource {
  InputSourceKind kind = InputSourceKind::kAlfsr;
  int index = 0;  // ALFSR bit, or CG id
  int bit = 0;    // bit within the CG value
};

class BistEngine {
 public:
  explicit BistEngine(BistEngineConfig cfg = {});

  [[nodiscard]] const BistEngineConfig& config() const noexcept {
    return cfg_;
  }

  /// Attach a module; `constraints` name input ports driven by CGs.
  /// Returns the module slot index (also the MISR / result-select index).
  int attachModule(const Netlist& module,
                   std::vector<ConstrainedPort> constraints = {});

  [[nodiscard]] int moduleCount() const noexcept {
    return static_cast<int>(modules_.size());
  }
  [[nodiscard]] const Netlist& module(int m) const {
    return *modules_.at(static_cast<std::size_t>(m)).nl;
  }

  /// Paper §3.1 architectural case ('a'..'d') of a hookup.
  [[nodiscard]] char architecturalCase(int m) const;

  /// Per-input-bit source map of a module (index = PI position).
  [[nodiscard]] const std::vector<InputSource>& inputMap(int m) const {
    return modules_.at(static_cast<std::size_t>(m)).map;
  }

  /// Number of constraint generators attached to module `m`.
  [[nodiscard]] int constraintCount(int m) const {
    return static_cast<int>(modules_.at(static_cast<std::size_t>(m)).cgs.size());
  }
  [[nodiscard]] const ConstraintGenerator& constraintGenerator(int m,
                                                               int cg) const {
    return *modules_.at(static_cast<std::size_t>(m))
                .cgs.at(static_cast<std::size_t>(cg));
  }

  /// Packed per-cycle stimulus for module `m`: bit j of word c drives the
  /// j-th primary input at cycle c. All modules share the ALFSR sequence,
  /// so they are tested simultaneously (paper: "the BIST patterns are the
  /// same for all modules to be tested").
  [[nodiscard]] std::vector<std::uint64_t> stimulus(int m, int cycles) const;

  /// MISR specification (for the fault simulator) of module `m`.
  [[nodiscard]] MisrSpec misrSpec(int m) const;

  /// Fault-free signature of module `m` after `cycles` patterns.
  [[nodiscard]] std::uint64_t goldenSignature(int m, int cycles) const;

  /// Behavioral self-test: applies `cycles` patterns to a physical netlist
  /// (which must be pin-compatible with module `m`, e.g. a defective copy)
  /// and returns the MISR signature. Shares the good-machine signature path
  /// of the fault-simulation kernel with goldenSignature(), so golden and
  /// measured signatures can never drift apart arithmetically.
  [[nodiscard]] std::uint64_t runAndSign(int m, const Netlist& physical,
                                         int cycles) const;

  /// Signature-qualification coverage of module `m`: fault-simulates
  /// `faults` under the BIST stimulus with the module's MISR compaction
  /// model attached, on `num_threads` workers (0 => hardware concurrency)
  /// of the requested backend (worker threads by default; kProcess shards
  /// the faults across forked worker processes, kSerial grades on one
  /// sequential engine and ignores num_threads). `misr_detect` tells which
  /// faults the signature actually catches (the coverage minus aliasing
  /// losses).
  [[nodiscard]] FaultSimResult signatureCoverage(
      int m, std::span<const Fault> faults, int cycles, int num_threads = 0,
      FsimBackend backend = FsimBackend::kThreaded) const;

  /// Same, but with full backend control — retry budgets, backoff and the
  /// degradation ladder for FsimBackend::kResilient ride in `bopts`. The
  /// convenience overload above delegates here.
  [[nodiscard]] FaultSimResult signatureCoverage(
      int m, std::span<const Fault> faults, int cycles,
      const FsimBackendOptions& bopts) const;

 private:
  struct Hookup {
    // Owned copy: hookups must outlive any caller-provided reference.
    std::unique_ptr<Netlist> nl;
    std::vector<InputSource> map;
    std::vector<std::shared_ptr<ConstraintGenerator>> cgs;
    int free_inputs = 0;  // inputs driven by the ALFSR
  };

  BistEngineConfig cfg_;
  std::vector<int> taps_;
  std::vector<Hookup> modules_;
};

/// Mutate one gate of a netlist copy into a different function — a cheap
/// "manufacturing defect" injector for end-to-end signature tests.
[[nodiscard]] Netlist withGateDefect(const Netlist& nl, GateId gate,
                                     GateType new_type);

}  // namespace corebist

#endif  // COREBIST_BIST_ENGINE_HPP_
