// BIST Control Unit (paper §3.1).
//
// "The Control Unit manages the test execution; by receiving and decoding
//  commands from the control signals, this module is able to manage the
//  test execution and the upload of the results."
// Three documented tasks: receive the number of patterns to apply, drive
// test_enable (start/stop + end-of-test indication), and select the result
// to be uploaded. The case study sizes the pattern counter at 12 bits
// (up to 4096 patterns) and the result-select signal at 2 bits.
#ifndef COREBIST_BIST_CONTROL_UNIT_HPP_
#define COREBIST_BIST_CONTROL_UNIT_HPP_

#include <cstdint>

namespace corebist {

/// Command opcodes decoded from the control signals (delivered through the
/// P1500 WCDR in the wrapped configuration).
enum class BistCommand : std::uint8_t {
  kNop = 0,
  kReset = 1,        // core + engine reset
  kLoadCount = 2,    // data = number of patterns to apply
  kStart = 3,        // assert test_enable, begin pattern application
  kStop = 4,         // abort
  kSelectResult = 5,  // data = MISR index for upload
  kReadStatus = 6,
};

class BistControlUnit {
 public:
  /// `counter_bits` sizes the pattern counter (12 in the case study).
  explicit BistControlUnit(int counter_bits = 12);

  void command(BistCommand cmd, std::uint16_t data = 0);

  /// One test clock. While test_enable is high the pattern counter advances;
  /// reaching the programmed count stops the test and raises end_test.
  void tick();

  [[nodiscard]] bool testEnable() const noexcept { return running_; }
  [[nodiscard]] bool endTest() const noexcept { return done_; }
  [[nodiscard]] std::uint16_t patternCounter() const noexcept {
    return counter_;
  }
  [[nodiscard]] std::uint16_t patternLimit() const noexcept { return limit_; }
  [[nodiscard]] std::uint8_t resultSelect() const noexcept { return select_; }
  [[nodiscard]] int counterBits() const noexcept { return counter_bits_; }
  [[nodiscard]] std::uint16_t maxPatterns() const noexcept {
    return static_cast<std::uint16_t>((1u << counter_bits_) - 1u);
  }

  /// Status word uploaded through the wrapper WDR:
  /// bit0 = running, bit1 = end_test, bits 2..3 = result select,
  /// bits 4..15 = pattern counter (truncated to counter_bits).
  [[nodiscard]] std::uint32_t statusWord() const noexcept;

 private:
  int counter_bits_;
  std::uint16_t limit_ = 0;
  std::uint16_t counter_ = 0;
  std::uint8_t select_ = 0;
  bool running_ = false;
  bool done_ = false;
};

}  // namespace corebist

#endif  // COREBIST_BIST_CONTROL_UNIT_HPP_
