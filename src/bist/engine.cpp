#include "bist/engine.hpp"

#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "fault/backend.hpp"
#include "fault/seq_fsim.hpp"

namespace corebist {

BistEngine::BistEngine(BistEngineConfig cfg) : cfg_(std::move(cfg)) {
  taps_ = cfg_.lfsr_taps.empty() ? primitiveTaps(cfg_.lfsr_width)
                                 : cfg_.lfsr_taps;
}

int BistEngine::attachModule(const Netlist& module,
                             std::vector<ConstrainedPort> constraints) {
  if (module.primaryInputs().size() > 64) {
    throw std::invalid_argument("BistEngine: module has > 64 inputs");
  }
  Hookup h;
  h.nl = std::make_unique<Netlist>(module);
  h.map.assign(module.primaryInputs().size(), InputSource{});

  std::unordered_map<NetId, int> pi_pos;
  for (std::size_t i = 0; i < module.primaryInputs().size(); ++i) {
    pi_pos.emplace(module.primaryInputs()[i], static_cast<int>(i));
  }

  std::vector<char> constrained(h.map.size(), 0);
  for (auto& c : constraints) {
    const PortBus* port = module.findPort(c.port_name);
    if (port == nullptr || !port->is_input) {
      throw std::invalid_argument("BistEngine: no input port named " +
                                  c.port_name);
    }
    if (static_cast<int>(port->bits.size()) != c.cg->width()) {
      throw std::invalid_argument("BistEngine: CG width mismatch on " +
                                  c.port_name);
    }
    const int cg_index = static_cast<int>(h.cgs.size());
    h.cgs.push_back(c.cg);
    for (std::size_t bit = 0; bit < port->bits.size(); ++bit) {
      const auto it = pi_pos.find(port->bits[bit]);
      if (it == pi_pos.end()) {
        throw std::invalid_argument("BistEngine: port bit is not a PI");
      }
      h.map[static_cast<std::size_t>(it->second)] =
          InputSource{InputSourceKind::kConstraint, cg_index,
                      static_cast<int>(bit)};
      constrained[static_cast<std::size_t>(it->second)] = 1;
    }
  }

  // Remaining inputs: replicate the ALFSR outputs (paper cases b/d:
  // "replicate the ALFSR outputs to reach the input port width"). Taps are
  // assigned with a stride coprime to the register width (a cheap phase
  // shift): adjacent module inputs must not ride adjacent shift-register
  // bits, or input k at cycle c simply equals input k+1 at cycle c+1.
  int stride = 7;
  while (std::gcd(stride, cfg_.lfsr_width) != 1) stride += 2;
  int free_idx = 0;
  for (std::size_t i = 0; i < h.map.size(); ++i) {
    if (constrained[i]) continue;
    h.map[i] = InputSource{InputSourceKind::kAlfsr,
                           (free_idx * stride) % cfg_.lfsr_width, 0};
    ++free_idx;
  }
  h.free_inputs = free_idx;
  modules_.push_back(std::move(h));
  return static_cast<int>(modules_.size()) - 1;
}

char BistEngine::architecturalCase(int m) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  const bool constrained = !h.cgs.empty();
  const bool fits = h.free_inputs <= cfg_.lfsr_width;
  if (!constrained) return fits ? 'a' : 'b';
  return fits ? 'c' : 'd';
}

std::vector<std::uint64_t> BistEngine::stimulus(int m, int cycles) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  Alfsr lfsr(cfg_.lfsr_width, taps_, cfg_.lfsr_seed);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(cycles));
  std::vector<std::uint64_t> cg_vals(h.cgs.size(), 0);
  for (int c = 0; c < cycles; ++c) {
    const std::uint64_t lw = lfsr.output();
    // One valueAt per CG per cycle, not per constrained input bit.
    for (std::size_t g = 0; g < h.cgs.size(); ++g) {
      cg_vals[g] = h.cgs[g]->valueAt(c);
    }
    std::uint64_t w = 0;
    for (std::size_t j = 0; j < h.map.size(); ++j) {
      const InputSource& src = h.map[j];
      std::uint64_t bit = 0;
      if (src.kind == InputSourceKind::kAlfsr) {
        bit = (lw >> src.index) & 1u;
      } else {
        bit = (cg_vals[static_cast<std::size_t>(src.index)] >> src.bit) & 1u;
      }
      w |= bit << j;
    }
    out.push_back(w);
    lfsr.step();
  }
  return out;
}

MisrSpec BistEngine::misrSpec(int m) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  return makeMisrSpec(h.nl->primaryOutputs(), cfg_.misr_width);
}

std::uint64_t BistEngine::goldenSignature(int m, int cycles) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  SeqFaultSim fsim(*h.nl);
  const auto stim = stimulus(m, cycles);
  return fsim.goodSignature(stim, cycles, misrSpec(m))[0];
}

std::uint64_t BistEngine::runAndSign(int m, const Netlist& physical,
                                     int cycles) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  if (physical.primaryInputs().size() != h.nl->primaryInputs().size() ||
      physical.primaryOutputs().size() != h.nl->primaryOutputs().size()) {
    throw std::invalid_argument("runAndSign: netlist is not pin-compatible");
  }
  const auto stim = stimulus(m, cycles);
  SeqFaultSim fsim(physical);
  return fsim.goodSignature(
      stim, cycles, makeMisrSpec(physical.primaryOutputs(),
                                 cfg_.misr_width))[0];
}

FaultSimResult BistEngine::signatureCoverage(int m,
                                             std::span<const Fault> faults,
                                             int cycles, int num_threads,
                                             FsimBackend backend) const {
  FsimBackendOptions bopts;
  bopts.backend = backend;
  bopts.num_workers = num_threads;
  return signatureCoverage(m, faults, cycles, bopts);
}

FaultSimResult BistEngine::signatureCoverage(
    int m, std::span<const Fault> faults, int cycles,
    const FsimBackendOptions& bopts) const {
  const Hookup& h = modules_.at(static_cast<std::size_t>(m));
  const auto stim = stimulus(m, cycles);
  const std::unique_ptr<FaultSim> fsim =
      makeOrchestrator(SeqFaultSim(*h.nl), bopts);
  const CyclePatternSource patterns(stim, h.nl->primaryInputs().size());
  FaultSimOptions opts;
  opts.cycles = cycles;
  opts.misr = misrSpec(m);
  return fsim->run(faults, patterns, opts);
}

Netlist withGateDefect(const Netlist& nl, GateId gate, GateType new_type) {
  Netlist copy = nl;
  copy.mutateGateType(gate, new_type);
  return copy;
}

}  // namespace corebist
