// Constraint Generators (paper §3.1, Pattern Generator).
//
// A Constraint Generator is "a custom circuitry able to drive constrained
// inputs": ports that must not receive free pseudo-random values (mode
// selects, one-hot enables, handshake bits) are driven by a small state
// machine instead of the ALFSR. The paper's case study uses one CG managing
// a 4-bit path-select port, holding "selection values that maximize the
// used circuitry" for most of the run while still visiting small-datapath
// selections.
#ifndef COREBIST_BIST_CONSTRAINT_GEN_HPP_
#define COREBIST_BIST_CONSTRAINT_GEN_HPP_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "netlist/builder.hpp"

namespace corebist {

class ConstraintGenerator {
 public:
  virtual ~ConstraintGenerator() = default;
  [[nodiscard]] virtual int width() const = 0;
  /// Value driven on the constrained port at `cycle` (deterministic).
  [[nodiscard]] virtual std::uint64_t valueAt(std::int64_t cycle) const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Holds one constant value for the whole test (degenerate CG; used by the
/// ablation benches as the "no exploration" extreme).
class HoldConstraint final : public ConstraintGenerator {
 public:
  HoldConstraint(int width, std::uint64_t value)
      : width_(width), value_(value) {}
  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] std::uint64_t valueAt(std::int64_t) const override {
    return value_;
  }
  [[nodiscard]] std::string describe() const override;

 private:
  int width_;
  std::uint64_t value_;
};

/// Cycles through a weighted schedule of values: each entry is held for
/// `dwell` consecutive patterns, then the next entry follows; the schedule
/// wraps. Dwell weights express "maximize the used circuitry".
class ScheduleConstraint final : public ConstraintGenerator {
 public:
  struct Entry {
    std::uint64_t value = 0;
    int dwell = 1;
  };
  ScheduleConstraint(int width, std::vector<Entry> schedule);

  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] std::uint64_t valueAt(std::int64_t cycle) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const std::vector<Entry>& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] int period() const noexcept { return period_; }

 private:
  int width_;
  std::vector<Entry> schedule_;
  std::vector<int> prefix_;  // cumulative dwell
  int period_;
};

/// Structural schedule CG: modulo-period counter plus range-compare value
/// selection; matches ScheduleConstraint::valueAt cycle-exactly when enabled
/// every cycle from reset.
[[nodiscard]] Bus buildScheduleCgHw(Builder& b,
                                    const ScheduleConstraint& schedule,
                                    NetId en, NetId clear);

/// Biased pseudo-random CG: a private ALFSR plus per-bit AND/OR tap
/// networks, so control-style inputs can be pseudo-random but *rare* (e.g.
/// a flush asserted 1/16 of the cycles instead of 1/2). This is the paper's
/// "particular state machine controls the behavior of the circuit" in its
/// simplest hardware form: a handful of gates off a dedicated LFSR.
class BiasedConstraint final : public ConstraintGenerator {
 public:
  enum class BitBias : std::uint8_t {
    kFree,    // one LFSR tap, p(1) = 1/2
    kRare2,   // AND of 2 taps, p(1) = 1/4
    kRare3,   // AND of 3 taps, p(1) = 1/8
    kRare4,   // AND of 4 taps, p(1) = 1/16
    kRare6,   // AND of 6 taps, p(1) = 1/64 (reset-style pulses)
    kOften2,  // OR of 2 taps, p(1) = 3/4
    kZero,    // constant 0
    kOne,     // constant 1
  };

  BiasedConstraint(int width, std::vector<BitBias> bias,
                   int lfsr_width = 24, std::uint64_t seed = 0xB1A5);

  [[nodiscard]] int width() const override { return width_; }
  [[nodiscard]] std::uint64_t valueAt(std::int64_t cycle) const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] const std::vector<BitBias>& bias() const noexcept {
    return bias_;
  }
  [[nodiscard]] int lfsrWidth() const noexcept { return lfsr_width_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Value for a given LFSR state (shared by software and hardware paths).
  [[nodiscard]] std::uint64_t valueForState(std::uint64_t state) const;

 private:
  int width_;
  std::vector<BitBias> bias_;
  int lfsr_width_;
  std::uint64_t seed_;
  // Sequential walk caches (valueAt is called with monotone cycles). Two
  // independent resume points so two interleaved monotone walks — golden
  // signatures of two cores sharing this CG instance, computed on
  // different scheduler shards — both advance incrementally instead of
  // replaying the LFSR from the seed on every call; the mutex keeps the
  // walks safe to share.
  struct Walk {
    std::uint64_t state = 0;
    std::int64_t cycle = -1;  // -1 = slot unused
  };
  mutable std::mutex cache_mu_;
  mutable std::array<Walk, 2> walks_;
};

[[nodiscard]] Bus buildBiasedCgHw(Builder& b, const BiasedConstraint& cg,
                                  NetId en, NetId load);

}  // namespace corebist

#endif  // COREBIST_BIST_CONSTRAINT_GEN_HPP_
