#include "bist/misr.hpp"

#include <cmath>
#include <stdexcept>

#include "bist/lfsr.hpp"

namespace corebist {

std::uint64_t misrPolyMask(int width) {
  // Reuse the ALFSR primitive-polynomial table: taps t correspond to
  // exponents t+1; coefficient mask has bit 0 plus bit (t+1) for each tap
  // except the top one (t = width-1, which is the x^w term itself).
  std::uint64_t mask = 1;  // x^0
  for (const int t : primitiveTaps(width)) {
    const int e = t + 1;
    if (e < width) mask |= std::uint64_t{1} << e;
  }
  return mask;
}

Misr::Misr(int width) : Misr(width, misrPolyMask(width)) {}

Misr::Misr(int width, std::uint64_t poly_mask)
    : width_(width),
      mask_(width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << width) - 1)),
      poly_(poly_mask & mask_) {
  if (width < 2 || width > 64) {
    throw std::invalid_argument("Misr: width out of range");
  }
  if ((poly_ & 1u) == 0) {
    throw std::invalid_argument("Misr: polynomial must include x^0");
  }
}

void Misr::step(std::uint64_t input) {
  const bool msb = ((state_ >> (width_ - 1)) & 1u) != 0;
  state_ = ((state_ << 1) & mask_) ^ (msb ? poly_ : 0) ^ (input & mask_);
}

void Misr::stepWide(std::uint64_t response, int response_width) {
  std::uint64_t folded = 0;
  for (int i = 0; i < response_width; ++i) {
    folded ^= ((response >> i) & 1u) << (i % width_);
  }
  step(folded);
}

double Misr::aliasingBound() const { return std::pow(2.0, -width_); }

std::vector<std::vector<NetId>> foldFeeds(const std::vector<NetId>& outputs,
                                          int width) {
  std::vector<std::vector<NetId>> feeds(static_cast<std::size_t>(width));
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    feeds[i % static_cast<std::size_t>(width)].push_back(outputs[i]);
  }
  return feeds;
}

MisrSpec makeMisrSpec(const std::vector<NetId>& outputs, int width) {
  MisrSpec spec;
  spec.width = width;
  spec.poly = misrPolyMask(width);
  spec.feeds = foldFeeds(outputs, width);
  return spec;
}

MisrHw buildMisrHw(Builder& b, const std::vector<NetId>& inputs, int width,
                   NetId en, NetId clear) {
  const Bus q = b.state("misr", width);
  const auto feeds = foldFeeds(inputs, width);
  const std::uint64_t poly = misrPolyMask(width);
  const NetId msb = q[static_cast<std::size_t>(width - 1)];
  Bus next;
  next.reserve(static_cast<std::size_t>(width));
  for (int j = 0; j < width; ++j) {
    NetId v = j > 0 ? q[static_cast<std::size_t>(j - 1)] : b.lo();
    if (((poly >> j) & 1u) != 0) v = b.xor2(v, msb);
    for (const NetId in : feeds[static_cast<std::size_t>(j)]) {
      v = b.xor2(v, in);
    }
    next.push_back(v);
  }
  b.connectEnClr(q, next, en, clear);
  return MisrHw{q};
}

}  // namespace corebist
