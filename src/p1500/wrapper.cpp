#include "p1500/wrapper.hpp"

#include <stdexcept>

namespace corebist {

namespace {
/// Shift a register toward WSO (LSB-first): returns the outgoing bit.
bool shiftReg(std::vector<bool>& reg, bool wsi) {
  const bool out = reg.front();
  for (std::size_t i = 0; i + 1 < reg.size(); ++i) reg[i] = reg[i + 1];
  reg.back() = wsi;
  return out;
}

std::uint32_t regValue(const std::vector<bool>& reg) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    if (reg[i]) v |= 1u << i;
  }
  return v;
}

void loadReg(std::vector<bool>& reg, std::uint64_t value) {
  for (std::size_t i = 0; i < reg.size(); ++i) {
    reg[i] = ((value >> i) & 1u) != 0;
  }
}
}  // namespace

std::string_view wirName(WirInstruction i) {
  switch (i) {
    case WirInstruction::kWsBypass:
      return "WS_BYPASS";
    case WirInstruction::kWsExtest:
      return "WS_EXTEST";
    case WirInstruction::kWsIntest:
      return "WS_INTEST";
    case WirInstruction::kWsCdr:
      return "WS_CDR";
    case WirInstruction::kWsDr:
      return "WS_DR";
    case WirInstruction::kWsChildSel:
      return "WS_CHILD_SEL";
    case WirInstruction::kWsChildWir:
      return "WS_CHILD_WIR";
    case WirInstruction::kWsChildDr:
      return "WS_CHILD_DR";
  }
  return "?";
}

P1500Wrapper::P1500Wrapper(int wbr_bits, Hooks hooks)
    : hooks_(std::move(hooks)),
      wir_shift_(kWirBits, false),
      wcdr_shift_(kWcdrBits, false),
      wdr_shift_(kWdrBits, false),
      wbr_shift_(static_cast<std::size_t>(wbr_bits), false),
      wbr_update_(static_cast<std::size_t>(wbr_bits), false),
      child_sel_shift_(kChildSelBits, false) {
  if (wbr_bits < 1) throw std::invalid_argument("P1500Wrapper: WBR empty");
}

int P1500Wrapper::attachChild(P1500Wrapper* child) {
  if (child == nullptr) {
    throw std::invalid_argument("P1500Wrapper: null child wrapper");
  }
  if (child == this || child->inSubtree(this)) {
    throw std::invalid_argument(
        "P1500Wrapper: attaching this child would create a wrapper cycle");
  }
  for (const P1500Wrapper* c : children_) {
    if (c == child || c->inSubtree(child)) {
      throw std::invalid_argument(
          "P1500Wrapper: child wrapper already attached in this chain");
    }
  }
  if (children_.size() >= (std::size_t{1} << kChildSelBits)) {
    throw std::invalid_argument(
        "P1500Wrapper: child chain full (WS_CHILD_SEL is " +
        std::to_string(kChildSelBits) + " bits)");
  }
  children_.push_back(child);
  return static_cast<int>(children_.size()) - 1;
}

P1500Wrapper* P1500Wrapper::selectedChild() const {
  if (child_sel_ < 0 ||
      static_cast<std::size_t>(child_sel_) >= children_.size()) {
    return nullptr;
  }
  return children_[static_cast<std::size_t>(child_sel_)];
}

bool P1500Wrapper::inSubtree(const P1500Wrapper* w) const {
  if (w == this) return true;
  for (const P1500Wrapper* c : children_) {
    if (c->inSubtree(w)) return true;
  }
  return false;
}

void P1500Wrapper::reset() {
  instr_ = WirInstruction::kWsBypass;
  std::fill(wir_shift_.begin(), wir_shift_.end(), false);
  std::fill(wcdr_shift_.begin(), wcdr_shift_.end(), false);
  std::fill(wdr_shift_.begin(), wdr_shift_.end(), false);
  std::fill(wbr_shift_.begin(), wbr_shift_.end(), false);
  std::fill(wbr_update_.begin(), wbr_update_.end(), false);
  std::fill(child_sel_shift_.begin(), child_sel_shift_.end(), false);
  wby_ = false;
  child_sel_ = -1;
  for (P1500Wrapper* c : children_) c->reset();
}

int P1500Wrapper::selectedLength(bool select_wir) const {
  if (select_wir) return kWirBits;
  switch (instr_) {
    case WirInstruction::kWsBypass:
      return 1;
    case WirInstruction::kWsExtest:
    case WirInstruction::kWsIntest:
      return static_cast<int>(wbr_shift_.size());
    case WirInstruction::kWsCdr:
      return kWcdrBits;
    case WirInstruction::kWsDr:
      return kWdrBits;
    case WirInstruction::kWsChildSel:
      return kChildSelBits;
    case WirInstruction::kWsChildWir: {
      const P1500Wrapper* c = selectedChild();
      return c != nullptr ? c->selectedLength(true) : 1;
    }
    case WirInstruction::kWsChildDr: {
      const P1500Wrapper* c = selectedChild();
      return c != nullptr ? c->selectedLength(false) : 1;
    }
  }
  return 1;
}

bool P1500Wrapper::cycle(const WscSignals& wsc, bool wsi) {
  bool wso = false;
  if (wsc.select_wir) {
    if (wsc.capture) {
      // 1500 convention: capture a fixed 01 pattern for chain integrity.
      loadReg(wir_shift_, 0b001u);
    } else if (wsc.shift) {
      wso = shiftReg(wir_shift_, wsi);
    } else if (wsc.update) {
      // Every 3-bit code is defined now that 5..7 address the child chain.
      instr_ = static_cast<WirInstruction>(regValue(wir_shift_) & 0x7u);
    }
    return wso;
  }

  switch (instr_) {
    case WirInstruction::kWsBypass:
      if (wsc.shift) {
        wso = wby_;
        wby_ = wsi;
      }
      break;
    case WirInstruction::kWsExtest:
    case WirInstruction::kWsIntest:
      if (wsc.capture) {
        const std::uint64_t snap =
            hooks_.capture_inputs ? hooks_.capture_inputs() : 0u;
        loadReg(wbr_shift_, snap);
      } else if (wsc.shift) {
        wso = shiftReg(wbr_shift_, wsi);
      } else if (wsc.update) {
        wbr_update_ = wbr_shift_;
      }
      break;
    case WirInstruction::kWsCdr:
      if (wsc.shift) {
        wso = shiftReg(wcdr_shift_, wsi);
      } else if (wsc.update) {
        const std::uint32_t v = regValue(wcdr_shift_);
        const auto cmd = static_cast<BistCommand>(v & 0x7u);
        const auto data = static_cast<std::uint16_t>((v >> 3) & 0xFFFFu);
        if (hooks_.command) hooks_.command(cmd, data);
      }
      break;
    case WirInstruction::kWsDr:
      if (wsc.capture) {
        wdr_last_capture_ = hooks_.read_data ? hooks_.read_data() : 0u;
        loadReg(wdr_shift_, wdr_last_capture_ & 0xFFFFu);
      } else if (wsc.shift) {
        wso = shiftReg(wdr_shift_, wsi);
      }
      break;
    case WirInstruction::kWsChildSel:
      if (wsc.capture) {
        loadReg(child_sel_shift_, static_cast<unsigned>(child_sel_));
      } else if (wsc.shift) {
        wso = shiftReg(child_sel_shift_, wsi);
      } else if (wsc.update) {
        const std::uint32_t v = regValue(child_sel_shift_);
        if (v < children_.size()) child_sel_ = static_cast<int>(v);
      }
      break;
    case WirInstruction::kWsChildWir:
    case WirInstruction::kWsChildDr:
      if (P1500Wrapper* c = selectedChild()) {
        // The parent is a plain wire while forwarding: the child register
        // sits directly between this wrapper's WSI and WSO.
        const bool to_child_wir = instr_ == WirInstruction::kWsChildWir;
        wso = c->cycle(WscSignals{to_child_wir, wsc.capture, wsc.shift,
                                  wsc.update},
                       wsi);
      } else if (wsc.shift) {
        wso = wby_;  // no child routed: degrade to the 1-bit bypass
        wby_ = wsi;
      }
      break;
  }
  return wso;
}

}  // namespace corebist
