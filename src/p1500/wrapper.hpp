// IEEE P1500 wrapper (paper §3.3, Fig. 5).
//
// The wrapper interfaces the BIST-equipped core with the chip-level test
// infrastructure: a serial port (WSI/WSO), the WSC control signals
// (SelectWIR, CaptureWR, ShiftWR, UpdateWR, WRCK, WRSTN) and the register
// set — mandatory WIR and WBY, the boundary register WBR, and the two
// user-defined registers the paper introduces:
//   * WCDR (Wrapper Control Data Register): commands to the core — reset,
//     test start, pattern count, status-read selection;
//   * WDR (Wrapper Data Register): output register through which the TAP
//     reads test status and MISR signatures.
#ifndef COREBIST_P1500_WRAPPER_HPP_
#define COREBIST_P1500_WRAPPER_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bist/control_unit.hpp"

namespace corebist {

/// WIR instruction set (3 bits).
enum class WirInstruction : std::uint8_t {
  kWsBypass = 0,  // WBY between WSI and WSO
  kWsExtest = 1,  // WBR, outward facing
  kWsIntest = 2,  // WBR, inward facing
  kWsCdr = 3,     // WCDR: command delivery to the BIST engine
  kWsDr = 4,      // WDR: status / signature upload
};

[[nodiscard]] std::string_view wirName(WirInstruction i);

/// One WRCK cycle's worth of WSC control signals.
struct WscSignals {
  bool select_wir = false;
  bool capture = false;
  bool shift = false;
  bool update = false;
};

class P1500Wrapper {
 public:
  struct Hooks {
    /// WCDR update: deliver a decoded command to the BIST control unit.
    std::function<void(BistCommand, std::uint16_t)> command;
    /// WDR capture: fetch the word to upload (status or selected MISR).
    std::function<std::uint32_t()> read_data;
    /// WBR capture: functional port snapshot (optional; zeros if absent).
    std::function<std::uint64_t()> capture_inputs;
  };

  /// `wbr_bits` is the boundary-register length (in-cells + out-cells).
  P1500Wrapper(int wbr_bits, Hooks hooks);

  /// WRSTN: async reset — WIR returns to WS_BYPASS, registers clear.
  void reset();

  /// One WRCK rising edge. Returns the WSO bit presented during this cycle
  /// (valid while shifting). `wsi` is the serial input bit.
  bool cycle(const WscSignals& wsc, bool wsi);

  [[nodiscard]] WirInstruction instruction() const noexcept { return instr_; }
  /// Length of the register currently between WSI and WSO.
  [[nodiscard]] int selectedLength(bool select_wir) const;

  [[nodiscard]] const std::vector<bool>& wbrShadow() const noexcept {
    return wbr_update_;
  }
  [[nodiscard]] std::uint32_t lastWdrCapture() const noexcept {
    return wdr_last_capture_;
  }

  static constexpr int kWirBits = 3;
  static constexpr int kWcdrBits = 19;  // 3-bit command + 16-bit data
  static constexpr int kWdrBits = 16;

 private:
  Hooks hooks_;
  WirInstruction instr_ = WirInstruction::kWsBypass;
  std::vector<bool> wir_shift_;
  bool wby_ = false;
  std::vector<bool> wcdr_shift_;
  std::vector<bool> wdr_shift_;
  std::vector<bool> wbr_shift_;
  std::vector<bool> wbr_update_;
  std::uint32_t wdr_last_capture_ = 0;
};

}  // namespace corebist

#endif  // COREBIST_P1500_WRAPPER_HPP_
