// IEEE P1500 wrapper (paper §3.3, Fig. 5).
//
// The wrapper interfaces the BIST-equipped core with the chip-level test
// infrastructure: a serial port (WSI/WSO), the WSC control signals
// (SelectWIR, CaptureWR, ShiftWR, UpdateWR, WRCK, WRSTN) and the register
// set — mandatory WIR and WBY, the boundary register WBR, and the two
// user-defined registers the paper introduces:
//   * WCDR (Wrapper Control Data Register): commands to the core — reset,
//     test start, pattern count, status-read selection;
//   * WDR (Wrapper Data Register): output register through which the TAP
//     reads test status and MISR signatures.
//
// Hierarchy: a wrapper may own child wrappers (wrapped cores containing
// wrapped cores). Three WIR instructions expose them without widening the
// WIR: WS_CHILD_SEL scans a child-select register, WS_CHILD_WIR forwards
// the scan to the selected child's WIR, and WS_CHILD_DR forwards it to
// whichever register the child's WIR selects — including, recursively, the
// child's own child chain. The parent acts as a plain wire while
// forwarding, so a scan through N ancestors still shifts exactly the
// target register's length.
#ifndef COREBIST_P1500_WRAPPER_HPP_
#define COREBIST_P1500_WRAPPER_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bist/control_unit.hpp"

namespace corebist {

/// WIR instruction set (3 bits).
enum class WirInstruction : std::uint8_t {
  kWsBypass = 0,    // WBY between WSI and WSO
  kWsExtest = 1,    // WBR, outward facing
  kWsIntest = 2,    // WBR, inward facing
  kWsCdr = 3,       // WCDR: command delivery to the BIST engine
  kWsDr = 4,        // WDR: status / signature upload
  kWsChildSel = 5,  // child-select register (hierarchical cores)
  kWsChildWir = 6,  // forward the scan to the selected child's WIR
  kWsChildDr = 7,   // forward the scan to the child's selected register
};

[[nodiscard]] std::string_view wirName(WirInstruction i);

/// One WRCK cycle's worth of WSC control signals.
struct WscSignals {
  bool select_wir = false;
  bool capture = false;
  bool shift = false;
  bool update = false;
};

class P1500Wrapper {
 public:
  struct Hooks {
    /// WCDR update: deliver a decoded command to the BIST control unit.
    std::function<void(BistCommand, std::uint16_t)> command;
    /// WDR capture: fetch the word to upload (status or selected MISR).
    std::function<std::uint32_t()> read_data;
    /// WBR capture: functional port snapshot (optional; zeros if absent).
    std::function<std::uint64_t()> capture_inputs;
  };

  /// `wbr_bits` is the boundary-register length (in-cells + out-cells).
  P1500Wrapper(int wbr_bits, Hooks hooks);

  /// Attach a child wrapper to this wrapper's child chain; returns the
  /// child's slot (the value WS_CHILD_SEL latches to reach it). Throws for
  /// a null/self/duplicate child, a child that already contains this
  /// wrapper (a cycle), or a full chain.
  int attachChild(P1500Wrapper* child);

  /// Child currently latched by WS_CHILD_SEL; nullptr until the first
  /// valid select. Child instructions behave as a 1-bit bypass while no
  /// child is selected, so a scan can never reach a core the ATE has not
  /// explicitly routed to.
  [[nodiscard]] P1500Wrapper* selectedChild() const;
  [[nodiscard]] int childCount() const noexcept {
    return static_cast<int>(children_.size());
  }
  /// True when `w` is this wrapper or appears anywhere in its child tree.
  [[nodiscard]] bool inSubtree(const P1500Wrapper* w) const;

  /// WRSTN: async reset — WIR returns to WS_BYPASS, registers clear, the
  /// child selection is dropped and the reset propagates down the tree.
  void reset();

  /// One WRCK rising edge. Returns the WSO bit presented during this cycle
  /// (valid while shifting). `wsi` is the serial input bit.
  bool cycle(const WscSignals& wsc, bool wsi);

  [[nodiscard]] WirInstruction instruction() const noexcept { return instr_; }
  /// Length of the register currently between WSI and WSO.
  [[nodiscard]] int selectedLength(bool select_wir) const;

  [[nodiscard]] const std::vector<bool>& wbrShadow() const noexcept {
    return wbr_update_;
  }
  [[nodiscard]] std::uint32_t lastWdrCapture() const noexcept {
    return wdr_last_capture_;
  }

  static constexpr int kWirBits = 3;
  static constexpr int kWcdrBits = 19;  // 3-bit command + 16-bit data
  static constexpr int kWdrBits = 16;
  static constexpr int kChildSelBits = 4;  // up to 16 children per wrapper

 private:
  Hooks hooks_;
  WirInstruction instr_ = WirInstruction::kWsBypass;
  std::vector<bool> wir_shift_;
  bool wby_ = false;
  std::vector<bool> wcdr_shift_;
  std::vector<bool> wdr_shift_;
  std::vector<bool> wbr_shift_;
  std::vector<bool> wbr_update_;
  std::uint32_t wdr_last_capture_ = 0;
  std::vector<P1500Wrapper*> children_;
  int child_sel_ = -1;
  std::vector<bool> child_sel_shift_;
};

}  // namespace corebist

#endif  // COREBIST_P1500_WRAPPER_HPP_
