// Structural P1500 wrapper hardware, for the area (Table 2) and timing
// (Table 4) accounting.
//
// buildWrapperHw(): standalone wrapper netlist — WIR (3 cells + decode),
// WBY, WCDR (19 bits + command decode), WDR (16 bits) and one boundary cell
// per wrapped functional I/O (shift flop + update flop + two muxes, the
// standard WBC_1 layout).
//
// buildBoundaryWrappedModule(): a module with the boundary cells' series
// muxes inserted on every functional input and output path — the timing
// view of "patterns are applied using a standard P1500 wrapper".
#ifndef COREBIST_P1500_WRAPPER_HW_HPP_
#define COREBIST_P1500_WRAPPER_HW_HPP_

#include "netlist/netlist.hpp"

namespace corebist {

/// Standalone wrapper for a core with `in_bits`/`out_bits` functional I/O.
[[nodiscard]] Netlist buildWrapperHw(int in_bits, int out_bits);

/// Module variant with wrapper-cell muxes in series on each port.
[[nodiscard]] Netlist buildBoundaryWrappedModule(const Netlist& module);

}  // namespace corebist

#endif  // COREBIST_P1500_WRAPPER_HW_HPP_
