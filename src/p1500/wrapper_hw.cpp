#include "p1500/wrapper_hw.hpp"

#include <unordered_set>

#include "netlist/builder.hpp"

namespace corebist {

namespace {
/// One boundary cell: capture mux -> shift flop -> update flop -> out mux.
/// Returns the cell's serial output (shift flop Q).
NetId boundaryCell(Builder& b, NetId functional, NetId serial_in, NetId shift,
                   NetId capture, NetId update_en, NetId test_mode,
                   NetId* cell_out) {
  Netlist& nl = b.netlist();
  const NetId shift_q = nl.addDff();
  const NetId update_q = nl.addDff();
  // Shift flop: capture ? functional : (shift ? serial_in : hold)
  const NetId shift_d =
      b.mux(b.mux(shift_q, serial_in, shift), functional, capture);
  nl.connectDff(shift_q, shift_d);
  // Update latch.
  nl.connectDff(update_q, b.mux(update_q, shift_q, update_en));
  // Functional path mux: test_mode ? update_q : functional.
  *cell_out = b.mux(functional, update_q, test_mode);
  return shift_q;
}
}  // namespace

Netlist buildWrapperHw(int in_bits, int out_bits) {
  Netlist nl("p1500_wrapper");
  Builder b(nl);
  const NetId wsi = b.input("wsi", 1)[0];
  const Bus wsc = b.input("wsc", 6);  // SelectWIR/Capture/Shift/Update/mode/rst
  const NetId select_wir = wsc[0];
  const NetId capture = wsc[1];
  const NetId shift = wsc[2];
  const NetId update = wsc[3];
  const NetId test_mode = wsc[4];

  const Bus f_in = b.input("f_in", in_bits);
  const Bus f_out_core = b.input("f_out_core", out_bits);

  // WIR: 3 shift cells + update register + decode.
  const NetId wir_shift_en = b.and2(select_wir, shift);
  const Bus wir_sh = b.state("wir_sh", 3);
  b.connectEn(wir_sh, Bus{wir_sh[1], wir_sh[2], wsi}, wir_shift_en);
  const Bus wir = b.state("wir", 3);
  b.connectEn(wir, wir_sh, b.and2(select_wir, update));
  const Bus decode = b.decode(wir);

  const NetId dr_shift = b.and2(b.not1(select_wir), shift);
  const NetId dr_capture = b.and2(b.not1(select_wir), capture);
  const NetId dr_update = b.and2(b.not1(select_wir), update);

  // WBY.
  const Bus wby = b.state("wby", 1);
  b.connectEn(wby, Bus{wsi}, b.and2(dr_shift, decode[0]));

  // WBR around the functional ports.
  Bus to_core;
  Bus to_pads;
  NetId serial = wsi;
  const NetId wbr_sel = b.or2(decode[1], decode[2]);
  const NetId wbr_shift = b.and2(dr_shift, wbr_sel);
  const NetId wbr_capture = b.and2(dr_capture, wbr_sel);
  const NetId wbr_update = b.and2(dr_update, wbr_sel);
  for (int i = 0; i < in_bits; ++i) {
    NetId cell_out = kNullNet;
    serial = boundaryCell(b, f_in[static_cast<std::size_t>(i)], serial,
                          wbr_shift, wbr_capture, wbr_update, test_mode,
                          &cell_out);
    to_core.push_back(cell_out);
  }
  for (int i = 0; i < out_bits; ++i) {
    NetId cell_out = kNullNet;
    serial = boundaryCell(b, f_out_core[static_cast<std::size_t>(i)], serial,
                          wbr_shift, wbr_capture, wbr_update, test_mode,
                          &cell_out);
    to_pads.push_back(cell_out);
  }

  // WCDR: 19-bit shift + command decode strobe.
  const Bus wcdr = b.state("wcdr", 19);
  {
    Bus next;
    for (int i = 0; i + 1 < 19; ++i) next.push_back(wcdr[static_cast<std::size_t>(i + 1)]);
    next.push_back(wsi);
    b.connectEn(wcdr, next, b.and2(dr_shift, decode[3]));
  }
  const Bus cmd_strobe = b.state("cmd_strobe", 1);
  b.connect(cmd_strobe, Bus{b.and2(dr_update, decode[3])});

  // WDR: 16-bit capture/shift register fed by the engine's result bus.
  const Bus result = b.input("result", 16);
  const Bus wdr = b.state("wdr", 16);
  {
    Bus shifted;
    for (int i = 0; i + 1 < 16; ++i) shifted.push_back(wdr[static_cast<std::size_t>(i + 1)]);
    shifted.push_back(wsi);
    const Bus next = b.mux(shifted, result, b.and2(dr_capture, decode[4]));
    b.connectEn(wdr, next,
                b.or2(b.and2(dr_shift, decode[4]), b.and2(dr_capture, decode[4])));
  }

  // WSO: selected register's serial tail.
  Bus wso_src = wby;
  NetId wso = b.mux(wso_src[0], serial, wbr_sel);
  wso = b.mux(wso, wcdr[0], decode[3]);
  wso = b.mux(wso, wdr[0], decode[4]);
  wso = b.mux(wso, wir_sh[0], select_wir);
  b.output("wso", Bus{wso});
  b.output("to_core", to_core);
  b.output("to_pads", to_pads);
  b.output("cmd", Bus{cmd_strobe[0]});
  nl.validate();
  return nl;
}

Netlist buildBoundaryWrappedModule(const Netlist& module) {
  Netlist nl(module.name() + "_wrapped");
  Builder b(nl);
  const NetId test_mode = b.input("wrp_test_mode", 1)[0];
  nl.absorb(module, "u_");
  // Only the module's genuine boundary gets cells: absorbed sub-module port
  // registrations (whose nets are internal) are skipped.
  std::unordered_set<NetId> pi_set(module.primaryInputs().begin(),
                                   module.primaryInputs().end());
  std::unordered_set<NetId> po_set(module.primaryOutputs().begin(),
                                   module.primaryOutputs().end());
  auto allIn = [](const std::unordered_set<NetId>& set,
                  const std::vector<NetId>& bits) {
    for (const NetId n : bits) {
      if (!set.contains(n)) return false;
    }
    return true;
  };
  // Inputs: functional pad -> WBC mux -> core.
  for (const PortBus& port : module.ports()) {
    if (port.is_input ? !allIn(pi_set, port.bits) : !allIn(po_set, port.bits)) {
      continue;
    }
    // Copy the bits: registering the pad/outward port reallocates the port
    // table and would leave a PortBus pointer dangling.
    const Bus inner_bits = nl.findPort("u_" + port.name)->bits;
    if (port.is_input) {
      const Bus pad = b.input(port.name, static_cast<int>(port.bits.size()));
      for (std::size_t i = 0; i < inner_bits.size(); ++i) {
        // The update latch is modelled as a register to keep realistic load.
        const NetId upd = nl.addDff();
        nl.connectDff(upd, upd);
        nl.driveNet(inner_bits[i], b.mux(pad[i], upd, test_mode));
      }
    } else {
      Bus outward;
      for (std::size_t i = 0; i < inner_bits.size(); ++i) {
        const NetId upd = nl.addDff();
        nl.connectDff(upd, upd);
        outward.push_back(b.mux(inner_bits[i], upd, test_mode));
      }
      b.output(port.name, outward);
    }
  }
  nl.validate();
  return nl;
}

}  // namespace corebist
