#include "atpg/atpg.hpp"

#include <chrono>
#include <random>

#include "atpg/podem.hpp"

namespace corebist {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

PatternBlock randomBlock(std::mt19937_64& rng, std::size_t width) {
  PatternBlock blk;
  blk.inputs.resize(width);
  for (auto& w : blk.inputs) w = rng();
  blk.count = 64;
  return blk;
}

/// v2 = v1 with every chain shifted one position (launch-on-shift), the
/// incoming scan bit random, functional PIs held.
PatternBlock losSuccessor(const PatternBlock& v1, const ScanView& view,
                          std::mt19937_64& rng) {
  PatternBlock v2 = v1;
  std::size_t base = static_cast<std::size_t>(view.num_functional_inputs);
  for (const auto& chain : view.chains) {
    // inputs[base + k] corresponds to chain cell k; a shift moves cell k-1's
    // value into cell k, with a fresh bit entering cell 0.
    for (std::size_t k = chain.size(); k-- > 1;) {
      v2.inputs[base + k] = v1.inputs[base + k - 1];
    }
    if (!chain.empty()) v2.inputs[base] = rng();
    base += chain.size();
  }
  return v2;
}

}  // namespace

FullScanAtpgResult runFullScanAtpg(const Netlist& scanned,
                                   const ScanView& view,
                                   std::span<const Fault> faults,
                                   const FullScanAtpgOptions& opts) {
  const auto t0 = Clock::now();
  FullScanAtpgResult res;
  res.total_faults = faults.size();

  CombFaultSim fsim(scanned, view.inputs, view.observed);
  std::vector<char> detected(faults.size(), 0);
  std::mt19937_64 rng(opts.seed);

  // Phase 1: random patterns with fault dropping and stall exit, one
  // kernel campaign instead of a hand-rolled block loop.
  {
    const RandomPatternSource random_patterns(opts.seed, view.inputs.size(),
                                              opts.max_random_blocks * 64);
    FaultSimOptions fopts;
    fopts.cycles = opts.max_random_blocks * 64;
    fopts.prepass_cycles = 0;
    fopts.stall_blocks = opts.random_stall_blocks;
    const FaultSimResult rr = fsim.run(faults, random_patterns, fopts);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (rr.first_detect[i] >= 0) detected[i] = 1;
    }
    res.patterns += rr.patterns_applied;
  }

  // Phase 2: PODEM on survivors under the CPU budget. Generated tests are
  // collected into blocks and fault-simulated to drop collateral detections.
  // The hand-packed confirmation blocks never exceed 64 patterns, so they
  // run on the 64-lane kernel — the wide kernel would evaluate all-masked
  // upper lane words for nothing.
  CombFaultSimT<1> confirm_fsim(scanned, view.inputs, view.observed);
  Podem podem(scanned, view.inputs, view.observed, opts.backtrack_limit);
  PatternBlock pending;
  pending.inputs.assign(view.inputs.size(), 0);
  int pending_count = 0;
  auto flushPending = [&] {
    if (pending_count == 0) return;
    pending.count = pending_count;
    confirm_fsim.loadBlock(pending);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i]) continue;
      if (confirm_fsim.detect(faults[i]).any()) detected[i] = 1;
    }
    res.patterns += static_cast<std::size_t>(pending_count);
    pending_count = 0;
    for (auto& w : pending.inputs) w = 0;
  };

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    if (secondsSince(t0) > opts.podem_budget_seconds) {
      ++res.aborted;
      continue;
    }
    const auto test = podem.generate(faults[i]);
    if (!test.has_value()) {
      ++res.aborted;
      continue;
    }
    for (std::size_t j = 0; j < test->size(); ++j) {
      const bool bit = (*test)[j] == Tv::kX ? (rng() & 1u) != 0
                                            : (*test)[j] == Tv::k1;
      if (bit) pending.inputs[j] |= std::uint64_t{1} << pending_count;
    }
    detected[i] = 1;  // PODEM guarantees detection of the target
    ++pending_count;
    if (pending_count == 64) flushPending();
  }
  flushPending();

  for (const char d : detected) {
    if (d) ++res.detected;
  }
  res.test_cycles = view.testCycles(res.patterns);
  res.cpu_seconds = secondsSince(t0);
  return res;
}

FullScanAtpgResult runFullScanTransition(const Netlist& scanned,
                                         const ScanView& view,
                                         std::span<const Fault> tdf_faults,
                                         const FullScanAtpgOptions& opts) {
  const auto t0 = Clock::now();
  FullScanAtpgResult res;
  res.total_faults = tdf_faults.size();

  // LOS pair blocks are hand-built 64-pattern blocks: 64-lane kernel.
  CombFaultSimT<1> fsim(scanned, view.inputs, view.observed);
  std::vector<char> detected(tdf_faults.size(), 0);
  std::mt19937_64 rng(opts.seed ^ 0x7D0F0ull);
  std::size_t live = tdf_faults.size();
  int stall = 0;
  // Random LOS pairs with fault dropping; the shift constraint on v2 is the
  // structural reason TDF coverage trails stuck-at coverage here.
  for (int blk = 0; blk < opts.max_random_blocks * 2 && live > 0; ++blk) {
    const PatternBlock v1 = randomBlock(rng, view.inputs.size());
    const PatternBlock v2 = losSuccessor(v1, view, rng);
    fsim.loadPairBlock(v1, v2);
    std::size_t newly = 0;
    for (std::size_t i = 0; i < tdf_faults.size(); ++i) {
      if (detected[i]) continue;
      if (fsim.detect(tdf_faults[i]).any()) {
        detected[i] = 1;
        ++newly;
        --live;
      }
    }
    res.patterns += 64;
    stall = newly == 0 ? stall + 1 : 0;
    if (stall >= opts.random_stall_blocks * 2) break;
  }

  for (const char d : detected) {
    if (d) ++res.detected;
  }
  res.test_cycles = view.testCyclesTransition(res.patterns);
  res.cpu_seconds = secondsSince(t0);
  return res;
}

SeqAtpgResult runSequentialAtpg(const Netlist& module,
                                std::span<const Fault> faults,
                                const SeqAtpgOptions& opts) {
  const auto t0 = Clock::now();
  SeqAtpgResult res;
  res.total_faults = faults.size();

  SeqFaultSim fsim(module);
  std::mt19937_64 rng(opts.seed);
  const std::size_t n_inputs = module.primaryInputs().size();

  for (int cand = 0; cand < opts.candidates; ++cand) {
    // Weighted-random profile: each input gets an independent 1-probability
    // from {1/2, 1/4, 3/4, 1/8, 7/8}; slow-moving inputs emulate the
    // "functional-looking" sequences a simulation-based sequential ATPG
    // evolves toward.
    std::vector<int> weight(n_inputs);
    std::vector<int> hold(n_inputs);
    for (auto& w : weight) w = 1 + static_cast<int>(rng() % 7);  // /8 prob
    for (auto& h : hold) h = 1 << (rng() % 4);                   // dwell 1..8
    std::vector<std::uint64_t> seq(static_cast<std::size_t>(opts.sequence_cycles));
    std::uint64_t cur = 0;
    for (int c = 0; c < opts.sequence_cycles; ++c) {
      for (std::size_t j = 0; j < n_inputs; ++j) {
        if (c % hold[j] == 0) {
          const bool bit = static_cast<int>(rng() % 8) < weight[j];
          if (bit) {
            cur |= std::uint64_t{1} << j;
          } else {
            cur &= ~(std::uint64_t{1} << j);
          }
        }
      }
      seq[static_cast<std::size_t>(c)] = cur;
    }
    SeqFsimOptions fopts;
    fopts.cycles = opts.sequence_cycles;
    fopts.prepass_cycles = 256;
    fopts.num_threads = opts.num_threads;
    const SeqFsimResult r = fsim.run(faults, seq, fopts);
    if (r.detected > res.detected) {
      res.detected = r.detected;
      res.best_sequence = std::move(seq);
      std::int32_t last = 0;
      for (const auto fd : r.first_detect) {
        if (fd > last) last = fd;
      }
      res.effective_cycles = static_cast<std::size_t>(last) + 1;
    }
  }
  res.cpu_seconds = secondsSince(t0);
  return res;
}

}  // namespace corebist
