#include "atpg/atpg.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>

#include "analyze/collapse.hpp"
#include "analyze/hazards.hpp"
#include "analyze/scoap.hpp"
#include "atpg/podem.hpp"
#include "fault/backend.hpp"

namespace corebist {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The batch-grading engine: the wide comb kernel itself, or the requested
/// orchestrator (threaded or multi-process) sharding the fault list across
/// it when the caller asked for workers. `holder` owns the wrapper; the
/// returned pointer is whichever engine the batches should run on.
FaultSim* makeGrader(CombFaultSim& fsim, const FullScanAtpgOptions& opts,
                     std::unique_ptr<FaultSim>& holder) {
  if (opts.num_threads <= 1 || opts.grading_backend == FsimBackend::kSerial) {
    return &fsim;
  }
  FsimBackendOptions bopts;
  bopts.backend = opts.grading_backend;
  bopts.num_workers = opts.num_threads;
  holder = makeOrchestrator(fsim, bopts);
  return holder.get();
}

PatternBlock randomBlock(std::mt19937_64& rng, std::size_t width) {
  PatternBlock blk;
  blk.inputs.resize(width);
  for (auto& w : blk.inputs) w = rng();
  blk.count = 64;
  return blk;
}

/// v2 = v1 with every chain shifted one position (launch-on-shift), the
/// incoming scan bit random, functional PIs held.
PatternBlock losSuccessor(const PatternBlock& v1, const ScanView& view,
                          std::mt19937_64& rng) {
  PatternBlock v2 = v1;
  std::size_t base = static_cast<std::size_t>(view.num_functional_inputs);
  for (const auto& chain : view.chains) {
    // inputs[base + k] corresponds to chain cell k; a shift moves cell k-1's
    // value into cell k, with a fresh bit entering cell 0.
    for (std::size_t k = chain.size(); k-- > 1;) {
      v2.inputs[base + k] = v1.inputs[base + k - 1];
    }
    if (!chain.empty()) v2.inputs[base] = rng();
    base += chain.size();
  }
  return v2;
}

/// For each fault, the index of an earlier span entry it is
/// observation-aware equivalent to (analyze/collapse.hpp), or -1 when it is
/// the first of its class (or outside the stuck-at universe). The target
/// loop skips a member only when its leader's search concluded something —
/// a generated test (which detects every member: equivalent faults have
/// identical faulty functions) or a completed untestability proof.
std::vector<std::ptrdiff_t> equivalentLeaders(const Netlist& scanned,
                                              std::span<const NetId> observed,
                                              std::span<const Fault> faults) {
  std::vector<std::ptrdiff_t> leader(faults.size(), -1);
  const CollapseResult coll = collapseStuckAt(scanned, observed);
  using Key = std::array<std::uint32_t, 4>;
  const auto keyOf = [](const Fault& f) {
    return Key{f.net, f.gate, f.pin, static_cast<std::uint32_t>(f.kind)};
  };
  std::map<Key, std::size_t> class_of;
  for (std::size_t i = 0; i < coll.universe.size(); ++i) {
    class_of.emplace(keyOf(coll.universe[i]), coll.class_of[i]);
  }
  std::map<std::size_t, std::size_t> first_in_span;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (!isStuckAt(faults[i].kind)) continue;
    const auto it = class_of.find(keyOf(faults[i]));
    if (it == class_of.end()) continue;
    const auto [fit, inserted] = first_in_span.emplace(it->second, i);
    if (!inserted) leader[i] = static_cast<std::ptrdiff_t>(fit->second);
  }
  return leader;
}

}  // namespace

FullScanAtpgResult runFullScanAtpg(const Netlist& scanned,
                                   const ScanView& view,
                                   std::span<const Fault> faults,
                                   const FullScanAtpgOptions& opts) {
  const auto t0 = Clock::now();
  FullScanAtpgResult res;
  res.total_faults = faults.size();

  CombFaultSim fsim(scanned, view.inputs, view.observed);
  std::vector<char> detected(faults.size(), 0);
  std::mt19937_64 rng(opts.seed);

  // Phase 1: random patterns with fault dropping and stall exit, one
  // kernel campaign instead of a hand-rolled block loop.
  {
    const RandomPatternSource random_patterns(opts.seed, view.inputs.size(),
                                              opts.max_random_blocks * 64);
    FaultSimOptions fopts;
    fopts.cycles = opts.max_random_blocks * 64;
    fopts.prepass_cycles = 0;
    fopts.stall_blocks = opts.random_stall_blocks;
    const FaultSimResult rr = fsim.run(faults, random_patterns, fopts);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (rr.first_detect[i] >= 0) detected[i] = 1;
    }
    res.patterns += rr.patterns_applied;
  }

  // Phase 2: PODEM on survivors under the CPU budget. Candidate tests
  // accumulate into a VectorPatternSource batch (multi-block, so the wide
  // kernel's full lane width is used); each full batch is graded over the
  // entire surviving fault list through FaultSim::run, dropping collateral
  // detections across the whole batch before the next target is chosen.
  // Targets are not pre-marked detected: the batch campaign itself confirms
  // every PODEM test, so the detected set is exactly what fault simulation
  // proves.
  Podem podem(scanned, view.inputs, view.observed, opts.backtrack_limit);
  ScoapScores scoap;
  if (opts.use_scoap) {
    scoap = computeScoap(scanned, view.observed);
    podem.setScoap(&scoap);
  }
  std::vector<std::ptrdiff_t> leader;
  // Per-fault PODEM outcome, kept only for equivalence skipping:
  // 0 = not targeted, 1 = test generated, 2 = proven untestable by a
  // complete search, 3 = aborted (budget ran out, nothing proven).
  std::vector<char> outcome;
  if (opts.collapse_faults) {
    leader = equivalentLeaders(scanned, view.observed, faults);
    outcome.assign(faults.size(), 0);
  }
  std::unique_ptr<FaultSim> threaded;
  FaultSim* grader = makeGrader(fsim, opts, threaded);
  const int batch_cap = std::max(1, opts.batch_patterns);
  VectorPatternSource batch(view.inputs.size());
  std::vector<std::uint8_t> bits(view.inputs.size(), 0);
  std::vector<char> gave_up(faults.size(), 0);
  std::vector<Fault> live;
  std::vector<std::size_t> live_idx;
  auto flushBatch = [&] {
    if (batch.patternCount() == 0) return;
    live.clear();
    live_idx.clear();
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i] == 0) {
        live.push_back(faults[i]);
        live_idx.push_back(i);
      }
    }
    FaultSimOptions fopts;
    fopts.cycles = batch.patternCount();
    fopts.prepass_cycles = 0;
    fopts.num_threads = 1;
    const FaultSimResult rr = grader->run(live, batch, fopts);
    for (std::size_t k = 0; k < live_idx.size(); ++k) {
      if (rr.first_detect[k] >= 0) detected[live_idx[k]] = 1;
    }
    // Every kept candidate is part of the emitted test set, whether or not
    // the kernel's internal dropping stopped simulating early.
    res.patterns += static_cast<std::size_t>(batch.patternCount());
    ++res.batches;
    batch.clear();
  };

  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i] != 0) continue;
    if (!leader.empty() && leader[i] >= 0) {
      // Equivalent to an earlier target. Skipping is sound in exactly two
      // cases: the leader produced a test (identical faulty functions mean
      // identical detecting-pattern sets, so the pending/graded test covers
      // this member too), or the leader's complete search proved the class
      // untestable. An *aborted* leader proves nothing — this member's own
      // search starts from a different fault site and may still succeed, so
      // it falls through to its own PODEM call.
      const char lo = outcome[static_cast<std::size_t>(leader[i])];
      if (lo == 1 || lo == 2) {
        ++res.collapsed_faults;
        continue;
      }
    }
    if (secondsSince(t0) > opts.podem_budget_seconds) {
      gave_up[i] = 1;
      continue;
    }
    ++res.podem_calls;
    const auto test = podem.generate(faults[i]);
    res.backtracks += podem.backtracksUsed();
    if (!test.has_value()) {
      gave_up[i] = 1;
      if (!outcome.empty()) outcome[i] = podem.lastAborted() ? 3 : 2;
      continue;
    }
    if (!outcome.empty()) outcome[i] = 1;
    for (std::size_t j = 0; j < test->size(); ++j) {
      bits[j] = (*test)[j] == Tv::kX
                    ? static_cast<std::uint8_t>(rng() & 1u)
                    : static_cast<std::uint8_t>((*test)[j] == Tv::k1 ? 1 : 0);
    }
    batch.append(bits);
    if (batch.patternCount() >= batch_cap) flushBatch();
  }
  flushBatch();

  // A skipped equivalence-class member shares its leader's fate: if the
  // leader gave up and nothing detected the member, it is aborted too.
  if (!leader.empty()) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (leader[i] >= 0 && detected[i] == 0 &&
          gave_up[static_cast<std::size_t>(leader[i])] != 0) {
        gave_up[i] = 1;
      }
    }
  }

  // `aborted` is recomputed after the last flush: a fault whose own PODEM
  // run gave up can still fall to a later candidate's collateral coverage,
  // and counting it in both buckets used to let aborted + detected exceed
  // total_faults.
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i] != 0) {
      ++res.detected;
    } else if (gave_up[i] != 0) {
      ++res.aborted;
    }
  }
  res.test_cycles = view.testCycles(res.patterns);
  res.cpu_seconds = secondsSince(t0);
  return res;
}

FullScanAtpgResult runFullScanTransition(const Netlist& scanned,
                                         const ScanView& view,
                                         std::span<const Fault> tdf_faults,
                                         const FullScanAtpgOptions& opts) {
  const auto t0 = Clock::now();
  FullScanAtpgResult res;
  res.total_faults = tdf_faults.size();

  CombFaultSim fsim(scanned, view.inputs, view.observed);
  std::unique_ptr<FaultSim> threaded;
  FaultSim* grader = makeGrader(fsim, opts, threaded);
  std::vector<char> detected(tdf_faults.size(), 0);
  std::mt19937_64 rng(opts.seed ^ 0x7D0F0ull);

  // Random LOS pairs with fault dropping, batched: whole 64-pair blocks
  // accumulate into launch/capture VectorPatternSources and each batch is
  // one FaultSim::run pair campaign (FaultSimOptions::launch) over every
  // surviving fault. The shift constraint on v2 is the structural reason
  // TDF coverage trails stuck-at coverage here.
  //
  // The narrow driver's stall exit ("stop after random_stall_blocks * 2
  // consecutive no-yield 64-pair blocks") is replayed from the batch's
  // first_detect records: detections land on global pair indices, so the
  // per-block yield sequence — and therefore the exit point and the pattern
  // count — is byte-identical to the old block-at-a-time loop at any batch
  // size and thread count. Detections past the replayed cut are discarded,
  // exactly as if the campaign had stopped there.
  VectorPatternSource launch_src(view.inputs.size());
  VectorPatternSource capture_src(view.inputs.size());
  const int blocks_per_batch =
      std::max(1, (std::max(1, opts.batch_patterns) + 63) / 64);
  const int total_blocks = opts.max_random_blocks * 2;
  const int stall_limit = opts.random_stall_blocks * 2;
  int stall = 0;
  std::vector<Fault> live;
  std::vector<std::size_t> live_idx;
  std::vector<char> block_yield;
  for (int blk = 0; blk < total_blocks;) {
    live.clear();
    live_idx.clear();
    for (std::size_t i = 0; i < tdf_faults.size(); ++i) {
      if (detected[i] == 0) {
        live.push_back(tdf_faults[i]);
        live_idx.push_back(i);
      }
    }
    if (live.empty()) break;

    launch_src.clear();
    capture_src.clear();
    for (int b = 0; b < blocks_per_batch && blk < total_blocks; ++b, ++blk) {
      const PatternBlock v1 = randomBlock(rng, view.inputs.size());
      const PatternBlock v2 = losSuccessor(v1, view, rng);
      launch_src.appendBlock(v1);
      capture_src.appendBlock(v2);
    }
    FaultSimOptions fopts;
    fopts.cycles = capture_src.patternCount();
    fopts.prepass_cycles = 0;
    fopts.num_threads = 1;
    fopts.launch = &launch_src;
    const FaultSimResult rr = grader->run(live, capture_src, fopts);
    ++res.batches;

    // Replay the per-64-pair-block stall/early-stop accounting.
    const int nsub = capture_src.patternCount() / 64;
    block_yield.assign(static_cast<std::size_t>(nsub), 0);
    for (const std::int32_t fd : rr.first_detect) {
      if (fd >= 0) block_yield[static_cast<std::size_t>(fd / 64)] = 1;
    }
    int cut_sub = nsub;
    bool stall_exit = false;
    for (int s = 0; s < nsub; ++s) {
      stall = block_yield[static_cast<std::size_t>(s)] != 0 ? 0 : stall + 1;
      if (stall >= stall_limit) {
        cut_sub = s + 1;
        stall_exit = true;
        break;
      }
    }
    int last_retire_sub = -1;
    std::size_t accepted = 0;
    for (std::size_t k = 0; k < live_idx.size(); ++k) {
      const std::int32_t fd = rr.first_detect[k];
      if (fd >= 0 && fd < 64 * cut_sub) {
        detected[live_idx[k]] = 1;
        ++accepted;
        if (fd / 64 > last_retire_sub) last_retire_sub = fd / 64;
      }
    }
    int applied_sub = cut_sub;
    if (accepted == live_idx.size() && last_retire_sub + 1 < applied_sub) {
      applied_sub = last_retire_sub + 1;  // the block that emptied the list
    }
    res.patterns += static_cast<std::size_t>(64 * applied_sub);
    if (stall_exit) break;
  }

  for (const char d : detected) {
    if (d) ++res.detected;
  }
  res.test_cycles = view.testCyclesTransition(res.patterns);
  res.cpu_seconds = secondsSince(t0);
  return res;
}

SeqAtpgResult runSequentialAtpg(const Netlist& module,
                                std::span<const Fault> faults,
                                const SeqAtpgOptions& opts) {
  const auto t0 = Clock::now();
  SeqAtpgResult res;
  res.total_faults = faults.size();

  // The candidate sequences below pack one cycle per 64-bit word (bit j
  // drives PI j), the format SeqFaultSim::run(faults, words, opts)
  // broadcasts. The shared packed-stimulus hazard rule
  // (analyze/hazards.hpp, the same limit the structural linter reports)
  // rejects modules whose PI count the `1 << j` shift cannot carry.
  requirePackedStimulusWidth(module, "runSequentialAtpg");
  const std::size_t n_inputs = module.primaryInputs().size();
  SeqFaultSim fsim(module);
  std::mt19937_64 rng(opts.seed);

  for (int cand = 0; cand < opts.candidates; ++cand) {
    // Weighted-random profile: each input gets an independent 1-probability
    // from {1/2, 1/4, 3/4, 1/8, 7/8}; slow-moving inputs emulate the
    // "functional-looking" sequences a simulation-based sequential ATPG
    // evolves toward.
    std::vector<int> weight(n_inputs);
    std::vector<int> hold(n_inputs);
    for (auto& w : weight) w = 1 + static_cast<int>(rng() % 7);  // /8 prob
    for (auto& h : hold) h = 1 << (rng() % 4);                   // dwell 1..8
    std::vector<std::uint64_t> seq(static_cast<std::size_t>(opts.sequence_cycles));
    std::uint64_t cur = 0;
    for (int c = 0; c < opts.sequence_cycles; ++c) {
      for (std::size_t j = 0; j < n_inputs; ++j) {
        if (c % hold[j] == 0) {
          const bool bit = static_cast<int>(rng() % 8) < weight[j];
          if (bit) {
            cur |= std::uint64_t{1} << j;
          } else {
            cur &= ~(std::uint64_t{1} << j);
          }
        }
      }
      seq[static_cast<std::size_t>(c)] = cur;
    }
    SeqFsimOptions fopts;
    fopts.cycles = opts.sequence_cycles;
    fopts.prepass_cycles = 256;
    fopts.num_threads = opts.num_threads;
    const SeqFsimResult r = fsim.run(faults, seq, fopts);
    if (r.detected > res.detected) {
      res.detected = r.detected;
      res.best_sequence = std::move(seq);
      std::int32_t last = 0;
      for (const auto fd : r.first_detect) {
        if (fd > last) last = fd;
      }
      res.effective_cycles = static_cast<std::size_t>(last) + 1;
    }
  }
  res.cpu_seconds = secondsSince(t0);
  return res;
}

}  // namespace corebist
