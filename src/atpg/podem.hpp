// PODEM combinational ATPG (full-scan baseline of Table 3).
//
// Classic PODEM: objectives are solved by backtracing to an unassigned
// primary input of the combinational view, implications run in two
// three-valued planes (good machine / faulty machine), the D-frontier is
// maintained from the set of divergent nets, and a bounded backtrack stack
// explores input assignments. Faults that exhaust the backtrack budget are
// counted as aborted — exactly how the commercial tool the paper used
// reports its sub-100% full-scan coverage.
#ifndef COREBIST_ATPG_PODEM_HPP_
#define COREBIST_ATPG_PODEM_HPP_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analyze/scoap.hpp"
#include "fault/fault.hpp"
#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace corebist {

/// Three-valued logic constant.
enum class Tv : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

class Podem {
 public:
  Podem(const Netlist& nl, std::span<const NetId> inputs,
        std::span<const NetId> observed, int backtrack_limit = 24);

  /// Try to generate a test for `f` (stuck-at only). Returns one value per
  /// input (Tv::kX = don't care) or nullopt on abort/untestable.
  [[nodiscard]] std::optional<std::vector<Tv>> generate(const Fault& f);

  [[nodiscard]] std::size_t backtracksUsed() const noexcept {
    return backtracks_;
  }

  /// True when the last generate() returned nullopt because a search budget
  /// (backtrack limit or iteration guard) ran out — i.e. nothing was
  /// *proven*. False after a nullopt means the complete search space was
  /// exhausted: the fault is untestable, and so is every fault with the
  /// same faulty function (the distinction equivalence-collapsed targeting
  /// relies on).
  [[nodiscard]] bool lastAborted() const noexcept { return aborted_; }

  /// Install SCOAP scores as the objective-ordering heuristic: the
  /// D-frontier advances through the most observable gate (min CO) and
  /// backtrace picks the easiest input when any suffices / the hardest when
  /// all are needed. Purely an ordering hint — with `scores == nullptr`
  /// (the default) the search is bit-identical to the unguided baseline,
  /// and either way the set of testable faults is unchanged; only the
  /// decision order (and therefore the backtrack count) moves. The caller
  /// keeps `scores` alive for the Podem's lifetime; scores must be computed
  /// with the same observed set.
  void setScoap(const ScoapScores* scores) noexcept { scoap_ = scores; }

 private:
  struct Decision {
    int input_index;
    bool tried_both;
  };

  void implyAll();
  [[nodiscard]] bool faultDetectedAtOutput() const;
  [[nodiscard]] bool faultActivated() const;
  /// Find (input, value) for the current objective; false if none exists.
  [[nodiscard]] bool backtrace(NetId obj_net, Tv obj_val, int& input_index,
                               Tv& value) const;
  [[nodiscard]] bool pickObjective(NetId& net, Tv& val) const;

  const Netlist& nl_;
  Levelization lev_;
  std::vector<NetId> inputs_;
  std::vector<NetId> observed_;
  std::vector<char> observed_flag_;
  std::vector<int> input_of_net_;  // net -> input index or -1
  int backtrack_limit_;
  std::size_t backtracks_ = 0;
  bool aborted_ = false;
  const ScoapScores* scoap_ = nullptr;  // optional ordering heuristic

  // Current fault.
  Fault fault_{};
  // Per-net 3-valued planes.
  std::vector<Tv> gval_;
  std::vector<Tv> fval_;
  std::vector<Tv> assignment_;  // per input
};

}  // namespace corebist

#endif  // COREBIST_ATPG_PODEM_HPP_
