#include "atpg/podem.hpp"

#include <algorithm>

namespace corebist {

namespace {

/// 3-valued gate evaluation.
Tv tvEval(GateType t, Tv a, Tv b, Tv s) {
  auto is01 = [](Tv v) { return v != Tv::kX; };
  auto band = [&](Tv x, Tv y) {
    if (x == Tv::k0 || y == Tv::k0) return Tv::k0;
    if (x == Tv::k1 && y == Tv::k1) return Tv::k1;
    return Tv::kX;
  };
  auto bor = [&](Tv x, Tv y) {
    if (x == Tv::k1 || y == Tv::k1) return Tv::k1;
    if (x == Tv::k0 && y == Tv::k0) return Tv::k0;
    return Tv::kX;
  };
  auto bnot = [&](Tv x) {
    if (x == Tv::kX) return Tv::kX;
    return x == Tv::k0 ? Tv::k1 : Tv::k0;
  };
  switch (t) {
    case GateType::kConst0:
      return Tv::k0;
    case GateType::kConst1:
      return Tv::k1;
    case GateType::kBuf:
      return a;
    case GateType::kNot:
      return bnot(a);
    case GateType::kAnd:
      return band(a, b);
    case GateType::kNand:
      return bnot(band(a, b));
    case GateType::kOr:
      return bor(a, b);
    case GateType::kNor:
      return bnot(bor(a, b));
    case GateType::kXor:
      return (is01(a) && is01(b)) ? (a == b ? Tv::k0 : Tv::k1) : Tv::kX;
    case GateType::kXnor:
      return (is01(a) && is01(b)) ? (a == b ? Tv::k1 : Tv::k0) : Tv::kX;
    case GateType::kMux2:
      if (s == Tv::k0) return a;
      if (s == Tv::k1) return b;
      // sel unknown: output known only if both data agree.
      return (is01(a) && a == b) ? a : Tv::kX;
  }
  return Tv::kX;
}

/// Controlling value of a gate's inputs, if any.
std::optional<Tv> controllingValue(GateType t) {
  switch (t) {
    case GateType::kAnd:
    case GateType::kNand:
      return Tv::k0;
    case GateType::kOr:
    case GateType::kNor:
      return Tv::k1;
    default:
      return std::nullopt;
  }
}

/// Does the gate invert (for backtrace parity)?
bool inverts(GateType t) {
  return t == GateType::kNot || t == GateType::kNand || t == GateType::kNor ||
         t == GateType::kXnor;
}

}  // namespace

Podem::Podem(const Netlist& nl, std::span<const NetId> inputs,
             std::span<const NetId> observed, int backtrack_limit)
    : nl_(nl),
      lev_(levelize(nl)),
      inputs_(inputs.begin(), inputs.end()),
      observed_(observed.begin(), observed.end()),
      observed_flag_(nl.numNets(), 0),
      input_of_net_(nl.numNets(), -1),
      backtrack_limit_(backtrack_limit) {
  for (const NetId n : observed_) observed_flag_[n] = 1;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    input_of_net_[inputs_[i]] = static_cast<int>(i);
  }
}

void Podem::implyAll() {
  // Load input assignment, then forward-simulate both planes.
  std::fill(gval_.begin(), gval_.end(), Tv::kX);
  std::fill(fval_.begin(), fval_.end(), Tv::kX);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    gval_[inputs_[i]] = assignment_[i];
    fval_[inputs_[i]] = assignment_[i];
  }
  // Stem fault on an input/source net.
  if (fault_.isStem()) {
    fval_[fault_.net] = fault_.kind == FaultKind::kSa1 ? Tv::k1 : Tv::k0;
  }
  const auto& gates = nl_.gates();
  for (const GateId g : lev_.order) {
    const Gate& gate = gates[g];
    const Tv ga = gate.nin > 0 ? gval_[gate.in[0]] : Tv::kX;
    const Tv gb = gate.nin > 1 ? gval_[gate.in[1]] : Tv::kX;
    const Tv gs = gate.nin > 2 ? gval_[gate.in[2]] : Tv::kX;
    gval_[gate.out] = tvEval(gate.type, ga, gb, gs);
    Tv fa = gate.nin > 0 ? fval_[gate.in[0]] : Tv::kX;
    Tv fb = gate.nin > 1 ? fval_[gate.in[1]] : Tv::kX;
    Tv fs = gate.nin > 2 ? fval_[gate.in[2]] : Tv::kX;
    if (!fault_.isStem() && fault_.gate == g) {
      const Tv forced = fault_.kind == FaultKind::kSa1 ? Tv::k1 : Tv::k0;
      if (fault_.pin == 0) fa = forced;
      if (fault_.pin == 1) fb = forced;
      if (fault_.pin == 2) fs = forced;
    }
    Tv fv = tvEval(gate.type, fa, fb, fs);
    fval_[gate.out] = fv;
    if (fault_.isStem() && gate.out == fault_.net) {
      fval_[gate.out] = fault_.kind == FaultKind::kSa1 ? Tv::k1 : Tv::k0;
    }
  }
}

bool Podem::faultDetectedAtOutput() const {
  for (const NetId n : observed_) {
    const Tv g = gval_[n];
    const Tv f = fval_[n];
    if (g != Tv::kX && f != Tv::kX && g != f) return true;
  }
  return false;
}

bool Podem::faultActivated() const {
  const Tv g = gval_[fault_.isStem() ? fault_.net : fault_.net];
  const Tv bad = fault_.kind == FaultKind::kSa1 ? Tv::k1 : Tv::k0;
  return g != Tv::kX && g != bad;
}

bool Podem::pickObjective(NetId& net, Tv& val) const {
  // 1) Activate the fault.
  const Tv site_g = gval_[fault_.net];
  const Tv bad = fault_.kind == FaultKind::kSa1 ? Tv::k1 : Tv::k0;
  if (site_g == Tv::kX) {
    net = fault_.net;
    val = bad == Tv::k1 ? Tv::k0 : Tv::k1;
    return true;
  }
  if (site_g == bad) return false;  // activation impossible now

  // 2) Advance the D-frontier: find a gate with a divergent input and an
  // unknown output; ask for a non-controlling value on an X input.
  //
  // Unguided, the first frontier candidate in net order wins. With SCOAP
  // installed the whole frontier is scanned and the candidate behind the
  // most observable gate output (min CO) wins, hardest side input (max CC)
  // first — fail fast on the side conditions before investing in the rest.
  const auto& gates = nl_.gates();
  const ReaderCsr& readers = nl_.readerCsr();
  bool found = false;
  std::uint32_t best_co = 0;
  std::uint32_t best_cc = 0;
  for (NetId n = 0; n < nl_.numNets(); ++n) {
    const Tv g = gval_[n];
    const Tv f = fval_[n];
    if (g == Tv::kX || f == Tv::kX || g == f) continue;
    for (const NetReader& r : readers.of(n)) {
      const Gate& gate = gates[r.gate];
      if (gval_[gate.out] != Tv::kX && fval_[gate.out] != Tv::kX &&
          gval_[gate.out] != fval_[gate.out]) {
        continue;  // already propagated through here
      }
      // Find an X input to justify.
      for (int p = 0; p < gate.nin; ++p) {
        const NetId in = gate.in[static_cast<std::size_t>(p)];
        if (in == n) continue;
        if (gval_[in] != Tv::kX) continue;
        const auto cv = controllingValue(gate.type);
        Tv want = Tv::k1;
        if (cv.has_value()) {
          want = (*cv == Tv::k0) ? Tv::k1 : Tv::k0;  // non-controlling
        } else if (gate.type == GateType::kMux2 && p == 2) {
          // Select the divergent data input.
          want = (gate.in[0] == n) ? Tv::k0 : Tv::k1;
        } else {
          want = Tv::k0;  // XOR-family: any binary value sensitizes
        }
        if (scoap_ == nullptr) {
          net = in;
          val = want;
          return true;
        }
        const std::uint32_t co = scoap_->co[gate.out];
        const std::uint32_t cc = scoap_->cc(in, want == Tv::k1);
        if (!found || co < best_co || (co == best_co && cc > best_cc)) {
          found = true;
          best_co = co;
          best_cc = cc;
          net = in;
          val = want;
        }
      }
    }
  }
  return found;
}

bool Podem::backtrace(NetId obj_net, Tv obj_val, int& input_index,
                      Tv& value) const {
  NetId n = obj_net;
  Tv v = obj_val;
  const auto& gates = nl_.gates();
  for (int guard = 0; guard < 100000; ++guard) {
    if (input_of_net_[n] >= 0) {
      if (assignment_[static_cast<std::size_t>(input_of_net_[n])] != Tv::kX) {
        return false;  // objective collides with an assigned input
      }
      input_index = input_of_net_[n];
      value = v;
      return true;
    }
    const GateId d = nl_.driverOf(n);
    if (d == Netlist::kNoDriver) return false;  // state net outside the view
    const Gate& gate = gates[d];
    if (gate.nin == 0) return false;  // constant
    // Collect the X inputs; unguided takes the first, SCOAP reorders.
    int xpins[3];
    int nx = 0;
    for (int p = 0; p < gate.nin; ++p) {
      if (gval_[gate.in[static_cast<std::size_t>(p)]] == Tv::kX) xpins[nx++] = p;
    }
    if (nx == 0) return false;
    int pick = xpins[0];
    const auto ccOf = [&](int p, Tv val) {
      return scoap_->cc(gate.in[static_cast<std::size_t>(p)], val == Tv::k1);
    };
    if (gate.type == GateType::kMux2) {
      // Steer: value heuristic keeps v for data pins, 0 for select. Guided,
      // take the cheapest pin to justify.
      if (scoap_ != nullptr) {
        for (int i = 1; i < nx; ++i) {
          const Tv cand_v = (xpins[i] == 2) ? Tv::k0 : v;
          const Tv pick_v = (pick == 2) ? Tv::k0 : v;
          if (ccOf(xpins[i], cand_v) < ccOf(pick, pick_v)) pick = xpins[i];
        }
      }
      n = gate.in[static_cast<std::size_t>(pick)];
      v = (pick == 2) ? Tv::k0 : v;
      continue;
    }
    if (gate.type == GateType::kXor || gate.type == GateType::kXnor) {
      // Parity gates: pin and value are both free choices. Guided, take the
      // pin whose cheaper polarity is cheapest, at that polarity.
      Tv free_v = Tv::k0;
      if (scoap_ != nullptr) {
        const auto minCc = [&](int p) {
          return std::min(ccOf(p, Tv::k0), ccOf(p, Tv::k1));
        };
        for (int i = 1; i < nx; ++i) {
          if (minCc(xpins[i]) < minCc(pick)) pick = xpins[i];
        }
        free_v = ccOf(pick, Tv::k0) <= ccOf(pick, Tv::k1) ? Tv::k0 : Tv::k1;
      }
      n = gate.in[static_cast<std::size_t>(pick)];
      v = free_v;
      continue;
    }
    // BUF/NOT/AND/NAND/OR/NOR: every input wants the same value (parity
    // adjusted). Guided: when any single input settles the output (the
    // wanted input value is the controlling value), justify the easiest
    // input; when all inputs are needed, the hardest — fail fast.
    const Tv v_in =
        inverts(gate.type) ? (v == Tv::k0 ? Tv::k1 : Tv::k0) : v;
    if (scoap_ != nullptr && nx > 1) {
      const auto cv = controllingValue(gate.type);
      const bool any_suffices = cv.has_value() && v_in == *cv;
      for (int i = 1; i < nx; ++i) {
        const bool better = any_suffices
                                ? ccOf(xpins[i], v_in) < ccOf(pick, v_in)
                                : ccOf(xpins[i], v_in) > ccOf(pick, v_in);
        if (better) pick = xpins[i];
      }
    }
    n = gate.in[static_cast<std::size_t>(pick)];
    v = v_in;
  }
  return false;
}

std::optional<std::vector<Tv>> Podem::generate(const Fault& f) {
  fault_ = f;
  gval_.assign(nl_.numNets(), Tv::kX);
  fval_.assign(nl_.numNets(), Tv::kX);
  assignment_.assign(inputs_.size(), Tv::kX);
  backtracks_ = 0;
  aborted_ = false;

  std::vector<Decision> stack;
  implyAll();

  for (int guard = 0; guard < 200000; ++guard) {
    if (faultDetectedAtOutput()) {
      return assignment_;
    }
    NetId obj_net = kNullNet;
    Tv obj_val = Tv::kX;
    int input_index = -1;
    Tv input_val = Tv::kX;
    const bool have_obj = pickObjective(obj_net, obj_val) &&
                          backtrace(obj_net, obj_val, input_index, input_val);
    if (have_obj) {
      assignment_[static_cast<std::size_t>(input_index)] = input_val;
      stack.push_back(Decision{input_index, false});
      implyAll();
      continue;
    }
    // Dead end: backtrack.
    bool recovered = false;
    while (!stack.empty()) {
      Decision& d = stack.back();
      if (!d.tried_both) {
        d.tried_both = true;
        auto& a = assignment_[static_cast<std::size_t>(d.input_index)];
        a = (a == Tv::k0) ? Tv::k1 : Tv::k0;
        ++backtracks_;
        if (backtracks_ > static_cast<std::size_t>(backtrack_limit_)) {
          aborted_ = true;
          return std::nullopt;
        }
        implyAll();
        recovered = true;
        break;
      }
      assignment_[static_cast<std::size_t>(d.input_index)] = Tv::kX;
      stack.pop_back();
    }
    if (!recovered && stack.empty()) {
      if (backtracks_ > 0 || !recovered) return std::nullopt;  // untestable
    }
    if (stack.empty() && !recovered) return std::nullopt;
  }
  aborted_ = true;  // iteration guard: search space not exhausted
  return std::nullopt;
}

}  // namespace corebist
