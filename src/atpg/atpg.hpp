// Test-generation drivers for the Table 3 baselines.
//
// Full scan: random-pattern bootstrap (PPSFP with fault dropping) followed
// by PODEM on the survivors under a CPU budget; pattern counts convert to
// tester clocks through the ScanView shift model. Transition faults use
// launch-on-shift pairs (v2 is v1 shifted one position down each chain),
// which is why full-scan TDF coverage trails its stuck-at coverage.
//
// Sequential: simulation-based search in the spirit of the authors' own
// GATTO line — candidate weighted-random input sequences are fault-graded
// with the sequential fault simulator and the best candidate is kept. No
// scan, no constraint generator: functional inputs only, which is exactly
// why its coverage trails the BIST engine (Table 3's story).
#ifndef COREBIST_ATPG_ATPG_HPP_
#define COREBIST_ATPG_ATPG_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/scan.hpp"

namespace corebist {

struct FullScanAtpgOptions {
  int max_random_blocks = 48;      // 64 patterns per block
  int random_stall_blocks = 6;     // stop random phase after no-yield blocks
  double podem_budget_seconds = 30.0;
  int backtrack_limit = 24;
  std::uint64_t seed = 0x5EED;
};

struct FullScanAtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t aborted = 0;  // PODEM gave up within budget
  std::size_t patterns = 0;
  std::size_t test_cycles = 0;
  double cpu_seconds = 0.0;
  [[nodiscard]] double coverage() const {
    return total_faults == 0 ? 0.0
                             : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(total_faults);
  }
};

/// Stuck-at full-scan ATPG on the scanned module's combinational view.
[[nodiscard]] FullScanAtpgResult runFullScanAtpg(
    const Netlist& scanned, const ScanView& view,
    std::span<const Fault> faults, const FullScanAtpgOptions& opts = {});

/// Transition-delay full-scan test generation (random LOS pairs).
[[nodiscard]] FullScanAtpgResult runFullScanTransition(
    const Netlist& scanned, const ScanView& view,
    std::span<const Fault> tdf_faults, const FullScanAtpgOptions& opts = {});

struct SeqAtpgOptions {
  int sequence_cycles = 12288;
  int candidates = 6;  // weighted-random profiles graded per module
  std::uint64_t seed = 0xCAFE;
  int num_threads = 2;
};

struct SeqAtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t effective_cycles = 0;  // prefix that yields all detections
  double cpu_seconds = 0.0;
  std::vector<std::uint64_t> best_sequence;
  [[nodiscard]] double coverage() const {
    return total_faults == 0 ? 0.0
                             : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(total_faults);
  }
};

/// Simulation-based sequential test generation on the unscanned module.
[[nodiscard]] SeqAtpgResult runSequentialAtpg(const Netlist& module,
                                              std::span<const Fault> faults,
                                              const SeqAtpgOptions& opts = {});

}  // namespace corebist

#endif  // COREBIST_ATPG_ATPG_HPP_
