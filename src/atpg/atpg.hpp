// Test-generation drivers for the Table 3 baselines.
//
// Full scan: random-pattern bootstrap (PPSFP with fault dropping) followed
// by PODEM on the survivors under a CPU budget; pattern counts convert to
// tester clocks through the ScanView shift model. Every candidate test is
// graded through `FaultSim::run` — PODEM tests accumulate into multi-block
// `VectorPatternSource` batches and each batch is simulated against the
// *entire* surviving fault list (wide CombFaultSim serially,
// ParallelFaultSim sharding when num_threads > 1), so collateral detections
// drop across the whole batch before the next target fault is chosen.
// Transition faults use launch-on-shift pairs (v2 is v1 shifted one
// position down each chain) batched through the kernel's pair path
// (FaultSimOptions::launch); the shift constraint on v2 is why full-scan
// TDF coverage trails its stuck-at coverage. See src/atpg/README.md for the
// batch-grading flow.
//
// Sequential: simulation-based search in the spirit of the authors' own
// GATTO line — candidate weighted-random input sequences are fault-graded
// with the sequential fault simulator and the best candidate is kept. No
// scan, no constraint generator: functional inputs only, which is exactly
// why its coverage trails the BIST engine (Table 3's story).
#ifndef COREBIST_ATPG_ATPG_HPP_
#define COREBIST_ATPG_ATPG_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "fault/backend.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/scan.hpp"

namespace corebist {

struct FullScanAtpgOptions {
  int max_random_blocks = 48;      // 64 patterns per block
  int random_stall_blocks = 6;     // stop random phase after no-yield blocks
  double podem_budget_seconds = 30.0;
  int backtrack_limit = 24;
  std::uint64_t seed = 0x5EED;
  /// Candidate tests per grading batch. PODEM tests (and LOS pair blocks,
  /// rounded up to whole 64-pair blocks) accumulate until the batch is full,
  /// then one FaultSim::run campaign grades it over every surviving fault.
  /// 256 fills exactly one pass of the default 256-lane wide kernel.
  int batch_patterns = 256;
  /// Batch-grading workers; > 1 shards the surviving fault list across the
  /// orchestrator picked by `grading_backend`. Results are byte-identical
  /// at any worker count and on any backend (the random bootstrap keeps its
  /// serial stall-exit semantics).
  int num_threads = 1;
  /// Orchestrator for batch grading when num_threads > 1: kThreaded shards
  /// across worker threads (the historical behavior), kProcess across
  /// forked worker processes, kSerial ignores num_threads and grades on the
  /// wide kernel directly.
  FsimBackend grading_backend = FsimBackend::kThreaded;
  /// Guide PODEM with SCOAP testability scores (analyze/scoap.hpp): the
  /// D-frontier advances through the most observable gate and backtrace
  /// orders input choices by controllability. Pure decision ordering: off
  /// (the default) is byte-identical to the historical search; on, the set
  /// of generatable tests is unchanged but backtrack counts (and which
  /// exact pattern a fault gets) move.
  bool use_scoap = false;
  /// Skip PODEM targets that are observation-aware equivalent
  /// (analyze/collapse.hpp) to an earlier target whose search either
  /// produced a test (identical faulty functions => the test detects the
  /// whole class, confirmed by batch grading) or proved the class
  /// untestable by a complete search. Aborted leaders are never skipped
  /// past — the member runs its own search — so only redundant PODEM calls
  /// disappear. Off by default.
  bool collapse_faults = false;
};

struct FullScanAtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  /// Faults whose own PODEM run gave up (backtrack limit or CPU budget) AND
  /// that no batch graded as a collateral detection: recomputed after the
  /// final flush, so detected + aborted <= total_faults always holds.
  std::size_t aborted = 0;
  std::size_t patterns = 0;
  std::size_t test_cycles = 0;
  std::size_t podem_calls = 0;  // PODEM invocations (targets attempted)
  std::size_t batches = 0;      // FaultSim::run grading campaigns flushed
  /// Total PODEM backtracks over all calls (the SCOAP guidance metric).
  std::size_t backtracks = 0;
  /// PODEM targets skipped as equivalent to an earlier target (0 unless
  /// FullScanAtpgOptions::collapse_faults).
  std::size_t collapsed_faults = 0;
  double cpu_seconds = 0.0;
  [[nodiscard]] double coverage() const {
    return total_faults == 0 ? 0.0
                             : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(total_faults);
  }
};

/// Stuck-at full-scan ATPG on the scanned module's combinational view.
[[nodiscard]] FullScanAtpgResult runFullScanAtpg(
    const Netlist& scanned, const ScanView& view,
    std::span<const Fault> faults, const FullScanAtpgOptions& opts = {});

/// Transition-delay full-scan test generation (random LOS pairs).
[[nodiscard]] FullScanAtpgResult runFullScanTransition(
    const Netlist& scanned, const ScanView& view,
    std::span<const Fault> tdf_faults, const FullScanAtpgOptions& opts = {});

struct SeqAtpgOptions {
  int sequence_cycles = 12288;
  int candidates = 6;  // weighted-random profiles graded per module
  std::uint64_t seed = 0xCAFE;
  int num_threads = 2;
};

struct SeqAtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected = 0;
  std::size_t effective_cycles = 0;  // prefix that yields all detections
  double cpu_seconds = 0.0;
  std::vector<std::uint64_t> best_sequence;
  [[nodiscard]] double coverage() const {
    return total_faults == 0 ? 0.0
                             : 100.0 * static_cast<double>(detected) /
                                   static_cast<double>(total_faults);
  }
};

/// Simulation-based sequential test generation on the unscanned module.
/// SeqFaultSim's sequence format packs one cycle per 64-bit word (bit j
/// drives PI j), so modules with more than 64 primary inputs are rejected
/// with std::invalid_argument instead of silently wrapping the bit shift.
[[nodiscard]] SeqAtpgResult runSequentialAtpg(const Netlist& module,
                                              std::span<const Fault> faults,
                                              const SeqAtpgOptions& opts = {});

}  // namespace corebist

#endif  // COREBIST_ATPG_ATPG_HPP_
