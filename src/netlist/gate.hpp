// Gate primitives for the structural netlist substrate.
//
// Every combinational primitive is at most 3-input (MUX2); wider functions
// are composed by the word-level Builder. Word-parallel evaluation packs 64
// independent simulation contexts into one std::uint64_t, which is the basis
// of both the logic simulator and the parallel fault simulator.
#ifndef COREBIST_NETLIST_GATE_HPP_
#define COREBIST_NETLIST_GATE_HPP_

#include <array>
#include <cstdint>
#include <string_view>

namespace corebist {

/// Identifier of a net (a wire). Nets are dense indices into per-net arrays.
using NetId = std::uint32_t;

/// Sentinel for "no net" (e.g. an unbound flip-flop input during build).
inline constexpr NetId kNullNet = 0xFFFF'FFFFu;

/// Identifier of a gate inside a Netlist.
using GateId = std::uint32_t;

/// Combinational primitive types. kConst0/kConst1 have no inputs; kBuf/kNot
/// have one; kMux2 has three (a, b, sel) computing `sel ? b : a`; the rest
/// are 2-input.
enum class GateType : std::uint8_t {
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux2,
};

/// Number of gate types (for tables indexed by GateType).
inline constexpr int kNumGateTypes = 11;

/// Number of input pins for a gate type.
[[nodiscard]] constexpr int gateArity(GateType t) noexcept {
  switch (t) {
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    case GateType::kMux2:
      return 3;
    default:
      return 2;
  }
}

/// Human-readable mnemonic (e.g. "NAND2").
[[nodiscard]] std::string_view gateName(GateType t) noexcept;

/// Evaluate one gate over a 64-wide word per input. Unused inputs are
/// ignored. For kMux2, (a, b, s) computes (a & ~s) | (b & s).
[[nodiscard]] constexpr std::uint64_t evalGateWord(GateType t, std::uint64_t a,
                                                   std::uint64_t b,
                                                   std::uint64_t s) noexcept {
  switch (t) {
    case GateType::kConst0:
      return 0u;
    case GateType::kConst1:
      return ~std::uint64_t{0};
    case GateType::kBuf:
      return a;
    case GateType::kNot:
      return ~a;
    case GateType::kAnd:
      return a & b;
    case GateType::kNand:
      return ~(a & b);
    case GateType::kOr:
      return a | b;
    case GateType::kNor:
      return ~(a | b);
    case GateType::kXor:
      return a ^ b;
    case GateType::kXnor:
      return ~(a ^ b);
    case GateType::kMux2:
      return (a & ~s) | (b & s);
  }
  return 0u;
}

/// A structural gate instance: fixed-capacity fanin array plus output net.
struct Gate {
  GateType type = GateType::kBuf;
  std::uint8_t nin = 0;
  NetId out = kNullNet;
  std::array<NetId, 3> in{kNullNet, kNullNet, kNullNet};
};

}  // namespace corebist

#endif  // COREBIST_NETLIST_GATE_HPP_
