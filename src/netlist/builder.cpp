#include "netlist/builder.hpp"

#include <stdexcept>

namespace corebist {

namespace {
void requireSameWidth(const Bus& a, const Bus& b, const char* what) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) + ": width mismatch");
  }
}
bool isPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Bus Builder::input(const std::string& name, int width) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const NetId n = nl_.addPrimaryInput();
    nl_.setNetName(n, name + "[" + std::to_string(i) + "]");
    b.push_back(n);
  }
  nl_.registerPort(name, b, /*is_input=*/true);
  return b;
}

void Builder::output(const std::string& name, const Bus& b) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    nl_.markPrimaryOutput(b[i]);
    nl_.setNetName(b[i], name + "[" + std::to_string(i) + "]");
  }
  nl_.registerPort(name, b, /*is_input=*/false);
}

Bus Builder::state(const std::string& name, int width) {
  Bus q;
  q.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const NetId n = nl_.addDff();
    nl_.setNetName(n, name + "[" + std::to_string(i) + "]");
    q.push_back(n);
  }
  return q;
}

void Builder::connect(const Bus& q, const Bus& d) {
  requireSameWidth(q, d, "connect");
  for (std::size_t i = 0; i < q.size(); ++i) nl_.connectDff(q[i], d[i]);
}

void Builder::connectEn(const Bus& q, const Bus& d, NetId en) {
  requireSameWidth(q, d, "connectEn");
  for (std::size_t i = 0; i < q.size(); ++i) {
    nl_.connectDff(q[i], mux(q[i], d[i], en));
  }
}

void Builder::connectEnClr(const Bus& q, const Bus& d, NetId en, NetId clear) {
  requireSameWidth(q, d, "connectEnClr");
  const NetId nclr = not1(clear);
  for (std::size_t i = 0; i < q.size(); ++i) {
    nl_.connectDff(q[i], and2(mux(q[i], d[i], en), nclr));
  }
}

NetId Builder::lo() {
  if (lo_ == kNullNet) lo_ = nl_.addGate(GateType::kConst0, {});
  return lo_;
}

NetId Builder::hi() {
  if (hi_ == kNullNet) hi_ = nl_.addGate(GateType::kConst1, {});
  return hi_;
}

Bus Builder::constant(int width, std::uint64_t value) {
  Bus b;
  b.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    b.push_back(((value >> i) & 1u) != 0 ? hi() : lo());
  }
  return b;
}

Bus Builder::bwNot(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(not1(n));
  return out;
}

Bus Builder::bw(GateType t, const Bus& a, const Bus& b) {
  requireSameWidth(a, b, "bw");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(g2(t, a[i], b[i]));
  return out;
}

Bus Builder::mux(const Bus& a, const Bus& b, NetId sel) {
  requireSameWidth(a, b, "mux");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(mux(a[i], b[i], sel));
  }
  return out;
}

Bus Builder::muxN(std::span<const Bus> inputs, const Bus& sel) {
  if (!isPowerOfTwo(inputs.size())) {
    throw std::invalid_argument("muxN: input count must be a power of two");
  }
  std::vector<Bus> layer(inputs.begin(), inputs.end());
  std::size_t selbit = 0;
  while (layer.size() > 1) {
    if (selbit >= sel.size()) {
      throw std::invalid_argument("muxN: select bus too narrow");
    }
    std::vector<Bus> next;
    next.reserve(layer.size() / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(mux(layer[i], layer[i + 1], sel[selbit]));
    }
    layer = std::move(next);
    ++selbit;
  }
  return layer.front();
}

NetId Builder::reduceAnd(const Bus& a) {
  if (a.empty()) return hi();
  Bus cur = a;
  while (cur.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(and2(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur.front();
}

NetId Builder::reduceOr(const Bus& a) {
  if (a.empty()) return lo();
  Bus cur = a;
  while (cur.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(or2(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur.front();
}

NetId Builder::reduceXor(const Bus& a) {
  if (a.empty()) return lo();
  Bus cur = a;
  while (cur.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(xor2(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur.front();
}

std::pair<Bus, NetId> Builder::addc(const Bus& a, const Bus& b, NetId cin) {
  requireSameWidth(a, b, "addc");
  Bus sum;
  sum.reserve(a.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId axb = xor2(a[i], b[i]);
    sum.push_back(xor2(axb, carry));
    // carry = (a & b) | (carry & (a ^ b))
    carry = or2(and2(a[i], b[i]), and2(carry, axb));
  }
  return {sum, carry};
}

Bus Builder::add(const Bus& a, const Bus& b) { return addc(a, b, lo()).first; }

Bus Builder::sub(const Bus& a, const Bus& b) {
  return addc(a, bwNot(b), hi()).first;
}

Bus Builder::inc(const Bus& a) {
  Bus sum;
  sum.reserve(a.size());
  NetId carry = hi();
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum.push_back(xor2(a[i], carry));
    carry = and2(a[i], carry);
  }
  return sum;
}

Bus Builder::neg(const Bus& a) { return inc(bwNot(a)); }

Bus Builder::satAddSigned(const Bus& a, const Bus& b) {
  requireSameWidth(a, b, "satAddSigned");
  const std::size_t w = a.size();
  const Bus raw = add(a, b);
  // Overflow iff operands share sign and the result sign differs.
  const NetId sa = a[w - 1];
  const NetId sb = b[w - 1];
  const NetId sr = raw[w - 1];
  const NetId same = g2(GateType::kXnor, sa, sb);
  const NetId ovf = and2(same, xor2(sa, sr));
  // Saturation value: 0111..1 if positive overflow, 1000..0 if negative.
  Bus satv;
  satv.reserve(w);
  for (std::size_t i = 0; i + 1 < w; ++i) satv.push_back(not1(sa));
  satv.push_back(sa);
  return mux(raw, satv, ovf);
}

Bus Builder::absSigned(const Bus& a) {
  const NetId sign = a.back();
  return mux(a, neg(a), sign);
}

NetId Builder::eq(const Bus& a, const Bus& b) {
  requireSameWidth(a, b, "eq");
  Bus eqs;
  eqs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eqs.push_back(g2(GateType::kXnor, a[i], b[i]));
  }
  return reduceAnd(eqs);
}

NetId Builder::eqConst(const Bus& a, std::uint64_t value) {
  Bus terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    terms.push_back(((value >> i) & 1u) != 0 ? a[i] : not1(a[i]));
  }
  return reduceAnd(terms);
}

NetId Builder::ltU(const Bus& a, const Bus& b) {
  requireSameWidth(a, b, "ltU");
  // Logarithmic-depth compare: per bit (lt_i, eq_i), merged MSB-first with
  // lt = lt_hi | (eq_hi & lt_lo), eq = eq_hi & eq_lo.
  struct LE {
    NetId lt;
    NetId eq;
  };
  std::vector<LE> seg;
  seg.reserve(a.size());
  // seg[0] is the most-significant position.
  for (std::size_t i = a.size(); i-- > 0;) {
    seg.push_back(LE{and2(not1(a[i]), b[i]), g2(GateType::kXnor, a[i], b[i])});
  }
  while (seg.size() > 1) {
    std::vector<LE> next;
    for (std::size_t i = 0; i + 1 < seg.size(); i += 2) {
      next.push_back(LE{or2(seg[i].lt, and2(seg[i].eq, seg[i + 1].lt)),
                        and2(seg[i].eq, seg[i + 1].eq)});
    }
    if (seg.size() % 2 != 0) next.push_back(seg.back());
    seg = std::move(next);
  }
  return seg.front().lt;
}

std::pair<Bus, NetId> Builder::minU(const Bus& a, const Bus& b) {
  const NetId altb = ltU(a, b);
  return {mux(b, a, altb), altb};
}

Bus Builder::shiftConst(const Bus& a, int k) {
  const int w = static_cast<int>(a.size());
  Bus out;
  out.reserve(a.size());
  for (int i = 0; i < w; ++i) {
    const int src = i - k;
    out.push_back((src >= 0 && src < w) ? a[static_cast<std::size_t>(src)]
                                        : lo());
  }
  return out;
}

Bus Builder::rotateLeft(const Bus& a, const Bus& amount) {
  if (!isPowerOfTwo(a.size())) {
    throw std::invalid_argument("rotateLeft: width must be a power of two");
  }
  Bus cur = a;
  const int w = static_cast<int>(a.size());
  for (std::size_t s = 0; s < amount.size(); ++s) {
    const int k = (1 << s) % w;
    Bus rotated;
    rotated.reserve(cur.size());
    for (int i = 0; i < w; ++i) {
      rotated.push_back(cur[static_cast<std::size_t>((i - k + w) % w)]);
    }
    cur = mux(cur, rotated, amount[s]);
  }
  return cur;
}

Bus Builder::decode(const Bus& a) {
  const std::size_t n = std::size_t{1} << a.size();
  Bus out;
  out.reserve(n);
  for (std::size_t v = 0; v < n; ++v) out.push_back(eqConst(a, v));
  return out;
}

Bus Builder::counter(const std::string& name, int width, NetId en,
                     NetId clear) {
  const Bus q = state(name, width);
  connectEnClr(q, inc(q), en, clear);
  return q;
}

Bus Builder::slice(const Bus& a, int lo, int len) {
  if (lo < 0 || lo + len > static_cast<int>(a.size())) {
    throw std::invalid_argument("slice: out of range");
  }
  return Bus(a.begin() + lo, a.begin() + lo + len);
}

Bus Builder::concat(std::span<const Bus> parts) {
  Bus out;
  for (const Bus& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace corebist
