// Graphviz export of netlists (debug / documentation aid).
#ifndef COREBIST_NETLIST_EXPORT_HPP_
#define COREBIST_NETLIST_EXPORT_HPP_

#include <string>

#include "netlist/netlist.hpp"

namespace corebist {

/// DOT digraph of the netlist: gates as boxes, flops as double boxes, port
/// nets as ovals. Intended for small netlists (examples, paper figures);
/// emits at most `max_gates` gates and notes truncation.
[[nodiscard]] std::string exportDot(const Netlist& nl,
                                    std::size_t max_gates = 2000);

}  // namespace corebist

#endif  // COREBIST_NETLIST_EXPORT_HPP_
