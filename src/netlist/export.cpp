#include "netlist/export.hpp"

#include <sstream>

namespace corebist {

std::string exportDot(const Netlist& nl, std::size_t max_gates) {
  std::ostringstream os;
  os << "digraph \"" << nl.name() << "\" {\n  rankdir=LR;\n";
  for (const NetId pi : nl.primaryInputs()) {
    os << "  n" << pi << " [shape=oval,label=\"" << nl.netName(pi)
       << "\",color=blue];\n";
  }
  for (const NetId po : nl.primaryOutputs()) {
    os << "  o" << po << " [shape=oval,label=\"" << nl.netName(po)
       << "\",color=red];\n  n" << po << " -> o" << po << ";\n";
  }
  const std::size_t limit = std::min(max_gates, nl.numGates());
  for (GateId g = 0; g < limit; ++g) {
    const Gate& gate = nl.gates()[g];
    os << "  g" << g << " [shape=box,label=\"" << gateName(gate.type)
       << "\"];\n";
    for (int p = 0; p < gate.nin; ++p) {
      os << "  n" << gate.in[static_cast<std::size_t>(p)] << " -> g" << g
         << ";\n";
    }
    os << "  g" << g << " -> n" << gate.out << " [arrowhead=none];\n";
    os << "  n" << gate.out << " [shape=point];\n";
  }
  std::size_t ff = 0;
  for (const Dff& d : nl.dffs()) {
    os << "  f" << ff << " [shape=box,peripheries=2,label=\"DFF\"];\n";
    os << "  n" << d.d << " -> f" << ff << ";\n";
    os << "  f" << ff << " -> n" << d.q << " [arrowhead=none];\n";
    os << "  n" << d.q << " [shape=point];\n";
    ++ff;
  }
  if (limit < nl.numGates()) {
    os << "  trunc [shape=plaintext,label=\"(+" << (nl.numGates() - limit)
       << " gates truncated)\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace corebist
