// Word-level structural builder.
//
// The Builder is the in-repo substitute for RTL synthesis: every module of
// the case study (LDPC bit/check/control units), the BIST engine hardware
// and the P1500 wrapper hardware are emitted through it as trees of 2-input
// primitives and flip-flops. Buses are LSB-first vectors of nets.
#ifndef COREBIST_NETLIST_BUILDER_HPP_
#define COREBIST_NETLIST_BUILDER_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace corebist {

/// LSB-first group of nets treated as a word.
using Bus = std::vector<NetId>;

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  [[nodiscard]] Netlist& netlist() noexcept { return nl_; }

  // -- Ports and state --------------------------------------------------
  /// Create a `width`-bit primary-input bus registered as a port.
  Bus input(const std::string& name, int width);
  /// Register a bus as a named primary-output port.
  void output(const std::string& name, const Bus& b);
  /// Create a `width`-bit register (Q side); bind with connect() later.
  Bus state(const std::string& name, int width);
  /// Bind register D inputs: q was produced by state().
  void connect(const Bus& q, const Bus& d);
  /// Register with enable: q <- en ? d : q.
  void connectEn(const Bus& q, const Bus& d, NetId en);
  /// Register with enable and synchronous clear (clear wins).
  void connectEnClr(const Bus& q, const Bus& d, NetId en, NetId clear);

  // -- Constants ---------------------------------------------------------
  [[nodiscard]] NetId lo();
  [[nodiscard]] NetId hi();
  [[nodiscard]] Bus constant(int width, std::uint64_t value);

  // -- Bit operations ------------------------------------------------------
  [[nodiscard]] NetId g1(GateType t, NetId a) { return nl_.addGate1(t, a); }
  [[nodiscard]] NetId g2(GateType t, NetId a, NetId b) {
    return nl_.addGate2(t, a, b);
  }
  [[nodiscard]] NetId mux(NetId a, NetId b, NetId sel) {
    return nl_.addMux(a, b, sel);
  }
  [[nodiscard]] NetId and2(NetId a, NetId b) { return g2(GateType::kAnd, a, b); }
  [[nodiscard]] NetId or2(NetId a, NetId b) { return g2(GateType::kOr, a, b); }
  [[nodiscard]] NetId xor2(NetId a, NetId b) { return g2(GateType::kXor, a, b); }
  [[nodiscard]] NetId not1(NetId a) { return g1(GateType::kNot, a); }

  // -- Bus operations ------------------------------------------------------
  [[nodiscard]] Bus bwNot(const Bus& a);
  [[nodiscard]] Bus bw(GateType t, const Bus& a, const Bus& b);
  [[nodiscard]] Bus mux(const Bus& a, const Bus& b, NetId sel);
  /// Tree mux of 2^k inputs (inputs.size() must be a power of two) selected
  /// by sel (k bits).
  [[nodiscard]] Bus muxN(std::span<const Bus> inputs, const Bus& sel);
  [[nodiscard]] NetId reduceAnd(const Bus& a);
  [[nodiscard]] NetId reduceOr(const Bus& a);
  [[nodiscard]] NetId reduceXor(const Bus& a);

  // -- Arithmetic (unsigned / two's complement) -----------------------------
  /// Ripple-carry add; returns sum (same width) and carry out.
  [[nodiscard]] std::pair<Bus, NetId> addc(const Bus& a, const Bus& b,
                                           NetId cin);
  [[nodiscard]] Bus add(const Bus& a, const Bus& b);
  [[nodiscard]] Bus sub(const Bus& a, const Bus& b);
  [[nodiscard]] Bus inc(const Bus& a);
  [[nodiscard]] Bus neg(const Bus& a);
  /// Two's-complement saturating add of equal-width signed words.
  [[nodiscard]] Bus satAddSigned(const Bus& a, const Bus& b);
  /// |a| for two's-complement a (width preserved; INT_MIN saturates).
  [[nodiscard]] Bus absSigned(const Bus& a);

  // -- Comparisons -----------------------------------------------------------
  [[nodiscard]] NetId eq(const Bus& a, const Bus& b);
  [[nodiscard]] NetId eqConst(const Bus& a, std::uint64_t value);
  /// a < b, unsigned.
  [[nodiscard]] NetId ltU(const Bus& a, const Bus& b);
  /// min(a, b) unsigned, plus (a<b) flag.
  [[nodiscard]] std::pair<Bus, NetId> minU(const Bus& a, const Bus& b);

  // -- Shifts / selection ------------------------------------------------
  /// Logical shift by a constant (left if k>0), zero fill.
  [[nodiscard]] Bus shiftConst(const Bus& a, int k);
  /// Rotate-left by variable amount (amount width log2(a.size())).
  [[nodiscard]] Bus rotateLeft(const Bus& a, const Bus& amount);
  /// One-hot decode of a k-bit value into 2^k lines.
  [[nodiscard]] Bus decode(const Bus& a);

  // -- Sequential idioms -----------------------------------------------------
  /// Free-running counter with synchronous clear and enable. Returns Q.
  Bus counter(const std::string& name, int width, NetId en, NetId clear);

  // -- Slicing helpers (no hardware) ---------------------------------------
  [[nodiscard]] static Bus slice(const Bus& a, int lo, int len);
  [[nodiscard]] static Bus concat(std::span<const Bus> parts);

 private:
  Netlist& nl_;
  NetId lo_ = kNullNet;
  NetId hi_ = kNullNet;
};

}  // namespace corebist

#endif  // COREBIST_NETLIST_BUILDER_HPP_
