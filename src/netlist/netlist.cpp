#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace corebist {

NetId Netlist::newNet() {
  const NetId n = static_cast<NetId>(num_nets_++);
  driver_.push_back(kNoDriver);
  invalidateCaches();
  return n;
}

std::vector<NetId> Netlist::newNets(int n) {
  std::vector<NetId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(newNet());
  return out;
}

NetId Netlist::addGate(GateType type, std::span<const NetId> inputs) {
  const int arity = gateArity(type);
  if (static_cast<int>(inputs.size()) != arity) {
    throw std::invalid_argument("addGate: wrong fanin count for " +
                                std::string(gateName(type)));
  }
  for (const NetId in : inputs) {
    if (in >= num_nets_) throw std::invalid_argument("addGate: bad input net");
  }
  Gate g;
  g.type = type;
  g.nin = static_cast<std::uint8_t>(arity);
  for (int i = 0; i < arity; ++i) g.in[static_cast<std::size_t>(i)] = inputs[static_cast<std::size_t>(i)];
  g.out = newNet();
  driver_[g.out] = static_cast<GateId>(gates_.size());
  gates_.push_back(g);
  invalidateCaches();
  return g.out;
}

NetId Netlist::addGate1(GateType type, NetId a) {
  const NetId ins[1] = {a};
  return addGate(type, ins);
}

NetId Netlist::addGate2(GateType type, NetId a, NetId b) {
  const NetId ins[2] = {a, b};
  return addGate(type, ins);
}

NetId Netlist::addMux(NetId a, NetId b, NetId sel) {
  const NetId ins[3] = {a, b, sel};
  return addGate(GateType::kMux2, ins);
}

void Netlist::driveNet(NetId target, NetId source) {
  if (target >= num_nets_ || source >= num_nets_) {
    throw std::invalid_argument("driveNet: bad net id");
  }
  if (driver_[target] != kNoDriver || isStateNet(target)) {
    throw std::logic_error("driveNet: target already driven");
  }
  Gate g;
  g.type = GateType::kBuf;
  g.nin = 1;
  g.in[0] = source;
  g.out = target;
  driver_[target] = static_cast<GateId>(gates_.size());
  gates_.push_back(g);
  invalidateCaches();
}

NetId Netlist::addDff() {
  Dff ff;
  ff.q = newNet();
  ff.d = kNullNet;
  dff_of_q_.emplace(ff.q, static_cast<int>(dffs_.size()));
  dffs_.push_back(ff);
  invalidateCaches();
  return ff.q;
}

void Netlist::connectDff(NetId q, NetId d) {
  const auto it = dff_of_q_.find(q);
  if (it == dff_of_q_.end()) {
    throw std::invalid_argument("connectDff: net is not a DFF output");
  }
  if (d >= num_nets_) throw std::invalid_argument("connectDff: bad D net");
  dffs_[static_cast<std::size_t>(it->second)].d = d;
  invalidateCaches();
}

void Netlist::rebindDff(NetId q, NetId new_d) {
  const auto it = dff_of_q_.find(q);
  if (it == dff_of_q_.end()) {
    throw std::invalid_argument("rebindDff: net is not a DFF output");
  }
  if (new_d >= num_nets_) throw std::invalid_argument("rebindDff: bad D net");
  dffs_[static_cast<std::size_t>(it->second)].d = new_d;
  invalidateCaches();
}

NetId Netlist::addPrimaryInput() {
  const NetId n = newNet();
  pis_.push_back(n);
  return n;
}

void Netlist::markPrimaryOutput(NetId n) {
  if (n >= num_nets_) throw std::invalid_argument("markPrimaryOutput: bad net");
  pos_.push_back(n);
}

void Netlist::registerPort(std::string name, std::span<const NetId> bits,
                           bool is_input) {
  PortBus bus;
  bus.name = std::move(name);
  bus.bits.assign(bits.begin(), bits.end());
  bus.is_input = is_input;
  ports_.push_back(std::move(bus));
}

void Netlist::mutateGateType(GateId g, GateType t) {
  if (g >= gates_.size()) throw std::invalid_argument("mutateGateType: bad id");
  if (gateArity(t) != gates_[g].nin) {
    throw std::invalid_argument("mutateGateType: arity mismatch");
  }
  gates_[g].type = t;
}

void Netlist::rebindGateInput(GateId g, std::uint8_t pin, NetId n) {
  if (g >= gates_.size()) {
    throw std::invalid_argument("rebindGateInput: bad gate id");
  }
  if (pin >= gates_[g].nin) {
    throw std::invalid_argument("rebindGateInput: bad pin");
  }
  if (n >= num_nets_) throw std::invalid_argument("rebindGateInput: bad net");
  gates_[g].in[pin] = n;
  invalidateCaches();
}

void Netlist::addRogueDriver(NetId target, NetId source) {
  if (target >= num_nets_ || source >= num_nets_) {
    throw std::invalid_argument("addRogueDriver: bad net id");
  }
  Gate g;
  g.type = GateType::kBuf;
  g.nin = 1;
  g.in[0] = source;
  g.out = target;
  // Deliberately no driver_ update: the original driver keeps driverOf()
  // so downstream queries stay stable while the lint reports the clash.
  if (driver_[target] == kNoDriver && !isStateNet(target)) {
    driver_[target] = static_cast<GateId>(gates_.size());
  }
  gates_.push_back(g);
  invalidateCaches();
}

void Netlist::setNetName(NetId n, std::string name) {
  net_names_[n] = std::move(name);
}

std::string Netlist::netName(NetId n) const {
  const auto it = net_names_.find(n);
  if (it != net_names_.end()) return it->second;
  return "n" + std::to_string(n);
}

const PortBus* Netlist::findPort(std::string_view name) const {
  for (const auto& p : ports_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

int Netlist::portWidth(bool inputs) const {
  int w = 0;
  for (const auto& p : ports_) {
    if (p.is_input == inputs) w += static_cast<int>(p.bits.size());
  }
  return w;
}

GateId Netlist::driverOf(NetId n) const {
  if (n >= driver_.size()) return kNoDriver;
  return driver_[n];
}

bool Netlist::isStateNet(NetId n) const { return dff_of_q_.contains(n); }

int Netlist::dffIndexOf(NetId n) const {
  const auto it = dff_of_q_.find(n);
  return it == dff_of_q_.end() ? -1 : it->second;
}

const ReaderCsr& Netlist::readerCsr() const {
  if (reader_csr_.offsets.empty() && num_nets_ > 0) {
    auto& offsets = reader_csr_.offsets;
    offsets.assign(num_nets_ + 1, 0);
    for (const Gate& gate : gates_) {
      for (int p = 0; p < gate.nin; ++p) {
        ++offsets[gate.in[static_cast<std::size_t>(p)] + 1];
      }
    }
    for (std::size_t n = 1; n <= num_nets_; ++n) offsets[n] += offsets[n - 1];
    reader_csr_.flat.resize(offsets.back());
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (GateId g = 0; g < gates_.size(); ++g) {
      const Gate& gate = gates_[g];
      for (int p = 0; p < gate.nin; ++p) {
        const NetId in = gate.in[static_cast<std::size_t>(p)];
        reader_csr_.flat[cursor[in]++] =
            NetReader{g, static_cast<std::uint8_t>(p)};
      }
    }
  }
  return reader_csr_;
}

void Netlist::validate() const {
  for (std::size_t i = 0; i < dffs_.size(); ++i) {
    if (dffs_[i].d == kNullNet) {
      throw std::logic_error(name_ + ": DFF " + std::to_string(i) +
                             " has unbound D input");
    }
  }
  for (const Gate& g : gates_) {
    for (int p = 0; p < g.nin; ++p) {
      if (g.in[static_cast<std::size_t>(p)] >= num_nets_) {
        throw std::logic_error(name_ + ": gate reads nonexistent net");
      }
    }
  }
  // Undriven nets must be PIs or state nets.
  std::vector<char> ok(num_nets_, 0);
  for (const NetId n : pis_) ok[n] = 1;
  for (const Dff& ff : dffs_) ok[ff.q] = 1;
  for (const Gate& g : gates_) ok[g.out] = 1;
  for (const Gate& g : gates_) {
    for (int p = 0; p < g.nin; ++p) {
      if (!ok[g.in[static_cast<std::size_t>(p)]]) {
        throw std::logic_error(name_ + ": gate reads undriven net " +
                               netName(g.in[static_cast<std::size_t>(p)]));
      }
    }
  }
  for (const NetId n : pos_) {
    if (!ok[n]) throw std::logic_error(name_ + ": undriven primary output");
  }
}

void Netlist::adoptPortNets(const Netlist& other, NetId offset) {
  for (const NetId pi : other.pis_) pis_.push_back(pi + offset);
  for (const NetId po : other.pos_) pos_.push_back(po + offset);
}

NetId Netlist::absorb(const Netlist& other, const std::string& prefix) {
  const NetId offset = static_cast<NetId>(num_nets_);
  num_nets_ += other.num_nets_;
  driver_.resize(num_nets_, kNoDriver);
  const GateId goffset = static_cast<GateId>(gates_.size());
  for (const Gate& g : other.gates_) {
    Gate ng = g;
    ng.out = g.out + offset;
    for (int p = 0; p < g.nin; ++p) ng.in[static_cast<std::size_t>(p)] = g.in[static_cast<std::size_t>(p)] + offset;
    driver_[ng.out] = goffset + static_cast<GateId>(&g - other.gates_.data());
    gates_.push_back(ng);
  }
  for (const Dff& ff : other.dffs_) {
    Dff nf;
    nf.d = ff.d + offset;
    nf.q = ff.q + offset;
    dff_of_q_.emplace(nf.q, static_cast<int>(dffs_.size()));
    dffs_.push_back(nf);
  }
  for (const auto& p : other.ports_) {
    PortBus bus;
    bus.name = prefix + p.name;
    bus.is_input = p.is_input;
    bus.bits.reserve(p.bits.size());
    for (const NetId b : p.bits) bus.bits.push_back(b + offset);
    ports_.push_back(std::move(bus));
  }
  for (const auto& [n, nm] : other.net_names_) {
    net_names_.emplace(n + offset, prefix + nm);
  }
  invalidateCaches();
  return offset;
}

}  // namespace corebist
