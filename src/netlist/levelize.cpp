#include "netlist/levelize.hpp"

#include <stdexcept>

namespace corebist {

Levelization levelize(const Netlist& nl) {
  const auto& gates = nl.gates();
  Levelization out;
  out.order.reserve(gates.size());
  out.level.assign(gates.size(), -1);

  // Kahn's algorithm over gate dependencies. A gate depends on the drivers of
  // its input nets; PI/state/const-net inputs contribute no dependency.
  std::vector<int> pending(gates.size(), 0);
  for (GateId g = 0; g < gates.size(); ++g) {
    int deps = 0;
    for (int p = 0; p < gates[g].nin; ++p) {
      if (nl.driverOf(gates[g].in[static_cast<std::size_t>(p)]) !=
          Netlist::kNoDriver) {
        ++deps;
      }
    }
    pending[g] = deps;
  }

  std::vector<GateId> ready;
  for (GateId g = 0; g < gates.size(); ++g) {
    if (pending[g] == 0) {
      ready.push_back(g);
      out.level[g] = 0;
    }
  }

  const ReaderCsr& readers = nl.readerCsr();
  std::size_t head = 0;
  while (head < ready.size()) {
    const GateId g = ready[head++];
    out.order.push_back(g);
    for (const NetReader& r : readers.of(gates[g].out)) {
      const int lvl = out.level[g] + 1;
      if (out.level[r.gate] < lvl) out.level[r.gate] = lvl;
      if (--pending[r.gate] == 0) ready.push_back(r.gate);
    }
  }

  if (out.order.size() != gates.size()) {
    throw std::logic_error(nl.name() + ": combinational loop detected");
  }
  for (const int lvl : out.level) {
    if (lvl > out.depth) out.depth = lvl;
  }
  return out;
}

}  // namespace corebist
