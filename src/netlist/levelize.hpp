// Topological levelization of the combinational portion of a netlist.
//
// Sources are primary inputs, constants and flip-flop Q nets; the result is
// a gate ordering such that every gate appears after all of its fanin
// drivers. Combinational loops are a structural error and throw.
#ifndef COREBIST_NETLIST_LEVELIZE_HPP_
#define COREBIST_NETLIST_LEVELIZE_HPP_

#include <vector>

#include "netlist/netlist.hpp"

namespace corebist {

struct Levelization {
  /// Gate ids in topological order.
  std::vector<GateId> order;
  /// Logic level of each gate (same indexing as Netlist::gates()).
  std::vector<int> level;
  /// Maximum level (depth of the combinational logic).
  int depth = 0;
};

/// Levelize `nl`. Throws std::logic_error on a combinational loop.
[[nodiscard]] Levelization levelize(const Netlist& nl);

}  // namespace corebist

#endif  // COREBIST_NETLIST_LEVELIZE_HPP_
