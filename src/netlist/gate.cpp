#include "netlist/gate.hpp"

namespace corebist {

std::string_view gateName(GateType t) noexcept {
  switch (t) {
    case GateType::kConst0:
      return "TIE0";
    case GateType::kConst1:
      return "TIE1";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "INV";
    case GateType::kAnd:
      return "AND2";
    case GateType::kNand:
      return "NAND2";
    case GateType::kOr:
      return "OR2";
    case GateType::kNor:
      return "NOR2";
    case GateType::kXor:
      return "XOR2";
    case GateType::kXnor:
      return "XNOR2";
    case GateType::kMux2:
      return "MUX2";
  }
  return "?";
}

}  // namespace corebist
