// Gate-level netlist container.
//
// A Netlist is a flat sea of 1-bit nets connected by primitive gates and
// D flip-flops. Primary inputs, primary outputs and flip-flop state nets are
// the only undriven (by gates) nets allowed. Ports are registered as named,
// ordered buses so that higher layers (BIST engine, P1500 wrapper, scan
// insertion) can reason about port widths exactly as the paper's Table 1
// does.
#ifndef COREBIST_NETLIST_NETLIST_HPP_
#define COREBIST_NETLIST_NETLIST_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace corebist {

/// A D flip-flop: q is sampled from d on every clock edge; reset forces q=0.
struct Dff {
  NetId d = kNullNet;
  NetId q = kNullNet;
};

/// A named, ordered group of nets (LSB first). Used for module ports.
struct PortBus {
  std::string name;
  std::vector<NetId> bits;
  bool is_input = false;
};

/// (gate, pin) pair: one reader of a net. pin indexes Gate::in.
struct NetReader {
  GateId gate = 0;
  std::uint8_t pin = 0;
};

/// Flattened fanout index in CSR form: the readers of net n are
/// flat[offsets[n] .. offsets[n+1]), in ascending (gate, pin) order. One
/// contiguous allocation instead of a vector-of-vectors, so the hot
/// traversals (fault propagation, levelization, fanout enumeration) walk a
/// flat array without chasing a per-net heap vector.
struct ReaderCsr {
  std::vector<std::uint32_t> offsets;  // numNets() + 1 entries once built
  std::vector<NetReader> flat;

  [[nodiscard]] std::span<const NetReader> of(NetId n) const noexcept {
    return {flat.data() + offsets[n], flat.data() + offsets[n + 1]};
  }
  [[nodiscard]] std::size_t countOf(NetId n) const noexcept {
    return offsets[n + 1] - offsets[n];
  }
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Create a fresh, undriven net.
  NetId newNet();

  /// Create `n` fresh nets.
  std::vector<NetId> newNets(int n);

  /// Add a gate; creates and returns its output net.
  NetId addGate(GateType type, std::span<const NetId> inputs);
  NetId addGate1(GateType type, NetId a);
  NetId addGate2(GateType type, NetId a, NetId b);
  /// sel ? b : a
  NetId addMux(NetId a, NetId b, NetId sel);

  /// Create a flip-flop with an initially unbound D input; returns the Q net.
  NetId addDff();
  /// Bind the D input of the flip-flop whose output is `q`.
  void connectDff(NetId q, NetId d);

  /// Re-bind an already-connected D input (scan insertion threads a mux in
  /// front of every flip-flop).
  void rebindDff(NetId q, NetId new_d);

  /// Drive an existing, currently undriven net from `source` through a BUF.
  /// Used to stitch absorbed sub-netlists to parent logic.
  void driveNet(NetId target, NetId source);

  /// Declare a primary-input net.
  NetId addPrimaryInput();
  /// Declare an existing net as primary output.
  void markPrimaryOutput(NetId n);

  /// Register a named port bus (for Table 1 style reporting and wrapping).
  void registerPort(std::string name, std::span<const NetId> bits,
                    bool is_input);

  /// Re-type an existing gate (arities must match). Used by the fault
  /// injection utilities to model manufacturing defects.
  void mutateGateType(GateId g, GateType t);

  /// Re-route one fanin pin of an existing gate to a different net. Like
  /// mutateGateType this is defect surgery: it can create the broken
  /// structures (combinational loops, reads of undriven nets) that the
  /// static linter exists to catch, so it performs no structural checks
  /// beyond id validity.
  void rebindGateInput(GateId g, std::uint8_t pin, NetId n);

  /// Add a second BUF driver onto an already-driven net (a bridging/short
  /// defect). driverOf() keeps reporting the original driver; the linter
  /// reports the contention as `multi-driven-net`. Defect surgery — the
  /// result fails validate().
  void addRogueDriver(NetId target, NetId source);

  /// Optional debug name for a net.
  void setNetName(NetId n, std::string name);
  [[nodiscard]] std::string netName(NetId n) const;

  // -- Accessors ------------------------------------------------------------
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t numNets() const noexcept { return num_nets_; }
  [[nodiscard]] std::size_t numGates() const noexcept { return gates_.size(); }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept {
    return gates_;
  }
  [[nodiscard]] const Gate& gate(GateId g) const { return gates_.at(g); }
  [[nodiscard]] const std::vector<Dff>& dffs() const noexcept { return dffs_; }
  [[nodiscard]] const std::vector<NetId>& primaryInputs() const noexcept {
    return pis_;
  }
  [[nodiscard]] const std::vector<NetId>& primaryOutputs() const noexcept {
    return pos_;
  }
  [[nodiscard]] const std::vector<PortBus>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] const PortBus* findPort(std::string_view name) const;

  /// Total input (output) port width over registered buses.
  [[nodiscard]] int portWidth(bool inputs) const;

  /// GateId driving net `n`, or kNoDriver if the net is a PI/state/unbound.
  static constexpr GateId kNoDriver = 0xFFFF'FFFFu;
  [[nodiscard]] GateId driverOf(NetId n) const;

  /// True if `n` is the Q output of some flip-flop.
  [[nodiscard]] bool isStateNet(NetId n) const;
  /// Index into dffs() for a state net, or -1.
  [[nodiscard]] int dffIndexOf(NetId n) const;

  /// All (gate, pin) readers of every net, flattened to CSR. Built on
  /// demand, invalidated by structural edits. Not thread-safe to *build*:
  /// materialize it (any call) before sharing the netlist across worker
  /// threads — the fault-sim engines do this in their constructors.
  [[nodiscard]] const ReaderCsr& readerCsr() const;

  /// Throws std::logic_error on dangling DFF inputs, multiply-driven nets,
  /// or gates reading nonexistent nets.
  void validate() const;

  /// Merge another netlist into this one. Returns the net-id offset that was
  /// added to every net of `other` (gate ids are offset by prior numGates()).
  /// Ports of `other` are re-registered with `prefix + name`. The absorbed
  /// PIs/POs are NOT adopted: the parent usually drives/consumes them.
  NetId absorb(const Netlist& other, const std::string& prefix);

  /// Adopt the absorbed netlist's PIs and POs as this netlist's own (used
  /// when wrapping keeps the original port boundary, e.g. scan insertion).
  void adoptPortNets(const Netlist& other, NetId offset);

 private:
  void invalidateCaches() noexcept {
    reader_csr_.offsets.clear();
    reader_csr_.flat.clear();
  }

  std::string name_ = "top";
  std::size_t num_nets_ = 0;
  std::vector<Gate> gates_;
  std::vector<Dff> dffs_;
  std::vector<NetId> pis_;
  std::vector<NetId> pos_;
  std::vector<PortBus> ports_;
  std::unordered_map<NetId, std::string> net_names_;
  // driver_[net] = gate id or kNoDriver. Grown lazily.
  std::vector<GateId> driver_;
  std::unordered_map<NetId, int> dff_of_q_;
  mutable ReaderCsr reader_csr_;
};

}  // namespace corebist

#endif  // COREBIST_NETLIST_NETLIST_HPP_
