// Static timing analysis (paper Table 4).
//
// Single-corner, topological longest-path analysis over the levelized
// netlist. Endpoints are primary outputs and flip-flop D pins (D pins add
// setup time); start points are primary inputs (t=0) and flip-flop Q pins
// (t = clk->Q). The reported maximum frequency is 1 / worst-slack period,
// which is what the paper's "frequency [MHz]" row measures before and after
// inserting each DfT variant.
#ifndef COREBIST_SYNTH_STA_HPP_
#define COREBIST_SYNTH_STA_HPP_

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "synth/techlib.hpp"

namespace corebist {

struct TimingReport {
  double critical_path_ns = 0.0;  // register-to-register (or PI/PO) period
  double fmax_mhz = 0.0;
  NetId critical_endpoint = kNullNet;
  bool endpoint_is_flop = false;
  int logic_depth = 0;  // gates on the critical path
};

/// Analyze `nl`. If `scan_flops` is true, flip-flop D endpoints use the
/// scan-cell setup (the muxed-D scan path), which is how full-scan insertion
/// degrades fmax even when the mux is folded into the cell.
[[nodiscard]] TimingReport analyzeTiming(const Netlist& nl,
                                         const TechLib& lib,
                                         bool scan_flops = false);

[[nodiscard]] std::string formatTimingReport(const TimingReport& r,
                                             const std::string& title);

}  // namespace corebist

#endif  // COREBIST_SYNTH_STA_HPP_
