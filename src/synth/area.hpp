// Cell-area accounting (paper Table 2).
#ifndef COREBIST_SYNTH_AREA_HPP_
#define COREBIST_SYNTH_AREA_HPP_

#include <array>
#include <string>

#include "netlist/netlist.hpp"
#include "synth/techlib.hpp"

namespace corebist {

struct AreaReport {
  double comb_um2 = 0.0;
  double seq_um2 = 0.0;
  double total_um2 = 0.0;  // includes wiring overhead multiplier
  std::size_t gate_count = 0;
  std::size_t flop_count = 0;
  std::array<std::size_t, kNumGateTypes> by_type{};
};

/// Compute cell area of a netlist. If `scan_flops` is true every DFF is
/// costed as its muxed-D scan variant.
[[nodiscard]] AreaReport reportArea(const Netlist& nl, const TechLib& lib,
                                    bool scan_flops = false);

/// One line per gate type plus totals, human readable.
[[nodiscard]] std::string formatAreaReport(const AreaReport& r,
                                           const std::string& title);

}  // namespace corebist

#endif  // COREBIST_SYNTH_AREA_HPP_
