#include "synth/techlib.hpp"

namespace corebist {

TechLib TechLib::generic130nm() {
  TechLib lib;
  auto set = [&lib](GateType t, double area, double delay, double load) {
    lib.cell(t) = CellSpec{area, delay, load};
  };
  // Areas in um^2 and delays in ns for a high-speed 0.13 um cell set,
  // calibrated so the unmodified case-study core synthesizes near the
  // paper's 438.6 MHz (Table 4).
  set(GateType::kConst0, 1.6, 0.000, 0.000);
  set(GateType::kConst1, 1.6, 0.000, 0.000);
  set(GateType::kBuf, 3.2, 0.019, 0.0040);
  set(GateType::kNot, 2.7, 0.009, 0.0035);
  set(GateType::kAnd, 4.6, 0.023, 0.0043);
  set(GateType::kNand, 3.7, 0.016, 0.0043);
  set(GateType::kOr, 4.6, 0.024, 0.0043);
  set(GateType::kNor, 3.7, 0.018, 0.0047);
  set(GateType::kXor, 7.4, 0.032, 0.0051);
  set(GateType::kXnor, 7.4, 0.033, 0.0051);
  set(GateType::kMux2, 8.2, 0.027, 0.0047);
  lib.dff() = FlopSpec{24.6, 0.152, 0.094};
  lib.scanDff() = FlopSpec{30.4, 0.152, 0.151};  // muxed-D: slower D path
  return lib;
}

}  // namespace corebist
