#include "synth/sta.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/levelize.hpp"

namespace corebist {

TimingReport analyzeTiming(const Netlist& nl, const TechLib& lib,
                           bool scan_flops) {
  const Levelization lev = levelize(nl);
  const ReaderCsr& readers = nl.readerCsr();
  const FlopSpec& ff = scan_flops ? lib.scanDff() : lib.dff();

  std::vector<double> arrival(nl.numNets(), 0.0);
  std::vector<int> depth(nl.numNets(), 0);
  for (const Dff& d : nl.dffs()) arrival[d.q] = ff.clk_to_q_ns;

  for (const GateId g : lev.order) {
    const Gate& gate = nl.gates()[g];
    double t = 0.0;
    int dep = 0;
    for (int p = 0; p < gate.nin; ++p) {
      const NetId in = gate.in[static_cast<std::size_t>(p)];
      t = std::max(t, arrival[in]);
      dep = std::max(dep, depth[in]);
    }
    const CellSpec& cs = lib.cell(gate.type);
    // Fanout load is capped: synthesis would insert a buffer tree on any
    // net wider than ~10 loads, bounding the incremental delay.
    constexpr std::size_t kMaxLoadFanout = 10;
    const std::size_t fanout =
        std::min(readers.countOf(gate.out), kMaxLoadFanout);
    const double load =
        fanout > 1 ? cs.load_ns_per_fanout * static_cast<double>(fanout - 1)
                   : 0.0;
    arrival[gate.out] = t + cs.delay_ns + load;
    depth[gate.out] = dep + 1;
  }

  TimingReport r;
  auto consider = [&r](NetId end, double t, bool is_flop, int dep) {
    if (t > r.critical_path_ns) {
      r.critical_path_ns = t;
      r.critical_endpoint = end;
      r.endpoint_is_flop = is_flop;
      r.logic_depth = dep;
    }
  };
  for (const NetId po : nl.primaryOutputs()) {
    consider(po, arrival[po], false, depth[po]);
  }
  for (const Dff& d : nl.dffs()) {
    consider(d.d, arrival[d.d] + ff.setup_ns, true, depth[d.d]);
  }
  if (r.critical_path_ns > 0.0) r.fmax_mhz = 1000.0 / r.critical_path_ns;
  return r;
}

std::string formatTimingReport(const TimingReport& r,
                               const std::string& title) {
  std::ostringstream os;
  os << title << ": period " << r.critical_path_ns << " ns, fmax "
     << r.fmax_mhz << " MHz, depth " << r.logic_depth << " ("
     << (r.endpoint_is_flop ? "reg" : "po") << " endpoint)";
  return os.str();
}

}  // namespace corebist
