// Standard-cell technology model.
//
// The paper synthesizes with "an industrial 0.13 um technological library"
// (Synopsys Design Analyzer) and reports absolute areas in um^2 and clock
// frequencies in MHz. We model a generic 0.13 um standard-cell library:
// per-primitive area, intrinsic pin-to-pin delay, and a linear fanout-load
// delay term; flip-flops carry clk->Q, setup, area, and a scan variant
// (muxed-D) with its own overheads. Absolute numbers are calibrated-model
// values, not silicon, as declared in DESIGN.md.
#ifndef COREBIST_SYNTH_TECHLIB_HPP_
#define COREBIST_SYNTH_TECHLIB_HPP_

#include <array>

#include "netlist/gate.hpp"

namespace corebist {

struct CellSpec {
  double area_um2 = 0.0;
  double delay_ns = 0.0;          // intrinsic pin-to-pin delay
  double load_ns_per_fanout = 0.0;  // added per extra fanout beyond 1
};

struct FlopSpec {
  double area_um2 = 0.0;
  double clk_to_q_ns = 0.0;
  double setup_ns = 0.0;
};

class TechLib {
 public:
  /// Generic 0.13 um library (default calibration).
  [[nodiscard]] static TechLib generic130nm();

  [[nodiscard]] const CellSpec& cell(GateType t) const {
    return cells_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] CellSpec& cell(GateType t) {
    return cells_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] const FlopSpec& dff() const noexcept { return dff_; }
  [[nodiscard]] FlopSpec& dff() noexcept { return dff_; }
  /// Scan flop = muxed-D flavor: extra area and extra D-path delay.
  [[nodiscard]] const FlopSpec& scanDff() const noexcept { return sdff_; }
  [[nodiscard]] FlopSpec& scanDff() noexcept { return sdff_; }

  /// Clock-tree and wiring overhead multiplier applied to total cell area.
  [[nodiscard]] double wiringOverhead() const noexcept { return wiring_; }
  void setWiringOverhead(double v) noexcept { wiring_ = v; }

 private:
  std::array<CellSpec, kNumGateTypes> cells_{};
  FlopSpec dff_{};
  FlopSpec sdff_{};
  double wiring_ = 1.12;
};

}  // namespace corebist

#endif  // COREBIST_SYNTH_TECHLIB_HPP_
