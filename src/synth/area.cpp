#include "synth/area.hpp"

#include <sstream>

namespace corebist {

AreaReport reportArea(const Netlist& nl, const TechLib& lib, bool scan_flops) {
  AreaReport r;
  for (const Gate& g : nl.gates()) {
    r.comb_um2 += lib.cell(g.type).area_um2;
    r.by_type[static_cast<std::size_t>(g.type)]++;
  }
  r.gate_count = nl.numGates();
  r.flop_count = nl.dffs().size();
  const FlopSpec& ff = scan_flops ? lib.scanDff() : lib.dff();
  r.seq_um2 = static_cast<double>(r.flop_count) * ff.area_um2;
  r.total_um2 = (r.comb_um2 + r.seq_um2) * lib.wiringOverhead();
  return r;
}

std::string formatAreaReport(const AreaReport& r, const std::string& title) {
  std::ostringstream os;
  os << title << ": " << r.gate_count << " gates, " << r.flop_count
     << " flops, comb " << r.comb_um2 << " um^2, seq " << r.seq_um2
     << " um^2, total " << r.total_um2 << " um^2";
  return os.str();
}

}  // namespace corebist
