// Immutable, content-keyed campaign artifacts shared across campaigns.
//
// Every one-shot campaign used to rebuild the same derived state from
// scratch: structural lint of each module netlist at plan-resolve time, the
// stuck-at fault universe of every module a coverage probe touches, and —
// dominating all of it — the golden MISR signature of every module, which
// runs a full good-machine sequential simulation per core per campaign.
// All of that is a pure function of state that never changes after a core
// is attached to the SoC:
//
//   * `BistEngine::module(m)` returns the engine's OWNED reference copy of
//     the module netlist (attachModule deep-copies). Defect injection
//     (`WrappedCore::injectDefect` / `healModule`) mutates the *physical*
//     copies only, so the reference netlists — and everything derived from
//     them — are immutable for the engine's lifetime.
//   * The stimulus a module sees is fixed by the engine config (ALFSR
//     width/seed/taps, counter bits), the per-module input-source map and
//     the constraint-generator value streams; the MISR spec is fixed by the
//     config and the module's output count. All are set at attach time.
//
// ArtifactStore memoizes those products once per *module content* and
// serves them by reference to every campaign. Lookup is two-level: a
// pointer-identity fast path on `&engine.module(m)` (stable — hookups own
// their netlists behind unique_ptr), then an fnv1a-64 content key over the
// module structure, names, engine config, input map and CG value streams,
// so two cores carrying byte-identical hookups share one artifact bundle.
// Because the content key covers every input the products depend on, a
// cache hit is fingerprint-invisible by construction (pinned by
// tests/service_test.cpp).
//
// Thread-safety: the store is shared by every worker of a CampaignService
// (and by concurrent services). The registry map is guarded by one store
// mutex; each artifact bundle carries its own mutex that serializes product
// computation, so two workers asking for the same uncomputed golden block
// each other (one computes, one reuses) while different modules proceed in
// parallel. Lock order is always tree-lock -> store map -> bundle — the
// store never calls back into campaign execution, so no cycle exists.
#ifndef COREBIST_SERVICE_ARTIFACTS_HPP_
#define COREBIST_SERVICE_ARTIFACTS_HPP_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "analyze/lint.hpp"
#include "core/wrapped_core.hpp"
#include "fault/backend.hpp"
#include "fault/fault.hpp"

namespace corebist {

/// Cache-economy counters. `hits` / `misses` count product requests
/// (lint, fault universe, golden signature, coverage) served from vs
/// computed into the cache; `modules_built` counts distinct artifact
/// bundles constructed and `modules_shared` counts registrations that
/// deduplicated onto an existing bundle via the content key.
struct ArtifactStats {
  std::uint64_t modules_built = 0;
  std::uint64_t modules_shared = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double hitRate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

class ArtifactStore {
 public:
  ArtifactStore() = default;
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Structural lint of module `m`'s reference netlist. Reference valid for
  /// the store's lifetime.
  const LintReport& lint(const WrappedCore& core, int m);

  /// Full stuck-at fault universe of module `m`'s reference netlist.
  /// Span valid for the store's lifetime.
  std::span<const Fault> stuckAtFaults(const WrappedCore& core, int m);

  /// Fault-free MISR signature of module `m` after `patterns` cycles —
  /// the good-machine sequential simulation every uncached campaign pays
  /// per core. Memoized per (module content, patterns).
  std::uint16_t goldenSignature(const WrappedCore& core, int m, int patterns);

  /// Signature-qualified stuck-at coverage (%) of module `m` under
  /// `patterns` cycles. Memoized per (module content, patterns): coverage
  /// results are backend-invariant (byte-identical across serial, threaded,
  /// process and resilient orchestrators — pinned by the backend suites),
  /// so `bopts` only steers how a *miss* is computed, never the value.
  double signatureCoverage(const WrappedCore& core, int m, int patterns,
                           const FsimBackendOptions& bopts);

  [[nodiscard]] ArtifactStats stats() const;

 private:
  struct ModuleArtifacts {
    std::uint64_t content_key = 0;
    std::mutex mu;  // serializes product computation for this bundle
    bool lint_done = false;
    LintReport lint;
    bool faults_done = false;
    std::vector<Fault> faults;
    std::map<int, std::uint16_t> goldens;    // patterns -> signature
    std::map<int, double> coverages;         // patterns -> misrCoverage()
  };

  ModuleArtifacts& bundleFor(const WrappedCore& core, int m);

  mutable std::mutex mu_;  // guards the two registry maps
  std::unordered_map<const Netlist*, std::shared_ptr<ModuleArtifacts>>
      by_identity_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ModuleArtifacts>>
      by_content_;
  std::atomic<std::uint64_t> modules_built_{0};
  std::atomic<std::uint64_t> modules_shared_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace corebist

#endif  // COREBIST_SERVICE_ARTIFACTS_HPP_
