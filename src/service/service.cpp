#include "service/service.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <optional>

#include "core/session_channel.hpp"
#include "service/report_stream.hpp"
#include "tam/ate.hpp"

namespace corebist {

const char* campaignStateName(CampaignState s) noexcept {
  switch (s) {
    case CampaignState::kQueued:
      return "queued";
    case CampaignState::kRunning:
      return "running";
    case CampaignState::kDone:
      return "done";
    case CampaignState::kFailed:
      return "failed";
    case CampaignState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// One admitted campaign: its resolved layout, the report being filled,
/// and its observer bundle. The Mux fans every session event out to the
/// tenant's observer and the optional wire stream; all calls into it are
/// serialized under `observer_mu` (testCoreResilient locks it, and the
/// service locks it for the start/placement/finish events it fires
/// itself), which is also the lock detach happens under — after finalize
/// clears `user_observer`, no callback can reach the tenant's object.
struct CampaignService::Campaign {
  struct Mux final : SessionObserver {
    Campaign* c;
    explicit Mux(Campaign* owner) : c(owner) {}
    void onCampaignStart(int cores, int threads) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onCampaignStart(cores, threads);
      }
      if (c->stream) c->stream->onCampaignStart(cores, threads);
    }
    void onChannelPlaced(int tam, int channel, const std::vector<int>& cores,
                         std::size_t predicted_tcks) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onChannelPlaced(tam, channel, cores, predicted_tcks);
      }
      if (c->stream) {
        c->stream->onChannelPlaced(tam, channel, cores, predicted_tcks);
      }
    }
    void onCoreStart(int core_index, int attempt) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onCoreStart(core_index, attempt);
      }
      if (c->stream) c->stream->onCoreStart(core_index, attempt);
    }
    void onCoreTimeout(int core_index, int attempt, bool will_retry) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onCoreTimeout(core_index, attempt, will_retry);
      }
      if (c->stream) c->stream->onCoreTimeout(core_index, attempt, will_retry);
    }
    void onChannelFailure(int core_index, int failures,
                          bool will_retry) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onChannelFailure(core_index, failures, will_retry);
      }
      if (c->stream) {
        c->stream->onChannelFailure(core_index, failures, will_retry);
      }
    }
    void onCoreQuarantined(int core_index, int failures) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onCoreQuarantined(core_index, failures);
      }
      if (c->stream) c->stream->onCoreQuarantined(core_index, failures);
    }
    void onCoreFinish(const CoreReport& report) override {
      if (c->user_observer != nullptr) c->user_observer->onCoreFinish(report);
      if (c->stream) c->stream->onCoreFinish(report);
    }
    void onCampaignFinish(const SessionReport& report) override {
      if (c->user_observer != nullptr) {
        c->user_observer->onCampaignFinish(report);
      }
      if (c->stream) c->stream->onCampaignFinish(report);
    }
  };

  std::uint64_t id = 0;
  std::string tenant;
  CampaignState state = CampaignState::kQueued;  // guarded by service mu_
  std::atomic<bool> cancel_requested{false};
  CampaignLayout layout;
  SessionReport report;  // cores[] written by workers on disjoint indices
  std::size_t predicted_total_tcks = 0;
  std::size_t units_done = 0;  // guarded by service mu_
  std::atomic<int> cores_done{0};
  std::exception_ptr error;  // first failure; guarded by service mu_
  std::chrono::steady_clock::time_point t0{};

  std::mutex observer_mu;
  SessionObserver* user_observer = nullptr;  // guarded by observer_mu
  std::optional<WireReportStream> stream;
  Mux mux{this};
};

CampaignService::CampaignService(Soc& soc, CampaignServiceConfig config)
    : soc_(soc),
      workers_(config.workers < 1 ? 1 : config.workers),
      default_quota_(config.default_quota),
      tenant_quotas_(std::move(config.tenant_quotas)),
      artifacts_(config.artifacts != nullptr
                     ? std::move(config.artifacts)
                     : std::make_shared<ArtifactStore>()),
      tree_mu_(std::make_unique<std::mutex[]>(
          soc.coreCount() > 0 ? static_cast<std::size_t>(soc.coreCount())
                              : 1)) {
  pool_.reserve(static_cast<std::size_t>(workers_));
  for (int t = 0; t < workers_; ++t) {
    pool_.emplace_back([this] { workerLoop(); });
  }
}

CampaignService::~CampaignService() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (auto& [id, c] : campaigns_) {
      if (c->state == CampaignState::kQueued ||
          c->state == CampaignState::kRunning) {
        c->cancel_requested.store(true, std::memory_order_relaxed);
      }
    }
  }
  work_cv_.notify_all();
  for (std::thread& th : pool_) th.join();
}

TenantQuota CampaignService::quotaFor(const std::string& tenant) const {
  const auto it = tenant_quotas_.find(tenant);
  return it != tenant_quotas_.end() ? it->second : default_quota_;
}

std::shared_ptr<CampaignService::Campaign> CampaignService::findLocked(
    std::uint64_t id) const {
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    throw std::out_of_range("CampaignService: no campaign with id " +
                            std::to_string(id));
  }
  return it->second;
}

CampaignHandle CampaignService::submit(const TestPlan& plan,
                                       const SubmitOptions& opts) {
  // Resolve outside the lock: layout is the expensive part (lint, cost
  // model) and must never stall the reactor or other submitters.
  auto c = std::make_shared<Campaign>();
  c->layout = layoutCampaign(plan, soc_, workers_, artifacts_.get());
  c->predicted_total_tcks = c->layout.predictedTotalTcks();
  c->tenant = opts.tenant;
  c->user_observer = opts.observer;
  c->report.soc_name = soc_.name();
  c->report.threads = c->layout.threads;
  c->report.placement = std::string(placementPolicyName(plan.placement));
  c->report.cores.resize(c->layout.entries.size());

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    throw AdmissionError(AdmissionError::Reason::kShuttingDown, opts.tenant,
                         "service is shutting down");
  }
  const TenantQuota quota = quotaFor(opts.tenant);
  TenantUsage& use = tenants_[opts.tenant];
  if (quota.max_in_flight > 0 && use.in_flight >= quota.max_in_flight) {
    throw AdmissionError(
        AdmissionError::Reason::kInFlightQuota, opts.tenant,
        "tenant '" + opts.tenant + "' already has " +
            std::to_string(use.in_flight) + " campaign(s) in flight (max " +
            std::to_string(quota.max_in_flight) + ")");
  }
  if (quota.max_predicted_tcks > 0 &&
      use.predicted_tcks + c->predicted_total_tcks >
          quota.max_predicted_tcks) {
    throw AdmissionError(
        AdmissionError::Reason::kPredictedTckQuota, opts.tenant,
        "tenant '" + opts.tenant + "' predicted-TCK budget exceeded: " +
            std::to_string(use.predicted_tcks) + " in flight + " +
            std::to_string(c->predicted_total_tcks) + " requested > " +
            std::to_string(quota.max_predicted_tcks));
  }
  c->id = next_id_++;
  if (opts.stream_fd >= 0) c->stream.emplace(opts.stream_fd, c->id);
  use.in_flight += 1;
  use.predicted_tcks += c->predicted_total_tcks;
  campaigns_.emplace(c->id, c);
  lock.unlock();

  // Start + placement events, outside mu_ (tenant code runs here) but
  // under the campaign's observer lock — the deterministic ascending
  // (TAM, channel) placement stream the one-shot scheduler always emitted.
  {
    const std::lock_guard<std::mutex> obs(c->observer_mu);
    c->mux.onCampaignStart(static_cast<int>(c->layout.entries.size()),
                           c->layout.threads);
    for (const ChannelUnit& unit : c->layout.units) {
      std::vector<int> cores;
      for (const int g : unit.group_idx) {
        for (const std::size_t i :
             c->layout.groups[static_cast<std::size_t>(g)].entry_idx) {
          cores.push_back(c->layout.entries[i].core_index);
        }
      }
      c->mux.onChannelPlaced(unit.tam, unit.channel, cores,
                             unit.predicted_tcks);
    }
  }
  c->t0 = std::chrono::steady_clock::now();

  lock.lock();
  if (c->layout.units.empty()) {
    finalize(lock, *c);
  } else {
    for (std::size_t u = 0; u < c->layout.units.size(); ++u) {
      queue_.emplace_back(c, u);
    }
    lock.unlock();
    work_cv_.notify_all();
  }
  return CampaignHandle{c->id};
}

void CampaignService::workerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and fully drained
    auto [c, u] = queue_.front();
    queue_.pop_front();
    if (c->state == CampaignState::kQueued) {
      c->state = CampaignState::kRunning;
    }
    lock.unlock();
    if (!c->cancel_requested.load(std::memory_order_relaxed)) {
      runUnit(*c, u);
    }
    lock.lock();
    c->units_done += 1;
    if (c->units_done == c->layout.units.size()) finalize(lock, *c);
  }
}

void CampaignService::runUnit(Campaign& c, std::size_t u) {
  const ChannelUnit& unit = c.layout.units[u];
  try {
    for (const int g : unit.group_idx) {
      if (c.cancel_requested.load(std::memory_order_relaxed)) return;
      const TreeGroup& grp =
          c.layout.groups[static_cast<std::size_t>(g)];
      // Whole-tree serialization across campaigns: cores under one
      // top-level ancestor share a wrapper chain and clock domain.
      const std::lock_guard<std::mutex> tree(
          tree_mu_[static_cast<std::size_t>(grp.root)]);
      // One SessionChannel bundle per tree group, opened under the tree
      // lock and scoped to it. The channel MUST NOT outlive the group: its
      // TAM replica keeps the last TAM_SELECT latched, and a reused
      // channel's TAP reset passes through Run-Test/Idle — which would fan
      // a system-clock tick into the *previous* tree after its lock was
      // released, racing whichever campaign holds that tree now. A fresh
      // replica has no selection latched, so its reset ticks nothing.
      auto ch = std::make_unique<SessionChannel>(soc_, unit.tam,
                                                 artifacts_.get());
      for (const std::size_t i : grp.entry_idx) {
        if (c.cancel_requested.load(std::memory_order_relaxed)) return;
        c.report.cores[i] =
            testCoreResilient(soc_, ch, c.layout.entries[i], &c.mux,
                              c.observer_mu, artifacts_.get());
        c.cores_done.fetch_add(1, std::memory_order_relaxed);
      }
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!c.error) c.error = std::current_exception();
    // Fail fast: remaining units of this campaign become no-ops. Other
    // campaigns are untouched.
    c.cancel_requested.store(true, std::memory_order_relaxed);
  }
}

void CampaignService::finalize(std::unique_lock<std::mutex>& lock,
                               Campaign& c) {
  c.report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c.t0)
          .count();
  aggregateSessionReport(c.report, c.layout, soc_);

  const CampaignState final_state =
      c.error != nullptr ? CampaignState::kFailed
      : c.cancel_requested.load(std::memory_order_relaxed)
          ? CampaignState::kCancelled
          : CampaignState::kDone;

  TenantUsage& use = tenants_[c.tenant];
  use.in_flight -= 1;
  use.predicted_tcks -= c.predicted_total_tcks;

  // Chip-level TCK accounting stays continuous with the one-shot session:
  // cores that ran did clock the chip, so cancelled campaigns credit what
  // they spent; failed ones match the scheduler's throw-before-credit
  // behavior.
  if (final_state != CampaignState::kFailed) {
    soc_.tap().creditTcks(c.report.total_tap_clocks);
  }

  // Finish event + observer detach, outside mu_ (tenant code). Detach
  // happens BEFORE the terminal state is published below, so a tenant that
  // saw await()/status() report a terminal state can destroy its observer
  // immediately — no callback can still be in flight.
  lock.unlock();
  {
    const std::lock_guard<std::mutex> obs(c.observer_mu);
    if (final_state == CampaignState::kDone) {
      c.mux.onCampaignFinish(c.report);
    }
    c.user_observer = nullptr;
  }
  lock.lock();
  c.state = final_state;
  done_cv_.notify_all();
}

SessionReport CampaignService::await(CampaignHandle h) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::shared_ptr<Campaign> c = findLocked(h.id);
  done_cv_.wait(lock, [&] {
    return c->state == CampaignState::kDone ||
           c->state == CampaignState::kFailed ||
           c->state == CampaignState::kCancelled;
  });
  if (c->state == CampaignState::kFailed) std::rethrow_exception(c->error);
  if (c->state == CampaignState::kCancelled) throw CampaignCancelled(h.id);
  return c->report;
}

bool CampaignService::cancel(CampaignHandle h) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Campaign> c = findLocked(h.id);
  if (c->state == CampaignState::kDone ||
      c->state == CampaignState::kFailed ||
      c->state == CampaignState::kCancelled) {
    return false;
  }
  c->cancel_requested.store(true, std::memory_order_relaxed);
  return true;
}

CampaignStatus CampaignService::status(CampaignHandle h) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Campaign> c = findLocked(h.id);
  CampaignStatus s;
  s.id = c->id;
  s.tenant = c->tenant;
  s.state = c->state;
  s.cores_total = static_cast<int>(c->layout.entries.size());
  s.cores_done = c->cores_done.load(std::memory_order_relaxed);
  s.units_total = c->layout.units.size();
  s.units_done = c->units_done;
  s.predicted_total_tcks = c->predicted_total_tcks;
  return s;
}

PlanForecast CampaignService::predict(const TestPlan& plan) {
  const CampaignLayout layout =
      layoutCampaign(plan, soc_, workers_, artifacts_.get());
  return forecastFromLayout(layout, soc_, plan.placement);
}

void CampaignService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    for (const auto& [id, c] : campaigns_) {
      if (c->state == CampaignState::kQueued ||
          c->state == CampaignState::kRunning) {
        return false;
      }
    }
    return true;
  });
}

}  // namespace corebist
