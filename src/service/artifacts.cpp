#include "service/artifacts.hpp"

#include <string_view>

#include "bist/engine.hpp"

namespace corebist {
namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mixBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void mixPod(std::uint64_t& h, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  mixBytes(h, &v, sizeof v);
}

void mixString(std::uint64_t& h, std::string_view s) {
  mixPod(h, static_cast<std::uint64_t>(s.size()));
  mixBytes(h, s.data(), s.size());
}

/// Content key of one engine hookup: everything the cached products depend
/// on. Netlist structure and names (lint diagnostics embed port names),
/// engine config (stimulus generation and MISR width), the per-input source
/// map, and each constraint generator's description plus its value stream
/// over the counter's reachable cycle range (capped at 4096 — the default
/// 12-bit counter capacity — so hashing stays O(patterns) once per module).
/// Two hookups with equal keys produce identical stimulus, golden
/// signatures and coverage by construction.
std::uint64_t moduleContentKey(const WrappedCore& core, int m) {
  const BistEngine& engine = core.engine();
  const Netlist& nl = engine.module(m);
  std::uint64_t h = kFnvBasis;

  mixString(h, nl.name());
  mixPod(h, static_cast<std::uint64_t>(nl.numNets()));
  mixPod(h, static_cast<std::uint64_t>(nl.gates().size()));
  for (const Gate& g : nl.gates()) {
    mixPod(h, static_cast<std::uint8_t>(g.type));
    mixPod(h, g.nin);
    mixPod(h, g.out);
    for (int i = 0; i < 3; ++i) mixPod(h, g.in[static_cast<std::size_t>(i)]);
  }
  mixPod(h, static_cast<std::uint64_t>(nl.dffs().size()));
  for (const Dff& d : nl.dffs()) {
    mixPod(h, d.d);
    mixPod(h, d.q);
  }
  for (const NetId n : nl.primaryInputs()) mixPod(h, n);
  mixPod(h, static_cast<std::uint64_t>(nl.primaryInputs().size()));
  for (const NetId n : nl.primaryOutputs()) mixPod(h, n);
  mixPod(h, static_cast<std::uint64_t>(nl.primaryOutputs().size()));
  for (const PortBus& p : nl.ports()) {
    mixString(h, p.name);
    mixPod(h, static_cast<std::uint8_t>(p.is_input ? 1 : 0));
    for (const NetId n : p.bits) mixPod(h, n);
    mixPod(h, static_cast<std::uint64_t>(p.bits.size()));
  }

  const BistEngineConfig& cfg = engine.config();
  mixPod(h, cfg.lfsr_width);
  mixPod(h, cfg.lfsr_seed);
  for (const int t : cfg.lfsr_taps) mixPod(h, t);
  mixPod(h, static_cast<std::uint64_t>(cfg.lfsr_taps.size()));
  mixPod(h, cfg.misr_width);
  mixPod(h, cfg.counter_bits);

  for (const InputSource& s : engine.inputMap(m)) {
    mixPod(h, static_cast<std::uint8_t>(s.kind));
    mixPod(h, s.index);
    mixPod(h, s.bit);
  }

  const int probe_cycles =
      cfg.counter_bits >= 12 ? 4096 : (1 << cfg.counter_bits);
  for (int cg = 0; cg < engine.constraintCount(m); ++cg) {
    const ConstraintGenerator& g = engine.constraintGenerator(m, cg);
    mixPod(h, g.width());
    mixString(h, g.describe());
    for (int c = 0; c < probe_cycles; ++c) {
      mixPod(h, g.valueAt(c));
    }
  }
  return h;
}

}  // namespace

ArtifactStore::ModuleArtifacts& ArtifactStore::bundleFor(
    const WrappedCore& core, int m) {
  const Netlist* key = &core.engine().module(m);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_identity_.find(key);
    if (it != by_identity_.end()) return *it->second;
  }
  // Hash outside the registry lock — CG streams make this the slow part.
  const std::uint64_t content = moduleContentKey(core, m);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_identity_.find(key);
  if (it != by_identity_.end()) return *it->second;  // lost a benign race
  std::shared_ptr<ModuleArtifacts> bundle;
  const auto cit = by_content_.find(content);
  if (cit != by_content_.end()) {
    bundle = cit->second;
    modules_shared_.fetch_add(1, std::memory_order_relaxed);
  } else {
    bundle = std::make_shared<ModuleArtifacts>();
    bundle->content_key = content;
    by_content_.emplace(content, bundle);
    modules_built_.fetch_add(1, std::memory_order_relaxed);
  }
  by_identity_.emplace(key, bundle);
  return *bundle;
}

const LintReport& ArtifactStore::lint(const WrappedCore& core, int m) {
  ModuleArtifacts& a = bundleFor(core, m);
  const std::lock_guard<std::mutex> lock(a.mu);
  if (a.lint_done) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    a.lint = lintNetlist(core.engine().module(m));
    a.lint_done = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return a.lint;
}

std::span<const Fault> ArtifactStore::stuckAtFaults(const WrappedCore& core,
                                                    int m) {
  ModuleArtifacts& a = bundleFor(core, m);
  const std::lock_guard<std::mutex> lock(a.mu);
  if (a.faults_done) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    a.faults = enumerateStuckAt(core.engine().module(m)).faults;
    a.faults_done = true;
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return a.faults;
}

std::uint16_t ArtifactStore::goldenSignature(const WrappedCore& core, int m,
                                             int patterns) {
  ModuleArtifacts& a = bundleFor(core, m);
  const std::lock_guard<std::mutex> lock(a.mu);
  const auto it = a.goldens.find(patterns);
  if (it != a.goldens.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  const std::uint16_t sig = core.goldenSignature(m, patterns);
  a.goldens.emplace(patterns, sig);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return sig;
}

double ArtifactStore::signatureCoverage(const WrappedCore& core, int m,
                                        int patterns,
                                        const FsimBackendOptions& bopts) {
  ModuleArtifacts& a = bundleFor(core, m);
  // Fault enumeration goes through the cache too (its own hit/miss), but
  // only when the coverage value itself is a miss.
  {
    const std::lock_guard<std::mutex> lock(a.mu);
    const auto it = a.coverages.find(patterns);
    if (it != a.coverages.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const std::span<const Fault> faults = stuckAtFaults(core, m);
  const std::lock_guard<std::mutex> lock(a.mu);
  const auto it = a.coverages.find(patterns);  // raced compute: reuse theirs
  if (it != a.coverages.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  const double coverage =
      core.engine().signatureCoverage(m, faults, patterns, bopts)
          .misrCoverage();
  a.coverages.emplace(patterns, coverage);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return coverage;
}

ArtifactStats ArtifactStore::stats() const {
  ArtifactStats s;
  s.modules_built = modules_built_.load(std::memory_order_relaxed);
  s.modules_shared = modules_shared_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace corebist
