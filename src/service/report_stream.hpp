// Streaming campaign results over the checksummed wire format.
//
// A resident CampaignService serves tenants that want results as they form,
// not one blocking SessionReport at the end. WireReportStream is a
// SessionObserver that serializes every campaign event — including each
// finished CoreReport as incremental JSON and the final SessionReport — as
// a framed, checksummed message on a file descriptor (a pipe to the tenant
// today, a socket tomorrow).
//
// Frames reuse the exact shape of the process-backend wire protocol
// (fault/process_wire.hpp): a 16-byte header
//
//   {u32 magic = 0xC0B15703, u32 event kind, u32 payload_bytes,
//    u32 fnv1a(payload)}
//
// followed by the payload: a u64 campaign id, then the event's JSON text.
// The campaign id rides in every frame because one fd may carry interleaved
// streams from many concurrent campaigns; the FNV-1a payload checksum makes
// transport corruption a structured decode error, never silently wrong
// results. Frames are written atomically under a per-stream mutex, so
// events from different worker threads (or different campaigns sharing a
// stream) never shear mid-frame.
#ifndef COREBIST_SERVICE_REPORT_STREAM_HPP_
#define COREBIST_SERVICE_REPORT_STREAM_HPP_

#include <cstdint>
#include <mutex>
#include <string>

#include "core/session_observer.hpp"

namespace corebist {

/// Event kinds carried in the frame header, one per SessionObserver
/// callback.
enum class StreamEventKind : std::uint32_t {
  kCampaignStart = 1,
  kChannelPlaced = 2,
  kCoreStart = 3,
  kCoreTimeout = 4,
  kChannelFailure = 5,
  kCoreQuarantined = 6,
  kCoreFinish = 7,
  kCampaignFinish = 8,
};

[[nodiscard]] const char* streamEventKindName(StreamEventKind k) noexcept;

/// Magic word of report-stream frames (next to the process-backend's
/// kReqMagic/kRespMagic so a frame on the wrong pipe is detected).
inline constexpr std::uint32_t kReportStreamMagic = 0xC0B15703u;

/// SessionObserver that frames every event onto `fd`. The stream does not
/// own the descriptor — the tenant opened it, the tenant closes it (after
/// awaiting the campaign). Write errors (EPIPE: reader gone) latch the
/// stream into a dropped state and are otherwise ignored: a tenant
/// abandoning its stream must never fail the campaign.
class WireReportStream final : public SessionObserver {
 public:
  WireReportStream(int fd, std::uint64_t campaign_id);

  void onCampaignStart(int cores, int threads) override;
  void onChannelPlaced(int tam, int channel, const std::vector<int>& cores,
                       std::size_t predicted_tcks) override;
  void onCoreStart(int core_index, int attempt) override;
  void onCoreTimeout(int core_index, int attempt, bool will_retry) override;
  void onChannelFailure(int core_index, int failures, bool will_retry) override;
  void onCoreQuarantined(int core_index, int failures) override;
  void onCoreFinish(const CoreReport& report) override;
  void onCampaignFinish(const SessionReport& report) override;

  /// True once a frame write failed (the reader closed its end); later
  /// events are dropped silently.
  [[nodiscard]] bool dropped() const noexcept { return dropped_; }

 private:
  void emit(StreamEventKind kind, const std::string& json);

  int fd_;
  std::uint64_t campaign_id_;
  std::mutex mu_;
  bool dropped_ = false;
};

/// One decoded report-stream frame.
struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kCampaignStart;
  std::uint64_t campaign_id = 0;
  std::string json;
};

/// Blocking read of the next frame from `fd`. Returns false on clean EOF
/// (writer closed between frames); throws std::runtime_error on a torn
/// frame, bad magic or checksum mismatch.
bool readStreamEvent(int fd, StreamEvent& out);

}  // namespace corebist

#endif  // COREBIST_SERVICE_REPORT_STREAM_HPP_
