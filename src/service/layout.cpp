#include "service/layout.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "analyze/lint.hpp"
#include "fault/failpoint.hpp"
#include "service/artifacts.hpp"

namespace corebist {
namespace {

/// Admission lint: every module netlist of a referenced core must be free
/// of error-severity structural findings before any channel drives it. The
/// BIST engine's attach path never levelizes, so without this gate a
/// combinational loop (or a floating/doubly-driven net) only surfaces as a
/// mid-campaign levelize throw or a garbage signature; here it is rejected
/// at plan-resolve time with the violated rule's name. With an artifact
/// store the lint runs once per module content, not once per campaign.
void lintCoreModules(Soc& soc, int core_index, ArtifactStore* artifacts) {
  const WrappedCore& core = soc.core(core_index);
  const BistEngine& engine = core.engine();
  for (int m = 0; m < engine.moduleCount(); ++m) {
    LintReport local;
    const LintReport* report;
    if (artifacts != nullptr) {
      report = &artifacts->lint(core, m);
    } else {
      local = lintNetlist(engine.module(m));
      report = &local;
    }
    if (const Diagnostic* err = report->firstError()) {
      throw std::invalid_argument(
          "TestPlan: core " + std::to_string(core_index) + " module " +
          std::to_string(m) + " ('" + engine.module(m).name() +
          "') fails structural lint rule '" + err->rule +
          "': " + err->message);
    }
  }
}

/// Concretize a plan entry against the plan-wide defaults and validate it
/// against the SoC (existence, TAM assignment, counter capacity).
CorePlan resolveEntry(const TestPlan& plan, const CorePlan& entry, Soc& soc,
                      ArtifactStore* artifacts) {
  CorePlan r = entry;
  if (r.core_index < 0 || r.core_index >= soc.coreCount()) {
    throw std::invalid_argument("TestPlan: no core with index " +
                                std::to_string(r.core_index));
  }
  lintCoreModules(soc, r.core_index, artifacts);
  const Soc::CoreTopology& topo = soc.topology(r.core_index);
  if (r.tam >= 0 && r.tam != topo.tam) {
    throw std::invalid_argument(
        "TestPlan: core " + std::to_string(r.core_index) +
        " is served by TAM " + std::to_string(topo.tam) + ", not TAM " +
        std::to_string(r.tam));
  }
  r.tam = topo.tam;
  if (r.patterns <= 0) r.patterns = plan.patterns;
  if (r.poll_budget <= 0) r.poll_budget = plan.poll_budget;
  if (r.poll_idle <= 0) r.poll_idle = plan.poll_idle;
  if (r.max_retries < 0) r.max_retries = plan.max_retries;
  if (r.coverage_target < 0.0) r.coverage_target = plan.coverage_target;
  if (!r.coverage_backend.has_value()) r.coverage_backend = plan.coverage_backend;
  if (r.coverage_workers <= 0) r.coverage_workers = plan.coverage_workers;
  if (r.max_shard_retries < 0) r.max_shard_retries = plan.max_shard_retries;
  if (r.backoff_base_ms < 0) r.backoff_base_ms = plan.backoff_base_ms;
  if (!r.degrade_on_failure.has_value()) {
    r.degrade_on_failure = plan.degrade_on_failure;
  }
  if (r.warmup_idle < 0) r.warmup_idle = r.patterns + 4;
  const int max_patterns =
      soc.core(r.core_index).controlUnit().maxPatterns();
  if (r.patterns < 1 || r.patterns > max_patterns) {
    throw std::invalid_argument(
        "TestPlan: core " + std::to_string(r.core_index) + " pattern budget " +
        std::to_string(r.patterns) + " outside [1, " +
        std::to_string(max_patterns) + "] (the WCDR count would truncate)");
  }
  return r;
}

std::vector<CorePlan> resolvePlan(const TestPlan& plan, Soc& soc,
                                  ArtifactStore* artifacts) {
  std::vector<CorePlan> entries;
  if (plan.cores.empty()) {
    entries.reserve(static_cast<std::size_t>(soc.coreCount()));
    for (int c = 0; c < soc.coreCount(); ++c) {
      entries.push_back(
          resolveEntry(plan, CorePlan{.core_index = c}, soc, artifacts));
    }
  } else {
    entries.reserve(plan.cores.size());
    std::vector<char> seen(static_cast<std::size_t>(soc.coreCount()), 0);
    for (const CorePlan& e : plan.cores) {
      entries.push_back(resolveEntry(plan, e, soc, artifacts));
      // One entry per core: channels must never drive one wrapper twice
      // concurrently, and serially a second entry would retest, not extend.
      char& flag = seen[static_cast<std::size_t>(entries.back().core_index)];
      if (flag != 0) {
        throw std::invalid_argument(
            "TestPlan: core " + std::to_string(entries.back().core_index) +
            " listed more than once");
      }
      flag = 1;
    }
  }
  return entries;
}

/// Per-TAM concurrent-channel caps: plan-wide default overridden per TAM.
/// 0 = uncapped (bounded by the worker budget and the available work).
std::vector<int> resolveChannelLimits(const TestPlan& plan, Soc& soc) {
  if (plan.channels_per_tam < 0 ||
      plan.channels_per_tam > TestPlan::kMaxChannelsPerTam) {
    throw std::invalid_argument(
        "TestPlan: channels_per_tam " + std::to_string(plan.channels_per_tam) +
        " outside [0, " + std::to_string(TestPlan::kMaxChannelsPerTam) + "]");
  }
  std::vector<int> limits(static_cast<std::size_t>(soc.tamCount()),
                          plan.channels_per_tam);
  std::vector<char> overridden(limits.size(), 0);
  for (const TamChannelLimit& l : plan.tam_channels) {
    if (l.tam < 0 || l.tam >= soc.tamCount()) {
      throw std::invalid_argument("TestPlan: no TAM with index " +
                                  std::to_string(l.tam));
    }
    if (l.channels < 1 || l.channels > TestPlan::kMaxChannelsPerTam) {
      throw std::invalid_argument(
          "TestPlan: TAM " + std::to_string(l.tam) + " channel limit " +
          std::to_string(l.channels) + " outside [1, " +
          std::to_string(TestPlan::kMaxChannelsPerTam) + "]");
    }
    char& flag = overridden[static_cast<std::size_t>(l.tam)];
    if (flag != 0) {
      throw std::invalid_argument("TestPlan: TAM " + std::to_string(l.tam) +
                                  " channel limit listed more than once");
    }
    flag = 1;
    limits[static_cast<std::size_t>(l.tam)] = l.channels;
  }
  return limits;
}

std::vector<TreeGroup> groupByTree(const std::vector<CorePlan>& entries,
                                   Soc& soc) {
  std::vector<TreeGroup> groups;
  std::vector<int> group_of_root(static_cast<std::size_t>(soc.coreCount()),
                                 -1);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Soc::CoreTopology& topo = soc.topology(entries[i].core_index);
    int& g = group_of_root[static_cast<std::size_t>(topo.root)];
    if (g < 0) {
      g = static_cast<int>(groups.size());
      groups.push_back(TreeGroup{topo.tam, topo.root, {}, 0});
    }
    groups[static_cast<std::size_t>(g)].entry_idx.push_back(i);
  }
  return groups;
}

/// P1500Ate cost-model prediction for one resolved plan entry.
P1500Ate::SessionCost predictEntryCost(Soc& soc, const CorePlan& e) {
  const Soc::CoreTopology& topo = soc.topology(e.core_index);
  return P1500Ate::predictSessionCost(
      soc.tap().irWidth(), topo.depth(), soc.core(e.core_index).moduleCount(),
      e.patterns, e.warmup_idle, e.poll_budget, e.poll_idle);
}

/// Channels a TAM's trees spread over: the per-TAM limit (0 = uncapped),
/// the worker budget and the available work all cap it. Matches the
/// `TamReport::channels` accounting the report layer always used.
int channelCount(int limit, int threads, int tam_groups) {
  return std::min(limit > 0 ? limit : threads, std::min(tam_groups, threads));
}

/// Greedy pass shared by both policies: walk `order` (group ids), placing
/// each group onto the currently least-loaded channel. Equal-load channels
/// are broken by ascending channel index — a fixed total order, so the
/// placement is a pure function of the plan and never depends on container
/// iteration order (asserted by tests/placement_test.cpp).
std::vector<std::vector<int>> assignGreedy(const std::vector<int>& order,
                                           const std::vector<TreeGroup>& groups,
                                           int channels) {
  std::vector<std::vector<int>> assignment(
      static_cast<std::size_t>(channels));
  std::vector<std::size_t> load(static_cast<std::size_t>(channels), 0);
  for (const int g : order) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < load.size(); ++c) {
      if (load[c] < load[best]) best = c;  // strict: ties keep lowest index
    }
    assignment[best].push_back(g);
    load[best] += groups[static_cast<std::size_t>(g)].predicted_tcks;
  }
  return assignment;
}

std::size_t assignmentMakespan(const std::vector<std::vector<int>>& assignment,
                               const std::vector<TreeGroup>& groups) {
  std::size_t makespan = 0;
  for (const std::vector<int>& ch : assignment) {
    std::size_t load = 0;
    for (const int g : ch) load += groups[static_cast<std::size_t>(g)].predicted_tcks;
    makespan = std::max(makespan, load);
  }
  return makespan;
}

/// Local-exchange refinement: repeatedly move (or swap) a group off the
/// max-loaded channel when doing so strictly lowers the pair's max load.
/// Deterministic: channels and groups are scanned in ascending order and
/// the first strict improvement is applied. Terminates — every step
/// strictly reduces the (makespan, #channels-at-makespan) potential — but
/// a pass cap keeps the worst case bounded anyway.
void refineByExchange(std::vector<std::vector<int>>& assignment,
                      const std::vector<TreeGroup>& groups) {
  const auto tcks = [&](int g) {
    return groups[static_cast<std::size_t>(g)].predicted_tcks;
  };
  std::vector<std::size_t> load(assignment.size(), 0);
  for (std::size_t c = 0; c < assignment.size(); ++c) {
    for (const int g : assignment[c]) load[c] += tcks(g);
  }
  for (int pass = 0; pass < 256; ++pass) {
    std::size_t hi = 0;
    for (std::size_t c = 1; c < load.size(); ++c) {
      if (load[c] > load[hi]) hi = c;
    }
    bool improved = false;
    for (std::size_t gi = 0; gi < assignment[hi].size() && !improved; ++gi) {
      const int g = assignment[hi][gi];
      for (std::size_t c = 0; c < assignment.size() && !improved; ++c) {
        if (c == hi) continue;
        // Move g: hi sheds tcks(g), c gains it.
        if (std::max(load[hi] - tcks(g), load[c] + tcks(g)) < load[hi]) {
          assignment[hi].erase(assignment[hi].begin() +
                               static_cast<std::ptrdiff_t>(gi));
          assignment[c].push_back(g);
          load[hi] -= tcks(g);
          load[c] += tcks(g);
          improved = true;
          break;
        }
        // Swap g with a smaller group on c.
        for (std::size_t hj = 0; hj < assignment[c].size(); ++hj) {
          const int h = assignment[c][hj];
          if (tcks(h) >= tcks(g)) continue;
          const std::size_t new_hi = load[hi] - tcks(g) + tcks(h);
          const std::size_t new_c = load[c] - tcks(h) + tcks(g);
          if (std::max(new_hi, new_c) < load[hi]) {
            assignment[hi][gi] = h;
            assignment[c][hj] = g;
            load[hi] = new_hi;
            load[c] = new_c;
            improved = true;
            break;
          }
        }
      }
    }
    if (!improved) break;
  }
}

/// Place one TAM's tree groups onto its channels under `policy`.
/// kPlanOrder mirrors the legacy scheduler: greedy least-loaded walk in
/// plan order, no refinement. kMakespan runs an LPT walk (longest
/// predicted load first) plus local-exchange refinement — and falls back
/// to the refined plan-order placement when that predicts strictly
/// better, so kMakespan never predicts a worse makespan than kPlanOrder.
std::vector<std::vector<int>> placeTamGroups(
    const std::vector<int>& tam_group_ids, const std::vector<TreeGroup>& groups,
    int channels, PlacementPolicy policy) {
  std::vector<std::vector<int>> plan_order =
      assignGreedy(tam_group_ids, groups, channels);
  if (policy == PlacementPolicy::kPlanOrder) return plan_order;

  std::vector<int> lpt_order = tam_group_ids;
  std::stable_sort(lpt_order.begin(), lpt_order.end(),
                   [&](int a, int b) {
                     return groups[static_cast<std::size_t>(a)].predicted_tcks >
                            groups[static_cast<std::size_t>(b)].predicted_tcks;
                   });
  std::vector<std::vector<int>> lpt = assignGreedy(lpt_order, groups, channels);
  refineByExchange(lpt, groups);
  refineByExchange(plan_order, groups);
  if (assignmentMakespan(plan_order, groups) <
      assignmentMakespan(lpt, groups)) {
    return plan_order;
  }
  return lpt;
}

}  // namespace

std::size_t CampaignLayout::predictedTotalTcks() const {
  std::size_t total = 0;
  for (const P1500Ate::SessionCost& c : entry_costs) total += c.tap_clocks;
  return total;
}

int resolvePlanWorkers(const TestPlan& plan) {
  int threads = plan.num_threads == 0
                    ? static_cast<int>(std::thread::hardware_concurrency())
                    : plan.num_threads;
  return threads < 1 ? 1 : threads;
}

CampaignLayout layoutCampaign(const TestPlan& plan, Soc& soc,
                              int worker_budget, ArtifactStore* artifacts) {
  CampaignLayout layout;
  layout.entries = resolvePlan(plan, soc, artifacts);
  const std::vector<int> limits = resolveChannelLimits(plan, soc);
  layout.groups = groupByTree(layout.entries, soc);

  layout.entry_costs.reserve(layout.entries.size());
  for (const CorePlan& e : layout.entries) {
    layout.entry_costs.push_back(predictEntryCost(soc, e));
  }
  for (TreeGroup& g : layout.groups) {
    for (const std::size_t i : g.entry_idx) {
      g.predicted_tcks += layout.entry_costs[i].tap_clocks;
    }
  }

  int threads = worker_budget;
  if (threads < 1) threads = 1;
  if (threads > static_cast<int>(layout.groups.size()) &&
      !layout.groups.empty()) {
    threads = static_cast<int>(layout.groups.size());
  }
  layout.threads = threads;

  layout.channels_per_tam.assign(static_cast<std::size_t>(soc.tamCount()), 0);
  for (int t = 0; t < soc.tamCount(); ++t) {
    std::vector<int> tam_group_ids;
    for (std::size_t g = 0; g < layout.groups.size(); ++g) {
      if (layout.groups[g].tam == t) tam_group_ids.push_back(static_cast<int>(g));
    }
    if (tam_group_ids.empty()) continue;
    const int channels =
        channelCount(limits[static_cast<std::size_t>(t)], threads,
                     static_cast<int>(tam_group_ids.size()));
    layout.channels_per_tam[static_cast<std::size_t>(t)] = channels;
    std::vector<std::vector<int>> assignment =
        placeTamGroups(tam_group_ids, layout.groups, channels, plan.placement);
    for (int ch = 0; ch < channels; ++ch) {
      ChannelUnit unit;
      unit.tam = t;
      unit.channel = ch;
      unit.group_idx = std::move(assignment[static_cast<std::size_t>(ch)]);
      // Execution order within a channel is plan order (it never affects
      // the channel's makespan, and keeps reports deterministic).
      std::sort(unit.group_idx.begin(), unit.group_idx.end());
      for (const int g : unit.group_idx) {
        unit.predicted_tcks +=
            layout.groups[static_cast<std::size_t>(g)].predicted_tcks;
      }
      layout.units.push_back(std::move(unit));
    }
  }
  return layout;
}

PlanForecast forecastFromLayout(const CampaignLayout& layout, Soc& soc,
                                PlacementPolicy placement) {
  PlanForecast forecast;
  forecast.placement = placement;
  forecast.cores.reserve(layout.entries.size());
  for (std::size_t i = 0; i < layout.entries.size(); ++i) {
    const CorePlan& e = layout.entries[i];
    CoreForecast cf;
    cf.core_index = e.core_index;
    cf.tam = e.tam;
    cf.depth = soc.topology(e.core_index).depth();
    cf.predicted_tap_clocks = layout.entry_costs[i].tap_clocks;
    cf.predicted_bist_cycles = layout.entry_costs[i].bist_cycles;
    forecast.predicted_total_tcks += cf.predicted_tap_clocks;
    forecast.cores.push_back(std::move(cf));
  }

  for (int t = 0; t < soc.tamCount(); ++t) {
    if (layout.channels_per_tam[static_cast<std::size_t>(t)] == 0) continue;
    TamForecast tf;
    tf.tam_index = t;
    tf.name = soc.tamName(t);
    tf.channels = layout.channels_per_tam[static_cast<std::size_t>(t)];
    for (const ChannelUnit& unit : layout.units) {
      if (unit.tam != t) continue;
      ChannelLoad cl;
      cl.channel = unit.channel;
      cl.predicted_tcks = unit.predicted_tcks;
      for (const int g : unit.group_idx) {
        for (const std::size_t i :
             layout.groups[static_cast<std::size_t>(g)].entry_idx) {
          cl.cores.push_back(layout.entries[i].core_index);
        }
      }
      tf.predicted_tap_clocks += cl.predicted_tcks;
      tf.predicted_makespan_tcks =
          std::max(tf.predicted_makespan_tcks, cl.predicted_tcks);
      tf.channel_loads.push_back(std::move(cl));
    }
    forecast.predicted_makespan_tcks =
        std::max(forecast.predicted_makespan_tcks, tf.predicted_makespan_tcks);
    forecast.tams.push_back(std::move(tf));
  }
  return forecast;
}

void aggregateSessionReport(SessionReport& report,
                            const CampaignLayout& layout, Soc& soc) {
  const std::vector<CorePlan>& entries = layout.entries;
  report.total_tap_clocks = 0;
  report.total_bist_cycles = 0;
  for (const CoreReport& c : report.cores) {
    report.total_tap_clocks += c.tap_clocks;
    report.total_bist_cycles += c.bist_cycles;
  }

  // Per-TAM slices, ascending TAM index, plan order within each, with the
  // placement's predicted-vs-actual channel accounting. "Actual" per
  // channel is the measured tap_clocks of the cores placed on it — a
  // deterministic quantity (every scan is fixed-length), so predicted vs
  // actual cleanly isolates cost-model error from wall-clock noise.
  report.tams.clear();
  report.predicted_makespan_tcks = 0;
  report.actual_makespan_tcks = 0;
  for (int t = 0; t < soc.tamCount(); ++t) {
    if (layout.channels_per_tam[static_cast<std::size_t>(t)] == 0) continue;
    TamReport tr;
    tr.tam_index = t;
    tr.name = soc.tamName(t);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].tam != t) continue;
      tr.core_order.push_back(entries[i].core_index);
      tr.tap_clocks += report.cores[i].tap_clocks;
      tr.bist_cycles += report.cores[i].bist_cycles;
      tr.busy_seconds += report.cores[i].seconds;
      tr.predicted_tap_clocks += layout.entry_costs[i].tap_clocks;
    }
    tr.channels = layout.channels_per_tam[static_cast<std::size_t>(t)];
    if (report.wall_seconds > 0.0 && tr.channels > 0) {
      tr.utilization = jsonFinite(
          tr.busy_seconds / (report.wall_seconds * tr.channels));
    }
    for (const ChannelUnit& unit : layout.units) {
      if (unit.tam != t) continue;
      ChannelLoad cl;
      cl.channel = unit.channel;
      cl.predicted_tcks = unit.predicted_tcks;
      for (const int g : unit.group_idx) {
        for (const std::size_t i :
             layout.groups[static_cast<std::size_t>(g)].entry_idx) {
          cl.cores.push_back(entries[i].core_index);
          cl.actual_tcks += report.cores[i].tap_clocks;
        }
      }
      tr.predicted_makespan_tcks =
          std::max(tr.predicted_makespan_tcks, cl.predicted_tcks);
      tr.actual_makespan_tcks =
          std::max(tr.actual_makespan_tcks, cl.actual_tcks);
      tr.channel_loads.push_back(std::move(cl));
    }
    report.predicted_makespan_tcks =
        std::max(report.predicted_makespan_tcks, tr.predicted_makespan_tcks);
    report.actual_makespan_tcks =
        std::max(report.actual_makespan_tcks, tr.actual_makespan_tcks);
    report.tams.push_back(std::move(tr));
  }
}

CoreReport testCoreResilient(Soc& soc, std::unique_ptr<SessionChannel>& ch,
                             const CorePlan& entry, SessionObserver* observer,
                             std::mutex& observer_mu,
                             ArtifactStore* artifacts) {
  int failures = 0;
  for (;;) {
    if (ch == nullptr) {
      ch = std::make_unique<SessionChannel>(soc, entry.tam, artifacts);
    }
    try {
      CoreReport r = ch->testCore(entry, observer, observer_mu);
      r.channel_failures = failures;
      return r;
    } catch (const SessionChannelError&) {
      ++failures;
      // The replica TAP/TAM state behind a failed channel is suspect;
      // reopening rebuilds it from the SoC, like respawning a dead worker.
      ch.reset();
      const bool will_retry = failures <= entry.max_shard_retries;
      if (observer != nullptr) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        observer->onChannelFailure(entry.core_index, failures, will_retry);
      }
      if (will_retry) {
        if (entry.backoff_base_ms > 0) {
          const int shift = std::min(failures - 1, 20);
          failpointSleepMs(std::min<std::int64_t>(
              static_cast<std::int64_t>(entry.backoff_base_ms) << shift, 250));
        }
        continue;
      }
      if (!entry.degrade_on_failure.value_or(true)) throw;
      CoreReport q;
      q.core_index = entry.core_index;
      q.core_name = soc.core(entry.core_index).name();
      q.tam = entry.tam;
      q.depth = soc.topology(entry.core_index).depth();
      q.patterns = entry.patterns;
      q.verdict = CoreVerdict::kQuarantined;
      q.channel_failures = failures;
      if (observer != nullptr) {
        const std::lock_guard<std::mutex> lock(observer_mu);
        observer->onCoreQuarantined(entry.core_index, failures);
      }
      return q;
    }
  }
}

}  // namespace corebist
