#include "service/report_stream.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "fault/process_wire.hpp"

namespace corebist {
namespace {

using fsimwire::kHeaderWords;

/// Assemble one frame: header with backpatched size/checksum, then
/// [u64 campaign_id][json bytes].
std::vector<std::uint8_t> buildFrame(StreamEventKind kind,
                                     std::uint64_t campaign_id,
                                     const std::string& json) {
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderWords * sizeof(std::uint32_t) + sizeof(campaign_id) +
                json.size());
  fsimwire::putPod(frame, kReportStreamMagic);
  fsimwire::putPod(frame, static_cast<std::uint32_t>(kind));
  fsimwire::putPod(frame, std::uint32_t{0});  // payload size (sealFrame)
  fsimwire::putPod(frame, std::uint32_t{0});  // checksum (sealFrame)
  fsimwire::putPod(frame, campaign_id);
  fsimwire::putBytes(frame, json.data(), json.size());
  fsimwire::sealFrame(frame);
  return frame;
}

}  // namespace

const char* streamEventKindName(StreamEventKind k) noexcept {
  switch (k) {
    case StreamEventKind::kCampaignStart:
      return "campaign_start";
    case StreamEventKind::kChannelPlaced:
      return "channel_placed";
    case StreamEventKind::kCoreStart:
      return "core_start";
    case StreamEventKind::kCoreTimeout:
      return "core_timeout";
    case StreamEventKind::kChannelFailure:
      return "channel_failure";
    case StreamEventKind::kCoreQuarantined:
      return "core_quarantined";
    case StreamEventKind::kCoreFinish:
      return "core_finish";
    case StreamEventKind::kCampaignFinish:
      return "campaign_finish";
  }
  return "unknown";
}

WireReportStream::WireReportStream(int fd, std::uint64_t campaign_id)
    : fd_(fd), campaign_id_(campaign_id) {}

void WireReportStream::emit(StreamEventKind kind, const std::string& json) {
  const std::vector<std::uint8_t> frame =
      buildFrame(kind, campaign_id_, json);
  const std::lock_guard<std::mutex> lock(mu_);
  if (dropped_) return;
  // A tenant that closed its reader must not fail (or stall) the campaign:
  // SIGPIPE is ignored for the write, EPIPE latches the dropped state.
  fsimwire::ScopedSigpipeIgnore guard;
  if (!fsimwire::writeAll(fd_, frame.data(), frame.size())) dropped_ = true;
}

void WireReportStream::onCampaignStart(int cores, int threads) {
  std::ostringstream os;
  os << "{\"cores\": " << cores << ", \"workers\": " << threads << "}";
  emit(StreamEventKind::kCampaignStart, os.str());
}

void WireReportStream::onChannelPlaced(int tam, int channel,
                                       const std::vector<int>& cores,
                                       std::size_t predicted_tcks) {
  std::ostringstream os;
  os << "{\"tam\": " << tam << ", \"channel\": " << channel
     << ", \"cores\": [";
  for (std::size_t i = 0; i < cores.size(); ++i) {
    if (i != 0) os << ", ";
    os << cores[i];
  }
  os << "], \"predicted_tcks\": " << predicted_tcks << "}";
  emit(StreamEventKind::kChannelPlaced, os.str());
}

void WireReportStream::onCoreStart(int core_index, int attempt) {
  std::ostringstream os;
  os << "{\"core\": " << core_index << ", \"attempt\": " << attempt << "}";
  emit(StreamEventKind::kCoreStart, os.str());
}

void WireReportStream::onCoreTimeout(int core_index, int attempt,
                                     bool will_retry) {
  std::ostringstream os;
  os << "{\"core\": " << core_index << ", \"attempt\": " << attempt
     << ", \"will_retry\": " << (will_retry ? "true" : "false") << "}";
  emit(StreamEventKind::kCoreTimeout, os.str());
}

void WireReportStream::onChannelFailure(int core_index, int failures,
                                        bool will_retry) {
  std::ostringstream os;
  os << "{\"core\": " << core_index << ", \"failures\": " << failures
     << ", \"will_retry\": " << (will_retry ? "true" : "false") << "}";
  emit(StreamEventKind::kChannelFailure, os.str());
}

void WireReportStream::onCoreQuarantined(int core_index, int failures) {
  std::ostringstream os;
  os << "{\"core\": " << core_index << ", \"failures\": " << failures << "}";
  emit(StreamEventKind::kCoreQuarantined, os.str());
}

void WireReportStream::onCoreFinish(const CoreReport& report) {
  emit(StreamEventKind::kCoreFinish, coreReportJson(report, true));
}

void WireReportStream::onCampaignFinish(const SessionReport& report) {
  emit(StreamEventKind::kCampaignFinish, report.toJson());
}

bool readStreamEvent(int fd, StreamEvent& out) {
  std::uint32_t hdr[fsimwire::kHeaderWords];
  {
    // Distinguish clean EOF (no bytes at all) from a torn header.
    auto* p = reinterpret_cast<char*>(hdr);
    std::size_t got = 0;
    while (got < sizeof hdr) {
      const ssize_t k = ::read(fd, p + got, sizeof hdr - got);
      if (k < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("report stream: read error");
      }
      if (k == 0) {
        if (got == 0) return false;  // clean EOF between frames
        throw std::runtime_error("report stream: torn frame header");
      }
      got += static_cast<std::size_t>(k);
    }
  }
  if (hdr[0] != kReportStreamMagic) {
    throw std::runtime_error("report stream: bad frame magic");
  }
  if (hdr[1] < 1 ||
      hdr[1] > static_cast<std::uint32_t>(StreamEventKind::kCampaignFinish)) {
    throw std::runtime_error("report stream: unknown event kind");
  }
  std::vector<std::uint8_t> payload(hdr[2]);
  if (!fsimwire::readAll(fd, payload.data(), payload.size())) {
    throw std::runtime_error("report stream: truncated payload");
  }
  if (fsimwire::fnv1a(payload.data(), payload.size()) != hdr[3]) {
    throw std::runtime_error("report stream: payload checksum mismatch");
  }
  fsimwire::Cursor c{payload.data(), payload.data() + payload.size()};
  const auto id = c.get<std::uint64_t>();
  if (!c.ok) throw std::runtime_error("report stream: short payload");
  out.kind = static_cast<StreamEventKind>(hdr[1]);
  out.campaign_id = id;
  out.json.assign(reinterpret_cast<const char*>(c.p),
                  static_cast<std::size_t>(c.end - c.p));
  return true;
}

}  // namespace corebist
