// CampaignService: a resident, multi-tenant SoC test-campaign engine.
//
// The one-shot SocTestScheduler pays full setup for every run() — plan
// resolution, lint, golden-signature simulation, a private thread pool —
// and serves exactly one campaign at a time. CampaignService inverts that:
// it is constructed once, stays resident, and multiplexes any number of
// concurrent campaigns over shared state:
//
//   * artifact layer (service/artifacts.hpp) — lint reports, fault
//     universes, golden signatures and coverage values are immutable,
//     content-keyed artifacts built once and shared by reference across
//     every campaign the service ever runs;
//   * reactor layer — a fixed pool of worker threads claims ChannelUnits
//     (service/layout.hpp) from any admitted campaign. Campaigns on
//     different core trees interleave freely; units touching the same tree
//     serialize on a per-root mutex, because cores sharing a top-level
//     ancestor share one wrapper chain and one clock domain;
//   * service API — submit(plan) admits a campaign and returns a
//     CampaignHandle; await/cancel/status manage it. Admission control is
//     driven by the same P1500Ate cost model predict() uses: each tenant is
//     charged the campaign's predicted TCKs against its quota, and
//     over-quota submissions fail fast with a typed AdmissionError —
//     admission never blocks the reactor;
//   * streaming results — per-campaign observers plus an optional
//     WireReportStream (service/report_stream.hpp) deliver progress and
//     incremental CoreReport JSON while the campaign runs.
//
// Determinism: a campaign's SessionReport fingerprint is a pure function of
// (SoC core-tree state, plan). Every attempt starts from TAP reset + BIST
// kReset on a replica channel, tree access is serialized, and artifacts are
// bitwise equal to what a cold rebuild would produce — so fingerprints are
// byte-identical across the seed one-shot path, any pool size and any
// multi-tenant interleaving (pinned by tests/service_test.cpp).
//
// Observer lifecycle (the checked-registration contract): callbacks for a
// campaign fire only between submit() returning and its terminal state
// being published. finalize detaches the observer BEFORE the terminal
// state becomes visible, so once await()/drain() returns, no further
// callback can touch the caller's observer — it may be destroyed
// immediately.
#ifndef COREBIST_SERVICE_SERVICE_HPP_
#define COREBIST_SERVICE_SERVICE_HPP_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"
#include "service/artifacts.hpp"
#include "service/layout.hpp"

namespace corebist {

/// Lifecycle of one admitted campaign. Terminal states: kDone, kFailed,
/// kCancelled.
enum class CampaignState : std::uint8_t {
  kQueued,     // admitted, units not yet claimed
  kRunning,    // at least one unit claimed by a worker
  kDone,       // every unit completed; report available via await()
  kFailed,     // a unit threw; await() rethrows the stored exception
  kCancelled,  // cancel() (or service shutdown) preempted completion
};

[[nodiscard]] const char* campaignStateName(CampaignState s) noexcept;

/// Typed admission rejection. Thrown by submit() only — by the time a
/// campaign is admitted it can no longer fail admission, so the reactor
/// never sees (or blocks on) quota pressure.
class AdmissionError : public std::runtime_error {
 public:
  enum class Reason : std::uint8_t {
    kShuttingDown,      // service is stopping; nothing new is admitted
    kInFlightQuota,     // tenant already runs its max concurrent campaigns
    kPredictedTckQuota, // predicted TCKs would exceed the tenant's budget
  };

  AdmissionError(Reason reason, std::string tenant, const std::string& what)
      : std::runtime_error("CampaignService: " + what),
        reason_(reason),
        tenant_(std::move(tenant)) {}

  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }

 private:
  Reason reason_;
  std::string tenant_;
};

/// Thrown by await() when the campaign was cancelled before completion.
class CampaignCancelled : public std::runtime_error {
 public:
  explicit CampaignCancelled(std::uint64_t id)
      : std::runtime_error("CampaignService: campaign " + std::to_string(id) +
                           " was cancelled"),
        id_(id) {}

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_;
};

/// Per-tenant admission limits. 0 = unlimited.
struct TenantQuota {
  int max_in_flight = 0;  // concurrent campaigns (queued + running)
  std::size_t max_predicted_tcks = 0;  // summed predicted TCKs in flight
};

struct CampaignServiceConfig {
  /// Fixed reactor pool size (clamped to >= 1). Unlike the one-shot
  /// scheduler, this does NOT shape placement determinism — fingerprints
  /// are pool-size-invariant — it only bounds concurrency.
  int workers = 2;
  /// Quota applied to tenants without an explicit entry.
  TenantQuota default_quota;
  /// Per-tenant overrides.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Shared artifact store. Defaults to a fresh store per service; pass one
  /// to share artifacts across services (the facade does, per scheduler).
  std::shared_ptr<ArtifactStore> artifacts;
};

struct SubmitOptions {
  std::string tenant = "default";
  /// Per-campaign observer; callbacks are serialized and detached before
  /// the terminal state is published (see the lifecycle note above). Must
  /// stay valid until await()/drain() returns for this campaign.
  SessionObserver* observer = nullptr;
  /// When >= 0, every campaign event is also framed onto this descriptor
  /// as a checksummed wire message (service/report_stream.hpp). Not owned;
  /// the caller closes it after the campaign is awaited.
  int stream_fd = -1;
};

/// Value handle naming one admitted campaign.
struct CampaignHandle {
  std::uint64_t id = 0;
};

/// Point-in-time progress snapshot of one campaign.
struct CampaignStatus {
  std::uint64_t id = 0;
  std::string tenant;
  CampaignState state = CampaignState::kQueued;
  int cores_total = 0;
  int cores_done = 0;
  std::size_t units_total = 0;
  std::size_t units_done = 0;
  std::size_t predicted_total_tcks = 0;
};

class CampaignService {
 public:
  explicit CampaignService(Soc& soc, CampaignServiceConfig config = {});

  /// Cancels every live campaign, drains the reactor and joins the pool.
  /// Unawaited reports are discarded.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Admit a campaign. Resolution/validation errors throw
  /// std::invalid_argument (same rejections as the one-shot scheduler);
  /// quota violations throw AdmissionError. On return the campaign is
  /// registered, its tenant charged, its start/placement events delivered,
  /// and its units queued to the reactor.
  CampaignHandle submit(const TestPlan& plan, const SubmitOptions& opts = {});

  /// Block until `h` reaches a terminal state. kDone returns the report;
  /// kFailed rethrows the exception that failed the campaign; kCancelled
  /// throws CampaignCancelled. By the time this returns, the campaign's
  /// observer is detached and safe to destroy.
  SessionReport await(CampaignHandle h);

  /// Request cancellation: already-started cores finish (a core test is
  /// never torn down mid-protocol), everything else is skipped. Returns
  /// false when the campaign is already terminal.
  bool cancel(CampaignHandle h);

  [[nodiscard]] CampaignStatus status(CampaignHandle h) const;

  /// What-if forecast under this service's worker budget: same resolution,
  /// lint gating and placement pass as submit(), same rejections
  /// (std::invalid_argument only — predict() charges no quota), zero TCKs
  /// spent. Safe to call concurrently with running campaigns.
  [[nodiscard]] PlanForecast predict(const TestPlan& plan);

  /// Block until every admitted campaign is terminal.
  void drain();

  [[nodiscard]] int workers() const noexcept { return workers_; }
  [[nodiscard]] const std::shared_ptr<ArtifactStore>& artifacts() const noexcept {
    return artifacts_;
  }
  [[nodiscard]] ArtifactStats artifactStats() const {
    return artifacts_->stats();
  }

 private:
  struct Campaign;

  [[nodiscard]] TenantQuota quotaFor(const std::string& tenant) const;
  [[nodiscard]] std::shared_ptr<Campaign> findLocked(std::uint64_t id) const;
  void workerLoop();
  void runUnit(Campaign& c, std::size_t u);
  /// Aggregate, release quota, credit the TAP, detach observers, publish
  /// the terminal state. Called with `lock` held; drops and reacquires it
  /// around the observer callbacks.
  void finalize(std::unique_lock<std::mutex>& lock, Campaign& c);

  struct TenantUsage {
    int in_flight = 0;
    std::size_t predicted_tcks = 0;
  };

  Soc& soc_;
  int workers_;
  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> tenant_quotas_;
  std::shared_ptr<ArtifactStore> artifacts_;

  /// One mutex per SoC core index; a unit locks its group's tree root for
  /// the whole group, so two campaigns never drive one wrapper chain
  /// concurrently. Workers hold at most one tree lock at a time, and lock
  /// order is always tree -> artifact store -> observer, so no cycle
  /// exists.
  std::unique_ptr<std::mutex[]> tree_mu_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;  // reactor: queue became non-empty / stop
  std::condition_variable done_cv_;  // await/drain: a campaign went terminal
  bool stopping_ = false;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Campaign>> campaigns_;
  std::deque<std::pair<std::shared_ptr<Campaign>, std::size_t>> queue_;
  std::map<std::string, TenantUsage> tenants_;
  std::vector<std::thread> pool_;
};

}  // namespace corebist

#endif  // COREBIST_SERVICE_SERVICE_HPP_
