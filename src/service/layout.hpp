// Campaign layout: plan resolution, tree grouping and channel placement.
//
// Extracted from SocTestScheduler (which is now a one-shot facade over
// CampaignService) so the resident service and the facade share one
// resolution + placement pass: concretize plan entries against the SoC
// (sentinel inheritance, validation, artifact-gated structural lint),
// group entries by core tree (cores sharing a top-level ancestor share one
// wrapper chain and clock domain — the unit of placement), predict every
// entry's TCK cost with the P1500Ate cost model, and partition each TAM's
// trees over its channels under the plan's PlacementPolicy. The resulting
// ChannelUnits are the service's unit of scheduling: one unit = one TAM
// channel's serial work list, claimed whole by a reactor worker.
//
// Everything here is a pure function of (plan, SoC topology, cost model):
// deterministic tie-breaks, no wall-clock feedback, so the same plan always
// yields the same layout regardless of pool size or tenant interleaving —
// the bedrock of the service's fingerprint guarantee.
#ifndef COREBIST_SERVICE_LAYOUT_HPP_
#define COREBIST_SERVICE_LAYOUT_HPP_

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session_channel.hpp"
#include "core/session_observer.hpp"
#include "core/session_report.hpp"
#include "core/soc.hpp"
#include "core/test_plan.hpp"
#include "tam/ate.hpp"

namespace corebist {

class ArtifactStore;

/// Predicted cost of one plan entry (what-if output; plan order).
struct CoreForecast {
  int core_index = -1;
  int tam = 0;
  int depth = 0;
  std::size_t predicted_tap_clocks = 0;  // P1500Ate cost-model session cost
  std::size_t predicted_bist_cycles = 0;
};

/// Predicted placement for one TAM: the channel loads the scheduler would
/// apply (ChannelLoad::actual_tcks stays 0 — nothing ran).
struct TamForecast {
  int tam_index = 0;
  std::string name;
  int channels = 1;  // concurrent channels the placement uses
  std::vector<ChannelLoad> channel_loads;  // ascending channel ordinal
  std::size_t predicted_tap_clocks = 0;    // summed over the TAM's cores
  std::size_t predicted_makespan_tcks = 0;  // max channel load
};

/// What-if result of predict(): the placement a plan would get and its
/// predicted makespan, computed purely from the P1500Ate cost model — no
/// channel is opened, no core is clocked. The makespan assumes one worker
/// per channel; the worker budget bounds real concurrency.
struct PlanForecast {
  PlacementPolicy placement = PlacementPolicy::kPlanOrder;
  std::vector<CoreForecast> cores;  // plan order
  std::vector<TamForecast> tams;    // ascending TAM index; only TAMs with work
  std::size_t predicted_total_tcks = 0;
  std::size_t predicted_makespan_tcks = 0;  // max over every channel
};

/// The unit of placement: one core tree's entries, in plan order. Cores
/// sharing a top-level ancestor share a wrapper chain and clock domain, so
/// they must never be driven by two channels at once. `root` is the
/// top-level ancestor's core index — the service keys its per-tree
/// serialization locks on it.
struct TreeGroup {
  int tam = 0;
  int root = -1;
  std::vector<std::size_t> entry_idx;
  std::size_t predicted_tcks = 0;  // summed P1500Ate cost-model load
};

/// One TAM channel's work list: tree groups that run serially on a single
/// SessionChannel. The executable unit the reactor workers claim and the
/// grain of the predicted/actual makespan accounting.
struct ChannelUnit {
  int tam = 0;
  int channel = 0;                 // ordinal within the TAM
  std::vector<int> group_idx;      // groups, ascending plan order
  std::size_t predicted_tcks = 0;  // summed group predictions
};

/// Everything execution and prediction share: the resolved entries, their
/// predicted costs, the tree groups and the channel placement.
struct CampaignLayout {
  std::vector<CorePlan> entries;
  std::vector<P1500Ate::SessionCost> entry_costs;  // parallel to entries
  std::vector<TreeGroup> groups;
  std::vector<ChannelUnit> units;  // ascending (tam, channel)
  std::vector<int> channels_per_tam;  // 0 for TAMs with no work
  int threads = 1;  // worker budget capped by the available work

  /// Summed predicted TCKs over every entry — the admission-control load
  /// number quotas are charged against.
  [[nodiscard]] std::size_t predictedTotalTcks() const;
};

/// The worker budget a plan implies for the one-shot facade:
/// `num_threads` (0 = hardware concurrency), clamped to >= 1. The resident
/// service ignores this and uses its fixed pool size instead.
[[nodiscard]] int resolvePlanWorkers(const TestPlan& plan);

/// Resolve + validate `plan` against `soc` and place its work under a
/// budget of `worker_budget` concurrent workers. Throws
/// std::invalid_argument for plans that name unknown or duplicated cores,
/// assign a core to a TAM that does not serve it, carry invalid channel
/// limits, request pattern budgets beyond a core's counter capacity, or
/// reference a module failing structural lint. `artifacts` (optional)
/// serves the lint gate from the shared cache.
[[nodiscard]] CampaignLayout layoutCampaign(const TestPlan& plan, Soc& soc,
                                            int worker_budget,
                                            ArtifactStore* artifacts = nullptr);

/// Project a layout into the what-if forecast shape (zero TCKs spent).
[[nodiscard]] PlanForecast forecastFromLayout(const CampaignLayout& layout,
                                              Soc& soc,
                                              PlacementPolicy placement);

/// Fill `report`'s aggregate fields from the per-core records: TCK totals,
/// per-TAM slices in ascending TAM index (plan order within each) and the
/// predicted-vs-actual channel/makespan accounting. wall_seconds must
/// already be set (utilization divides by it); threads/placement/soc_name
/// are the caller's.
void aggregateSessionReport(SessionReport& report,
                            const CampaignLayout& layout, Soc& soc);

/// Run one core with channel-level self-healing. A SessionChannelError
/// means the test-access plumbing (not the core) failed, so the suspect
/// channel is dropped, a fresh replica is opened, and the core is re-run
/// from the top — CoreReport attempts/polls reset with the channel, which
/// is what keeps a recovered core's fingerprint identical to a never-failed
/// run. After `entry.max_shard_retries` reopens the core is quarantined
/// (verdict kQuarantined, identity fields only, zero TCK/at-speed
/// accounting so campaign totals stay deterministic) — or, when the plan
/// sets degrade_on_failure=false, the error propagates and fails the
/// campaign. All other exception types propagate untouched. `artifacts`
/// (optional) is threaded into every channel this call opens.
CoreReport testCoreResilient(Soc& soc, std::unique_ptr<SessionChannel>& ch,
                             const CorePlan& entry, SessionObserver* observer,
                             std::mutex& observer_mu,
                             ArtifactStore* artifacts = nullptr);

}  // namespace corebist

#endif  // COREBIST_SERVICE_LAYOUT_HPP_
