#include "scan/scan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "netlist/builder.hpp"

namespace corebist {

namespace {
std::vector<std::vector<int>> partitionChains(std::size_t flops,
                                              std::vector<int> chain_sizes) {
  if (chain_sizes.empty()) {
    chain_sizes.push_back(static_cast<int>(flops));
  }
  const int total =
      std::accumulate(chain_sizes.begin(), chain_sizes.end(), 0);
  if (total != static_cast<int>(flops)) {
    throw std::invalid_argument("scan: chain sizes must sum to flop count");
  }
  std::vector<std::vector<int>> chains;
  int at = 0;
  for (const int size : chain_sizes) {
    std::vector<int> chain(static_cast<std::size_t>(size));
    std::iota(chain.begin(), chain.end(), at);
    at += size;
    chains.push_back(std::move(chain));
  }
  return chains;
}
}  // namespace

int ScanView::longestChain() const {
  std::size_t longest = 0;
  for (const auto& c : chains) longest = std::max(longest, c.size());
  return static_cast<int>(longest);
}

std::size_t ScanView::testCycles(std::size_t patterns) const {
  const std::size_t len = static_cast<std::size_t>(longestChain());
  return patterns * (len + 1) + len;
}

std::size_t ScanView::testCyclesTransition(std::size_t pairs) const {
  // Launch-on-shift: load (len), launch shift (1), capture (1); unload
  // overlaps the next load.
  const std::size_t len = static_cast<std::size_t>(longestChain());
  return pairs * (len + 2) + len;
}

ScanView makeScanView(const Netlist& nl, std::vector<int> chain_sizes) {
  ScanView view;
  view.chains = partitionChains(nl.dffs().size(), std::move(chain_sizes));
  view.inputs = nl.primaryInputs();
  view.num_functional_inputs = static_cast<int>(view.inputs.size());
  view.observed = nl.primaryOutputs();
  view.num_functional_outputs = static_cast<int>(view.observed.size());
  for (const auto& chain : view.chains) {
    for (const int ff : chain) {
      view.inputs.push_back(nl.dffs()[static_cast<std::size_t>(ff)].q);
      view.observed.push_back(nl.dffs()[static_cast<std::size_t>(ff)].d);
    }
  }
  return view;
}

Netlist buildScannedModule(const Netlist& nl, std::vector<int> chain_sizes) {
  const auto chains = partitionChains(nl.dffs().size(), chain_sizes);
  Netlist out(nl.name() + "_scan");
  Builder b(out);
  const NetId scan_en = b.input("scan_en", 1)[0];
  std::vector<NetId> scan_ins;
  for (std::size_t c = 0; c < chains.size(); ++c) {
    scan_ins.push_back(b.input("scan_in_" + std::to_string(c), 1)[0]);
  }
  const NetId offset = out.absorb(nl, "");
  out.adoptPortNets(nl, offset);
  // Thread each chain: D' = scan_en ? prev_q : D, scan_out = last Q.
  for (std::size_t c = 0; c < chains.size(); ++c) {
    NetId prev = scan_ins[c];
    for (const int ff : chains[c]) {
      const Dff& orig = nl.dffs()[static_cast<std::size_t>(ff)];
      const NetId q = orig.q + offset;
      const NetId d = orig.d + offset;
      out.rebindDff(q, out.addMux(d, prev, scan_en));
      prev = q;
    }
    Bus so{prev};
    b.output("scan_out_" + std::to_string(c), so);
  }
  out.validate();
  return out;
}

}  // namespace corebist
