// Scan-chain insertion and the full-scan combinational view (paper Table 3,
// "Full scan patterns" columns).
//
// Full scan turns every flip-flop into a muxed-D scan cell threaded into
// one or more shift chains. Two artifacts:
//  * buildScannedModule(): the physical netlist with scan muxes and
//    scan_en/scan_in/scan_out ports. Its fault universe is the one the
//    paper reports for full scan (slightly larger than the functional
//    universe: BIT_NODE 7,836 vs 7,532) and its fmax shows the scan-mux
//    timing penalty of Table 4.
//  * ScanView: the controllable/observable net lists (PIs + pseudo-PIs /
//    POs + pseudo-POs) that combinational ATPG and fault simulation use,
//    plus the test-time model: a pattern costs chain_length + 1 clocks
//    (shift-in overlapped with shift-out of the previous response) and the
//    final unload adds chain_length clocks.
#ifndef COREBIST_SCAN_SCAN_HPP_
#define COREBIST_SCAN_SCAN_HPP_

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace corebist {

struct ScanView {
  /// Controllable nets of the combinational view: functional PIs first,
  /// then pseudo-PIs (flip-flop Q nets) in chain order.
  std::vector<NetId> inputs;
  /// Observable nets: functional POs first, then pseudo-POs (D nets).
  std::vector<NetId> observed;
  /// Flip-flop indices per chain (shift order: scan_in first).
  std::vector<std::vector<int>> chains;
  int num_functional_inputs = 0;
  int num_functional_outputs = 0;

  [[nodiscard]] int longestChain() const;
  /// Clocks to apply `patterns` scan patterns (overlapped load/unload).
  [[nodiscard]] std::size_t testCycles(std::size_t patterns) const;
  /// Clocks for launch-on-shift transition pairs (one extra launch shift
  /// per pair).
  [[nodiscard]] std::size_t testCyclesTransition(std::size_t pairs) const;
};

/// Partition flip-flops into chains. `chain_sizes` empty => single chain;
/// otherwise sizes must sum to the flop count (the case study's
/// CONTROL_UNIT uses {14, 28}).
[[nodiscard]] ScanView makeScanView(const Netlist& nl,
                                    std::vector<int> chain_sizes = {});

/// Physical full-scan netlist: every DFF D input goes through a scan mux;
/// chains are stitched Q->SI; adds scan_en, scan_in_<c>, scan_out_<c> ports.
[[nodiscard]] Netlist buildScannedModule(const Netlist& nl,
                                         std::vector<int> chain_sizes = {});

}  // namespace corebist

#endif  // COREBIST_SCAN_SCAN_HPP_
