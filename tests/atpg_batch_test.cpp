// Batched ATPG grading: the PODEM/LOS candidate-test phases of the full-scan
// drivers now run through FaultSim::run (VectorPatternSource batches, pair
// campaigns via FaultSimOptions::launch). This suite proves the batched
// drivers against hand-rolled per-fault references, pins determinism and
// thread-count invariance, and carries the regression tests for the
// aborted/detected double count and the >64-PI sequence overflow.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/podem.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/fault.hpp"
#include "fault/parallel_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "netlist/builder.hpp"
#include "scan/scan.hpp"

namespace corebist {
namespace {

/// Random sequential module: a comb DAG over the PIs and register outputs,
/// with the registers fed back from DAG nets — scanning it gives the
/// randomized full-scan views the batched drivers are proved on.
Netlist randomSeqModule(std::uint64_t seed, int width, int state_bits,
                        int gates) {
  Netlist nl("randseq");
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus st = b.state("st", state_bits);
  std::vector<NetId> pool(x.begin(), x.end());
  pool.insert(pool.end(), st.begin(), st.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bn = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bn);
        break;
      default:
        out = nl.addMux(a, bn, s);
        break;
    }
    pool.push_back(out);
  }
  Bus d(st.size());
  for (std::size_t k = 0; k < st.size(); ++k) {
    d[k] = pool[pool.size() - 1 - k];
  }
  b.connect(st, d);
  Bus outs(pool.end() - std::min<std::size_t>(6, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

PatternBlock randomBlock(std::mt19937_64& rng, std::size_t width) {
  PatternBlock blk;
  blk.inputs.resize(width);
  for (auto& w : blk.inputs) w = rng();
  blk.count = 64;
  return blk;
}

/// Mirrors the driver's launch-on-shift successor (v2 = v1 shifted one
/// position down each chain, fresh scan-in bit, functional PIs held).
PatternBlock losSuccessor(const PatternBlock& v1, const ScanView& view,
                          std::mt19937_64& rng) {
  PatternBlock v2 = v1;
  std::size_t base = static_cast<std::size_t>(view.num_functional_inputs);
  for (const auto& chain : view.chains) {
    for (std::size_t k = chain.size(); k-- > 1;) {
      v2.inputs[base + k] = v1.inputs[base + k - 1];
    }
    if (!chain.empty()) v2.inputs[base] = rng();
    base += chain.size();
  }
  return v2;
}

/// The pre-batching full-scan driver, replicated verbatim as the per-fault
/// baseline: 64-pattern pending blocks, a per-fault detect() loop per flush,
/// targets pre-marked detected on PODEM success.
FullScanAtpgResult referenceAtpg(const Netlist& scanned, const ScanView& view,
                                 std::span<const Fault> faults,
                                 const FullScanAtpgOptions& opts) {
  FullScanAtpgResult res;
  res.total_faults = faults.size();
  CombFaultSim fsim(scanned, view.inputs, view.observed);
  std::vector<char> detected(faults.size(), 0);
  std::mt19937_64 rng(opts.seed);
  {
    const RandomPatternSource random_patterns(opts.seed, view.inputs.size(),
                                              opts.max_random_blocks * 64);
    FaultSimOptions fopts;
    fopts.cycles = opts.max_random_blocks * 64;
    fopts.prepass_cycles = 0;
    fopts.stall_blocks = opts.random_stall_blocks;
    const FaultSimResult rr = fsim.run(faults, random_patterns, fopts);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (rr.first_detect[i] >= 0) detected[i] = 1;
    }
    res.patterns += rr.patterns_applied;
  }
  CombFaultSimT<1> confirm_fsim(scanned, view.inputs, view.observed);
  Podem podem(scanned, view.inputs, view.observed, opts.backtrack_limit);
  PatternBlock pending;
  pending.inputs.assign(view.inputs.size(), 0);
  int pending_count = 0;
  auto flushPending = [&] {
    if (pending_count == 0) return;
    pending.count = pending_count;
    confirm_fsim.loadBlock(pending);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (detected[i]) continue;
      if (confirm_fsim.detect(faults[i]).any()) detected[i] = 1;
    }
    res.patterns += static_cast<std::size_t>(pending_count);
    pending_count = 0;
    for (auto& w : pending.inputs) w = 0;
  };
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (detected[i]) continue;
    const auto test = podem.generate(faults[i]);
    if (!test.has_value()) {
      ++res.aborted;
      continue;
    }
    for (std::size_t j = 0; j < test->size(); ++j) {
      const bool bit =
          (*test)[j] == Tv::kX ? (rng() & 1u) != 0 : (*test)[j] == Tv::k1;
      if (bit) pending.inputs[j] |= std::uint64_t{1} << pending_count;
    }
    detected[i] = 1;
    ++pending_count;
    if (pending_count == 64) flushPending();
  }
  flushPending();
  for (const char d : detected) {
    if (d) ++res.detected;
  }
  res.test_cycles = view.testCycles(res.patterns);
  return res;
}

/// The pre-batching transition driver, replicated verbatim: one hand-built
/// 64-pair block at a time on the 64-lane kernel with a per-fault loop.
FullScanAtpgResult referenceTransition(const Netlist& scanned,
                                       const ScanView& view,
                                       std::span<const Fault> tdf_faults,
                                       const FullScanAtpgOptions& opts) {
  FullScanAtpgResult res;
  res.total_faults = tdf_faults.size();
  CombFaultSimT<1> fsim(scanned, view.inputs, view.observed);
  std::vector<char> detected(tdf_faults.size(), 0);
  std::mt19937_64 rng(opts.seed ^ 0x7D0F0ull);
  std::size_t live = tdf_faults.size();
  int stall = 0;
  for (int blk = 0; blk < opts.max_random_blocks * 2 && live > 0; ++blk) {
    const PatternBlock v1 = randomBlock(rng, view.inputs.size());
    const PatternBlock v2 = losSuccessor(v1, view, rng);
    fsim.loadPairBlock(v1, v2);
    std::size_t newly = 0;
    for (std::size_t i = 0; i < tdf_faults.size(); ++i) {
      if (detected[i]) continue;
      if (fsim.detect(tdf_faults[i]).any()) {
        detected[i] = 1;
        ++newly;
        --live;
      }
    }
    res.patterns += 64;
    stall = newly == 0 ? stall + 1 : 0;
    if (stall >= opts.random_stall_blocks * 2) break;
  }
  for (const char d : detected) {
    if (d) ++res.detected;
  }
  res.test_cycles = view.testCyclesTransition(res.patterns);
  return res;
}

void expectSameOutcome(const FullScanAtpgResult& a,
                       const FullScanAtpgResult& b, const char* what) {
  EXPECT_EQ(a.total_faults, b.total_faults) << what;
  EXPECT_EQ(a.detected, b.detected) << what;
  EXPECT_EQ(a.aborted, b.aborted) << what;
  EXPECT_EQ(a.patterns, b.patterns) << what;
  EXPECT_EQ(a.test_cycles, b.test_cycles) << what;
  EXPECT_EQ(a.podem_calls, b.podem_calls) << what;
  EXPECT_EQ(a.batches, b.batches) << what;
}

TEST(VectorPatternSource, ServesAppendedPatternsAsBlocks) {
  const std::size_t width = 70;  // wider than one packed word
  VectorPatternSource src(width);
  std::mt19937_64 rng(41);
  std::vector<std::vector<std::uint8_t>> patterns;
  for (int p = 0; p < 130; ++p) {  // 2 full blocks + a 2-lane tail
    std::vector<std::uint8_t> bits(width);
    for (auto& v : bits) v = static_cast<std::uint8_t>(rng() & 1u);
    src.append(bits);
    patterns.push_back(bits);
  }
  ASSERT_EQ(src.patternCount(), 130);
  ASSERT_EQ(src.width(), width);
  PatternBlock blk;
  for (int start = 0; start < 130; start += 64) {
    src.fill(start, blk);
    const int n = std::min(64, 130 - start);
    ASSERT_EQ(blk.count, n);
    for (int k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < width; ++j) {
        EXPECT_EQ((blk.inputs[j] >> k) & 1u,
                  patterns[static_cast<std::size_t>(start + k)][j])
            << "pattern " << start + k << " input " << j;
      }
    }
    // Tail lanes must be masked off, not stale.
    for (int k = n; k < 64; ++k) {
      for (std::size_t j = 0; j < width; ++j) {
        EXPECT_EQ((blk.inputs[j] >> k) & 1u, 0u);
      }
    }
  }
  // fillWide must decompose into the same per-64-lane fills.
  PatternBlock wide;
  src.fillWide(0, 4, wide);
  EXPECT_EQ(wide.count, 130);
  for (int start = 0; start < 130; start += 64) {
    src.fill(start, blk);
    for (std::size_t j = 0; j < width; ++j) {
      EXPECT_EQ(wide.word(j, start / 64), blk.inputs[j]);
    }
  }
  src.clear();
  EXPECT_EQ(src.patternCount(), 0);
}

TEST(VectorPatternSource, AppendBlockMatchesBitwiseAppend) {
  const std::size_t width = 9;
  std::mt19937_64 rng(7);
  PatternBlock blk = randomBlock(rng, width);
  blk.count = 50;  // partial block: lanes past 50 must not leak
  VectorPatternSource by_block(width);
  by_block.appendBlock(blk);
  VectorPatternSource by_bit(width);
  std::vector<std::uint8_t> bits(width);
  for (int k = 0; k < 50; ++k) {
    for (std::size_t j = 0; j < width; ++j) {
      bits[j] = static_cast<std::uint8_t>((blk.inputs[j] >> k) & 1u);
    }
    by_bit.append(bits);
  }
  ASSERT_EQ(by_block.patternCount(), by_bit.patternCount());
  PatternBlock a;
  PatternBlock b;
  by_block.fill(0, a);
  by_bit.fill(0, b);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.count, b.count);
}

TEST(PairCampaign, RunMatchesHandRolledPairBlockLoop) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const Netlist nl = randomSeqModule(seed, 8, 10, 60);
    const Netlist scanned = buildScannedModule(nl);
    const ScanView view = makeScanView(scanned);
    const FaultUniverse u = enumerateStuckAt(scanned);
    const auto tdf = toTransitionFaults(u.faults);

    const int blocks = 5;
    std::mt19937_64 rng(seed ^ 0xFACE);
    VectorPatternSource launch(view.inputs.size());
    VectorPatternSource capture(view.inputs.size());
    std::vector<PatternBlock> v1s;
    std::vector<PatternBlock> v2s;
    for (int b = 0; b < blocks; ++b) {
      v1s.push_back(randomBlock(rng, view.inputs.size()));
      v2s.push_back(losSuccessor(v1s.back(), view, rng));
      launch.appendBlock(v1s.back());
      capture.appendBlock(v2s.back());
    }

    // Reference: block-at-a-time pair loop without dropping, recording the
    // first detecting pair per fault.
    CombFaultSimT<1> ref(scanned, view.inputs, view.observed);
    std::vector<std::int32_t> first(tdf.size(), -1);
    for (int b = 0; b < blocks; ++b) {
      ref.loadPairBlock(v1s[static_cast<std::size_t>(b)],
                        v2s[static_cast<std::size_t>(b)]);
      for (std::size_t i = 0; i < tdf.size(); ++i) {
        if (first[i] >= 0) continue;
        const auto det = ref.detect(tdf[i]);
        if (det.any()) first[i] = 64 * b + det.firstLane();
      }
    }

    FaultSimOptions fopts;
    fopts.cycles = capture.patternCount();
    fopts.prepass_cycles = 0;
    fopts.launch = &launch;
    // Narrow kernel, wide kernel and the threaded orchestrator must all
    // agree with the hand-rolled loop.
    CombFaultSimT<1> narrow(scanned, view.inputs, view.observed);
    EXPECT_EQ(narrow.run(tdf, capture, fopts).first_detect, first);
    CombFaultSim wide(scanned, view.inputs, view.observed);
    EXPECT_EQ(wide.run(tdf, capture, fopts).first_detect, first);
    ParallelFsimOptions popts;
    popts.num_threads = 4;
    ParallelFaultSim par(wide, popts);
    EXPECT_EQ(par.run(tdf, capture, fopts).first_detect, first);
  }
}

TEST(PairCampaign, KindValidation) {
  const Netlist nl = randomSeqModule(5, 6, 6, 40);
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  const auto tdf = toTransitionFaults(u.faults);
  std::mt19937_64 rng(5);
  VectorPatternSource launch(view.inputs.size());
  VectorPatternSource capture(view.inputs.size());
  const PatternBlock v1 = randomBlock(rng, view.inputs.size());
  launch.appendBlock(v1);
  capture.appendBlock(losSuccessor(v1, view, rng));
  CombFaultSim fsim(scanned, view.inputs, view.observed);
  FaultSimOptions fopts;
  fopts.cycles = 64;
  fopts.prepass_cycles = 0;
  // Transition faults without a launch source are rejected...
  EXPECT_THROW((void)fsim.run(tdf, capture, fopts), std::invalid_argument);
  // ...stuck-at faults inside a pair campaign are rejected...
  fopts.launch = &launch;
  EXPECT_THROW((void)fsim.run(u.faults, capture, fopts),
               std::invalid_argument);
  // ...and the sequential engine has no pair path at all.
  SeqFaultSim seq(nl);
  EXPECT_THROW((void)seq.run(std::span<const Fault>(u.faults), capture, fopts),
               std::invalid_argument);
  // A width-mismatched launch source is rejected before any simulation.
  VectorPatternSource skinny(view.inputs.size() - 1);
  fopts.launch = &skinny;
  EXPECT_THROW((void)fsim.run(tdf, capture, fopts), std::invalid_argument);
}

TEST(BatchedAtpg, CoverageAtLeastPerFaultBaseline) {
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    const Netlist nl = randomSeqModule(seed, 7, 9, 55);
    const Netlist scanned = buildScannedModule(nl);
    const ScanView view = makeScanView(scanned);
    const FaultUniverse u = enumerateStuckAt(scanned);
    FullScanAtpgOptions opts;
    opts.max_random_blocks = 4;  // force a real PODEM phase
    opts.random_stall_blocks = 2;
    opts.backtrack_limit = 200;
    opts.podem_budget_seconds = 30.0;
    const FullScanAtpgResult batched =
        runFullScanAtpg(scanned, view, u.faults, opts);
    const FullScanAtpgResult baseline =
        referenceAtpg(scanned, view, u.faults, opts);
    EXPECT_GE(batched.detected, baseline.detected) << "seed " << seed;
    EXPECT_LE(batched.detected + batched.aborted, batched.total_faults)
        << "seed " << seed;
    EXPECT_GT(batched.podem_calls, 0u) << "seed " << seed;
  }
}

TEST(BatchedAtpg, DeterministicUnderFixedSeed) {
  const Netlist nl = randomSeqModule(77, 8, 8, 50);
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  FullScanAtpgOptions opts;
  opts.max_random_blocks = 4;
  opts.random_stall_blocks = 2;
  const auto a = runFullScanAtpg(scanned, view, u.faults, opts);
  const auto b = runFullScanAtpg(scanned, view, u.faults, opts);
  expectSameOutcome(a, b, "stuck-at rerun");
  const auto tdf = toTransitionFaults(u.faults);
  const auto ta = runFullScanTransition(scanned, view, tdf, opts);
  const auto tb = runFullScanTransition(scanned, view, tdf, opts);
  expectSameOutcome(ta, tb, "transition rerun");
}

TEST(BatchedAtpg, ThreadCountInvariance) {
  const Netlist nl = randomSeqModule(88, 8, 10, 60);
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  const auto tdf = toTransitionFaults(u.faults);
  FullScanAtpgOptions opts;
  opts.max_random_blocks = 4;
  opts.random_stall_blocks = 2;
  opts.num_threads = 1;
  const auto saf1 = runFullScanAtpg(scanned, view, u.faults, opts);
  const auto tdf1 = runFullScanTransition(scanned, view, tdf, opts);
  for (const int threads : {2, 4}) {
    opts.num_threads = threads;
    const auto safN = runFullScanAtpg(scanned, view, u.faults, opts);
    expectSameOutcome(saf1, safN, "stuck-at threads");
    const auto tdfN = runFullScanTransition(scanned, view, tdf, opts);
    expectSameOutcome(tdf1, tdfN, "transition threads");
  }
}

TEST(BatchedAtpg, TransitionMatchesPerBlockReferenceAtAnyBatchSize) {
  // The stall replay makes the batched LOS driver byte-identical to the old
  // block-at-a-time loop — at every batch size, including one that spans
  // the whole campaign.
  for (const std::uint64_t seed : {9u, 19u}) {
    const Netlist nl = randomSeqModule(seed, 8, 9, 55);
    const Netlist scanned = buildScannedModule(nl);
    const ScanView view = makeScanView(scanned);
    const FaultUniverse u = enumerateStuckAt(scanned);
    const auto tdf = toTransitionFaults(u.faults);
    FullScanAtpgOptions opts;
    opts.max_random_blocks = 6;
    opts.random_stall_blocks = 1;  // make the stall exit reachable
    const FullScanAtpgResult ref =
        referenceTransition(scanned, view, tdf, opts);
    for (const int batch : {64, 256, 4096}) {
      opts.batch_patterns = batch;
      const FullScanAtpgResult got =
          runFullScanTransition(scanned, view, tdf, opts);
      EXPECT_EQ(got.detected, ref.detected) << "batch " << batch;
      EXPECT_EQ(got.patterns, ref.patterns) << "batch " << batch;
      EXPECT_EQ(got.test_cycles, ref.test_cycles) << "batch " << batch;
    }
  }
}

TEST(BatchedAtpg, AbortedAndDetectedPartitionTheUniverse) {
  // backtrack_limit 0 makes PODEM give up on everything it cannot solve
  // without backtracking, while successful candidates keep detecting the
  // give-ups collaterally — the exact shape that used to double-count.
  for (const std::uint64_t seed : {3u, 13u, 23u}) {
    const Netlist nl = randomSeqModule(seed, 7, 8, 50);
    const Netlist scanned = buildScannedModule(nl);
    const ScanView view = makeScanView(scanned);
    const FaultUniverse u = enumerateStuckAt(scanned);
    FullScanAtpgOptions opts;
    opts.max_random_blocks = 2;
    opts.random_stall_blocks = 1;
    opts.backtrack_limit = 0;
    const auto res = runFullScanAtpg(scanned, view, u.faults, opts);
    EXPECT_LE(res.detected + res.aborted, res.total_faults) << "seed " << seed;
    EXPECT_GT(res.aborted, 0u) << "seed " << seed;
  }
}

TEST(BatchedAtpg, ZeroBudgetAbortsEveryPhase2Survivor) {
  const Netlist nl = randomSeqModule(31, 7, 8, 50);
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  FullScanAtpgOptions opts;
  opts.max_random_blocks = 2;
  opts.random_stall_blocks = 1;
  opts.podem_budget_seconds = 0.0;
  const auto res = runFullScanAtpg(scanned, view, u.faults, opts);
  // No candidate tests exist, so every random-phase survivor is aborted and
  // the two buckets exactly partition the universe.
  EXPECT_EQ(res.detected + res.aborted, res.total_faults);
  EXPECT_EQ(res.podem_calls, 0u);
  EXPECT_EQ(res.batches, 0u);
}

TEST(SeqAtpg, RejectsModulesWiderThan64Inputs) {
  // 70 PIs: `1 << j` on the one-word-per-cycle format would be UB. The
  // driver must fail loudly instead of aliasing inputs 64..69 onto 0..5.
  Netlist nl("wide");
  Builder b(nl);
  const Bus x = b.input("x", 70);
  Bus outs;
  for (int k = 0; k < 8; ++k) {
    outs.push_back(b.xor2(x[static_cast<std::size_t>(k)],
                          x[static_cast<std::size_t>(69 - k)]));
  }
  b.output("y", outs);
  nl.validate();
  const FaultUniverse u = enumerateStuckAt(nl);
  SeqAtpgOptions opts;
  opts.sequence_cycles = 64;
  opts.candidates = 1;
  EXPECT_THROW((void)runSequentialAtpg(nl, u.faults, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace corebist
