// ProcessFaultSim orchestration: byte-identical results to the serial
// engines on randomized netlists across 1/2/4 worker processes — plain
// dropping campaigns, transition pair campaigns (FaultSimOptions::launch),
// first-K dictionary records, and the windowed-MISR sequential path — plus
// the failure-path regressions driven through the failpoint registry: a
// crashed worker, a hung worker, truncated / bit-flipped frames (checksum
// detection) and dribbled partial writes must surface as structured
// ProcessFsimError (or be absorbed) with every child reaped (no hang, no
// zombies), and the backend factory parse/name round-trip.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "atpg/atpg.hpp"
#include "fault/backend.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/failpoint.hpp"
#include "fault/fault.hpp"
#include "fault/process_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "netlist/builder.hpp"
#include "scan/scan.hpp"

namespace corebist {
namespace {

/// Random combinational DAG over `width` inputs.
Netlist randomComb(std::uint64_t seed, int width, int gates) {
  Netlist nl("rand");
  Builder b(nl);
  const Bus x = b.input("x", width);
  std::vector<NetId> pool(x.begin(), x.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);  // kBuf .. kMux2
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  Bus outs(pool.end() - std::min<std::size_t>(8, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

/// Random sequential circuit: a comb core whose last nets feed a state
/// register folded back into the input pool.
Netlist randomSeq(std::uint64_t seed, int width, int state_bits, int gates) {
  Netlist nl("rand_seq");
  Builder b(nl);
  const Bus x = b.input("x", width);
  const Bus q = b.state("q", state_bits);
  std::vector<NetId> pool(x.begin(), x.end());
  pool.insert(pool.end(), q.begin(), q.end());
  std::mt19937_64 rng(seed);
  for (int g = 0; g < gates; ++g) {
    const auto t = static_cast<GateType>(2 + rng() % 9);
    const NetId a = pool[rng() % pool.size()];
    const NetId bnet = pool[rng() % pool.size()];
    const NetId s = pool[rng() % pool.size()];
    NetId out = kNullNet;
    switch (gateArity(t)) {
      case 1:
        out = nl.addGate1(t, a);
        break;
      case 2:
        out = nl.addGate2(t, a, bnet);
        break;
      default:
        out = nl.addMux(a, bnet, s);
        break;
    }
    pool.push_back(out);
  }
  b.connect(q, Bus(pool.end() - state_bits, pool.end()));
  Bus outs(pool.end() - std::min<std::size_t>(6, pool.size()), pool.end());
  b.output("y", outs);
  nl.validate();
  return nl;
}

void expectSameResult(const FaultSimResult& ref, const FaultSimResult& got,
                      const char* what) {
  EXPECT_EQ(ref.first_detect, got.first_detect) << what;
  EXPECT_EQ(ref.window_mask, got.window_mask) << what;
  EXPECT_EQ(ref.misr_detect, got.misr_detect) << what;
  EXPECT_EQ(ref.sig_words_per_fault, got.sig_words_per_fault) << what;
  EXPECT_EQ(ref.window_sig, got.window_sig) << what;
  EXPECT_EQ(ref.detect_patterns, got.detect_patterns) << what;
  EXPECT_EQ(ref.patterns_applied, got.patterns_applied) << what;
  EXPECT_EQ(ref.detected, got.detected) << what;
  EXPECT_EQ(ref.total, got.total) << what;
}

/// True when this process has no unreaped children: the orchestrator must
/// waitpid() every worker on success AND failure. The test binary spawns no
/// other children, so ECHILD is the only acceptable state here.
bool noZombies() {
  const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
  return r == -1 && errno == ECHILD;
}

class ProcessEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcessEquivalence, CombCampaignsMatchSerialByteForByte) {
  const Netlist nl = randomComb(GetParam(), 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(GetParam() ^ 0xD00D,
                                     nl.primaryInputs().size(), 420);

  std::vector<FaultSimOptions> modes;
  {
    FaultSimOptions o;  // dropping campaign with a stage ladder
    o.cycles = 420;
    o.prepass_cycles = 64;
    modes.push_back(o);
    o.prepass_cycles = 0;  // single full-length stage
    modes.push_back(o);
    o.drop_detected = false;  // full-length, no dropping
    modes.push_back(o);
    o = FaultSimOptions{};  // windowed detection masks
    o.cycles = 420;
    o.prepass_cycles = 0;
    o.windows = 8;
    modes.push_back(o);
    o = FaultSimOptions{};  // first-K dictionary records
    o.cycles = 420;
    o.prepass_cycles = 0;
    o.record_detections = 3;
    modes.push_back(o);
  }

  CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    const FaultSimResult ref = serial.run(u.faults, patterns, modes[m]);
    for (const int workers : {1, 2, 4}) {
      ProcessFsimOptions popts;
      popts.num_workers = workers;
      popts.shard_faults = workers == 4 ? 17 : 63;  // odd shards too
      ProcessFaultSim psim(
          CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
      const FaultSimResult r = psim.run(u.faults, patterns, modes[m]);
      SCOPED_TRACE("mode " + std::to_string(m) + " workers " +
                   std::to_string(workers));
      expectSameResult(ref, r, "process vs serial");
    }
  }
  EXPECT_TRUE(noZombies());
}

TEST_P(ProcessEquivalence, TransitionPairCampaignMatchesSerial) {
  const Netlist nl = randomComb(GetParam() ^ 0x7DF0, 9, 60);
  const FaultUniverse u = enumerateStuckAt(nl);
  const std::vector<Fault> tdf = toTransitionFaults(u.faults);

  // Hand-built launch/capture pair streams, like the LOS driver's batches.
  std::mt19937_64 rng(GetParam() ^ 0xFA1);
  VectorPatternSource launch_src(nl.primaryInputs().size());
  VectorPatternSource capture_src(nl.primaryInputs().size());
  for (int b = 0; b < 3; ++b) {
    PatternBlock v1, v2;
    v1.inputs.resize(nl.primaryInputs().size());
    v2.inputs.resize(nl.primaryInputs().size());
    for (auto& w : v1.inputs) w = rng();
    for (auto& w : v2.inputs) w = rng();
    v1.count = v2.count = 64;
    launch_src.appendBlock(v1);
    capture_src.appendBlock(v2);
  }

  FaultSimOptions o;
  o.cycles = capture_src.patternCount();
  o.prepass_cycles = 0;
  o.launch = &launch_src;

  CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
  const FaultSimResult ref = serial.run(tdf, capture_src, o);
  for (const int workers : {1, 2, 4}) {
    ProcessFsimOptions popts;
    popts.num_workers = workers;
    popts.shard_faults = 21;
    ProcessFaultSim psim(
        CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
    const FaultSimResult r = psim.run(tdf, capture_src, o);
    SCOPED_TRACE("workers " + std::to_string(workers));
    expectSameResult(ref, r, "pair campaign process vs serial");
  }
  EXPECT_TRUE(noZombies());
}

TEST_P(ProcessEquivalence, SeqWindowedMisrMatchesSerial) {
  const Netlist nl = randomSeq(GetParam() ^ 0x51, 7, 4, 50);
  const FaultUniverse u = enumerateStuckAt(nl);
  std::mt19937_64 rng(GetParam() ^ 0xACE);
  std::vector<std::uint64_t> stim(128);
  for (auto& w : stim) w = rng() & ((std::uint64_t{1} << 7) - 1);
  const CyclePatternSource patterns(stim, nl.primaryInputs().size());

  MisrSpec misr;
  misr.width = 12;
  misr.poly = 0b100000101001ull | 1u;
  misr.feeds.resize(12);
  const auto& pos = nl.primaryOutputs();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    misr.feeds[i % 12].push_back(pos[i]);
  }

  SeqFsimOptions opts;
  opts.cycles = 128;
  opts.windows = 16;
  opts.misr = misr;
  const SeqFaultSim serial(nl);
  const SeqFsimResult ref = serial.run(u.faults, stim, opts);

  for (const int workers : {2, 4}) {
    ProcessFsimOptions popts;
    popts.num_workers = workers;
    popts.shard_faults = 29;
    ProcessFaultSim psim(SeqFaultSim{nl}, popts);
    const FaultSimResult r = psim.run(u.faults, patterns, opts);
    SCOPED_TRACE("workers " + std::to_string(workers));
    EXPECT_EQ(r.first_detect, ref.first_detect);
    EXPECT_EQ(r.window_mask, ref.window_mask);
    EXPECT_EQ(r.misr_detect, ref.misr_detect);
    EXPECT_EQ(r.sig_words_per_fault, ref.sig_words_per_fault);
    EXPECT_EQ(r.window_sig, ref.window_sig);
    EXPECT_EQ(r.detected, ref.detected);
  }
  EXPECT_TRUE(noZombies());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcessEquivalence,
                         ::testing::Values(11, 22, 33));

/// Failure-path fixture: every test starts and ends with a clean failpoint
/// registry so an armed entry can never leak across tests (or into the
/// equivalence suites above when test order is shuffled).
class ProcessFsimFailure : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarmAll(); }
  void TearDown() override { FailpointRegistry::instance().disarmAll(); }

  static FailpointAction action(FailpointAction::Kind k,
                                std::uint64_t arg = 0) {
    FailpointAction a;
    a.kind = k;
    a.arg = arg;
    return a;
  }
};

TEST_F(ProcessFsimFailure, CrashedWorkerRaisesStructuredErrorWithoutZombies) {
  const Netlist nl = randomComb(5, 10, 80);
  const FaultUniverse u = enumerateStuckAt(nl);
  ASSERT_GE(u.faults.size(), 32u);
  const RandomPatternSource patterns(9, nl.primaryInputs().size(), 256);
  FaultSimOptions o;
  o.cycles = 256;
  o.prepass_cycles = 0;

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 8;  // many shards, so the crash lands mid-campaign
  // Worker 1 dies executing its first shard; the parent-side registry
  // consumes the entry at dispatch, so no other worker is ever affected.
  FailpointRegistry::instance().arm("process.worker.shard",
                                    action(FailpointAction::Kind::kCrash),
                                    /*match_index=*/1);
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  try {
    (void)psim.run(u.faults, patterns, o);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kWorkerDied);
    // Partial accounting of the failing stage.
    EXPECT_GT(e.shardsTotal(), 1u);
    EXPECT_LT(e.shardsCompleted(), e.shardsTotal());
    EXPECT_LE(e.detectedSoFar(), u.faults.size());
    EXPECT_NE(std::string(e.what()).find("worker"), std::string::npos);
  }
  EXPECT_EQ(FailpointRegistry::instance().firedCount("process.worker.shard"),
            1u);
  // Every child — including the crashed one — must have been reaped.
  EXPECT_TRUE(noZombies());

  // The failure is per-campaign: once the failpoint is disarmed the same
  // orchestrator config grades the campaign to the serial result.
  FailpointRegistry::instance().disarmAll();
  CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
  const FaultSimResult ref = serial.run(u.faults, patterns, o);
  ProcessFaultSim retry(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  const FaultSimResult r = retry.run(u.faults, patterns, o);
  EXPECT_EQ(r.first_detect, ref.first_detect);
  EXPECT_EQ(r.detected, ref.detected);
  EXPECT_TRUE(noZombies());
}

TEST_F(ProcessFsimFailure, HungWorkerTimesOutStructuredNotForever) {
  const Netlist nl = randomComb(6, 10, 80);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(7, nl.primaryInputs().size(), 256);
  FaultSimOptions o;
  o.cycles = 256;
  o.prepass_cycles = 0;

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 8;
  popts.timeout_ms = 300;  // the watchdog under test
  FailpointRegistry::instance().arm("process.worker.shard",
                                    action(FailpointAction::Kind::kHang),
                                    /*match_index=*/0);
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)psim.run(u.faults, patterns, o);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kTimeout);
    EXPECT_GT(e.shardsTotal(), 0u);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Structured timeout, not a hang: the watchdog fired near timeout_ms
  // (wide margin for slow CI runners, but far from "forever").
  EXPECT_LT(elapsed, 30.0);
  // The hung worker was SIGKILLed and reaped.
  EXPECT_TRUE(noZombies());
}

TEST_F(ProcessFsimFailure, BitflippedReplyIsCaughtByChecksumAsProtocolError) {
  const Netlist nl = randomComb(14, 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(3, nl.primaryInputs().size(), 192);
  FaultSimOptions o;
  o.cycles = 192;
  o.prepass_cycles = 0;

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 16;
  // Flip a payload bit (bit 200 is past the 128-bit header) in one reply
  // frame: without the FNV-1a frame checksum this would silently corrupt
  // the merged detection data; with it the parent reports kProtocol.
  FailpointRegistry::instance().arm(
      "process.worker.reply", action(FailpointAction::Kind::kBitflip, 200));
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  try {
    (void)psim.run(u.faults, patterns, o);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kProtocol);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_TRUE(noZombies());
}

TEST_F(ProcessFsimFailure, TruncatedReplySurfacesAsWorkerDeath) {
  const Netlist nl = randomComb(15, 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(4, nl.primaryInputs().size(), 192);
  FaultSimOptions o;
  o.cycles = 192;
  o.prepass_cycles = 0;

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 16;
  popts.timeout_ms = 5'000;
  // The worker emits 8 bytes of one reply and exits: the parent sees a
  // short frame + EOF, never a hang.
  FailpointRegistry::instance().arm(
      "process.worker.reply", action(FailpointAction::Kind::kTruncate, 8));
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  try {
    (void)psim.run(u.faults, patterns, o);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kWorkerDied);
  }
  EXPECT_TRUE(noZombies());
}

TEST_F(ProcessFsimFailure, CorruptedRequestKillsWorkerNotCampaignIntegrity) {
  const Netlist nl = randomComb(16, 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(5, nl.primaryInputs().size(), 192);
  FaultSimOptions o;
  o.cycles = 192;
  o.prepass_cycles = 0;

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 16;
  // Corrupt one request frame on the wire: the worker's checksum validation
  // must reject it and _exit rather than grade garbage faults.
  FailpointRegistry::instance().arm(
      "process.request.frame", action(FailpointAction::Kind::kBitflip, 300));
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  try {
    (void)psim.run(u.faults, patterns, o);
    FAIL() << "expected ProcessFsimError";
  } catch (const ProcessFsimError& e) {
    EXPECT_EQ(e.reason(), ProcessFsimError::Reason::kWorkerDied);
  }
  EXPECT_TRUE(noZombies());
}

TEST_F(ProcessFsimFailure, DribbledRequestWritesAreAbsorbedByteIdentically) {
  const Netlist nl = randomComb(18, 10, 70);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(6, nl.primaryInputs().size(), 192);
  FaultSimOptions o;
  o.cycles = 192;
  o.prepass_cycles = 0;

  CombFaultSim serial(nl, nl.primaryInputs(), nl.primaryOutputs());
  const FaultSimResult ref = serial.run(u.faults, patterns, o);

  ProcessFsimOptions popts;
  popts.num_workers = 2;
  popts.shard_faults = 16;
  // Every request frame is dribbled in 1-byte / 7-byte / rest chunks with
  // sleeps between: partial-write handling (EINTR-safe writeAll and the
  // worker's blocking readAll) must reassemble every frame exactly.
  FailpointRegistry::instance().arm("process.request.frame",
                                    action(FailpointAction::Kind::kShortWrite),
                                    /*match_index=*/-1, /*match_seq=*/-1,
                                    /*skip=*/0, /*count=*/-1);
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  const FaultSimResult r = psim.run(u.faults, patterns, o);
  expectSameResult(ref, r, "short-write process vs serial");
  EXPECT_GT(FailpointRegistry::instance().firedCount("process.request.frame"),
            0u);
  EXPECT_TRUE(noZombies());
}

TEST(ProcessFsimValidation, EngineErrorsSurfaceAsInvalidArgument) {
  // MISR compaction on the comb kernel is invalid; the worker's engine
  // rejects it and the parent must rethrow the engine's own error type,
  // after reaping the fleet.
  const Netlist nl = randomComb(8, 8, 30);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(2, nl.primaryInputs().size(), 64);
  FaultSimOptions o;
  o.cycles = 64;
  o.prepass_cycles = 0;
  o.misr = MisrSpec{};
  ProcessFsimOptions popts;
  popts.num_workers = 2;
  ProcessFaultSim psim(
      CombFaultSim{nl, nl.primaryInputs(), nl.primaryOutputs()}, popts);
  EXPECT_THROW((void)psim.run(u.faults, patterns, o), std::invalid_argument);
  EXPECT_TRUE(noZombies());
}

TEST(ProcessFsimBackend, AtpgGradingOnProcessBackendMatchesThreaded) {
  const Netlist nl = randomSeq(88, 8, 10, 60);
  const Netlist scanned = buildScannedModule(nl);
  const ScanView view = makeScanView(scanned);
  const FaultUniverse u = enumerateStuckAt(scanned);
  const auto tdf = toTransitionFaults(u.faults);
  FullScanAtpgOptions opts;
  opts.max_random_blocks = 4;
  opts.random_stall_blocks = 2;
  opts.num_threads = 1;
  const auto saf_ref = runFullScanAtpg(scanned, view, u.faults, opts);
  const auto tdf_ref = runFullScanTransition(scanned, view, tdf, opts);

  opts.num_threads = 2;
  opts.grading_backend = FsimBackend::kProcess;
  const auto saf_p = runFullScanAtpg(scanned, view, u.faults, opts);
  EXPECT_EQ(saf_p.detected, saf_ref.detected);
  EXPECT_EQ(saf_p.aborted, saf_ref.aborted);
  EXPECT_EQ(saf_p.patterns, saf_ref.patterns);
  EXPECT_EQ(saf_p.batches, saf_ref.batches);
  const auto tdf_p = runFullScanTransition(scanned, view, tdf, opts);
  EXPECT_EQ(tdf_p.detected, tdf_ref.detected);
  EXPECT_EQ(tdf_p.patterns, tdf_ref.patterns);
  EXPECT_TRUE(noZombies());
}

TEST(ProcessFsimBackend, FactoryWrapsEveryBackendOverEveryLaneWidth) {
  const Netlist nl = randomComb(17, 9, 50);
  const FaultUniverse u = enumerateStuckAt(nl);
  const RandomPatternSource patterns(4, nl.primaryInputs().size(), 192);
  FaultSimOptions o;
  o.cycles = 192;
  o.prepass_cycles = 0;

  FsimBackendOptions ref_opts;  // serial, 64-lane reference
  ref_opts.lane_words = 1;
  const auto ref_engine =
      makeCombFaultSim(nl, nl.primaryInputs(), nl.primaryOutputs(), ref_opts);
  const FaultSimResult ref = ref_engine->run(u.faults, patterns, o);

  for (const FsimBackend backend :
       {FsimBackend::kSerial, FsimBackend::kThreaded, FsimBackend::kProcess,
        FsimBackend::kResilient}) {
    for (const int lw : {1, 2, 4, 8}) {
      FsimBackendOptions bopts;
      bopts.backend = backend;
      bopts.lane_words = lw;
      bopts.num_workers = 2;
      const auto engine = makeCombFaultSim(nl, nl.primaryInputs(),
                                           nl.primaryOutputs(), bopts);
      const FaultSimResult r = engine->run(u.faults, patterns, o);
      SCOPED_TRACE(std::string(fsimBackendName(backend)) + " W=" +
                   std::to_string(lw));
      EXPECT_EQ(r.first_detect, ref.first_detect);
      EXPECT_EQ(r.detected, ref.detected);
      EXPECT_EQ(r.patterns_applied, ref.patterns_applied);
    }
  }
  EXPECT_TRUE(noZombies());
}

TEST(ProcessFsimBackend, NamesParseAndRoundTrip) {
  for (const FsimBackend b : {FsimBackend::kSerial, FsimBackend::kThreaded,
                              FsimBackend::kProcess, FsimBackend::kResilient}) {
    EXPECT_EQ(parseFsimBackend(fsimBackendName(b)), b);
  }
  EXPECT_THROW((void)parseFsimBackend("gpu"), std::invalid_argument);
  EXPECT_THROW((void)parseFsimBackend(""), std::invalid_argument);
  EXPECT_THROW((void)makeCombFaultSim(randomComb(1, 6, 10), {}, {},
                                      FsimBackendOptions{.lane_words = 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace corebist
