// Plan-driven SoC test-campaign scheduler: determinism under sharding,
// timeout/retry policy, coverage targets, observer streaming, JSON export
// and the legacy SocTestSession shim.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler.hpp"
#include "core/soc.hpp"
#include "netlist/builder.hpp"

namespace corebist {
namespace {

/// Small self-checking module; `twist` varies the structure so different
/// cores carry genuinely different logic (and different signatures).
Netlist makeToyModule(int twist) {
  Netlist nl("toy" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", 12);
  const Bus q = b.state("q", 12);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

/// A 6-core SoC: cores 1 and 4 defective, the rest healthy.
std::unique_ptr<Soc> makeSoc() {
  auto soc = std::make_unique<Soc>("shard_soc");
  for (int c = 0; c < 6; ++c) {
    auto core = std::make_unique<WrappedCore>("toy" + std::to_string(c));
    core->addModule(makeToyModule(c));
    soc->attachCore(std::move(core));
  }
  soc->core(1).injectDefect(0, 3, GateType::kXnor);
  soc->core(4).injectDefect(0, 5, GateType::kNand);
  return soc;
}

/// Mixed campaign: defaults for most cores, a forced timeout on core 2 (the
/// poll budget ends long before 500 at-speed cycles have been delivered)
/// and a retried forced timeout on core 5.
TestPlan makeMixedPlan() {
  TestPlan plan = TestPlan{}.withPatterns(300);
  plan.addCore(0).addCore(1);
  plan.addCore(CorePlan{.core_index = 2,
                        .patterns = 500,
                        .warmup_idle = 16,
                        .poll_budget = 3,
                        .poll_idle = 8});
  plan.addCore(3).addCore(4);
  plan.addCore(CorePlan{.core_index = 5,
                        .patterns = 500,
                        .warmup_idle = 16,
                        .poll_budget = 2,
                        .poll_idle = 8,
                        .max_retries = 2});
  return plan;
}

TEST(SocScheduler, ShardedReportsAreByteIdenticalToSerial) {
  // The acceptance property: for ANY thread count, with and without
  // injected defects and forced timeouts, the deterministic fingerprint of
  // the campaign equals the serial (1-thread) reference byte for byte.
  auto ref_soc = makeSoc();
  TestPlan plan = makeMixedPlan().withThreads(1);
  const std::string reference =
      SocTestScheduler(*ref_soc).run(plan).fingerprint();
  EXPECT_NE(reference.find("\"verdict\": \"timeout\""), std::string::npos);
  EXPECT_NE(reference.find("\"verdict\": \"signature_mismatch\""),
            std::string::npos);
  EXPECT_NE(reference.find("\"verdict\": \"pass\""), std::string::npos);

  for (const int threads : {2, 3, 6, 16}) {
    auto soc = makeSoc();  // fresh SoC: identical initial state
    const SessionReport report =
        SocTestScheduler(*soc).run(makeMixedPlan().withThreads(threads));
    EXPECT_EQ(report.fingerprint(), reference) << "threads=" << threads;
  }
}

TEST(SocScheduler, RerunOnTheSameSocIsIdenticalToo) {
  // Campaigns leave every core re-testable: running the same plan twice on
  // one SoC (serial, then sharded) yields the same fingerprint.
  auto soc = makeSoc();
  SocTestScheduler scheduler(*soc);
  const std::string first =
      scheduler.run(makeMixedPlan().withThreads(1)).fingerprint();
  const std::string second =
      scheduler.run(makeMixedPlan().withThreads(4)).fingerprint();
  EXPECT_EQ(first, second);
}

TEST(SocScheduler, TimeoutIsDistinguishedFromMismatchAndRetried) {
  auto soc = makeSoc();
  SocTestScheduler scheduler(*soc);
  const SessionReport report = scheduler.run(makeMixedPlan());

  const CoreReport* mismatch = report.core(1);
  ASSERT_NE(mismatch, nullptr);
  EXPECT_EQ(mismatch->verdict, CoreVerdict::kSignatureMismatch);
  EXPECT_TRUE(mismatch->end_test_seen);
  EXPECT_EQ(mismatch->timeouts, 0);
  ASSERT_EQ(mismatch->modules.size(), 1u);

  const CoreReport* timeout = report.core(2);
  ASSERT_NE(timeout, nullptr);
  EXPECT_EQ(timeout->verdict, CoreVerdict::kTimeout);
  EXPECT_FALSE(timeout->end_test_seen);
  EXPECT_TRUE(timeout->modules.empty());  // signatures were never uploaded
  EXPECT_EQ(timeout->attempts, 1);
  EXPECT_EQ(timeout->polls, 3);  // the full poll budget was spent

  const CoreReport* retried = report.core(5);
  ASSERT_NE(retried, nullptr);
  EXPECT_EQ(retried->verdict, CoreVerdict::kTimeout);
  EXPECT_EQ(retried->attempts, 3);  // 1 + max_retries
  EXPECT_EQ(retried->timeouts, 3);
  EXPECT_EQ(retried->polls, 6);  // poll budget per attempt

  // A core that timed out with a starved plan passes with an adequate one.
  const CoreReport recovered =
      scheduler.testCore(CorePlan{.core_index = 2, .patterns = 500});
  EXPECT_EQ(recovered.verdict, CoreVerdict::kPass) << recovered.summary();
}

TEST(SocScheduler, CoverageTargetIsMeasuredAndEnforced) {
  auto soc = makeSoc();
  SocTestScheduler scheduler(*soc);
  const CoreReport measured = scheduler.testCore(
      CorePlan{.core_index = 0, .patterns = 128, .coverage_target = 5.0});
  EXPECT_EQ(measured.verdict, CoreVerdict::kPass);
  ASSERT_EQ(measured.modules.size(), 1u);
  EXPECT_GE(measured.modules[0].coverage, 5.0);
  EXPECT_LE(measured.modules[0].coverage, 100.0);
  EXPECT_TRUE(measured.coverage_met);
  EXPECT_TRUE(measured.pass());

  // An unreachable target fails the core even though the signature matched.
  const CoreReport missed = scheduler.testCore(
      CorePlan{.core_index = 0, .patterns = 128, .coverage_target = 100.5});
  EXPECT_EQ(missed.verdict, CoreVerdict::kPass);
  EXPECT_FALSE(missed.coverage_met);
  EXPECT_FALSE(missed.pass());

  // Without a target, coverage is not measured.
  const CoreReport plain =
      scheduler.testCore(CorePlan{.core_index = 0, .patterns = 128});
  ASSERT_EQ(plain.modules.size(), 1u);
  EXPECT_LT(plain.modules[0].coverage, 0.0);
}

class CountingObserver final : public SessionObserver {
 public:
  int campaign_start = 0;
  int campaign_finish = 0;
  int core_start = 0;
  int core_timeout = 0;
  int core_finish = 0;
  void onCampaignStart(int, int) override { ++campaign_start; }
  void onCoreStart(int, int) override { ++core_start; }
  void onCoreTimeout(int, int, bool) override { ++core_timeout; }
  void onCoreFinish(const CoreReport&) override { ++core_finish; }
  void onCampaignFinish(const SessionReport&) override { ++campaign_finish; }
};

TEST(SocScheduler, ObserverSeesEveryEventExactlyOnce) {
  for (const int threads : {1, 4}) {
    auto soc = makeSoc();
    CountingObserver observer;
    SocTestScheduler scheduler(*soc, &observer);
    const SessionReport report =
        scheduler.run(makeMixedPlan().withThreads(threads));
    EXPECT_EQ(observer.campaign_start, 1);
    EXPECT_EQ(observer.campaign_finish, 1);
    EXPECT_EQ(observer.core_finish, 6);
    // attempts: 4 single-attempt cores + 1 (timeout, no retry) + 3 retries.
    EXPECT_EQ(observer.core_start, 8);
    EXPECT_EQ(observer.core_timeout, 4);
    EXPECT_EQ(report.cores.size(), 6u);
  }
}

TEST(SocScheduler, JsonExportCarriesTheCampaignStructure) {
  auto soc = makeSoc();
  const SessionReport report = SocTestScheduler(*soc).run(makeMixedPlan());
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"soc\": \"shard_soc\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"total_tap_clocks\""), std::string::npos);
  EXPECT_NE(json.find("\"signature\": \"0x"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"timeout\""), std::string::npos);
  // The fingerprint is the JSON minus wall-clock fields.
  const std::string fp = report.fingerprint();
  EXPECT_EQ(fp.find("\"wall_seconds\""), std::string::npos);
  EXPECT_EQ(fp.find("\"seconds\""), std::string::npos);
  EXPECT_EQ(fp.find("\"threads\""), std::string::npos);
}

TEST(SocScheduler, JsonEscapesQuotesAndControlCharsInNames) {
  // Core/TAM/SoC names flow into the JSON export verbatim; a name with `"`
  // or `\` used to produce invalid JSON. Every string field goes through
  // jsonEscaped() now.
  SessionReport report;
  report.soc_name = "soc \"A\"\\path";
  CoreReport core;
  core.core_index = 0;
  core.core_name = "dsp\n\"core\"\ttab\x01";
  report.cores.push_back(core);
  TamReport tam;
  tam.tam_index = 0;
  tam.name = "tam\\0 \"fast\"";
  report.tams.push_back(tam);

  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"soc \\\"A\\\"\\\\path\""), std::string::npos);
  EXPECT_NE(json.find("dsp\\n\\\"core\\\"\\ttab\\u0001"), std::string::npos);
  EXPECT_NE(json.find("tam\\\\0 \\\"fast\\\""), std::string::npos);
  // No raw control character survives into the output: the core name's
  // newline/tab/0x01 are all escaped in place.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  const std::size_t dsp = json.find("dsp");
  ASSERT_NE(dsp, std::string::npos);
  EXPECT_EQ(json.substr(dsp, 30).find('\n'), std::string::npos);
  EXPECT_EQ(json.substr(dsp, 30).find('\t'), std::string::npos);
  // Round-trip smoke: balanced braces/brackets (a cheap well-formedness
  // proxy that the unescaped output failed).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  EXPECT_EQ(jsonEscaped("plain_name-42"), "plain_name-42");
  EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped(std::string_view("\r\x1f", 2)), "\\r\\u001F");
}

TEST(SocScheduler, InvalidPlansAreRejectedUpFront) {
  auto soc = makeSoc();
  SocTestScheduler scheduler(*soc);
  TestPlan bad_core;
  bad_core.addCore(99);
  EXPECT_THROW((void)scheduler.run(bad_core), std::invalid_argument);

  // A pattern budget beyond the 12-bit counter would silently truncate in
  // the WCDR; the plan resolver rejects it instead.
  TestPlan bad_budget = TestPlan{}.withPatterns(5000);
  EXPECT_THROW((void)scheduler.run(bad_budget), std::invalid_argument);

  // A core listed twice could put one wrapper on two shards concurrently.
  TestPlan duplicate;
  duplicate.addCore(3).addCore(3);
  EXPECT_THROW((void)scheduler.run(duplicate), std::invalid_argument);
}

TEST(SocScheduler, LegacyShimMatchesSchedulerResults) {
  auto soc_a = makeSoc();
  auto soc_b = makeSoc();
  SocTestSession session(*soc_a);
  SocTestScheduler scheduler(*soc_b);
  const std::vector<CoreTestReport> legacy = session.testAll(300);
  const SessionReport modern =
      scheduler.run(TestPlan{}.withPatterns(300).withThreads(3));
  ASSERT_EQ(legacy.size(), modern.cores.size());
  for (std::size_t c = 0; c < legacy.size(); ++c) {
    EXPECT_EQ(legacy[c].pass, modern.cores[c].pass());
    EXPECT_EQ(legacy[c].tap_clocks, modern.cores[c].tap_clocks);
    EXPECT_EQ(legacy[c].bist_cycles, modern.cores[c].bist_cycles);
    ASSERT_EQ(legacy[c].modules.size(), modern.cores[c].modules.size());
    for (std::size_t m = 0; m < legacy[c].modules.size(); ++m) {
      EXPECT_EQ(legacy[c].modules[m].signature,
                modern.cores[c].modules[m].signature);
      EXPECT_EQ(legacy[c].modules[m].golden,
                modern.cores[c].modules[m].golden);
    }
  }
}

TEST(SocScheduler, PlanResolutionRejectsStructurallyBrokenCoreModules) {
  // Admission-time lint (analyze/lint.hpp): a module with an injected
  // combinational loop must be rejected when its core is referenced by the
  // plan — with the rule id in the message — instead of exploding inside a
  // campaign levelization later.
  auto soc = std::make_unique<Soc>("lint_soc");
  auto good = std::make_unique<WrappedCore>("good");
  good->addModule(makeToyModule(0));
  soc->attachCore(std::move(good));

  Netlist broken = makeToyModule(1);
  GateId victim = 0;
  while (broken.gates()[victim].nin < 1) ++victim;
  broken.rebindGateInput(victim, 0, broken.gates()[victim].out);
  auto bad = std::make_unique<WrappedCore>("bad");
  bad->addModule(broken);
  soc->attachCore(std::move(bad));

  try {
    (void)SocTestScheduler(*soc).run(
        TestPlan{}.withPatterns(64).withThreads(1));
    FAIL() << "expected the broken core to be rejected at plan resolve";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("comb-loop"), std::string::npos) << what;
    EXPECT_NE(what.find("core 1"), std::string::npos) << what;
  }

  // A plan that references only the healthy core still runs.
  TestPlan ok_plan = TestPlan{}.withPatterns(64).withThreads(1);
  ok_plan.addCore(0);
  const SessionReport report = SocTestScheduler(*soc).run(ok_plan);
  EXPECT_EQ(report.cores.size(), 1u);
}

TEST(SocScheduler, ChipTapIsCreditedWithCampaignTcks) {
  auto soc = makeSoc();
  const std::size_t before = soc->tap().tckCount();
  const SessionReport report =
      SocTestScheduler(*soc).run(TestPlan{}.withPatterns(200).withThreads(2));
  EXPECT_EQ(soc->tap().tckCount() - before, report.total_tap_clocks);
}

}  // namespace
}  // namespace corebist
