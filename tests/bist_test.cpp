// BIST engine building blocks: ALFSR, MISR, constraint generators, control
// unit, engine assembly, and software/hardware cross-validation.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "bist/constraint_gen.hpp"
#include "bist/control_unit.hpp"
#include "bist/engine.hpp"
#include "bist/engine_hw.hpp"
#include "bist/lfsr.hpp"
#include "bist/misr.hpp"
#include "ldpc/gatelevel.hpp"
#include "sim/seq_sim.hpp"

namespace corebist {
namespace {

class AlfsrPeriodTest : public ::testing::TestWithParam<int> {};

TEST_P(AlfsrPeriodTest, PrimitivePolynomialIsMaximalLength) {
  const int w = GetParam();
  Alfsr lfsr(w, 1);
  const std::uint64_t expect = (std::uint64_t{1} << w) - 1;
  EXPECT_EQ(lfsr.measuredPeriod(expect + 8), expect) << "width " << w;
}

INSTANTIATE_TEST_SUITE_P(Widths, AlfsrPeriodTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                           13, 14, 15, 16, 17, 18, 20));

TEST(Alfsr, ZeroSeedIsRepaired) {
  Alfsr lfsr(8, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Alfsr, StatesAreReasonablyBalanced) {
  Alfsr lfsr(20, 0xACE1);
  int ones = 0;
  const int cycles = 4096;
  for (int i = 0; i < cycles; ++i) {
    ones += std::popcount(lfsr.output() & 0xFFFFFu);
    lfsr.step();
  }
  const double density =
      static_cast<double>(ones) / (20.0 * static_cast<double>(cycles));
  EXPECT_GT(density, 0.45);
  EXPECT_LT(density, 0.55);
}

TEST(Alfsr, HardwareMatchesSoftware) {
  const int w = 12;
  const auto taps = primitiveTaps(w);
  Netlist nl("lfsr_hw");
  Builder b(nl);
  const NetId en = b.input("en", 1)[0];
  const NetId load = b.input("load", 1)[0];
  const AlfsrHw hw = buildAlfsrHw(b, w, taps, 0x5A5, en, load);
  b.output("state", hw.state);
  nl.validate();

  SeqSim sim(nl);
  sim.reset();
  // Load the seed.
  sim.comb().setBusBroadcast(Bus{en}, 0);
  sim.comb().setBusBroadcast(Bus{load}, 1);
  sim.step();
  Alfsr sw(w, taps, 0x5A5);
  sim.comb().setBusBroadcast(Bus{load}, 0);
  sim.comb().setBusBroadcast(Bus{en}, 1);
  for (int c = 0; c < 500; ++c) {
    sim.evalComb();
    EXPECT_EQ(sim.comb().getBusLane(nl.findPort("state")->bits, 0),
              sw.output())
        << "cycle " << c;
    sim.clockEdge();
    sw.step();
  }
}

TEST(Misr, DistinctStreamsGiveDistinctSignatures) {
  Misr a(16);
  Misr c(16);
  for (int i = 0; i < 200; ++i) {
    a.step(static_cast<std::uint64_t>(i * 37) & 0xFFFF);
    c.step(static_cast<std::uint64_t>(i * 37 + (i == 107)) & 0xFFFF);
  }
  EXPECT_NE(a.state(), c.state());
}

TEST(Misr, OrderSensitivity) {
  Misr a(16);
  Misr c(16);
  a.step(1);
  a.step(2);
  c.step(2);
  c.step(1);
  EXPECT_NE(a.state(), c.state());
}

TEST(Misr, WideFoldCascade) {
  Misr a(16);
  a.stepWide(0x00010001ull, 32);  // bits 0 and 16 fold to tap 0 -> cancel
  EXPECT_EQ(a.state(), 0u);
  Misr c(16);
  c.stepWide(0x00010000ull, 32);
  EXPECT_NE(c.state(), 0u);
}

TEST(Misr, HardwareMatchesSoftware) {
  Netlist nl("misr_hw");
  Builder b(nl);
  const Bus in = b.input("in", 24);  // wider than the MISR: exercises folding
  const NetId en = b.input("en", 1)[0];
  const NetId clr = b.input("clr", 1)[0];
  const MisrHw hw = buildMisrHw(b, in, 16, en, clr);
  b.output("sig", hw.state);
  nl.validate();

  SeqSim sim(nl);
  sim.reset();
  sim.comb().setBusBroadcast(Bus{en}, 1);
  sim.comb().setBusBroadcast(Bus{clr}, 0);
  Misr sw(16);
  std::mt19937_64 rng(4);
  for (int c = 0; c < 300; ++c) {
    const std::uint64_t v = rng() & 0xFFFFFF;
    sim.comb().setBusBroadcast(in, v);
    sim.step();
    sw.stepWide(v, 24);
    sim.evalComb();
    EXPECT_EQ(sim.comb().getBusLane(nl.findPort("sig")->bits, 0), sw.state())
        << "cycle " << c;
  }
}

TEST(ConstraintGen, ScheduleWrapsAndDwells) {
  ScheduleConstraint cg(4, {{0xF, 3}, {0x2, 1}, {0x7, 2}});
  EXPECT_EQ(cg.period(), 6);
  const unsigned expect[12] = {0xF, 0xF, 0xF, 0x2, 0x7, 0x7,
                               0xF, 0xF, 0xF, 0x2, 0x7, 0x7};
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(cg.valueAt(c), expect[c]) << c;
  }
}

TEST(ConstraintGen, HardwareMatchesSoftware) {
  ScheduleConstraint cg(4, {{0xA, 5}, {0x1, 2}, {0xC, 9}});
  Netlist nl("cg_hw");
  Builder b(nl);
  const NetId en = b.input("en", 1)[0];
  const NetId clr = b.input("clr", 1)[0];
  b.output("v", buildScheduleCgHw(b, cg, en, clr));
  nl.validate();
  SeqSim sim(nl);
  sim.reset();
  sim.comb().setBusBroadcast(Bus{en}, 1);
  sim.comb().setBusBroadcast(Bus{clr}, 0);
  for (int c = 0; c < 50; ++c) {
    sim.evalComb();
    EXPECT_EQ(sim.comb().getBusLane(nl.findPort("v")->bits, 0), cg.valueAt(c))
        << "cycle " << c;
    sim.clockEdge();
  }
}

TEST(ConstraintGen, BiasedProbabilitiesAndDeterminism) {
  using B = BiasedConstraint::BitBias;
  BiasedConstraint cg(4, {B::kFree, B::kRare4, B::kOften2, B::kOne}, 24,
                      0xFACE);
  int ones[4] = {0, 0, 0, 0};
  const int n = 4096;
  for (int c = 0; c < n; ++c) {
    const auto v = cg.valueAt(c);
    for (int j = 0; j < 4; ++j) {
      if ((v >> j) & 1u) ++ones[j];
    }
  }
  EXPECT_NEAR(ones[0] / double(n), 0.5, 0.05);    // free
  EXPECT_NEAR(ones[1] / double(n), 1.0 / 16, 0.02);  // rare4
  EXPECT_NEAR(ones[2] / double(n), 0.75, 0.05);   // often2
  EXPECT_EQ(ones[3], n);                          // constant one
  // Random access must agree with the sequential walk.
  BiasedConstraint cg2(4, {B::kFree, B::kRare4, B::kOften2, B::kOne}, 24,
                       0xFACE);
  EXPECT_EQ(cg2.valueAt(1234), cg.valueAt(1234));
  EXPECT_EQ(cg2.valueAt(7), cg.valueAt(7));  // backwards jump
}

TEST(ConstraintGen, BiasedHardwareMatchesSoftware) {
  using B = BiasedConstraint::BitBias;
  BiasedConstraint cg(5, {B::kFree, B::kRare2, B::kRare3, B::kOften2,
                          B::kZero},
                      16, 0x1DEA);
  Netlist nl("bcg");
  Builder b(nl);
  const NetId en = b.input("en", 1)[0];
  const NetId load = b.input("load", 1)[0];
  b.output("v", buildBiasedCgHw(b, cg, en, load));
  nl.validate();
  SeqSim sim(nl);
  sim.reset();
  sim.comb().setBusBroadcast(Bus{en}, 0);
  sim.comb().setBusBroadcast(Bus{load}, 1);
  sim.step();  // seed load
  sim.comb().setBusBroadcast(Bus{load}, 0);
  sim.comb().setBusBroadcast(Bus{en}, 1);
  for (int c = 0; c < 400; ++c) {
    sim.evalComb();
    ASSERT_EQ(sim.comb().getBusLane(nl.findPort("v")->bits, 0), cg.valueAt(c))
        << "cycle " << c;
    sim.clockEdge();
  }
}

TEST(ControlUnit, ProgramRunFinish) {
  BistControlUnit cu(12);
  EXPECT_EQ(cu.maxPatterns(), 4095u);  // paper: up to 4,096 patterns
  cu.command(BistCommand::kLoadCount, 100);
  cu.command(BistCommand::kStart);
  EXPECT_TRUE(cu.testEnable());
  for (int i = 0; i < 99; ++i) cu.tick();
  EXPECT_TRUE(cu.testEnable());
  EXPECT_FALSE(cu.endTest());
  cu.tick();
  EXPECT_FALSE(cu.testEnable());
  EXPECT_TRUE(cu.endTest());
}

TEST(ControlUnit, StopAndResultSelect) {
  BistControlUnit cu;
  cu.command(BistCommand::kLoadCount, 1000);
  cu.command(BistCommand::kStart);
  cu.tick();
  cu.command(BistCommand::kStop);
  EXPECT_FALSE(cu.testEnable());
  EXPECT_FALSE(cu.endTest());
  cu.command(BistCommand::kSelectResult, 2);
  EXPECT_EQ(cu.resultSelect(), 2u);
  const auto status = cu.statusWord();
  EXPECT_EQ((status >> 2) & 3u, 2u);
}

TEST(Engine, ArchitecturalCases) {
  // Case a: 8 free inputs, 20-bit ALFSR.
  Netlist small("small");
  {
    Builder b(small);
    b.output("y", b.bwNot(b.input("x", 8)));
  }
  // Case b: 30 free inputs > 20.
  Netlist wide("wide");
  {
    Builder b(wide);
    b.output("y", b.bwNot(b.input("x", 30)));
  }
  // Case c/d analogues with a constrained port.
  Netlist ctrl_small("cs");
  {
    Builder b(ctrl_small);
    const Bus x = b.input("x", 8);
    const Bus sel = b.input("sel", 4);
    b.output("y", b.mux(b.bwNot(x), x, b.reduceAnd(sel)));
  }
  BistEngine engine;
  const auto cg = std::make_shared<HoldConstraint>(4, 0xF);
  const int a = engine.attachModule(small);
  const int bcase = engine.attachModule(wide);
  const int c = engine.attachModule(ctrl_small, {{"sel", cg}});
  EXPECT_EQ(engine.architecturalCase(a), 'a');
  EXPECT_EQ(engine.architecturalCase(bcase), 'b');
  EXPECT_EQ(engine.architecturalCase(c), 'c');
}

TEST(Engine, ConstrainedPortFollowsCg) {
  Netlist nl("m");
  {
    Builder b(nl);
    const Bus x = b.input("x", 6);
    const Bus sel = b.input("sel", 4);
    b.output("y", b.bw(GateType::kXor, x, Builder::concat(std::vector<Bus>{
                                              sel, Builder::slice(sel, 0, 2)})));
  }
  BistEngine engine;
  const auto cg = std::make_shared<ScheduleConstraint>(
      4, std::vector<ScheduleConstraint::Entry>{{0x3, 2}, {0xC, 2}});
  const int m = engine.attachModule(nl, {{"sel", cg}});
  const auto stim = engine.stimulus(m, 8);
  // sel occupies PI positions 6..9.
  for (int c = 0; c < 8; ++c) {
    const unsigned sel_bits =
        static_cast<unsigned>((stim[static_cast<std::size_t>(c)] >> 6) & 0xF);
    EXPECT_EQ(sel_bits, cg->valueAt(c)) << "cycle " << c;
  }
}

TEST(Engine, StimulusIsDeterministic) {
  Netlist nl("m");
  {
    Builder b(nl);
    b.output("y", b.bwNot(b.input("x", 10)));
  }
  BistEngine e1, e2;
  const int m1 = e1.attachModule(nl);
  const int m2 = e2.attachModule(nl);
  EXPECT_EQ(e1.stimulus(m1, 128), e2.stimulus(m2, 128));
}

TEST(Engine, DefectChangesSignature) {
  const Netlist bn = ldpc::buildBitNode();
  BistEngine engine;
  const int m = engine.attachModule(bn);
  const std::uint64_t golden = engine.goldenSignature(m, 256);
  EXPECT_EQ(engine.runAndSign(m, bn, 256), golden);
  // Flip one gate: signature must change (MISR aliasing odds ~2^-16).
  const Netlist defective = withGateDefect(bn, 100, GateType::kNor);
  EXPECT_NE(engine.runAndSign(m, defective, 256), golden);
}

TEST(EngineHw, BistedModuleReproducesGoldenSignature) {
  // The merged gate-level BIST plumbing (muxes + ALFSR + CG + MISR) must
  // produce the same signature as the software engine, bit for bit.
  const Netlist cu = ldpc::buildControlUnit();
  BistEngine engine;
  const auto cg = std::make_shared<ScheduleConstraint>(
      3, std::vector<ScheduleConstraint::Entry>{{0x5, 7}, {0x4, 3}});
  const int m = engine.attachModule(cu, {{"mode", cg}});
  const Netlist bisted = buildBistedModule(engine, m);

  SeqSim sim(bisted);
  sim.reset();
  const Bus rst = bisted.findPort("bist_reset")->bits;
  const Bus te = bisted.findPort("test_enable")->bits;
  sim.comb().setBusBroadcast(rst, 1);
  sim.comb().setBusBroadcast(te, 0);
  // Functional inputs idle at zero during self-test.
  for (const PortBus& p : bisted.ports()) {
    if (p.is_input && p.name.rfind("f_", 0) == 0) {
      sim.comb().setBusBroadcast(p.bits, 0);
    }
  }
  sim.step();  // reset pulse: seed ALFSR, clear MISR/CG
  sim.comb().setBusBroadcast(rst, 0);
  sim.comb().setBusBroadcast(te, 1);
  const int cycles = 512;
  for (int c = 0; c < cycles; ++c) sim.step();
  sim.evalComb();
  const std::uint64_t hw_sig =
      sim.comb().getBusLane(bisted.findPort("bist_signature")->bits, 0);
  EXPECT_EQ(hw_sig, engine.goldenSignature(m, cycles));
}

TEST(EngineHw, EngineNetlistHasExpectedStructure) {
  const Netlist bn = ldpc::buildBitNode();
  const Netlist cn = ldpc::buildCheckNode();
  const Netlist cu = ldpc::buildControlUnit();
  BistEngine engine;
  const auto cg = std::make_shared<ScheduleConstraint>(
      4, std::vector<ScheduleConstraint::Entry>{{0x0, 1}, {0xF, 15}});
  engine.attachModule(bn, {{"path_sel", cg}});
  engine.attachModule(cn, {{"path_sel", cg}});
  engine.attachModule(cu);
  const Netlist hw = buildBistEngineHw(engine);
  // 20-bit ALFSR + 3 x 16-bit MISR + 12-bit counter/limit registers +
  // FSM/select: flop count in the right range.
  EXPECT_GT(hw.dffs().size(), 100u);
  EXPECT_LT(hw.dffs().size(), 200u);
  EXPECT_NO_THROW(hw.validate());
  // The result port is the MISR width.
  EXPECT_EQ(hw.findPort("result")->bits.size(), 16u);
}

}  // namespace
}  // namespace corebist
