// Direct unit tests for the P1500Ate protocol helper (src/tam/ate.*):
// golden-signature polling, the starved-run/retry path, TCK accounting and
// hierarchical path routing — previously exercised only indirectly through
// the scheduler suite.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/soc.hpp"
#include "netlist/builder.hpp"
#include "tam/ate.hpp"

namespace corebist {
namespace {

Netlist makeToyModule(int twist) {
  Netlist nl("toy" + std::to_string(twist));
  Builder b(nl);
  const Bus x = b.input("x", 10);
  const Bus q = b.state("q", 10);
  b.connect(q, b.bw(GateType::kXor, x, b.shiftConst(q, 1 + twist % 3)));
  b.output("y", q);
  b.output("p", Bus{b.reduceXor(q)});
  nl.validate();
  return nl;
}

std::unique_ptr<WrappedCore> makeCore(const std::string& name, int twist) {
  auto core = std::make_unique<WrappedCore>(name);
  core->addModule(makeToyModule(twist));
  return core;
}

/// The canonical per-attempt preamble every session runs.
void programRun(P1500Ate& ate, int slot, const std::vector<int>& path,
                int patterns) {
  ate.reset();
  ate.selectCore(slot);
  ate.selectPath(path);
  ate.sendCommand(BistCommand::kReset, 0);
  ate.sendCommand(BistCommand::kLoadCount,
                  static_cast<std::uint16_t>(patterns));
  ate.sendCommand(BistCommand::kStart, 0);
}

TEST(P1500AteTest, GoldenSignaturePollingEndToEnd) {
  Soc soc("ate_soc");
  const int idx = soc.attachCore(makeCore("toy", 1));
  P1500Ate ate(soc.tap());

  const int patterns = 200;
  programRun(ate, soc.topology(idx).top_slot, {}, patterns);
  ate.runIdle(static_cast<std::size_t>(patterns) + 4);

  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  const std::uint16_t status = ate.readWdr();
  EXPECT_NE(status & P1500Ate::kStatusEndTest, 0) << "status=" << status;

  ate.sendCommand(BistCommand::kSelectResult, 0);
  const std::uint16_t signature = ate.readWdr();
  EXPECT_EQ(signature, soc.core(idx).goldenSignature(0, patterns));
}

TEST(P1500AteTest, StarvedRunShowsNoEndTestUntilRetried) {
  // The protocol-level shape of the scheduler's timeout/retry machinery: a
  // run starved of at-speed cycles never raises end_test within the poll
  // budget; a full re-run with an adequate dwell passes.
  Soc soc("ate_soc");
  const int idx = soc.attachCore(makeCore("toy", 2));
  P1500Ate ate(soc.tap());

  const int patterns = 300;
  programRun(ate, 0, {}, patterns);
  ate.runIdle(16);  // far short of `patterns` system clocks
  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  bool end_test = false;
  for (int poll = 0; poll < 3 && !end_test; ++poll) {
    end_test = (ate.readWdr() & P1500Ate::kStatusEndTest) != 0;
    if (!end_test) ate.runIdle(8);
  }
  EXPECT_FALSE(end_test);

  // Retry: the preamble restarts from BIST kReset, so the earlier partial
  // run leaves no residue in the verdict.
  programRun(ate, 0, {}, patterns);
  ate.runIdle(static_cast<std::size_t>(patterns) + 4);
  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  EXPECT_NE(ate.readWdr() & P1500Ate::kStatusEndTest, 0);
  ate.sendCommand(BistCommand::kSelectResult, 0);
  EXPECT_EQ(ate.readWdr(), soc.core(idx).goldenSignature(0, patterns));
}

TEST(P1500AteTest, TckAccountingIsExactAndDeterministic) {
  // Every scan is fixed-length, so identical command sequences on
  // identically-built chips cost identical TCKs — the invariant the
  // scheduler's fingerprint equality rests on.
  auto run_session = [](int twist) {
    Soc soc("tck_soc");
    const int idx = soc.attachCore(makeCore("toy", twist));
    P1500Ate ate(soc.tap());
    std::vector<std::size_t> deltas;
    std::size_t last = ate.tckCount();
    auto mark = [&] {
      deltas.push_back(ate.tckCount() - last);
      last = ate.tckCount();
    };
    programRun(ate, soc.topology(idx).top_slot, {}, 100);
    mark();
    ate.runIdle(104);
    mark();
    ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
    (void)ate.readWdr();
    mark();
    return deltas;
  };
  const std::vector<std::size_t> first = run_session(1);
  const std::vector<std::size_t> second = run_session(1);
  EXPECT_EQ(first, second);
  // Same protocol, different core logic: the access cost is identical.
  EXPECT_EQ(first, run_session(2));
  for (const std::size_t d : first) EXPECT_GT(d, 0u);
  EXPECT_EQ(first[1], 104u);  // runIdle costs exactly its dwell
}

TEST(P1500AteTest, HierarchicalPathReachesTheNestedCore) {
  Soc soc("hier_ate");
  const int top = soc.attachCore(makeCore("top", 1));
  const int child = soc.attachChildCore(makeCore("child", 2), top);
  const int grand = soc.attachChildCore(makeCore("grand", 3), child);
  P1500Ate ate(soc.tap());

  const int patterns = 150;
  const Soc::CoreTopology& topo = soc.topology(grand);
  ASSERT_EQ(topo.child_path.size(), 2u);
  programRun(ate, topo.top_slot, topo.child_path, patterns);
  ate.runIdle(static_cast<std::size_t>(patterns) + 4);
  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  EXPECT_NE(ate.readWdr() & P1500Ate::kStatusEndTest, 0);
  ate.sendCommand(BistCommand::kSelectResult, 0);
  EXPECT_EQ(ate.readWdr(), soc.core(grand).goldenSignature(0, patterns));
  EXPECT_EQ(ate.path(), topo.child_path);
  // The commands never reached the ancestors' control units: their BIST
  // runs were not started, so their status words show no end_test.
  ate.selectPath(soc.topology(child).child_path);
  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  EXPECT_EQ(ate.readWdr() & P1500Ate::kStatusEndTest, 0);
  ate.selectPath({});
  ate.sendCommand(BistCommand::kSelectResult, P1500Ate::kStatusView);
  EXPECT_EQ(ate.readWdr() & P1500Ate::kStatusEndTest, 0);
}

TEST(P1500AteTest, DeeperCoresCostMoreTcksPerCommand) {
  Soc soc("depth_cost");
  const int top = soc.attachCore(makeCore("top", 1));
  const int child = soc.attachChildCore(makeCore("child", 2), top);
  const int grand = soc.attachChildCore(makeCore("grand", 3), child);
  P1500Ate ate(soc.tap());

  auto command_cost = [&](int core) {
    const Soc::CoreTopology& topo = soc.topology(core);
    ate.reset();
    ate.selectCore(topo.top_slot);
    ate.selectPath(topo.child_path);
    const std::size_t before = ate.tckCount();
    ate.sendCommand(BistCommand::kNop, 0);
    return ate.tckCount() - before;
  };
  const std::size_t c0 = command_cost(top);
  const std::size_t c1 = command_cost(child);
  const std::size_t c2 = command_cost(grand);
  EXPECT_LT(c0, c1);  // each level adds WIR routing scans
  EXPECT_LT(c1, c2);
}

TEST(P1500AteTest, SecondTamBlockDrivesItsOwnCores) {
  // An ATE bound to a non-default IR block speaks only to that TAM.
  Soc soc("two_tams");
  const int t1 = soc.addTam("aux");
  const int a = soc.attachCore(makeCore("a", 1), 0);
  const int b = soc.attachCore(makeCore("b", 2), t1);
  (void)a;
  P1500Ate aux(soc.tap(), soc.tam(t1).irSelect());

  const int patterns = 120;
  const Soc::CoreTopology& topo = soc.topology(b);
  EXPECT_EQ(topo.top_slot, 0);  // first core on ITS tam
  programRun(aux, topo.top_slot, {}, patterns);
  aux.runIdle(static_cast<std::size_t>(patterns) + 4);
  aux.sendCommand(BistCommand::kSelectResult, 0);
  EXPECT_EQ(aux.readWdr(), soc.core(b).goldenSignature(0, patterns));
}

}  // namespace
}  // namespace corebist
